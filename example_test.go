package rocksim_test

import (
	"fmt"

	"rocksim"
)

// ExampleRun shows the simplest complete simulation: assemble a
// program, run it on the SST machine, read the results.
func ExampleRun() {
	prog, err := rocksim.Assemble(`
		movi r1, 6
		movi r2, 7
		mul  r3, r1, r2
		st64 r3, 0x100(zero)
		halt
	`)
	if err != nil {
		panic(err)
	}
	res, err := rocksim.Run(rocksim.SST, prog, rocksim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("retired:", res.Retired)
	fmt.Println("answer:", res.Mem.Read(0x100, 8))
	// Output:
	// retired: 5
	// answer: 42
}

// ExampleEmulate shows the golden functional model, which defines
// architectural truth for every timing core.
func ExampleEmulate() {
	prog, err := rocksim.Assemble(`
		movi r5, 10
		movi r6, 0
	loop:	add  r6, r6, r5
		addi r5, r5, -1
		bne  r5, zero, loop
		halt
	`)
	if err != nil {
		panic(err)
	}
	emu, _, err := rocksim.Emulate(prog, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println("sum 1..10 =", emu.Reg[6])
	// Output:
	// sum 1..10 = 55
}

// ExampleBuildWorkload runs a built-in benchmark on two machines and
// compares them.
func ExampleBuildWorkload() {
	w, err := rocksim.BuildWorkload("dense", rocksim.ScaleTest)
	if err != nil {
		panic(err)
	}
	opts := rocksim.DefaultOptions()
	a, err := rocksim.Run(rocksim.InOrder, w.Program, opts)
	if err != nil {
		panic(err)
	}
	b, err := rocksim.Run(rocksim.SST, w.Program, opts)
	if err != nil {
		panic(err)
	}
	// Register-resident compute: no misses, so SST cannot be slower.
	fmt.Println("same instruction count:", a.Retired == b.Retired)
	fmt.Println("sst at least as fast:", b.Cycles <= a.Cycles)
	// Output:
	// same instruction count: true
	// sst at least as fast: true
}

// ExampleSSTStats inspects the checkpoint machinery after a run.
func ExampleSSTStats() {
	prog, err := rocksim.Assemble(`
		movi r5, 0x200000
		ld64 r6, (r5)      ; cold miss: opens a speculation epoch
		addi r7, r6, 1     ; dependent: deferred
		movi r8, 9         ; independent: executes under the miss
		halt
	`)
	if err != nil {
		panic(err)
	}
	res, err := rocksim.Run(rocksim.SST, prog, rocksim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	st, ok := rocksim.SSTStats(res)
	fmt.Println("sst stats available:", ok)
	fmt.Println("checkpoints:", st.CheckpointsTaken, "commits:", st.EpochCommits)
	fmt.Println("deferred:", st.Deferrals, "replayed:", st.Replays)
	// Output:
	// sst stats available: true
	// checkpoints: 1 commits: 1
	// deferred: 1 replayed: 1
}
