package rocksim_test

import (
	"testing"

	"rocksim"
)

// TestFacadeQuickstart exercises the documented public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	w, err := rocksim.BuildWorkload("oltp", rocksim.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rocksim.Run(rocksim.SST, w.Program, rocksim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC() <= 0 || res.Retired == 0 {
		t.Errorf("empty result: %+v", res)
	}
	st, ok := rocksim.SSTStats(res)
	if !ok || st.CheckpointsTaken == 0 {
		t.Error("SST stats missing")
	}
	if _, ok := rocksim.SSTStats(mustRun(t, rocksim.InOrder, w)); ok {
		t.Error("in-order run claims SST stats")
	}
}

func mustRun(t *testing.T, k rocksim.CoreKind, w *rocksim.Workload) rocksim.Result {
	t.Helper()
	res, err := rocksim.Run(k, w.Program, rocksim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeAssembleAndEmulate(t *testing.T) {
	prog, err := rocksim.Assemble(`
		movi r1, 21
		add  r2, r1, r1
		st64 r2, 0x40(zero)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	emu, m, err := rocksim.Emulate(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	if emu.Executed != 4 || m.Read(0x40, 8) != 42 {
		t.Errorf("executed=%d mem=%d", emu.Executed, m.Read(0x40, 8))
	}
}

func TestFacadeBuilderAPI(t *testing.T) {
	b := rocksim.NewProgramBuilder(rocksim.DefaultTextBase)
	add, ok := rocksim.OpByName("add")
	if !ok {
		t.Fatal("no add opcode")
	}
	b.Movi(1, 5)
	b.Movi(2, 6)
	b.Op(add, 3, 1, 2)
	b.Halt()
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	emu, _, err := rocksim.Emulate(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	if emu.Reg[3] != 11 {
		t.Errorf("r3 = %d", emu.Reg[3])
	}
}

func TestFacadeKindNames(t *testing.T) {
	for _, k := range rocksim.CoreKinds {
		got, err := rocksim.CoreKindByName(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed: %v", k, err)
		}
	}
	if _, err := rocksim.CoreKindByName("bogus"); err == nil {
		t.Error("accepted bogus kind")
	}
	names := rocksim.WorkloadNames()
	if len(names) == 0 {
		t.Fatal("no workloads")
	}
	if len(rocksim.CommercialWorkloadNames()) != 4 {
		t.Error("commercial suite wrong size")
	}
	if len(rocksim.ExperimentIDs()) != 21 {
		t.Errorf("experiments = %d", len(rocksim.ExperimentIDs()))
	}
}

func TestFacadeChip(t *testing.T) {
	w1, _ := rocksim.BuildWorkload("dense", rocksim.ScaleTest)
	w2, _ := rocksim.BuildWorkload("gcc", rocksim.ScaleTest)
	chip, err := rocksim.NewChip(rocksim.SST, []*rocksim.Program{w1.Program, w2.Program}, rocksim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if chip.Throughput() <= 0 {
		t.Error("no throughput")
	}
}
