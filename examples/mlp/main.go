// MLP example: shows how SST converts independent misses into
// memory-level parallelism, and where it cannot (dependent chains).
// Contrasts the two microbenchmark extremes — randarr (independent
// random loads) and chase (pointer chasing) — and sweeps the deferred
// queue to show what bounds the speculation depth.
//
//	go run ./examples/mlp
package main

import (
	"fmt"
	"log"

	"rocksim"
)

func run(kind rocksim.CoreKind, w *rocksim.Workload, opts rocksim.Options) rocksim.Result {
	res, err := rocksim.Run(kind, w.Program, opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	opts := rocksim.DefaultOptions()

	fmt.Println("Two extremes of miss behaviour:")
	fmt.Printf("%-8s %-10s %8s %6s\n", "workload", "machine", "IPC", "MLP")
	for _, name := range []string{"randarr", "chase"} {
		w, err := rocksim.BuildWorkload(name, rocksim.ScaleTest)
		if err != nil {
			log.Fatal(err)
		}
		for _, kind := range []rocksim.CoreKind{rocksim.InOrder, rocksim.OOOLarge, rocksim.SST} {
			res := run(kind, w, opts)
			fmt.Printf("%-8s %-10v %8.3f %6.2f\n", name, kind, res.IPC(), res.Core.Base().MLP())
		}
	}
	fmt.Println("\nrandarr: every load is independent — SST overlaps them (high MLP).")
	fmt.Println("chase:   every load feeds the next — nothing can overlap (MLP ~1).")

	// The deferred queue bounds how far the ahead strand can run, and
	// therefore how many independent misses it can discover.
	fmt.Println("\nDeferred-queue size vs extracted MLP (randarr):")
	w, err := rocksim.BuildWorkload("randarr", rocksim.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %8s %6s\n", "DQ", "IPC", "MLP")
	for _, dq := range []int{0, 8, 16, 32, 64, 128} {
		o := rocksim.DefaultOptions()
		o.SST.DQSize = dq
		res := run(rocksim.SST, w, o)
		fmt.Printf("%6d %8.3f %6.2f\n", dq, res.IPC(), res.Core.Base().MLP())
	}
	fmt.Println("\nDQ=0 degenerates to hardware scout (prefetch + re-execute).")
}
