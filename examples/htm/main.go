// HTM example: ROCK was the first commercial processor with hardware
// transactional memory, built directly on the SST checkpoint and
// speculative-store-buffer machinery this repository implements. Four
// SST cores increment a shared counter and append to a shared log using
// txbegin/txcommit retry loops — no locks, no cas — and the result is
// exact, with conflict aborts doing the serialization.
//
//	go run ./examples/htm
package main

import (
	"fmt"
	"log"

	"rocksim"
)

const src = `
	.org 0x10000
worker:
	movi r5, 0x200000     ; shared counter
	movi r20, 200         ; increments per core
loop:
	txbegin r10, handler
	ld64 r6, (r5)         ; read counter
	addi r6, r6, 1
	st64 r6, (r5)         ; buffered until commit
	slli r7, r6, 3        ; log[old+1] = new value (8B slots)
	add  r7, r7, r5
	st64 r6, 256(r7)      ; second store: log entry
	txcommit
	addi r20, r20, -1
	bne  r20, zero, loop
	halt
handler:
	j loop                ; simple unconditional retry
`

func main() {
	prog, err := rocksim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	entry, _ := prog.Symbol("worker")
	const nCores = 4
	entries := make([]uint64, nCores)
	for i := range entries {
		entries[i] = entry
	}
	chip, err := rocksim.NewSharedChip(rocksim.SST, prog, entries, rocksim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if err := chip.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}

	want := uint64(nCores * 200)
	got := chip.Machines[0].Mem.Read(0x200000, 8)
	fmt.Printf("shared counter: %d (want %d) in %d cycles\n", got, want, chip.Cycles())

	var commits, aborts uint64
	for i := range chip.Cores {
		st, ok := rocksim.ChipSSTStats(chip, i)
		if !ok {
			log.Fatalf("core %d has no SST stats", i)
		}
		fmt.Printf("core %d: %d commits, %d aborts (%d conflicts, %d capacity)\n",
			i, st.Tx.Commits, st.Tx.Aborts,
			st.Tx.AbortsByCode[rocksim.TxAbortConflict],
			st.Tx.AbortsByCode[rocksim.TxAbortCapacity])
		commits += st.Tx.Commits
		aborts += st.Tx.Aborts
	}
	fmt.Printf("total: %d commits, %d aborts — every increment exact, no locks\n", commits, aborts)

	// Verify the log: entries 1..want must all be present.
	ok := true
	for i := uint64(1); i <= want; i++ {
		if chip.Machines[0].Mem.Read(0x200000+256+i*8, 8) != i {
			ok = false
			break
		}
	}
	fmt.Printf("log consistent: %v\n", ok)
}
