// Quickstart: assemble a tiny RK64 program, run it on the SST core and
// on the in-order baseline, and print what the checkpoint machinery did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rocksim"
)

// The program walks a small table with a data-dependent second access —
// a miniature of the miss-then-dependent-work pattern SST targets.
const src = `
	.org 0x10000
	movi r5, table       ; base
	movi r6, 64          ; iterations
	movi r9, 0           ; checksum
loop:
	ld64 r7, (r5)        ; likely a cache miss on first touch
	addi r8, r7, 3       ; dependent work is deferred, not stalled on
	add  r9, r9, r8
	addi r5, r5, 4096    ; stride past the caches' ways
	addi r6, r6, -1
	bne  r6, zero, loop
	st64 r9, 8(zero)
	halt
	.data 0x200000
table:	.quad 7
`

func main() {
	prog, err := rocksim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	opts := rocksim.DefaultOptions()
	for _, kind := range []rocksim.CoreKind{rocksim.InOrder, rocksim.SST} {
		res, err := rocksim.Run(kind, prog, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v  %8d cycles  %6d insts  IPC %.3f  MLP %.2f\n",
			kind, res.Cycles, res.Retired, res.IPC(), res.Core.Base().MLP())
		if st, ok := rocksim.SSTStats(res); ok {
			fmt.Printf("          %d checkpoints, %d epoch commits, %d deferrals, %d replays, %d rollbacks\n",
				st.CheckpointsTaken, st.EpochCommits, st.Deferrals, st.Replays, st.Rollbacks)
		}
	}

	// Architectural truth is independent of the core: the functional
	// emulator gives the same result.
	emu, mem, err := rocksim.Emulate(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden    %8s         %6d insts  checksum=%d\n",
		"-", emu.Executed, mem.Read(8, 8))
}
