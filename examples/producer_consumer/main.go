// Producer/consumer example: two SST cores sharing memory. The producer
// writes a record and publishes it with a flag store behind a barrier;
// the consumer spins on the flag. Demonstrates that the speculative
// store buffer never leaks unpublished data and that coherence
// invalidations propagate the handshake.
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"

	"rocksim"
)

const src = `
	.org 0x10000
producer:
	movi r5, 0x200000
	movi r6, 12345
	st64 r6, 8(r5)        ; the record
	movi r6, 67890
	st64 r6, 16(r5)
	membar                ; publish barrier
	movi r7, 1
	st64 r7, (r5)         ; flag
	halt
consumer:
	movi r5, 0x200000
spin:	ld64 r6, (r5)
	beq  r6, zero, spin   ; wait for the flag
	ld64 r7, 8(r5)
	ld64 r8, 16(r5)
	add  r9, r7, r8
	st64 r9, 24(r5)       ; consume: 12345+67890
	halt
`

func main() {
	prog, err := rocksim.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	prod, ok := prog.Symbol("producer")
	if !ok {
		log.Fatal("no producer symbol")
	}
	cons, ok := prog.Symbol("consumer")
	if !ok {
		log.Fatal("no consumer symbol")
	}

	opts := rocksim.DefaultOptions()
	chip, err := rocksim.NewSharedChip(rocksim.SST, prog, []uint64{prod, cons}, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := chip.Run(50_000_000); err != nil {
		log.Fatal(err)
	}

	sum := chip.Machines[0].Mem.Read(0x200000+24, 8)
	fmt.Printf("consumer computed %d (want %d)\n", sum, 12345+67890)
	fmt.Printf("chip ran %d cycles; %d coherence invalidations\n",
		chip.Cycles(), chip.Hier.Stats.CoherenceInvals)
	for i, c := range chip.Cores {
		fmt.Printf("core %d: %d instructions, IPC %.3f\n", i, c.Retired(),
			float64(c.Retired())/float64(c.Cycle()))
	}
}
