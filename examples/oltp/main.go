// OLTP example: the paper's headline scenario. Runs the TPC-C-class
// synthetic workload on every machine and reports per-thread speedups —
// the miniature version of reproduced Figure 1.
//
//	go run ./examples/oltp           # test scale (seconds)
//	go run ./examples/oltp -full     # evaluation scale
package main

import (
	"flag"
	"fmt"
	"log"

	"rocksim"
)

func main() {
	full := flag.Bool("full", false, "run the evaluation-sized workload")
	flag.Parse()

	scale := rocksim.ScaleTest
	if *full {
		scale = rocksim.ScaleFull
	}
	w, err := rocksim.BuildWorkload("oltp", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %s\n  (stands in for %s)\n\n", w.Name, w.Description, w.Standin)

	opts := rocksim.DefaultOptions()
	var baseIPC float64
	fmt.Printf("%-10s %12s %8s %10s %6s\n", "machine", "cycles", "IPC", "speedup", "MLP")
	for _, kind := range rocksim.CoreKinds {
		res, err := rocksim.Run(kind, w.Program, opts)
		if err != nil {
			log.Fatal(err)
		}
		if kind == rocksim.InOrder {
			baseIPC = res.IPC()
		}
		fmt.Printf("%-10v %12d %8.3f %9.2fx %6.2f\n",
			kind, res.Cycles, res.IPC(), res.IPC()/baseIPC, res.Core.Base().MLP())
	}

	// Why SST wins here: the deferred queue turns a pointer-dependent
	// transaction stream into two concurrent strands.
	res, err := rocksim.Run(rocksim.SST, w.Program, opts)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := rocksim.SSTStats(res)
	fmt.Printf("\nSST anatomy on oltp:\n")
	fmt.Printf("  deferred %d instructions (%.1f%% of retired), replayed %d\n",
		st.Deferrals, 100*float64(st.Deferrals)/float64(st.Retired), st.Replays)
	fmt.Printf("  %d checkpoints -> %d commits, %d rollbacks (%.1f%% work discarded)\n",
		st.CheckpointsTaken, st.EpochCommits, st.Rollbacks,
		100*float64(st.DiscardedInsts)/float64(st.DiscardedInsts+st.Retired))
	fmt.Printf("  mean occupancy: DQ %.1f, SSB %.1f, checkpoints %.1f\n",
		st.DQOcc.Mean(), st.SSBOcc.Mean(), st.CkptOcc.Mean())
}
