// CMP scaling example: ROCK is a 16-core chip of small SST cores. This
// example builds multiprogrammed chips of increasing core counts running
// the commercial mix and compares aggregate throughput of SST cores
// against large out-of-order cores sharing the same L2/DRAM — the
// chip-level version of the paper's area-efficiency argument.
//
//	go run ./examples/cmpscale
package main

import (
	"fmt"
	"log"

	"rocksim"
)

func main() {
	opts := rocksim.DefaultOptions()
	mix := rocksim.CommercialWorkloadNames()

	fmt.Printf("%5s  %-10s %14s %12s\n", "cores", "machine", "chip IPC", "per-core")
	for _, n := range []int{1, 2, 4, 8} {
		progs := make([]*rocksim.Program, n)
		for i := 0; i < n; i++ {
			w, err := rocksim.BuildWorkload(mix[i%len(mix)], rocksim.ScaleTest)
			if err != nil {
				log.Fatal(err)
			}
			progs[i] = w.Program
		}
		for _, kind := range []rocksim.CoreKind{rocksim.OOOLarge, rocksim.SST} {
			chip, err := rocksim.NewChip(kind, progs, opts)
			if err != nil {
				log.Fatal(err)
			}
			if err := chip.Run(2_000_000_000); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d  %-10v %14.3f %12.3f\n",
				n, kind, chip.Throughput(), chip.Throughput()/float64(n))
		}
	}
	fmt.Println("\nPer-core IPC decays as cores contend for the shared L2 and DRAM")
	fmt.Println("banks; the SST chip holds throughput with a fraction of the area")
	fmt.Println("(see experiment T3 for the area/power proxy).")
}
