module rocksim

go 1.22
