// Package rocksim is a cycle-level simulator of Simultaneous
// Speculative Threading (SST) — the checkpoint-based pipeline of Sun's
// ROCK processor (Chaudhry et al., ISCA 2009) — together with the
// baselines the paper compares against (a stall-on-use in-order core and
// small/large out-of-order cores), a shared cache/DRAM hierarchy, a
// CMP harness, an RK64 ISA toolchain, and the synthetic commercial
// workload suite used to reproduce the paper's evaluation.
//
// Quick start:
//
//	w, _ := rocksim.BuildWorkload("oltp", rocksim.ScaleTest)
//	res, _ := rocksim.Run(rocksim.SST, w.Program, rocksim.DefaultOptions())
//	fmt.Printf("IPC %.2f\n", res.IPC())
//
// Everything is deterministic: identical inputs produce identical cycle
// counts, so experiments are exactly reproducible.
package rocksim

import (
	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/experiments"
	"rocksim/internal/inorder"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/ooo"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// CoreKind selects one of the simulated machines.
type CoreKind = sim.Kind

// The simulated machines. SST is the paper's contribution; ExecuteAhead
// (no second strand) and Scout (no deferred queue) are its published
// ablations; the others are the comparison baselines.
const (
	InOrder      CoreKind = sim.KindInOrder
	OOOSmall     CoreKind = sim.KindOOOSmall
	OOOLarge     CoreKind = sim.KindOOOLarge
	SST          CoreKind = sim.KindSST
	SSTBig       CoreKind = sim.KindSSTBig
	ExecuteAhead CoreKind = sim.KindSSTEA
	Scout        CoreKind = sim.KindScout
)

// CoreKinds lists every machine in presentation order.
var CoreKinds = sim.Kinds

// CoreKindByName parses a machine name ("inorder", "ooo-small",
// "ooo-large", "scout", "sst-ea", "sst", "sst-big").
func CoreKindByName(s string) (CoreKind, error) { return sim.KindByName(s) }

// Configuration types for each subsystem. These alias the underlying
// implementation types, so their fields are directly usable.
type (
	// Options bundles the full machine configuration for a run.
	Options = sim.Options
	// SSTConfig parameterizes the SST core (checkpoints, DQ, SSB,
	// strands, failure policies).
	SSTConfig = core.Config
	// InOrderConfig parameterizes the in-order baseline.
	InOrderConfig = inorder.Config
	// OOOConfig parameterizes the out-of-order baselines.
	OOOConfig = ooo.Config
	// HierConfig parameterizes the cache/DRAM hierarchy.
	HierConfig = mem.HierConfig
	// CacheConfig parameterizes one cache level.
	CacheConfig = mem.CacheConfig
	// DRAMConfig parameterizes main memory.
	DRAMConfig = mem.DRAMConfig
	// PredictorConfig parameterizes branch prediction.
	PredictorConfig = bpred.Config
)

// DefaultOptions returns the standard machine configurations used in
// the reproduced evaluation (paper Table 1).
func DefaultOptions() Options { return sim.DefaultOptions() }

// DefaultSSTConfig returns the ROCK-like SST core configuration.
func DefaultSSTConfig() SSTConfig { return core.DefaultConfig() }

// Program is a loadable RK64 program image.
type Program = asm.Program

// Assemble compiles RK64 assembly source (see internal/asm for the
// syntax) into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// NewProgramBuilder returns a programmatic code generator with label
// resolution, for building programs without textual assembly.
func NewProgramBuilder(base uint64) *asm.Builder { return asm.NewBuilder(base) }

// Op is an RK64 opcode and Inst a decoded instruction, for use with the
// program builder.
type (
	Op   = isa.Op
	Inst = isa.Inst
)

// OpByName resolves an assembler mnemonic ("add", "ld64", "beq", ...).
func OpByName(name string) (Op, bool) { return isa.OpByName(name) }

// DefaultTextBase is the conventional code load address.
const DefaultTextBase = asm.DefaultTextBase

// Result is the outcome of one finished run.
type Result = sim.Outcome

// Run executes a program to completion on the selected machine.
func Run(k CoreKind, prog *Program, opts Options) (Result, error) {
	return sim.Run(k, prog, opts)
}

// Workload scales.
const (
	ScaleTest = workload.ScaleTest // small, seconds-fast
	ScaleFull = workload.ScaleFull // evaluation size (footprints ≫ caches)
)

// Workload is one generated benchmark.
type Workload = workload.Spec

// WorkloadNames lists the built-in workloads.
func WorkloadNames() []string { return append([]string(nil), workload.Names...) }

// CommercialWorkloadNames lists the commercial-class suite (the paper's
// headline benchmarks).
func CommercialWorkloadNames() []string {
	return append([]string(nil), workload.CommercialNames...)
}

// BuildWorkload generates a built-in workload at the given scale.
func BuildWorkload(name string, scale workload.Scale) (*Workload, error) {
	return workload.Build(name, scale)
}

// SSTStats returns the SST-specific statistics of a result, if the run
// used an SST-family core (SST, ExecuteAhead, Scout).
func SSTStats(r Result) (*core.Stats, bool) {
	c, ok := r.Core.(*core.Core)
	if !ok {
		return nil, false
	}
	return c.Stats(), true
}

// SSTStatsBlock re-exports the SST statistics type.
type SSTStatsBlock = core.Stats

// ChipSSTStats returns the SST statistics of chip core i, when that core
// is an SST-family model.
func ChipSSTStats(ch *Chip, i int) (*SSTStatsBlock, bool) {
	c, ok := ch.Cores[i].(*core.Core)
	if !ok {
		return nil, false
	}
	return c.Stats(), true
}

// Transaction abort codes (ROCK HTM extension), as delivered in
// txbegin's destination register.
const (
	TxAbortConflict    = core.TxAbortConflict
	TxAbortCapacity    = core.TxAbortCapacity
	TxAbortUnsupported = core.TxAbortUnsupported
	TxAbortNested      = core.TxAbortNested
)

// BaseStats re-exports the common per-core statistics block.
type BaseStats = cpu.BaseStats

// Emulate runs a program on the golden functional model (no timing) and
// returns the emulator (registers, instruction count) and final memory.
func Emulate(prog *Program, maxInsts uint64) (*isa.Emulator, *mem.Sparse, error) {
	return sim.RunEmulator(prog, maxInsts)
}

// Chip is a simulated chip multiprocessor.
type Chip = cmp.Chip

// NewChip builds a multiprogrammed CMP: core i of kind k runs progs[i]
// in a private address space over the shared L2/DRAM. An unknown kind
// returns an error. When opts.Faults is set, each core gets its own
// injector replaying the plan, and the shared hierarchy another.
func NewChip(k CoreKind, progs []*Program, opts Options) (*Chip, error) {
	ch, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return sim.NewCore(k, m, opts, entry)
		})
	if err != nil {
		return nil, err
	}
	installChipFaults(ch, opts)
	return ch, nil
}

// NewSharedChip builds a shared-memory CMP: every core of kind k
// executes prog's image in one coherent memory, starting at entries[i].
func NewSharedChip(k CoreKind, prog *Program, entries []uint64, opts Options) (*Chip, error) {
	ch, err := cmp.NewShared(opts.Hier, opts.Pred, prog, entries,
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return sim.NewCore(k, m, opts, entry)
		})
	if err != nil {
		return nil, err
	}
	installChipFaults(ch, opts)
	return ch, nil
}

// installChipFaults arms the shared hierarchy's fault injector for a
// chip built under a fault plan (per-core injectors were installed by
// sim.NewCore).
func installChipFaults(ch *Chip, opts Options) {
	if opts.Faults != nil {
		ch.Hier.SetFaults(opts.Faults.New(opts.Sink))
	}
}

// Experiment harness: regenerates the paper's tables and figures.
type (
	// ExperimentRunner caches workload runs across experiments.
	ExperimentRunner = experiments.Runner
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = experiments.Result
)

// NewExperimentRunner returns an experiment harness.
func NewExperimentRunner() *ExperimentRunner { return experiments.NewRunner() }

// ExperimentIDs lists every reproducible artifact id (T1, T2, F1..F16, T3).
func ExperimentIDs() []string { return append([]string(nil), experiments.All...) }
