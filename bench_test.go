// Benchmark harness: one benchmark per reproduced table/figure. Each
// bench regenerates its artifact (at test scale, so the full suite runs
// in minutes) and reports the headline numbers as custom metrics; the
// full-scale numbers in EXPERIMENTS.md come from `go run ./cmd/sstbench
// -scale full`. Simulator-throughput benches at the bottom measure the
// simulator itself (simulated cycles per wall second).
package rocksim_test

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"rocksim"
	"rocksim/internal/experiments"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// benchExperiment regenerates one artifact per iteration and lets the
// caller extract metrics from the result.
func benchExperiment(b *testing.B, id string, metrics func(*experiments.Result, *testing.B)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		res, err := r.Run(id, workload.ScaleTest)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			res.Fprint(io.Discard)
			if metrics != nil {
				metrics(res, b)
			}
		}
	}
}

// geoRow pulls a float from the named column of the geomean row.
func geoCell(res *experiments.Result, col int) float64 {
	rows := res.Tables[0].Rows()
	last := rows[len(rows)-1]
	v, _ := strconv.ParseFloat(last[col], 64)
	return v
}

func BenchmarkTable1Configurations(b *testing.B) {
	benchExperiment(b, "T1", nil)
}

func BenchmarkTable2WorkloadCharacterization(b *testing.B) {
	benchExperiment(b, "T2", nil)
}

func BenchmarkFigure1PerfComparison(b *testing.B) {
	benchExperiment(b, "F1", func(res *experiments.Result, b *testing.B) {
		// Columns: workload, inorder, ooo-small, ooo-large, scout,
		// sst-ea, sst, sst-big.
		b.ReportMetric(geoCell(res, 6), "sst_speedup_vs_inorder")
		b.ReportMetric(geoCell(res, 6)/geoCell(res, 3), "sst_vs_ooo_large")
		b.ReportMetric(geoCell(res, 7)/geoCell(res, 3), "sst_big_vs_ooo_large")
	})
}

func BenchmarkFigure2ModeBreakdown(b *testing.B) {
	benchExperiment(b, "F2", nil)
}

func BenchmarkFigure3DQSweep(b *testing.B) {
	benchExperiment(b, "F3", nil)
}

func BenchmarkFigure4CheckpointSweep(b *testing.B) {
	benchExperiment(b, "F4", nil)
}

func BenchmarkFigure5SSBSweep(b *testing.B) {
	benchExperiment(b, "F5", nil)
}

func BenchmarkFigure6MemLatencySweep(b *testing.B) {
	benchExperiment(b, "F6", nil)
}

func BenchmarkFigure7MLP(b *testing.B) {
	benchExperiment(b, "F7", nil)
}

func BenchmarkFigure8Ablation(b *testing.B) {
	benchExperiment(b, "F8", func(res *experiments.Result, b *testing.B) {
		// Columns: workload, inorder, scout, sst-ea, sst
		b.ReportMetric(geoCell(res, 2), "scout_speedup")
		b.ReportMetric(geoCell(res, 3), "ea_speedup")
		b.ReportMetric(geoCell(res, 4), "sst_speedup")
	})
}

func BenchmarkFigure9CMPScaling(b *testing.B) {
	benchExperiment(b, "F9", nil)
}

func BenchmarkFigure10RollbackAccounting(b *testing.B) {
	benchExperiment(b, "F10", nil)
}

func BenchmarkFigure11BranchSensitivity(b *testing.B) {
	benchExperiment(b, "F11", nil)
}

func BenchmarkFigure12SMTMode(b *testing.B) {
	benchExperiment(b, "F12", nil)
}

func BenchmarkFigure13PolicyAblation(b *testing.B) {
	benchExperiment(b, "F13", nil)
}

func BenchmarkFigure14PrefetchInterplay(b *testing.B) {
	benchExperiment(b, "F14", nil)
}

func BenchmarkFigure15TLBSensitivity(b *testing.B) {
	benchExperiment(b, "F15", nil)
}

func BenchmarkFigure16HTMContention(b *testing.B) {
	benchExperiment(b, "F16", nil)
}

func BenchmarkTable3AreaPowerProxy(b *testing.B) {
	benchExperiment(b, "T3", nil)
}

// Simulator-throughput benches: how many simulated cycles and retired
// instructions per wall-clock second each core model achieves on the
// OLTP workload. Useful for tracking simulator performance regressions.
func benchSimulatorThroughput(b *testing.B, kind rocksim.CoreKind) {
	w, err := rocksim.BuildWorkload("oltp", rocksim.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	opts := rocksim.DefaultOptions()
	var cycles, insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rocksim.Run(kind, w.Program, opts)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		insts += res.Retired
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

func BenchmarkSimInOrder(b *testing.B)  { benchSimulatorThroughput(b, rocksim.InOrder) }
func BenchmarkSimOOOSmall(b *testing.B) { benchSimulatorThroughput(b, rocksim.OOOSmall) }
func BenchmarkSimOOOLarge(b *testing.B) { benchSimulatorThroughput(b, rocksim.OOOLarge) }
func BenchmarkSimSST(b *testing.B)      { benchSimulatorThroughput(b, rocksim.SST) }
func BenchmarkSimScout(b *testing.B)    { benchSimulatorThroughput(b, rocksim.Scout) }

// BenchmarkEmulator measures the golden functional model's speed.
func BenchmarkEmulator(b *testing.B) {
	w, err := rocksim.BuildWorkload("dense", rocksim.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emu, _, err := rocksim.Emulate(w.Program, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		insts += emu.Executed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

// sanity compile-time checks that the facade exposes the right kinds.
var _ = fmt.Sprintf("%v %v", rocksim.ExecuteAhead, sim.KindSSTEA)
