# Verification tiers. tier1 is the gate every change must keep green
# (build, vet, tests); tier2 adds the race detector (the experiment
# harness runs simulations on a worker pool, so -race now guards real
# concurrency), a parallel-determinism smoke that diffs sstbench -j 4
# against -j 1, the fault-fuzz smoke (fixed seeds, bounded wall-clock)
# of the speculation-invisibility oracle, the leak-fuzz smoke (gadget
# corpus + fixed seeds through the transient-leakage oracle), a bounded
# coverage-guided differential fuzz session (fuzz-short), and the
# rocksimd service
# smoke (serve-smoke: load, grid byte-identity, SIGTERM drain), and the
# fleet smoke (fleet-smoke: 3 shards behind rockgate, grid
# byte-identity, loss-free drain of all four processes);
# determinism re-runs the observability tests twice in one process to
# prove the exports are byte-stable across map-iteration orders.

GO ?= go

.PHONY: all tier1 tier2 race smoke-parallel fault-fuzz leak-fuzz fuzz-short serve-smoke fleet-smoke trace-smoke bpred-grid-smoke determinism ci bench-overhead golden bench bench-guard profile

all: tier1

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m ./...

# Fault-injection smoke: fixed seeds through the speculation-
# invisibility oracle (see docs/ROBUSTNESS.md). The full 200-seed sweep
# runs as TestFaultFuzzEquivalence in the ordinary test suite; this
# target is the quick, always-reproducible subset for pre-commit runs.
fault-fuzz:
	$(GO) test ./internal/sim -run 'TestFaultFuzzSmoke|TestFaultOracleTeeth' -count=1 -timeout 10m

# Transient-leakage smoke: the gadget corpus must leak unmitigated and
# go clean under the secure modes, and fixed-seed generated programs
# with secret-tainted data must pass the differential leakage oracle on
# every core kind (see docs/SECURITY.md). The wider 60-seed sweep runs
# as TestLeakFuzzNoFalsePositives in the ordinary test suite.
leak-fuzz:
	$(GO) test ./internal/sim -run 'TestLeakFuzzSmoke|TestGadgetsLeakUnmitigated|TestGadgetLeakMatrix' -count=1 -timeout 10m

# Prove the -j worker pool changes nothing but wall clock: regenerate
# every experiment at test scale serially and with 4 workers and
# require byte-identical tables (only the "regenerated in" wall-clock
# lines may differ).
smoke-parallel:
	$(GO) build -o /tmp/sstbench-smoke ./cmd/sstbench
	/tmp/sstbench-smoke -scale test -j 1 | grep -v 'regenerated in' > /tmp/sstbench-j1.txt
	/tmp/sstbench-smoke -scale test -j 4 | grep -v 'regenerated in' > /tmp/sstbench-j4.txt
	diff -u /tmp/sstbench-j1.txt /tmp/sstbench-j4.txt
	@echo "smoke-parallel: -j 1 and -j 4 output identical"

tier2: race smoke-parallel fault-fuzz leak-fuzz fuzz-short serve-smoke fleet-smoke trace-smoke bpred-grid-smoke bench-guard

# Bounded coverage-guided session of the native differential fuzz
# target (internal/sim FuzzDifferential): the mutator drives the
# program generator's choice stream, so every input is a valid program
# diffed emulator-vs-every-core. The seed corpus under
# internal/sim/testdata/corpus runs in plain `go test` as regressions.
fuzz-short:
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzDifferential -fuzztime 20s

# End-to-end daemon smoke: boot rocksimd, load it with rockload, prove
# the daemon's /v1/grid output is byte-identical to sstbench, then
# SIGTERM it and require a clean (exit 0) drain.
serve-smoke:
	$(GO) build -o /tmp/rocksimd-smoke ./cmd/rocksimd
	$(GO) build -o /tmp/rockload-smoke ./cmd/rockload
	$(GO) build -o /tmp/sstbench-smoke ./cmd/sstbench
	@set -e; \
	/tmp/rocksimd-smoke -addr 127.0.0.1:8321 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		/tmp/rockload-smoke -addr http://127.0.0.1:8321 -healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/rockload-smoke -addr http://127.0.0.1:8321 -n 120 -c 8 -scale test -o /tmp/BENCH_serve_smoke.json; \
	/tmp/rockload-smoke -addr http://127.0.0.1:8321 -scale test -grid-exps T1,F3,F12 -grid-out /tmp/serve-grid.txt; \
	/tmp/sstbench-smoke -scale test -j 1 -exp T1,F3,F12 | grep -v 'regenerated in' > /tmp/serve-grid-ref.txt; \
	diff -u /tmp/serve-grid-ref.txt /tmp/serve-grid.txt; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "serve-smoke: grid byte-identical to sstbench; daemon drained cleanly on SIGTERM"

# Fleet smoke: boot 3 rocksimd shards and a rockgate router in front,
# prove the gateway's /v1/grid (cells fanned out by cache key, the
# bespoke F12 routed whole) is byte-identical to sstbench, then SIGTERM
# all four processes and require clean (exit 0) drains.
fleet-smoke:
	$(GO) build -o /tmp/rocksimd-smoke ./cmd/rocksimd
	$(GO) build -o /tmp/rockgate-smoke ./cmd/rockgate
	$(GO) build -o /tmp/rockload-smoke ./cmd/rockload
	$(GO) build -o /tmp/sstbench-smoke ./cmd/sstbench
	@set -e; \
	/tmp/rocksimd-smoke -addr 127.0.0.1:8331 -shard-id s0 & p0=$$!; \
	/tmp/rocksimd-smoke -addr 127.0.0.1:8332 -shard-id s1 & p1=$$!; \
	/tmp/rocksimd-smoke -addr 127.0.0.1:8333 -shard-id s2 & p2=$$!; \
	trap 'kill $$p0 $$p1 $$p2 $$pg 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		/tmp/rockload-smoke -targets http://127.0.0.1:8331,http://127.0.0.1:8332,http://127.0.0.1:8333 -healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/rockgate-smoke -addr 127.0.0.1:8330 -shards http://127.0.0.1:8331,http://127.0.0.1:8332,http://127.0.0.1:8333 & pg=$$!; \
	for i in $$(seq 1 50); do \
		/tmp/rockload-smoke -addr http://127.0.0.1:8330 -healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/rockload-smoke -addr http://127.0.0.1:8330 -scale test -grid-exps T1,F3,F12 -grid-out /tmp/fleet-grid.txt; \
	/tmp/sstbench-smoke -scale test -j 1 -exp T1,F3,F12 | grep -v 'regenerated in' > /tmp/fleet-grid-ref.txt; \
	diff -u /tmp/fleet-grid-ref.txt /tmp/fleet-grid.txt; \
	kill -TERM $$pg; wait $$pg; \
	kill -TERM $$p0 $$p1 $$p2; wait $$p0; wait $$p1; wait $$p2; \
	trap - EXIT; \
	echo "fleet-smoke: 3-shard grid byte-identical to sstbench; gateway and shards drained cleanly"

# Predictor-grid smoke: the B1 kind-x-sharing grid must be byte-
# identical serial vs -j 4 through sstbench, byte-identical again
# through a rocksimd round-trip, and the daemon must export the bpred/*
# predictor counters on /metrics once it has served cells.
bpred-grid-smoke:
	$(GO) build -o /tmp/sstbench-smoke ./cmd/sstbench
	$(GO) build -o /tmp/rocksimd-smoke ./cmd/rocksimd
	$(GO) build -o /tmp/rockload-smoke ./cmd/rockload
	/tmp/sstbench-smoke -scale test -j 1 -exp B1 | grep -v 'regenerated in' > /tmp/bpred-grid-j1.txt
	/tmp/sstbench-smoke -scale test -j 4 -exp B1 | grep -v 'regenerated in' > /tmp/bpred-grid-j4.txt
	diff -u /tmp/bpred-grid-j1.txt /tmp/bpred-grid-j4.txt
	@set -e; \
	/tmp/rocksimd-smoke -addr 127.0.0.1:8341 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		/tmp/rockload-smoke -addr http://127.0.0.1:8341 -healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/rockload-smoke -addr http://127.0.0.1:8341 -scale test -grid-exps B1 -grid-out /tmp/bpred-grid-serve.txt; \
	diff -u /tmp/bpred-grid-j1.txt /tmp/bpred-grid-serve.txt; \
	/tmp/rockload-smoke -addr http://127.0.0.1:8341 -n 20 -c 4 -scale test -o /tmp/BENCH_bpred_smoke.json >/dev/null; \
	curl -sf http://127.0.0.1:8341/metrics | grep -q '^rocksim_bpred_dir_lookups '; \
	curl -sf http://127.0.0.1:8341/metrics | grep -q '^rocksim_bpred_deferred_dir_trains '; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "bpred-grid-smoke: B1 byte-identical (serial, -j 4, rocksimd); bpred/* counters on /metrics"

# Tracing and cycle-accounting smoke on real tool output (the unit
# tests cover the libraries; this covers what the binaries write):
# run a traced single cell and a traced small grid, lint the Chrome
# trace JSON (parses; every span has ts/dur/pid/tid), and check the
# cpi_stack sum invariant on the emitted report.
trace-smoke:
	$(GO) build -o /tmp/sstsim-trace ./cmd/sstsim
	$(GO) build -o /tmp/sstbench-trace ./cmd/sstbench
	$(GO) build -o /tmp/tracelint ./cmd/tracelint
	/tmp/sstsim-trace -core sst -workload chase -scale test -json -trace /tmp/trace-run.json > /tmp/trace-report.json
	/tmp/sstbench-trace -scale test -j 2 -exp T1,F3 -trace /tmp/trace-grid.json > /dev/null
	/tmp/tracelint -trace /tmp/trace-run.json -report /tmp/trace-report.json
	/tmp/tracelint -trace /tmp/trace-grid.json
	@echo "trace-smoke: traces render-valid; cpi_stack sums to cycles"

# Measure simulator throughput (simulated cycles per wall-clock second
# and allocations per run, every core kind) and record the baseline JSON
# consumed by bench-guard. Machine-specific: regenerate on the machine
# that runs the guard.
bench:
	$(GO) run ./cmd/simthroughput -o BENCH_simthroughput.json
	$(GO) run ./cmd/rockload -self -n 200 -c 8 -scale test -o BENCH_serve.json
	$(GO) run ./cmd/rockload -fleet-bench -fleet-sizes 1,2,4 -shard-jobs 1 -n 60 -c 6 -scale test -o BENCH_serve.json

# Fail when any kind runs at <80% of the recorded simcycles/s or
# allocates >120% of the recorded allocs/op, when a pooled (reused
# sim.Instance) short-program run exceeds 100 allocs/op — an ABSOLUTE
# ceiling, independent of the baseline — or falls under 80% of the
# recorded pooled runs/s, or when the service serves
# <80% of the recorded req/s (p95 >120% + 5ms also fails); when the
# baseline carries a "fleet" section, each recorded fleet size is
# re-measured and must hold >=80% of its recorded cell throughput and
# scaling factor with no new popular-cell misses; a missing baseline
# (or missing fleet section) skips the corresponding guard.
bench-guard:
	$(GO) run ./cmd/simthroughput -check BENCH_simthroughput.json
	$(GO) run ./cmd/rockload -check BENCH_serve.json

# CPU+heap profile of a test-scale sstbench run, for hot-loop work (see
# docs/PERFORMANCE.md). Inspect with: go tool pprof cpu.prof
profile:
	$(GO) build -o /tmp/sstbench-prof ./cmd/sstbench
	/tmp/sstbench-prof -scale test -j 1 -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "profile: wrote cpu.prof and mem.prof (go tool pprof cpu.prof)"

determinism:
	$(GO) test -run TestObs -count=2 ./...

ci: tier1 tier2 determinism

# Guard the near-zero disabled cost of the observability layer: compare
# ns/op by hand against the seed baseline recorded in ISSUE.md.
bench-overhead:
	$(GO) test -bench SimSST -benchtime 2x -run '^$$' .

# Regenerate the Chrome-trace golden file after a deliberate exporter
# format change.
golden:
	$(GO) test ./internal/obs -run TestObsChromeGolden -update
