# Verification tiers. tier1 is the gate every change must keep green;
# tier2 adds vet + the race detector (the simulator is single-threaded,
# so -race is cheap insurance against future concurrency); determinism
# re-runs the observability tests twice in one process to prove the
# exports are byte-stable across map-iteration orders.

GO ?= go

.PHONY: all tier1 tier2 determinism ci bench-overhead golden

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

determinism:
	$(GO) test -run TestObs -count=2 ./...

ci: tier1 tier2 determinism

# Guard the near-zero disabled cost of the observability layer: compare
# ns/op by hand against the seed baseline recorded in ISSUE.md.
bench-overhead:
	$(GO) test -bench SimSST -benchtime 2x -run '^$$' .

# Regenerate the Chrome-trace golden file after a deliberate exporter
# format change.
golden:
	$(GO) test ./internal/obs -run TestObsChromeGolden -update
