package asm

import (
	"strings"
	"testing"

	"rocksim/internal/isa"
)

func decodeAll(t *testing.T, p *Program) []isa.Inst {
	t.Helper()
	for _, seg := range p.Segments {
		if seg.Addr != DefaultTextBase {
			continue
		}
		var out []isa.Inst
		for off := 0; off+isa.InstSize <= len(seg.Data); off += isa.InstSize {
			in, err := isa.Decode(seg.Data[off:])
			if err != nil {
				t.Fatalf("decode at %d: %v", off, err)
			}
			out = append(out, in)
		}
		return out
	}
	t.Fatal("no text segment")
	return nil
}

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		movi r1, 42
		addi r2, r1, -1
		add  r3, r1, r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.OpMovi, Rd: 1, Imm: 42},
		{Op: isa.OpAddi, Rd: 2, Rs1: 1, Imm: -1},
		{Op: isa.OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.OpHalt},
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d insts, want %d", len(insts), len(want))
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, insts[i], want[i])
		}
	}
	if p.Entry != DefaultTextBase {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
	start:	movi r1, 3
	loop:	addi r1, r1, -1
		bne  r1, zero, loop
		beq  r1, zero, done
		nop
	done:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	// bne at index 2, target loop at index 1: offset -8.
	if insts[2].Imm != -8 {
		t.Errorf("bne imm = %d, want -8", insts[2].Imm)
	}
	// beq at index 3, target done at index 5: offset +16.
	if insts[3].Imm != 16 {
		t.Errorf("beq imm = %d, want 16", insts[3].Imm)
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble(`
		ld64  r1, 16(r2)
		ld8   r3, (r4)
		st32  r5, -8(r6)
		prefetch 128(r7)
		cas   r1, (r2), r3
		jalr  r1, 4(r5)
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0] != (isa.Inst{Op: isa.OpLd64, Rd: 1, Rs1: 2, Imm: 16}) {
		t.Errorf("ld64 = %v", insts[0])
	}
	if insts[1] != (isa.Inst{Op: isa.OpLd8, Rd: 3, Rs1: 4}) {
		t.Errorf("ld8 = %v", insts[1])
	}
	if insts[2] != (isa.Inst{Op: isa.OpSt32, Rs1: 6, Rs2: 5, Imm: -8}) {
		t.Errorf("st32 = %v", insts[2])
	}
	if insts[3] != (isa.Inst{Op: isa.OpPrefetch, Rs1: 7, Imm: 128}) {
		t.Errorf("prefetch = %v", insts[3])
	}
	if insts[4] != (isa.Inst{Op: isa.OpCas, Rd: 1, Rs1: 2, Rs2: 3}) {
		t.Errorf("cas = %v", insts[4])
	}
	if insts[5] != (isa.Inst{Op: isa.OpJalr, Rd: 1, Rs1: 5, Imm: 4}) {
		t.Errorf("jalr = %v", insts[5])
	}
}

func TestAssemblePseudo(t *testing.T) {
	p, err := Assemble(`
	f:	ret
	main:	li  r1, -7
		mv  r2, r1
		call f
		j   main
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0] != (isa.Inst{Op: isa.OpJalr, Rd: 0, Rs1: isa.RegRA}) {
		t.Errorf("ret = %v", insts[0])
	}
	if insts[1] != (isa.Inst{Op: isa.OpMovi, Rd: 1, Imm: -7}) {
		t.Errorf("li = %v", insts[1])
	}
	if insts[2] != (isa.Inst{Op: isa.OpAddi, Rd: 2, Rs1: 1}) {
		t.Errorf("mv = %v", insts[2])
	}
	if insts[3].Op != isa.OpJal || insts[3].Rd != isa.RegRA {
		t.Errorf("call = %v", insts[3])
	}
	if insts[4].Op != isa.OpJal || insts[4].Rd != 0 || insts[4].Imm != -24 {
		t.Errorf("j = %v", insts[4])
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	p, err := Assemble(`
		.org 0x10000
		movi r1, tbl
		halt
		.data 0x20000
	tbl:	.quad 0x1122334455667788
		.word 0xaabbccdd
		.half 0x1234
		.byte 0x7f
		.zero 3
		.asciz "hi"
	`)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	for _, s := range p.Segments {
		if s.Addr == 0x20000 {
			data = s.Data
		}
	}
	if data == nil {
		t.Fatal("no data segment")
	}
	want := []byte{
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
		0xdd, 0xcc, 0xbb, 0xaa,
		0x34, 0x12,
		0x7f,
		0, 0, 0,
		'h', 'i', 0,
	}
	if len(data) != len(want) {
		t.Fatalf("data len %d, want %d", len(data), len(want))
	}
	for i := range want {
		if data[i] != want[i] {
			t.Errorf("data[%d] = %#x, want %#x", i, data[i], want[i])
		}
	}
	// Label used as an immediate resolves to its address.
	insts := decodeAll(t, p)
	if insts[0].Imm != 0x20000 {
		t.Errorf("movi tbl imm = %#x", insts[0].Imm)
	}
	if addr, ok := p.Symbol("tbl"); !ok || addr != 0x20000 {
		t.Errorf("symbol tbl = %#x, %v", addr, ok)
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	p, err := Assemble(`
		.entry main
	helper:	halt
	main:	movi r1, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != DefaultTextBase+isa.InstSize {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble(`
		movi r1, 1   ; semicolon comment
		movi r2, 2   # hash comment
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(decodeAll(t, p)); n != 3 {
		t.Errorf("%d insts, want 3", n)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",           // unknown mnemonic
		"add r1, r2",             // missing operand
		"movi r99, 1",            // bad register
		"beq r1, r2, nowhere",    // undefined label
		"l: nop\nl: nop",         // duplicate label
		".quad 1",                // data directive outside .data
		"ld64 r1, r2",            // malformed mem operand
		"movi r1, 0x1ffffffff",   // immediate too wide
		".data 0x100\n.asciz hi", // unquoted string
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestAssembleOverlappingSegments(t *testing.T) {
	_, err := Assemble(`
		.org 0x1000
		halt
		.data 0x1000
		.quad 1
	`)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("want overlap error, got %v", err)
	}
}

func TestBuilderFixups(t *testing.T) {
	b := NewBuilder(0x1000)
	b.SetEntry("main")
	b.Label("fn")
	b.Ret()
	b.Label("main")
	b.Movi(1, 5)
	b.Label("top")
	b.Opi(isa.OpAddi, 1, 1, -1)
	b.Call("fn")
	b.Br(isa.OpBne, 1, 0, "top")
	b.MoviLabel(2, "top")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1008 {
		t.Errorf("entry = %#x", p.Entry)
	}
	insts := decodeAll2(t, p, 0x1000)
	top := uint64(0x1010)
	// call fn at 0x1018: offset fn(0x1000) - 0x1018 = -0x18
	if insts[3].Imm != -0x18 {
		t.Errorf("call imm = %d", insts[3].Imm)
	}
	// bne at 0x1020 -> top(0x1010): -0x10
	if insts[4].Imm != -0x10 {
		t.Errorf("bne imm = %d", insts[4].Imm)
	}
	if uint64(insts[5].Imm) != top {
		t.Errorf("movi label imm = %#x", insts[5].Imm)
	}
}

func decodeAll2(t *testing.T, p *Program, base uint64) []isa.Inst {
	t.Helper()
	for _, seg := range p.Segments {
		if seg.Addr != base {
			continue
		}
		var out []isa.Inst
		for off := 0; off+isa.InstSize <= len(seg.Data); off += isa.InstSize {
			in, err := isa.Decode(seg.Data[off:])
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			out = append(out, in)
		}
		return out
	}
	t.Fatal("segment not found")
	return nil
}

func TestBuilderMovImm64(t *testing.T) {
	cases := []int64{0, 1, -1, 1 << 31, -(1 << 31), 0x123456789abcdef0, -0x123456789abcdef0}
	for _, v := range cases {
		b := NewBuilder(0x1000)
		b.MovImm64(5, 6, v)
		b.Halt()
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		m := newEmuMem()
		p.Load(m)
		e := newEmu(p.Entry, m)
		if err := e.Run(100); err != nil {
			t.Fatal(err)
		}
		if e.Reg[5] != v {
			t.Errorf("MovImm64(%#x): got %#x", uint64(v), uint64(e.Reg[5]))
		}
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Jmp("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Error("accepted undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("x")
	b.Label("x")
	b.Halt()
	if _, err := b.Finish(); err == nil {
		t.Error("accepted duplicate label")
	}
}

// Minimal emulator shim (avoids an import cycle with internal/mem).
type emuMem map[uint64]byte

func newEmuMem() emuMem { return emuMem{} }

func (m emuMem) Read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m emuMem) Write(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

func (m emuMem) WriteBytes(addr uint64, src []byte) {
	for i, b := range src {
		m[addr+uint64(i)] = b
	}
}

func newEmu(entry uint64, m emuMem) *isa.Emulator { return isa.NewEmulator(entry, m) }

func TestAssembleEmulateEndToEnd(t *testing.T) {
	p, err := Assemble(`
		.org 0x10000
		.entry main
	sumto:	; r5 in -> r6 = sum 1..r5
		movi r6, 0
	s1:	add  r6, r6, r5
		addi r5, r5, -1
		bne  r5, zero, s1
		ret
	main:	movi r5, 10
		call sumto
		movi r7, data
		st64 r6, (r7)
		halt
		.data 0x20000
	data:	.quad 0
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := newEmuMem()
	p.Load(m)
	e := newEmu(p.Entry, m)
	if err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(0x20000, 8); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAssembleTransactions(t *testing.T) {
	p, err := Assemble(`
		txbegin r10, handler
		movi r1, 1
		txcommit
		halt
	handler:
		movi r1, 2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	insts := decodeAll(t, p)
	if insts[0].Op != isa.OpTxBegin || insts[0].Rd != 10 {
		t.Errorf("txbegin = %v", insts[0])
	}
	// handler is at index 4: offset 4*8 - 0 = 32.
	if insts[0].Imm != 32 {
		t.Errorf("handler offset = %d, want 32", insts[0].Imm)
	}
	if insts[2].Op != isa.OpTxCommit {
		t.Errorf("txcommit = %v", insts[2])
	}
}

func TestAssembleTransactionErrors(t *testing.T) {
	bad := []string{
		"txbegin r1",          // missing handler
		"txcommit r1",         // spurious operand
		"txbegin r1, nowhere", // undefined handler
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
