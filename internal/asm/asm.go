package asm

import (
	"fmt"
	"strconv"
	"strings"

	"rocksim/internal/isa"
)

// Assemble parses RK64 assembly source into a Program.
//
// Syntax overview (one statement per line; ';' or '#' starts a comment):
//
//	        .org 0x10000          ; set code base (before first instruction)
//	        .entry start          ; entry point label (default: first inst)
//	start:  movi r5, 100
//	loop:   addi r5, r5, -1
//	        ld64 r6, 8(r7)
//	        st64 r6, (r8)
//	        beq  r5, zero, done
//	        j    loop             ; pseudo: jal r0
//	done:   halt
//	        .data 0x200000        ; switch to a data segment at address
//	tbl:    .quad 1, 2, 3
//	        .word 7               ; 4 bytes
//	        .half 7               ; 2 bytes
//	        .byte 7
//	        .zero 64
//	        .asciz "hello"
//	        .secret tbl, 64       ; mark [start, start+len) as secret data
//	                              ; for the transient-leakage oracle
//
// Registers are r0..r31 with aliases zero (r0), ra (r1), sp (r2).
// Pseudo-instructions: j label; call label; ret; li rd, imm; mv rd, rs.
// Labels may be used wherever an immediate is expected: pc-relative in
// branches/jal, absolute elsewhere.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels:   map[string]uint64{},
		textBase: DefaultTextBase,
	}
	lines := strings.Split(src, "\n")
	// Pass 1: lay out addresses and collect labels.
	if err := a.pass(lines, true); err != nil {
		return nil, err
	}
	// Pass 2: emit.
	if err := a.pass(lines, false); err != nil {
		return nil, err
	}
	return a.finish()
}

type assembler struct {
	labels   map[string]uint64
	textBase uint64
	orgSet   bool

	entryLabel string

	// Emission state (both passes; only pass 2 keeps results).
	insts   []isa.Inst
	segs    []dataSeg
	secrets []SecretRegion

	// Cursor.
	inData  bool
	dataPos uint64
	curSeg  *dataSeg
	instPos int // instruction index
}

type dataSeg struct {
	addr uint64
	data []byte
}

func (a *assembler) pc() uint64 {
	return a.textBase + uint64(a.instPos)*isa.InstSize
}

func (a *assembler) pass(lines []string, first bool) error {
	a.inData = false
	a.instPos = 0
	a.curSeg = nil
	a.insts = a.insts[:0]
	a.segs = a.segs[:0]
	a.secrets = a.secrets[:0]
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) at line start.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if !isIdent(head) {
				break
			}
			if first {
				if _, dup := a.labels[head]; dup {
					return fmt.Errorf("line %d: duplicate label %q", ln+1, head)
				}
				if a.inData {
					a.labels[head] = a.dataPos
				} else {
					a.labels[head] = a.pc()
				}
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.stmt(line, first); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return nil
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return s[:i]
			}
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) stmt(line string, first bool) error {
	mnem, rest := splitWord(line)
	if strings.HasPrefix(mnem, ".") {
		return a.directive(mnem, rest, first)
	}
	a.inData = false
	in, err := a.instruction(mnem, rest, first)
	if err != nil {
		return err
	}
	a.insts = append(a.insts, in...)
	a.instPos += len(in)
	return nil
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

func (a *assembler) directive(name, rest string, first bool) error {
	switch name {
	case ".org":
		if a.instPos > 0 {
			return fmt.Errorf(".org after instructions")
		}
		v, err := a.immValue(rest, first)
		if err != nil {
			return err
		}
		a.textBase = uint64(v)
		a.orgSet = true
		return nil
	case ".entry":
		a.entryLabel = strings.TrimSpace(rest)
		if a.entryLabel == "" {
			return fmt.Errorf(".entry needs a label")
		}
		return nil
	case ".data":
		v, err := a.immValue(rest, first)
		if err != nil {
			return err
		}
		a.inData = true
		a.dataPos = uint64(v)
		a.segs = append(a.segs, dataSeg{addr: uint64(v)})
		a.curSeg = &a.segs[len(a.segs)-1]
		return nil
	case ".quad", ".word", ".half", ".byte":
		if !a.inData {
			return fmt.Errorf("%s outside .data", name)
		}
		size := map[string]int{".quad": 8, ".word": 4, ".half": 2, ".byte": 1}[name]
		for _, f := range splitOperands(rest) {
			v, err := a.immValue(f, first)
			if err != nil {
				return err
			}
			var buf [8]byte
			for i := 0; i < size; i++ {
				buf[i] = byte(uint64(v) >> (8 * i))
			}
			a.appendData(buf[:size])
		}
		return nil
	case ".zero":
		if !a.inData {
			return fmt.Errorf(".zero outside .data")
		}
		v, err := a.immValue(rest, first)
		if err != nil {
			return err
		}
		a.appendData(make([]byte, v))
		return nil
	case ".secret":
		ops := splitOperands(rest)
		if len(ops) != 2 {
			return fmt.Errorf(".secret needs start, len")
		}
		start, err := a.immValue(ops[0], first)
		if err != nil {
			return err
		}
		n, err := a.immValue(ops[1], first)
		if err != nil {
			return err
		}
		if !first && n <= 0 {
			return fmt.Errorf(".secret length must be positive, got %d", n)
		}
		a.secrets = append(a.secrets, SecretRegion{Addr: uint64(start), Len: int(n)})
		return nil
	case ".asciz":
		if !a.inData {
			return fmt.Errorf(".asciz outside .data")
		}
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf("bad string: %v", err)
		}
		a.appendData(append([]byte(s), 0))
		return nil
	}
	return fmt.Errorf("unknown directive %s", name)
}

func (a *assembler) appendData(b []byte) {
	a.curSeg.data = append(a.curSeg.data, b...)
	a.dataPos += uint64(len(b))
}

func splitOperands(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

var regAliases = map[string]uint8{"zero": 0, "ra": 1, "sp": 2}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// immValue resolves a numeric literal or label to a value. During pass 1
// unresolved labels evaluate to 0.
func (a *assembler) immValue(s string, first bool) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("missing immediate")
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(v), nil
	}
	if isIdent(s) {
		if v, ok := a.labels[s]; ok {
			return int64(v), nil
		}
		if first {
			return 0, nil
		}
		return 0, fmt.Errorf("undefined symbol %q", s)
	}
	return 0, fmt.Errorf("bad immediate %q", s)
}

// parseMemOperand parses "imm(rN)", "(rN)" or "symbol(rN)".
func (a *assembler) parseMemOperand(s string, first bool) (base uint8, off int32, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		return base, 0, nil
	}
	v, err := a.immValue(immStr, first)
	if err != nil {
		return 0, 0, err
	}
	if v != int64(int32(v)) {
		return 0, 0, fmt.Errorf("offset %d out of range", v)
	}
	return base, int32(v), nil
}

func (a *assembler) branchOffset(s string, first bool) (int32, error) {
	v, err := a.immValue(s, first)
	if err != nil {
		return 0, err
	}
	// A bare number is taken as an already-relative offset; a label is
	// pc-relative.
	if isIdent(strings.TrimSpace(s)) {
		v -= int64(a.pc())
	}
	if v != int64(int32(v)) {
		return 0, fmt.Errorf("branch target out of range")
	}
	return int32(v), nil
}

func (a *assembler) instruction(mnem, rest string, first bool) ([]isa.Inst, error) {
	ops := splitMemAware(rest)
	one := func(in isa.Inst) []isa.Inst { return []isa.Inst{in} }

	// Pseudo-instructions first.
	switch mnem {
	case "j":
		off, err := a.branchOffset(rest, first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJal, Rd: isa.RegZero, Imm: off}), nil
	case "call":
		off, err := a.branchOffset(rest, first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA, Imm: off}), nil
	case "ret":
		return one(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}), nil
	case "li":
		if len(ops) != 2 {
			return nil, fmt.Errorf("li needs rd, imm")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.immValue(ops[1], first)
		if err != nil {
			return nil, err
		}
		if v != int64(int32(v)) {
			return nil, fmt.Errorf("li immediate %d does not fit 32 bits (use lui/ori sequences)", v)
		}
		return one(isa.Inst{Op: isa.OpMovi, Rd: rd, Imm: int32(v)}), nil
	case "mv":
		if len(ops) != 2 {
			return nil, fmt.Errorf("mv needs rd, rs")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs}), nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	switch op.Class() {
	case isa.ClassNop, isa.ClassHalt, isa.ClassBarrier:
		return one(isa.Inst{Op: op}), nil
	case isa.ClassALU:
		switch op {
		case isa.OpMovi, isa.OpLui:
			if len(ops) != 2 {
				return nil, fmt.Errorf("%s needs rd, imm", op)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, err
			}
			v, err := a.immValue(ops[1], first)
			if err != nil {
				return nil, err
			}
			if v != int64(int32(v)) && uint64(v) != uint64(uint32(v)) {
				return nil, fmt.Errorf("%s immediate out of range", op)
			}
			return one(isa.Inst{Op: op, Rd: rd, Imm: int32(v)}), nil
		case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltui:
			if len(ops) != 3 {
				return nil, fmt.Errorf("%s needs rd, rs1, imm", op)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, err
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return nil, err
			}
			v, err := a.immValue(ops[2], first)
			if err != nil {
				return nil, err
			}
			if v != int64(int32(v)) {
				return nil, fmt.Errorf("%s immediate out of range", op)
			}
			return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)}), nil
		default:
			if len(ops) != 3 {
				return nil, fmt.Errorf("%s needs rd, rs1, rs2", op)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, err
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return nil, err
			}
			rs2, err := parseReg(ops[2])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}), nil
		}
	case isa.ClassLoad:
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s needs rd, off(base)", op)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		base, off, err := a.parseMemOperand(ops[1], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}), nil
	case isa.ClassStore:
		if len(ops) != 2 {
			return nil, fmt.Errorf("%s needs rs2, off(base)", op)
		}
		rs2, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		base, off, err := a.parseMemOperand(ops[1], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rs1: base, Rs2: rs2, Imm: off}), nil
	case isa.ClassBranch:
		if len(ops) != 3 {
			return nil, fmt.Errorf("%s needs rs1, rs2, target", op)
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(ops[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(ops[2], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}), nil
	case isa.ClassJump:
		if op == isa.OpJal {
			if len(ops) != 2 {
				return nil, fmt.Errorf("jal needs rd, target")
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return nil, err
			}
			off, err := a.branchOffset(ops[1], first)
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: rd, Imm: off}), nil
		}
		if len(ops) != 2 {
			return nil, fmt.Errorf("jalr needs rd, off(base)")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		base, off, err := a.parseMemOperand(ops[1], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}), nil
	case isa.ClassAtomic:
		if len(ops) != 3 {
			return nil, fmt.Errorf("cas needs rd, (rs1), rs2")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		base, off, err := a.parseMemOperand(ops[1], first)
		if err != nil {
			return nil, err
		}
		if off != 0 {
			return nil, fmt.Errorf("cas takes no offset")
		}
		rs2, err := parseReg(ops[2])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Rs2: rs2}), nil
	case isa.ClassPrefetch:
		if len(ops) != 1 {
			return nil, fmt.Errorf("prefetch needs off(base)")
		}
		base, off, err := a.parseMemOperand(ops[0], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rs1: base, Imm: off}), nil
	case isa.ClassTx:
		if op == isa.OpTxCommit {
			if len(ops) != 0 {
				return nil, fmt.Errorf("txcommit takes no operands")
			}
			return one(isa.Inst{Op: op}), nil
		}
		if len(ops) != 2 {
			return nil, fmt.Errorf("txbegin needs rd, handler")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOffset(ops[1], first)
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Imm: off}), nil
	}
	return nil, fmt.Errorf("unhandled opcode %q", mnem)
}

// splitMemAware splits operands on commas that are not inside parens.
func splitMemAware(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				f := strings.TrimSpace(s[start:i])
				if f != "" {
					out = append(out, f)
				}
				start = i + 1
			}
		}
	}
	f := strings.TrimSpace(s[start:])
	if f != "" {
		out = append(out, f)
	}
	return out
}

func (a *assembler) finish() (*Program, error) {
	b := NewBuilder(a.textBase)
	for name, addr := range a.labels {
		b.DataLabel(name, addr)
	}
	for _, in := range a.insts {
		b.Emit(in)
	}
	for _, s := range a.segs {
		if len(s.data) > 0 {
			b.Data(s.addr, s.data)
		}
	}
	for _, s := range a.secrets {
		b.Secret(s.Addr, s.Len)
	}
	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if a.entryLabel != "" {
		addr, ok := a.labels[a.entryLabel]
		if !ok {
			return nil, fmt.Errorf("undefined entry label %q", a.entryLabel)
		}
		prog.Entry = addr
	}
	return prog, nil
}
