// Package asm provides the RK64 program toolchain: a Program image
// format, a programmatic code Builder with label fixups (used by the
// workload generators), and a two-pass textual assembler.
package asm

import (
	"fmt"
	"sort"

	"rocksim/internal/isa"
)

// DefaultTextBase is the conventional load address for code.
const DefaultTextBase = 0x10000

// Segment is a contiguous run of initialized memory in a program image.
type Segment struct {
	Addr uint64
	Data []byte
}

// SecretRegion marks a byte range of the program image as holding secret
// data for the transient-leakage oracle (see sim.CheckTransientLeakage):
// the oracle asserts that observable microarchitectural state after any
// rollback is independent of the bytes in these ranges.
type SecretRegion struct {
	Addr uint64
	Len  int
}

// Program is a loadable RK64 program image: code and data segments plus
// the entry point and the symbol table.
type Program struct {
	Entry    uint64
	Segments []Segment
	Symbols  map[string]uint64
	// Secrets lists byte ranges holding secret data (".secret" directive
	// or Builder.Secret); the leakage oracle perturbs these ranges.
	Secrets []SecretRegion
	// Name optionally identifies the program (e.g. the workload name);
	// harness errors use it to attribute failures (see Desc).
	Name string
}

// Desc returns the program's name when one was set, and its entry
// address otherwise — the identity used in harness errors.
func (p *Program) Desc() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("entry %#x", p.Entry)
}

// Memory is the subset of functional memory the loader needs.
type Memory interface {
	WriteBytes(addr uint64, src []byte)
}

// Load copies all segments into memory.
func (p *Program) Load(m Memory) {
	for _, s := range p.Segments {
		m.WriteBytes(s.Addr, s.Data)
	}
}

// Size returns the total initialized bytes across segments.
func (p *Program) Size() int {
	n := 0
	for _, s := range p.Segments {
		n += len(s.Data)
	}
	return n
}

// Symbol returns the address of a label defined in the program.
func (p *Program) Symbol(name string) (uint64, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// Builder assembles a program in memory with label resolution. It is the
// code generator interface used by the synthetic workloads: emit
// instructions with helper methods, mark labels, attach data segments,
// then call Finish.
type Builder struct {
	textBase uint64
	insts    []isa.Inst
	labels   map[string]uint64
	fixups   []fixup
	segs     []Segment
	secrets  []SecretRegion
	entry    uint64
	entrySet bool
	err      error
}

type fixupKind uint8

const (
	fixBranch fixupKind = iota // imm = label - pc (pc-relative)
	fixAbs                     // imm = label (absolute, must fit int32)
)

type fixup struct {
	index int
	label string
	kind  fixupKind
}

// NewBuilder starts a builder with code at base.
func NewBuilder(base uint64) *Builder {
	return &Builder{textBase: base, labels: make(map[string]uint64)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 {
	return b.textBase + uint64(len(b.insts))*isa.InstSize
}

// Label defines a label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = b.PC()
}

// SetEntry sets the program entry point to the given label (resolved at
// Finish). By default entry is the text base.
func (b *Builder) SetEntry(label string) {
	b.fixups = append(b.fixups, fixup{index: -1, label: label})
	b.entrySet = true
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

// Op emits a reg-reg ALU instruction.
func (b *Builder) Op(op isa.Op, rd, rs1, rs2 uint8) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Opi emits a reg-imm ALU instruction.
func (b *Builder) Opi(op isa.Op, rd, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Movi emits rd = imm (imm must fit in int32).
func (b *Builder) Movi(rd uint8, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpMovi, Rd: rd, Imm: imm})
}

// MoviLabel emits rd = address-of(label).
func (b *Builder) MoviLabel(rd uint8, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label, kind: fixAbs})
	b.Emit(isa.Inst{Op: isa.OpMovi, Rd: rd})
}

// MovImm64 emits code materializing an arbitrary 64-bit constant into
// rd, clobbering scratch when the value does not fit in 32 bits.
func (b *Builder) MovImm64(rd, scratch uint8, v int64) {
	if v == int64(int32(v)) {
		b.Movi(rd, int32(v))
		return
	}
	b.Movi(rd, int32(v>>32))
	b.Opi(isa.OpSlli, rd, rd, 32)
	b.Movi(scratch, int32(v&0xffffffff))
	// movi sign-extends; clear any smeared upper bits before merging.
	b.Opi(isa.OpSlli, scratch, scratch, 32)
	b.Opi(isa.OpSrli, scratch, scratch, 32)
	b.Op(isa.OpOr, rd, rd, scratch)
}

// Ld emits a load rd = mem[rs1+imm].
func (b *Builder) Ld(op isa.Op, rd, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits a store mem[rs1+imm] = rs2.
func (b *Builder) St(op isa.Op, rs2, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(op isa.Op, rs1, rs2 uint8, label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label, kind: fixBranch})
	b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Jmp emits an unconditional jump to label (jal r0).
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label, kind: fixBranch})
	b.Emit(isa.Inst{Op: isa.OpJal, Rd: isa.RegZero})
}

// Call emits jal ra, label.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: label, kind: fixBranch})
	b.Emit(isa.Inst{Op: isa.OpJal, Rd: isa.RegRA})
}

// Ret emits jalr r0, 0(ra).
func (b *Builder) Ret() {
	b.Emit(isa.Inst{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA})
}

// Jalr emits an indirect jump.
func (b *Builder) Jalr(rd, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: imm})
}

// Cas emits a compare-and-swap.
func (b *Builder) Cas(rd, rs1, rs2 uint8) {
	b.Emit(isa.Inst{Op: isa.OpCas, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Prefetch emits a software prefetch of rs1+imm.
func (b *Builder) Prefetch(rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: isa.OpPrefetch, Rs1: rs1, Imm: imm})
}

// TxBegin emits a transaction begin with the given abort handler label.
func (b *Builder) TxBegin(rd uint8, handler string) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts), label: handler, kind: fixBranch})
	b.Emit(isa.Inst{Op: isa.OpTxBegin, Rd: rd})
}

// TxCommit emits a transaction commit.
func (b *Builder) TxCommit() { b.Emit(isa.Inst{Op: isa.OpTxCommit}) }

// Nop emits a nop.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNop}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Data attaches an initialized data segment at addr.
func (b *Builder) Data(addr uint64, data []byte) {
	b.segs = append(b.segs, Segment{Addr: addr, Data: data})
}

// Secret marks [addr, addr+n) as secret data for the leakage oracle.
func (b *Builder) Secret(addr uint64, n int) {
	if n <= 0 {
		b.fail("secret region at %#x has non-positive length %d", addr, n)
		return
	}
	b.secrets = append(b.secrets, SecretRegion{Addr: addr, Len: n})
}

// DataLabel defines a symbol for a data address (not a code label).
func (b *Builder) DataLabel(name string, addr uint64) {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return
	}
	b.labels[name] = addr
}

// Finish resolves fixups and returns the program image.
func (b *Builder) Finish() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	entry := b.textBase
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		if f.index < 0 {
			entry = target
			continue
		}
		pc := b.textBase + uint64(f.index)*isa.InstSize
		switch f.kind {
		case fixBranch:
			off := int64(target) - int64(pc)
			if off != int64(int32(off)) {
				return nil, fmt.Errorf("asm: branch to %q out of range", f.label)
			}
			b.insts[f.index].Imm = int32(off)
		case fixAbs:
			if target != uint64(int32(target)) && int64(target) != int64(int32(target)) {
				return nil, fmt.Errorf("asm: label %q address %#x does not fit in imm32", f.label, target)
			}
			b.insts[f.index].Imm = int32(target)
		}
	}
	code := make([]byte, len(b.insts)*isa.InstSize)
	for i, in := range b.insts {
		in.Encode(code[i*isa.InstSize:])
	}
	segs := append([]Segment{{Addr: b.textBase, Data: code}}, b.segs...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	for i := 1; i < len(segs); i++ {
		prev := segs[i-1]
		if prev.Addr+uint64(len(prev.Data)) > segs[i].Addr {
			return nil, fmt.Errorf("asm: overlapping segments at %#x", segs[i].Addr)
		}
	}
	syms := make(map[string]uint64, len(b.labels))
	for k, v := range b.labels {
		syms[k] = v
	}
	secrets := append([]SecretRegion(nil), b.secrets...)
	sort.Slice(secrets, func(i, j int) bool { return secrets[i].Addr < secrets[j].Addr })
	return &Program{Entry: entry, Segments: segs, Symbols: syms, Secrets: secrets}, nil
}

// NumInsts returns the number of instructions emitted so far.
func (b *Builder) NumInsts() int { return len(b.insts) }
