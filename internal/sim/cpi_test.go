package sim

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/workload"
)

// This file enforces the cycle-accounting ("CPI stack") invariant: every
// simulated cycle lands in exactly one bucket, so the buckets sum to the
// cycle count — for every core model, on every workload, with and
// without fault injection, under both naive stepping and fast-forward
// (the run path below fast-forwards by default; ffwd_test.go holds the
// naive/fast differential).

// checkCPISum asserts the bucket invariant on one finished stats block.
func checkCPISum(t *testing.T, label string, b *cpu.BaseStats) {
	t.Helper()
	if sum := b.CPISum(); sum != b.Cycles {
		t.Errorf("%s: cycle-accounting buckets sum to %d, want %d cycles (stack %v)",
			label, sum, b.Cycles, b.CPI)
	}
	if b.CPI[cpu.BktRetire] == 0 && b.Retired > 0 {
		t.Errorf("%s: retired %d instructions but the retire bucket is empty", label, b.Retired)
	}
}

// TestCPISumInvariant runs every core kind over every workload and
// asserts the invariant, clean and under a random benign fault plan.
func TestCPISumInvariant(t *testing.T) {
	names := workload.Names
	if testing.Short() {
		names = []string{"oltp", "chase", "stream"}
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for _, name := range names {
				w, err := workload.Build(name, workload.ScaleTest)
				if err != nil {
					t.Fatal(err)
				}
				for _, plan := range []*faults.Plan{nil, faults.Random(3, faultHorizon)} {
					opts := fuzzFaultOpts()
					opts.Faults = plan
					out, err := Run(k, w.Program, opts)
					if err != nil {
						t.Fatalf("%s faults=%v: %v", name, plan != nil, err)
					}
					label := k.String() + "/" + name
					if plan != nil {
						label += "+faults"
					}
					checkCPISum(t, label, out.Core.Base())
				}
			}
		})
	}
}

// TestCPISumInvariantSMT covers the fine-grained-multithreading harness:
// per thread the buckets (including the sibling-idle view) sum to the
// thread's cycles, and the physical core's aggregate — which excludes
// smt_idle, each physical cycle being attributed once by the thread that
// owned the issue slot — sums to the physical cycle count.
func TestCPISumInvariantSMT(t *testing.T) {
	wa, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workload.Build("stream", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	c := smtPair(t, wa, wb, DefaultOptions())
	if err := cpu.Run(c, DefaultOptions().CycleLimit()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b := c.Thread(i).Core.Base()
		var all uint64
		for _, v := range b.CPI {
			all += v
		}
		if all != b.Cycles {
			t.Errorf("thread %d: buckets sum to %d, want %d cycles", i, all, b.Cycles)
		}
	}
	checkCPISum(t, "smt-aggregate", c.Base())
	if c.Base().Cycles != c.Cycle() {
		t.Errorf("aggregate cycles %d != physical cycles %d", c.Base().Cycles, c.Cycle())
	}
}

// TestCPISumInvariantCMP covers the lockstep chip: each core keeps its
// own exact stack under shared-hierarchy interference and coherence
// rollbacks.
func TestCPISumInvariantCMP(t *testing.T) {
	names := []string{"chase", "stream", "oltp"}
	var progs []*asm.Program
	for _, n := range names {
		w, err := workload.Build(n, workload.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, w.Program)
	}
	opts := DefaultOptions()
	chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			if id%2 == 0 {
				return core.New(m, opts.SST, entry), nil
			}
			return inorder.New(m, opts.InOrder, entry), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(opts.CycleLimit()); err != nil {
		t.Fatal(err)
	}
	for i, c := range chip.Cores {
		checkCPISum(t, "cmp core "+itoa(i), c.Base())
	}
}

// TestCPISumInvariantTage extends the invariant across the predictor
// plane: TAGE under every share mode on deferred-branch-heavy and
// branchy workloads, clean and under a random fault plan. Rollbacks
// triggered by deferred-branch mispredicts (and their history restores)
// must not leak or drop a cycle from the stack.
func TestCPISumInvariantTage(t *testing.T) {
	for _, name := range []string{"brfield", "gcc"} {
		w, err := workload.Build(name, workload.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range shareModes {
			for _, plan := range []*faults.Plan{nil, faults.Random(3, faultHorizon)} {
				opts := bpredShapeOpts(bpred.TAGE, mode)
				opts.Faults = plan
				out, err := Run(KindSST, w.Program, opts)
				if err != nil {
					t.Fatalf("%s share=%v faults=%v: %v", name, mode, plan != nil, err)
				}
				label := "tage/" + mode.String() + "/" + name
				if plan != nil {
					label += "+faults"
				}
				checkCPISum(t, label, out.Core.Base())
			}
		}
	}
}

// TestCPISumInvariantTageSMT: the SMT aggregate stack stays exact when
// the two strands pool one TAGE table set.
func TestCPISumInvariantTageSMT(t *testing.T) {
	wa, err := workload.Build("gcc", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workload.Build("brfield", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := bpredShapeOpts(bpred.TAGE, bpred.ShareShared)
	c := smtPair(t, wa, wb, opts)
	if err := cpu.Run(c, opts.CycleLimit()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b := c.Thread(i).Core.Base()
		var all uint64
		for _, v := range b.CPI {
			all += v
		}
		if all != b.Cycles {
			t.Errorf("thread %d: buckets sum to %d, want %d cycles", i, all, b.Cycles)
		}
	}
	checkCPISum(t, "tage-smt-aggregate", c.Base())
}

// TestCPISumInvariantTageCMP: per-core stacks stay exact on a chip whose
// SST cores share one hashed TAGE table set.
func TestCPISumInvariantTageCMP(t *testing.T) {
	names := []string{"brfield", "gcc", "loopnest"}
	var progs []*asm.Program
	for _, n := range names {
		w, err := workload.Build(n, workload.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, w.Program)
	}
	opts := bpredShapeOpts(bpred.TAGE, bpred.ShareHashed)
	chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return core.New(m, opts.SST, entry), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(opts.CycleLimit()); err != nil {
		t.Fatal(err)
	}
	for i, c := range chip.Cores {
		checkCPISum(t, "tage cmp core "+itoa(i), c.Base())
	}
}
