package sim

import (
	"bytes"
	"testing"

	"rocksim/internal/obs"
	"rocksim/internal/obs/obstest"
	"rocksim/internal/workload"
)

// TestObsCrossModelCounters asserts that every core model publishes the
// uniform counter set, so metrics files from different models can be
// compared field by field.
func TestObsCrossModelCounters(t *testing.T) {
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	required := []string{
		"core/cycles",
		"core/insts",
		"core/loads",
		"core/stores",
		"core/branches",
		"core/checkpoints_taken",
		"core/checkpoints_committed",
		"core/checkpoints_aborted",
		"mem/l1d/misses",
		"mem/l1i/misses",
		"mem/l2/misses",
		"mem/dram/reads",
	}
	for _, kind := range Kinds {
		opts := DefaultOptions()
		opts.Metrics = obs.NewRegistry()
		out, err := Run(kind, w.Program, opts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		snap := opts.Metrics.Snapshot()
		for _, name := range required {
			if _, ok := snap.Counters[name]; !ok {
				t.Errorf("%v: counter %q missing", kind, name)
			}
		}
		if _, ok := snap.Gauges["core/dq_highwater"]; !ok {
			t.Errorf("%v: gauge core/dq_highwater missing", kind)
		}
		if got := snap.Counters["core/cycles"]; got != out.Cycles {
			t.Errorf("%v: core/cycles = %d, want %d", kind, got, out.Cycles)
		}
		if got := snap.Counters["core/insts"]; got != out.Retired {
			t.Errorf("%v: core/insts = %d, want %d", kind, got, out.Retired)
		}
	}
}

// metricsJSON runs kind on prog with a fresh registry and a full
// Collector (trace + timelines) and returns the metrics JSON bytes.
func metricsJSON(t *testing.T, kind Kind) []byte {
	t.Helper()
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	col := obs.NewCollector(obs.NewTrace(), opts.Metrics)
	opts.Sink = col
	out, err := Run(kind, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	col.Flush(out.Cycles)
	var buf bytes.Buffer
	if err := opts.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsDeterminism asserts that two identical runs export
// byte-identical metrics JSON (including timelines), the property that
// makes metrics files diffable across simulator versions. The CI
// determinism gate runs this test with -count=2, which additionally
// proves the export is stable across process-level map iteration.
func TestObsDeterminism(t *testing.T) {
	for _, kind := range []Kind{KindInOrder, KindSST} {
		a := metricsJSON(t, kind)
		b := metricsJSON(t, kind)
		if !bytes.Equal(a, b) {
			t.Errorf("%v: identical runs exported different metrics JSON", kind)
		}
	}
}

// TestObsChromeTrace runs the SST core with a Collector and asserts the
// exporter contract on a real simulation trace: valid JSON, monotonic
// ts, balanced B/E pairs, and at least the mode, checkpoint and memory
// categories.
func TestObsChromeTrace(t *testing.T) {
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	opts := DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	col := obs.NewCollector(tr, opts.Metrics)
	opts.Sink = col
	out, err := Run(KindSST, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	col.Flush(out.Cycles)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	cats := obstest.CheckChrome(t, buf.Bytes())
	for _, want := range []string{"mode", "checkpoint", "memory"} {
		if !cats[want] {
			t.Errorf("category %q missing from simulation trace", want)
		}
	}

	// The same run's registry must carry occupancy timelines fed by the
	// Collector.
	snap := opts.Metrics.Snapshot()
	if len(snap.Timelines) == 0 {
		t.Error("no occupancy timelines collected")
	}
	for name, tl := range snap.Timelines {
		if len(tl.Cycles) != len(tl.Values) {
			t.Errorf("timeline %s: %d cycles vs %d values", name, len(tl.Cycles), len(tl.Values))
		}
	}
}

// TestObsReportEmbedsMetrics asserts the JSON report carries the
// snapshot when a registry was attached.
func TestObsReportEmbedsMetrics(t *testing.T) {
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	out, err := Run(KindSST, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReport(out)
	if r.Metrics == nil {
		t.Fatal("report.Metrics nil despite Options.Metrics")
	}
	if r.Metrics.Counters["core/cycles"] != out.Cycles {
		t.Errorf("report metrics core/cycles = %d, want %d", r.Metrics.Counters["core/cycles"], out.Cycles)
	}
	if r.Caches.LoadMissP95 < r.Caches.LoadMissP50 {
		t.Errorf("load-miss p95 %d < p50 %d", r.Caches.LoadMissP95, r.Caches.LoadMissP50)
	}
}
