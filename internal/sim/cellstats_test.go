package sim

import (
	"encoding/json"
	"testing"

	"rocksim/internal/workload"
)

// TestCellStatsRoundTrip: a snapshot survives JSON and its rebuilt
// Outcome view answers every table-assembly accessor identically to
// the live outcome — the property the fleet router's byte-identity
// rests on.
func TestCellStatsRoundTrip(t *testing.T) {
	spec, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(KindSST, spec.Program, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cs := SnapshotCell(out)
	enc, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	var back CellStats
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	remote, err := back.AsOutcome()
	if err != nil {
		t.Fatal(err)
	}

	if remote.Kind != out.Kind || remote.Cycles != out.Cycles || remote.Retired != out.Retired {
		t.Fatalf("identity fields differ: got (%v,%d,%d) want (%v,%d,%d)",
			remote.Kind, remote.Cycles, remote.Retired, out.Kind, out.Cycles, out.Retired)
	}
	if remote.IPC() != out.IPC() {
		t.Errorf("IPC %v != %v", remote.IPC(), out.IPC())
	}
	if *remote.BaseStats() != *out.BaseStats() {
		t.Errorf("BaseStats differ:\nremote %+v\nlive   %+v", *remote.BaseStats(), *out.BaseStats())
	}
	if remote.L1DStats() != out.L1DStats() {
		t.Errorf("L1DStats differ: %+v vs %+v", remote.L1DStats(), out.L1DStats())
	}
	if remote.L2Stats() != out.L2Stats() {
		t.Errorf("L2Stats differ: %+v vs %+v", remote.L2Stats(), out.L2Stats())
	}
	lt, rt := out.DTLBStats(), remote.DTLBStats()
	if (lt == nil) != (rt == nil) {
		t.Fatalf("DTLBStats presence differs: live %v remote %v", lt, rt)
	}
	if lt != nil && *lt != *rt {
		t.Errorf("DTLBStats differ: %+v vs %+v", *rt, *lt)
	}

	ls, rs := out.SSTStats(), remote.SSTStats()
	if ls == nil || rs == nil {
		t.Fatalf("SST stats missing: live %v remote %v", ls, rs)
	}
	if ls.CheckpointsTaken != rs.CheckpointsTaken || ls.Rollbacks != rs.Rollbacks {
		t.Errorf("SST scalar stats differ: %+v vs %+v", rs, ls)
	}
	for name, pair := range map[string][2]interface{ Mean() float64 }{
		"DQOcc":    {ls.DQOcc, rs.DQOcc},
		"SSBOcc":   {ls.SSBOcc, rs.SSBOcc},
		"CkptOcc":  {ls.CkptOcc, rs.CkptOcc},
		"CkptLife": {ls.CkptLife, rs.CkptLife},
	} {
		if pair[0].Mean() != pair[1].Mean() {
			t.Errorf("%s histogram mean differs after round-trip: %v vs %v", name, pair[1].Mean(), pair[0].Mean())
		}
	}

	// Re-snapshotting the reconstructed view is stable (the router can
	// snapshot what it received without losing anything).
	again := SnapshotCell(remote)
	enc2, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc2) != string(enc) {
		t.Errorf("re-snapshot changed the encoding:\nfirst  %s\nsecond %s", enc, enc2)
	}
}

// TestSnapshotDetaches: mutating the snapshot must not reach the live
// core's histograms (the pool reuses cores across runs).
func TestSnapshotDetaches(t *testing.T) {
	spec, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(KindSST, spec.Program, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cs := SnapshotCell(out)
	if cs.SST == nil || cs.SST.DQOcc == nil {
		t.Fatal("no SST histograms in snapshot")
	}
	before := out.SSTStats().DQOcc.Mean()
	cs.SST.DQOcc.Add(1_000_000)
	if got := out.SSTStats().DQOcc.Mean(); got != before {
		t.Fatalf("snapshot shares histogram storage with the live core: mean %v -> %v", before, got)
	}
}
