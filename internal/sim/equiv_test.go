package sim

import (
	"fmt"
	"strings"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// mustAssemble compiles source or fails the test.
func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// checkEquivalence runs prog on the golden emulator and on every core
// model and asserts identical architectural state: retired instruction
// count, register file, and memory image.
func checkEquivalence(t *testing.T, prog *asm.Program) {
	t.Helper()
	emu, goldMem, err := RunEmulator(prog, 200_000_000)
	if err != nil {
		t.Fatalf("emulator: %v", err)
	}
	opts := DefaultOptions()
	for _, k := range Kinds {
		out, err := Run(k, prog, opts)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if out.Retired != emu.Executed {
			t.Errorf("%v: retired %d insts, golden executed %d", k, out.Retired, emu.Executed)
		}
		for r := 1; r < isa.NumRegs; r++ {
			if out.Regs[r] != emu.Reg[r] {
				t.Errorf("%v: r%d = %#x, golden %#x", k, r, uint64(out.Regs[r]), uint64(emu.Reg[r]))
			}
		}
		if !out.Mem.Equal(goldMem) {
			diffs := out.Mem.Diff(goldMem, 8)
			t.Errorf("%v: memory differs from golden at %d+ addrs, first: %#x", k, len(diffs), diffs)
		}
	}
}

func TestEquivalenceArithLoop(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		movi r5, 1000
		movi r6, 0
		movi r7, 3
	loop:
		add  r6, r6, r5
		mul  r8, r5, r7
		xor  r6, r6, r8
		addi r5, r5, -1
		bne  r5, zero, loop
		halt
	`))
}

func TestEquivalenceMemoryStride(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		movi r5, 0x200000   ; base
		movi r6, 4096       ; elements
		movi r7, 0          ; i
		movi r9, 0          ; sum
	fill:
		mul  r8, r7, r7
		st64 r8, (r5)
		addi r5, r5, 64     ; one per line: every load below misses L1 first pass
		addi r7, r7, 1
		bne  r7, r6, fill
		movi r5, 0x200000
		movi r7, 0
	sum:
		ld64 r8, (r5)
		add  r9, r9, r8
		addi r5, r5, 64
		addi r7, r7, 1
		bne  r7, r6, sum
		st64 r9, 0(zero)    ; result at address 0
		halt
	`))
}

func TestEquivalencePointerChase(t *testing.T) {
	// Build a linked ring in the data segment and chase it: the
	// canonical dependent-miss workload.
	var b strings.Builder
	const n = 512
	const base = 0x400000
	b.WriteString(".org 0x10000\n")
	fmt.Fprintf(&b, "movi r5, %d\n", base)
	fmt.Fprintf(&b, "movi r6, %d\n", 3*n) // steps
	b.WriteString(`
	chase:
		ld64 r5, (r5)
		addi r6, r6, -1
		bne  r6, zero, chase
		st64 r5, 8(zero)
		halt
	`)
	fmt.Fprintf(&b, ".data %d\n", base)
	// A stride permutation ring: node i -> (i + 257) mod n, 64B apart.
	for i := 0; i < n; i++ {
		next := (i + 257) % n
		fmt.Fprintf(&b, ".quad %d\n.zero 56\n", base+64*next)
	}
	checkEquivalence(t, mustAssemble(t, b.String()))
}

func TestEquivalenceCallsAndBranches(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		.entry main
	; r5 in, r6 out: out = in*2+1 via a call
	double1:
		add  r6, r5, r5
		addi r6, r6, 1
		ret
	main:
		movi r10, 200
		movi r11, 0
	mloop:
		mv   r5, r10
		call double1
		add  r11, r11, r6
		andi r12, r10, 7
		beq  r12, zero, skip
		addi r11, r11, 5
	skip:
		addi r10, r10, -1
		bne  r10, zero, mloop
		st64 r11, 16(zero)
		halt
	`))
}

func TestEquivalenceStoreLoadForwarding(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		movi r5, 0x300000
		movi r6, 300
		movi r9, 0
	loop:
		st64 r6, (r5)        ; store then immediately load back
		ld64 r7, (r5)
		add  r9, r9, r7
		st32 r9, 8(r5)       ; partial-width store
		ldu32 r8, 8(r5)
		add  r9, r9, r8
		addi r5, r5, 16
		addi r6, r6, -1
		bne  r6, zero, loop
		st64 r9, 24(zero)
		halt
	`))
}

func TestEquivalenceDivDeferral(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		movi r5, 5000
		movi r6, 977
		movi r9, 1
	loop:
		div  r7, r5, r6      ; long-latency op: SST defers it
		rem  r8, r5, r9
		add  r9, r9, r7
		add  r9, r9, r8
		addi r5, r5, -7
		blt  zero, r5, loop
		st64 r9, 32(zero)
		halt
	`))
}

func TestEquivalenceCasAndMembar(t *testing.T) {
	checkEquivalence(t, mustAssemble(t, `
		.org 0x10000
		movi r5, 0x500000
		movi r10, 100
	loop:
		ld64 r6, (r5)        ; current value
		addi r7, r6, 1       ; desired
		mv   r8, r6          ; compare value
		mv   r9, r7
		cas  r9, (r5), r8    ; r9(swap-in)=desired, compare r8
		membar
		addi r10, r10, -1
		bne  r10, zero, loop
		halt
	`))
}
