package sim

import (
	"context"
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
	"rocksim/internal/ooo"
)

// Instance is a fully constructed simulator — functional memory, timing
// hierarchy, branch predictor and core model — that can be reset and
// reused across runs, eliminating the per-run construction cost (~8.6k
// allocations) that dominates short, service-shaped workloads. An
// Instance is built for one (kind, options-shape) pair: the
// construction-affecting options (Hier, Pred and the core configs —
// see Options.ShapeFingerprint) are fixed at NewInstance; the per-run
// options (program, watchdogs, faults, observability hooks) are applied
// by each Run.
//
// Run returns a detached outcome: the same concrete core and hierarchy
// types carrying deep-copied statistics, safe to cache and consume
// indefinitely while the live structures are reset for the next run.
// The pooled-vs-fresh differential fuzz in this package proves a reused
// Instance is byte-identical to a fresh construction — outcome,
// metrics JSON and Chrome trace — clean and under fault plans.
//
// An Instance is not safe for concurrent use; the pool in
// internal/experiments hands each one to a single run at a time.
type Instance struct {
	kind Kind
	mem  *mem.Sparse
	mach *cpu.Machine
	core cpu.Core
}

// NewInstance builds a reusable simulator for one core kind and one
// options shape. Only the construction-affecting option fields are
// consulted (see Options.ShapeFingerprint); per-run fields are ignored
// here and honored by Run.
func NewInstance(k Kind, opts Options) (*Instance, error) {
	m := mem.NewSparse()
	mach, err := cpu.NewMachine(m, opts.Hier, opts.Pred)
	if err != nil {
		return nil, err
	}
	c, err := newCore(k, mach, opts, 0)
	if err != nil {
		return nil, err
	}
	return &Instance{kind: k, mem: m, mach: mach, core: c}, nil
}

// Kind returns the core kind the instance simulates.
func (in *Instance) Kind() Kind { return in.kind }

// Mem returns the instance's live functional memory (the image of the
// most recent run). The differential tests use it to compare a pooled
// run's final memory against a fresh run's.
func (in *Instance) Mem() *mem.Sparse { return in.mem }

// reset returns every layer to its freshly constructed state, executing
// from entry: machine first (memory, hierarchy, predictor), then the
// core on top (which may re-register hierarchy listeners).
func (in *Instance) reset(entry uint64) {
	in.mach.Reset()
	switch cc := in.core.(type) {
	case *core.Core:
		cc.Reset(entry)
	case *inorder.Core:
		cc.Reset(entry)
	case *ooo.Core:
		cc.Reset(entry)
	}
}

// installHooks wires the per-run observability sinks onto the freshly
// reset core, exactly as NewCore does at construction.
func (in *Instance) installHooks(opts Options) {
	switch cc := in.core.(type) {
	case *core.Core:
		var probe obs.Sink
		if opts.Probe != nil {
			probe = core.ProbeSink(opts.Probe)
		}
		if s := obs.Tee(probe, opts.Sink); s != nil {
			cc.SetSink(s)
		}
	case *inorder.Core:
		cc.SetSink(opts.Sink)
	case *ooo.Core:
		cc.SetSink(opts.Sink)
	}
}

// runLive resets the instance, loads the program and executes it to
// completion, returning an outcome whose Core/Mach/Mem point at the
// instance's live structures. It is the single execution path shared by
// the fresh RunContext and the pooled Instance.Run, so the two cannot
// drift. The caller publishes metrics and (for pooling) detaches.
func (in *Instance) runLive(ctx context.Context, prog *asm.Program, opts Options) (Outcome, error) {
	ctx, span := obs.StartSpan(ctx, "sim-run")
	span.SetAttr("kind", in.kind.String())
	span.SetAttr("program", prog.Desc())
	defer span.End()
	in.reset(prog.Entry)
	prog.Load(in.mem)
	for _, s := range prog.Secrets {
		in.mach.Hier.SetSecret(s.Addr, s.Len)
	}
	in.mach.Hier.SetSink(opts.Sink)
	in.installHooks(opts)
	var inj *faults.Injector
	if opts.Faults != nil {
		// One injector serves both layers so one-shot events and counts
		// are shared.
		inj = opts.Faults.New(opts.Sink)
		if cc, ok := in.core.(*core.Core); ok {
			cc.SetFaults(inj)
		}
		in.mach.Hier.SetFaults(inj)
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	runErr := cpu.RunCtx(ctx, in.core, cpu.RunConfig{
		MaxCycles:          opts.CycleLimit(),
		LivelockWindow:     opts.livelockWindow(),
		DisableFastForward: opts.NoFastForward,
	})
	inj.PublishObs(opts.Metrics)
	if runErr != nil {
		span.SetAttr("err", runErr.Error())
		return Outcome{}, fmt.Errorf("sim: %v on %s: %w", in.kind, prog.Desc(), runErr)
	}
	span.SetAttr("cycles", fmt.Sprint(in.core.Cycle()))
	span.SetAttr("retired", fmt.Sprint(in.core.Retired()))
	out := Outcome{
		Kind:    in.kind,
		Cycles:  in.core.Cycle(),
		Retired: in.core.Retired(),
		Core:    in.core,
		Mach:    in.mach,
		Mem:     in.mem,
	}
	out.Regs = coreRegs(in.core)
	return out, nil
}

// Run executes prog on the pooled instance and returns a detached
// outcome: Core and Mach are frozen stats-only copies (same concrete
// types, deep-copied counters and histograms) safe to cache and read
// indefinitely; Mem is nil — a detached outcome carries no memory
// image, since the live one is about to be reused. Metrics are
// published from the detached copies, so a registry snapshot taken long
// after the run still reflects exactly this run.
//
// A run that errors (watchdog trip, cancellation) leaves the instance
// reusable: the next Run resets everything. A run that panics may leave
// it corrupt — callers must drop the instance instead of reusing it.
func (in *Instance) Run(ctx context.Context, prog *asm.Program, opts Options) (Outcome, error) {
	out, err := in.runLive(ctx, prog, opts)
	if err != nil {
		return out, err
	}
	out.Core = detachCore(in.core)
	out.Mach = &cpu.Machine{
		Hier:     in.mach.Hier.Detach(),
		Pred:     in.mach.Pred.Detach(),
		CoreID:   in.mach.CoreID,
		Coherent: in.mach.Coherent,
	}
	out.Mem = nil
	out.Obs = opts.Metrics
	out.PublishObs(opts.Metrics)
	return out, nil
}

// detachCore freezes a core model into a stats-only carrier of the same
// concrete type (see each model's Detach).
func detachCore(c cpu.Core) cpu.Core {
	switch cc := c.(type) {
	case *core.Core:
		return cc.Detach()
	case *inorder.Core:
		return cc.Detach()
	case *ooo.Core:
		return cc.Detach()
	}
	return c
}

// ShapeFingerprint returns the canonical encoding of the construction-
// affecting options only — the hierarchy, predictor and core
// configurations. Two Options with equal shape fingerprints build
// interchangeable machines (for a given kind), differing at most in
// per-run fields (program, watchdog bounds, faults, observability), so
// harnesses use (kind, shape) as the simulator-pool key. Compare
// Fingerprint, which additionally covers the per-run simulation-
// affecting fields and keys the run cache.
func (o Options) ShapeFingerprint() string {
	return o.Hier.Fingerprint() + "|" + o.Pred.Fingerprint() + "|" +
		o.InOrder.Fingerprint() + "|" + o.OOO.Fingerprint() + "|" +
		o.OOOLg.Fingerprint() + "|" + o.SST.Fingerprint()
}

// PoolKey returns the simulator-pool key for a (kind, options) pair.
func PoolKey(k Kind, o Options) string {
	return k.String() + "|" + o.ShapeFingerprint()
}
