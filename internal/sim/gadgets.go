package sim

import (
	"embed"
	"fmt"
	"path"
	"sort"

	"rocksim/internal/asm"
)

// The transient-leakage gadget corpus ships with the simulator so the
// security experiments (internal/experiments.SecurityGrid, surfaced by
// cmd/sstbench) and the regression tests check the very same programs.
// Each gadget is a Spectre-v1 bounds-check-bypass with a declared
// .secret region; see the .rk sources and docs/SECURITY.md.
//
//go:embed testdata/gadget_spectre_load.rk testdata/gadget_spectre_store.rk
var gadgetFS embed.FS

// LeakGadgets assembles the built-in transient-leakage gadget corpus,
// sorted by name. The programs carry their file names in Program.Name.
func LeakGadgets() ([]*asm.Program, error) {
	entries, err := gadgetFS.ReadDir("testdata")
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	progs := make([]*asm.Program, 0, len(entries))
	for _, e := range entries {
		src, err := gadgetFS.ReadFile(path.Join("testdata", e.Name()))
		if err != nil {
			return nil, err
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			return nil, fmt.Errorf("gadget %s: %w", e.Name(), err)
		}
		prog.Name = e.Name()
		progs = append(progs, prog)
	}
	return progs, nil
}
