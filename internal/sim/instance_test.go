package sim

import (
	"bytes"
	"context"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/faults"
	"rocksim/internal/obs"
)

// This file is the pooling differential oracle, the Reset-contract
// counterpart of ffwd_test.go: every observable a run produces — cycle
// and retire counts, architectural registers, the CPI stack, the
// exported metrics JSON (counters, histograms, occupancy timelines,
// injector counts), the Chrome trace bytes and the final memory image —
// must be byte-identical between a freshly constructed simulator and a
// pooled Instance that has already executed arbitrary other runs. Any
// state a model forgets to clear in Reset — a stale NA bit, a warm
// cache line, a trained predictor entry, a leftover deferred-queue
// entry — shows up here as a divergence.

// pooledRun executes prog on the (possibly well-used) instance with
// full observability attached and returns the outcome plus the
// metrics-JSON and Chrome-trace bytes, mirroring ffRun for the fresh
// side.
func pooledRun(t *testing.T, in *Instance, prog *asm.Program, plan *faults.Plan) (Outcome, []byte, []byte) {
	t.Helper()
	return pooledRunWith(t, in, prog, plan, fuzzFaultOpts())
}

// pooledRunWith is pooledRun under caller-chosen base options (which
// must match the shape the instance was built with).
func pooledRunWith(t *testing.T, in *Instance, prog *asm.Program, plan *faults.Plan, opts Options) (Outcome, []byte, []byte) {
	t.Helper()
	opts.Faults = plan
	opts.Metrics = obs.NewRegistry()
	tr := obs.NewTrace()
	col := obs.NewCollector(tr, opts.Metrics)
	opts.Sink = col
	out, err := in.Run(context.Background(), prog, opts)
	if err != nil {
		t.Fatalf("pooled %v: %v", in.Kind(), err)
	}
	col.Flush(out.Cycles)
	var mbuf, tbuf bytes.Buffer
	if err := opts.Metrics.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&tbuf); err != nil {
		t.Fatal(err)
	}
	return out, mbuf.Bytes(), tbuf.Bytes()
}

// checkPooledSeed runs one (program, plan) pair on the reused instance
// and on a fresh machine, and requires every observable to match.
func checkPooledSeed(t *testing.T, in *Instance, prog *asm.Program, plan *faults.Plan) {
	t.Helper()
	checkPooledSeedWith(t, in, prog, plan, fuzzFaultOpts())
}

// checkPooledSeedWith is checkPooledSeed under caller-chosen base
// options, so the oracle extends to non-default predictor shapes.
func checkPooledSeedWith(t *testing.T, in *Instance, prog *asm.Program, plan *faults.Plan, opts Options) {
	t.Helper()
	k := in.Kind()
	fresh, fm, ft := ffRunWith(t, k, prog, plan, false, opts)
	pooled, pm, pt := pooledRunWith(t, in, prog, plan, opts)
	if fresh.Cycles != pooled.Cycles || fresh.Retired != pooled.Retired {
		t.Errorf("%v: fresh %d cycles/%d retired, pooled %d cycles/%d retired",
			k, fresh.Cycles, fresh.Retired, pooled.Cycles, pooled.Retired)
	}
	if fresh.Regs != pooled.Regs {
		t.Errorf("%v: architectural registers diverge on a pooled instance", k)
	}
	fb, pb := fresh.Core.Base(), pooled.Core.Base()
	if *fb != *pb {
		t.Errorf("%v: base stats diverge on a pooled instance:\n fresh  %+v\n pooled %+v", k, *fb, *pb)
	}
	checkCPISum(t, k.String()+" pooled", pb)
	if !fresh.Mem.Equal(in.Mem()) {
		t.Errorf("%v: final memory diverges on a pooled instance at %#x...",
			k, fresh.Mem.Diff(in.Mem(), 4))
	}
	if pooled.Mem != nil {
		t.Errorf("%v: pooled outcome leaked the live memory image", k)
	}
	if !bytes.Equal(fm, pm) {
		t.Errorf("%v: metrics JSON diverges on a pooled instance: %s", k, firstDiff(fm, pm))
	}
	if !bytes.Equal(ft, pt) {
		t.Errorf("%v: Chrome trace diverges on a pooled instance: %s", k, firstDiff(ft, pt))
	}
}

// TestPooledDifferentialFuzz: one Instance per kind, reused back to
// back across random programs (including transactions) — every run on
// the used instance must match a fresh construction. Seed 1 runs twice
// in a row first, so same-program-same-instance reuse (the service
// cache-miss storm shape) is covered, not just varied programs.
func TestPooledDifferentialFuzz(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 3
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			in, err := NewInstance(k, fuzzFaultOpts())
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= n; seed++ {
				prog, err := genProgram(seed, 80)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkPooledSeed(t, in, prog, nil)
				if seed == 1 {
					checkPooledSeed(t, in, prog, nil)
				}
			}
		})
	}
}

// TestPooledFaultDifferential: pooled reuse under random fault plans.
// The injector is rebuilt per run, so a plan's one-shot events must
// re-fire identically on a reused machine; leftover injector state or a
// surviving denied-checkpoint clamp would diverge the trace bytes.
// This also extends the CPI sum==cycles invariant (checkPooledSeed
// calls checkCPISum) to pooled, reused simulators under faults.
func TestPooledFaultDifferential(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			in, err := NewInstance(k, fuzzFaultOpts())
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= n; seed++ {
				prog, err := genFaultProgram(seed, 70)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				plan := faults.Random(seed, faultHorizon)
				checkPooledSeed(t, in, prog, plan)
				// Alternate faulted and clean runs on the same instance:
				// a clean run right after a faulted one catches injector
				// state outliving its plan.
				checkPooledSeed(t, in, prog, nil)
			}
		})
	}
}

// TestPooledAfterError: a run that trips a watchdog (cycle limit) must
// leave the instance fully reusable — the next Reset clears everything,
// and the following run matches a fresh machine exactly.
func TestPooledAfterError(t *testing.T) {
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			in, err := NewInstance(k, fuzzFaultOpts())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := genProgram(2, 80)
			if err != nil {
				t.Fatal(err)
			}
			opts := fuzzFaultOpts()
			opts.MaxCycles = 50 // guaranteed to trip
			if _, err := in.Run(context.Background(), prog, opts); err == nil {
				t.Fatal("expected a cycle-limit error")
			}
			checkPooledSeed(t, in, prog, nil)
		})
	}
}

// TestPooledSecretDifferential: secret-tainted runs pool safely. The
// leakage oracle runs its differential pair through the same pooled
// instance everything else uses, so (a) a pooled oracle must reach the
// same verdict as a fresh one — leak and clean alike — and (b) an
// instance that just executed leaking, secret-salted programs must
// still match a fresh machine byte-for-byte on the next ordinary run.
// Residue from SetSecret (a surviving secret range or digest salt)
// would diverge either the verdict or the differential.
func TestPooledSecretDifferential(t *testing.T) {
	// The secure modes are construction-affecting (they live in the SST
	// core config, covered by Options.ShapeFingerprint), so each mode
	// needs a shape-matched instance — exactly what a PoolKey-keyed pool
	// provides.
	for _, k := range []Kind{KindSST, KindScout, KindInOrder} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for _, mode := range []string{"none", "all"} {
				in, err := NewInstance(k, leakOpts(mode))
				if err != nil {
					t.Fatal(err)
				}
				for _, g := range gadgetFiles {
					prog := loadGadget(t, g)
					fresh := CheckTransientLeakage(k, prog, leakOpts(mode))
					pooled := in.CheckTransientLeakage(context.Background(), prog, leakOpts(mode))
					if (fresh == nil) != (pooled == nil) ||
						(fresh != nil && pooled != nil && fresh.Error() != pooled.Error()) {
						t.Errorf("%s mode=%s: fresh oracle says %v, pooled says %v", g, mode, fresh, pooled)
					}
				}
				if mode != "none" {
					continue
				}
				// The default-shape instance has now run leaking,
				// secret-tainted programs; an ordinary run on it must
				// still match a fresh machine byte-for-byte.
				prog, err := genProgram(3, 80)
				if err != nil {
					t.Fatal(err)
				}
				checkPooledSeed(t, in, prog, nil)
			}
		})
	}
}

// TestPooledDetachedOutcomeIsFrozen: the detached outcome a pooled run
// returns must keep its figures forever, even after the instance runs
// something else — the run cache and the service layer hold these
// outcomes indefinitely.
func TestPooledDetachedOutcomeIsFrozen(t *testing.T) {
	in, err := NewInstance(KindSST, fuzzFaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	progA, err := genProgram(1, 80)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := genProgram(5, 80)
	if err != nil {
		t.Fatal(err)
	}
	outA, ma, _ := pooledRun(t, in, progA, nil)
	cyclesA, baseA := outA.Cycles, *outA.Core.Base()

	// Overwrite the live machine with a different program.
	var mb []byte
	if _, mb2, _ := pooledRun(t, in, progB, nil); true {
		mb = mb2
	}
	if bytes.Equal(ma, mb) {
		t.Fatal("test needs two programs with different metrics")
	}

	if outA.Cycles != cyclesA || *outA.Core.Base() != baseA {
		t.Error("detached outcome mutated by a later run on the same instance")
	}
	// Run A's registry — the one the service layer snapshots on a cache
	// hit — must still serialize to exactly run A's bytes: it holds
	// cloned histograms and value counters, nothing aliased to the live
	// (since reused) machine.
	var again bytes.Buffer
	if err := outA.Obs.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), ma) {
		t.Errorf("detached registry mutated by a later run on the same instance: %s",
			firstDiff(ma, again.Bytes()))
	}
}
