package sim

import (
	"testing"

	"rocksim/internal/core"
	"rocksim/internal/workload"
)

// TestWorkloadsAllCoresEquivalent is the heavyweight integration check:
// every built-in workload (test scale) runs on every core model and must
// retire exactly the golden instruction count with the golden memory
// image. Cross-model performance invariants are asserted alongside.
func TestWorkloadsAllCoresEquivalent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs, err := workload.BuildAll(workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	for _, w := range specs {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			emu, goldMem, err := RunEmulator(w.Program, 500_000_000)
			if err != nil {
				t.Fatal(err)
			}
			cycles := map[Kind]uint64{}
			for _, k := range Kinds {
				out, err := Run(k, w.Program, opts)
				if err != nil {
					t.Fatalf("%v: %v", k, err)
				}
				if out.Retired != emu.Executed {
					t.Errorf("%v: retired %d, golden %d", k, out.Retired, emu.Executed)
				}
				if !out.Mem.Equal(goldMem) {
					t.Errorf("%v: memory image differs", k)
				}
				cycles[k] = out.Cycles

				if st, ok := out.Core.(*core.Core); ok {
					s := st.Stats()
					// Conservation: every taken checkpoint is either
					// committed or rolled back (none leak).
					if s.CheckpointsTaken != s.EpochCommits+rollbackSum(s) {
						// Rollbacks discard whole suffixes of epochs, so
						// the identity is an inequality:
						// commits + rollbacks <= taken <= commits + rollbacks*maxEpochs.
						if s.EpochCommits+rollbackSum(s) > s.CheckpointsTaken {
							t.Errorf("%v: commits+rollbacks (%d+%d) exceed checkpoints taken (%d)",
								k, s.EpochCommits, s.Rollbacks, s.CheckpointsTaken)
						}
					}
					// Scout mode never commits epochs.
					if k == KindScout && s.EpochCommits > s.CheckpointsTaken {
						t.Errorf("scout committed more than it took")
					}
				}
			}
			// SST must never be slower than in-order by more than a
			// small overhead margin (rollback pathologies excepted by
			// design; the margin catches regressions).
			if float64(cycles[KindSST]) > 1.3*float64(cycles[KindInOrder]) {
				t.Errorf("sst (%d cyc) much slower than inorder (%d cyc)",
					cycles[KindSST], cycles[KindInOrder])
			}
		})
	}
}

func rollbackSum(s *core.Stats) uint64 {
	var n uint64
	for _, v := range s.RollbacksBy {
		n += v
	}
	return n
}

// TestDeterminism: identical runs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	w, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	for _, k := range Kinds {
		a, err := Run(k, w.Program, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(k, w.Program, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.Retired != b.Retired {
			t.Errorf("%v: nondeterministic (%d/%d vs %d/%d)", k, a.Cycles, a.Retired, b.Cycles, b.Retired)
		}
	}
}

// TestMemLatencyMonotonic: raising DRAM latency never speeds a core up.
func TestMemLatencyMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{KindInOrder, KindOOOLarge, KindSST} {
		var prev uint64
		for _, lat := range []int{100, 300, 600} {
			opts := DefaultOptions()
			opts.Hier.DRAM.Latency = lat
			out, err := Run(k, w.Program, opts)
			if err != nil {
				t.Fatal(err)
			}
			if out.Cycles < prev {
				t.Errorf("%v: cycles decreased (%d -> %d) as latency rose to %d",
					k, prev, out.Cycles, lat)
			}
			prev = out.Cycles
		}
	}
}

// TestSSTBeatsInOrderOnMLPWorkload: the defining behaviour at test
// scale — SST extracts MLP from independent-miss workloads.
func TestSSTBeatsInOrderOnMLPWorkload(t *testing.T) {
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	io, err := Run(KindInOrder, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	sst, err := Run(KindSST, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sst.IPC() < 1.5*io.IPC() {
		t.Errorf("sst IPC %.3f not well above inorder %.3f on randarr", sst.IPC(), io.IPC())
	}
	if sst.Core.Base().MLP() <= io.Core.Base().MLP() {
		t.Errorf("sst MLP %.2f <= inorder %.2f", sst.Core.Base().MLP(), io.Core.Base().MLP())
	}
}

// TestChaseNoFalseWin: on a pure dependent chase no machine should be
// dramatically faster than in-order (there is no parallelism to find) —
// catching accidental "time travel" in the timing model.
func TestChaseNoFalseWin(t *testing.T) {
	w, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	io, err := Run(KindInOrder, w.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{KindOOOLarge, KindSST, KindScout} {
		out, err := Run(k, w.Program, opts)
		if err != nil {
			t.Fatal(err)
		}
		if float64(out.Cycles) < 0.5*float64(io.Cycles) {
			t.Errorf("%v finished a pure chase 2x faster than in-order (%d vs %d cyc)",
				k, out.Cycles, io.Cycles)
		}
	}
}
