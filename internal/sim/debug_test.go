package sim

import (
	"testing"

	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/mem"
)

// TestDebugSSTArith is a scaffolding test used while bringing up the SST
// core; it dumps machine state if the core fails to finish quickly.
func TestDebugSSTArith(t *testing.T) {
	prog := mustAssemble(t, `
		.org 0x10000
		movi r5, 1000
		movi r6, 0
		movi r7, 3
	loop:
		add  r6, r6, r5
		mul  r8, r5, r7
		xor  r6, r6, r8
		addi r5, r5, -1
		bne  r5, zero, loop
		halt
	`)
	m := mem.NewSparse()
	prog.Load(m)
	opts := DefaultOptions()
	mach, err := cpu.NewMachine(m, opts.Hier, opts.Pred)
	if err != nil {
		t.Fatal(err)
	}
	c := core.New(mach, opts.SST, prog.Entry)
	for i := 0; i < 100000 && !c.Done(); i++ {
		c.Step()
		if c.Err() != nil {
			t.Fatalf("err: %v", c.Err())
		}
	}
	if !c.Done() {
		st := c.Stats()
		t.Fatalf("not done after 100k cycles: mode=%v retired=%d processed-stats: defer=%d replay=%d pend=%d ckpt=%d commits=%d rollbacks=%d scouts=%d dqocc-mean=%.1f modecycles=%v dump=%s",
			c.Mode(), c.Retired(), st.Deferrals, st.Replays, st.PendingMisses,
			st.CheckpointsTaken, st.EpochCommits, st.Rollbacks, st.ScoutEntries,
			st.DQOcc.Mean(), st.ModeCycles, c.DebugDump())
	}
}
