// Cell statistics snapshots: the serializable extract of a single-cell
// Outcome that the experiment drivers consume when assembling tables.
//
// The fleet tier (internal/fleet, cmd/rockgate) computes cells on
// remote rocksimd shards and reassembles experiment tables on the
// router. A live Outcome cannot cross a process boundary — it holds the
// concrete core model and memory hierarchy — so the shard extracts a
// CellStats, ships it as JSON, and the router rebuilds an Outcome view
// that answers every table-assembly accessor identically. The byte-
// identity tests in internal/gate pin that equivalence end to end.
package sim

import (
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/mem"
)

// CellStats is the serializable per-cell statistics extract: everything
// the experiment drivers read from an Outcome when rendering tables.
// It deliberately carries statistics only — no memory image, no live
// machine — so it stays small on the wire.
type CellStats struct {
	Kind    string `json:"kind"`
	Cycles  uint64 `json:"cycles"`
	Retired uint64 `json:"retired"`
	// Base is the common per-core statistics block (Outcome.Core.Base()).
	Base cpu.BaseStats `json:"base"`
	// SST carries the SST-family statistics when the cell ran on a
	// core.Core (sst, sst-big, sst-ea, scout); nil otherwise.
	SST *core.Stats `json:"sst,omitempty"`
	// Cache and TLB statistics of the cell's (single-core) hierarchy.
	L1D  *mem.CacheStats `json:"l1d,omitempty"`
	L2   *mem.CacheStats `json:"l2,omitempty"`
	DTLB *mem.TLBStats   `json:"dtlb,omitempty"`
}

// SnapshotCell extracts the serializable statistics of a finished cell
// run. The snapshot is detached: mutating the live outcome afterwards
// does not change it.
func SnapshotCell(out Outcome) *CellStats {
	cs := &CellStats{
		Kind:    out.Kind.String(),
		Cycles:  out.Cycles,
		Retired: out.Retired,
	}
	if out.Cell != nil {
		// Already a reconstructed view (a remote cell re-snapshotted):
		// copy it through unchanged.
		c := *out.Cell
		if c.SST != nil {
			c.SST = cloneSSTStats(c.SST)
		}
		return &c
	}
	if out.Core != nil {
		cs.Base = *out.Core.Base()
		if cc, ok := out.Core.(*core.Core); ok {
			cs.SST = cloneSSTStats(cc.Stats())
		}
	}
	if out.Mach != nil && out.Mach.Hier != nil {
		h := out.Mach.Hier
		if l1 := h.L1D(0); l1 != nil {
			s := l1.Stats
			cs.L1D = &s
		}
		if l2 := h.L2(); l2 != nil {
			s := l2.Stats
			cs.L2 = &s
		}
		if tlb := h.DTLB(0); tlb != nil {
			s := tlb.Stats
			cs.DTLB = &s
		}
	}
	return cs
}

// cloneSSTStats deep-copies an SST statistics block, cloning the
// histograms so the snapshot detaches from the (possibly pooled and
// reused) live core.
func cloneSSTStats(s *core.Stats) *core.Stats {
	c := *s
	if s.DQOcc != nil {
		c.DQOcc = s.DQOcc.Clone()
	}
	if s.SSBOcc != nil {
		c.SSBOcc = s.SSBOcc.Clone()
	}
	if s.CkptOcc != nil {
		c.CkptOcc = s.CkptOcc.Clone()
	}
	if s.CkptLife != nil {
		c.CkptLife = s.CkptLife.Clone()
	}
	return &c
}

// AsOutcome rebuilds the Outcome view of a (possibly remotely
// computed) snapshot. The view carries no live machine: Core and Mach
// are nil, and the table-assembly accessors (BaseStats, SSTStats,
// L1DStats, L2Stats, DTLBStats, IPC) answer from the snapshot.
func (cs *CellStats) AsOutcome() (Outcome, error) {
	k, err := KindByName(cs.Kind)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Kind: k, Cycles: cs.Cycles, Retired: cs.Retired, Cell: cs}, nil
}

// BaseStats returns the cell's common per-core statistics block,
// answering from the snapshot for a remotely computed cell and from the
// live core otherwise.
func (o Outcome) BaseStats() *cpu.BaseStats {
	if o.Cell != nil {
		return &o.Cell.Base
	}
	if o.Core != nil {
		return o.Core.Base()
	}
	return &cpu.BaseStats{}
}

// SSTStats returns the SST-family statistics block of the cell, or nil
// when the cell ran on a non-SST core model.
func (o Outcome) SSTStats() *core.Stats {
	if o.Cell != nil {
		return o.Cell.SST
	}
	if c, ok := o.Core.(*core.Core); ok {
		return c.Stats()
	}
	return nil
}

// L1DStats returns the cell's L1 data-cache statistics (core 0).
func (o Outcome) L1DStats() mem.CacheStats {
	if o.Cell != nil {
		if o.Cell.L1D != nil {
			return *o.Cell.L1D
		}
		return mem.CacheStats{}
	}
	if o.Mach != nil && o.Mach.Hier != nil {
		if l1 := o.Mach.Hier.L1D(0); l1 != nil {
			return l1.Stats
		}
	}
	return mem.CacheStats{}
}

// L2Stats returns the cell's shared-L2 statistics.
func (o Outcome) L2Stats() mem.CacheStats {
	if o.Cell != nil {
		if o.Cell.L2 != nil {
			return *o.Cell.L2
		}
		return mem.CacheStats{}
	}
	if o.Mach != nil && o.Mach.Hier != nil {
		if l2 := o.Mach.Hier.L2(); l2 != nil {
			return l2.Stats
		}
	}
	return mem.CacheStats{}
}

// DTLBStats returns the cell's data-TLB statistics, or nil when
// translation modeling was disabled for the run.
func (o Outcome) DTLBStats() *mem.TLBStats {
	if o.Cell != nil {
		return o.Cell.DTLB
	}
	if o.Mach != nil && o.Mach.Hier != nil {
		if tlb := o.Mach.Hier.DTLB(0); tlb != nil {
			s := tlb.Stats
			return &s
		}
	}
	return nil
}
