package sim

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/faults"
	"rocksim/internal/isa"
)

// checkEmulatorBudget bounds the golden model when verifying fault
// invisibility; it is an instruction count, far above any program the
// oracle is pointed at.
const checkEmulatorBudget = 200_000_000

// CheckFaultInvisibility enforces the speculation-invisibility oracle:
// run prog on the golden functional model and on core kind k under the
// fault plan, and require identical architectural state — retired
// instruction count, register file, and memory image. Faults perturb
// only timing and speculative structures; any difference the plan can
// produce in committed state is a correctness bug (or a deliberately
// unsound fault such as skip-restore, which this oracle exists to
// catch). A nil plan degenerates to the plain equivalence check.
//
// The returned error describes the first divergence (or the run
// failure); nil means the faulted run was architecturally invisible.
func CheckFaultInvisibility(k Kind, prog *asm.Program, plan *faults.Plan, opts Options) error {
	emu, goldMem, err := RunEmulator(prog, checkEmulatorBudget)
	if err != nil {
		return fmt.Errorf("golden emulator: %w", err)
	}
	opts.Faults = plan
	out, err := Run(k, prog, opts)
	if err != nil {
		return fmt.Errorf("faulted run: %w", err)
	}
	if out.Retired != emu.Executed {
		return fmt.Errorf("%v under %s: retired %d insts, golden executed %d",
			k, plan, out.Retired, emu.Executed)
	}
	for r := 1; r < isa.NumRegs; r++ {
		if out.Regs[r] != emu.Reg[r] {
			return fmt.Errorf("%v under %s: r%d = %#x, golden %#x",
				k, plan, r, uint64(out.Regs[r]), uint64(emu.Reg[r]))
		}
	}
	if !out.Mem.Equal(goldMem) {
		diffs := out.Mem.Diff(goldMem, 8)
		return fmt.Errorf("%v under %s: memory differs from golden at %d+ addrs, first: %#x",
			k, plan, len(diffs), diffs)
	}
	return nil
}
