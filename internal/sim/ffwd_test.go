package sim

import (
	"bytes"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
	"rocksim/internal/smt"
	"rocksim/internal/workload"
)

// This file is the fast-forward differential oracle: every observable a
// run produces — cycle and retire counts, architectural registers, the
// exported metrics JSON (counters, histograms, occupancy timelines,
// injector counts) and the Chrome trace bytes (mode spans, events,
// counter samples, fault firings with their cycles) — must be
// byte-identical between naive stepping and event-driven stall skipping.

// ffRun executes prog on kind with full observability attached and
// returns the outcome plus the metrics-JSON and Chrome-trace bytes.
func ffRun(t *testing.T, k Kind, prog *asm.Program, plan *faults.Plan, noFF bool) (Outcome, []byte, []byte) {
	t.Helper()
	return ffRunWith(t, k, prog, plan, noFF, fuzzFaultOpts())
}

// ffRunWith is ffRun under caller-chosen base options, so differentials
// can vary construction-affecting knobs (predictor kind, share mode).
func ffRunWith(t *testing.T, k Kind, prog *asm.Program, plan *faults.Plan, noFF bool, opts Options) (Outcome, []byte, []byte) {
	t.Helper()
	opts.Faults = plan
	opts.NoFastForward = noFF
	opts.Metrics = obs.NewRegistry()
	tr := obs.NewTrace()
	col := obs.NewCollector(tr, opts.Metrics)
	opts.Sink = col
	out, err := Run(k, prog, opts)
	if err != nil {
		t.Fatalf("%v noFF=%v: %v", k, noFF, err)
	}
	col.Flush(out.Cycles)
	var mbuf, tbuf bytes.Buffer
	if err := opts.Metrics.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&tbuf); err != nil {
		t.Fatal(err)
	}
	return out, mbuf.Bytes(), tbuf.Bytes()
}

// firstDiff locates the first byte divergence and returns a short
// context window around it for the failure message.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	win := func(s []byte) string {
		hi := i + 40
		if hi > len(s) {
			hi = len(s)
		}
		if lo > len(s) {
			return ""
		}
		return string(s[lo:hi])
	}
	return "at byte " + itoa(i) + ": naive ..." + win(a) + "... vs fast ..." + win(b) + "..."
}

func checkFFSeed(t *testing.T, k Kind, prog *asm.Program, plan *faults.Plan) {
	t.Helper()
	naive, nm, nt := ffRun(t, k, prog, plan, true)
	fast, fm, ft := ffRun(t, k, prog, plan, false)
	if naive.Cycles != fast.Cycles || naive.Retired != fast.Retired {
		t.Errorf("%v: naive %d cycles/%d retired, fast-forward %d cycles/%d retired",
			k, naive.Cycles, naive.Retired, fast.Cycles, fast.Retired)
	}
	if naive.Regs != fast.Regs {
		t.Errorf("%v: architectural registers diverge under fast-forward", k)
	}
	nb, fb := naive.Core.Base(), fast.Core.Base()
	if nb.CPI != fb.CPI {
		t.Errorf("%v: cycle-accounting buckets diverge under fast-forward:\n naive %v\n fast  %v",
			k, nb.CPI, fb.CPI)
	}
	for _, r := range []struct {
		name string
		b    *cpu.BaseStats
	}{{"naive", nb}, {"fast", fb}} {
		if sum := r.b.CPISum(); sum != r.b.Cycles {
			t.Errorf("%v %s: cycle-accounting buckets sum to %d, want %d cycles",
				k, r.name, sum, r.b.Cycles)
		}
	}
	if !bytes.Equal(nm, fm) {
		t.Errorf("%v: metrics JSON diverges under fast-forward: %s", k, firstDiff(nm, fm))
	}
	if !bytes.Equal(nt, ft) {
		t.Errorf("%v: Chrome trace diverges under fast-forward: %s", k, firstDiff(nt, ft))
	}
}

// TestFastForwardDifferentialFuzz: random programs (including
// transactions), every core kind, no faults.
func TestFastForwardDifferentialFuzz(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 3
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= n; seed++ {
				prog, err := genProgram(seed, 80)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkFFSeed(t, k, prog, nil)
			}
		})
	}
}

// TestFastForwardFaultDifferential: random programs under random benign
// fault plans. The injector's firing cycles and counts ride in the trace
// and metrics bytes, so a skip that jumps over a fault-plan boundary —
// or fails to replay a per-retry clamp probe — cannot pass.
func TestFastForwardFaultDifferential(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= n; seed++ {
				prog, err := genFaultProgram(seed, 70)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				checkFFSeed(t, k, prog, faults.Random(seed, faultHorizon))
			}
		})
	}
}

// TestFastForwardEngages drives miss-heavy workloads directly and
// asserts the skip path actually takes jumps: the simulated cycle count
// must exceed the number of Step calls by a wide margin, or the whole
// optimization is a silent no-op.
func TestFastForwardEngages(t *testing.T) {
	w, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	build := func(name string, mk func(m *cpu.Machine) cpu.FastForwarder) {
		m := mem.NewSparse()
		w.Program.Load(m)
		mach, err := cpu.NewMachine(m, opts.Hier, opts.Pred)
		if err != nil {
			t.Fatal(err)
		}
		c := mk(mach)
		steps := uint64(0)
		for !c.Done() && steps < 50_000_000 {
			if tgt := c.NextEvent(); tgt > c.Cycle() {
				c.SkipTo(tgt)
				continue
			}
			c.Step()
			steps++
			if err := c.Err(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if !c.Done() {
			t.Fatalf("%s: did not finish", name)
		}
		if c.Cycle() < 2*steps {
			t.Errorf("%s: fast-forward barely engaged: %d cycles from %d steps", name, c.Cycle(), steps)
		}
		t.Logf("%s: %d cycles from %d steps (%.1fx)", name, c.Cycle(), steps, float64(c.Cycle())/float64(steps))
	}
	build("inorder", func(m *cpu.Machine) cpu.FastForwarder {
		return inorder.New(m, opts.InOrder, w.Program.Entry)
	})
	build("sst", func(m *cpu.Machine) cpu.FastForwarder {
		return core.New(m, opts.SST, w.Program.Entry)
	})
}

// smtPair builds one SMT physical core running two workloads.
func smtPair(t *testing.T, wa, wb *workload.Spec, opts Options) *smt.Core {
	t.Helper()
	hier, err := mem.NewHierarchy(opts.Hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	preds := bpred.NewGroup(opts.Pred, 2)
	mk := func(strand int, w *workload.Spec) smt.Thread {
		m := mem.NewSparse()
		w.Program.Load(m)
		mach := &cpu.Machine{Mem: m, Hier: hier, CoreID: 0, Pred: preds[strand]}
		return smt.Thread{Core: inorder.New(mach, opts.InOrder, w.Program.Entry), Mach: mach}
	}
	c, err := smt.New(mk(0, wa), mk(1, wb))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFastForwardSMTDifferential: the SMT interleave skips only when
// both threads are provably stalled, splitting the credit across issue
// slots; per-thread statistics must match naive interleaving exactly.
func TestFastForwardSMTDifferential(t *testing.T) {
	wa, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workload.Build("stream", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	run := func(noFF bool) *smt.Core {
		c := smtPair(t, wa, wb, opts)
		if err := cpu.RunCtx(nil, c, cpu.RunConfig{
			MaxCycles:          opts.CycleLimit(),
			DisableFastForward: noFF,
		}); err != nil {
			t.Fatalf("noFF=%v: %v", noFF, err)
		}
		return c
	}
	naive, fast := run(true), run(false)
	if naive.Cycle() != fast.Cycle() {
		t.Errorf("SMT cycles diverge: naive %d, fast %d", naive.Cycle(), fast.Cycle())
	}
	for i := 0; i < 2; i++ {
		a, b := naive.Thread(i).Core, fast.Thread(i).Core
		if *a.Base() != *b.Base() {
			t.Errorf("thread %d base stats diverge:\n naive %+v\n fast  %+v", i, *a.Base(), *b.Base())
		}
		if a.Stats().StallCycles != b.Stats().StallCycles {
			t.Errorf("thread %d stall breakdown diverges:\n naive %v\n fast  %v",
				i, a.Stats().StallCycles, b.Stats().StallCycles)
		}
		if a.Regs() != b.Regs() {
			t.Errorf("thread %d registers diverge", i)
		}
	}
}

// TestFastForwardCMPDifferential: the lockstep chip jumps only when all
// alive cores are stalled. Compare a fast-forwarding chip.Run against a
// hand-rolled naive lockstep over an identically built chip.
func TestFastForwardCMPDifferential(t *testing.T) {
	names := []string{"chase", "stream", "oltp"}
	var progs []*asm.Program
	for _, n := range names {
		w, err := workload.Build(n, workload.ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, w.Program)
	}
	opts := DefaultOptions()
	build := func() *cmp.Chip {
		chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
			func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
				if id%2 == 0 {
					return core.New(m, opts.SST, entry), nil
				}
				return inorder.New(m, opts.InOrder, entry), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return chip
	}

	fastChip := build()
	if err := fastChip.Run(opts.CycleLimit()); err != nil {
		t.Fatal(err)
	}
	naiveChip := build()
	for cycle := uint64(0); cycle < opts.CycleLimit(); cycle++ {
		alive := false
		for _, c := range naiveChip.Cores {
			if c.Done() {
				continue
			}
			alive = true
			c.Step()
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
		}
		if !alive {
			break
		}
	}

	for i := range naiveChip.Cores {
		a, b := naiveChip.Cores[i], fastChip.Cores[i]
		if a.Cycle() != b.Cycle() || a.Retired() != b.Retired() {
			t.Errorf("core %d: naive %d cycles/%d retired, fast %d cycles/%d retired",
				i, a.Cycle(), a.Retired(), b.Cycle(), b.Retired())
		}
		if *a.Base() != *b.Base() {
			t.Errorf("core %d base stats diverge:\n naive %+v\n fast  %+v", i, *a.Base(), *b.Base())
		}
	}
}
