package sim

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/faults"
)

// The gadget corpus: Spectre-v1 bounds-check-bypass programs whose
// transient body transmits a declared secret through the cache (see the
// comments in each .rk file and docs/SECURITY.md).
var gadgetFiles = []string{"gadget_spectre_load.rk", "gadget_spectre_store.rk"}

func loadGadget(t testing.TB, name string) *asm.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	prog.Name = name
	return prog
}

// leakModes names the secure-speculation configurations the corpus is
// checked under.
var leakModes = []string{"none", "delay", "nofwd", "ssb", "all"}

func leakOpts(mode string) Options {
	opts := DefaultOptions()
	opts.MaxCycles = 10_000_000
	switch mode {
	case "none":
	case "delay":
		opts.SST.SecureDelayOnMiss = true
	case "nofwd":
		opts.SST.SecureNoNAForward = true
	case "ssb":
		opts.SST.SecureEagerSSBFlush = true
	case "all":
		opts.SST.SecureDelayOnMiss = true
		opts.SST.SecureNoNAForward = true
		opts.SST.SecureEagerSSBFlush = true
	default:
		panic("unknown leak mode " + mode)
	}
	return opts
}

// gadgetLeakMatrix is the empirically pinned security matrix: for each
// gadget and secure mode, exactly which core kinds leak. Everything in
// the SST family (sst, sst-big, sst-ea, scout) leaks unmitigated.
// SecureDelayOnMiss and SecureNoNAForward close both channels;
// SecureEagerSSBFlush closes only the store channel (it never gates
// speculative loads). ooo-small leaks through the load channel in every
// mode because the secure modes are SST-family configuration — the OOO
// baseline has no mitigation, exactly like the processors Spectre was
// published against. ooo-large's wider window resolves the bound load
// before the wrong-path body issues, so this corpus does not reach its
// transmitter; inorder never speculates past the branch at all.
var gadgetLeakMatrix = map[string]map[string][]Kind{
	"gadget_spectre_load.rk": {
		"none":  {KindOOOSmall, KindSST, KindSSTBig, KindSSTEA, KindScout},
		"delay": {KindOOOSmall},
		"nofwd": {KindOOOSmall},
		"ssb":   {KindOOOSmall, KindSST, KindSSTBig, KindSSTEA, KindScout},
		"all":   {KindOOOSmall},
	},
	"gadget_spectre_store.rk": {
		"none":  {KindSST, KindSSTBig, KindSSTEA, KindScout},
		"delay": {},
		"nofwd": {},
		"ssb":   {},
		"all":   {},
	},
}

func kindIn(k Kind, set []Kind) bool {
	for _, s := range set {
		if s == k {
			return true
		}
	}
	return false
}

// TestGadgetsLeakUnmitigated is the oracle's teeth: on the unmitigated
// SST and scout pipelines every gadget in the corpus must be caught
// leaking. If these pass cleanly the oracle is blind and every other
// "clean" result in this file is meaningless.
func TestGadgetsLeakUnmitigated(t *testing.T) {
	for _, g := range gadgetFiles {
		prog := loadGadget(t, g)
		for _, k := range []Kind{KindSST, KindScout} {
			err := CheckTransientLeakage(k, prog, leakOpts("none"))
			if !errors.Is(err, ErrTransientLeak) {
				t.Errorf("%s on unmitigated %v: want ErrTransientLeak, got %v", g, k, err)
			}
		}
	}
}

// TestGadgetLeakMatrix pins the full gadget x mode x kind security
// matrix. A config listed in gadgetLeakMatrix must report
// ErrTransientLeak; every other config must be clean — a false positive
// here is as much a bug as a missed leak.
func TestGadgetLeakMatrix(t *testing.T) {
	for _, g := range gadgetFiles {
		prog := loadGadget(t, g)
		for _, mode := range leakModes {
			for _, k := range Kinds {
				err := CheckTransientLeakage(k, prog, leakOpts(mode))
				leaked := errors.Is(err, ErrTransientLeak)
				want := kindIn(k, gadgetLeakMatrix[g][mode])
				switch {
				case err != nil && !leaked:
					t.Errorf("%s mode=%s kind=%v: unexpected error %v", g, mode, k, err)
				case leaked && !want:
					t.Errorf("%s mode=%s kind=%v: false positive: %v", g, mode, k, err)
				case !leaked && want:
					t.Errorf("%s mode=%s kind=%v: leak not detected", g, mode, k)
				}
			}
		}
	}
}

// TestGadgetsUnderFaultPlans runs the corpus with fault injection
// active. The oracle applies the same plan to both differential runs,
// so benign plans must not flip the verdict: mitigated (and
// non-speculating) configurations stay clean — the oracle must not
// mistake fault-induced perturbation for leakage — and the unmitigated
// leak survives plans that merely harass the warmup phase.
func TestGadgetsUnderFaultPlans(t *testing.T) {
	plans := []string{
		"seed=1;ckpt-deny@0-400",
		"seed=2;rollback@300",
		"seed=3;mem-jitter@0-:8",
		"seed=4;dq-clamp@0-:4;ssb-clamp@0-:4",
		"seed=5;mispredict@0-900:3",
	}
	for _, ps := range plans {
		plan, err := faults.Parse(ps)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range gadgetFiles {
			prog := loadGadget(t, g)
			for _, cfg := range []struct {
				k    Kind
				mode string
			}{
				{KindInOrder, "none"},
				{KindOOOLarge, "none"},
				{KindSST, "all"},
				{KindScout, "delay"},
			} {
				opts := leakOpts(cfg.mode)
				opts.Faults = plan
				if err := CheckTransientLeakage(cfg.k, prog, opts); err != nil {
					t.Errorf("%s kind=%v mode=%s plan=%q: false positive under faults: %v",
						g, cfg.k, cfg.mode, ps, err)
				}
			}
		}
	}
	// The leak itself must survive benign fault harassment: plans above
	// only perturb the warmup window, long before the trained attack
	// iteration opens its speculative window.
	prog := loadGadget(t, "gadget_spectre_load.rk")
	for _, ps := range plans[:2] {
		plan, err := faults.Parse(ps)
		if err != nil {
			t.Fatal(err)
		}
		opts := leakOpts("none")
		opts.Faults = plan
		if err := CheckTransientLeakage(KindSST, prog, opts); !errors.Is(err, ErrTransientLeak) {
			t.Errorf("unmitigated sst under plan %q: want ErrTransientLeak, got %v", ps, err)
		}
	}
}

// TestLeakOracleRequiresSecrets: a program with no .secret regions is a
// caller error, not a clean result.
func TestLeakOracleRequiresSecrets(t *testing.T) {
	prog, err := asm.Assemble("start: halt\n.entry start\n")
	if err != nil {
		t.Fatal(err)
	}
	err = CheckTransientLeakage(KindSST, prog, leakOpts("none"))
	if err == nil || errors.Is(err, ErrTransientLeak) {
		t.Fatalf("want no-secrets error, got %v", err)
	}
}

// TestLeakOracleRequiresBackedSecrets: a secret region of implicit
// zeroes cannot be perturbed, so the oracle must refuse it rather than
// silently verify nothing.
func TestLeakOracleRequiresBackedSecrets(t *testing.T) {
	b := asm.NewBuilder(asm.DefaultTextBase)
	b.SetEntry("main")
	b.Label("main")
	b.Halt()
	b.Secret(0x300000, 8) // no Data() backs this address
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	err = CheckTransientLeakage(KindSST, prog, leakOpts("none"))
	if err == nil || errors.Is(err, ErrTransientLeak) {
		t.Fatalf("want unbacked-secret error, got %v", err)
	}
}

// TestLeakOracleArchDependence: a program that architecturally computes
// on its secret is outside the oracle's threat model and must be
// reported as such, not as a transient leak.
func TestLeakOracleArchDependence(t *testing.T) {
	src := `
        .entry start
start:  li   r3, s
        ld64 r5, (r3)          ; committed register now holds the secret
        halt
        .data 0x210000
s:      .quad 0x42
        .secret s, 8
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds {
		err := CheckTransientLeakage(k, prog, leakOpts("none"))
		if !errors.Is(err, ErrArchSecretDependence) {
			t.Errorf("%v: want ErrArchSecretDependence, got %v", k, err)
		}
	}
}

// --- leak fuzz ---

// leakSecretBase places the fuzz secret outside the generated programs'
// data window [fuzzDataBase, fuzzDataBase+fuzzDataSize): every load and
// store address is masked into the window, so no generated program can
// touch the secret architecturally or speculatively. The invariant is
// therefore total: the oracle must report such programs clean on every
// kind, in every secure mode, under arbitrary benign fault plans. A
// failure means the oracle itself manufactures secret dependence —
// digest nondeterminism, pooling residue, or salt leakage.
const leakSecretBase = 0x218000

func genLeakProgram(seed int64, nstmt int) (*asm.Program, error) {
	g := &progGen{r: rand.New(rand.NewSource(seed)), b: asm.NewBuilder(asm.DefaultTextBase), noTx: true}
	g.b.Data(leakSecretBase, []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04})
	g.b.Secret(leakSecretBase, 8)
	return genWith(g, nstmt)
}

// checkLeakSeed verifies oracle cleanliness for one (program, plan)
// pair, shrinking failures to a minimal reproducer before reporting.
func checkLeakSeed(t *testing.T, k Kind, seed int64, nstmt int, plan *faults.Plan) {
	t.Helper()
	prog, err := genLeakProgram(seed, nstmt)
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	opts := fuzzFaultOpts()
	opts.Faults = plan
	if err := CheckTransientLeakage(k, prog, opts); err != nil {
		minPlan, minNstmt := shrinkLeakFailure(k, seed, nstmt, plan)
		t.Errorf("seed %d: %v\n  minimal repro: kind=%v seed=%d nstmt=%d plan=%q",
			seed, err, k, seed, minNstmt, minPlan)
	}
}

// shrinkLeakFailure mirrors shrinkFaultFailure: drop plan events
// greedily, then halve the program, keeping every step that still fails.
func shrinkLeakFailure(k Kind, seed int64, nstmt int, plan *faults.Plan) (*faults.Plan, int) {
	fails := func(p *faults.Plan, n int) bool {
		prog, err := genLeakProgram(seed, n)
		if err != nil {
			return false
		}
		opts := fuzzFaultOpts()
		opts.Faults = p
		return CheckTransientLeakage(k, prog, opts) != nil
	}
	events := append([]faults.Event(nil), plan.Events...)
	for i := 0; i < len(events); {
		trial := append(append([]faults.Event(nil), events[:i]...), events[i+1:]...)
		if fails(&faults.Plan{Seed: plan.Seed, Events: trial}, nstmt) {
			events = trial
		} else {
			i++
		}
	}
	min := &faults.Plan{Seed: plan.Seed, Events: events}
	for nstmt > 10 && fails(min, nstmt/2) {
		nstmt /= 2
	}
	return min, nstmt
}

// leakFuzzPlan derives the fault plan for a leak-fuzz seed: even seeds
// run clean, odd seeds run under a random benign plan, so both the
// unfaulted and faulted digest paths stay covered.
func leakFuzzPlan(seed int64) *faults.Plan {
	if seed%2 == 0 {
		return nil
	}
	return faults.Random(seed, faultHorizon)
}

// TestLeakFuzzSmoke is the bounded fixed-seed subset wired into the
// Makefile's leak-fuzz target: a fast always-on smoke of the oracle's
// false-positive resistance across every core kind.
func TestLeakFuzzSmoke(t *testing.T) {
	for _, k := range Kinds {
		for seed := int64(1); seed <= 6; seed++ {
			checkLeakSeed(t, k, seed, 50, leakFuzzPlan(seed))
		}
	}
}

// TestLeakFuzzNoFalsePositives is the deeper sweep: many seeds per
// kind, alternating secure modes, clean and under random fault plans.
func TestLeakFuzzNoFalsePositives(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 10
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= n; seed++ {
				checkLeakSeed(t, k, seed, 60, leakFuzzPlan(seed))
			}
		})
	}
}
