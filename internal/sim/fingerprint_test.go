package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
	"rocksim/internal/ooo"
)

// goldenDefaultFingerprint is the canonical fingerprint of
// DefaultOptions, frozen. A run cache is only content-addressed if its
// keys are stable across process runs and binary rebuilds — a
// fingerprint that drifts (as the old reflection-based "%+v" encoding
// did when a config struct gained a pointer field, printing its hex
// address) silently turns every cached entry into a miss, or worse,
// keys distinct configurations identically. If a deliberate
// configuration or encoding change lands, update this constant in the
// same commit.
const goldenDefaultFingerprint = "hier{l1i=cache{name=L1I size=32768 ways=4 line=64 hitlat=1 mshrs=4} l1d=cache{name=L1D size=32768 ways=4 line=64 hitlat=2 mshrs=8} l2=cache{name=L2 size=4194304 ways=8 line=64 hitlat=20 mshrs=32} l2banks=8 dram{lat=300 banks=16 busy=24} prefetch=none stride{entries=0 degree=0 minconf=0} dtlb=tlb{entries=0 ways=0 pagebits=0 misslat=0}}|bpred{kind=gshare share=part gshare=14 btb=2048 ras=8 tagetbl=4 tagebits=10 tagetag=9}|inorder{width=2 loads=4 sb=8 taken=2 mispred=8}|ooo{fetch=2 issue=2 commit=2 rob=32 iq=16 lsq=16 spec=true taken=1 mispred=10}|ooo{fetch=4 issue=4 commit=4 rob=128 iq=64 lsq=64 spec=true taken=1 mispred=14}|sst{width=2 replay=2 ckpts=4 dq=64 ssb=32 strand2=true scoutdq=false deferlong=true longmin=10 ckptmiss=true ckptbr=true taken=2 mispred=8 rollback=6 secdelay=false secnofwd=false secssb=false}|run{cycles=0 timeout=0 livelock=0}|faults{}"

func TestFingerprintGolden(t *testing.T) {
	got := DefaultOptions().Fingerprint()
	if got != goldenDefaultFingerprint {
		t.Errorf("DefaultOptions fingerprint drifted:\n got  %s\n want %s", got, goldenDefaultFingerprint)
	}
}

// TestFingerprintNoAddresses is the regression test for the original
// bug: the "%+v" encoding printed the *faults.Plan (and any future
// pointer field) as a hex address, different every process run.
func TestFingerprintNoAddresses(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = faults.Random(7, 200_000)
	opts.Probe = nopProbe{}
	opts.Sink = obs.NewCollector(obs.NewTrace(), obs.NewRegistry())
	opts.Metrics = obs.NewRegistry()
	opts.MaxCycles = 123456
	opts.Timeout = 3 * time.Second
	for _, fp := range []string{opts.Fingerprint(), opts.ShapeFingerprint(), PoolKey(KindSSTBig, opts)} {
		if strings.Contains(fp, "0x") {
			t.Errorf("fingerprint leaks a pointer address: %s", fp)
		}
	}
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	opts := DefaultOptions()
	opts.Faults = faults.Random(7, 200_000)
	if a, b := opts.Fingerprint(), opts.Fingerprint(); a != b {
		t.Errorf("fingerprint unstable across calls:\n %s\n %s", a, b)
	}

	// Observability hooks and NoFastForward must not enter the key: they
	// observe or pace a run without changing its simulated outcome.
	hooked := opts
	hooked.Probe = nopProbe{}
	hooked.Sink = obs.NewCollector(obs.NewTrace(), obs.NewRegistry())
	hooked.Metrics = obs.NewRegistry()
	hooked.NoFastForward = true
	if hooked.Fingerprint() != opts.Fingerprint() {
		t.Error("observability hooks changed the fingerprint")
	}

	// Every simulation-affecting knob must discriminate.
	mutations := map[string]func(*Options){
		"hier":     func(o *Options) { o.Hier.L2.SizeBytes *= 2 },
		"pred":     func(o *Options) { o.Pred.GshareBits++ },
		// Predictor kind and share mode must discriminate on their own:
		// two runs differing only here may never share a cache or pool
		// entry (a TAGE machine is not a reset gshare machine).
		"predkind":  func(o *Options) { o.Pred.Kind = bpred.TAGE },
		"predshare": func(o *Options) { o.Pred.Share = bpred.ShareHashed },
		"tagetbl":   func(o *Options) { o.Pred.TageTables = 3 },
		"tagebits":  func(o *Options) { o.Pred.TageTableBits++ },
		"tagetag":   func(o *Options) { o.Pred.TageTagBits++ },
		"inorder":  func(o *Options) { o.InOrder.Width++ },
		"ooo":      func(o *Options) { o.OOO.ROBSize++ },
		"ooolg":    func(o *Options) { o.OOOLg.ROBSize++ },
		"sst":      func(o *Options) { o.SST.DQSize++ },
		"secdelay": func(o *Options) { o.SST.SecureDelayOnMiss = true },
		"secnofwd": func(o *Options) { o.SST.SecureNoNAForward = true },
		"secssb":   func(o *Options) { o.SST.SecureEagerSSBFlush = true },
		"cycles":   func(o *Options) { o.MaxCycles = 99 },
		"livelock": func(o *Options) { o.LivelockWindow = 99 },
		"faults":   func(o *Options) { o.Faults = faults.Random(8, 200_000) },
	}
	for name, mutate := range mutations {
		m := opts
		mutate(&m)
		if m.Fingerprint() == opts.Fingerprint() {
			t.Errorf("mutating %s did not change the fingerprint", name)
		}
	}
}

// TestFingerprintCoversEveryField pins the field count of Options and
// of every configuration struct it embeds. Adding a field to any of
// them fails this test until the corresponding Fingerprint method (and
// the golden above) is updated — the explicit encodings can no longer
// silently fall out of sync with the structs the way "%+v" silently
// fell into printing addresses.
func TestFingerprintCoversEveryField(t *testing.T) {
	counts := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"sim.Options", reflect.TypeOf(Options{}), 14},
		{"mem.HierConfig", reflect.TypeOf(mem.HierConfig{}), 8},
		{"mem.CacheConfig", reflect.TypeOf(mem.CacheConfig{}), 6},
		{"mem.DRAMConfig", reflect.TypeOf(mem.DRAMConfig{}), 3},
		{"mem.TLBConfig", reflect.TypeOf(mem.TLBConfig{}), 4},
		{"mem.StridePrefetcherConfig", reflect.TypeOf(mem.StridePrefetcherConfig{}), 3},
		{"bpred.Config", reflect.TypeOf(bpred.Config{}), 8},
		{"inorder.Config", reflect.TypeOf(inorder.Config{}), 5},
		{"ooo.Config", reflect.TypeOf(ooo.Config{}), 9},
		{"core.Config", reflect.TypeOf(core.Config{}), 17},
	}
	for _, c := range counts {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%s has %d fields, fingerprint encodes %d: update the Fingerprint method, the golden constant and this count together",
				c.name, got, c.want)
		}
	}
}

// nopProbe satisfies core.Probe for hook-exclusion tests.
type nopProbe struct{}

func (nopProbe) CycleState(now uint64, mode core.Mode, executed, replayed, dq, ssb, ckpts, pend int) {
}
func (nopProbe) Event(now uint64, kind, detail string) {}
