package sim

import (
	"math/rand"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// progGen generates random but guaranteed-terminating RK64 programs:
// straight-line arithmetic, guarded loads/stores into a data window,
// counted loops, if/else diamonds, leaf calls, and occasional atomics.
// Every generated program is run on the golden emulator and on every
// core model; architectural state must match exactly. This one property
// exercises NA propagation, deferred-queue replay ordering, store-buffer
// bypass, checkpoint rollback, OOO renaming, squash and forwarding far
// more broadly than directed tests can.
type progGen struct {
	r    *rand.Rand
	b    *asm.Builder
	n    int  // label counter
	inTx bool // inside a transaction block: restrict statement kinds
	noTx bool // never emit transactions (fault-fuzz: aborts are architecturally visible)
}

const (
	fuzzDataBase = 0x200000
	fuzzDataSize = 1 << 16
	regBase      = 28 // holds fuzzDataBase
	regMask      = 29 // holds address mask
	regScratch   = 30
	regScratch2  = 31
	loopReg0     = 20 // loop counters by depth: r20..r23
	poolLo       = 4
	poolHi       = 19
)

func (g *progGen) reg() uint8 {
	return uint8(poolLo + g.r.Intn(poolHi-poolLo+1))
}

func (g *progGen) label(prefix string) string {
	g.n++
	return prefix + "_" + itoa(g.n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// addr computes a legal aligned data address into regScratch from a
// random pool register.
func (g *progGen) addr() {
	g.b.Op(isa.OpAnd, regScratch, g.reg(), regMask)
	g.b.Op(isa.OpAdd, regScratch, regScratch, regBase)
}

var fuzzALUOps = []isa.Op{
	isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
	isa.OpSll, isa.OpSrl, isa.OpSra, isa.OpSlt, isa.OpSltu,
	isa.OpMul, isa.OpMulh, isa.OpDiv, isa.OpDivu, isa.OpRem, isa.OpRemu,
}

var fuzzALUImmOps = []isa.Op{
	isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
	isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti, isa.OpSltui,
}

var fuzzLoads = []isa.Op{
	isa.OpLd8, isa.OpLd16, isa.OpLd32, isa.OpLd64,
	isa.OpLdu8, isa.OpLdu16, isa.OpLdu32,
}

var fuzzStores = []isa.Op{isa.OpSt8, isa.OpSt16, isa.OpSt32, isa.OpSt64}

func (g *progGen) stmt(budget *int, depth int) {
	if *budget <= 0 {
		return
	}
	*budget--
	switch k := g.r.Intn(20); {
	case k < 7: // reg-reg ALU
		g.b.Op(fuzzALUOps[g.r.Intn(len(fuzzALUOps))], g.reg(), g.reg(), g.reg())
	case k < 10: // reg-imm ALU
		op := fuzzALUImmOps[g.r.Intn(len(fuzzALUImmOps))]
		imm := int32(g.r.Intn(4096) - 2048)
		if op == isa.OpSlli || op == isa.OpSrli || op == isa.OpSrai {
			imm = int32(g.r.Intn(64))
		}
		g.b.Opi(op, g.reg(), g.reg(), imm)
	case k < 13: // load
		g.addr()
		g.b.Ld(fuzzLoads[g.r.Intn(len(fuzzLoads))], g.reg(), regScratch, 0)
	case k < 15: // store
		g.addr()
		g.b.St(fuzzStores[g.r.Intn(len(fuzzStores))], g.reg(), regScratch, 0)
	case k < 16 && depth < 3 && *budget > 6: // counted loop
		iters := 1 + g.r.Intn(6)
		cnt := uint8(loopReg0 + depth)
		top := g.label("loop")
		g.b.Movi(cnt, int32(iters))
		g.b.Label(top)
		inner := 2 + g.r.Intn(5)
		if inner > *budget {
			inner = *budget
		}
		for i := 0; i < inner; i++ {
			g.stmt(budget, depth+1)
		}
		g.b.Opi(isa.OpAddi, cnt, cnt, -1)
		g.b.Br(isa.OpBne, cnt, isa.RegZero, top)
	case k < 18: // if/else diamond on data-dependent condition
		els := g.label("else")
		end := g.label("end")
		g.b.Op(isa.OpSlt, regScratch2, g.reg(), g.reg())
		g.b.Br(isa.OpBeq, regScratch2, isa.RegZero, els)
		g.stmt(budget, depth)
		g.b.Jmp(end)
		g.b.Label(els)
		g.stmt(budget, depth)
		g.b.Label(end)
	case k < 19: // atomic, barrier, or (outside loops) a transaction
		if g.inTx {
			g.b.Nop() // cas/membar abort transactions: keep them out
			break
		}
		arms := 3
		if g.noTx {
			arms = 2 // transactions excluded: capacity faults abort them visibly
		}
		switch g.r.Intn(arms) {
		case 0:
			g.addr()
			g.b.Opi(isa.OpAndi, regScratch, regScratch, ^int32(7))
			g.b.Cas(g.reg(), regScratch, g.reg())
		case 1:
			g.b.Emit(isa.Inst{Op: isa.OpMembar})
		default:
			// A short transaction of simple statements. Single-core
			// with bounded reads/writes: it always commits, so flat
			// cores (which execute it as plain code) agree.
			skip := g.label("txskip")
			g.b.TxBegin(regScratch2, skip)
			g.inTx = true
			for i := 0; i < 2+g.r.Intn(4); i++ {
				g.stmt(budget, 3) // depth 3: no nested loops
			}
			g.inTx = false
			g.b.TxCommit()
			g.b.Label(skip)
		}
	default: // prefetch or nop
		if g.r.Intn(2) == 0 {
			g.addr()
			g.b.Prefetch(regScratch, 0)
		} else {
			g.b.Nop()
		}
	}
}

// genProgram builds one random program with nstmt top-level statements.
func genProgram(seed int64, nstmt int) (*asm.Program, error) {
	return genWith(&progGen{r: rand.New(rand.NewSource(seed)), b: asm.NewBuilder(asm.DefaultTextBase)}, nstmt)
}

// genFaultProgram is genProgram without transactions. The fault-fuzz
// oracle demands bit-exact architectural state under arbitrary fault
// plans, but a capacity fault aborting a transaction is architecturally
// VISIBLE by design (ROCK's HTM is best-effort; software owns the abort
// path), so tx blocks would make benign plans "fail" the oracle.
func genFaultProgram(seed int64, nstmt int) (*asm.Program, error) {
	return genWith(&progGen{r: rand.New(rand.NewSource(seed)), b: asm.NewBuilder(asm.DefaultTextBase), noTx: true}, nstmt)
}

func genWith(g *progGen, nstmt int) (*asm.Program, error) {
	b := g.b

	b.SetEntry("main")

	// Two leaf functions used by call sites.
	for f := 0; f < 2; f++ {
		b.Label("leaf" + itoa(f))
		budget := 4 + g.r.Intn(6)
		for budget > 0 {
			g.stmt(&budget, 3) // depth 3: no nested loops inside leaves
		}
		b.Ret()
	}

	b.Label("main")
	b.MovImm64(regBase, regScratch, fuzzDataBase)
	b.Movi(regMask, fuzzDataSize-8)
	// Seed the pool registers deterministically.
	for r := poolLo; r <= poolHi; r++ {
		b.Movi(uint8(r), int32(g.r.Uint32()))
	}
	budget := nstmt
	for budget > 0 {
		if g.r.Intn(12) == 0 {
			b.Call("leaf" + itoa(g.r.Intn(2)))
			budget--
			continue
		}
		g.stmt(&budget, 0)
	}
	b.Halt()

	// Random initial data image.
	data := make([]byte, fuzzDataSize)
	g.r.Read(data)
	b.Data(fuzzDataBase, data)
	return b.Finish()
}

// runFuzzSeed checks golden-model equivalence for one random program.
func runFuzzSeed(t *testing.T, seed int64, nstmt int) {
	t.Helper()
	prog, err := genProgram(seed, nstmt)
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	emu, goldMem, err := RunEmulator(prog, 50_000_000)
	if err != nil {
		t.Fatalf("seed %d: emulator: %v", seed, err)
	}
	opts := DefaultOptions()
	opts.MaxCycles = 500_000_000
	for _, k := range Kinds {
		out, err := Run(k, prog, opts)
		if err != nil {
			t.Fatalf("seed %d: %v: %v", seed, k, err)
		}
		if out.Retired != emu.Executed {
			t.Errorf("seed %d: %v retired %d, golden %d", seed, k, out.Retired, emu.Executed)
		}
		bad := false
		for r := 1; r < isa.NumRegs; r++ {
			if out.Regs[r] != emu.Reg[r] {
				t.Errorf("seed %d: %v r%d=%#x golden %#x", seed, k, r, uint64(out.Regs[r]), uint64(emu.Reg[r]))
				bad = true
			}
		}
		if !out.Mem.Equal(goldMem) {
			t.Errorf("seed %d: %v memory mismatch at %#x...", seed, k, out.Mem.Diff(goldMem, 4))
			bad = true
		}
		if bad {
			t.FailNow()
		}
	}
}

// TestFuzzEquivalenceQuick runs a batch of random programs on every core
// model and checks them against the golden functional model.
func TestFuzzEquivalenceQuick(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 12
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		runFuzzSeed(t, seed, 80)
	}
}

// TestFuzzEquivalenceDeep runs fewer but much larger random programs.
func TestFuzzEquivalenceDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1000); seed < 1010; seed++ {
		runFuzzSeed(t, seed, 600)
	}
}

// TestFuzzSmallCaches repeats the fuzz check on a tiny hierarchy so that
// capacity misses, evictions and writebacks happen constantly.
func TestFuzzSmallCaches(t *testing.T) {
	prog, err := genProgram(42, 300)
	if err != nil {
		t.Fatal(err)
	}
	emu, goldMem, err := RunEmulator(prog, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Hier.L1D = mem.CacheConfig{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 4}
	opts.Hier.L1I = mem.CacheConfig{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 2}
	opts.Hier.L2 = mem.CacheConfig{Name: "L2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, HitLatency: 12, MSHRs: 8}
	opts.MaxCycles = 500_000_000
	for _, k := range Kinds {
		out, err := Run(k, prog, opts)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if out.Retired != emu.Executed {
			t.Errorf("%v: retired %d, golden %d", k, out.Retired, emu.Executed)
		}
		if !out.Mem.Equal(goldMem) {
			t.Errorf("%v: memory mismatch", k)
		}
	}
}
