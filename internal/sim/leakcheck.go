package sim

import (
	"context"
	"errors"
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
)

// The transient-leakage oracle (docs/SECURITY.md): run a program twice,
// differing only in the bytes of its declared secret regions, and
// require that every piece of attacker-observable microarchitectural
// state — the post-squash cache/MSHR digest after each rollback, the
// final digest, and the cycle count — is identical. Speculation that
// lets a secret value steer an observable access (a Spectre-style
// transmitter) fails the check; the secure-speculation modes
// (core.Config.Secure*) exist to make it pass.

// ErrTransientLeak is wrapped by CheckTransientLeakage when observable
// microarchitectural state depended on secret bytes: the program, on
// this core kind and configuration, leaks transiently.
var ErrTransientLeak = errors.New("transient leakage: observable state depends on secret bytes")

// ErrArchSecretDependence is wrapped when the two runs disagree in
// *committed* state (retired count or register file). That is not a
// transient leak — the program architecturally computes on its secrets —
// and the oracle cannot reason about such a program; gadgets must scrub
// committed state of secret dependence.
var ErrArchSecretDependence = errors.New("committed architectural state depends on secret bytes")

// secretPerturbMask is XORed into every secret byte for the differential
// run. Any nonzero mask works — the oracle's claim is independence, not
// coverage of a particular value.
const secretPerturbMask = 0x5A

// CheckTransientLeakage runs the differential leakage oracle for prog on
// a fresh instance of core kind k. See Instance.CheckTransientLeakage.
func CheckTransientLeakage(k Kind, prog *asm.Program, opts Options) error {
	inst, err := NewInstance(k, opts)
	if err != nil {
		return err
	}
	return inst.CheckTransientLeakage(context.Background(), prog, opts)
}

// CheckTransientLeakage runs prog twice on the pooled instance — once
// with secret regions perturbed, once as written — and compares every
// observable: the post-rollback digest sequence, the final digest and
// the cycle count. The perturbed run is silent (no user sinks, no
// metrics); the baseline run keeps the caller's observability hooks, and
// the oracle's comparison count lands in the leak/oracle_checks counter
// before metrics publish. A nil error means the secrets were invisible.
//
// Both runs go through the same reset-and-run path as every pooled run,
// so the oracle is safe on instances handed out by a pool; the
// differential tests in instance_test.go prove secret-tainted runs
// reset clean. As with Run, construction-affecting option fields —
// which include the secure-speculation modes — must match the shape the
// instance was built with (pool on PoolKey, which covers them).
func (in *Instance) CheckTransientLeakage(ctx context.Context, prog *asm.Program, opts Options) error {
	if len(prog.Secrets) == 0 {
		return fmt.Errorf("leak oracle: program %s declares no secret regions", prog.Desc())
	}
	perturbed, err := perturbSecrets(prog)
	if err != nil {
		return err
	}
	// Perturbed first: after the baseline run the live hierarchy holds
	// the baseline's counters, so the check counts and metrics published
	// below describe the run the caller asked to observe.
	quiet := opts
	quiet.Probe, quiet.Sink, quiet.Metrics = nil, nil, nil
	alt, err := in.leakRun(ctx, perturbed, quiet)
	if err != nil {
		return fmt.Errorf("leak oracle (perturbed run): %w", err)
	}
	base, err := in.leakRun(ctx, prog, opts)
	if err != nil {
		return fmt.Errorf("leak oracle (baseline run): %w", err)
	}

	// Precondition: committed architectural state must not depend on the
	// secret at all, or the digests below would diverge for boring
	// architectural reasons.
	leakErr := func() error {
		if base.retired != alt.retired {
			return fmt.Errorf("%w: %v on %s: retired %d vs %d", ErrArchSecretDependence,
				in.kind, prog.Desc(), base.retired, alt.retired)
		}
		for r := 1; r < isa.NumRegs; r++ {
			if base.regs[r] != alt.regs[r] {
				return fmt.Errorf("%w: %v on %s: r%d = %#x vs %#x", ErrArchSecretDependence,
					in.kind, prog.Desc(), r, uint64(base.regs[r]), uint64(alt.regs[r]))
			}
		}
		// Observables, coarsest first: a cycle-count difference is the
		// grossest timing channel.
		if base.cycles != alt.cycles {
			return fmt.Errorf("%w: %v on %s: run took %d cycles vs %d", ErrTransientLeak,
				in.kind, prog.Desc(), base.cycles, alt.cycles)
		}
		if len(base.rollDigests) != len(alt.rollDigests) {
			return fmt.Errorf("%w: %v on %s: %d rollbacks vs %d", ErrTransientLeak,
				in.kind, prog.Desc(), len(base.rollDigests), len(alt.rollDigests))
		}
		for i := range base.rollDigests {
			if base.rollDigests[i] != alt.rollDigests[i] {
				return fmt.Errorf("%w: %v on %s: post-squash digest %d/%d differs (%#x vs %#x)",
					ErrTransientLeak, in.kind, prog.Desc(), i+1, len(base.rollDigests),
					base.rollDigests[i], alt.rollDigests[i])
			}
		}
		if base.finalDigest != alt.finalDigest {
			return fmt.Errorf("%w: %v on %s: final observable digest differs (%#x vs %#x)",
				ErrTransientLeak, in.kind, prog.Desc(), base.finalDigest, alt.finalDigest)
		}
		return nil
	}()

	// One oracle check per digest comparison (rollbacks + final), counted
	// on the live hierarchy — which holds the baseline run's stats —
	// before they are published.
	for i := 0; i <= len(base.rollDigests); i++ {
		in.mach.Hier.NoteOracleCheck()
	}
	if opts.Metrics != nil {
		base.out.PublishObs(opts.Metrics)
	}
	return leakErr
}

// leakRun is one half of the differential pair: a pooled run with a
// digest recorder teed onto the caller's sink, capturing the observable
// digest after every rollback plus the final digest and cycle count.
type leakRun struct {
	rollDigests []uint64
	finalDigest uint64
	cycles      uint64
	retired     uint64
	regs        [isa.NumRegs]int64
	out         Outcome
}

func (in *Instance) leakRun(ctx context.Context, prog *asm.Program, opts Options) (leakRun, error) {
	rec := &digestRecorder{hier: in.mach.Hier}
	o := opts
	o.Sink = obs.Tee(rec, opts.Sink)
	out, err := in.runLive(ctx, prog, o)
	if err != nil {
		return leakRun{}, err
	}
	return leakRun{
		rollDigests: rec.digests,
		finalDigest: in.mach.Hier.ObservableDigest(out.Cycles),
		cycles:      out.Cycles,
		retired:     out.Retired,
		regs:        out.Regs,
		out:         out,
	}, nil
}

// perturbSecrets deep-copies prog's segments with every byte of every
// secret region XORed by secretPerturbMask. A secret region must be
// backed by initialized segment data — a secret of implicit zeroes
// cannot be perturbed, so it is an error.
func perturbSecrets(prog *asm.Program) (*asm.Program, error) {
	p := *prog
	p.Segments = make([]asm.Segment, len(prog.Segments))
	for i, s := range prog.Segments {
		p.Segments[i] = asm.Segment{Addr: s.Addr, Data: append([]byte(nil), s.Data...)}
	}
	touched := 0
	for _, sec := range prog.Secrets {
		for i := range p.Segments {
			seg := &p.Segments[i]
			lo, hi := sec.Addr, sec.Addr+uint64(sec.Len)
			if seg.Addr > lo {
				lo = seg.Addr
			}
			if end := seg.Addr + uint64(len(seg.Data)); end < hi {
				hi = end
			}
			for a := lo; a < hi; a++ {
				seg.Data[a-seg.Addr] ^= secretPerturbMask
				touched++
			}
		}
	}
	if touched == 0 {
		return nil, fmt.Errorf("leak oracle: no secret byte of %s is backed by initialized data", prog.Desc())
	}
	return &p, nil
}

// digestRecorder is an obs.Sink that snapshots the hierarchy's
// observable digest at the instant of every rollback — the moment an
// attacker in the oracle's threat model gets to measure.
type digestRecorder struct {
	hier    *mem.Hierarchy
	digests []uint64
}

func (r *digestRecorder) Attach(model string, occNames []string)                                {}
func (r *digestRecorder) CycleState(now uint64, mode string, executed, replayed int, occ []int) {}
func (r *digestRecorder) SpanBegin(now uint64, cat, name string, id uint64)                     {}
func (r *digestRecorder) SpanEnd(now uint64, cat string, id uint64)                             {}
func (r *digestRecorder) Span(start, end uint64, cat, name string)                              {}

func (r *digestRecorder) Event(now uint64, cat, name, detail string) {
	if cat == "checkpoint" && name == "rollback" {
		r.digests = append(r.digests, r.hier.ObservableDigest(now))
	}
}
