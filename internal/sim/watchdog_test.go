package sim

import (
	"errors"
	"testing"
	"time"

	"rocksim/internal/cpu"
)

// TestSimTimeout: a non-terminating program under a wall-clock Timeout
// returns ErrDeadline in bounded time instead of grinding through the
// full two-billion-cycle budget.
func TestSimTimeout(t *testing.T) {
	prog := mustAssemble(t, `
		.org 0x10000
	loop:
		j loop
	`)
	opts := DefaultOptions()
	opts.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := Run(KindSST, prog, opts)
	if !errors.Is(err, cpu.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
}

// TestSimLivelockWindow: with the no-activity window tightened below a
// single DRAM round trip (300 cycles unloaded), the first compulsory
// miss stalls the core long enough to trip the detector — demonstrating
// the watchdog catches a starved pipeline and attributes the failure.
func TestSimLivelockWindow(t *testing.T) {
	prog := mustAssemble(t, `
		.org 0x10000
		movi r5, 0x4000
		ld64 r6, (r5)
		halt
	`)
	opts := DefaultOptions()
	opts.LivelockWindow = 64
	_, err := Run(KindInOrder, prog, opts)
	if !errors.Is(err, cpu.ErrLivelock) {
		t.Fatalf("want ErrLivelock with a 64-cycle window, got %v", err)
	}
}

// TestSimDefaultWindowPermitsRealWorkloads: the default livelock window
// must not false-positive on an ordinary run (the pointer-chase case —
// millions of cycles between bulk commits — is covered by the workload
// equivalence tests, which run with the watchdog at defaults).
func TestSimDefaultWindowPermitsRealWorkloads(t *testing.T) {
	prog, err := genProgram(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds {
		if _, err := Run(k, prog, DefaultOptions()); err != nil {
			t.Errorf("%v: unexpected watchdog error: %v", k, err)
		}
	}
}
