package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"rocksim/internal/workload"
)

func TestReportJSONRoundTrip(t *testing.T) {
	w, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	for _, k := range []Kind{KindInOrder, KindOOOLarge, KindSST} {
		out, err := Run(k, w.Program, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep := NewReport(out)
		if rep.Kind != k.String() || rep.Retired != out.Retired || rep.IPC <= 0 {
			t.Errorf("%v: bad basics: %+v", k, rep)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var back Report
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("%v: unmarshal: %v", k, err)
		}
		if back.Cycles != rep.Cycles || back.Kind != rep.Kind {
			t.Errorf("%v: round trip mismatch", k)
		}
		switch k {
		case KindSST:
			if back.SST == nil || back.SST.Checkpoints == 0 {
				t.Errorf("sst section missing: %+v", back.SST)
			}
			if back.OOO != nil || back.InOrder != nil {
				t.Error("wrong sections present for sst")
			}
		case KindOOOLarge:
			if back.OOO == nil {
				t.Error("ooo section missing")
			}
		case KindInOrder:
			if back.InOrder == nil {
				t.Error("inorder section missing")
			}
		}
	}
}

func TestReportLoadLevelPercentagesSum(t *testing.T) {
	w, err := workload.Build("randarr", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(KindSST, w.Program, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(out)
	sum := rep.LoadL1Pct + rep.LoadL2Pct + rep.LoadMemPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("load level pcts sum to %f", sum)
	}
	if rep.Caches.DRAMReads == 0 {
		t.Error("randarr produced no DRAM reads")
	}
}
