package sim

import (
	"bytes"
	"testing"

	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/faults"
	"rocksim/internal/workload"
)

// This file extends the differential oracles across the predictor
// configuration plane: the share-mode collapse guarantee (a single
// strand cannot observe sharing), and pooled-vs-fresh byte-identity for
// TAGE and every share mode, clean and under fault plans — including
// runs whose RbBranch rollbacks exercise the predictor-history
// checkpoint restore.

var shareModes = []bpred.ShareMode{bpred.SharePartitioned, bpred.ShareShared, bpred.ShareHashed}

// bpredShapeOpts returns fuzz options with the predictor reconfigured.
func bpredShapeOpts(kind bpred.Kind, mode bpred.ShareMode) Options {
	o := fuzzFaultOpts()
	o.Pred.Kind = kind
	o.Pred.Share = mode
	return o
}

// TestShareModeSingleStrandCollapse pins the NewGroup contract at the
// whole-simulator level: a lone strand behaves byte-identically under
// partitioned, shared and hashed tables (strand 0's hash salt is zero),
// for both predictor kinds on every core model — outcome, architectural
// registers, metrics JSON and Chrome trace bytes.
func TestShareModeSingleStrandCollapse(t *testing.T) {
	w, err := workload.Build("gcc", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for _, kind := range []bpred.Kind{bpred.Gshare, bpred.TAGE} {
				ref, rm, rt := ffRunWith(t, k, w.Program, nil, false, bpredShapeOpts(kind, bpred.SharePartitioned))
				for _, mode := range shareModes[1:] {
					out, m, tr := ffRunWith(t, k, w.Program, nil, false, bpredShapeOpts(kind, mode))
					if out.Cycles != ref.Cycles || out.Retired != ref.Retired || out.Regs != ref.Regs {
						t.Errorf("kind=%v share=%v: outcome diverges from partitioned (%d/%d vs %d/%d cycles/retired)",
							kind, mode, out.Cycles, out.Retired, ref.Cycles, ref.Retired)
					}
					if !bytes.Equal(rm, m) {
						t.Errorf("kind=%v share=%v: metrics JSON diverges from partitioned: %s", kind, mode, firstDiff(rm, m))
					}
					if !bytes.Equal(rt, tr) {
						t.Errorf("kind=%v share=%v: Chrome trace diverges from partitioned: %s", kind, mode, firstDiff(rt, tr))
					}
				}
			}
		})
	}
}

// TestPooledBpredDifferential extends the pooled-vs-fresh oracle over
// the new predictor shapes: a reused TAGE instance under every share
// mode must match a fresh construction byte-for-byte, alternating
// faulted and clean runs (checkPooledSeedWith also re-asserts the CPI
// sum == cycles invariant on each run).
func TestPooledBpredDifferential(t *testing.T) {
	kinds := []Kind{KindSST, KindInOrder, KindOOOSmall}
	if testing.Short() {
		kinds = []Kind{KindSST}
	}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for _, mode := range shareModes {
				opts := bpredShapeOpts(bpred.TAGE, mode)
				in, err := NewInstance(k, opts)
				if err != nil {
					t.Fatal(err)
				}
				for seed := int64(1); seed <= 2; seed++ {
					prog, err := genFaultProgram(seed, 70)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					checkPooledSeedWith(t, in, prog, faults.Random(seed, faultHorizon), opts)
					checkPooledSeedWith(t, in, prog, nil, opts)
				}
			}
		})
	}
}

// TestPooledDeferredRollbackDifferential reuses one SST instance across
// back-to-back runs of a workload whose deferred branches mispredict and
// roll back (brfield), for both predictor kinds. Every RbBranch rollback
// restores the checkpointed predictor history; a restore bug — history
// not saved, restored to the wrong strand, or surviving a reset — would
// diverge the second pooled run from the fresh reference.
func TestPooledDeferredRollbackDifferential(t *testing.T) {
	w, err := workload.Build("brfield", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []bpred.Kind{bpred.Gshare, bpred.TAGE} {
		opts := bpredShapeOpts(kind, bpred.SharePartitioned)
		in, err := NewInstance(KindSST, opts)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 2; rep++ {
			checkPooledSeedWith(t, in, w.Program, nil, opts)
		}
		out, _, _ := pooledRunWith(t, in, w.Program, nil, opts)
		s := out.SSTStats()
		if s == nil || s.RollbacksBy[core.RbBranch] == 0 {
			t.Fatalf("kind=%v: workload produced no RbBranch rollbacks — the restore path went unexercised", kind)
		}
		if s.DeferredBranches == 0 {
			t.Fatalf("kind=%v: no deferred branches", kind)
		}
	}
}
