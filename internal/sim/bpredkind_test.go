package sim

import (
	"testing"

	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/workload"
)

// sstWithPredKind runs one SST cell with the given predictor kind and
// returns the SST stats block and the outcome.
func sstWithPredKind(t *testing.T, name string, kind bpred.Kind) (*core.Stats, Outcome) {
	t.Helper()
	w, err := workload.Build(name, workload.ScaleTest)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	opts := DefaultOptions()
	opts.Pred.Kind = kind
	out, err := Run(KindSST, w.Program, opts)
	if err != nil {
		t.Fatalf("run %s kind=%v: %v", name, kind, err)
	}
	cc, ok := out.Core.(*core.Core)
	if !ok {
		t.Fatalf("run %s: core is %T, want *core.Core", name, out.Core)
	}
	return cc.Stats(), out
}

// TestTageBeatsGshareOnDeferredBranches pins the B1 headline: on the
// loop-heavy workloads whose branch history exceeds a 14-bit gshare
// window but fits TAGE's longest geometric table, TAGE-lite must show a
// strictly lower deferred-branch mispredict rate — the paper's dominant
// speculation-failure mode — and strictly fewer RbBranch rollbacks.
func TestTageBeatsGshareOnDeferredBranches(t *testing.T) {
	for _, name := range []string{"brfield", "loopnest"} {
		gs, _ := sstWithPredKind(t, name, bpred.Gshare)
		tg, tout := sstWithPredKind(t, name, bpred.TAGE)
		if gs.DeferredBranches == 0 || tg.DeferredBranches == 0 {
			t.Fatalf("%s: expected deferred branches (gshare=%d tage=%d) — the workload no longer defers",
				name, gs.DeferredBranches, tg.DeferredBranches)
		}
		gr := float64(gs.DeferredBranchMispred) / float64(gs.DeferredBranches)
		tr := float64(tg.DeferredBranchMispred) / float64(tg.DeferredBranches)
		t.Logf("%s: gshare %d/%d (%.2f%%) rbBranch=%d | tage %d/%d (%.2f%%) rbBranch=%d ipc=%.3f",
			name, gs.DeferredBranchMispred, gs.DeferredBranches, 100*gr, gs.RollbacksBy[core.RbBranch],
			tg.DeferredBranchMispred, tg.DeferredBranches, 100*tr, tg.RollbacksBy[core.RbBranch], tout.IPC())
		if tr >= gr {
			t.Errorf("%s: tage deferred mispredict rate %.4f not strictly below gshare %.4f", name, tr, gr)
		}
		if tg.RollbacksBy[core.RbBranch] >= gs.RollbacksBy[core.RbBranch] {
			t.Errorf("%s: tage RbBranch rollbacks %d not strictly below gshare %d",
				name, tg.RollbacksBy[core.RbBranch], gs.RollbacksBy[core.RbBranch])
		}
	}
}
