package sim

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// Native coverage-guided fuzzing of the differential oracle. The fuzz
// input is not a serialized program (arbitrary bytes rarely assemble);
// it is the *choice stream* driving progGen: every random decision the
// generator makes consumes input bytes, so the mutator explores program
// shapes — loop nesting, tx placement, address mixes — through byte
// edits, while every input still yields a valid, terminating program.
// When the input runs dry the source falls over to a deterministic
// xorshift continuation seeded from the input, keeping short inputs
// productive (the 64KB data-image fill alone would exhaust any corpus
// entry).

// byteSource is a rand.Source64 that replays fuzz input bytes first.
type byteSource struct {
	data []byte
	i    int
	s    uint64
}

func newByteSource(data []byte) *byteSource {
	s := uint64(0x9E3779B97F4A7C15)
	for _, b := range data {
		s = (s ^ uint64(b)) * 0x100000001B3
	}
	return &byteSource{data: data, s: s | 1}
}

func (b *byteSource) Seed(int64) {}

func (b *byteSource) Uint64() uint64 {
	if b.i < len(b.data) {
		var v uint64
		for k := 0; k < 8; k++ {
			v <<= 8
			if b.i < len(b.data) {
				v |= uint64(b.data[b.i])
				b.i++
			}
		}
		return v
	}
	// xorshift64* continuation: deterministic per input.
	b.s ^= b.s << 13
	b.s ^= b.s >> 7
	b.s ^= b.s << 17
	return b.s * 0x2545F4914F6CDD1D
}

func (b *byteSource) Int63() int64 { return int64(b.Uint64() >> 1) }

// fuzzProgram generates the program a fuzz input encodes.
func fuzzProgram(data []byte) (*asm.Program, error) {
	nstmt := 8 + len(data)%120
	g := &progGen{r: rand.New(newByteSource(data)), b: asm.NewBuilder(asm.DefaultTextBase)}
	return genWith(g, nstmt)
}

// diffCheck runs prog on the golden emulator and every core model and
// requires identical architectural state (retire count, registers,
// memory) everywhere.
func diffCheck(t *testing.T, name string, prog *asm.Program) {
	t.Helper()
	emu, goldMem, err := RunEmulator(prog, 50_000_000)
	if err != nil {
		t.Fatalf("%s: emulator: %v", name, err)
	}
	opts := DefaultOptions()
	opts.MaxCycles = 500_000_000
	for _, k := range Kinds {
		out, err := Run(k, prog, opts)
		if err != nil {
			t.Fatalf("%s: %v: %v", name, k, err)
		}
		if out.Retired != emu.Executed {
			t.Errorf("%s: %v retired %d, golden %d", name, k, out.Retired, emu.Executed)
		}
		bad := false
		for r := 1; r < isa.NumRegs; r++ {
			if out.Regs[r] != emu.Reg[r] {
				t.Errorf("%s: %v r%d=%#x golden %#x", name, k, r, uint64(out.Regs[r]), uint64(emu.Reg[r]))
				bad = true
			}
		}
		if !out.Mem.Equal(goldMem) {
			t.Errorf("%s: %v memory mismatch at %#x...", name, k, out.Mem.Diff(goldMem, 4))
			bad = true
		}
		if bad {
			t.FailNow()
		}
	}
}

// FuzzDifferential is the emulator-vs-all-cores property as a native
// fuzz target: `go test ./internal/sim -fuzz FuzzDifferential` explores
// program space coverage-guided (make fuzz-short runs a bounded
// budget); without -fuzz the seed corpus under testdata/corpus runs as
// ordinary regression tests.
func FuzzDifferential(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "corpus", "*"))
	if err != nil || len(seeds) == 0 {
		f.Fatalf("no seed corpus under testdata/corpus: %v", err)
	}
	for _, p := range seeds {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096] // bound generation work per exec
		}
		prog, err := fuzzProgram(data)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		diffCheck(t, "input", prog)
	})
}
