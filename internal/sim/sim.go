// Package sim ties a program image, a core model and a memory hierarchy
// into a runnable simulation. It is the harness used by the command-line
// tools, the examples, the experiments and the cross-model equivalence
// tests.
package sim

import (
	"context"
	"fmt"
	"time"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
	"rocksim/internal/ooo"
)

// Kind selects a core model.
type Kind int

// Core model kinds.
const (
	KindInOrder Kind = iota
	KindOOOSmall
	KindOOOLarge
	KindSST
	KindSSTBig // "certain SST implementations": deeper DQ, more checkpoints
	KindSSTEA  // execute-ahead ablation (no second strand)
	KindScout  // hardware-scout ablation (no deferred queue)
)

// Kinds lists every core model, in presentation order.
var Kinds = []Kind{KindInOrder, KindOOOSmall, KindOOOLarge, KindScout, KindSSTEA, KindSST, KindSSTBig}

func (k Kind) String() string {
	switch k {
	case KindInOrder:
		return "inorder"
	case KindOOOSmall:
		return "ooo-small"
	case KindOOOLarge:
		return "ooo-large"
	case KindSST:
		return "sst"
	case KindSSTBig:
		return "sst-big"
	case KindSSTEA:
		return "sst-ea"
	case KindScout:
		return "scout"
	}
	return "?"
}

// KindByName parses a core-kind name.
func KindByName(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown core kind %q", s)
}

// Options configures a simulation run.
type Options struct {
	Hier    mem.HierConfig
	Pred    bpred.Config
	InOrder inorder.Config
	OOO     ooo.Config // used for KindOOOSmall unless overridden
	OOOLg   ooo.Config
	SST     core.Config
	// MaxCycles bounds the run (0 = DefaultMaxCycles).
	MaxCycles uint64
	// Timeout bounds the run in wall-clock time (0 = none): RunContext
	// arms a context deadline and returns a watchdog error when it
	// expires. Wall clock does not affect the simulated outcome — a
	// timed-out run errors, a finished one is bit-identical regardless.
	Timeout time.Duration
	// LivelockWindow is the no-forward-progress watchdog: a run in which
	// the core executes nothing — no retire, load, store or branch —
	// for this many consecutive cycles errors instead of spinning on to
	// MaxCycles (0 = DefaultLivelockWindow).
	LivelockWindow uint64
	// Faults, when non-nil, is a deterministic fault-injection schedule
	// (see internal/faults): the run replays the plan's perturbations —
	// denied checkpoints, spurious rollbacks, capacity clamps, memory
	// jitter, mispredict storms — exactly, so faulted runs are as
	// reproducible and cacheable as clean ones.
	Faults *faults.Plan
	// Probe, when non-nil, is installed on SST-family cores for
	// pipeline visualization (see core.PipeView).
	Probe core.Probe
	// Sink, when non-nil, observes the run's event stream: it is
	// installed on the core model (every kind) and the memory hierarchy.
	// Use an obs.Collector to feed a Chrome trace and/or registry
	// timelines; remember to Flush it after the run.
	Sink obs.Sink
	// Metrics, when non-nil, receives every model's counters at the end
	// of the run (see PublishObs).
	Metrics *obs.Registry
	// NoFastForward steps the core cycle by cycle even when it supports
	// event-driven stall skipping (see cpu.FastForwarder). Skipping is
	// bit-identical to naive stepping — the differential fuzz in this
	// package proves it — so this knob exists for that proof and for
	// debugging, not for accuracy.
	NoFastForward bool
}

// Fingerprint returns a canonical string covering every simulation-
// affecting field of the options. The observability hooks (Probe, Sink,
// Metrics) are excluded: they observe a run without changing its
// timing. Two Options with equal fingerprints produce identical
// outcomes on the same program, so harnesses use the fingerprint as a
// run-cache key.
// The encoding is explicit, field by field (each config contributes its
// own Fingerprint method): no pointer addresses, no reflection-derived
// struct dumps, so the string is stable across process runs and across
// refactors that merely reorder fields. The observability hooks (Probe,
// Sink, Metrics) never appear: they observe a run without changing its
// timing. NoFastForward is likewise excluded — fast-forwarding changes
// wall-clock speed, never the outcome, so two runs differing only in it
// share a cache entry.
func (o Options) Fingerprint() string {
	return fmt.Sprintf("%s|run{cycles=%d timeout=%d livelock=%d}|faults{%s}",
		o.ShapeFingerprint(), o.MaxCycles, int64(o.Timeout), o.LivelockWindow,
		o.Faults.String())
}

// DefaultMaxCycles bounds runaway simulations.
const DefaultMaxCycles = 2_000_000_000

// DefaultLivelockWindow is the default no-activity watchdog window.
// Progress is counted as any executed work — retires, loads, stores,
// branches (see cpu.RunConfig) — so even a pointer chase that defers
// its entire run before one bulk commit registers activity every memory
// round trip. The longest legitimate silent stretch is a single memory
// round trip (hundreds of cycles); two million is orders of magnitude
// above it and still fails a wedged run a thousand times sooner than
// DefaultMaxCycles would.
const DefaultLivelockWindow = 2_000_000

// CycleLimit returns the effective cycle bound of the options.
func (o Options) CycleLimit() uint64 {
	if o.MaxCycles > 0 {
		return o.MaxCycles
	}
	return DefaultMaxCycles
}

// livelockWindow returns the effective no-retire watchdog window.
func (o Options) livelockWindow() uint64 {
	if o.LivelockWindow > 0 {
		return o.LivelockWindow
	}
	return DefaultLivelockWindow
}

// DefaultOptions returns the standard machine configurations used
// throughout the reproduction (paper Table 1).
func DefaultOptions() Options {
	return Options{
		Hier:    mem.DefaultHierConfig(),
		Pred:    bpred.DefaultConfig(),
		InOrder: inorder.DefaultConfig(),
		OOO:     ooo.SmallConfig(),
		OOOLg:   ooo.LargeConfig(),
		SST:     core.DefaultConfig(),
	}
}

// Outcome summarizes one finished run.
type Outcome struct {
	Kind    Kind
	Cycles  uint64
	Retired uint64
	Core    cpu.Core // the core model, for detailed stats
	Mach    *cpu.Machine
	Mem     *mem.Sparse
	Regs    [isa.NumRegs]int64
	// Obs is the run's metrics registry (Options.Metrics), when one was
	// attached; reports embed its snapshot.
	Obs *obs.Registry
	// Cell, when non-nil, marks a reconstructed remote-cell view: the
	// outcome was computed on another rocksimd shard and only its
	// statistics snapshot crossed the wire (see CellStats). Core, Mach
	// and Mem are nil on such a view; the table-assembly accessors
	// (BaseStats, SSTStats, L1DStats, L2Stats, DTLBStats) answer from
	// the snapshot instead.
	Cell *CellStats
}

// IPC returns retired instructions per cycle.
func (o Outcome) IPC() float64 {
	if o.Cycles == 0 {
		return 0
	}
	return float64(o.Retired) / float64(o.Cycles)
}

// NewCore builds a core of the given kind over machine m, installing
// the options' observability hooks and fault injector. An unknown kind
// returns an error (a caller-supplied kind must not crash a harness).
func NewCore(k Kind, m *cpu.Machine, opts Options, entry uint64) (cpu.Core, error) {
	c, err := newCore(k, m, opts, entry)
	if err != nil {
		return nil, err
	}
	switch cc := c.(type) {
	case *core.Core:
		var probe obs.Sink
		if opts.Probe != nil {
			probe = core.ProbeSink(opts.Probe)
		}
		if s := obs.Tee(probe, opts.Sink); s != nil {
			cc.SetSink(s)
		}
		if opts.Faults != nil {
			cc.SetFaults(opts.Faults.New(opts.Sink))
		}
	case *inorder.Core:
		cc.SetSink(opts.Sink)
	case *ooo.Core:
		cc.SetSink(opts.Sink)
	}
	return c, nil
}

func newCore(k Kind, m *cpu.Machine, opts Options, entry uint64) (cpu.Core, error) {
	switch k {
	case KindInOrder:
		return inorder.New(m, opts.InOrder, entry), nil
	case KindOOOSmall:
		return ooo.New(m, opts.OOO, entry), nil
	case KindOOOLarge:
		return ooo.New(m, opts.OOOLg, entry), nil
	case KindSST:
		return core.New(m, opts.SST, entry), nil
	case KindSSTBig:
		cfg := opts.SST
		cfg.DQSize = 2 * opts.SST.DQSize
		cfg.Checkpoints = 2 * opts.SST.Checkpoints
		cfg.SSBSize = 2 * opts.SST.SSBSize
		return core.New(m, cfg, entry), nil
	case KindSSTEA:
		cfg := opts.SST
		cfg.SecondStrand = false
		return core.New(m, cfg, entry), nil
	case KindScout:
		cfg := core.ScoutConfig()
		cfg.Width = opts.SST.Width
		cfg.TakenPenalty = opts.SST.TakenPenalty
		cfg.MispredictPenalty = opts.SST.MispredictPenalty
		cfg.RollbackPenalty = opts.SST.RollbackPenalty
		cfg.SecureDelayOnMiss = opts.SST.SecureDelayOnMiss
		cfg.SecureNoNAForward = opts.SST.SecureNoNAForward
		cfg.SecureEagerSSBFlush = opts.SST.SecureEagerSSBFlush
		return core.New(m, cfg, entry), nil
	}
	return nil, fmt.Errorf("sim: bad core kind %d", k)
}

// Run loads the program into a fresh machine, executes it to completion
// on the selected core model, and returns the outcome.
func Run(k Kind, prog *asm.Program, opts Options) (Outcome, error) {
	return RunContext(context.Background(), k, prog, opts)
}

// RunContext is Run under a caller context: the run aborts with a
// watchdog error when ctx is cancelled, when Options.Timeout expires,
// when the cycle budget runs out, or when the livelock detector sees no
// retirement for a whole window. Fault plans (Options.Faults) are
// installed on both the core and the memory hierarchy.
func RunContext(ctx context.Context, k Kind, prog *asm.Program, opts Options) (Outcome, error) {
	// A fresh run is a pooled run with pool size zero: build an Instance
	// and drive the exact execution path a reused one takes (runLive),
	// so the fresh and pooled flavors cannot drift. The returned outcome
	// keeps the live structures — callers of Run/RunContext own them.
	inst, err := NewInstance(k, opts)
	if err != nil {
		return Outcome{}, err
	}
	out, err := inst.runLive(ctx, prog, opts)
	if err != nil {
		return out, err
	}
	out.Obs = opts.Metrics
	out.PublishObs(opts.Metrics)
	return out, nil
}

// PublishObs publishes the finished run's counters — the core model's
// and the memory hierarchy's — into r. No-op when r is nil. sim.Run
// calls this automatically when Options.Metrics is set.
func (o Outcome) PublishObs(r *obs.Registry) {
	if r == nil || o.Core == nil {
		return
	}
	switch c := o.Core.(type) {
	case *core.Core:
		c.PublishObs(r)
	case *inorder.Core:
		c.Stats().PublishObs(r)
	case *ooo.Core:
		c.Stats().PublishObs(r)
	default:
		o.Core.Base().PublishObs(r)
	}
	if o.Mach != nil {
		o.Mach.Hier.PublishObs(r)
		if o.Mach.Pred != nil {
			o.Mach.Pred.Stats.PublishObs(r)
		}
	}
}

func coreRegs(c cpu.Core) [isa.NumRegs]int64 {
	switch cc := c.(type) {
	case *inorder.Core:
		return cc.Regs()
	case *ooo.Core:
		return cc.Regs()
	case *core.Core:
		return cc.Regs()
	}
	return [isa.NumRegs]int64{}
}

// RunEmulator executes the program on the golden functional model and
// returns the final emulator state and memory image.
func RunEmulator(prog *asm.Program, maxInsts uint64) (*isa.Emulator, *mem.Sparse, error) {
	m := mem.NewSparse()
	prog.Load(m)
	e := isa.NewEmulator(prog.Entry, m)
	if err := e.Run(maxInsts); err != nil {
		return e, m, err
	}
	return e, m, nil
}
