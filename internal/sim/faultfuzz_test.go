package sim

import (
	"testing"

	"rocksim/internal/faults"
)

// fuzzFaultOpts returns the options used by the fault-fuzz oracle runs.
func fuzzFaultOpts() Options {
	opts := DefaultOptions()
	opts.MaxCycles = 500_000_000
	return opts
}

// faultHorizon spans the cycle range of a typical generated program, so
// random plans land their events inside the portion that executes.
const faultHorizon = 20_000

// checkFaultSeed verifies speculation invisibility for one (program,
// plan) pair on one core kind, shrinking failures to a minimal
// reproducer before reporting.
func checkFaultSeed(t *testing.T, k Kind, seed int64, nstmt int, plan *faults.Plan) {
	t.Helper()
	prog, err := genFaultProgram(seed, nstmt)
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	if err := CheckFaultInvisibility(k, prog, plan, fuzzFaultOpts()); err != nil {
		minPlan, minNstmt := shrinkFaultFailure(k, seed, nstmt, plan)
		t.Errorf("seed %d: %v\n  minimal repro: kind=%v seed=%d nstmt=%d plan=%q",
			seed, err, k, seed, minNstmt, minPlan)
	}
}

// shrinkFaultFailure reduces a failing (program, plan) pair: first drop
// plan events greedily, then halve the program, keeping every step that
// still fails the oracle. The result is the smallest reproducer this
// greedy pass finds — enough to make a divergence debuggable by hand.
func shrinkFaultFailure(k Kind, seed int64, nstmt int, plan *faults.Plan) (*faults.Plan, int) {
	fails := func(p *faults.Plan, n int) bool {
		prog, err := genFaultProgram(seed, n)
		if err != nil {
			return false
		}
		return CheckFaultInvisibility(k, prog, p, fuzzFaultOpts()) != nil
	}
	events := append([]faults.Event(nil), plan.Events...)
	for i := 0; i < len(events); {
		trial := append(append([]faults.Event(nil), events[:i]...), events[i+1:]...)
		if fails(&faults.Plan{Seed: plan.Seed, Events: trial}, nstmt) {
			events = trial
		} else {
			i++
		}
	}
	min := &faults.Plan{Seed: plan.Seed, Events: events}
	for nstmt > 10 && fails(min, nstmt/2) {
		nstmt /= 2
	}
	return min, nstmt
}

// TestFaultFuzzEquivalence is the fault-fuzz oracle: hundreds of seeded
// (random program, random benign fault plan) pairs per core kind, each
// required to commit exactly the golden model's architectural state.
// Fault plans vary with the seed; programs come from the plain
// equivalence fuzz's generator minus transactions (a capacity fault
// aborting a transaction is architecturally visible by design, so tx
// blocks are exercised only by the unfaulted fuzz).
func TestFaultFuzzEquivalence(t *testing.T) {
	n := int64(200)
	if testing.Short() {
		n = 25
	}
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= n; seed++ {
				checkFaultSeed(t, k, seed, 80, faults.Random(seed, faultHorizon))
			}
		})
	}
}

// TestFaultFuzzSmoke is the bounded fixed-seed subset wired into the
// Makefile's fault-fuzz target: a fast always-on smoke of the oracle.
func TestFaultFuzzSmoke(t *testing.T) {
	for _, k := range Kinds {
		for seed := int64(1); seed <= 8; seed++ {
			checkFaultSeed(t, k, seed, 60, faults.Random(seed, faultHorizon))
		}
	}
}

// TestFaultedRunDeterministic: a faulted run is exactly reproducible —
// same program, same plan, same cycle count and architectural state.
func TestFaultedRunDeterministic(t *testing.T) {
	prog, err := genFaultProgram(7, 120)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Random(7, faultHorizon)
	a, err := Run(KindSST, prog, withPlan(fuzzFaultOpts(), plan))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(KindSST, prog, withPlan(fuzzFaultOpts(), plan))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Regs != b.Regs {
		t.Errorf("faulted run not reproducible: %d/%d cycles, %d/%d retired",
			a.Cycles, b.Cycles, a.Retired, b.Retired)
	}
}

func withPlan(opts Options, plan *faults.Plan) Options {
	opts.Faults = plan
	return opts
}

// TestFaultOracleTeeth proves the oracle can actually fail: skip-restore
// deliberately breaks the rollback contract (registers keep their
// speculative values), and under a mispredict storm that forces frequent
// rollbacks the corruption must surface as a detected divergence on at
// least one seed. If every seed passes, the oracle is blind.
func TestFaultOracleTeeth(t *testing.T) {
	detected := 0
	for seed := int64(1); seed <= 20 && detected == 0; seed++ {
		prog, err := genFaultProgram(seed, 60)
		if err != nil {
			t.Fatal(err)
		}
		plan := &faults.Plan{Seed: seed, Events: []faults.Event{
			{Kind: faults.MispredictStorm, From: 0, To: 200_000, Arg: 1}, // flip every prediction early on
			{Kind: faults.SkipRestore, From: 0},                          // rollbacks keep speculative regs
		}}
		if err := CheckFaultInvisibility(KindSST, prog, plan, fuzzFaultOpts()); err != nil {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("skip-restore corruption never detected: the invisibility oracle has no teeth")
	}
	t.Logf("oracle detected skip-restore corruption")
}
