package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
	"rocksim/internal/obs"
	"rocksim/internal/ooo"
)

// Report is the machine-readable summary of one run, for downstream
// tooling (plotting, regression tracking, spreadsheets).
type Report struct {
	Kind    string  `json:"kind"`
	Cycles  uint64  `json:"cycles"`
	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`
	MLP     float64 `json:"mlp"`

	Loads         uint64  `json:"loads"`
	Stores        uint64  `json:"stores"`
	Branches      uint64  `json:"branches"`
	BranchMispred uint64  `json:"branch_mispredicts"`
	LoadL1Pct     float64 `json:"load_l1_pct"`
	LoadL2Pct     float64 `json:"load_l2_pct"`
	LoadMemPct    float64 `json:"load_mem_pct"`

	Caches CacheReport `json:"caches"`

	// CPIStack is the cycle-accounting breakdown: every cycle attributed
	// to exactly one bucket (zero buckets omitted; the values sum to
	// Cycles, minus the smt_idle sibling view). CPITopLoss names the
	// largest non-retire bucket — the first place to look when a run is
	// slow.
	CPIStack   map[string]uint64 `json:"cpi_stack,omitempty"`
	CPITopLoss string            `json:"cpi_top_loss,omitempty"`

	SST     *SSTReport     `json:"sst,omitempty"`
	OOO     *OOOReport     `json:"ooo,omitempty"`
	InOrder *InOrderReport `json:"inorder,omitempty"`

	// Metrics is the flat observability snapshot, present when the run
	// carried a registry (Options.Metrics).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// CacheReport summarizes hierarchy behaviour.
type CacheReport struct {
	L1DMissPct float64 `json:"l1d_miss_pct"`
	L1IMissPct float64 `json:"l1i_miss_pct"`
	L2MissPct  float64 `json:"l2_miss_pct"`
	DRAMReads  uint64  `json:"dram_reads"`
	DRAMWrites uint64  `json:"dram_writes"`
	Prefetches uint64  `json:"prefetches"`
	// Demand data-miss latency percentiles, in cycles.
	LoadMissP50 int `json:"load_miss_p50,omitempty"`
	LoadMissP95 int `json:"load_miss_p95,omitempty"`
	LoadMissP99 int `json:"load_miss_p99,omitempty"`
}

// SSTReport carries the SST-specific counters.
type SSTReport struct {
	Checkpoints      uint64             `json:"checkpoints"`
	EpochCommits     uint64             `json:"epoch_commits"`
	Rollbacks        uint64             `json:"rollbacks"`
	RollbacksByCause map[string]uint64  `json:"rollbacks_by_cause"`
	Deferrals        uint64             `json:"deferrals"`
	Replays          uint64             `json:"replays"`
	DeferredBranches uint64             `json:"deferred_branches"`
	DiscardedInsts   uint64             `json:"discarded_insts"`
	ScoutEntries     uint64             `json:"scout_entries"`
	ModeCyclesPct    map[string]float64 `json:"mode_cycles_pct"`
	DQOccMean        float64            `json:"dq_occupancy_mean"`
	SSBOccMean       float64            `json:"ssb_occupancy_mean"`
	// Checkpoint lifetime (cycles from take to commit or abort).
	CkptLifeMean float64 `json:"ckpt_life_mean,omitempty"`
	CkptLifeP50  int     `json:"ckpt_life_p50,omitempty"`
	CkptLifeP95  int     `json:"ckpt_life_p95,omitempty"`
	CkptLifeP99  int     `json:"ckpt_life_p99,omitempty"`
	TxBegins     uint64  `json:"tx_begins,omitempty"`
	TxCommits    uint64  `json:"tx_commits,omitempty"`
	TxAborts     uint64  `json:"tx_aborts,omitempty"`
}

// OOOReport carries the out-of-order counters.
type OOOReport struct {
	Squashes           uint64 `json:"squashes"`
	MemOrderViolations uint64 `json:"memorder_violations"`
	WrongPathInsts     uint64 `json:"wrong_path_insts"`
	ROBFullCycles      uint64 `json:"rob_full_cycles"`
}

// InOrderReport carries the in-order stall breakdown.
type InOrderReport struct {
	StallFetch    uint64 `json:"stall_fetch"`
	StallRedirect uint64 `json:"stall_redirect"`
	StallData     uint64 `json:"stall_data"`
	StallLoads    uint64 `json:"stall_load_limit"`
	StallStores   uint64 `json:"stall_store_buffer"`
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// TopLoss names the largest non-retire cycle-accounting bucket as
// "bucket:percent%" ("-" when the run lost no cycles at all). Ties break
// toward the lower-numbered bucket for determinism.
func TopLoss(b *cpu.BaseStats) string {
	var top cpu.Bucket
	var topv uint64
	for bk := cpu.Bucket(0); bk < cpu.NumBuckets; bk++ {
		if bk == cpu.BktRetire || bk == cpu.BktSMTIdle {
			continue
		}
		if b.CPI[bk] > topv {
			top, topv = bk, b.CPI[bk]
		}
	}
	if topv == 0 {
		return "-"
	}
	return fmt.Sprintf("%s:%.1f%%", top, pct(topv, b.Cycles))
}

// NewReport builds the machine-readable summary of a finished run.
func NewReport(out Outcome) Report {
	b := out.Core.Base()
	h := out.Mach.Hier
	r := Report{
		Kind:          out.Kind.String(),
		Cycles:        out.Cycles,
		Retired:       out.Retired,
		IPC:           out.IPC(),
		MLP:           b.MLP(),
		Loads:         b.Loads,
		Stores:        b.Stores,
		Branches:      b.Branches,
		BranchMispred: b.BranchMispred,
		LoadL1Pct:     pct(b.LoadL1Hits, b.Loads),
		LoadL2Pct:     pct(b.LoadL2Hits, b.Loads),
		LoadMemPct:    pct(b.LoadMemHits, b.Loads),
		Caches: CacheReport{
			L1DMissPct:  100 * h.L1D(out.Mach.CoreID).Stats.MissRate(),
			L1IMissPct:  100 * h.L1I(out.Mach.CoreID).Stats.MissRate(),
			L2MissPct:   100 * h.L2().Stats.MissRate(),
			DRAMReads:   h.DRAM().Stats.Reads,
			DRAMWrites:  h.DRAM().Stats.Writes,
			Prefetches:  h.Stats.Prefetches,
			LoadMissP50: h.LoadMissLatency().Quantile(0.50),
			LoadMissP95: h.LoadMissLatency().Quantile(0.95),
			LoadMissP99: h.LoadMissLatency().Quantile(0.99),
		},
	}
	r.CPIStack = map[string]uint64{}
	for bk := cpu.Bucket(0); bk < cpu.NumBuckets; bk++ {
		if b.CPI[bk] > 0 {
			r.CPIStack[bk.String()] = b.CPI[bk]
		}
	}
	r.CPITopLoss = TopLoss(b)
	if out.Obs != nil {
		snap := out.Obs.Snapshot()
		r.Metrics = &snap
	}
	switch c := out.Core.(type) {
	case *core.Core:
		s := c.Stats()
		byCause := map[string]uint64{}
		for cause := core.RollbackCause(0); cause < core.NumRollbackCauses; cause++ {
			if s.RollbacksBy[cause] > 0 {
				byCause[cause.String()] = s.RollbacksBy[cause]
			}
		}
		modes := map[string]float64{}
		for k := core.CycleKind(0); k < core.NumCycleKinds; k++ {
			if s.ModeCycles[k] > 0 {
				modes[k.String()] = pct(s.ModeCycles[k], s.Cycles)
			}
		}
		r.SST = &SSTReport{
			Checkpoints:      s.CheckpointsTaken,
			EpochCommits:     s.EpochCommits,
			Rollbacks:        s.Rollbacks,
			RollbacksByCause: byCause,
			Deferrals:        s.Deferrals,
			Replays:          s.Replays,
			DeferredBranches: s.DeferredBranches,
			DiscardedInsts:   s.DiscardedInsts,
			ScoutEntries:     s.ScoutEntries,
			ModeCyclesPct:    modes,
			DQOccMean:        s.DQOcc.Mean(),
			SSBOccMean:       s.SSBOcc.Mean(),
			CkptLifeMean:     s.CkptLife.Mean(),
			CkptLifeP50:      s.CkptLife.Quantile(0.50),
			CkptLifeP95:      s.CkptLife.Quantile(0.95),
			CkptLifeP99:      s.CkptLife.Quantile(0.99),
			TxBegins:         s.Tx.Begins,
			TxCommits:        s.Tx.Commits,
			TxAborts:         s.Tx.Aborts,
		}
	case *ooo.Core:
		s := c.Stats()
		r.OOO = &OOOReport{
			Squashes:           s.Squashes,
			MemOrderViolations: s.MemOrderViolations,
			WrongPathInsts:     s.WrongPathInsts,
			ROBFullCycles:      s.ROBFullCycles,
		}
	case *inorder.Core:
		s := c.Stats()
		r.InOrder = &InOrderReport{
			StallFetch:    s.StallCycles[inorder.StallFetch],
			StallRedirect: s.StallCycles[inorder.StallRedirect],
			StallData:     s.StallCycles[inorder.StallData],
			StallLoads:    s.StallCycles[inorder.StallLoadLimit],
			StallStores:   s.StallCycles[inorder.StallStoreBuffer],
		}
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
