package isa

import "math/bits"

// ALUResult evaluates a ClassALU instruction given its operand values.
// For reg-imm forms b is ignored and the immediate is used; callers pass
// the register operand values they captured.
//
// Division semantics follow RISC-V: divide-by-zero yields all-ones (-1)
// for div/divu and the dividend for rem/remu; INT64_MIN / -1 overflows to
// INT64_MIN with remainder 0. No traps.
func ALUResult(in Inst, a, b int64) int64 {
	imm := int64(in.Imm)
	switch in.Op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpSll:
		return a << (uint64(b) & 63)
	case OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63))
	case OpSra:
		return a >> (uint64(b) & 63)
	case OpSlt:
		if a < b {
			return 1
		}
		return 0
	case OpSltu:
		if uint64(a) < uint64(b) {
			return 1
		}
		return 0
	case OpMul:
		return a * b
	case OpMulh:
		hi, _ := bits.Mul64(uint64(a), uint64(b))
		// Adjust unsigned high product to signed high product.
		if a < 0 {
			hi -= uint64(b)
		}
		if b < 0 {
			hi -= uint64(a)
		}
		return int64(hi)
	case OpDiv:
		return divSigned(a, b)
	case OpDivu:
		if b == 0 {
			return -1
		}
		return int64(uint64(a) / uint64(b))
	case OpRem:
		return remSigned(a, b)
	case OpRemu:
		if b == 0 {
			return a
		}
		return int64(uint64(a) % uint64(b))
	case OpAddi:
		return a + imm
	case OpAndi:
		return a & imm
	case OpOri:
		return a | imm
	case OpXori:
		return a ^ imm
	case OpSlli:
		return a << (uint64(imm) & 63)
	case OpSrli:
		return int64(uint64(a) >> (uint64(imm) & 63))
	case OpSrai:
		return a >> (uint64(imm) & 63)
	case OpSlti:
		if a < imm {
			return 1
		}
		return 0
	case OpSltui:
		if uint64(a) < uint64(imm) {
			return 1
		}
		return 0
	case OpMovi:
		return imm
	case OpLui:
		return imm << 32
	}
	return 0
}

func divSigned(a, b int64) int64 {
	if b == 0 {
		return -1
	}
	if a == -1<<63 && b == -1 {
		return a
	}
	return a / b
}

func remSigned(a, b int64) int64 {
	if b == 0 {
		return a
	}
	if a == -1<<63 && b == -1 {
		return 0
	}
	return a % b
}

// BranchTaken evaluates a conditional branch given its operand values.
func BranchTaken(op Op, a, b int64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return a < b
	case OpBge:
		return a >= b
	case OpBltu:
		return uint64(a) < uint64(b)
	case OpBgeu:
		return uint64(a) >= uint64(b)
	}
	return false
}

// ExtendLoad sign- or zero-extends a raw little-endian load value of the
// given opcode's width.
func ExtendLoad(op Op, raw uint64) int64 {
	switch op {
	case OpLd8:
		return int64(int8(raw))
	case OpLd16:
		return int64(int16(raw))
	case OpLd32:
		return int64(int32(raw))
	case OpLd64, OpCas:
		return int64(raw)
	case OpLdu8:
		return int64(raw & 0xff)
	case OpLdu16:
		return int64(raw & 0xffff)
	case OpLdu32:
		return int64(raw & 0xffffffff)
	}
	return int64(raw)
}
