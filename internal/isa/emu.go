package isa

import (
	"errors"
	"fmt"
)

// Memory is the functional byte-addressable memory interface the
// emulator (and the core models) execute against. Reads of unwritten
// locations return zero. Values are little-endian.
type Memory interface {
	// Read returns the unsigned value of size bytes at addr.
	Read(addr uint64, size int) uint64
	// Write stores the low size bytes of val at addr.
	Write(addr uint64, size int, val uint64)
}

// ErrHalted is returned by Emulator.Step once the program executes halt.
var ErrHalted = errors.New("isa: halted")

// ErrMaxInsts is returned by Emulator.Run when the instruction budget is
// exhausted before the program halts.
var ErrMaxInsts = errors.New("isa: instruction budget exhausted")

// Emulator is the pure functional RK64 model: it defines architectural
// truth for every core implementation in this repository. It has no
// notion of time; each Step retires exactly one instruction.
type Emulator struct {
	Reg [NumRegs]int64
	PC  uint64
	Mem Memory

	// Executed counts retired instructions (including nops).
	Executed uint64
	// Halted is set once halt retires.
	Halted bool

	// Hook, if non-nil, is invoked after each retired instruction with
	// the instruction and the PC it executed at. Used by the tracer.
	Hook func(pc uint64, in Inst)

	fetchBuf [InstSize]byte
}

// NewEmulator returns an emulator with the given entry point and memory.
func NewEmulator(entry uint64, m Memory) *Emulator {
	return &Emulator{PC: entry, Mem: m}
}

// fetch decodes the instruction at the current PC.
func (e *Emulator) fetch() (Inst, error) {
	w := e.Mem.Read(e.PC, InstSize)
	in, err := DecodeWord(w)
	if err != nil {
		return in, fmt.Errorf("pc=%#x: %w", e.PC, err)
	}
	return in, nil
}

// Step executes one instruction. It returns the instruction executed.
// After halt it returns ErrHalted.
func (e *Emulator) Step() (Inst, error) {
	if e.Halted {
		return Inst{}, ErrHalted
	}
	in, err := e.fetch()
	if err != nil {
		return in, err
	}
	pc := e.PC
	next := pc + InstSize

	rd := func(i uint8) int64 {
		if i == RegZero {
			return 0
		}
		return e.Reg[i]
	}
	wr := func(i uint8, v int64) {
		if i != RegZero {
			e.Reg[i] = v
		}
	}

	switch in.Op.Class() {
	case ClassNop, ClassBarrier:
	case ClassHalt:
		e.Halted = true
	case ClassALU:
		wr(in.Rd, ALUResult(in, rd(in.Rs1), rd(in.Rs2)))
	case ClassLoad:
		addr := uint64(rd(in.Rs1) + int64(in.Imm))
		raw := e.Mem.Read(addr, in.Op.MemWidth())
		wr(in.Rd, ExtendLoad(in.Op, raw))
	case ClassStore:
		addr := uint64(rd(in.Rs1) + int64(in.Imm))
		e.Mem.Write(addr, in.Op.MemWidth(), uint64(rd(in.Rs2)))
	case ClassBranch:
		if BranchTaken(in.Op, rd(in.Rs1), rd(in.Rs2)) {
			next = in.BranchTarget(pc)
		}
	case ClassJump:
		link := int64(pc + InstSize)
		if in.Op == OpJal {
			next = in.BranchTarget(pc)
		} else {
			next = uint64(rd(in.Rs1) + int64(in.Imm))
		}
		wr(in.Rd, link)
	case ClassAtomic:
		addr := uint64(rd(in.Rs1))
		old := int64(e.Mem.Read(addr, 8))
		if old == rd(in.Rs2) {
			e.Mem.Write(addr, 8, uint64(rd(in.Rd)))
		}
		wr(in.Rd, old)
	case ClassPrefetch:
		// No architectural effect.
	case ClassTx:
		// The single-stepped golden model is trivially atomic:
		// transactions always succeed.
		if in.Op == OpTxBegin {
			wr(in.Rd, 0)
		}
	}

	e.PC = next
	e.Executed++
	if e.Hook != nil {
		e.Hook(pc, in)
	}
	if e.Halted {
		return in, ErrHalted
	}
	return in, nil
}

// Run executes until halt or until maxInsts instructions have retired.
// It returns nil on a clean halt and ErrMaxInsts if the budget ran out.
func (e *Emulator) Run(maxInsts uint64) error {
	for e.Executed < maxInsts {
		if _, err := e.Step(); err != nil {
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
	}
	if e.Halted {
		return nil
	}
	return ErrMaxInsts
}
