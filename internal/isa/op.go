// Package isa defines RK64, the 64-bit RISC instruction set executed by
// every core model in this repository (in-order, out-of-order, and SST).
//
// RK64 is deliberately SPARC/RISC-V-flavoured: 32 integer registers with
// r0 hardwired to zero, fixed-size 8-byte instruction encoding,
// compare-and-branch conditional branches (no condition codes), and a
// compare-and-swap primitive for atomics. The package also provides the
// architectural semantics (ALU evaluation, branch resolution) shared by
// all core models and a pure functional Emulator that serves as the
// golden model for correctness testing.
package isa

import "fmt"

// Op identifies an RK64 operation.
type Op uint8

// RK64 opcodes.
const (
	OpNop Op = iota
	OpHalt

	// Register-register ALU operations: rd = rs1 op rs2.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu
	OpMul
	OpMulh
	OpDiv
	OpDivu
	OpRem
	OpRemu

	// Register-immediate ALU operations: rd = rs1 op sext(imm).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltui

	// Constant formation.
	OpMovi // rd = sext64(imm32)
	OpLui  // rd = int64(imm32) << 32

	// Loads: rd = mem[rs1 + sext(imm)], sign- or zero-extended.
	OpLd8
	OpLd16
	OpLd32
	OpLd64
	OpLdu8
	OpLdu16
	OpLdu32

	// Stores: mem[rs1 + sext(imm)] = rs2.
	OpSt8
	OpSt16
	OpSt32
	OpSt64

	// Conditional branches: if rs1 cmp rs2 then pc += sext(imm).
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Unconditional control transfer.
	OpJal  // rd = pc + InstSize; pc += sext(imm)
	OpJalr // rd = pc + InstSize; pc = rs1 + sext(imm)

	// Atomic compare-and-swap (SPARC casx flavour):
	//   old = mem64[rs1]; if old == rs2 { mem64[rs1] = rd }; rd = old
	OpCas

	OpMembar   // memory barrier
	OpPrefetch // software prefetch of line at rs1 + sext(imm)

	// Hardware transactional memory (ROCK's checkpoint-based HTM):
	//   txbegin rd, handler: enter a transaction; rd = 0. On abort,
	//   architectural state rolls back to the txbegin, control moves to
	//   handler (pc-relative imm) and rd holds the abort code.
	//   txcommit: atomically publish the transaction's stores.
	// Cores without transactional hardware (and the functional golden
	// model, which is single-stepped and thus trivially atomic) execute
	// them as always-succeeding no-ops.
	OpTxBegin
	OpTxCommit

	numOps
)

// NumOps is the number of defined opcodes; useful for table sizing.
const NumOps = int(numOps)

// InstSize is the size in bytes of one encoded RK64 instruction.
const InstSize = 8

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Conventional register roles used by the assembler and code generators.
const (
	RegZero = 0 // always reads as zero
	RegRA   = 1 // return address (link register for jal/jalr)
	RegSP   = 2 // stack pointer by convention
)

type opInfo struct {
	name    string
	class   Class
	latency int // execution latency in cycles (1 = single cycle)
}

// Class categorizes an opcode for pipeline control.
type Class uint8

// Opcode classes.
const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // jal/jalr
	ClassAtomic
	ClassBarrier
	ClassPrefetch
	ClassNop
	ClassHalt
	ClassTx
)

// Default execution latencies, in cycles. Loads/stores are subject to the
// memory hierarchy on top of a 1-cycle pipeline occupancy.
const (
	LatMul = 4
	LatDiv = 20
)

var opTable = [NumOps]opInfo{
	OpNop:      {"nop", ClassNop, 1},
	OpHalt:     {"halt", ClassHalt, 1},
	OpAdd:      {"add", ClassALU, 1},
	OpSub:      {"sub", ClassALU, 1},
	OpAnd:      {"and", ClassALU, 1},
	OpOr:       {"or", ClassALU, 1},
	OpXor:      {"xor", ClassALU, 1},
	OpSll:      {"sll", ClassALU, 1},
	OpSrl:      {"srl", ClassALU, 1},
	OpSra:      {"sra", ClassALU, 1},
	OpSlt:      {"slt", ClassALU, 1},
	OpSltu:     {"sltu", ClassALU, 1},
	OpMul:      {"mul", ClassALU, LatMul},
	OpMulh:     {"mulh", ClassALU, LatMul},
	OpDiv:      {"div", ClassALU, LatDiv},
	OpDivu:     {"divu", ClassALU, LatDiv},
	OpRem:      {"rem", ClassALU, LatDiv},
	OpRemu:     {"remu", ClassALU, LatDiv},
	OpAddi:     {"addi", ClassALU, 1},
	OpAndi:     {"andi", ClassALU, 1},
	OpOri:      {"ori", ClassALU, 1},
	OpXori:     {"xori", ClassALU, 1},
	OpSlli:     {"slli", ClassALU, 1},
	OpSrli:     {"srli", ClassALU, 1},
	OpSrai:     {"srai", ClassALU, 1},
	OpSlti:     {"slti", ClassALU, 1},
	OpSltui:    {"sltui", ClassALU, 1},
	OpMovi:     {"movi", ClassALU, 1},
	OpLui:      {"lui", ClassALU, 1},
	OpLd8:      {"ld8", ClassLoad, 1},
	OpLd16:     {"ld16", ClassLoad, 1},
	OpLd32:     {"ld32", ClassLoad, 1},
	OpLd64:     {"ld64", ClassLoad, 1},
	OpLdu8:     {"ldu8", ClassLoad, 1},
	OpLdu16:    {"ldu16", ClassLoad, 1},
	OpLdu32:    {"ldu32", ClassLoad, 1},
	OpSt8:      {"st8", ClassStore, 1},
	OpSt16:     {"st16", ClassStore, 1},
	OpSt32:     {"st32", ClassStore, 1},
	OpSt64:     {"st64", ClassStore, 1},
	OpBeq:      {"beq", ClassBranch, 1},
	OpBne:      {"bne", ClassBranch, 1},
	OpBlt:      {"blt", ClassBranch, 1},
	OpBge:      {"bge", ClassBranch, 1},
	OpBltu:     {"bltu", ClassBranch, 1},
	OpBgeu:     {"bgeu", ClassBranch, 1},
	OpJal:      {"jal", ClassJump, 1},
	OpJalr:     {"jalr", ClassJump, 1},
	OpCas:      {"cas", ClassAtomic, 1},
	OpMembar:   {"membar", ClassBarrier, 1},
	OpPrefetch: {"prefetch", ClassPrefetch, 1},
	OpTxBegin:  {"txbegin", ClassTx, 1},
	OpTxCommit: {"txcommit", ClassTx, 1},
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < NumOps {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined RK64 opcode.
func (op Op) Valid() bool { return int(op) < NumOps }

// Class returns the pipeline class of the opcode.
func (op Op) Class() Class {
	if !op.Valid() {
		return ClassNop
	}
	return opTable[op].class
}

// Latency returns the nominal execution latency of the opcode in cycles.
// Memory operations additionally pay memory-hierarchy latency.
func (op Op) Latency() int {
	if !op.Valid() {
		return 1
	}
	return opTable[op].latency
}

// IsLoad reports whether the opcode reads data memory into a register.
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether the opcode writes data memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsMem reports whether the opcode accesses data memory (including
// atomics and prefetches).
func (op Op) IsMem() bool {
	switch op.Class() {
	case ClassLoad, ClassStore, ClassAtomic, ClassPrefetch:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a conditional branch.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsJump reports whether the opcode is an unconditional control transfer.
func (op Op) IsJump() bool { return op.Class() == ClassJump }

// IsControl reports whether the opcode can redirect the PC.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsLongLatency reports whether the opcode is a multi-cycle arithmetic
// operation that checkpoint-based cores may defer like a cache miss.
func (op Op) IsLongLatency() bool { return op.Class() == ClassALU && op.Latency() > 1 }

// MemWidth returns the access width in bytes for memory operations, or 0.
func (op Op) MemWidth() int {
	switch op {
	case OpLd8, OpLdu8, OpSt8:
		return 1
	case OpLd16, OpLdu16, OpSt16:
		return 2
	case OpLd32, OpLdu32, OpSt32:
		return 4
	case OpLd64, OpSt64, OpCas:
		return 8
	}
	return 0
}

// MemSigned reports whether a load sign-extends its result.
func (op Op) MemSigned() bool {
	switch op {
	case OpLd8, OpLd16, OpLd32, OpLd64:
		return true
	}
	return false
}

// opsByName maps mnemonic to opcode; built once for the assembler.
var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); int(op) < NumOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}
