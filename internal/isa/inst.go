package isa

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded RK64 instruction.
//
// The encoded form is 8 bytes, little-endian:
//
//	byte 0    opcode
//	byte 1    rd
//	byte 2    rs1
//	byte 3    rs2
//	bytes 4-7 imm (int32)
//
// Field usage by class:
//
//	ALU reg-reg   rd = rs1 op rs2
//	ALU reg-imm   rd = rs1 op imm
//	load          rd = mem[rs1+imm]
//	store         mem[rs1+imm] = rs2
//	branch        if rs1 cmp rs2: pc += imm (imm relative to this inst)
//	jal           rd = pc+8; pc += imm
//	jalr          rd = pc+8; pc = rs1+imm
//	cas           rd also read as the swap-in value; address rs1; compare rs2
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode writes the 8-byte encoding of the instruction into buf.
func (in Inst) Encode(buf []byte) {
	buf[0] = byte(in.Op)
	buf[1] = in.Rd
	buf[2] = in.Rs1
	buf[3] = in.Rs2
	binary.LittleEndian.PutUint32(buf[4:8], uint32(in.Imm))
}

// EncodeWord returns the instruction encoded as a single 64-bit word.
func (in Inst) EncodeWord() uint64 {
	var b [8]byte
	in.Encode(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Decode parses the 8-byte encoding in buf.
func Decode(buf []byte) (Inst, error) {
	in := Inst{
		Op:  Op(buf[0]),
		Rd:  buf[1],
		Rs1: buf[2],
		Rs2: buf[3],
		Imm: int32(binary.LittleEndian.Uint32(buf[4:8])),
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("isa: illegal opcode %d", buf[0])
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return in, fmt.Errorf("isa: register out of range in %v", in)
	}
	return in, nil
}

// DecodeWord parses an instruction from its 64-bit word encoding.
func DecodeWord(w uint64) (Inst, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w)
	return Decode(b[:])
}

// srcCount maps each opcode to how many of the ordered source slots
// (rs1, rs2, rd) it reads; SrcRegs is on every core model's issue path,
// so the per-class switches are folded into one table lookup.
var srcCount = func() (t [NumOps]uint8) {
	for op := Op(0); int(op) < NumOps; op++ {
		switch op.Class() {
		case ClassALU:
			switch op {
			case OpMovi, OpLui:
			case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltui:
				t[op] = 1
			default:
				t[op] = 2
			}
		case ClassLoad, ClassPrefetch:
			t[op] = 1
		case ClassStore, ClassBranch:
			t[op] = 2
		case ClassJump:
			if op == OpJalr {
				t[op] = 1
			}
		case ClassAtomic:
			t[op] = 3
		}
	}
	return t
}()

// SrcRegs returns the architectural source registers read by the
// instruction. n is the number of valid entries (0..3); slots beyond n
// are unspecified. The third source slot is used only by cas (which
// reads rd as the swap-in value) and by stores (data register rs2 is
// reported alongside the address rs1).
func (in Inst) SrcRegs() (srcs [3]uint8, n int) {
	if !in.Op.Valid() {
		return srcs, 0
	}
	srcs[0], srcs[1], srcs[2] = in.Rs1, in.Rs2, in.Rd
	return srcs, int(srcCount[in.Op])
}

// DestReg returns the destination register and whether the instruction
// writes one. Writes to r0 are reported as no destination.
func (in Inst) DestReg() (uint8, bool) {
	var rd uint8
	switch in.Op.Class() {
	case ClassALU, ClassLoad, ClassJump, ClassAtomic:
		rd = in.Rd
	case ClassTx:
		if in.Op != OpTxBegin {
			return 0, false
		}
		rd = in.Rd
	default:
		return 0, false
	}
	if rd == RegZero {
		return 0, false
	}
	return rd, true
}

// HasImmSrc reports whether the instruction uses its immediate field.
func (in Inst) HasImmSrc() bool {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra, OpSlt, OpSltu,
		OpMul, OpMulh, OpDiv, OpDivu, OpRem, OpRemu, OpNop, OpHalt, OpMembar, OpCas:
		return false
	}
	return true
}

// BranchTarget returns the target PC of a branch or jal located at pc.
func (in Inst) BranchTarget(pc uint64) uint64 {
	return pc + uint64(int64(in.Imm))
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	r := func(i uint8) string { return fmt.Sprintf("r%d", i) }
	switch in.Op.Class() {
	case ClassNop, ClassHalt, ClassBarrier:
		return in.Op.String()
	case ClassALU:
		switch in.Op {
		case OpMovi, OpLui:
			return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rd), in.Imm)
		case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSrai, OpSlti, OpSltui:
			return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
		}
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case ClassJump:
		if in.Op == OpJal {
			return fmt.Sprintf("jal %s, %d", r(in.Rd), in.Imm)
		}
		return fmt.Sprintf("jalr %s, %d(%s)", r(in.Rd), in.Imm, r(in.Rs1))
	case ClassAtomic:
		return fmt.Sprintf("cas %s, (%s), %s", r(in.Rd), r(in.Rs1), r(in.Rs2))
	case ClassPrefetch:
		return fmt.Sprintf("prefetch %d(%s)", in.Imm, r(in.Rs1))
	case ClassTx:
		if in.Op == OpTxBegin {
			return fmt.Sprintf("txbegin %s, %d", r(in.Rd), in.Imm)
		}
		return "txcommit"
	}
	return fmt.Sprintf("%s ?", in.Op)
}
