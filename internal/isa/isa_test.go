package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpMetadata(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
		if op.Latency() < 1 {
			t.Errorf("op %v latency %d < 1", op, op.Latency())
		}
		if got, ok := OpByName(op.String()); !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
	if Op(200).Valid() {
		t.Error("Op(200) should be invalid")
	}
}

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		op                       Op
		load, store, branch, jmp bool
	}{
		{OpLd64, true, false, false, false},
		{OpLdu8, true, false, false, false},
		{OpSt32, false, true, false, false},
		{OpBeq, false, false, true, false},
		{OpJal, false, false, false, true},
		{OpJalr, false, false, false, true},
		{OpAdd, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsBranch() != c.branch || c.op.IsJump() != c.jmp {
			t.Errorf("%v predicates wrong", c.op)
		}
	}
	if !OpDiv.IsLongLatency() || OpAdd.IsLongLatency() {
		t.Error("long-latency classification wrong")
	}
	if !OpCas.IsMem() || !OpPrefetch.IsMem() || OpAdd.IsMem() {
		t.Error("IsMem classification wrong")
	}
}

func TestMemWidth(t *testing.T) {
	widths := map[Op]int{
		OpLd8: 1, OpLdu8: 1, OpSt8: 1,
		OpLd16: 2, OpLdu16: 2, OpSt16: 2,
		OpLd32: 4, OpLdu32: 4, OpSt32: 4,
		OpLd64: 8, OpSt64: 8, OpCas: 8,
		OpAdd: 0,
	}
	for op, w := range widths {
		if op.MemWidth() != w {
			t.Errorf("%v width = %d, want %d", op, op.MemWidth(), w)
		}
	}
	if !OpLd32.MemSigned() || OpLdu32.MemSigned() {
		t.Error("MemSigned wrong")
	}
}

// TestEncodeDecodeRoundTrip is the property test: any well-formed
// instruction survives encode/decode unchanged.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op:  Op(op % uint8(NumOps)),
			Rd:  rd % NumRegs,
			Rs1: rs1 % NumRegs,
			Rs2: rs2 % NumRegs,
			Imm: imm,
		}
		var buf [InstSize]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		if err != nil {
			return false
		}
		if out != in {
			return false
		}
		w, err := DecodeWord(in.EncodeWord())
		return err == nil && w == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsIllegal(t *testing.T) {
	var buf [InstSize]byte
	buf[0] = byte(NumOps) // first invalid opcode
	if _, err := Decode(buf[:]); err == nil {
		t.Error("decode accepted illegal opcode")
	}
	buf[0] = byte(OpAdd)
	buf[1] = NumRegs // register out of range
	if _, err := Decode(buf[:]); err == nil {
		t.Error("decode accepted out-of-range register")
	}
}

func TestSrcRegsAndDest(t *testing.T) {
	cases := []struct {
		in    Inst
		nsrc  int
		hasRd bool
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, 2, true},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2}, 1, true},
		{Inst{Op: OpMovi, Rd: 1}, 0, true},
		{Inst{Op: OpLd64, Rd: 1, Rs1: 2}, 1, true},
		{Inst{Op: OpSt64, Rs1: 2, Rs2: 3}, 2, false},
		{Inst{Op: OpBeq, Rs1: 2, Rs2: 3}, 2, false},
		{Inst{Op: OpJal, Rd: 1}, 0, true},
		{Inst{Op: OpJalr, Rd: 1, Rs1: 5}, 1, true},
		{Inst{Op: OpCas, Rd: 1, Rs1: 2, Rs2: 3}, 3, true},
		{Inst{Op: OpNop}, 0, false},
		{Inst{Op: OpAdd, Rd: 0, Rs1: 1, Rs2: 2}, 2, false}, // writes r0
		{Inst{Op: OpPrefetch, Rs1: 4}, 1, false},
	}
	for _, c := range cases {
		_, n := c.in.SrcRegs()
		if n != c.nsrc {
			t.Errorf("%v: nsrc = %d, want %d", c.in, n, c.nsrc)
		}
		_, has := c.in.DestReg()
		if has != c.hasRd {
			t.Errorf("%v: hasRd = %v, want %v", c.in, has, c.hasRd)
		}
	}
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpSll, 1, 8, 256},
		{OpSll, 1, 64, 1}, // shift amount masked to 6 bits
		{OpSrl, -8, 1, int64(uint64(0xfffffffffffffff8) >> 1)},
		{OpSra, -8, 1, -4},
		{OpSlt, -1, 0, 1},
		{OpSlt, 1, 0, 0},
		{OpSltu, -1, 0, 0}, // unsigned: -1 is max
		{OpMul, 7, 6, 42},
		{OpDiv, 7, 2, 3},
		{OpDiv, -7, 2, -3},
		{OpDiv, 7, 0, -1},               // div by zero
		{OpDiv, -1 << 63, -1, -1 << 63}, // overflow
		{OpRem, 7, 2, 1},
		{OpRem, 7, 0, 7},
		{OpRem, -1 << 63, -1, 0},
		{OpDivu, -1, 2, int64(^uint64(0) / 2)},
		{OpRemu, 10, 0, 10},
	}
	for _, c := range cases {
		got := ALUResult(Inst{Op: c.op}, c.a, c.b)
		if got != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestALUImmediates(t *testing.T) {
	in := Inst{Op: OpAddi, Imm: -5}
	if got := ALUResult(in, 3, 999); got != -2 {
		t.Errorf("addi = %d, want -2", got)
	}
	in = Inst{Op: OpMovi, Imm: -123}
	if got := ALUResult(in, 0, 0); got != -123 {
		t.Errorf("movi = %d", got)
	}
	in = Inst{Op: OpLui, Imm: 0x1234}
	if got := ALUResult(in, 0, 0); got != 0x1234<<32 {
		t.Errorf("lui = %#x", got)
	}
	in = Inst{Op: OpSlli, Imm: 4}
	if got := ALUResult(in, 3, 0); got != 48 {
		t.Errorf("slli = %d", got)
	}
}

func TestMulh(t *testing.T) {
	// Cross-check mulh against big-integer-free reference using 32-bit
	// decomposition on random values.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := r.Int63()-r.Int63(), r.Int63()-r.Int63()
		got := ALUResult(Inst{Op: OpMulh}, a, b)
		want := mulhRef(a, b)
		if got != want {
			t.Fatalf("mulh(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

// mulhRef computes the signed high 64 bits via 4-way decomposition.
func mulhRef(a, b int64) int64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := mul128(ua, ub)
	if neg {
		// two's complement of the 128-bit product
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return int64(hi)
}

func mul128(a, b uint64) (hi, lo uint64) {
	a0, a1 := a&0xffffffff, a>>32
	b0, b1 := b&0xffffffff, b>>32
	t := a0 * b0
	lo = t & 0xffffffff
	c := t >> 32
	t = a1*b0 + c
	s0 := t & 0xffffffff
	s1 := t >> 32
	t = a0*b1 + s0
	lo |= (t & 0xffffffff) << 32
	hi = a1*b1 + s1 + t>>32
	return hi, lo
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpBeq, 1, 1, true}, {OpBeq, 1, 2, false},
		{OpBne, 1, 2, true}, {OpBne, 2, 2, false},
		{OpBlt, -1, 0, true}, {OpBlt, 0, 0, false},
		{OpBge, 0, 0, true}, {OpBge, -1, 0, false},
		{OpBltu, 1, 2, true}, {OpBltu, -1, 2, false},
		{OpBgeu, -1, 2, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%d,%d) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestExtendLoad(t *testing.T) {
	cases := []struct {
		op   Op
		raw  uint64
		want int64
	}{
		{OpLd8, 0xff, -1},
		{OpLdu8, 0xff, 255},
		{OpLd16, 0x8000, -32768},
		{OpLdu16, 0x8000, 32768},
		{OpLd32, 0xffffffff, -1},
		{OpLdu32, 0xffffffff, 0xffffffff},
		{OpLd64, 0xffffffffffffffff, -1},
	}
	for _, c := range cases {
		if got := ExtendLoad(c.op, c.raw); got != c.want {
			t.Errorf("%v(%#x) = %d, want %d", c.op, c.raw, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: OpLd64, Rd: 5, Rs1: 6, Imm: 16}, "ld64 r5, 16(r6)"},
		{Inst{Op: OpSt8, Rs1: 6, Rs2: 7, Imm: -2}, "st8 r7, -2(r6)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 0, Imm: 64}, "beq r1, r0, 64"},
		{Inst{Op: OpJal, Rd: 1, Imm: 8}, "jal r1, 8"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpBeq, Imm: -16}
	if got := in.BranchTarget(0x1000); got != 0xff0 {
		t.Errorf("target = %#x", got)
	}
}
