package isa

import (
	"errors"
	"testing"
)

// testMem is a trivial map-backed Memory for emulator tests.
type testMem map[uint64]byte

func (m testMem) Read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (m testMem) Write(addr uint64, size int, val uint64) {
	for i := 0; i < size; i++ {
		m[addr+uint64(i)] = byte(val >> (8 * i))
	}
}

func loadProgram(m testMem, base uint64, insts []Inst) {
	var buf [InstSize]byte
	for i, in := range insts {
		in.Encode(buf[:])
		for j, b := range buf {
			m[base+uint64(i*InstSize+j)] = b
		}
	}
}

func TestEmulatorBasic(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0x1000, []Inst{
		{Op: OpMovi, Rd: 1, Imm: 10},
		{Op: OpMovi, Rd: 2, Imm: 32},
		{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: OpSt64, Rs1: 0, Rs2: 3, Imm: 0x100},
		{Op: OpLd64, Rd: 4, Rs1: 0, Imm: 0x100},
		{Op: OpHalt},
	})
	e := NewEmulator(0x1000, m)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg[3] != 42 || e.Reg[4] != 42 {
		t.Errorf("r3=%d r4=%d, want 42", e.Reg[3], e.Reg[4])
	}
	if e.Executed != 6 {
		t.Errorf("executed %d, want 6", e.Executed)
	}
	if !e.Halted {
		t.Error("not halted")
	}
	if _, err := e.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("step after halt: %v", err)
	}
}

func TestEmulatorR0AlwaysZero(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0, []Inst{
		{Op: OpMovi, Rd: 0, Imm: 99},
		{Op: OpAddi, Rd: 1, Rs1: 0, Imm: 5},
		{Op: OpHalt},
	})
	e := NewEmulator(0, m)
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if e.Reg[0] != 0 {
		t.Errorf("r0 = %d", e.Reg[0])
	}
	if e.Reg[1] != 5 {
		t.Errorf("r1 = %d, want 5", e.Reg[1])
	}
}

func TestEmulatorBranchLoop(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0, []Inst{
		{Op: OpMovi, Rd: 1, Imm: 5},          // 0x00
		{Op: OpAdd, Rd: 2, Rs1: 2, Rs2: 1},   // 0x08 loop: r2 += r1
		{Op: OpAddi, Rd: 1, Rs1: 1, Imm: -1}, // 0x10
		{Op: OpBne, Rs1: 1, Imm: -16},        // 0x18 -> 0x08
		{Op: OpHalt},
	})
	e := NewEmulator(0, m)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg[2] != 15 { // 5+4+3+2+1
		t.Errorf("r2 = %d, want 15", e.Reg[2])
	}
}

func TestEmulatorJalJalr(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0, []Inst{
		{Op: OpJal, Rd: 1, Imm: 24}, // 0x00 call 0x18
		{Op: OpMovi, Rd: 3, Imm: 7}, // 0x08 after return
		{Op: OpHalt},                // 0x10
		{Op: OpMovi, Rd: 2, Imm: 1}, // 0x18 callee
		{Op: OpJalr, Rd: 0, Rs1: 1}, // 0x20 ret
	})
	e := NewEmulator(0, m)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg[1] != 8 {
		t.Errorf("link = %d, want 8", e.Reg[1])
	}
	if e.Reg[2] != 1 || e.Reg[3] != 7 {
		t.Errorf("r2=%d r3=%d", e.Reg[2], e.Reg[3])
	}
}

func TestEmulatorCas(t *testing.T) {
	m := testMem{}
	m.Write(0x100, 8, 5)
	loadProgram(m, 0, []Inst{
		{Op: OpMovi, Rd: 1, Imm: 0x100}, // address
		{Op: OpMovi, Rd: 2, Imm: 5},     // compare (matches)
		{Op: OpMovi, Rd: 3, Imm: 9},     // swap-in
		{Op: OpCas, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: OpMovi, Rd: 4, Imm: 123}, // compare (no match)
		{Op: OpMovi, Rd: 5, Imm: 77},
		{Op: OpCas, Rd: 5, Rs1: 1, Rs2: 4},
		{Op: OpHalt},
	})
	e := NewEmulator(0, m)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.Reg[3] != 5 {
		t.Errorf("cas old = %d, want 5", e.Reg[3])
	}
	if got := m.Read(0x100, 8); got != 9 {
		t.Errorf("mem = %d, want 9 (swap happened)", got)
	}
	if e.Reg[5] != 9 {
		t.Errorf("second cas old = %d, want 9", e.Reg[5])
	}
	if got := m.Read(0x100, 8); got != 9 {
		t.Errorf("mem changed on failed cas: %d", got)
	}
}

func TestEmulatorBudget(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0, []Inst{
		{Op: OpJal, Rd: 0, Imm: 0}, // infinite self-jump
	})
	e := NewEmulator(0, m)
	if err := e.Run(100); !errors.Is(err, ErrMaxInsts) {
		t.Errorf("want ErrMaxInsts, got %v", err)
	}
}

func TestEmulatorIllegal(t *testing.T) {
	m := testMem{}
	m[0] = 250 // invalid opcode
	e := NewEmulator(0, m)
	if _, err := e.Step(); err == nil {
		t.Error("expected illegal-instruction error")
	}
}

func TestEmulatorHook(t *testing.T) {
	m := testMem{}
	loadProgram(m, 0, []Inst{
		{Op: OpMovi, Rd: 1, Imm: 1},
		{Op: OpHalt},
	})
	e := NewEmulator(0, m)
	var pcs []uint64
	e.Hook = func(pc uint64, in Inst) { pcs = append(pcs, pc) }
	if err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 2 || pcs[0] != 0 || pcs[1] != 8 {
		t.Errorf("hook pcs = %v", pcs)
	}
}
