package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/faults"
	"rocksim/internal/serve"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// startShard boots one in-process rocksimd over httptest, configured
// with the fleet's shared base options (bespoke experiments run against
// the shard's base, so it must match the gateway's — see
// docs/SERVICE.md).
func startShard(t *testing.T, id string, base sim.Options) *httptest.Server {
	t.Helper()
	r := experiments.NewRunner()
	r.SetJobs(2)
	r.SetBaseOptions(base)
	ts := httptest.NewServer(serve.New(serve.Config{ShardID: id}, r))
	t.Cleanup(ts.Close)
	return ts
}

func startFleet(t *testing.T, n int, base sim.Options) []string {
	t.Helper()
	targets := make([]string, n)
	for i := range targets {
		targets[i] = startShard(t, fmt.Sprintf("s%d", i), base).URL
	}
	return targets
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// gridRef renders the single-node reference: exactly the bytes one
// rocksimd's /v1/grid produces for ids at test scale under base.
func gridRef(t *testing.T, ids []string, base sim.Options) []byte {
	t.Helper()
	r := experiments.NewRunner()
	r.SetJobs(2)
	r.SetBaseOptions(base)
	var buf bytes.Buffer
	for _, id := range ids {
		res, err := r.Run(id, workload.ScaleTest)
		if err != nil {
			t.Fatalf("reference run %s: %v", id, err)
		}
		res.Fprint(&buf)
		fmt.Fprintln(&buf)
	}
	return buf.Bytes()
}

func gatewayGrid(t *testing.T, g *Gateway, ids []string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(g)
	defer ts.Close()
	body, err := json.Marshal(serve.GridRequest{Exps: ids, Scale: "test"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestGridByteIdentityFleet is the tentpole contract: a 3-shard fleet's
// assembled grid — cell-decomposed experiments fanned out by cache key,
// the bespoke CMP experiment routed whole — is byte-for-byte what a
// single daemon produces, sync and async.
func TestGridByteIdentityFleet(t *testing.T) {
	base := sim.DefaultOptions()
	targets := startFleet(t, 3, base)
	g := newGateway(t, Config{Targets: targets, PerShard: 4, BaseOptions: &base})

	ids := []string{"T1", "F3", "F9"} // table, cell fan-out, bespoke whole-exp
	want := gridRef(t, ids, base)

	resp, got := gatewayGrid(t, g, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %.300s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet grid differs from single-node bytes:\ngot  %d bytes\nwant %d bytes\ngot:  %.400q\nwant: %.400q",
			len(got), len(want), got, want)
	}

	// Async path: submit, poll, same bytes (cells now cached on shards).
	asyncIDs := []string{"T1", "F3"}
	asyncWant := gridRef(t, asyncIDs, base)
	ts := httptest.NewServer(g)
	defer ts.Close()
	body, _ := json.Marshal(serve.GridRequest{Exps: asyncIDs, Scale: "test", Async: true})
	ar, err := http.Post(ts.URL+"/v1/grid", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	accepted, _ := io.ReadAll(ar.Body)
	ar.Body.Close()
	if ar.StatusCode != http.StatusAccepted {
		t.Fatalf("async grid: status %d: %s", ar.StatusCode, accepted)
	}
	var acc serve.AsyncAccepted
	if err := json.Unmarshal(accepted, &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		rr, err := http.Get(ts.URL + acc.Result)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(rr.Body)
		rr.Body.Close()
		if rr.StatusCode == http.StatusOK {
			if !bytes.Equal(data, asyncWant) {
				t.Fatalf("async fleet grid differs from single-node bytes (%d vs %d)", len(data), len(asyncWant))
			}
			break
		}
		if rr.StatusCode != http.StatusAccepted {
			t.Fatalf("result poll: status %d: %s", rr.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("async grid never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGridByteIdentityFaultsAndErrCells: per-cell options — a fault
// plan and a cycle limit low enough to trip deterministic ERR cells —
// survive the wire, so the fleet renders the exact ERR table a single
// node does.
func TestGridByteIdentityFaultsAndErrCells(t *testing.T) {
	base := sim.DefaultOptions()
	plan, err := faults.Parse("seed=7;mem-jitter@0-5000:32;ckpt-deny@100-400")
	if err != nil {
		t.Fatal(err)
	}
	base.Faults = plan
	base.MaxCycles = 3000 // low enough that long cells ERR(cycle-limit)

	targets := startFleet(t, 3, base)
	g := newGateway(t, Config{Targets: targets, PerShard: 4, BaseOptions: &base})

	ids := []string{"F1", "F3"}
	want := gridRef(t, ids, base)
	if !bytes.Contains(want, []byte("ERR(")) {
		t.Fatalf("reference produced no ERR cells; raise/lower MaxCycles to exercise the error path:\n%.400s", want)
	}
	resp, got := gatewayGrid(t, g, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %.300s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("faulted fleet grid differs from single-node bytes:\ngot:  %.600q\nwant: %.600q", got, want)
	}
}

// TestShardDownAtStart: a target that is dead before the gateway boots
// is ejected by the constructor's health check; the grid assembles on
// the survivors, byte-identical.
func TestShardDownAtStart(t *testing.T) {
	base := sim.DefaultOptions()
	targets := startFleet(t, 2, base)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // port now refuses connections
	targets = append(targets, deadURL)

	g := newGateway(t, Config{Targets: targets, PerShard: 4, BaseOptions: &base})
	if up := g.Fleet().Monitor().UpCount(); up != 2 {
		t.Fatalf("up count %d after constructor check, want 2", up)
	}

	ids := []string{"T2", "F3"}
	want := gridRef(t, ids, base)
	resp, got := gatewayGrid(t, g, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %.300s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("grid with a dead shard differs from single-node bytes")
	}

	// The gateway's own health and metrics reflect the ejection.
	ts := httptest.NewServer(g)
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		OK       bool `json:"ok"`
		RingSize int  `json:"ring_size"`
		ShardsUp int  `json:"shards_up"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !h.OK || h.ShardsUp != 2 || h.RingSize != 2 {
		t.Errorf("healthz ok=%v shards_up=%d ring_size=%d, want true/2/2", h.OK, h.ShardsUp, h.RingSize)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{"gate_ring_size 2", "fleet_"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("gateway /metrics missing %q:\n%.600s", want, metrics)
		}
	}
}

// TestShardDiesMidGrid: a shard that starts answering, then drops every
// connection, is ejected mid-request; its cells re-home to ring
// successors and the assembled grid is still byte-identical.
func TestShardDiesMidGrid(t *testing.T) {
	base := sim.DefaultOptions()
	targets := startFleet(t, 2, base)

	// Third shard: healthy at probe time, but every cell request aborts
	// the connection — the shape of a daemon dying mid-computation.
	rn := experiments.NewRunner()
	rn.SetJobs(2)
	rn.SetBaseOptions(base)
	inner := serve.New(serve.Config{ShardID: "dying"}, rn)
	var cells atomic.Int64
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cell" || r.URL.Path == "/v1/grid" {
			cells.Add(1)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)
	targets = append(targets, dying.URL)

	g := newGateway(t, Config{Targets: targets, PerShard: 4, BaseOptions: &base})
	if up := g.Fleet().Monitor().UpCount(); up != 3 {
		t.Fatalf("up count %d at start, want 3 (the dying shard probes healthy)", up)
	}

	ids := []string{"F1", "F3"} // enough distinct cells that the dying shard owns some
	want := gridRef(t, ids, base)
	resp, got := gatewayGrid(t, g, ids)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %.300s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("grid with a mid-run shard death differs from single-node bytes")
	}
	if cells.Load() == 0 {
		t.Fatal("the dying shard was never asked for a cell; the test exercised nothing")
	}
	ejected := false
	for _, s := range g.Fleet().Monitor().Snapshot() {
		if s.Target == dying.URL {
			ejected = !s.Up && s.Ejections >= 1
		}
	}
	if !ejected {
		t.Error("dying shard was not ejected after dropping connections")
	}
}

// fakeShard is a minimal shard: healthy /healthz, scripted /v1/cell.
func fakeShard(t *testing.T, cell http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	})
	mux.HandleFunc("POST /v1/cell", cell)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestAllShardsSaturated: when every shard answers 429, the gateway
// reports 429 with the LARGEST Retry-After any shard hinted — promptly,
// never hanging or queueing.
func TestAllShardsSaturated(t *testing.T) {
	targets := make([]string, 3)
	for i := range targets {
		secs := i + 1 // Retry-After 1s, 2s, 3s
		targets[i] = fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			httpError(w, http.StatusTooManyRequests, "queue full")
		}).URL
	}
	g := newGateway(t, Config{
		Targets:      targets,
		PerShard:     4,
		BusyAttempts: 1, // no waiting: each owner gets one shot per round
		BusyWait:     time.Millisecond,
	})

	start := time.Now()
	resp, body := gatewayGrid(t, g, []string{"F3"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %.300s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After %q, want the fleet maximum \"3\"", ra)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("saturated grid took %v; the gateway must fail fast, not hang", elapsed)
	}
}

// TestFanOutConnectionBound is the transport regression: a grid with
// many cells must reuse the per-shard connection pool, not open one
// connection per cell.
func TestFanOutConnectionBound(t *testing.T) {
	const perShard = 2
	conns := make([]*atomic.Int64, 3)
	served := make([]*atomic.Int64, 3)
	targets := make([]string, 3)
	for i := range targets {
		conns[i] = new(atomic.Int64)
		served[i] = new(atomic.Int64)
		n := served[i]
		ts := fakeShard(t, func(w http.ResponseWriter, r *http.Request) {
			n.Add(1)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(serve.CellResponse{ErrClass: experiments.ErrClassRunFailed, ErrMsg: "synthetic"})
		})
		c := conns[i]
		ts.Config.ConnState = func(_ net.Conn, st http.ConnState) {
			if st == http.StateNew {
				c.Add(1)
			}
		}
		targets[i] = ts.URL
	}
	g := newGateway(t, Config{Targets: targets, PerShard: perShard})

	resp, body := gatewayGrid(t, g, []string{"F1", "F3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %.300s", resp.StatusCode, body)
	}
	totalCells := int64(0)
	for i := range targets {
		totalCells += served[i].Load()
		if got := conns[i].Load(); got > perShard+1 { // +1 for the constructor's health probe racing the pool
			t.Errorf("shard %d: %d connections opened for %d cells, want <= %d (pooled)",
				i, got, served[i].Load(), perShard+1)
		}
	}
	if totalCells <= perShard*3 {
		t.Fatalf("only %d cells served across the fleet; too few to regress connection pooling", totalCells)
	}
}
