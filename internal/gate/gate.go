// Package gate is the stateless fleet router of the simulation
// service: the HTTP tier cmd/rockgate serves in front of N rocksimd
// shards. It exposes the same API as a single daemon — /v1/run,
// /v1/grid (sync and async), /v1/result, /metrics, /healthz — with the
// same response bytes, so clients cannot tell a fleet from one node.
//
// Routing is cache-affine: every request's cells hash onto the shard
// ring by the same content-addressed key the shards use for their run
// caches (experiments.CellKey), so a popular cell lands on one shard
// and is computed once per fleet. /v1/run proxies whole to the owner;
// /v1/grid decomposes — experiments whose simulations all flow through
// the cell cache fan out cell by cell (bounded per-shard concurrency,
// reassembled here in presentation order), the bespoke multi-core
// experiments route to a shard whole — and the assembled body is
// byte-identical to a single node's.
//
// The gateway holds no durable state: membership is health-driven
// (startup check, background re-probe, request-path ejection), a dead
// shard's keys re-home to ring successors mid-grid, and saturation is
// surfaced honestly — when every shard answers 429, the gateway
// returns 429 with the largest Retry-After it saw rather than queueing
// or hanging. SIGTERM drain mirrors rocksimd: new work refused with
// 503, admitted work (including async grids) runs to completion.
package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rocksim/internal/cpu"
	"rocksim/internal/experiments"
	"rocksim/internal/fleet"
	"rocksim/internal/obs"
	"rocksim/internal/serve"
	"rocksim/internal/serve/client"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// Defaults for Config zero values.
const (
	// DefaultBusyAttempts bounds how many times one cell waits out a
	// shard's 429 before the gateway reports saturation upstream.
	DefaultBusyAttempts = 3
	// DefaultBusyWait caps the per-attempt sleep on a shard 429; the
	// shard's Retry-After is honored up to this.
	DefaultBusyWait = 2 * time.Second
	// maxFinishedJobs bounds retained async results, as in serve.
	maxFinishedJobs = 64
)

// Config parameterizes a Gateway.
type Config struct {
	// Targets are the shard base URLs, e.g. "http://127.0.0.1:8321".
	Targets []string
	// PerShard bounds concurrent gateway requests per shard (default
	// client.DefaultMaxPerHost). Keep it <= each shard's queue depth or
	// fan-out will trip admission control under its own load.
	PerShard int
	// Jobs bounds a grid's assembly workers (cells in flight across the
	// whole fleet). 0 means PerShard * len(Targets).
	Jobs int
	// VNodes is the ring's virtual-node count (0 = fleet.DefaultVNodes).
	VNodes int
	// QueueDepth is the gateway's own admission bound (0 =
	// serve.DefaultQueueDepth).
	QueueDepth int
	// RetryAfter is the gateway's own 429 hint (0 =
	// serve.DefaultRetryAfter).
	RetryAfter time.Duration
	// BusyAttempts and BusyWait govern per-cell shard-429 handling.
	BusyAttempts int
	BusyWait     time.Duration
	// BaseOptions are the options grid experiments start from, exactly
	// like a single daemon's -faults/-timeout flags. nil means
	// sim.DefaultOptions.
	BaseOptions *sim.Options
	// HTTP overrides the shared shard transport (tests); nil builds a
	// tuned one sized to PerShard.
	HTTP *http.Client
	// Logger receives request/ejection log lines; nil discards them.
	Logger *slog.Logger
}

// Gateway is the fleet router HTTP handler.
type Gateway struct {
	cfg Config
	fl  *client.Fleet
	mux *http.ServeMux
	reg *obs.Registry
	log *slog.Logger

	sem      chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
	reqID    atomic.Uint64

	mu     sync.Mutex
	jobs   map[string]*gridJob
	order  []string
	nextID uint64
}

// gridJob is one async grid computation.
type gridJob struct {
	done       chan struct{}
	status     int
	retryAfter time.Duration
	body       []byte
}

// New builds a Gateway over cfg.Targets and runs one synchronous
// health check, so shards that are down at start are ejected before the
// first request routes. Call Fleet().Monitor().Start to begin
// background re-probing and Close on shutdown.
func New(cfg Config) (*Gateway, error) {
	if cfg.PerShard <= 0 {
		cfg.PerShard = client.DefaultMaxPerHost
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = cfg.PerShard * len(cfg.Targets)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = serve.DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = serve.DefaultRetryAfter
	}
	if cfg.BusyAttempts <= 0 {
		cfg.BusyAttempts = DefaultBusyAttempts
	}
	if cfg.BusyWait <= 0 {
		cfg.BusyWait = DefaultBusyWait
	}
	fl, err := client.NewFleet(cfg.Targets, client.FleetConfig{
		PerShard: cfg.PerShard,
		VNodes:   cfg.VNodes,
		HTTP:     cfg.HTTP,
	})
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:  cfg,
		fl:   fl,
		mux:  http.NewServeMux(),
		reg:  obs.NewRegistry(),
		log:  cfg.Logger,
		sem:  make(chan struct{}, cfg.QueueDepth),
		jobs: make(map[string]*gridJob),
	}
	if g.log == nil {
		g.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	g.mux.HandleFunc("POST /v1/run", g.handleRun)
	g.mux.HandleFunc("POST /v1/grid", g.handleGrid)
	g.mux.HandleFunc("GET /v1/result/{id}", g.handleResult)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	fl.Monitor().Check()
	return g, nil
}

// Fleet exposes the underlying multi-target client (health snapshots,
// probe control).
func (g *Gateway) Fleet() *client.Fleet { return g.fl }

// Close stops probing and releases idle shard connections.
func (g *Gateway) Close() { g.fl.Close() }

// StartDrain puts the gateway in lame-duck mode: new work refused with
// 503, admitted work (including async grids) runs to completion.
func (g *Gateway) StartDrain() {
	if !g.draining.Swap(true) {
		g.log.Info("drain start", "queued", len(g.sem))
	}
}

// Draining reports whether StartDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Wait blocks until every admitted request has finished.
func (g *Gateway) Wait() { g.wg.Wait() }

// ServeHTTP assigns (or echoes) X-Request-ID and logs the request,
// mirroring the single-daemon middleware.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = fmt.Sprintf("g%08d", g.reqID.Add(1))
	}
	w.Header().Set("X-Request-ID", id)
	g.log.LogAttrs(r.Context(), slog.LevelInfo, "request start",
		slog.String("id", id), slog.String("method", r.Method), slog.String("path", r.URL.Path))
	start := time.Now()
	g.mux.ServeHTTP(w, r)
	g.log.LogAttrs(r.Context(), slog.LevelInfo, "request end",
		slog.String("id", id), slog.Int64("dur_us", time.Since(start).Microseconds()))
}

// admit mirrors the shard-side admission control: 503 while draining,
// 429 with a Retry-After hint when the gateway's own queue is full.
func (g *Gateway) admit(w http.ResponseWriter) (release func(), ok bool) {
	if g.draining.Load() {
		g.reg.Counter("gate/rejected_draining").Inc()
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new work")
		return nil, false
	}
	select {
	case g.sem <- struct{}{}:
	default:
		g.reg.Counter("gate/rejected_busy").Inc()
		secs := retryAfterSecs(g.cfg.RetryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("gateway queue full (%d in flight); retry after %ds", g.cfg.QueueDepth, secs))
		return nil, false
	}
	g.wg.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-g.sem
			g.wg.Done()
		})
	}, true
}

// handleRun proxies one cell to its owning shard (ring successors on
// transport failure), streaming back the shard's body and compute
// header so the response is byte-identical to asking that shard — or
// any single daemon — directly.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gate/run_requests").Inc()
	release, ok := g.admit(w)
	if !ok {
		return
	}
	defer release()
	var req serve.RunRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, target, err := g.fl.Run(r.Context(), req)
	if err != nil {
		g.writeUpstreamError(w, err)
		return
	}
	w.Header().Set("X-Shard", target)
	w.Header().Set("X-Compute-Us", strconv.FormatInt(res.Compute.Microseconds(), 10))
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Body)
}

// writeUpstreamError maps a fleet request failure onto the gateway's
// response: shard 429s propagate with their Retry-After, shard HTTP
// errors keep their status and message, transport-level exhaustion is
// a 502.
func (g *Gateway) writeUpstreamError(w http.ResponseWriter, err error) {
	var busy *client.BusyError
	if errors.As(err, &busy) {
		g.reg.Counter("gate/upstream_busy").Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(busy.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		httpError(w, se.Code, se.Message)
		return
	}
	g.reg.Counter("gate/upstream_down").Inc()
	httpError(w, http.StatusBadGateway, err.Error())
}

func (g *Gateway) handleGrid(w http.ResponseWriter, r *http.Request) {
	g.reg.Counter("gate/grid_requests").Inc()
	release, ok := g.admit(w)
	if !ok {
		return
	}
	var req serve.GridRequest
	if err := decodeJSON(r, &req); err != nil {
		release()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ids := req.Exps
	if len(ids) == 0 {
		ids = experiments.All
	}
	for _, id := range ids {
		if !knownExperiment(id) {
			release()
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown experiment %q", id))
			return
		}
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		release()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	if req.Async {
		job, id := g.newJob()
		// The fan-out must outlive this handler's request context.
		ctx := context.WithoutCancel(r.Context())
		go func() {
			defer release()
			status, retry, body := g.computeGrid(ctx, ids, scale)
			g.finishJob(id, job, status, retry, body)
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.AsyncAccepted{ID: id, Result: "/v1/result/" + id})
		return
	}

	defer release()
	status, retry, body := g.computeGrid(r.Context(), ids, scale)
	writeGridResult(w, status, retry, body)
}

func writeGridResult(w http.ResponseWriter, status int, retry time.Duration, body []byte) {
	if status != http.StatusOK {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(retry)))
		}
		httpError(w, status, string(body))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}

// computeGrid assembles the listed experiments in presentation order.
// Cell-decomposable experiments run through a per-request
// experiments.Runner whose compute backend fans cells out to their
// owning shards — the Runner's cache and singleflight deduplicate
// repeated cells within the request, the worker pool bounds fleet-wide
// fan-out, and presentation-order assembly keeps the bytes identical
// to a single node. Bespoke multi-core experiments are routed to a
// shard whole. The gateway holds no cross-request cache: the shards'
// caches are the fleet's state.
func (g *Gateway) computeGrid(ctx context.Context, ids []string, scale workload.Scale) (status int, retry time.Duration, body []byte) {
	st := &fanout{}
	r := experiments.NewRunner()
	r.SetJobs(g.cfg.Jobs)
	r.SetBaseOptions(g.baseOptions())
	r.SetComputeBackend(g.cellBackend(ctx, scale, st))
	var buf bytes.Buffer
	for _, id := range ids {
		if experiments.RemoteSafe(id) {
			res, err := r.Run(id, scale)
			if s, ra, msg, fatal := st.takeFatal(); fatal {
				return s, ra, msg
			}
			if err != nil {
				g.reg.Counter("gate/grid_errors").Inc()
				if errors.Is(err, cpu.ErrDeadline) {
					return http.StatusGatewayTimeout, 0, []byte(err.Error())
				}
				return http.StatusInternalServerError, 0, []byte(err.Error())
			}
			res.Fprint(&buf)
			fmt.Fprintln(&buf)
			continue
		}
		part, err := g.remoteGrid(ctx, id, scale)
		if err != nil {
			g.reg.Counter("gate/grid_errors").Inc()
			var busy *client.BusyError
			if errors.As(err, &busy) {
				return http.StatusTooManyRequests, busy.RetryAfter, []byte(err.Error())
			}
			var se *client.StatusError
			if errors.As(err, &se) {
				return se.Code, 0, []byte(se.Message)
			}
			return http.StatusBadGateway, 0, []byte(err.Error())
		}
		buf.Write(part)
	}
	g.reg.Counter("gate/grids_served").Inc()
	return http.StatusOK, 0, buf.Bytes()
}

// remoteGrid routes one whole experiment to a shard: the bespoke
// multi-core experiments (CMP chips, SMT pairs, HTM, the leakage
// oracle) run simulations outside the cell seam, so the shard computes
// the entire table and its body — Result.Fprint plus the separator
// line — is spliced into the assembly verbatim. Placement hashes the
// experiment id, so repeats hit the same shard's grid cache cells.
func (g *Gateway) remoteGrid(ctx context.Context, id string, scale workload.Scale) ([]byte, error) {
	key := "exp|" + id + "|" + scaleName(scale)
	req := serve.GridRequest{Exps: []string{id}, Scale: scaleName(scale)}
	var lastErr error
	for round := 0; round <= len(g.cfg.Targets); round++ {
		owners := g.fl.Owners(key, g.ringSize())
		if len(owners) == 0 {
			break
		}
		for _, target := range owners {
			release, err := g.fl.Acquire(ctx, target)
			if err != nil {
				return nil, err
			}
			body, err := g.fl.Client(target).Grid(req)
			release()
			if err == nil {
				g.reg.Counter("gate/exps_routed").Inc()
				return body, nil
			}
			if !g.shardUnavailable(target, err) {
				return nil, err
			}
			lastErr = err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy shards")
	}
	return nil, fmt.Errorf("experiment %s: all shards failed: %w", id, lastErr)
}

// cellBackend builds the per-request compute backend: each cache miss
// on the assembly Runner becomes a /v1/cell call to the cell's owning
// shard, with ring-successor failover on transport errors, lame-duck
// ejection on 503, and bounded Retry-After waits on 429. A cell's
// deterministic failure comes back as a RemoteError, which the drivers
// render as the same ERR cell a local run would produce. Gateway-level
// failures (no shards left, fleet saturated) are recorded in st — the
// grid handler turns them into 502/429 instead of a wrong table.
func (g *Gateway) cellBackend(ctx context.Context, scale workload.Scale, st *fanout) experiments.ComputeBackend {
	return func(_ context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
		key := experiments.CellKey(k, spec, opts)
		req := serve.CellRequest{
			Kind:     k.String(),
			Workload: spec.Name,
			Scale:    scaleName(scale),
			Options:  serve.WireFromOptions(opts),
		}
		var maxBusy time.Duration
		sawBusy := false
		// Bounded outer loop: each round re-reads membership, and a round
		// that ejects shards shrinks the next one. len(targets)+1 rounds
		// guarantee termination even as probes re-admit flapping shards.
		for round := 0; round <= len(g.cfg.Targets); round++ {
			owners := g.fl.Owners(key, g.ringSize())
			if len(owners) == 0 {
				break
			}
			for _, target := range owners {
				for attempt := 0; ; attempt++ {
					release, err := g.fl.Acquire(ctx, target)
					if err != nil {
						st.fail(err)
						return sim.Outcome{}, err
					}
					resp, err := g.fl.Client(target).Cell(ctx, req)
					release()
					if err == nil {
						if resp.ErrClass != "" {
							return sim.Outcome{}, experiments.NewRemoteError(resp.ErrClass, resp.ErrMsg)
						}
						if resp.Cell == nil {
							err := fmt.Errorf("shard %s returned neither cell nor error", target)
							st.fail(err)
							return sim.Outcome{}, err
						}
						g.reg.Counter("gate/cells_remote").Inc()
						out, err := resp.Cell.AsOutcome()
						if err != nil {
							st.fail(err)
						}
						return out, err
					}
					var busy *client.BusyError
					if errors.As(err, &busy) {
						g.reg.Counter("gate/retries_busy").Inc()
						sawBusy = true
						if busy.RetryAfter > maxBusy {
							maxBusy = busy.RetryAfter
						}
						if attempt+1 >= g.cfg.BusyAttempts {
							break // give this owner up; try a successor's spare capacity
						}
						if !sleepCtx(ctx, minDuration(busy.RetryAfter, g.cfg.BusyWait)) {
							st.fail(ctx.Err())
							return sim.Outcome{}, ctx.Err()
						}
						continue
					}
					if !g.shardUnavailable(target, err) {
						// The shard answered with a real HTTP error (bad
						// request, fingerprint mismatch): a gateway bug, not
						// a shard outage. Fail the grid loudly.
						st.fail(err)
						return sim.Outcome{}, err
					}
					break // ejected; next owner
				}
			}
		}
		if sawBusy {
			st.saturated(maxBusy)
			return sim.Outcome{}, fmt.Errorf("fleet saturated; retry after %v", maxBusy)
		}
		err := fmt.Errorf("no healthy shards for cell %s/%s", k, spec.Name)
		st.fail(err)
		return sim.Outcome{}, err
	}
}

// shardUnavailable classifies an upstream error and ejects the shard
// when it means "unavailable": transport failures and drain refusals
// re-home the shard's keys; HTTP-level answers do not.
func (g *Gateway) shardUnavailable(target string, err error) bool {
	var se *client.StatusError
	if errors.As(err, &se) {
		if se.Code == http.StatusServiceUnavailable {
			if g.fl.Monitor().MarkDown(target, fleet.ErrDraining) {
				g.reg.Counter("gate/ejections").Inc()
				g.log.Warn("shard draining; ejected", "shard", target)
			}
			return true
		}
		return false
	}
	var busy *client.BusyError
	if errors.As(err, &busy) {
		return false
	}
	if g.fl.Monitor().MarkDown(target, err) {
		g.reg.Counter("gate/ejections").Inc()
		g.log.Warn("shard down; ejected", "shard", target, "err", err)
	}
	return true
}

// fanout accumulates gateway-level failures across a grid's cells.
// Saturation and hard failures must abort the request — the drivers
// would otherwise render them as ERR cells, which a single node would
// never show for a healthy simulation.
type fanout struct {
	mu      sync.Mutex
	busy    bool
	maxWait time.Duration
	err     error
}

func (f *fanout) saturated(wait time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.busy = true
	if wait > f.maxWait {
		f.maxWait = wait
	}
}

func (f *fanout) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
	}
}

// takeFatal reports the accumulated verdict: hard failures beat
// saturation (a dead fleet is not "retry later"), saturation maps to
// 429 with the largest Retry-After any shard hinted.
func (f *fanout) takeFatal() (status int, retry time.Duration, msg []byte, fatal bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return http.StatusBadGateway, 0, []byte(f.err.Error()), true
	}
	if f.busy {
		return http.StatusTooManyRequests, f.maxWait,
			[]byte(fmt.Sprintf("fleet saturated; retry after %v", f.maxWait)), true
	}
	return 0, 0, nil, false
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.mu.Lock()
	job := g.jobs[id]
	g.mu.Unlock()
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown result id %q", id))
		return
	}
	select {
	case <-job.done:
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"state": "running"})
		return
	}
	writeGridResult(w, job.status, job.retryAfter, job.body)
}

// handleHealthz reports the gateway's own state plus every shard's.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := g.fl.Monitor().Snapshot()
	type shardView struct {
		Target    string `json:"target"`
		Up        bool   `json:"up"`
		Draining  bool   `json:"draining"`
		Ejections uint64 `json:"ejections"`
		LastErr   string `json:"last_err,omitempty"`
	}
	views := make([]shardView, 0, len(shards))
	up := 0
	for _, s := range shards {
		if s.Up {
			up++
		}
		views = append(views, shardView{
			Target: s.Target, Up: s.Up, Draining: s.Draining,
			Ejections: s.Ejections, LastErr: s.LastErr,
		})
	}
	body := map[string]any{
		"ok":        !g.draining.Load() && up > 0,
		"draining":  g.draining.Load(),
		"ring_size": g.ringSize(),
		"shards_up": up,
		"shards":    views,
	}
	w.Header().Set("Content-Type", "application/json")
	if g.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
	} else if up == 0 {
		w.WriteHeader(http.StatusBadGateway)
	}
	json.NewEncoder(w).Encode(body)
}

// handleMetrics serves the gateway's own counters plus the
// fleet-aggregated view: per-shard up/ejection gauges and the summed
// shard samples (cache traffic, pool reuse, cells served) under a
// fleet_ prefix, so one scrape shows the whole tier.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.reg.Gauge("gate/ring_size").Set(int64(g.ringSize()))
	for i, s := range g.fl.Monitor().Snapshot() {
		upVal := int64(0)
		if s.Up {
			upVal = 1
		}
		g.reg.Gauge(fmt.Sprintf("gate/shard%d/up", i)).Set(upVal)
		g.reg.Counter(fmt.Sprintf("gate/shard%d/ejections", i)).Set(s.Ejections)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := g.reg.WriteProm(w); err != nil {
		g.reg.Counter("gate/metrics_errors").Inc()
		return
	}
	agg := g.fl.MetricsAll()
	names := make([]string, 0, len(agg))
	for name := range agg {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# Fleet-aggregated samples (summed across reachable shards).\n")
	for _, name := range names {
		fmt.Fprintf(w, "fleet_%s %g\n", name, agg[name])
	}
}

func (g *Gateway) ringSize() int { return g.fl.Monitor().Ring().Size() }

func (g *Gateway) baseOptions() sim.Options {
	if g.cfg.BaseOptions != nil {
		return *g.cfg.BaseOptions
	}
	return sim.DefaultOptions()
}

// newJob and finishJob mirror the single daemon's bounded async-result
// retention.
func (g *Gateway) newJob() (*gridJob, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nextID++
	id := fmt.Sprintf("g%06d", g.nextID)
	job := &gridJob{done: make(chan struct{})}
	g.jobs[id] = job
	g.order = append(g.order, id)
	return job, id
}

func (g *Gateway) finishJob(id string, job *gridJob, status int, retry time.Duration, body []byte) {
	g.mu.Lock()
	job.status, job.retryAfter, job.body = status, retry, body
	finished := 0
	for _, jid := range g.order {
		if j := g.jobs[jid]; j != nil && (j == job || jobDone(j)) {
			finished++
		}
	}
	for i := 0; i < len(g.order) && finished > maxFinishedJobs; {
		jid := g.order[i]
		j := g.jobs[jid]
		if j != nil && j != job && jobDone(j) {
			delete(g.jobs, jid)
			g.order = append(g.order[:i], g.order[i+1:]...)
			finished--
			continue
		}
		i++
	}
	g.mu.Unlock()
	close(job.done)
}

func jobDone(j *gridJob) bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func knownExperiment(id string) bool {
	for _, k := range experiments.All {
		if k == id {
			return true
		}
	}
	return false
}

func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "", "full":
		return workload.ScaleFull, nil
	case "test":
		return workload.ScaleTest, nil
	}
	return 0, fmt.Errorf("bad scale %q (want test or full)", s)
}

func scaleName(s workload.Scale) string {
	if s == workload.ScaleTest {
		return "test"
	}
	return "full"
}

func retryAfterSecs(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 0 {
		secs = 0
	}
	return secs
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// sleepCtx sleeps for d or until ctx ends; false means the context won.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
