package stats

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("speedup")
	c.Add("inorder", 1.0)
	c.Add("sst", 4.0)
	c.AddSeparator("--")
	var sb strings.Builder
	c.Fprint(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "speedup") {
		t.Error("missing title")
	}
	// sst's bar must be 4x the inorder bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	inBar := strings.Count(lines[1], "█")
	sstBar := strings.Count(lines[2], "█")
	if sstBar != 40 || inBar != 10 {
		t.Errorf("bars = %d/%d, want 10/40", inBar, sstBar)
	}
}

func TestBarChartZeroAndTinyWidth(t *testing.T) {
	c := NewBarChart("z")
	c.Add("a", 0)
	var sb strings.Builder
	c.Fprint(&sb, 1) // clamped to minimum
	if !strings.Contains(sb.String(), "a") {
		t.Error("zero-value bar missing label")
	}
}

func TestChartsFromTable(t *testing.T) {
	tbl := NewTable("fig", "workload", "inorder", "sst", "notes")
	tbl.AddRow("oltp", 1.0, 4.5, "text")
	tbl.AddRow("jbb", 1.0, 5.2, "text")
	charts := ChartsFromTable(tbl)
	if len(charts) != 2 {
		t.Fatalf("charts = %d", len(charts))
	}
	if charts[0].Len() != 2 { // two numeric columns; "notes" skipped
		t.Errorf("bars = %d, want 2", charts[0].Len())
	}
	var sb strings.Builder
	charts[1].Fprint(&sb, 20)
	if !strings.Contains(sb.String(), "jbb") || !strings.Contains(sb.String(), "sst") {
		t.Errorf("chart output wrong:\n%s", sb.String())
	}
}

func TestChartsFromTableNoNumeric(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x", "y")
	if charts := ChartsFromTable(tbl); charts != nil {
		t.Errorf("expected nil, got %d charts", len(charts))
	}
}
