package stats

import (
	"reflect"
	"testing"
)

// fill loads a histogram with a fixed mix of in-range, boundary and
// overflowing observations.
func fill(h *Hist) {
	h.Add(0)
	h.Add(3)
	h.AddN(7, 4)
	h.Add(9999) // clamps into the overflow bucket, max stays exact
}

// histEqual compares every observable surface of two histograms.
func histEqual(t *testing.T, label string, got, want *Hist) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Errorf("%s: Count = %d, want %d", label, got.Count(), want.Count())
	}
	if got.Mean() != want.Mean() {
		t.Errorf("%s: Mean = %v, want %v", label, got.Mean(), want.Mean())
	}
	if got.Max() != want.Max() {
		t.Errorf("%s: Max = %d, want %d", label, got.Max(), want.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Errorf("%s: Quantile(%v) = %d, want %d", label, q, got.Quantile(q), want.Quantile(q))
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: internal state differs: got %+v, want %+v", label, got, want)
	}
}

// TestHistResetIndistinguishableFromFresh proves the pool-path contract:
// after Reset, a used histogram behaves exactly like a fresh one — empty
// reads, then identical behaviour when refilled, including Merge in both
// directions.
func TestHistResetIndistinguishableFromFresh(t *testing.T) {
	used := NewHist(16)
	fill(used)
	used.Reset()
	histEqual(t, "after reset", used, NewHist(16))

	if used.Count() != 0 || used.Mean() != 0 || used.Max() != 0 {
		t.Errorf("reset hist not empty: n=%d mean=%v max=%d", used.Count(), used.Mean(), used.Max())
	}
	if q := used.Quantile(0.5); q != 0 {
		t.Errorf("reset hist Quantile(0.5) = %d, want 0", q)
	}

	// Refill and compare against a genuinely fresh histogram.
	fresh := NewHist(16)
	fill(used)
	fill(fresh)
	histEqual(t, "refilled", used, fresh)

	// Merge into a reset histogram == merge into a fresh one.
	src := NewHist(16)
	src.AddN(5, 3)
	mergedReset := NewHist(16)
	fill(mergedReset)
	mergedReset.Reset()
	mergedReset.Merge(src)
	mergedFresh := NewHist(16)
	mergedFresh.Merge(src)
	histEqual(t, "merge after reset", mergedReset, mergedFresh)

	// Merging a reset histogram into another is a no-op.
	dst := NewHist(16)
	fill(dst)
	want := dst.Clone()
	empty := NewHist(16)
	fill(empty)
	empty.Reset()
	dst.Merge(empty)
	histEqual(t, "merge of reset hist", dst, want)
}

// TestHistResetKeepsAllocation pins the reason Reset exists: the bucket
// slice must be cleared in place, never reallocated.
func TestHistResetKeepsAllocation(t *testing.T) {
	h := NewHist(64)
	fill(h)
	before := &h.buckets[0]
	h.Reset()
	if &h.buckets[0] != before {
		t.Fatalf("Reset reallocated the bucket slice")
	}
	if allocs := testing.AllocsPerRun(100, h.Reset); allocs != 0 {
		t.Fatalf("Reset allocates %v times per call, want 0", allocs)
	}
}
