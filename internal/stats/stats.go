// Package stats provides the counters, histograms and table formatting
// used by the core models and the experiment harness.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Hist is a histogram over small non-negative integer values (queue
// occupancies, burst lengths). Values beyond the configured maximum are
// clamped into the overflow bucket.
type Hist struct {
	buckets []uint64
	n       uint64
	sum     uint64
	max     int // largest observed value (pre-clamp)
}

// NewHist returns a histogram tracking values 0..limit (limit clamps).
func NewHist(limit int) *Hist {
	if limit < 1 {
		limit = 1
	}
	return &Hist{buckets: make([]uint64, limit+1)}
}

// Add records one observation.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v > h.max {
		h.max = v
	}
	h.sum += uint64(v)
	h.n++
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
}

// AddN records n identical observations of v, exactly as n Add(v) calls
// would. Used by the fast-forward path to bulk-credit a run of stalled
// cycles whose occupancies are constant.
func (h *Hist) AddN(v int, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > h.max {
		h.max = v
	}
	h.sum += uint64(v) * n
	h.n += n
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v] += n
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the average observation (0 with no samples).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed value.
func (h *Hist) Max() int { return h.max }

// Merge folds other's observations into h. Buckets beyond h's limit
// clamp into h's overflow bucket (consistent with Add), so merging a
// wider histogram into a narrower one loses only tail resolution, never
// counts. The observed max and the exact sum are preserved.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for v, cnt := range other.buckets {
		if cnt == 0 {
			continue
		}
		b := v
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
		h.buckets[b] += cnt
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears every observation in place — bucket counts, sample
// count, sum and observed max — without reallocating the bucket slice,
// so a pooled simulator can reuse its histograms across runs with zero
// construction cost. A reset histogram is indistinguishable from a
// freshly constructed one with the same limit.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.n = 0
	h.sum = 0
	h.max = 0
}

// Clone returns an independent copy of the histogram.
func (h *Hist) Clone() *Hist {
	return &Hist{
		buckets: append([]uint64(nil), h.buckets...),
		n:       h.n,
		sum:     h.sum,
		max:     h.max,
	}
}

// histJSON is the wire shape of a histogram: the full bucket vector
// plus the derived aggregates, so an unmarshalled histogram answers
// Mean/Max/Quantile/Count exactly like the original. The fleet tier
// ships per-cell statistics (which embed histograms) between shards and
// the rockgate router through this encoding.
type histJSON struct {
	Buckets []uint64 `json:"buckets"`
	N       uint64   `json:"n"`
	Sum     uint64   `json:"sum"`
	Max     int      `json:"max"`
}

// MarshalJSON encodes the histogram losslessly.
func (h *Hist) MarshalJSON() ([]byte, error) {
	return json.Marshal(histJSON{Buckets: h.buckets, N: h.n, Sum: h.sum, Max: h.max})
}

// UnmarshalJSON restores a histogram written by MarshalJSON. The result
// is observation-identical to the source: same bucket counts, sample
// count, sum and observed max.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var w histJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Buckets) == 0 {
		w.Buckets = make([]uint64, 2)
	}
	h.buckets, h.n, h.sum, h.max = w.Buckets, w.N, w.Sum, w.Max
	return nil
}

// Quantile returns the smallest bucket value v such that at least
// q (0..1) of observations are <= v — the nearest-rank quantile: the
// observation of rank ceil(q*n), clamped to [1, n]. The epsilon
// absorbs binary-float error in q*n (e.g. 0.95*20) so exact ranks stay
// exact.
func (h *Hist) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q*float64(h.n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.buckets) - 1
}

// Table accumulates rows for aligned text output: the shape in which the
// experiment harness prints each reproduced paper table/figure.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cells (for tests).
func (t *Table) Rows() [][]string { return t.rows }

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Pct returns 100*a/b, or 0 when b is zero.
func Pct(a, b uint64) float64 { return 100 * Ratio(a, b) }

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are skipped.
func GeoMean(vs []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// SortedKeys returns the map's keys in sorted order (for deterministic
// iteration when printing).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
