package stats

import (
	"encoding/json"
	"testing"
)

// TestHistJSONRoundTrip: a histogram restored from its JSON encoding is
// observation-identical to the source — same Count, Mean, Max and every
// quantile. The fleet tier ships per-cell histograms through this
// encoding, so any loss here would show up as cross-shard table drift.
func TestHistJSONRoundTrip(t *testing.T) {
	h := NewHist(16)
	for i := 0; i < 100; i++ {
		h.Add(i % 7)
	}
	h.Add(40)        // clamps into the overflow bucket, max stays 40
	h.AddN(3, 1000)  // bulk path
	enc, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Mean() != h.Mean() || back.Max() != h.Max() {
		t.Fatalf("aggregates differ: got (n=%d mean=%v max=%d) want (n=%d mean=%v max=%d)",
			back.Count(), back.Mean(), back.Max(), h.Count(), h.Mean(), h.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("quantile %v differs: %d vs %d", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// Re-encoding is stable.
	enc2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc2) != string(enc) {
		t.Errorf("re-encoding changed:\nfirst  %s\nsecond %s", enc, enc2)
	}
}

// TestHistJSONEmpty: an empty histogram survives the trip and stays
// usable (Add after unmarshal must not panic on a nil bucket slice).
func TestHistJSONEmpty(t *testing.T) {
	enc, err := json.Marshal(NewHist(4))
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 || back.Mean() != 0 {
		t.Fatalf("empty histogram came back with n=%d mean=%v", back.Count(), back.Mean())
	}
	back.Add(2)
	if back.Count() != 1 {
		t.Fatalf("restored histogram unusable: count %d after Add", back.Count())
	}

	// A zero-value JSON object must also restore to something usable.
	var fromNull Hist
	if err := json.Unmarshal([]byte(`{"buckets":null,"n":0,"sum":0,"max":0}`), &fromNull); err != nil {
		t.Fatal(err)
	}
	fromNull.Add(5)
	if fromNull.Count() != 1 {
		t.Fatalf("null-bucket histogram unusable: count %d", fromNull.Count())
	}
}
