package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist(8)
	for _, v := range []int{0, 1, 1, 2, 3, 20, -5} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Max() != 20 {
		t.Errorf("max = %d", h.Max())
	}
	want := float64(0+1+1+2+3+20+0) / 7
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Errorf("mean = %f, want %f", h.Mean(), want)
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(100)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q < 49 || q > 52 {
		t.Errorf("p50 = %d", q)
	}
	if q := h.Quantile(0.99); q < 98 {
		t.Errorf("p99 = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("p0 = %d", q)
	}
	empty := NewHist(4)
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty hist not zero")
	}
}

// TestHistQuantileBoundaries pins the nearest-rank definition at the
// small-n boundary cases that the original implementation got wrong:
// with two observations, the median is the FIRST (rank ceil(0.5*2)=1),
// not the second.
func TestHistQuantileBoundaries(t *testing.T) {
	one := NewHist(10)
	one.Add(7)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got != 7 {
			t.Errorf("n=1 Quantile(%g) = %d, want 7", q, got)
		}
	}

	two := NewHist(10)
	two.Add(3)
	two.Add(9)
	cases := []struct {
		q    float64
		want int
	}{
		{0, 3},   // rank clamps up to 1
		{0.5, 3}, // ceil(0.5*2) = 1 -> first observation
		{0.51, 9},
		{1, 9}, // rank n -> last observation
	}
	for _, c := range cases {
		if got := two.Quantile(c.q); got != c.want {
			t.Errorf("n=2 Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}

	// Exact ranks must not be perturbed by binary-float error in q*n:
	// 0.95*20 = 19.000000000000004 in float64, rank must stay 19.
	twenty := NewHist(30)
	for v := 1; v <= 20; v++ {
		twenty.Add(v)
	}
	if got := twenty.Quantile(0.95); got != 19 {
		t.Errorf("n=20 Quantile(0.95) = %d, want 19", got)
	}
}

func TestHistClone(t *testing.T) {
	h := NewHist(8)
	h.Add(2)
	h.Add(5)
	c := h.Clone()
	h.Add(7)
	if c.Count() != 2 || c.Max() != 5 {
		t.Errorf("clone mutated: count=%d max=%d", c.Count(), c.Max())
	}
	if h.Count() != 3 {
		t.Errorf("original count = %d", h.Count())
	}
}

// TestHistMeanProperty: the histogram mean matches a direct average for
// any in-range sample set.
func TestHistMeanProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHist(255)
		sum := 0
		for _, v := range vals {
			h.Add(int(v))
			sum += int(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-float64(sum)/float64(len(vals))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("b", 123456)
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if tbl.NumRows() != 2 || len(tbl.Rows()) != 2 {
		t.Error("row accessors wrong")
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(1, 0) != 0 || Pct(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
	if Ratio(1, 4) != 0.25 || Pct(1, 4) != 25 {
		t.Error("ratio wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	// Zeros and negatives are skipped.
	if g := GeoMean([]float64{0, -3, 9}); math.Abs(g-9) > 1e-9 {
		t.Errorf("geomean = %f", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Errorf("keys = %v", ks)
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist(10)
	for _, v := range []int{1, 2, 3} {
		a.Add(v)
	}
	b := NewHist(10)
	for _, v := range []int{4, 5} {
		b.Add(v)
	}
	a.Merge(b)
	if a.Count() != 5 {
		t.Errorf("count = %d, want 5", a.Count())
	}
	if got := a.Mean(); got != 3 {
		t.Errorf("mean = %g, want 3", got)
	}
	if a.Max() != 5 {
		t.Errorf("max = %d, want 5", a.Max())
	}
	if got := a.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}

	// Merging a wider histogram clamps its tail into the overflow bucket
	// but preserves counts, sum and max exactly.
	narrow := NewHist(4)
	narrow.Add(1)
	wide := NewHist(100)
	wide.Add(50)
	wide.Add(80)
	narrow.Merge(wide)
	if narrow.Count() != 3 {
		t.Errorf("clamped count = %d, want 3", narrow.Count())
	}
	if narrow.Max() != 80 {
		t.Errorf("clamped max = %d, want 80", narrow.Max())
	}
	if got := narrow.Mean(); got != (1+50+80)/3.0 {
		t.Errorf("clamped mean = %g, want %g", got, (1+50+80)/3.0)
	}
	if got := narrow.Quantile(0.99); got != 4 {
		t.Errorf("clamped p99 = %d, want overflow bucket 4", got)
	}

	// nil and empty merges are no-ops.
	before := narrow.Count()
	narrow.Merge(nil)
	narrow.Merge(NewHist(8))
	if narrow.Count() != before {
		t.Errorf("no-op merge changed count: %d -> %d", before, narrow.Count())
	}
}
