package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BarChart renders labeled horizontal bars, scaled to the largest value.
// It is how the benchmark harness draws figure-shaped output in a
// terminal.
type BarChart struct {
	Title string
	rows  []barRow
	max   float64
}

type barRow struct {
	label string
	value float64
	ok    bool // numeric? non-numeric rows render as separators
}

// NewBarChart creates an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title}
}

// Add appends one bar.
func (c *BarChart) Add(label string, v float64) {
	c.rows = append(c.rows, barRow{label: label, value: v, ok: true})
	if v > c.max {
		c.max = v
	}
}

// AddSeparator appends a visual group separator.
func (c *BarChart) AddSeparator(label string) {
	c.rows = append(c.rows, barRow{label: label})
}

// Len returns the number of bars (separators included).
func (c *BarChart) Len() int { return len(c.rows) }

// Fprint renders the chart with bars up to width characters.
func (c *BarChart) Fprint(w io.Writer, width int) {
	if width < 8 {
		width = 8
	}
	labelW := 0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for _, r := range c.rows {
		if !r.ok {
			fmt.Fprintf(w, "%-*s\n", labelW, r.label)
			continue
		}
		n := 0
		if c.max > 0 {
			n = int(r.value / c.max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%-*s %8.3f %s\n", labelW, r.label, r.value, strings.Repeat("█", n))
	}
}

// ChartsFromTable converts a table into one chart per data row: the
// first column is the group label and every numeric column becomes a
// bar labeled with its header. Non-numeric cells are skipped. Returns
// nil when the table has no numeric columns.
func ChartsFromTable(t *Table) []*BarChart {
	var charts []*BarChart
	for _, row := range t.Rows() {
		if len(row) == 0 {
			continue
		}
		ch := NewBarChart(fmt.Sprintf("%s — %s", t.Title, row[0]))
		for i := 1; i < len(row) && i < len(t.Headers); i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				continue
			}
			ch.Add(t.Headers[i], v)
		}
		if ch.Len() > 0 {
			charts = append(charts, ch)
		}
	}
	return charts
}
