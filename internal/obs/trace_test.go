package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rocksim/internal/obs/obstest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTrace exercises every event shape: overlapping spans (forcing a
// second lane), B/E pairs, an abandoned Begin closed by CloseOpen, an
// ignored duplicate Begin, an ignored unmatched End, a zero-length span,
// instants and counter samples.
func buildTrace() *Trace {
	tr := NewTrace()
	tr.Span(0, 10, "mode", "normal")
	tr.Span(10, 14, "mode", "spec")
	tr.Begin(2, "checkpoint", "ckpt", 1)
	tr.Begin(2, "checkpoint", "dup", 1) // ignored: id 1 already open
	tr.Begin(5, "checkpoint", "ckpt", 2)
	tr.End(8, "checkpoint", 1)
	tr.End(8, "checkpoint", 99) // ignored: never opened
	tr.Begin(9, "checkpoint", "ckpt", 3)
	tr.Span(4, 4, "memory", "miss->L2") // zero length: clamped to 1 cycle
	tr.Span(6, 13, "memory", "miss->DRAM")
	tr.Instant(7, "rollback", "branch", "pc=0x40")
	tr.CounterSample(0, "sst/dq", 0)
	tr.CounterSample(8, "sst/dq", 5)
	tr.End(12, "checkpoint", 2)
	tr.CloseOpen(14) // closes checkpoint id 3
	return tr
}

func TestObsChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run TestObsChromeGolden -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestObsChromeContract(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	cats := obstest.CheckChrome(t, buf.Bytes())
	for _, want := range []string{"mode", "checkpoint", "memory", "rollback"} {
		if !cats[want] {
			t.Errorf("category %q missing from trace", want)
		}
	}

	// The three checkpoint spans overlap pairwise at most two deep, so
	// the checkpoint category must occupy exactly two lanes.
	var f obstest.ChromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "B" && e.Cat == "checkpoint" {
			lanes[e.Tid] = true
		}
	}
	if len(lanes) != 2 {
		t.Errorf("checkpoint lanes = %d, want 2", len(lanes))
	}
}

func TestObsChromeUnclosedDropped(t *testing.T) {
	tr := NewTrace()
	tr.Begin(3, "checkpoint", "ckpt", 7)
	// No End, no CloseOpen: the span must not be exported.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f obstest.ChromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	for _, e := range f.TraceEvents {
		if e.Ph == "B" || e.Ph == "E" {
			t.Errorf("unclosed span leaked into output: %+v", e)
		}
	}
}
