package obs

import (
	"bytes"
	"strings"
	"testing"

	"rocksim/internal/stats"
)

func TestObsRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a/b") != c {
		t.Error("Counter not idempotent")
	}
	c.Set(3)
	if c.Value() != 3 {
		t.Errorf("Set: counter = %d, want 3", c.Value())
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Set(2)
	if g.Value() != 2 || g.High() != 7 {
		t.Errorf("gauge = %d high %d, want 2 high 7", g.Value(), g.High())
	}

	h := r.Hist("h", 16)
	h.Add(3)
	h.Add(100) // clamps
	if r.Hist("h", 999) != h {
		t.Error("Hist not idempotent")
	}
	if h.Count() != 2 || h.Max() != 100 {
		t.Errorf("hist count %d max %d", h.Count(), h.Max())
	}

	tl := r.Timeline("t")
	tl.Sample(0, 1)
	tl.Sample(1, 2) // decimated away (default every = 64)
	tl.Sample(64, 3)
	if tl.Len() != 2 {
		t.Errorf("timeline len = %d, want 2", tl.Len())
	}
	if cyc, v := tl.Point(1); cyc != 64 || v != 3 {
		t.Errorf("point = (%d,%d), want (64,3)", cyc, v)
	}
}

func TestObsPutHistMerges(t *testing.T) {
	r := NewRegistry()
	a := stats.NewHist(8)
	a.Add(1)
	a.Add(2)
	r.PutHist("x", a)
	b := stats.NewHist(8)
	b.Add(3)
	r.PutHist("x", b)
	snap := r.Snapshot()
	hs, ok := snap.Histograms["x"]
	if !ok {
		t.Fatal("histogram x missing from snapshot")
	}
	if hs.Count != 3 || hs.Max != 3 {
		t.Errorf("merged hist count %d max %d, want 3 and 3", hs.Count, hs.Max)
	}
}

func TestObsSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insert in different orders to prove output ordering is by key.
		for _, n := range []string{"z", "a", "m"} {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Gauge("g").Set(1)
		r.Hist("h", 4).Add(2)
		r.Timeline("t").Sample(0, 9)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two identical registries marshal to different JSON")
	}
	if !strings.Contains(b1.String(), `"a": 1`) {
		t.Errorf("unexpected JSON:\n%s", b1.String())
	}
}

func TestObsWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("core/cycles").Set(42)
	r.Gauge("core/dq_highwater").Set(7)
	r.Hist("mem/load_miss_latency", 64).Add(10)
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rocksim_core_cycles counter",
		"rocksim_core_cycles 42",
		"rocksim_core_dq_highwater_high 7",
		`rocksim_mem_load_miss_latency{quantile="0.5"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

// stubSink records calls, for Tee tests.
type stubSink struct{ events int }

func (s *stubSink) Attach(string, []string)                    {}
func (s *stubSink) CycleState(uint64, string, int, int, []int) {}
func (s *stubSink) Event(uint64, string, string, string)       { s.events++ }
func (s *stubSink) SpanBegin(uint64, string, string, uint64)   {}
func (s *stubSink) SpanEnd(uint64, string, uint64)             {}
func (s *stubSink) Span(uint64, uint64, string, string)        {}

func TestObsTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils should be nil")
	}
	a := &stubSink{}
	if Tee(nil, a) != Sink(a) {
		t.Error("Tee of one sink should be that sink")
	}
	b := &stubSink{}
	tt := Tee(a, nil, b)
	tt.Event(0, "c", "n", "")
	if a.events != 1 || b.events != 1 {
		t.Errorf("tee fan-out: a=%d b=%d, want 1 and 1", a.events, b.events)
	}
}

func TestObsCollectorModeSpans(t *testing.T) {
	tr := NewTrace()
	r := NewRegistry()
	r.SetSampleEvery(1)
	col := NewCollector(tr, r)
	col.Attach("sst", []string{"dq"})
	occ := []int{3}
	col.CycleState(0, "normal", 1, 0, occ)
	col.CycleState(1, "normal", 1, 0, occ)
	col.CycleState(2, "spec", 0, 1, occ)
	col.CycleState(3, "normal", 1, 0, occ)
	col.Flush(4)

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Three mode spans: normal [0,2), spec [2,3), normal [3,4).
	if got := strings.Count(out, `"ph":"B"`); got != 3 {
		t.Errorf("span begins = %d, want 3:\n%s", got, out)
	}
	// Occupancy flows into both the registry timeline and counter tracks.
	if tl := r.Timeline("sst/occ/dq"); tl.Len() != 4 {
		t.Errorf("timeline samples = %d, want 4", tl.Len())
	}
	if got := strings.Count(out, `"ph":"C"`); got != 4 {
		t.Errorf("counter samples = %d, want 4", got)
	}
}
