// Package obstest provides shared assertions for the Chrome trace_event
// exporter, used by the obs unit tests and the sim integration tests.
package obstest

import (
	"encoding/json"
	"testing"
)

// ChromeFile mirrors the exporter's output shape for decoding in tests.
type ChromeFile struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one decoded trace_event record.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// CheckChrome decodes a Chrome trace and asserts the exporter's
// contract: valid JSON, monotonically non-decreasing ts (metadata
// aside), and balanced, properly nested B/E pairs per tid. It returns
// the set of span/instant categories seen.
func CheckChrome(t testing.TB, data []byte) map[string]bool {
	t.Helper()
	var f ChromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := map[string]bool{}
	var lastTS uint64
	haveTS := false
	depth := map[int]int{}      // per-tid open-span depth
	stack := map[int][]string{} // per-tid open-span names, for nesting
	for i, e := range f.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if haveTS && e.Ts < lastTS {
			t.Errorf("event %d (%s %q): ts %d < previous %d", i, e.Ph, e.Name, e.Ts, lastTS)
		}
		lastTS, haveTS = e.Ts, true
		if e.Cat != "" {
			cats[e.Cat] = true
		}
		switch e.Ph {
		case "B":
			depth[e.Tid]++
			stack[e.Tid] = append(stack[e.Tid], e.Name)
		case "E":
			depth[e.Tid]--
			if depth[e.Tid] < 0 {
				t.Fatalf("event %d: E without matching B on tid %d", i, e.Tid)
			}
			s := stack[e.Tid]
			if top := s[len(s)-1]; top != e.Name {
				t.Errorf("event %d: E %q closes B %q on tid %d (mis-nested)", i, e.Name, top, e.Tid)
			}
			stack[e.Tid] = s[:len(s)-1]
		case "i", "C":
		default:
			t.Errorf("event %d: unexpected ph %q", i, e.Ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed B events", tid, d)
		}
	}
	return cats
}
