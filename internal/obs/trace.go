package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Trace accumulates microarchitectural events for export in the Chrome
// trace_event JSON format (load the file in chrome://tracing or
// https://ui.perfetto.dev). Simulated cycles are written as microsecond
// timestamps, so one trace "µs" is one core cycle.
//
// Three event shapes are supported:
//
//   - spans — durations such as mode residency, checkpoint lifetimes
//     and memory-miss latencies, exported as balanced B/E pairs. Spans
//     of one category that overlap in time are spread across lanes
//     (trace threads) so the viewer never sees mis-nested B/E pairs;
//   - instants — point events (rollbacks, scout entries, tx aborts);
//   - counter samples — numeric tracks (queue occupancies), exported as
//     "C" events.
//
// All methods are safe for concurrent use; event ordering in the
// export is by timestamp, so concurrent publishers of disjoint time
// ranges (e.g. per-run collectors flushed after each run) still
// produce deterministic output. Interleaved publishing at equal
// timestamps falls back to arrival order — keep one Trace per run and
// publish sequentially when byte-determinism matters.
type Trace struct {
	mu       sync.Mutex
	spans    []span
	open     map[spanKey]int // index into spans with end unset
	instants []instant
	samples  []counterSample
}

type spanKey struct {
	cat string
	id  uint64
}

type span struct {
	cat, name  string
	start, end uint64
	closed     bool
	seq        int // insertion order, for deterministic sorting
}

type instant struct {
	ts        uint64
	cat, name string
	detail    string
	seq       int
}

type counterSample struct {
	ts   uint64
	name string
	v    int64
	seq  int
}

// NewTrace returns an empty trace buffer.
func NewTrace() *Trace {
	return &Trace{open: make(map[spanKey]int)}
}

func (t *Trace) nextSeq() int {
	return len(t.spans) + len(t.instants) + len(t.samples)
}

// Begin opens a span identified by (cat, id). A Begin for an id that is
// already open is ignored.
func (t *Trace) Begin(now uint64, cat, name string, id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := spanKey{cat, id}
	if _, ok := t.open[k]; ok {
		return
	}
	t.open[k] = len(t.spans)
	t.spans = append(t.spans, span{cat: cat, name: name, start: now, seq: t.nextSeq()})
}

// End closes the span opened under (cat, id). Ends without a matching
// Begin are ignored.
func (t *Trace) End(now uint64, cat string, id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := spanKey{cat, id}
	i, ok := t.open[k]
	if !ok {
		return
	}
	delete(t.open, k)
	t.spans[i].end = now
	t.spans[i].closed = true
}

// Span records a completed interval [start, end).
func (t *Trace) Span(start, end uint64, cat, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, span{cat: cat, name: name, start: start, end: end, closed: true, seq: t.nextSeq()})
}

// Instant records a point event.
func (t *Trace) Instant(ts uint64, cat, name, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instants = append(t.instants, instant{ts: ts, cat: cat, name: name, detail: detail, seq: t.nextSeq()})
}

// CounterSample records one point of a numeric track.
func (t *Trace) CounterSample(ts uint64, name string, v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples = append(t.samples, counterSample{ts: ts, name: name, v: v, seq: t.nextSeq()})
}

// CloseOpen closes every still-open span at the given end time (used at
// the end of a run for checkpoints that never committed).
func (t *Trace) CloseOpen(end uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, i := range t.open {
		t.spans[i].end = end
		t.spans[i].closed = true
		delete(t.open, k)
	}
}

// Events returns the number of buffered events (for tests and sizing).
func (t *Trace) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans) + len(t.instants) + len(t.samples)
}

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// instantsTid is the trace thread carrying point events; span lanes are
// numbered from laneBase upward, one block of lanes per category.
const (
	instantsTid = 0
	laneBase    = 1
)

// WriteChrome writes the trace in Chrome trace_event JSON object format.
// Guarantees (asserted by the exporter tests): the output is valid JSON;
// ts is monotonically non-decreasing across the traceEvents array
// (metadata aside); every B has a matching E on the same tid, properly
// nested because overlapping spans of one category are assigned to
// distinct lanes.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Deterministic span order: by start cycle, then insertion order.
	spans := make([]span, 0, len(t.spans))
	for _, s := range t.spans {
		if s.closed {
			if s.end <= s.start {
				s.end = s.start + 1 // avoid zero-length B/E pairs
			}
			spans = append(spans, s)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].seq < spans[j].seq
	})

	// Assign lanes: per category, the lowest lane free at span start.
	// Category lane blocks are allocated in order of first appearance,
	// growing as concurrency demands.
	type catLanes struct {
		base int
		busy []uint64 // per-lane busy-until
	}
	cats := map[string]*catLanes{}
	catOrder := []string{}
	nextTid := laneBase
	laneOf := make([]int, len(spans))
	// Two passes: first size each category's lane count, then assign
	// contiguous tid blocks. Pass one computes lanes per category.
	laneCount := map[string]int{}
	{
		busyByCat := map[string][]uint64{}
		for i, s := range spans {
			busy := busyByCat[s.cat]
			lane := -1
			for l, until := range busy {
				if until <= s.start {
					lane = l
					break
				}
			}
			if lane == -1 {
				lane = len(busy)
				busy = append(busy, 0)
			}
			busy[lane] = s.end
			busyByCat[s.cat] = busy
			laneOf[i] = lane
			if lane+1 > laneCount[s.cat] {
				laneCount[s.cat] = lane + 1
			}
			if _, ok := cats[s.cat]; !ok {
				cats[s.cat] = &catLanes{}
				catOrder = append(catOrder, s.cat)
			}
		}
	}
	for _, c := range catOrder {
		cats[c].base = nextTid
		nextTid += laneCount[c]
	}

	type tsEvent struct {
		ev   chromeEvent
		ts   uint64
		rank int // at equal ts: E(0) before B(1) before i/C(2)
		seq  int
	}
	evs := make([]tsEvent, 0, 2*len(spans)+len(t.instants)+len(t.samples))
	for i, s := range spans {
		tid := cats[s.cat].base + laneOf[i]
		evs = append(evs,
			tsEvent{ts: s.start, rank: 1, seq: s.seq, ev: chromeEvent{Name: s.name, Cat: s.cat, Ph: "B", Ts: s.start, Tid: tid}},
			tsEvent{ts: s.end, rank: 0, seq: s.seq, ev: chromeEvent{Name: s.name, Cat: s.cat, Ph: "E", Ts: s.end, Tid: tid}},
		)
	}
	for _, in := range t.instants {
		ev := chromeEvent{Name: in.name, Cat: in.cat, Ph: "i", Ts: in.ts, Tid: instantsTid, S: "t"}
		if in.detail != "" {
			ev.Args = map[string]any{"detail": in.detail}
		}
		evs = append(evs, tsEvent{ts: in.ts, rank: 2, seq: in.seq, ev: ev})
	}
	for _, cs := range t.samples {
		ev := chromeEvent{Name: cs.name, Ph: "C", Ts: cs.ts, Tid: instantsTid, Args: map[string]any{"value": cs.v}}
		evs = append(evs, tsEvent{ts: cs.ts, rank: 2, seq: cs.seq, ev: ev})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].ts != evs[j].ts {
			return evs[i].ts < evs[j].ts
		}
		if evs[i].rank != evs[j].rank {
			return evs[i].rank < evs[j].rank
		}
		return evs[i].seq < evs[j].seq
	})

	// Metadata names the lanes, then the time-ordered events follow.
	out := make([]chromeEvent, 0, len(evs)+len(catOrder)+1)
	out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Tid: instantsTid,
		Args: map[string]any{"name": "events"}})
	for _, c := range catOrder {
		cl := cats[c]
		for l := 0; l < laneCount[c]; l++ {
			name := c
			if laneCount[c] > 1 {
				name = fmt.Sprintf("%s #%d", c, l)
			}
			out = append(out, chromeEvent{Name: "thread_name", Ph: "M", Tid: cl.base + l,
				Args: map[string]any{"name": name}})
		}
	}
	for _, e := range evs {
		out = append(out, e.ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"generator": "rocksim", "timeUnit": "1 ts = 1 core cycle"},
	})
}
