package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// fakeClock returns a clock that advances a fixed step per reading —
// the injection point that makes span exports byte-deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	var n int64
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracerClock(fakeClock(10 * time.Microsecond))
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "request")
	if root == nil {
		t.Fatal("StartSpan returned nil with a tracer installed")
	}
	cctx, child := StartSpan(ctx, "compute")
	child.SetAttr("kind", "sst")
	_, grand := StartSpan(cctx, "sim-run")
	grand.End()
	child.End()
	root.End()

	snaps := tr.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("got %d spans, want 3", len(snaps))
	}
	if snaps[0].Name != "request" || snaps[0].Parent != 0 {
		t.Errorf("root = %+v, want name request parent 0", snaps[0])
	}
	if snaps[1].Name != "compute" || snaps[1].Parent != snaps[0].ID {
		t.Errorf("child = %+v, want parent %d", snaps[1], snaps[0].ID)
	}
	if snaps[2].Name != "sim-run" || snaps[2].Parent != snaps[1].ID {
		t.Errorf("grandchild = %+v, want parent %d", snaps[2], snaps[1].ID)
	}
	if len(snaps[1].Attrs) != 1 || snaps[1].Attrs[0] != (Attr{"kind", "sst"}) {
		t.Errorf("child attrs = %v, want [{kind sst}]", snaps[1].Attrs)
	}
	// Parent intervals cover their children.
	if snaps[1].StartUs < snaps[0].StartUs ||
		snaps[1].StartUs+snaps[1].DurUs > snaps[0].StartUs+snaps[0].DurUs {
		t.Errorf("child [%d,+%d] escapes root [%d,+%d]",
			snaps[1].StartUs, snaps[1].DurUs, snaps[0].StartUs, snaps[0].DurUs)
	}
}

func TestSpanNilSafety(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "untraced")
	if s != nil {
		t.Fatal("StartSpan without a tracer must return a nil span")
	}
	// Every Span method must be a no-op on nil, and nested StartSpan
	// must keep returning nil spans.
	s.SetAttr("k", "v")
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Error("nil span accessors must return zero values")
	}
	if _, c := StartSpan(ctx, "child"); c != nil {
		t.Error("nested StartSpan without a tracer must stay nil")
	}
	if SpanFrom(ctx) != nil || TracerFrom(ctx) != nil {
		t.Error("untraced context must carry no tracer or span")
	}
	var tr *Tracer
	if tr.Start("x") != nil || tr.Snapshot() != nil {
		t.Error("nil tracer must yield nil spans and snapshots")
	}
}

// TestSpanExportDeterminism pins the contract the service determinism
// test builds on: identical span sequences against a fake clock export
// byte-identical flat and Chrome JSON.
func TestSpanExportDeterminism(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracerClock(fakeClock(7 * time.Microsecond))
		ctx := WithTracer(context.Background(), tr)
		ctx, root := StartSpan(ctx, "request")
		root.SetAttr("id", "r-1")
		_, q := StartSpan(ctx, "queue-wait")
		q.End()
		_, c := StartSpan(ctx, "compute")
		c.End()
		root.End()
		return tr
	}
	var a, b, ca, cb bytes.Buffer
	ta, tb := build(), build()
	if err := ta.WriteSpans(&a); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteSpans(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("flat exports differ:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	if err := ta.WriteChrome(&ca); err != nil {
		t.Fatal(err)
	}
	if err := tb.WriteChrome(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Errorf("chrome exports differ:\n%s\nvs\n%s", ca.Bytes(), cb.Bytes())
	}
}

// TestSpanChromeShape asserts every exported event is an "X" complete
// event carrying ts, dur, pid and tid — the fields the trace-smoke
// linter requires.
func TestSpanChromeShape(t *testing.T) {
	tr := NewTracerClock(fakeClock(5 * time.Microsecond))
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "request")
	_, c := StartSpan(ctx, "compute")
	c.SetAttr("cycles", "100")
	c.End()
	root.End()
	// A second root lands on its own trace thread.
	r2 := tr.Start("request-2")
	r2.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(f.TraceEvents))
	}
	tids := map[float64]bool{}
	for i, ev := range f.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("event %d: ph = %v, want X", i, ev["ph"])
		}
		for _, k := range []string{"ts", "dur", "pid", "tid"} {
			if _, ok := ev[k].(float64); !ok {
				t.Errorf("event %d (%v): missing numeric %q", i, ev["name"], k)
			}
		}
		if d, _ := ev["dur"].(float64); d < 1 {
			t.Errorf("event %d: dur %v < 1", i, d)
		}
		tids[ev["tid"].(float64)] = true
	}
	if len(tids) != 2 {
		t.Errorf("two roots should occupy two trace threads, got tids %v", tids)
	}
}
