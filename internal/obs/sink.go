package obs

// Sink receives the event stream of a running model. It generalizes the
// SST core's original Probe hook so that every core model and the memory
// hierarchy can be observed through one interface. All hooks are
// optional-cost: a model emits nothing when its sink is nil, and the
// per-cycle hook passes only interned strings and a scratch slice, so
// the enabled path allocates nothing per cycle either.
//
// Conventions:
//
//   - cat is a small closed set of event categories ("mode",
//     "checkpoint", "memory", "tx", "scout", "commit", "rollback", ...);
//   - ids correlate SpanBegin/SpanEnd pairs within a category (the SST
//     core uses the checkpoint's opening sequence number);
//   - Span reports an interval whose start and end are both known at
//     emission time (memory-miss latencies).
type Sink interface {
	// Attach is called once when the sink is installed on a model, with
	// the model's name and the names of the occupancy channels it will
	// pass to CycleState.
	Attach(model string, occNames []string)
	// CycleState is called at the end of every cycle. mode is the
	// model's operating mode ("" for modeless cores); executed and
	// replayed are the per-strand instruction counts for the cycle; occ
	// holds the occupancy channels declared by Attach. The slice is
	// scratch owned by the caller: sinks must not retain it.
	CycleState(now uint64, mode string, executed, replayed int, occ []int)
	// Event records an instantaneous named event.
	Event(now uint64, cat, name, detail string)
	// SpanBegin opens a duration identified by (cat, id).
	SpanBegin(now uint64, cat, name string, id uint64)
	// SpanEnd closes the duration opened under (cat, id).
	SpanEnd(now uint64, cat string, id uint64)
	// Span records a completed interval [start, end).
	Span(start, end uint64, cat, name string)
}

// BulkSink is an optional Sink extension for the fast-forward path: a
// model that skips a run of identical stalled cycles reports them in one
// call instead of one CycleState call per cycle. The contract is exact
// equivalence — CycleRun(start, end, mode, occ) must leave the sink in
// the state that calling CycleState(n, mode, 0, 0, occ) for every n in
// [start, end) would. EmitCycleRun falls back to exactly that loop for
// sinks that do not implement the extension, so bit-identity never
// depends on a sink opting in.
type BulkSink interface {
	CycleRun(start, end uint64, mode string, occ []int)
}

// EmitCycleRun reports a run of identical zero-progress cycles
// [start, end) to s, using the BulkSink fast path when s implements it.
// A nil sink and an empty run are no-ops.
func EmitCycleRun(s Sink, start, end uint64, mode string, occ []int) {
	if s == nil || start >= end {
		return
	}
	if bs, ok := s.(BulkSink); ok {
		bs.CycleRun(start, end, mode, occ)
		return
	}
	for n := start; n < end; n++ {
		s.CycleState(n, mode, 0, 0, occ)
	}
}

// Tee fans one event stream out to several sinks, skipping nils.
// It returns nil when no non-nil sink remains (so models keep their
// zero-cost disabled path) and the sink itself when only one remains.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return tee(live)
}

type tee []Sink

func (t tee) Attach(model string, occNames []string) {
	for _, s := range t {
		s.Attach(model, occNames)
	}
}

func (t tee) CycleState(now uint64, mode string, executed, replayed int, occ []int) {
	for _, s := range t {
		s.CycleState(now, mode, executed, replayed, occ)
	}
}

// CycleRun implements BulkSink by dispatching per sub-sink, so a tee of
// a Collector and a legacy probe bulk-credits the former and replays the
// per-cycle loop only for the latter.
func (t tee) CycleRun(start, end uint64, mode string, occ []int) {
	for _, s := range t {
		EmitCycleRun(s, start, end, mode, occ)
	}
}

func (t tee) Event(now uint64, cat, name, detail string) {
	for _, s := range t {
		s.Event(now, cat, name, detail)
	}
}

func (t tee) SpanBegin(now uint64, cat, name string, id uint64) {
	for _, s := range t {
		s.SpanBegin(now, cat, name, id)
	}
}

func (t tee) SpanEnd(now uint64, cat string, id uint64) {
	for _, s := range t {
		s.SpanEnd(now, cat, id)
	}
}

func (t tee) Span(start, end uint64, cat, name string) {
	for _, s := range t {
		s.Span(start, end, cat, name)
	}
}

// Collector is the standard Sink: it feeds a Trace (for Chrome export)
// and/or a Registry (occupancy timelines) from the model event stream.
// Either destination may be nil. SampleEvery decimates the per-cycle
// occupancy channels into counter tracks and timelines; span and event
// traffic is never decimated.
type Collector struct {
	Trace       *Trace
	Reg         *Registry
	SampleEvery uint64

	model      string
	occNames   []string
	timelines  []*Timeline
	lastMode   string
	modeStart  uint64
	haveMode   bool
	nextSample uint64
	lastCycle  uint64
}

// NewCollector returns a Collector over the given destinations with the
// default sample rate.
func NewCollector(t *Trace, r *Registry) *Collector {
	c := &Collector{Trace: t, Reg: r, SampleEvery: DefaultSampleEvery}
	if r != nil {
		c.SampleEvery = r.SampleEvery()
	}
	return c
}

// Attach implements Sink.
func (c *Collector) Attach(model string, occNames []string) {
	c.model = model
	c.occNames = occNames
	c.timelines = nil
	if c.Reg != nil {
		for _, n := range occNames {
			c.timelines = append(c.timelines, c.Reg.Timeline(model+"/occ/"+n))
		}
	}
	if c.SampleEvery < 1 {
		c.SampleEvery = DefaultSampleEvery
	}
}

// CycleState implements Sink: it turns mode changes into trace spans and
// decimates occupancy channels into counter samples and timelines.
func (c *Collector) CycleState(now uint64, mode string, executed, replayed int, occ []int) {
	c.lastCycle = now
	if mode != c.lastMode || !c.haveMode {
		if c.haveMode && c.Trace != nil && c.lastMode != "" {
			c.Trace.Span(c.modeStart, now, "mode", c.lastMode)
		}
		c.lastMode = mode
		c.modeStart = now
		c.haveMode = true
	}
	if now < c.nextSample {
		return
	}
	c.nextSample = now + c.SampleEvery
	for i, v := range occ {
		if i < len(c.timelines) {
			c.timelines[i].Sample(now, int64(v))
		}
		if c.Trace != nil && i < len(c.occNames) {
			c.Trace.CounterSample(now, c.model+"/"+c.occNames[i], int64(v))
		}
	}
}

// CycleRun implements BulkSink: the whole run shares one mode and one
// occupancy vector, so the mode-span bookkeeping runs once and only the
// decimated sample cycles inside [start, end) are materialized. The
// samples land on exactly the cycles the naive per-cycle loop would
// pick, leaving nextSample in the identical state.
func (c *Collector) CycleRun(start, end uint64, mode string, occ []int) {
	if start >= end {
		return
	}
	c.lastCycle = end - 1
	if mode != c.lastMode || !c.haveMode {
		if c.haveMode && c.Trace != nil && c.lastMode != "" {
			c.Trace.Span(c.modeStart, start, "mode", c.lastMode)
		}
		c.lastMode = mode
		c.modeStart = start
		c.haveMode = true
	}
	step := c.SampleEvery
	if step == 0 {
		step = 1 // unattached collector: CycleState samples every cycle
	}
	n := c.nextSample
	if n < start {
		n = start
	}
	for ; n < end; n += step {
		c.nextSample = n + step
		for i, v := range occ {
			if i < len(c.timelines) {
				c.timelines[i].Sample(n, int64(v))
			}
			if c.Trace != nil && i < len(c.occNames) {
				c.Trace.CounterSample(n, c.model+"/"+c.occNames[i], int64(v))
			}
		}
	}
}

// Event implements Sink.
func (c *Collector) Event(now uint64, cat, name, detail string) {
	if c.Trace != nil {
		c.Trace.Instant(now, cat, name, detail)
	}
}

// SpanBegin implements Sink.
func (c *Collector) SpanBegin(now uint64, cat, name string, id uint64) {
	if c.Trace != nil {
		c.Trace.Begin(now, cat, name, id)
	}
}

// SpanEnd implements Sink.
func (c *Collector) SpanEnd(now uint64, cat string, id uint64) {
	if c.Trace != nil {
		c.Trace.End(now, cat, id)
	}
}

// Span implements Sink.
func (c *Collector) Span(start, end uint64, cat, name string) {
	if c.Trace != nil {
		c.Trace.Span(start, end, cat, name)
	}
}

// Flush closes the open mode span and any still-open trace spans at the
// end of a run. Call it once, after the simulation finishes, with the
// final cycle count.
func (c *Collector) Flush(finalCycle uint64) {
	if finalCycle < c.lastCycle {
		finalCycle = c.lastCycle
	}
	if c.haveMode && c.Trace != nil && c.lastMode != "" {
		c.Trace.Span(c.modeStart, finalCycle, "mode", c.lastMode)
		c.haveMode = false
	}
	if c.Trace != nil {
		c.Trace.CloseOpen(finalCycle)
	}
}
