// Package obs is the unified observability layer shared by every core
// model, the memory hierarchy and the simulation harness: a metrics
// registry (counters, gauges, fixed-bucket histograms and cycle-sampled
// timelines) plus exporters — a Chrome trace_event JSON writer whose
// output loads in chrome://tracing and Perfetto, a flat JSON dump, and a
// Prometheus-style text dump.
//
// The layer has two halves:
//
//   - a Registry of aggregate metrics, filled in by each model's
//     PublishObs at the end of a run (and, for live histograms and
//     timelines, during it);
//   - a Sink event stream (see sink.go) that observes the run cycle by
//     cycle: mode transitions, checkpoint lifetimes, memory-miss spans,
//     queue occupancies.
//
// Both halves cost nothing when disabled: models guard every emission
// with a nil check, and no registry is allocated unless a run asks for
// one. Everything is deterministic — identical runs produce byte-
// identical exports — so metrics files can be diffed across simulator
// versions.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rocksim/internal/stats"
)

// DefaultSampleEvery is the default decimation for cycle-sampled
// timelines and Chrome counter tracks: one sample every N cycles.
const DefaultSampleEvery = 64

// Counter is a monotonically increasing count. All operations are
// atomic, so counters may be published from concurrent runs sharing a
// registry.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 { return atomic.LoadUint64(&c.v) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { atomic.AddUint64(&c.v, n) }

// Inc increases the counter by one.
func (c *Counter) Inc() { atomic.AddUint64(&c.v, 1) }

// Set overwrites the counter (used when publishing an externally
// accumulated total).
func (c *Counter) Set(v uint64) { atomic.StoreUint64(&c.v, v) }

// Gauge is an instantaneous value with a high-water mark. All
// operations are atomic, so gauges may be published from concurrent
// runs sharing a registry.
type Gauge struct {
	name string
	v    int64
	hi   int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Value returns the last set value.
func (g *Gauge) Value() int64 { return atomic.LoadInt64(&g.v) }

// High returns the high-water mark.
func (g *Gauge) High() int64 { return atomic.LoadInt64(&g.hi) }

// Set records a new value, tracking the high-water mark.
func (g *Gauge) Set(v int64) {
	atomic.StoreInt64(&g.v, v)
	for {
		hi := atomic.LoadInt64(&g.hi)
		if v <= hi || atomic.CompareAndSwapInt64(&g.hi, hi, v) {
			return
		}
	}
}

// Timeline is a cycle-sampled series: one (cycle, value) point every
// SampleEvery cycles. It is the machine-readable companion of the Chrome
// counter tracks.
type Timeline struct {
	name  string
	every uint64
	next  uint64
	cyc   []uint64
	val   []int64
}

// Name returns the timeline's registered name.
func (t *Timeline) Name() string { return t.name }

// Sample records v at cycle now if the decimation window has elapsed.
func (t *Timeline) Sample(now uint64, v int64) {
	if now < t.next {
		return
	}
	t.next = now + t.every
	t.cyc = append(t.cyc, now)
	t.val = append(t.val, v)
}

// Len returns the number of recorded points.
func (t *Timeline) Len() int { return len(t.cyc) }

// Point returns the i-th sample.
func (t *Timeline) Point(i int) (cycle uint64, v int64) { return t.cyc[i], t.val[i] }

// mergeFrom interleaves o's samples into t in cycle order (stable: at
// equal cycles t's existing points sort first). Used by Registry.Merge.
func (t *Timeline) mergeFrom(o *Timeline) {
	if o == nil || len(o.cyc) == 0 {
		return
	}
	cyc := make([]uint64, 0, len(t.cyc)+len(o.cyc))
	val := make([]int64, 0, len(t.val)+len(o.val))
	i, j := 0, 0
	for i < len(t.cyc) || j < len(o.cyc) {
		if j >= len(o.cyc) || (i < len(t.cyc) && t.cyc[i] <= o.cyc[j]) {
			cyc, val = append(cyc, t.cyc[i]), append(val, t.val[i])
			i++
		} else {
			cyc, val = append(cyc, o.cyc[j]), append(val, o.val[j])
			j++
		}
	}
	t.cyc, t.val = cyc, val
	if o.next > t.next {
		t.next = o.next
	}
}

// Registry holds one run's metrics. The registry itself — metric
// lookup/creation, end-of-run publishing (counters, gauges, PutHist)
// and the exporters — is safe for concurrent use, so parallel
// experiment harnesses may publish finished runs into a shared
// registry. Live histograms and timelines remain single-writer during
// a run: give each concurrent run its own registry and fold them
// together afterwards with Merge.
type Registry struct {
	mu          sync.Mutex
	sampleEvery uint64
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*stats.Hist
	timelines   map[string]*Timeline
}

// NewRegistry returns an empty registry with the default sample rate.
func NewRegistry() *Registry {
	return &Registry{
		sampleEvery: DefaultSampleEvery,
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*stats.Hist),
		timelines:   make(map[string]*Timeline),
	}
}

// SetSampleEvery sets the timeline decimation (cycles per sample).
// Values < 1 reset it to the default.
func (r *Registry) SetSampleEvery(n uint64) {
	if n < 1 {
		n = DefaultSampleEvery
	}
	r.mu.Lock()
	r.sampleEvery = n
	r.mu.Unlock()
}

// SampleEvery returns the timeline decimation.
func (r *Registry) SampleEvery() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampleEvery
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Hist returns (creating if needed) the named histogram tracking values
// 0..limit (larger observations clamp into the overflow bucket).
func (r *Registry) Hist(name string, limit int) *stats.Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := stats.NewHist(limit)
	r.hists[name] = h
	return h
}

// PutHist registers an externally owned histogram under name, merging
// into any histogram already registered there. Models use this to
// publish histograms they already maintain (queue occupancies) without
// double-counting. The merge runs under the registry lock, so
// concurrent finished runs may publish into one registry; the
// histogram passed in must itself be quiescent.
func (r *Registry) PutHist(name string, h *stats.Hist) {
	if h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.hists[name]; ok {
		have.Merge(h)
		return
	}
	r.hists[name] = h
}

// Timeline returns (creating if needed) the named cycle-sampled series.
func (r *Registry) Timeline(name string) *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timelines[name]; ok {
		return t
	}
	t := &Timeline{name: name, every: r.sampleEvery}
	r.timelines[name] = t
	return t
}

// Merge folds other's metrics into r, deterministically: counters add,
// gauges adopt the later value and the larger high-water mark,
// histograms merge losslessly (clamping only tail resolution), and
// timelines interleave in cycle order. other must be quiescent — the
// run that filled it has finished. This is how per-run registries from
// a parallel sweep become one export: identical merge inputs produce
// byte-identical exports regardless of worker scheduling.
func (r *Registry) Merge(other *Registry) {
	if other == nil || other == r {
		return
	}
	other.mu.Lock()
	counters := make(map[string]uint64, len(other.counters))
	for n, c := range other.counters {
		counters[n] = c.Value()
	}
	gauges := make(map[string]GaugeSnap, len(other.gauges))
	for n, g := range other.gauges {
		gauges[n] = GaugeSnap{Value: g.Value(), High: g.High()}
	}
	hists := make(map[string]*stats.Hist, len(other.hists))
	for n, h := range other.hists {
		hists[n] = h.Clone()
	}
	timelines := make(map[string]*Timeline, len(other.timelines))
	for n, t := range other.timelines {
		timelines[n] = t
	}
	other.mu.Unlock()

	for _, n := range sortedKeys(counters) {
		r.Counter(n).Add(counters[n])
	}
	for _, n := range sortedKeys(gauges) {
		g := r.Gauge(n)
		// Raise the high-water mark first, then adopt the value (a
		// gauge's high is never below its value, so the second Set
		// cannot lower the mark).
		g.Set(gauges[n].High)
		g.Set(gauges[n].Value)
	}
	for _, n := range sortedKeys(hists) {
		r.PutHist(n, hists[n])
	}
	for _, n := range sortedKeys(timelines) {
		o := timelines[n]
		t := r.Timeline(n)
		r.mu.Lock()
		t.mergeFrom(o)
		r.mu.Unlock()
	}
}

// HistSnap is the exported summary of one histogram.
type HistSnap struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   int     `json:"max"`
	P50   int     `json:"p50"`
	P95   int     `json:"p95"`
	P99   int     `json:"p99"`
}

// GaugeSnap is the exported form of one gauge.
type GaugeSnap struct {
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// TimelineSnap is the exported form of one timeline.
type TimelineSnap struct {
	Every  uint64   `json:"every"`
	Cycles []uint64 `json:"cycles"`
	Values []int64  `json:"values"`
}

// Snapshot is the flat, deterministic export form of a Registry.
// encoding/json sorts map keys, so marshaling a Snapshot is
// byte-deterministic for identical runs.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]GaugeSnap    `json:"gauges,omitempty"`
	Histograms map[string]HistSnap     `json:"histograms,omitempty"`
	Timelines  map[string]TimelineSnap `json:"timelines,omitempty"`
}

// Snapshot flattens the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnap, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = GaugeSnap{Value: g.Value(), High: g.High()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnap, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = HistSnap{
				Count: h.Count(),
				Mean:  h.Mean(),
				Max:   h.Max(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			}
		}
	}
	if len(r.timelines) > 0 {
		s.Timelines = make(map[string]TimelineSnap, len(r.timelines))
		for n, t := range r.timelines {
			s.Timelines[n] = TimelineSnap{Every: t.every, Cycles: t.cyc, Values: t.val}
		}
	}
	return s
}

// WriteJSON writes the registry as indented, deterministic JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promName converts a metric name into a Prometheus-safe identifier.
func promName(name string) string {
	s := strings.NewReplacer("/", "_", "-", "_", ".", "_", " ", "_").Replace(name)
	return "rocksim_" + s
}

// WriteProm writes the registry in Prometheus text exposition format.
// Histograms export count/mean/max and the p50/p95/p99 quantiles as
// separate gauges; timelines are omitted (they are series, not scrapes).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, n := range sortedKeys(r.counters) {
		pn := promName(n)
		p("# TYPE %s counter\n%s %d\n", pn, pn, r.counters[n].Value())
	}
	for _, n := range sortedKeys(r.gauges) {
		g := r.gauges[n]
		pn := promName(n)
		p("# TYPE %s gauge\n%s %d\n%s_high %d\n", pn, pn, g.Value(), pn, g.High())
	}
	for _, n := range sortedKeys(r.hists) {
		h := r.hists[n]
		pn := promName(n)
		p("# TYPE %s summary\n", pn)
		p("%s_count %d\n", pn, h.Count())
		p("%s_mean %g\n", pn, h.Mean())
		p("%s_max %d\n", pn, h.Max())
		p("%s{quantile=\"0.5\"} %d\n", pn, h.Quantile(0.50))
		p("%s{quantile=\"0.95\"} %d\n", pn, h.Quantile(0.95))
		p("%s{quantile=\"0.99\"} %d\n", pn, h.Quantile(0.99))
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Source is implemented by every model (cores, statistics blocks, cache
// levels, the hierarchy) that can publish its counters into a Registry.
type Source interface {
	PublishObs(r *Registry)
}
