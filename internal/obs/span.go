package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// This file is the request-scoped (wall-clock) half of tracing. Trace
// (trace.go) records microarchitectural events in the cycle domain; the
// Tracer below records what the *service stack* did with a request —
// admission, queue wait, cache lookup, singleflight join, compute — as a
// tree of timed spans threaded through context.Context. One Tracer holds
// one request's (or one CLI invocation's) tree and is exported either as
// a flat span list or as Chrome trace_event "X" complete events.
//
// Everything is nil-safe: StartSpan on a context with no tracer returns
// a nil *Span, and every Span method is a no-op on a nil receiver, so
// instrumented code pays one pointer check when tracing is off.
//
// The clock is injectable. The default is time.Now; tests install a fake
// incrementing clock so identical request sequences export byte-
// identical traces (the span-determinism contract mirrors the metrics
// layer's).

// Attr is one key/value annotation on a span. Attrs keep insertion
// order so exports are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a request's tree.
type Span struct {
	tr       *Tracer
	id       uint64
	parent   uint64 // 0 for roots
	name     string
	start    time.Duration // since tracer epoch
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Tracer owns one request's span tree: it allocates ids, timestamps
// spans against a fixed epoch, and renders exports. Safe for concurrent
// use (singleflight sharers may annotate while the computing goroutine
// runs).
type Tracer struct {
	mu     sync.Mutex
	clock  func() time.Time
	epoch  time.Time
	nextID uint64
	roots  []*Span
}

// NewTracer returns a tracer on the real clock.
func NewTracer() *Tracer { return NewTracerClock(time.Now) }

// NewTracerClock returns a tracer reading time from clock — tests pass
// a fake incrementing clock to make exports byte-deterministic. The
// epoch (ts zero in exports) is the clock's value at construction.
func NewTracerClock(clock func() time.Time) *Tracer {
	return &Tracer{clock: clock, epoch: clock()}
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.newSpanLocked(name, 0)
	t.roots = append(t.roots, s)
	return s
}

func (t *Tracer) newSpanLocked(name string, parent uint64) *Span {
	t.nextID++
	return &Span{tr: t, id: t.nextID, parent: parent, name: name, start: t.clock().Sub(t.epoch)}
}

// StartChild opens a child span under s. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.newSpanLocked(name, s.id)
	s.children = append(s.children, c)
	return c
}

// SetAttr annotates the span. Nil-safe; insertion order is kept.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// End closes the span at the tracer clock's current reading. A second
// End is ignored; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = t.clock().Sub(t.epoch) - s.start
	}
	t.mu.Unlock()
}

// Duration returns the span's duration (zero until End). Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.dur
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Context plumbing. Two keys: the tracer (installed once per request by
// the middleware or CLI), and the current span (rebound at every
// StartSpan so children nest under their caller).
type tracerCtxKey struct{}
type spanCtxKey struct{}

// WithTracer installs t on the context.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// WithSpan rebinds the current span (used by code that carries a span
// across goroutines, e.g. handing the root to a handler).
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// StartSpan opens a span named name under the context's current span
// (or as a root if none) and returns a context carrying it. When the
// context has no tracer it returns (ctx, nil) without allocating —
// tracing off costs two context lookups.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var s *Span
	if cur := SpanFrom(ctx); cur != nil {
		s = cur.StartChild(name)
	} else {
		s = t.Start(name)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanSnap is the flat export form of one span. Times are integer
// microseconds since the tracer epoch.
type SpanSnap struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Snapshot flattens the tree depth-first (parents before children,
// siblings in start order) — a deterministic order given a
// deterministic clock.
func (t *Tracer) Snapshot() []SpanSnap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanSnap
	var walk func(s *Span)
	walk = func(s *Span) {
		out = append(out, SpanSnap{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartUs: s.start.Microseconds(),
			DurUs:   s.dur.Microseconds(),
			Attrs:   s.attrs,
		})
		for _, c := range s.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return out
}

// WriteSpans writes the flat span list as indented JSON.
func (t *Tracer) WriteSpans(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []SpanSnap `json:"spans"`
	}{t.Snapshot()})
}

// xEvent is one Chrome trace_event "X" (complete) record. Unlike the
// cycle-domain exporter's B/E pairs, complete events carry an explicit
// duration, and every event carries ts/dur/pid/tid — the shape the
// trace-smoke linter checks.
type xEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the span tree as Chrome trace_event JSON (one "X"
// complete event per span; pid 1, one trace thread per root so
// concurrent requests in a shared tracer get separate lanes). Times are
// wall-clock microseconds since the tracer epoch. Deterministic given a
// deterministic clock.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var evs []xEvent
	var walk func(s *Span, tid int)
	walk = func(s *Span, tid int) {
		ev := xEvent{Name: s.name, Ph: "X", Ts: s.start.Microseconds(), Dur: s.dur.Microseconds(), Pid: 1, Tid: tid}
		if ev.Dur < 1 {
			ev.Dur = 1 // zero-width spans vanish in viewers
		}
		if len(s.attrs) > 0 {
			args := make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				args[a.Key] = a.Value
			}
			ev.Args = args
		}
		evs = append(evs, ev)
		for _, c := range s.children {
			walk(c, tid)
		}
	}
	for i, r := range t.roots {
		walk(r, i+1)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"generator": "rocksim", "timeUnit": "1 ts = 1 microsecond"},
	})
}
