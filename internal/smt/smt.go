// Package smt models a ROCK core's *other* operating mode: instead of
// devoting both hardware strands to one SST thread, the core runs two
// independent threads with fine-grained multithreading (Niagara-style
// cycle interleave). The two thread contexts share the physical core's
// L1 caches and MSHRs (same hierarchy port) but have private
// architectural state, functional memory and predictors.
//
// The experiment F12 uses this to reproduce ROCK's headline software
// choice: two threads for throughput, or one SST thread for latency.
package smt

import (
	"fmt"

	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
)

// Thread is one hardware thread context of the SMT pair.
type Thread struct {
	Core *inorder.Core
	Mach *cpu.Machine
}

// Core interleaves two in-order thread contexts cycle by cycle. When
// one thread halts, the other receives every cycle (as real FG-MT
// hardware does).
type Core struct {
	threads [2]Thread
	cycle   uint64
	err     error
	agg     cpu.BaseStats
}

// New builds the SMT pair. Both machines must share the hierarchy and
// core ID (they model one physical core).
func New(a, b Thread) (*Core, error) {
	if a.Mach.Hier != b.Mach.Hier || a.Mach.CoreID != b.Mach.CoreID {
		return nil, fmt.Errorf("smt: threads must share one physical core's hierarchy port")
	}
	return &Core{threads: [2]Thread{a, b}}, nil
}

// Step advances the physical core one cycle: the issue slot belongs to
// one thread, the other only ages.
func (c *Core) Step() {
	turn := int(c.cycle % 2)
	t0, t1 := &c.threads[turn], &c.threads[1-turn]
	switch {
	case !t0.Core.Done():
		t0.Core.Step()
		if !t1.Core.Done() {
			t1.Core.Tick()
		}
	case !t1.Core.Done():
		t1.Core.Step()
	}
	for i := range c.threads {
		if err := c.threads[i].Core.Err(); err != nil && c.err == nil {
			c.err = fmt.Errorf("smt thread %d: %w", i, err)
		}
	}
	c.cycle++
}

// Cycle returns the physical core's cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether both threads have halted.
func (c *Core) Done() bool {
	return c.threads[0].Core.Done() && c.threads[1].Core.Done()
}

// Retired returns the aggregate retired instructions of both threads.
func (c *Core) Retired() uint64 {
	return c.threads[0].Core.Retired() + c.threads[1].Core.Retired()
}

// Err returns the first fatal error from either thread.
func (c *Core) Err() error { return c.err }

// Base returns an aggregate statistics block (summed across threads;
// Cycles is the physical core's cycle count).
func (c *Core) Base() *cpu.BaseStats {
	a, b := c.threads[0].Core.Base(), c.threads[1].Core.Base()
	c.agg = cpu.BaseStats{
		Cycles:        c.cycle,
		Retired:       a.Retired + b.Retired,
		Loads:         a.Loads + b.Loads,
		Stores:        a.Stores + b.Stores,
		LoadL1Hits:    a.LoadL1Hits + b.LoadL1Hits,
		LoadL2Hits:    a.LoadL2Hits + b.LoadL2Hits,
		LoadMemHits:   a.LoadMemHits + b.LoadMemHits,
		Branches:      a.Branches + b.Branches,
		BranchMispred: a.BranchMispred + b.BranchMispred,
		MLPSamples:    a.MLPSamples + b.MLPSamples,
		MLPSum:        a.MLPSum + b.MLPSum,
	}
	// Cycle accounting sums across threads. Each physical cycle shows up
	// once as an issue-slot bucket (in the thread that owned the slot)
	// and, while both threads run, once as the sibling's smt_idle — so
	// the aggregate invariant is sum(CPI) - CPI[smt_idle] == Cycles.
	for i := range c.agg.CPI {
		c.agg.CPI[i] = a.CPI[i] + b.CPI[i]
	}
	return &c.agg
}

// Thread returns one thread context (for per-thread statistics).
func (c *Core) Thread(i int) Thread { return c.threads[i] }

// NextEvent implements cpu.FastForwarder: the physical core can jump
// only while every alive thread is provably in a pure stall, to the
// earliest cycle either one can change. A thread's stall horizon is
// recorded at its last issue slot and stays valid across the sibling's
// slots (it self-expires once the clock reaches it), so no extra
// bookkeeping is needed for the interleave.
func (c *Core) NextEvent() uint64 {
	a, b := c.threads[0].Core, c.threads[1].Core
	switch {
	case a.Done() && b.Done():
		return 0
	case a.Done():
		return b.NextEvent()
	case b.Done():
		return a.NextEvent()
	}
	ta, tb := a.NextEvent(), b.NextEvent()
	if ta == 0 || tb == 0 {
		return 0
	}
	if tb < ta {
		ta = tb
	}
	return ta
}

// SkipTo implements cpu.FastForwarder. Thread i owns the issue slot on
// cycles n with n%2 == i, so with both threads alive each replays its
// recorded stall on its own slots and ages (Tick) on the sibling's;
// with one thread left every cycle is an issue slot.
func (c *Core) SkipTo(target uint64) {
	if target <= c.cycle {
		return
	}
	a, b := c.threads[0].Core, c.threads[1].Core
	switch {
	case !a.Done() && !b.Done():
		a.FastForward(target, 2, 0)
		b.FastForward(target, 2, 1)
	case !a.Done():
		a.FastForward(target, 1, 0)
	case !b.Done():
		b.FastForward(target, 1, 0)
	}
	c.cycle = target
}

var _ cpu.Core = (*Core)(nil)
var _ cpu.FastForwarder = (*Core)(nil)
