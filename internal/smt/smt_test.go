package smt

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func thread(t *testing.T, hier *mem.Hierarchy, prog *asm.Program) Thread {
	t.Helper()
	m := mem.NewSparse()
	prog.Load(m)
	mach := &cpu.Machine{Mem: m, Hier: hier, CoreID: 0, Pred: bpred.New(bpred.DefaultConfig())}
	return Thread{Core: inorder.New(mach, inorder.DefaultConfig(), prog.Entry), Mach: mach}
}

func countProg(t *testing.T, n int32, resultAddr int32) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(asm.DefaultTextBase)
	b.Movi(5, n)
	b.Movi(6, 0)
	b.Label("loop")
	b.Op(isa.OpAdd, 6, 6, 5)
	b.Opi(isa.OpAddi, 5, 5, -1)
	b.Br(isa.OpBne, 5, isa.RegZero, "loop")
	b.St(isa.OpSt64, 6, isa.RegZero, resultAddr)
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSMTBothThreadsComplete(t *testing.T) {
	hier, err := mem.NewHierarchy(mem.DefaultHierConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := thread(t, hier, countProg(t, 100, 0x100))
	b := thread(t, hier, countProg(t, 50, 0x200))
	c, err := New(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(c, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := a.Mach.Mem.Read(0x100, 8); got != 5050 {
		t.Errorf("thread A result = %d", got)
	}
	if got := b.Mach.Mem.Read(0x200, 8); got != 1275 {
		t.Errorf("thread B result = %d", got)
	}
	if c.Retired() != a.Core.Retired()+b.Core.Retired() {
		t.Error("aggregate retired mismatch")
	}
	if c.Base().Retired != c.Retired() {
		t.Error("Base aggregate mismatch")
	}
}

func TestSMTInterleavingSlowsThreads(t *testing.T) {
	// A thread sharing the core must be slower than running alone, but
	// the pair's total time must be far less than 2x serial (the whole
	// point of multithreading a stalling pipeline).
	mk := func() (*mem.Hierarchy, *asm.Program) {
		hier, err := mem.NewHierarchy(mem.DefaultHierConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return hier, countProg(t, 2000, 0x100)
	}
	hier, prog := mk()
	solo := thread(t, hier, prog)
	if err := cpu.Run(solo.Core, 10_000_000); err != nil {
		t.Fatal(err)
	}
	soloCycles := solo.Core.Cycle()

	hier2, prog2 := mk()
	a := thread(t, hier2, prog2)
	b := thread(t, hier2, countProg(t, 2000, 0x200))
	c, err := New(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(c, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Cycle() <= soloCycles {
		t.Errorf("pair (%d cyc) not slower than solo (%d cyc)", c.Cycle(), soloCycles)
	}
	if c.Cycle() >= 2*soloCycles+1000 {
		t.Errorf("pair (%d cyc) no better than serial 2x (%d cyc)", c.Cycle(), 2*soloCycles)
	}
}

func TestSMTRejectsMismatchedPorts(t *testing.T) {
	hier, err := mem.NewHierarchy(mem.DefaultHierConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p := countProg(t, 5, 0x100)
	a := thread(t, hier, p)
	bm := mem.NewSparse()
	p.Load(bm)
	machB := &cpu.Machine{Mem: bm, Hier: hier, CoreID: 1, Pred: bpred.New(bpred.DefaultConfig())}
	b := Thread{Core: inorder.New(machB, inorder.DefaultConfig(), p.Entry), Mach: machB}
	if _, err := New(a, b); err == nil {
		t.Error("accepted threads on different physical cores")
	}
}

func TestSMTOneThreadFinishesFirst(t *testing.T) {
	hier, err := mem.NewHierarchy(mem.DefaultHierConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := thread(t, hier, countProg(t, 5, 0x100))    // tiny
	b := thread(t, hier, countProg(t, 5000, 0x200)) // long
	c, err := New(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(c, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := b.Mach.Mem.Read(0x200, 8); got != 5000*5001/2 {
		t.Errorf("long thread result = %d", got)
	}
}
