package cmp_test

// Memory-consistency litmus tests. The RK64 shared-memory machine is
// TSO, like ROCK's SPARC: stores may be buffered past younger loads of
// other addresses (SB's 0,0 is legal) but loads are ordered (MP's 1,0
// and LB's 1,1 are forbidden) and speculative stores are never globally
// visible before their epoch commits. Each litmus runs the classic
// two-thread program across a sweep of relative delays — on the SMT
// model (two in-order hardware threads, cycle-interleaved over one
// functional memory) and on shared-memory CMP chips mixing in-order and
// SST cores — and asserts that only allowed outcomes ever appear.
//
// The SST cases are the interesting ones: an ahead-strand load captures
// its value at issue while a deferred load (NA address) reads at
// replay, so without coherence repair a remote store landing between
// the two reads would be observed out of program order. The
// RbCoherence read-set invalidation rollback (internal/core/
// coherence.go) closes exactly that window; TestLitmusCMPMessagePassing
// fails without it.

import (
	"fmt"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/sim"
	"rocksim/internal/smt"
)

// Shared data layout (one address per cache line; 64-byte lines).
const (
	litMbox  = 0x200000 // invisibility mailbox
	litX     = 0x200100 // data
	litY     = 0x200200 // flag
	litPtr   = 0x200300 // holds &litY (forces an NA-address deferral)
	litRes0  = 0x200400 // core 0 observed values
	litRes1  = 0x200500 // core 1 observed values
	litU0    = 0x200600 // cold line: opens core 0's epoch
	litU1    = 0x200700 // cold line: opens core 1's epoch
	litCondW = 0x200800 // warm branch condition (0)
	litCondC = 0x200900 // cold branch condition (1)
	litDone  = 0x200a00 // writer-finished flag
	litObs   = 0x200b00 // observer results
)

const litPoison = 0xDEAD

// litData emits the shared data image every litmus program starts from.
func litData() string {
	return fmt.Sprintf(`
	.data %#x
	.quad 0
	.data %#x
	.quad 0
	.data %#x
	.quad 0
	.data %#x
	.quad %#x
	.data %#x
	.quad 0
	.quad 0
	.data %#x
	.quad 0
	.quad 0
	.data %#x
	.quad 7
	.data %#x
	.quad 7
	.data %#x
	.quad 0
	.data %#x
	.quad 1
	.data %#x
	.quad 0
	.data %#x
	.quad 0
	.quad 0
	`, litMbox, litX, litY, litPtr, litY, litRes0, litRes1,
		litU0, litU1, litCondW, litCondC, litDone, litObs)
}

// delayLoop emits a counted spin of n iterations with unique labels.
func delayLoop(tag string, n int) string {
	return fmt.Sprintf(`
	movi r20, %d
dspin_%s:
	beq  r20, zero, dgo_%s
	addi r20, r20, -1
	j    dspin_%s
dgo_%s:
	`, n, tag, tag, tag, tag)
}

// runLitmusChip assembles src and runs it on a two-core shared-memory
// chip; kinds[i] selects "inorder" or "sst" for core i. Returns the
// chip (final memory is Machines[0].Mem — shared).
func runLitmusChip(t *testing.T, src string, kinds [2]string, plans [2]*faults.Plan) *cmp.Chip {
	t.Helper()
	prog := mustAssemble(t, src)
	opts := sim.DefaultOptions()
	entries := make([]uint64, 2)
	for i := range entries {
		sym := fmt.Sprintf("core%d", i)
		e, ok := prog.Symbol(sym)
		if !ok {
			t.Fatalf("no %s symbol", sym)
		}
		entries[i] = e
	}
	chip, err := cmp.NewShared(opts.Hier, opts.Pred, prog, entries,
		func(id int, m *cpu.Machine, e uint64) (cpu.Core, error) {
			switch kinds[id] {
			case "sst":
				c := core.New(m, opts.SST, e)
				if plans[id] != nil {
					c.SetFaults(plans[id].New(nil))
				}
				return c, nil
			default:
				return inorder.New(m, opts.InOrder, e), nil
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return chip
}

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func rd64(m *mem.Sparse, addr uint64) int64 { return int64(m.Read(addr, 8)) }

// outcomeSet collects distinct (a,b) observations across a delay sweep.
type outcomeSet map[[2]int64]bool

func (s outcomeSet) String() string {
	out := ""
	for k := range s {
		out += fmt.Sprintf("(%d,%d) ", k[0], k[1])
	}
	return out
}

// ---------------------------------------------------------------------
// CMP litmus
// ---------------------------------------------------------------------

// sbSrc is the store-buffering litmus: each core stores its own flag
// then loads the other's. The cold litU loads open SST epochs first so
// the stores are genuinely buffered in the SSB. membar, when set,
// orders the store before the load (spec-mode barriers serialize).
func sbSrc(d0, d1 int, membar bool) string {
	bar := ""
	if membar {
		bar = "\tmembar\n"
	}
	return fmt.Sprintf(`
	.org 0x10000
core0:
	%s
	movi r5, %#x
	ld64 r6, (r5)      ; cold: opens the epoch on SST
	movi r7, %#x
	movi r8, 1
	st64 r8, (r7)      ; st X = 1
%s	movi r9, %#x
	ld64 r1, (r9)      ; r1 = Y
	movi r10, %#x
	st64 r1, (r10)
	halt
core1:
	%s
	movi r5, %#x
	ld64 r6, (r5)
	movi r7, %#x
	movi r8, 1
	st64 r8, (r7)      ; st Y = 1
%s	movi r9, %#x
	ld64 r2, (r9)      ; r2 = X
	movi r10, %#x
	st64 r2, (r10)
	halt
`+litData(), delayLoop("w", d0), litU0, litX, bar, litY, litRes0,
		delayLoop("r", d1), litU1, litY, bar, litX, litRes1)
}

// mpSrc is the message-passing litmus. The writer publishes data (X)
// then flag (Y), in order. The reader's flag load goes through a
// pointer whose cold load leaves the address NA, so on SST the flag is
// read at replay time while the younger data load captured its value at
// issue — the exact window the coherence rollback must close.
func mpSrc(d0 int) string {
	return fmt.Sprintf(`
	.org 0x10000
core0:
	%s
	movi r5, %#x
	movi r6, %#x
	movi r7, 1
	st64 r7, (r5)      ; st X = 1 (data)
	st64 r7, (r6)      ; st Y = 1 (flag)
	halt
core1:
	movi r5, %#x
	ld64 r6, (r5)      ; cold: r6 <- &Y, NA until the miss returns
	ld64 r1, (r6)      ; flag: address NA, deferred, read at replay
	movi r7, %#x
	ld64 r2, (r7)      ; data: read at issue (speculative)
	movi r8, %#x
	st64 r1, (r8)
	movi r9, %#x
	st64 r2, (r9)
	halt
`+litData(), delayLoop("w", d0), litX, litY, litPtr, litX, litRes0, litRes1)
}

// lbSrc is the load-buffering litmus: each core loads the other's
// variable then stores 1 to its own. (1,1) requires both loads to see
// stores that are younger in the other thread — forbidden under TSO.
func lbSrc(d0, d1 int) string {
	return fmt.Sprintf(`
	.org 0x10000
core0:
	%s
	movi r5, %#x
	ld64 r1, (r5)      ; r1 = X (cold miss: defers on SST)
	movi r6, %#x
	movi r7, 1
	st64 r7, (r6)      ; st Y = 1
	movi r8, %#x
	st64 r1, (r8)
	halt
core1:
	%s
	movi r5, %#x
	ld64 r2, (r5)      ; r2 = Y
	movi r6, %#x
	movi r7, 1
	st64 r7, (r6)      ; st X = 1
	movi r8, %#x
	st64 r2, (r8)
	halt
`+litData(), delayLoop("a", d0), litX, litY, litRes0,
		delayLoop("b", d1), litY, litX, litRes1)
}

var litmusDelays = []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 90, 150, 250, 400}

// TestLitmusCMPStoreBuffering sweeps SB on in-order and SST chips. The
// in-order cores execute stores to functional memory immediately, so
// they are sequentially consistent: (0,0) must not appear. The SST
// chip buffers stores in the SSB but commits loads atomically (a load
// whose line is invalidated before commit rolls back), which also
// excludes (0,0); any other combination is fair game.
func TestLitmusCMPStoreBuffering(t *testing.T) {
	for _, kinds := range [][2]string{{"inorder", "inorder"}, {"sst", "sst"}} {
		seen := outcomeSet{}
		for _, d0 := range litmusDelays {
			for _, d1 := range []int{0, 40, 150} {
				chip := runLitmusChip(t, sbSrc(d0, d1, false), kinds, [2]*faults.Plan{})
				m := chip.Machines[0].Mem
				o := [2]int64{rd64(m, litRes0), rd64(m, litRes1)}
				seen[o] = true
				if o[0] == 0 && o[1] == 0 {
					t.Fatalf("%v d=(%d,%d): observed (0,0) — store became visible after both loads committed", kinds, d0, d1)
				}
				if o[0]&^1 != 0 || o[1]&^1 != 0 {
					t.Fatalf("%v d=(%d,%d): garbage outcome (%d,%d)", kinds, d0, d1, o[0], o[1])
				}
			}
		}
		if len(seen) < 2 {
			t.Errorf("%v: sweep saw only %v — delays not exercising interleavings", kinds, seen)
		}
	}
}

// TestLitmusCMPStoreBufferingMembar: with membar between the store and
// the load the (0,0) exclusion holds trivially; this variant pins the
// barrier path (spec-mode membar serializes the epoch).
func TestLitmusCMPStoreBufferingMembar(t *testing.T) {
	for _, d0 := range []int{0, 8, 55, 250} {
		chip := runLitmusChip(t, sbSrc(d0, 20, true), [2]string{"sst", "sst"}, [2]*faults.Plan{})
		m := chip.Machines[0].Mem
		a, b := rd64(m, litRes0), rd64(m, litRes1)
		if a == 0 && b == 0 {
			t.Fatalf("d=%d: (0,0) with membar", d0)
		}
	}
}

// TestLitmusCMPMessagePassing is the TSO load-ordering proof on SST:
// flag==1 implies data==1, even though the flag load replays late and
// the data load captured its value early. Fails without the
// RbCoherence read-set invalidation rollback. The sweep must actually
// open the window: we require both the (1,1) outcome and at least one
// coherence rollback to have been observed somewhere in the sweep.
func TestLitmusCMPMessagePassing(t *testing.T) {
	seen := outcomeSet{}
	var cohRollbacks uint64
	for _, d0 := range litmusDelays {
		chip := runLitmusChip(t, mpSrc(d0), [2]string{"inorder", "sst"}, [2]*faults.Plan{})
		m := chip.Machines[0].Mem
		flag, data := rd64(m, litRes0), rd64(m, litRes1)
		seen[[2]int64{flag, data}] = true
		if flag == 1 && data == 0 {
			t.Fatalf("d=%d: observed flag=1 data=0 — loads reordered past a remote store (TSO violation)", d0)
		}
		cohRollbacks += chip.Cores[1].(*core.Core).Stats().RollbacksBy[core.RbCoherence]
	}
	if !seen[[2]int64{1, 1}] {
		t.Errorf("sweep never saw (1,1): writer always lost the race, outcomes %v", seen)
	}
	if cohRollbacks == 0 {
		t.Errorf("sweep never triggered a coherence rollback: the stale-read window was not exercised, outcomes %v", seen)
	}
}

// TestLitmusCMPLoadBuffering: (1,1) would need each load to observe the
// other core's younger store; SST replays loads before its own stores
// drain at commit, so the cycle is impossible.
func TestLitmusCMPLoadBuffering(t *testing.T) {
	for _, kinds := range [][2]string{{"inorder", "inorder"}, {"sst", "sst"}} {
		for _, d0 := range litmusDelays {
			chip := runLitmusChip(t, lbSrc(d0, 25), kinds, [2]*faults.Plan{})
			m := chip.Machines[0].Mem
			a, b := rd64(m, litRes0), rd64(m, litRes1)
			if a == 1 && b == 1 {
				t.Fatalf("%v d=%d: observed (1,1) — a speculative store was visible before commit", kinds, d0)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Speculative-store invisibility
// ---------------------------------------------------------------------

// invisSrc: the SST writer trains a branch not-taken for many
// iterations (each harmlessly storing 0 to the mailbox), then loads its
// condition from a cold line. The miss defers the branch, the trained
// predictor sends the wrong path through a POISON store into the SSB,
// and the replayed branch rolls the epoch back. The in-order observer
// spins on the mailbox and latches whether it EVER saw the poison;
// committed state must show it never did. This extends the single-core
// fault-invisibility oracle (sim.CheckFaultInvisibility) to
// multi-strand visibility: not even another core on the same chip may
// witness squashed stores.
func invisSrc() string {
	return fmt.Sprintf(`
	.org 0x10000
core0:
	movi r20, 200       ; training iterations
	movi r5, %#x        ; mailbox
	movi r11, %#x       ; warm condition (value 0... loaded below)
	movi r12, %#x       ; cold condition (value 1)
	movi r13, %#x       ; poison
	sub  r15, r12, r11  ; cond stride
	; warm the training condition line (holds 7; write 0 for training)
	st64 zero, (r11)
wl:
	slti r8, r20, 2     ; 1 on the final iteration
	mul  r14, r8, r15
	add  r14, r14, r11  ; cond addr: warm during training, cold at the end
	ld64 r6, (r14)
	mul  r16, r8, r13   ; store value: 0 during training, POISON at the end
	bne  r6, zero, wskip ; trained not-taken; final real outcome: taken
	st64 r16, (r5)      ; wrong path on the final iteration
wskip:
	addi r20, r20, -1
	bne  r20, zero, wl
	movi r17, 0x600D
	st64 r17, (r5)      ; architectural final mailbox value
	movi r18, %#x
	movi r19, 1
	st64 r19, (r18)     ; raise done
	halt
core1:
	movi r5, %#x        ; mailbox
	movi r18, %#x       ; done flag
	movi r4, 0          ; poison-seen latch
	movi r7, %d
ospin:
	ld64 r6, (r5)
	bne  r6, r7, onp
	movi r4, 1
onp:
	ld64 r8, (r18)
	beq  r8, zero, ospin
	ld64 r6, (r5)       ; final mailbox read after done
	movi r9, %#x
	st64 r4, (r9)
	movi r10, %#x
	st64 r6, (r10)
	halt
`+litData(), litMbox, litCondW, litCondC, litPoison, litDone,
		litMbox, litDone, litPoison, litObs, litObs+8)
}

func checkInvisibility(t *testing.T, plan *faults.Plan, wantMispredict bool) {
	t.Helper()
	chip := runLitmusChip(t, invisSrc(), [2]string{"sst", "inorder"}, [2]*faults.Plan{plan, nil})
	m := chip.Machines[0].Mem
	if seen := rd64(m, litObs); seen != 0 {
		t.Fatalf("observer saw the squashed speculative POISON store")
	}
	if mbox := rd64(m, litObs+8); mbox != 0x600D {
		t.Fatalf("final mailbox %#x, want 0x600D", mbox)
	}
	st := chip.Cores[0].(*core.Core).Stats()
	if wantMispredict && st.RollbacksBy[core.RbBranch] == 0 {
		t.Fatalf("writer never rolled back a deferred branch: the wrong-path store was not exercised (rollbacks %v)", st.RollbacksBy)
	}
}

// TestLitmusSpeculativeStoreInvisibility proves squashed SSB stores are
// never globally visible, and that the test has teeth (the wrong path
// demonstrably executed and rolled back).
func TestLitmusSpeculativeStoreInvisibility(t *testing.T) {
	checkInvisibility(t, nil, true)
}

// TestLitmusInvisibilityUnderMispredictStorm repeats the invisibility
// proof with a fault plan flipping branch predictions on the writer:
// however speculation is perturbed, squashed stores stay invisible.
func TestLitmusInvisibilityUnderMispredictStorm(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		plan := &faults.Plan{Seed: seed, Events: []faults.Event{{
			Kind: faults.MispredictStorm, From: 0, To: 5000, Arg: 8,
		}}}
		checkInvisibility(t, plan, false)
	}
}

// ---------------------------------------------------------------------
// SMT litmus
// ---------------------------------------------------------------------

// runLitmusSMT runs src's core0/core1 entries as the two hardware
// threads of one SMT in-order core sharing one functional memory.
func runLitmusSMT(t *testing.T, src string) *mem.Sparse {
	t.Helper()
	prog := mustAssemble(t, src)
	opts := sim.DefaultOptions()
	hier, err := mem.NewHierarchy(opts.Hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	shared := mem.NewSparse()
	prog.Load(shared)
	mkThread := func(sym string) smt.Thread {
		e, ok := prog.Symbol(sym)
		if !ok {
			t.Fatalf("no %s symbol", sym)
		}
		mach := &cpu.Machine{Mem: shared, Hier: hier, CoreID: 0, Pred: bpred.New(opts.Pred)}
		return smt.Thread{Core: inorder.New(mach, opts.InOrder, e), Mach: mach}
	}
	c, err := smt.New(mkThread("core0"), mkThread("core1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(c, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return shared
}

// TestLitmusSMT sweeps all three litmus shapes on the SMT model. Two
// cycle-interleaved in-order threads over one memory are sequentially
// consistent, so beyond the TSO exclusions the SC-only SB exclusion
// (0,0) holds as well.
func TestLitmusSMT(t *testing.T) {
	sbSeen := outcomeSet{}
	for _, d0 := range litmusDelays {
		for _, d1 := range []int{0, 35, 140} {
			m := runLitmusSMT(t, sbSrc(d0, d1, false))
			a, b := rd64(m, litRes0), rd64(m, litRes1)
			sbSeen[[2]int64{a, b}] = true
			if a == 0 && b == 0 {
				t.Fatalf("SB d=(%d,%d): (0,0) on an SC machine", d0, d1)
			}

			m = runLitmusSMT(t, lbSrc(d0, d1))
			if rd64(m, litRes0) == 1 && rd64(m, litRes1) == 1 {
				t.Fatalf("LB d=(%d,%d): observed (1,1)", d0, d1)
			}
		}
		m := runLitmusSMT(t, mpSrc(d0))
		if rd64(m, litRes0) == 1 && rd64(m, litRes1) == 0 {
			t.Fatalf("MP d=%d: flag=1 data=0", d0)
		}
	}
	if len(sbSeen) < 2 {
		t.Errorf("SB sweep saw only %v", sbSeen)
	}
}
