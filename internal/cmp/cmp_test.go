package cmp

import (
	"fmt"
	"strings"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
)

func hcfg() mem.HierConfig {
	return mem.HierConfig{
		L1I:     mem.CacheConfig{Name: "L1I", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 4},
		L1D:     mem.CacheConfig{Name: "L1D", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2:      mem.CacheConfig{Name: "L2", SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, HitLatency: 10, MSHRs: 16},
		L2Banks: 2,
		DRAM:    mem.DRAMConfig{Latency: 150, Banks: 4, BankBusy: 8},
	}
}

func buildInOrder(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
	return inorder.New(m, inorder.DefaultConfig(), entry), nil
}

func simpleProg(t *testing.T, result int64) *asm.Program {
	t.Helper()
	src := fmt.Sprintf(`
		movi r1, %d
		movi r2, 0
	loop:	add r2, r2, r1
		addi r1, r1, -1
		bne r1, zero, loop
		st64 r2, 0x100(zero)
		halt
	`, result)
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrivateChipRunsAllCores(t *testing.T) {
	progs := []*asm.Program{simpleProg(t, 10), simpleProg(t, 20), simpleProg(t, 30)}
	chip, err := NewPrivate(hcfg(), bpred.DefaultConfig(), progs, buildInOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	wants := []uint64{55, 210, 465}
	for i, w := range wants {
		if got := chip.Machines[i].Mem.Read(0x100, 8); got != w {
			t.Errorf("core %d result = %d, want %d", i, got, w)
		}
	}
	if chip.TotalRetired() == 0 || chip.Throughput() <= 0 {
		t.Error("empty aggregate stats")
	}
	if chip.Cycles() == 0 {
		t.Error("no cycles")
	}
}

func TestPrivateChipIsolation(t *testing.T) {
	// Identical programs in private memories must not share timing
	// state in the L2 (address salting): total DRAM reads scale with
	// core count instead of being absorbed by sharing.
	mk := func(n int) uint64 {
		progs := make([]*asm.Program, n)
		for i := range progs {
			progs[i] = simpleProg(t, 50)
		}
		chip, err := NewPrivate(hcfg(), bpred.DefaultConfig(), progs, buildInOrder)
		if err != nil {
			t.Fatal(err)
		}
		if err := chip.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return chip.Hier.DRAM().Stats.Reads
	}
	r1, r4 := mk(1), mk(4)
	if r4 < 3*r1 {
		t.Errorf("dram reads: 1 core %d, 4 cores %d — footprints shared", r1, r4)
	}
}

func TestSharedChipProducerConsumer(t *testing.T) {
	// Core 0 writes a value then sets a flag with a cas; core 1 spins on
	// the flag and reads the value. Exercises coherence invalidation.
	src := `
		.org 0x10000
	producer:
		movi r5, 0x20000
		movi r6, 4242
		st64 r6, 8(r5)       ; data
		membar
		movi r7, 1
		st64 r7, (r5)        ; flag
		halt
	consumer:
		movi r5, 0x20000
	spin:	ld64 r6, (r5)
		beq  r6, zero, spin
		ld64 r7, 8(r5)       ; data must be visible
		st64 r7, 16(r5)
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := prog.Symbol("producer")
	cons, _ := prog.Symbol("consumer")
	chip, err := NewShared(hcfg(), bpred.DefaultConfig(), prog, []uint64{prod, cons}, buildInOrder)
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := chip.Machines[0].Mem.Read(0x20010, 8); got != 4242 {
		t.Errorf("consumer read %d, want 4242", got)
	}
	if chip.Hier.Stats.CoherenceInvals == 0 {
		t.Error("no coherence invalidations in producer/consumer")
	}
}

func TestSharedChipSSTProducerConsumer(t *testing.T) {
	// The same handshake with SST cores: speculative stores must not
	// become visible early, and the consumer still observes order.
	src := `
		.org 0x10000
	producer:
		movi r5, 0x20000
		movi r6, 777
		st64 r6, 8(r5)
		membar
		movi r7, 1
		st64 r7, (r5)
		halt
	consumer:
		movi r5, 0x20000
	spin:	ld64 r6, (r5)
		beq  r6, zero, spin
		ld64 r7, 8(r5)
		st64 r7, 16(r5)
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := prog.Symbol("producer")
	cons, _ := prog.Symbol("consumer")
	chip, err := NewShared(hcfg(), bpred.DefaultConfig(), prog, []uint64{prod, cons},
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return core.New(m, core.DefaultConfig(), entry), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if got := chip.Machines[0].Mem.Read(0x20010, 8); got != 777 {
		t.Errorf("consumer read %d, want 777", got)
	}
}

func TestChipCycleLimit(t *testing.T) {
	p, err := asm.Assemble("loop: j loop")
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewPrivate(hcfg(), bpred.DefaultConfig(), []*asm.Program{p}, buildInOrder)
	if err != nil {
		t.Fatal(err)
	}
	err = chip.Run(1000)
	if err == nil || !strings.Contains(err.Error(), "cycle limit") {
		t.Errorf("want cycle-limit error, got %v", err)
	}
}

func TestEmptyChipRejected(t *testing.T) {
	if _, err := NewPrivate(hcfg(), bpred.DefaultConfig(), nil, buildInOrder); err == nil {
		t.Error("accepted empty program list")
	}
	p := simpleProg(t, 1)
	if _, err := NewShared(hcfg(), bpred.DefaultConfig(), p, nil, buildInOrder); err == nil {
		t.Error("accepted empty entry list")
	}
}
