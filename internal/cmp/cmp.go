// Package cmp is the chip-multiprocessor substrate: N cores stepped in
// lockstep over one shared L2/DRAM. ROCK is a 16-core CMP of SST cores;
// the paper's area/power argument is that a chip full of small SST cores
// outperforms a chip of big out-of-order cores per thread. This package
// supports both multiprogrammed throughput runs (each core its own
// program and private functional memory, with per-core physical-address
// salting so the shared L2 sees disjoint footprints) and true
// shared-memory runs (one memory, coherence invalidations on).
package cmp

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/mem"
)

// BuildCore constructs a core model over the machine; the harness
// supplies this so the chip is core-model-agnostic. A build error (an
// unknown core kind, say) aborts chip construction instead of crashing.
type BuildCore func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error)

// Chip is one simulated CMP.
type Chip struct {
	Hier     *mem.Hierarchy
	Machines []*cpu.Machine
	Cores    []cpu.Core
	cycle    uint64
}

// NewPrivate builds a multiprogrammed chip: core i runs progs[i] in its
// own functional memory. Coherence is off (no sharing) and each core's
// physical footprint is salted apart in the shared L2.
func NewPrivate(hcfg mem.HierConfig, pcfg bpred.Config, progs []*asm.Program, build BuildCore) (*Chip, error) {
	n := len(progs)
	if n == 0 {
		return nil, fmt.Errorf("cmp: need at least one program")
	}
	hier, err := mem.NewHierarchy(hcfg, n)
	if err != nil {
		return nil, err
	}
	c := &Chip{Hier: hier}
	// One predictor group for the chip: pcfg.Share decides whether cores
	// get private table sets or pool one (see bpred.NewGroup).
	preds := bpred.NewGroup(pcfg, n)
	for i, p := range progs {
		m := mem.NewSparse()
		p.Load(m)
		hier.SetAddressSalt(i, uint64(i)<<33)
		mach := &cpu.Machine{Mem: m, Hier: hier, CoreID: i, Pred: preds[i]}
		cr, err := build(i, mach, p.Entry)
		if err != nil {
			return nil, fmt.Errorf("cmp: core %d: %w", i, err)
		}
		c.Machines = append(c.Machines, mach)
		c.Cores = append(c.Cores, cr)
	}
	return c, nil
}

// NewShared builds a shared-memory chip: all cores execute in one
// functional memory (prog loaded once), starting at entries[i], with
// coherence invalidations enabled.
func NewShared(hcfg mem.HierConfig, pcfg bpred.Config, prog *asm.Program, entries []uint64, build BuildCore) (*Chip, error) {
	n := len(entries)
	if n == 0 {
		return nil, fmt.Errorf("cmp: need at least one entry")
	}
	hier, err := mem.NewHierarchy(hcfg, n)
	if err != nil {
		return nil, err
	}
	shared := mem.NewSparse()
	prog.Load(shared)
	c := &Chip{Hier: hier}
	preds := bpred.NewGroup(pcfg, n)
	for i, e := range entries {
		mach := &cpu.Machine{Mem: shared, Hier: hier, CoreID: i, Pred: preds[i], Coherent: true}
		cr, err := build(i, mach, e)
		if err != nil {
			return nil, fmt.Errorf("cmp: core %d: %w", i, err)
		}
		c.Machines = append(c.Machines, mach)
		c.Cores = append(c.Cores, cr)
	}
	return c, nil
}

// Run steps all cores in lockstep until every core halts or maxCycles
// elapse. When every alive core proves it is in a pure stall (see
// cpu.FastForwarder), the lockstep clock jumps to the earliest cycle any
// of them can change: with no core executing there are no stores, so no
// coherence traffic or shared-level contention can arise mid-jump, and
// per-core bulk crediting keeps all statistics bit-identical to naive
// lockstep.
func (c *Chip) Run(maxCycles uint64) error {
	for c.cycle < maxCycles {
		alive := false
		canSkip := true
		var target uint64
		for _, core := range c.Cores {
			if core.Done() {
				continue
			}
			alive = true
			if !canSkip {
				continue
			}
			ff, ok := core.(cpu.FastForwarder)
			var t uint64
			if ok {
				t = ff.NextEvent()
			}
			if t <= c.cycle {
				canSkip = false
				continue
			}
			if target == 0 || t < target {
				target = t
			}
		}
		if !alive {
			return nil
		}
		if canSkip {
			if target > maxCycles {
				target = maxCycles
			}
			if target > c.cycle {
				for _, core := range c.Cores {
					if !core.Done() {
						core.(cpu.FastForwarder).SkipTo(target)
					}
				}
				c.cycle = target
				continue
			}
		}
		for i, core := range c.Cores {
			if core.Done() {
				continue
			}
			core.Step()
			if err := core.Err(); err != nil {
				return fmt.Errorf("cmp: core %d: %w", i, err)
			}
		}
		c.cycle++
	}
	return fmt.Errorf("cmp: cycle limit %d exceeded", maxCycles)
}

// Cycles returns the chip cycles elapsed (the lockstep count).
func (c *Chip) Cycles() uint64 { return c.cycle }

// TotalRetired sums retired instructions across cores.
func (c *Chip) TotalRetired() uint64 {
	var t uint64
	for _, core := range c.Cores {
		t += core.Retired()
	}
	return t
}

// Throughput returns aggregate instructions per chip cycle.
func (c *Chip) Throughput() float64 {
	if c.cycle == 0 {
		return 0
	}
	return float64(c.TotalRetired()) / float64(c.cycle)
}
