package faults

import (
	"testing"

	"rocksim/internal/obs"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"seed=7",
		"seed=7;ckpt-deny@100-200",
		"seed=-3;rollback@500",
		"seed=0;dq-clamp@100-:4",
		"seed=1;mem-jitter@0-5000:32;mispredict@10-90:2",
		"seed=9;skip-restore@0-;ssb-clamp@5-25:1",
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := p.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if p2.String() != p.String() {
			t.Errorf("unstable canonical form %q vs %q", p2.String(), p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"bogus@5",            // unknown kind
		"ckpt-deny",          // no window
		"ckpt-deny@x",        // bad cycle
		"ckpt-deny@9-3",      // empty window
		"seed=zzz",           // bad seed
		"mem-jitter@1-2:huh", // bad arg
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	for _, src := range []string{"", "   "} {
		p, err := Parse(src)
		if err != nil || p != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", src, p, err)
		}
	}
}

// TestNilSafety: a nil plan yields a nil injector whose every method
// returns the no-fault answer.
func TestNilSafety(t *testing.T) {
	var p *Plan
	in := p.New(nil)
	if in != nil {
		t.Fatalf("nil plan built injector %v", in)
	}
	if in.DenyCheckpoint(5) || in.WantSpuriousRollback(5) || in.FlipPrediction(5) || in.SkipRestoreRegs(5) {
		t.Error("nil injector injected a fault")
	}
	if got := in.ClampDQ(5, 64); got != 64 {
		t.Errorf("nil ClampDQ = %d", got)
	}
	if got := in.ClampSSB(5, 32); got != 32 {
		t.Errorf("nil ClampSSB = %d", got)
	}
	if got := in.MemDelay(5, 0x100); got != 0 {
		t.Errorf("nil MemDelay = %d", got)
	}
	in.RollbackApplied(5)
	in.PublishObs(obs.NewRegistry())
	if c := in.Counts(); c != ([NumKinds]uint64{}) {
		t.Errorf("nil Counts = %v", c)
	}
	if p.String() != "" {
		t.Errorf("nil plan String = %q", p.String())
	}
}

func TestWindowing(t *testing.T) {
	p := &Plan{Seed: 1, Events: []Event{
		{Kind: CkptDeny, From: 100, To: 200},
		{Kind: DQClamp, From: 50, To: 0, Arg: 4}, // open-ended
	}}
	in := p.New(nil)
	if in.DenyCheckpoint(99) {
		t.Error("deny before window")
	}
	if !in.DenyCheckpoint(100) || !in.DenyCheckpoint(199) {
		t.Error("no deny inside window")
	}
	if in.DenyCheckpoint(200) {
		t.Error("deny at exclusive end")
	}
	if got := in.ClampDQ(49, 64); got != 64 {
		t.Errorf("clamp before window: %d", got)
	}
	if got := in.ClampDQ(1<<40, 64); got != 4 {
		t.Errorf("open-ended clamp: %d", got)
	}
	if got := in.ClampDQ(60, 2); got != 2 {
		t.Errorf("clamp must never raise capacity: %d", got)
	}
}

func TestSpuriousRollbackOneShot(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: Rollback, From: 500}}}
	in := p.New(nil)
	if in.WantSpuriousRollback(499) {
		t.Error("rollback due early")
	}
	// Due but deferred: stays armed until applied.
	if !in.WantSpuriousRollback(500) || !in.WantSpuriousRollback(600) {
		t.Error("rollback not due")
	}
	in.RollbackApplied(600)
	if in.WantSpuriousRollback(601) {
		t.Error("one-shot fired twice")
	}
	if got := in.Counts()[Rollback]; got != 1 {
		t.Errorf("rollback count = %d", got)
	}
}

func TestMemDelayDeterministicAndBounded(t *testing.T) {
	p := &Plan{Seed: 42, Events: []Event{{Kind: MemJitter, From: 0, To: 1000, Arg: 16}}}
	a, b := p.New(nil), p.New(nil)
	sawNonZero := false
	for now := uint64(0); now < 1000; now += 7 {
		da := a.MemDelay(now, now*64)
		db := b.MemDelay(now, now*64)
		if da != db {
			t.Fatalf("nondeterministic delay at %d: %d vs %d", now, da, db)
		}
		if da > 16 {
			t.Fatalf("delay %d exceeds Arg", da)
		}
		if da > 0 {
			sawNonZero = true
		}
	}
	if !sawNonZero {
		t.Error("jitter never injected")
	}
}

func TestFlipPredictionDeterministicPeriod(t *testing.T) {
	p := &Plan{Seed: 3, Events: []Event{{Kind: MispredictStorm, From: 0, To: 0, Arg: 2}}}
	a, b := p.New(nil), p.New(nil)
	flips := 0
	const n = 2000
	for i := 0; i < n; i++ {
		fa := a.FlipPrediction(uint64(i))
		if fb := b.FlipPrediction(uint64(i)); fa != fb {
			t.Fatalf("nondeterministic flip at %d", i)
		}
		if fa {
			flips++
		}
	}
	// Roughly one in Arg=2; allow a wide band.
	if flips < n/4 || flips > 3*n/4 {
		t.Errorf("flip rate %d/%d far from 1/2", flips, n)
	}
}

func TestRandomPlansDeterministicAndBenign(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p1, p2 := Random(seed, 10000), Random(seed, 10000)
		if p1.String() != p2.String() {
			t.Fatalf("seed %d: nondeterministic plan", seed)
		}
		if len(p1.Events) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		for _, e := range p1.Events {
			if e.Kind == SkipRestore {
				t.Fatalf("seed %d: random plan contains skip-restore", seed)
			}
			if e.Kind != Rollback && e.To == 0 {
				t.Fatalf("seed %d: random windowed event %v is open-ended", seed, e)
			}
		}
		// The canonical form must survive a round trip (it keys run caches).
		rp, err := Parse(p1.String())
		if err != nil || rp.String() != p1.String() {
			t.Fatalf("seed %d: round trip failed: %v", seed, err)
		}
	}
}

// TestObsEventsCapped: sink events are bounded per kind, counters are not.
func TestObsEventsCapped(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: CkptDeny, From: 0, To: 0}}}
	var rec eventRecorder
	in := p.New(&rec)
	for now := uint64(0); now < 100; now++ {
		in.DenyCheckpoint(now)
	}
	if got := in.Counts()[CkptDeny]; got != 100 {
		t.Errorf("count = %d", got)
	}
	if len(rec.events) != eventLogMax {
		t.Errorf("sink events = %d, want %d", len(rec.events), eventLogMax)
	}
	reg := obs.NewRegistry()
	in.PublishObs(reg)
	if got := reg.Counter("faults/injected/ckpt-deny").Value(); got != 100 {
		t.Errorf("published counter = %d", got)
	}
}

// eventRecorder is a minimal obs.Sink capturing Event calls.
type eventRecorder struct {
	events []string
}

func (r *eventRecorder) Attach(model string, occNames []string)                     {}
func (r *eventRecorder) CycleState(now uint64, mode string, ex, rep int, occ []int) {}
func (r *eventRecorder) SpanBegin(now uint64, cat, name string, id uint64)          {}
func (r *eventRecorder) SpanEnd(now uint64, cat string, id uint64)                  {}
func (r *eventRecorder) Span(start, end uint64, cat, name string)                   {}
func (r *eventRecorder) Event(now uint64, cat, name, detail string) {
	r.events = append(r.events, cat+"/"+name)
}
