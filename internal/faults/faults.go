// Package faults is a deterministic, seed-driven fault injector for the
// simulated machines. A Plan is an immutable schedule of perturbations —
// denied checkpoint allocations, spurious rollbacks, deferred-queue and
// store-buffer capacity clamps, jittered memory timing, mispredict
// storms — that the core and memory models consult at fixed points in
// their cycle loops. Every decision is a pure function of the plan's
// seed and the query's coordinates (cycle, address, call count), so a
// run under a plan is exactly reproducible and cacheable like any other.
//
// The point of the package is the paper's invisibility invariant: SST
// speculation must produce bit-identical architectural state no matter
// which microarchitectural misfortunes strike mid-flight. Every fault
// kind except SkipRestore is architecture-preserving by construction —
// it may change *when* things happen, never *what* the program computes
// — and internal/sim's fault-fuzz oracle enforces exactly that.
// SkipRestore deliberately breaks the rollback path so the oracle's
// teeth can be tested.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"rocksim/internal/obs"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// Fault kinds. All are architecture-preserving except SkipRestore.
const (
	// CkptDeny makes checkpoint allocation fail while active: the core
	// behaves as if every checkpoint register were occupied (stall-on-use
	// in normal mode, merged epochs while speculating).
	CkptDeny Kind = iota
	// Rollback forces one spurious rollback to the youngest live
	// checkpoint at (or as soon as possible after) cycle From — the model
	// of a transient fault that squashes in-flight speculation.
	Rollback
	// DQClamp clamps the effective Deferred Queue capacity to Arg while
	// active.
	DQClamp
	// SSBClamp clamps the effective speculative store buffer capacity to
	// Arg while active.
	SSBClamp
	// MemJitter delays memory-hierarchy accesses by a deterministic
	// pseudo-random 0..Arg extra cycles while active.
	MemJitter
	// MispredictStorm flips roughly one in Arg branch predictions while
	// active (Arg=1 flips every one).
	MispredictStorm
	// SkipRestore makes rollback skip the register-file restore while
	// active. This is an intentionally architectural fault: it exists so
	// tests can prove the invisibility oracle detects a broken rollback.
	SkipRestore
	NumKinds
)

var kindNames = [NumKinds]string{
	CkptDeny:        "ckpt-deny",
	Rollback:        "rollback",
	DQClamp:         "dq-clamp",
	SSBClamp:        "ssb-clamp",
	MemJitter:       "mem-jitter",
	MispredictStorm: "mispredict",
	SkipRestore:     "skip-restore",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindByName parses a fault-kind name.
func KindByName(s string) (Kind, error) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Event is one scheduled perturbation. Windowed kinds are active over
// cycles [From, To) (To=0 means open-ended); the one-shot Rollback kind
// fires once at the first opportunity at or after From and ignores To.
type Event struct {
	Kind Kind
	From uint64
	To   uint64
	// Arg is the kind-specific magnitude: clamp capacity (DQClamp,
	// SSBClamp), maximum extra delay in cycles (MemJitter), or flip
	// period (MispredictStorm; 0 is treated as 1 = every prediction).
	Arg uint64
}

// active reports whether a windowed event covers cycle now.
func (e Event) active(now uint64) bool {
	return now >= e.From && (e.To == 0 || now < e.To)
}

// String renders the event in the plan grammar: name@From[-To][:Arg].
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.Kind.String())
	sb.WriteByte('@')
	sb.WriteString(strconv.FormatUint(e.From, 10))
	if e.Kind != Rollback {
		sb.WriteByte('-')
		if e.To != 0 {
			sb.WriteString(strconv.FormatUint(e.To, 10))
		}
	}
	if e.Arg != 0 {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(e.Arg, 10))
	}
	return sb.String()
}

// Plan is an immutable fault schedule. The zero Plan (and a nil *Plan)
// injects nothing. Seed drives every pseudo-random decision (memory
// jitter, storm flips), so two runs of one plan are identical.
type Plan struct {
	Seed   int64
	Events []Event
}

// String renders the plan in the canonical grammar accepted by Parse:
//
//	seed=7;ckpt-deny@100-200;rollback@500;mem-jitter@0-:16
//
// Options fingerprints embed this string, so it must (and does) cover
// every behavior-affecting field.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Events)+1)
	parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// Parse decodes the plan grammar produced by String: semicolon-separated
// elements, an optional leading "seed=N", then events of the form
// name@From (one-shot), name@From-To or name@From- (window; empty To is
// open-ended), each optionally suffixed ":Arg". An empty string yields
// nil (no plan).
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			p.Seed = seed
			continue
		}
		name, spec, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faults: bad event %q (want name@cycles)", part)
		}
		k, err := KindByName(name)
		if err != nil {
			return nil, err
		}
		e := Event{Kind: k}
		if window, arg, ok := strings.Cut(spec, ":"); ok {
			if e.Arg, err = strconv.ParseUint(arg, 10, 64); err != nil {
				return nil, fmt.Errorf("faults: bad arg in %q: %v", part, err)
			}
			spec = window
		}
		if from, to, ok := strings.Cut(spec, "-"); ok {
			if e.From, err = strconv.ParseUint(from, 10, 64); err != nil {
				return nil, fmt.Errorf("faults: bad window in %q: %v", part, err)
			}
			if to != "" {
				if e.To, err = strconv.ParseUint(to, 10, 64); err != nil {
					return nil, fmt.Errorf("faults: bad window in %q: %v", part, err)
				}
				if e.To <= e.From {
					return nil, fmt.Errorf("faults: empty window in %q", part)
				}
			}
		} else if e.From, err = strconv.ParseUint(spec, 10, 64); err != nil {
			return nil, fmt.Errorf("faults: bad cycle in %q: %v", part, err)
		}
		p.Events = append(p.Events, e)
	}
	return p, nil
}

// Random generates a benign fault plan from seed: one to five events of
// the architecture-preserving kinds, scheduled within the first horizon
// cycles. SkipRestore is never generated — random plans feed the
// invisibility oracle, which must pass on them. Window ends are always
// bounded so a clamp or storm cannot outlive the run's useful work.
func Random(seed int64, horizon uint64) *Plan {
	if horizon < 16 {
		horizon = 16
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	n := 1 + rng.Intn(5)
	kinds := []Kind{CkptDeny, Rollback, DQClamp, SSBClamp, MemJitter, MispredictStorm}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		from := uint64(rng.Int63n(int64(horizon)))
		length := 1 + uint64(rng.Int63n(int64(horizon/2+1)))
		e := Event{Kind: k, From: from, To: from + length}
		switch k {
		case Rollback:
			e.To = 0
		case DQClamp, SSBClamp:
			e.Arg = uint64(rng.Intn(8))
		case MemJitter:
			e.Arg = 1 + uint64(rng.Intn(64))
		case MispredictStorm:
			e.Arg = 1 + uint64(rng.Intn(4))
		}
		p.Events = append(p.Events, e)
	}
	return p
}

// eventLogMax bounds per-kind sink events so a long jitter window cannot
// flood a trace; injections beyond it are still counted.
const eventLogMax = 8

// Injector is the per-run mutable state of a plan: which one-shots have
// fired, per-kind injection counts, and the sink receiving "fault"
// events. Build one per simulated core (or hierarchy) with Plan.New.
// All methods are nil-receiver safe and return the no-fault answer, so
// models hold a possibly-nil *Injector and call it unconditionally.
type Injector struct {
	plan    *Plan
	sink    obs.Sink
	fired   []bool
	counts  [NumKinds]uint64
	queries uint64 // monotonically numbers storm-window prediction queries
}

// New builds a fresh injector for one run. A nil plan returns a nil
// injector, which is valid and injects nothing.
func (p *Plan) New(sink obs.Sink) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p, sink: sink, fired: make([]bool, len(p.Events))}
}

// record counts one injection and emits a sink event for the first few.
func (in *Injector) record(k Kind, now uint64, detail string) {
	in.counts[k]++
	if in.sink != nil && in.counts[k] <= eventLogMax {
		in.sink.Event(now, "fault", k.String(), detail)
	}
}

// Counts returns per-kind injection counts so far.
func (in *Injector) Counts() [NumKinds]uint64 {
	if in == nil {
		return [NumKinds]uint64{}
	}
	return in.counts
}

// PublishObs exports the per-kind injection counters ("faults/injected/
// <kind>") into r. No-op when either side is nil.
func (in *Injector) PublishObs(r *obs.Registry) {
	if in == nil || r == nil {
		return
	}
	for k := Kind(0); k < NumKinds; k++ {
		if in.counts[k] > 0 {
			r.Counter("faults/injected/" + k.String()).Set(in.counts[k])
		}
	}
}

// Mutations returns a value that changes whenever any injector state
// mutates (injection counts, storm-query numbering, one-shot firings).
// The fast-forward layer snapshots it around a candidate stall cycle: a
// cycle whose injector queries left a trace is not a pure stall and must
// never be skipped, since naive stepping would repeat those queries
// every cycle.
func (in *Injector) Mutations() uint64 {
	if in == nil {
		return 0
	}
	var sum uint64
	for _, c := range in.counts {
		sum += c
	}
	return sum + in.queries
}

// NextChange returns the earliest cycle strictly after now at which the
// plan's behavior can change — a window opening or closing, or an
// unfired one-shot rollback coming due (0 = never). Clock jumps are
// bounded by it: inside one plan regime a pure stall stays pure, but the
// cycle a window opens must be re-stepped naively.
func (in *Injector) NextChange(now uint64) uint64 {
	if in == nil {
		return 0
	}
	var next uint64
	bound := func(c uint64) {
		if c > now && (next == 0 || c < next) {
			next = c
		}
	}
	for i, e := range in.plan.Events {
		if e.Kind == Rollback {
			if !in.fired[i] {
				bound(e.From)
			}
			continue
		}
		bound(e.From)
		bound(e.To)
	}
	return next
}

// DenyCheckpoint reports whether checkpoint allocation must fail at
// cycle now.
func (in *Injector) DenyCheckpoint(now uint64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.plan.Events {
		if e.Kind == CkptDeny && e.active(now) {
			in.record(CkptDeny, now, "checkpoint allocation denied")
			return true
		}
	}
	return false
}

// WantSpuriousRollback reports whether a scheduled spurious rollback is
// due at cycle now. The core applies it only when the pipeline can roll
// back (a live checkpoint, no open transaction) and then confirms with
// RollbackApplied; until confirmed the event stays armed, so a rollback
// scheduled during a non-speculative stretch fires at the next epoch.
func (in *Injector) WantSpuriousRollback(now uint64) bool {
	if in == nil {
		return false
	}
	for i, e := range in.plan.Events {
		if e.Kind == Rollback && !in.fired[i] && now >= e.From {
			return true
		}
	}
	return false
}

// RollbackApplied consumes the oldest due spurious-rollback event.
func (in *Injector) RollbackApplied(now uint64) {
	if in == nil {
		return
	}
	for i, e := range in.plan.Events {
		if e.Kind == Rollback && !in.fired[i] && now >= e.From {
			in.fired[i] = true
			in.record(Rollback, now, "forced rollback to youngest checkpoint")
			return
		}
	}
}

// clamp returns capacity reduced by the active events of kind k.
func (in *Injector) clamp(k Kind, now uint64, capacity int) int {
	if in == nil {
		return capacity
	}
	clamped := false
	for _, e := range in.plan.Events {
		if e.Kind == k && e.active(now) && int(e.Arg) < capacity {
			capacity = int(e.Arg)
			clamped = true
		}
	}
	if clamped {
		in.record(k, now, fmt.Sprintf("capacity clamped to %d", capacity))
	}
	return capacity
}

// ClampDQ returns the effective Deferred Queue capacity at cycle now.
func (in *Injector) ClampDQ(now uint64, capacity int) int {
	return in.clamp(DQClamp, now, capacity)
}

// ClampSSB returns the effective store-buffer capacity at cycle now.
func (in *Injector) ClampSSB(now uint64, capacity int) int {
	return in.clamp(SSBClamp, now, capacity)
}

// MemDelay returns the extra cycles to add to a memory access issued at
// cycle now for addr. Deterministic in (seed, now, addr).
func (in *Injector) MemDelay(now, addr uint64) uint64 {
	if in == nil {
		return 0
	}
	var delay uint64
	for _, e := range in.plan.Events {
		if e.Kind == MemJitter && e.active(now) && e.Arg > 0 {
			delay += mix(uint64(in.plan.Seed), now, addr) % (e.Arg + 1)
		}
	}
	if delay > 0 {
		in.record(MemJitter, now, fmt.Sprintf("+%d cycles addr=%#x", delay, addr))
	}
	return delay
}

// FlipPrediction reports whether this branch prediction must be
// inverted. Decisions hash a per-injector call counter so each query in
// a storm window is independent yet fully reproducible.
func (in *Injector) FlipPrediction(now uint64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.plan.Events {
		if e.Kind == MispredictStorm && e.active(now) {
			in.queries++
			period := e.Arg
			if period == 0 {
				period = 1
			}
			if mix(uint64(in.plan.Seed), in.queries, now)%period == 0 {
				in.record(MispredictStorm, now, "prediction flipped")
				return true
			}
			return false
		}
	}
	return false
}

// SkipRestoreRegs reports whether a rollback at cycle now must skip the
// register-file restore (the deliberately architectural fault proving
// the invisibility oracle has teeth).
func (in *Injector) SkipRestoreRegs(now uint64) bool {
	if in == nil {
		return false
	}
	for _, e := range in.plan.Events {
		if e.Kind == SkipRestore && e.active(now) {
			in.record(SkipRestore, now, "register restore skipped (intentional corruption)")
			return true
		}
	}
	return false
}

// mix is a splitmix64-style hash of three words, the source of every
// pseudo-random per-query decision.
func mix(a, b, c uint64) uint64 {
	x := a ^ b*0x9e3779b97f4a7c15 ^ c*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
