// Package cpu provides the scaffolding shared by every core model: the
// Core interface the simulator drives, the per-core machine context
// (functional memory, timing hierarchy, branch predictor), the frontend
// (instruction fetch with I-cache timing and redirect bubbles), and the
// common statistics block. Keeping this layer identical across in-order,
// out-of-order and SST cores is what makes their comparison measure only
// the pipeline technique.
package cpu

import (
	"context"
	"errors"
	"fmt"

	"rocksim/internal/bpred"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
)

// Core is one simulated processor core advanced cycle by cycle.
type Core interface {
	// Step advances the core by one clock cycle.
	Step()
	// Cycle returns the current cycle count.
	Cycle() uint64
	// Done reports whether the program has halted (architecturally).
	Done() bool
	// Retired returns the number of architecturally retired
	// (committed) instructions.
	Retired() uint64
	// Base returns the common statistics block.
	Base() *BaseStats
	// Err returns a fatal simulation error (illegal instruction), if any.
	Err() error
}

// FastForwarder is the optional Core extension behind event-driven
// stall skipping. A core that can prove it is in a pure stall — a state
// in which stepping would change nothing except time-indexed stall
// accounting — reports the earliest future cycle at which its state can
// actually change, and the run loop advances the clock there in one
// jump.
//
// The contract is bit-identity: after SkipTo(target), every counter,
// histogram, sink emission and piece of architectural state must equal
// what stepping cycle by cycle from Cycle() to target would have
// produced. A core unsure of that for its current state must return 0
// from NextEvent and be stepped naively; skipping is an optimization,
// never a semantic.
type FastForwarder interface {
	Core
	// NextEvent returns the earliest cycle strictly greater than Cycle()
	// at which the core's state can change (an MSHR fill, a long-op
	// completion, a fetch-line delivery, a fault-plan boundary), or 0
	// when the core cannot prove its current state is a pure stall.
	NextEvent() uint64
	// SkipTo advances the clock to target, bulk-crediting the skipped
	// cycles exactly as naive stepping would. Valid only when NextEvent
	// returned t with Cycle() < target <= t.
	SkipTo(target uint64)
}

// BaseStats is the statistics block common to all core models.
type BaseStats struct {
	Cycles  uint64
	Retired uint64

	Loads       uint64
	Stores      uint64
	LoadL1Hits  uint64
	LoadL2Hits  uint64
	LoadMemHits uint64

	Branches      uint64
	BranchMispred uint64

	// MLP accounting: each cycle with >=1 outstanding data miss
	// contributes one sample whose value is the number outstanding.
	MLPSamples uint64
	MLPSum     uint64

	// CPI is the cycle-accounting stack: every simulated cycle lands in
	// exactly one bucket (see cpi.go for the taxonomy and invariant).
	CPI [NumBuckets]uint64
}

// IPC returns retired instructions per cycle.
func (s *BaseStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MLP returns the average number of outstanding data misses over cycles
// that had at least one outstanding.
func (s *BaseStats) MLP() float64 {
	if s.MLPSamples == 0 {
		return 0
	}
	return float64(s.MLPSum) / float64(s.MLPSamples)
}

// CountLoadLevel attributes a load to the hierarchy level that served it.
func (s *BaseStats) CountLoadLevel(lvl mem.Level) {
	switch lvl {
	case mem.LvlL1:
		s.LoadL1Hits++
	case mem.LvlL2:
		s.LoadL2Hits++
	default:
		s.LoadMemHits++
	}
}

// SampleMLP records one cycle's outstanding-miss count.
func (s *BaseStats) SampleMLP(outstanding int) {
	if outstanding > 0 {
		s.MLPSamples++
		s.MLPSum += uint64(outstanding)
	}
}

// PublishObs publishes the common per-core counter set into the
// registry. It also creates the uniform checkpoint/DQ metrics at zero so
// that every core model — speculative or not — exports the same core
// set; checkpointed cores overwrite them with real figures.
func (s *BaseStats) PublishObs(r *obs.Registry) {
	r.Counter("core/cycles").Set(s.Cycles)
	r.Counter("core/insts").Set(s.Retired)
	r.Counter("core/loads").Set(s.Loads)
	r.Counter("core/stores").Set(s.Stores)
	r.Counter("core/load_l1_hits").Set(s.LoadL1Hits)
	r.Counter("core/load_l2_hits").Set(s.LoadL2Hits)
	r.Counter("core/load_mem_hits").Set(s.LoadMemHits)
	r.Counter("core/branches").Set(s.Branches)
	r.Counter("core/branch_mispredicts").Set(s.BranchMispred)
	r.Counter("core/mlp_samples").Set(s.MLPSamples)
	r.Counter("core/mlp_sum").Set(s.MLPSum)
	s.publishCPI(r)
	// Uniform cross-model placeholders (see doc comment).
	r.Counter("core/checkpoints_taken")
	r.Counter("core/checkpoints_committed")
	r.Counter("core/checkpoints_aborted")
	r.Gauge("core/dq_highwater")
}

// Machine is the per-core execution context handed to a core model.
type Machine struct {
	Mem    *mem.Sparse    // functional (architectural) memory
	Hier   *mem.Hierarchy // timing hierarchy
	CoreID int            // port index into the hierarchy
	Pred   *bpred.Predictor

	// Coherent controls whether committed stores broadcast
	// invalidations to other cores' L1Ds (enabled by the CMP harness).
	Coherent bool
}

// NewMachine builds a single-core machine over a fresh hierarchy.
func NewMachine(m *mem.Sparse, hcfg mem.HierConfig, pcfg bpred.Config) (*Machine, error) {
	h, err := mem.NewHierarchy(hcfg, 1)
	if err != nil {
		return nil, err
	}
	return &Machine{Mem: m, Hier: h, CoreID: 0, Pred: bpred.New(pcfg)}, nil
}

// Reset returns the machine's shared structures — functional memory,
// timing hierarchy and branch predictor — to their freshly constructed
// state in place, as the first step of reusing a pooled simulator (see
// sim.Instance). Core models reset themselves on top via their own
// Reset methods.
func (m *Machine) Reset() {
	m.Mem.Reset()
	m.Hier.Reset()
	if m.Pred != nil {
		m.Pred.Reset()
	}
}

// StoreVisible publishes a committed store for coherence purposes.
func (m *Machine) StoreVisible(addr uint64) {
	if m.Coherent {
		m.Hier.StoreVisible(m.CoreID, addr)
	}
}

// ErrCycleLimit is returned by Run when the cycle budget is exhausted.
var ErrCycleLimit = errors.New("cpu: cycle limit exceeded")

// ErrLivelock is returned by RunCtx when the core makes no architectural
// progress for a whole livelock window: the simulated machine is
// spinning (a model bug, a pathological fault plan) and would otherwise
// burn the full cycle budget before failing.
var ErrLivelock = errors.New("cpu: no forward progress (livelock)")

// ErrDeadline is returned by RunCtx when the run's context expires (a
// wall-clock watchdog) before the program halts.
var ErrDeadline = errors.New("cpu: run deadline exceeded")

// RunConfig bounds a watchdogged run (see RunCtx).
type RunConfig struct {
	// MaxCycles bounds the run in simulated cycles (0 = unbounded).
	MaxCycles uint64
	// LivelockWindow errors the run when the core shows no activity —
	// no retire, load, store or branch execution — for this many
	// consecutive cycles (0 = detector off). Retirement alone is too
	// strict a progress signal: a checkpointed core can legitimately run
	// millions of cycles of speculative work before its first bulk
	// commit, but during that time it is executing memory operations,
	// which the activity counter sees. A wedged core advances nothing.
	LivelockWindow uint64
	// CheckEvery is the cycle granularity of the context and livelock
	// checks (0 = a sensible default). Checks are off the per-cycle path;
	// detection latency is at most one check interval. Fast-forward jumps
	// are clamped to check boundaries, so a multi-million-cycle jump
	// cannot delay a deadline or livelock check: the watchdogs run at
	// least once per check interval in both simulated cycles and loop
	// iterations.
	CheckEvery uint64
	// DisableFastForward steps the core naively even when it implements
	// FastForwarder. The differential fuzz uses it to prove skipped and
	// naive runs are bit-identical.
	DisableFastForward bool
}

// Run steps the core until it halts or maxCycles elapse.
func Run(c Core, maxCycles uint64) error {
	return RunCtx(context.Background(), c, RunConfig{MaxCycles: maxCycles})
}

// RunCtx steps the core until it halts, with three watchdogs: the
// simulated-cycle budget, the context's wall-clock deadline (or
// cancellation), and a no-forward-progress livelock detector. Every
// returned error reports the cycle and retire counts at failure so a
// hung run is attributable.
func RunCtx(ctx context.Context, c Core, cfg RunConfig) error {
	check := cfg.CheckEvery
	if check == 0 {
		check = 4096
	}
	if cfg.LivelockWindow > 0 && check > cfg.LivelockWindow/2 {
		// Keep detection latency within half a window.
		check = cfg.LivelockWindow/2 + 1
	}
	ff, _ := c.(FastForwarder)
	if cfg.DisableFastForward {
		ff = nil
	}
	lastWork := coreWork(c)
	lastProgress := c.Cycle()
	next := c.Cycle() + check
	for !c.Done() {
		cyc := c.Cycle()
		if cfg.MaxCycles > 0 && cyc >= cfg.MaxCycles {
			return fmt.Errorf("%w (%d cycles, %d retired)", ErrCycleLimit, cyc, c.Retired())
		}
		if cyc >= next {
			next = cyc + check
			if ctx != nil && ctx.Err() != nil {
				return fmt.Errorf("%w at cycle %d (%d retired): %v", ErrDeadline, cyc, c.Retired(), ctx.Err())
			}
			if w := coreWork(c); w != lastWork {
				lastWork = w
				lastProgress = cyc
			} else if cfg.LivelockWindow > 0 && cyc-lastProgress >= cfg.LivelockWindow {
				return fmt.Errorf("%w: no activity in %d cycles (cycle %d, %d retired)",
					ErrLivelock, cyc-lastProgress, cyc, c.Retired())
			}
		}
		if ff != nil {
			if t := ff.NextEvent(); t > cyc {
				// Pure stall until t: jump there instead of stepping, but
				// never past a watchdog boundary or the cycle budget, so
				// every check (and every limit error) fires at the exact
				// cycle naive stepping would reach it.
				target := t
				if target > next {
					target = next
				}
				if cfg.MaxCycles > 0 && target > cfg.MaxCycles {
					target = cfg.MaxCycles
				}
				if target > cyc {
					ff.SkipTo(target)
					continue
				}
			}
		}
		c.Step()
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}

// coreWork is the livelock detector's monotonic activity counter:
// anything the core executes — architecturally or speculatively — counts
// as forward motion. A genuinely wedged core (a lost memory response, a
// stalled pipeline that will never refill) advances none of these.
func coreWork(c Core) uint64 {
	s := c.Base()
	return s.Retired + s.Loads + s.Stores + s.Branches
}
