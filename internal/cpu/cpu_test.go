package cpu

import (
	"errors"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func machine(t *testing.T, prog *asm.Program) *Machine {
	t.Helper()
	m := mem.NewSparse()
	prog.Load(m)
	mach, err := NewMachine(m, mem.DefaultHierConfig(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return mach
}

func TestFrontendSequentialDelivery(t *testing.T) {
	prog, err := asm.Assemble(`
		movi r1, 1
		movi r2, 2
		movi r3, 3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine(t, prog)
	fe := NewFrontend(mach, prog.Entry)

	// Cold I-cache: first delivery stalls until the line arrives.
	_, _, ok, err := fe.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("delivered before the fetch line arrived")
	}
	// Advance time far enough for the fill.
	now := uint64(2000)
	var got []isa.Op
	for i := 0; i < 4; i++ {
		in, pc, ok, err := fe.Next(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stalled at inst %d", i)
		}
		if pc != prog.Entry+uint64(i)*isa.InstSize {
			t.Errorf("pc = %#x", pc)
		}
		got = append(got, in.Op)
		fe.Advance()
	}
	want := []isa.Op{isa.OpMovi, isa.OpMovi, isa.OpMovi, isa.OpHalt}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFrontendRedirectBubble(t *testing.T) {
	prog, err := asm.Assemble(`
		movi r1, 1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	mach := machine(t, prog)
	fe := NewFrontend(mach, prog.Entry)
	// Warm the line: step time forward until the first fetch delivers.
	now := uint64(0)
	for ; now < 10_000; now++ {
		if _, _, ok, _ := fe.Next(now); ok {
			break
		}
	}
	if now == 10_000 {
		t.Fatal("fetch never delivered")
	}
	fe.Redirect(prog.Entry+8, now, 5)
	if !fe.Stalled(now + 4) {
		t.Error("not stalled inside bubble")
	}
	if fe.Stalled(now + 5) {
		t.Error("still stalled after bubble")
	}
	if _, _, ok, _ := fe.Next(now + 3); ok {
		t.Error("delivered during bubble")
	}
	// The redirected fetch pays one more L1I hit latency (same line).
	fe.Next(now + 5)
	in, pc, ok, err := fe.Next(now + 6)
	if err != nil || !ok {
		t.Fatalf("not delivered after bubble: %v", err)
	}
	if pc != prog.Entry+8 || in.Op != isa.OpHalt {
		t.Errorf("redirect target wrong: pc=%#x %v", pc, in.Op)
	}
}

func TestFrontendDecodeError(t *testing.T) {
	prog, err := asm.Assemble("halt")
	if err != nil {
		t.Fatal(err)
	}
	mach := machine(t, prog)
	// Scribble garbage at the entry.
	mach.Mem.Write(prog.Entry, 1, 0xee)
	fe := NewFrontend(mach, prog.Entry)
	fe.Next(5000) // starts the line fetch
	if _, _, _, err := fe.Next(6000); err == nil {
		t.Error("decode error not surfaced")
	}
}

func TestBaseStatsHelpers(t *testing.T) {
	var s BaseStats
	if s.IPC() != 0 || s.MLP() != 0 {
		t.Error("zero-state helpers nonzero")
	}
	s.Cycles = 100
	s.Retired = 250
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
	s.SampleMLP(0) // no outstanding: not a sample
	s.SampleMLP(3)
	s.SampleMLP(5)
	if s.MLP() != 4 {
		t.Errorf("MLP = %f", s.MLP())
	}
	s.CountLoadLevel(mem.LvlL1)
	s.CountLoadLevel(mem.LvlL2)
	s.CountLoadLevel(mem.LvlMem)
	if s.LoadL1Hits != 1 || s.LoadL2Hits != 1 || s.LoadMemHits != 1 {
		t.Error("level counting wrong")
	}
}

type stuckCore struct{ cycles uint64 }

func (s *stuckCore) Step()            { s.cycles++ }
func (s *stuckCore) Cycle() uint64    { return s.cycles }
func (s *stuckCore) Done() bool       { return false }
func (s *stuckCore) Retired() uint64  { return 0 }
func (s *stuckCore) Base() *BaseStats { return &BaseStats{} }
func (s *stuckCore) Err() error       { return nil }

func TestRunCycleLimit(t *testing.T) {
	err := Run(&stuckCore{}, 100)
	if !errors.Is(err, ErrCycleLimit) {
		t.Errorf("want ErrCycleLimit, got %v", err)
	}
}

func TestStoreVisibleRespectsCoherentFlag(t *testing.T) {
	prog, err := asm.Assemble("halt")
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.Load(m)
	hier, err := mem.NewHierarchy(mem.DefaultHierConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Core 1 caches a line.
	hier.Access(1, mem.AccRead, 0x8000, 0)
	mach := &Machine{Mem: m, Hier: hier, CoreID: 0, Pred: bpred.New(bpred.DefaultConfig())}
	mach.StoreVisible(0x8000) // not coherent: no invalidation
	if hier.Stats.CoherenceInvals != 0 {
		t.Error("incoherent machine invalidated")
	}
	mach.Coherent = true
	mach.StoreVisible(0x8000)
	if hier.Stats.CoherenceInvals != 1 {
		t.Error("coherent machine did not invalidate")
	}
}
