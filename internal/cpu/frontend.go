package cpu

import (
	"fmt"

	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// Frontend models instruction delivery: sequential fetch through the
// L1 instruction cache with a one-line fetch buffer, plus redirect
// bubbles for taken branches and mispredictions. All core models share
// it, so frontend behaviour never biases the pipeline comparison.
type Frontend struct {
	m *Machine

	pc         uint64
	stallUntil uint64 // no instruction delivery before this cycle

	// One-line fetch buffer.
	lineAddr  uint64
	lineReady uint64
	haveLine  bool
}

// NewFrontend creates a frontend beginning execution at entry.
func NewFrontend(m *Machine, entry uint64) *Frontend {
	return &Frontend{m: m, pc: entry}
}

// PC returns the address of the next instruction to deliver.
func (f *Frontend) PC() uint64 { return f.pc }

// Redirect steers fetch to target, inserting penalty bubble cycles
// starting at cycle now. Used for taken branches, mispredictions and
// speculation rollbacks.
func (f *Frontend) Redirect(target uint64, now uint64, penalty uint64) {
	f.pc = target
	f.haveLine = false
	if until := now + penalty; until > f.stallUntil {
		f.stallUntil = until
	}
}

// Stalled reports whether the frontend is inside a redirect bubble at
// cycle now.
func (f *Frontend) Stalled(now uint64) bool { return now < f.stallUntil }

// Advance moves the sequential fetch point past the instruction just
// delivered (called by the core after consuming an instruction that did
// not redirect).
func (f *Frontend) Advance() { f.pc += isa.InstSize }

// Next returns the instruction at the current PC if it can be delivered
// at cycle now. ok is false while the frontend is stalled on a redirect
// bubble or an instruction-cache fill.
func (f *Frontend) Next(now uint64) (in isa.Inst, pc uint64, ok bool, err error) {
	if now < f.stallUntil {
		return isa.Inst{}, 0, false, nil
	}
	line := f.m.Hier.L1I(f.m.CoreID).LineAddr(f.pc)
	if !f.haveLine || f.lineAddr != line {
		res := f.m.Hier.Access(f.m.CoreID, mem.AccFetch, f.pc, now)
		f.lineAddr = line
		f.lineReady = res.Ready
		f.haveLine = true
	}
	if now < f.lineReady {
		return isa.Inst{}, 0, false, nil
	}
	w := f.m.Mem.Read(f.pc, isa.InstSize)
	in, derr := isa.DecodeWord(w)
	if derr != nil {
		return in, f.pc, false, fmt.Errorf("cpu: fetch at pc=%#x: %w", f.pc, derr)
	}
	return in, f.pc, true, nil
}
