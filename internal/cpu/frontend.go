package cpu

import (
	"encoding/binary"
	"fmt"

	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// Frontend models instruction delivery: sequential fetch through the
// L1 instruction cache with a one-line fetch buffer, plus redirect
// bubbles for taken branches and mispredictions. All core models share
// it, so frontend behaviour never biases the pipeline comparison.
type Frontend struct {
	m   *Machine
	l1i *mem.Cache // this core's L1I, resolved once (fixed at construction)

	pc         uint64
	stallUntil uint64 // no instruction delivery before this cycle

	// One-line fetch buffer.
	lineAddr  uint64
	lineReady uint64
	haveLine  bool

	// Cached functional-memory page for instruction reads. Sparse pages
	// are mutated in place and never replaced, so the pointer stays
	// correct across stores (including stores into this page); it only
	// needs replacing when fetch crosses a page boundary.
	page    *[mem.PageSize]byte
	pageNum uint64

	// Direct-mapped decoded-instruction cache. Decoding is pure, so the
	// memo is a wall-clock optimization only; each hit revalidates
	// against the freshly read word, which keeps self-modifying code
	// correct (the simulated machine has no structural i-cache
	// coherence to model here — Next always reads architectural memory).
	memo [decodeMemoSize]decodeMemoEntry
}

// decodeMemoSize is the number of direct-mapped decode-memo slots.
// Power of two; indexed by instruction number within the address space.
const decodeMemoSize = 4096

type decodeMemoEntry struct {
	pc    uint64
	word  uint64
	in    isa.Inst
	valid bool
}

// NewFrontend creates a frontend beginning execution at entry.
func NewFrontend(m *Machine, entry uint64) *Frontend {
	return &Frontend{m: m, l1i: m.Hier.L1I(m.CoreID), pc: entry}
}

// PC returns the address of the next instruction to deliver.
func (f *Frontend) PC() uint64 { return f.pc }

// Reset returns the frontend to a freshly constructed state beginning at
// entry: fetch point, redirect bubble and fetch buffer cleared. The
// decoded-instruction memo is deliberately kept — every hit revalidates
// against the freshly read word and decoding is pure, so stale entries
// can never change an outcome, only save wall clock across pooled runs.
// The cached page pointer is dropped (the next fetch re-resolves it).
func (f *Frontend) Reset(entry uint64) {
	f.pc = entry
	f.stallUntil = 0
	f.lineAddr = 0
	f.lineReady = 0
	f.haveLine = false
	f.page = nil
	f.pageNum = 0
}

// Redirect steers fetch to target, inserting penalty bubble cycles
// starting at cycle now. Used for taken branches, mispredictions and
// speculation rollbacks.
func (f *Frontend) Redirect(target uint64, now uint64, penalty uint64) {
	f.pc = target
	f.haveLine = false
	if until := now + penalty; until > f.stallUntil {
		f.stallUntil = until
	}
}

// Stalled reports whether the frontend is inside a redirect bubble at
// cycle now.
func (f *Frontend) Stalled(now uint64) bool { return now < f.stallUntil }

// Advance moves the sequential fetch point past the instruction just
// delivered (called by the core after consuming an instruction that did
// not redirect).
func (f *Frontend) Advance() { f.pc += isa.InstSize }

// Next returns the instruction at the current PC if it can be delivered
// at cycle now. ok is false while the frontend is stalled on a redirect
// bubble or an instruction-cache fill.
func (f *Frontend) Next(now uint64) (in isa.Inst, pc uint64, ok bool, err error) {
	if now < f.stallUntil {
		return isa.Inst{}, 0, false, nil
	}
	line := f.l1i.LineAddr(f.pc)
	if !f.haveLine || f.lineAddr != line {
		res := f.m.Hier.Access(f.m.CoreID, mem.AccFetch, f.pc, now)
		f.lineAddr = line
		f.lineReady = res.Ready
		f.haveLine = true
	}
	if now < f.lineReady {
		return isa.Inst{}, 0, false, nil
	}
	var w uint64
	off := f.pc & (mem.PageSize - 1)
	if pn := f.pc >> mem.PageBits; f.page != nil && pn == f.pageNum && off+isa.InstSize <= mem.PageSize {
		w = binary.LittleEndian.Uint64(f.page[off:])
	} else {
		w = f.m.Mem.Read(f.pc, isa.InstSize)
		if p := f.m.Mem.PageFor(f.pc); p != nil {
			f.page, f.pageNum = p, pn
		}
	}
	e := &f.memo[(f.pc/isa.InstSize)%decodeMemoSize]
	if e.valid && e.pc == f.pc && e.word == w {
		return e.in, f.pc, true, nil
	}
	in, derr := isa.DecodeWord(w)
	if derr != nil {
		return in, f.pc, false, fmt.Errorf("cpu: fetch at pc=%#x: %w", f.pc, derr)
	}
	*e = decodeMemoEntry{pc: f.pc, word: w, in: in, valid: true}
	return in, f.pc, true, nil
}

// NextDelivery returns the earliest cycle strictly after now at which
// Next's answer can change (0 = it can already deliver, or delivery
// depends on state not timed here, e.g. a pending line fill for a
// different line). It is a conservative lower bound used as one of the
// fast-forward candidates: understating only shortens a jump.
func (f *Frontend) NextDelivery(now uint64) uint64 {
	if now < f.stallUntil {
		// Inside a redirect bubble nothing happens until it ends; the
		// first post-bubble Next may issue a fetch access, so the bubble
		// end is a state-change cycle.
		return f.stallUntil
	}
	if f.haveLine && f.lineAddr == f.l1i.LineAddr(f.pc) && now < f.lineReady {
		return f.lineReady
	}
	return 0
}
