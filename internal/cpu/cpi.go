package cpu

import "rocksim/internal/obs"

// This file defines the cycle-accounting ("CPI stack") bucket taxonomy
// shared by every core model. Each simulated cycle is attributed to
// exactly one bucket: the model either retired/executed work, or it can
// name the stall family that blocked it, or — for the SST core — the
// cycle was later discarded by a rollback and is re-attributed to that
// rollback's cause. The invariant, enforced by internal/sim's tests, is
//
//	sum(CPI[b] for all b except BktSMTIdle) == Cycles
//
// for every model on every workload, fault plan or not, fast-forwarded
// or stepped naively. BktSMTIdle is excluded because it is the sibling
// thread's view of a physical cycle that the issuing thread already
// attributed (per-thread, sum over all buckets == thread cycles).

// Bucket is one cycle-accounting category.
type Bucket uint8

// Cycle-accounting buckets. The rollback buckets mirror
// core.RollbackCause order exactly (asserted by a test in that package):
// BktRollback0+Bucket(cause) is the bucket for a given cause.
const (
	// BktRetire is a cycle in which the core made forward progress:
	// retired, issued, or executed speculative work that later committed.
	BktRetire Bucket = iota
	// BktFetch is a frontend stall: redirect bubble, I-cache line fill,
	// or an empty fetch buffer.
	BktFetch
	// BktScoreboard is a dependency stall on a short-latency producer
	// (stall-on-use, an unready issue window, or SST serialization that
	// is not attributable to a structural resource).
	BktScoreboard
	// BktMSHR is a stall with at least one data miss outstanding: the
	// core is waiting on the memory system.
	BktMSHR
	// BktStoreBuf is a store-buffer-full (or drain-wait) stall.
	BktStoreBuf
	// BktDQFull is an SST deferred-queue-full stall.
	BktDQFull
	// BktSSBFull is an SST speculative-store-buffer-full stall.
	BktSSBFull
	// BktAtomic is an SST serialization stall (atomic/barrier/tx waiting
	// for all epochs to commit).
	BktAtomic
	// BktSMTIdle is a physical cycle whose issue slot belonged to the
	// sibling hardware thread (SMT interleave only).
	BktSMTIdle

	// Secure-speculation mitigation stalls (see docs/SECURITY.md). They
	// must stay before the rollback block: BktRollback0 anchors the
	// per-cause rollback buckets at the end of the enum.

	// BktSecureDelay is a cycle lost to SecureDelayOnMiss: a speculative
	// load was blocked from starting a cache fill until non-speculative.
	BktSecureDelay
	// BktSecureNoFwd is a cycle lost to SecureNoNAForward: a speculative
	// load result sat quarantined instead of forwarding to consumers.
	BktSecureNoFwd
	// BktSecureSSB is a cycle lost to SecureEagerSSBFlush: a speculative
	// store was denied its prefetch or its store-to-load forward.
	BktSecureSSB

	// Rollback buckets: cycles of work discarded by a rollback of each
	// cause, re-attributed from the buckets they were first counted in.
	BktRbBranch
	BktRbJalr
	BktRbSSB
	BktRbScout
	BktRbMemOrder
	BktRbInjected
	BktRbCoherence

	NumBuckets
)

// BktRollback0 is the first rollback bucket; add a core.RollbackCause to
// index the bucket for that cause.
const BktRollback0 = BktRbBranch

// bucketNames label buckets in exports (index = Bucket). The slash forms
// group naturally in Prometheus/metric listings.
var bucketNames = [NumBuckets]string{
	"retire",
	"stall/fetch",
	"stall/scoreboard",
	"stall/mshr",
	"stall/store_buffer",
	"stall/dq_full",
	"stall/ssb_full",
	"stall/atomic",
	"smt_idle",
	"stall/secure-delay",
	"stall/secure-nofwd",
	"stall/secure-ssbflush",
	"rollback/branch",
	"rollback/jalr",
	"rollback/ssb-overflow",
	"rollback/scout",
	"rollback/mem-order",
	"rollback/injected",
	"rollback/coherence",
}

func (b Bucket) String() string {
	if b < NumBuckets {
		return bucketNames[b]
	}
	return "?"
}

// CPISum returns the bucket total that the invariant compares against
// Cycles: every bucket except the SMT sibling-idle view.
func (s *BaseStats) CPISum() uint64 {
	var sum uint64
	for b := Bucket(0); b < NumBuckets; b++ {
		if b != BktSMTIdle {
			sum += s.CPI[b]
		}
	}
	return sum
}

// publishCPI exports the full bucket array (zeros included, so every
// model exposes the identical counter set).
func (s *BaseStats) publishCPI(r *obs.Registry) {
	for b := Bucket(0); b < NumBuckets; b++ {
		r.Counter("cpi/" + bucketNames[b]).Set(s.CPI[b])
	}
}
