package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// busyCore spins forever but shows activity (loads advance every cycle):
// the livelock detector must NOT trip — only the cycle budget may.
type busyCore struct {
	cycles uint64
	stats  BaseStats
}

func (b *busyCore) Step()            { b.cycles++; b.stats.Loads++ }
func (b *busyCore) Cycle() uint64    { return b.cycles }
func (b *busyCore) Done() bool       { return false }
func (b *busyCore) Retired() uint64  { return 0 }
func (b *busyCore) Base() *BaseStats { return &b.stats }
func (b *busyCore) Err() error       { return nil }

func TestRunCtxLivelock(t *testing.T) {
	c := &stuckCore{}
	err := RunCtx(context.Background(), c, RunConfig{
		MaxCycles:      10_000_000,
		LivelockWindow: 1000,
	})
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("stuck core: want ErrLivelock, got %v", err)
	}
	// Detection latency is bounded: window + one check interval, far
	// below the cycle budget.
	if c.cycles > 10_000 {
		t.Errorf("livelock detected only after %d cycles (window 1000)", c.cycles)
	}
}

func TestRunCtxLivelockIgnoresBusyCore(t *testing.T) {
	err := RunCtx(context.Background(), &busyCore{}, RunConfig{
		MaxCycles:      50_000,
		LivelockWindow: 1000,
	})
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("busy core: want ErrCycleLimit (not livelock), got %v", err)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunCtx(ctx, &stuckCore{}, RunConfig{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("deadline enforcement took %v", time.Since(start))
	}
}

func TestRunCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: first check must abort the run
	if err := RunCtx(ctx, &stuckCore{}, RunConfig{}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline on cancelled context, got %v", err)
	}
}

func TestRunCtxErrorsAttributed(t *testing.T) {
	err := RunCtx(context.Background(), &stuckCore{}, RunConfig{MaxCycles: 64})
	if err == nil || !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("want ErrCycleLimit, got %v", err)
	}
	// The message must carry the cycle and retire counts for attribution.
	for _, want := range []string{"cycles", "retired"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q lacks %q", err, want)
		}
	}
}
