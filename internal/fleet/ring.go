// Package fleet is the placement and membership layer of the sharded
// rocksimd tier: a consistent-hash ring (virtual nodes, bounded-load
// variant) over the content-addressed cell cache key, plus a health
// monitor that ejects and re-probes failing shards.
//
// Placement is deterministic: the same key on the same membership
// always lands on the same shard, so every router in front of the
// fleet agrees where a cell's cache entry lives and a popular cell is
// computed once per fleet, not once per node. Membership changes move
// only the keys they must: removing a shard re-homes exactly the keys
// it owned, and adding one steals ≈K/N of the keyspace — the ring
// tests pin both bounds.
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per member: enough to bound
// placement skew across a handful of shards without making membership
// changes expensive.
const DefaultVNodes = 128

// point is one virtual node on the ring.
type point struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring. Safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []point // sorted by hash
	member map[string]bool
}

// NewRing builds a ring with vnodes virtual nodes per member
// (<=0 means DefaultVNodes).
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, member: make(map[string]bool)}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// vnodeHash spreads a member's virtual nodes over the ring: FNV of the
// member name seeded into a splitmix64 finalizer per index. Hashing the
// concatenated "name#i" string directly clusters badly for short names
// (FNV mixes too little of the trailing index byte); the finalizer's
// avalanche gives near-uniform points regardless of name shape.
func vnodeHash(m string, i int) uint64 {
	h := hashKey(m) + uint64(i)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// Add inserts a member (idempotent).
func (r *Ring) Add(m string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[m] {
		return
	}
	r.member[m] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: vnodeHash(m, i), member: m})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a member (idempotent). Keys owned by the removed
// member re-home to their successors; every other key keeps its owner.
func (r *Ring) Remove(m string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[m] {
		return
	}
	delete(r.member, m)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != m {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in ring order starting at
// key's position: the owner first, then the failover successors. This
// is the router's retry order when a shard is ejected mid-request.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// OwnerBounded is the bounded-load variant (consistent hashing with
// bounded loads): it walks the ring from key's position and returns the
// first member whose current load, reported by load, is below the
// capacity ceil(c * (total+1) / n). With every member at capacity it
// falls back to the plain owner rather than failing. c <= 1 means the
// conventional c = 1.25.
func (r *Ring) OwnerBounded(key string, load func(member string) int, c float64) string {
	if c <= 1 {
		c = 1.25
	}
	members := r.Members()
	if len(members) == 0 {
		return ""
	}
	total := 0
	for _, m := range members {
		total += load(m)
	}
	// ceil(c * (total+1) / n) without floating-point edge surprises at
	// the integer boundaries tests pin.
	capacity := int((c*float64(total+1) + float64(len(members)) - 1) / float64(len(members)))
	if capacity < 1 {
		capacity = 1
	}
	for _, m := range r.Owners(key, len(members)) {
		if load(m) < capacity {
			return m
		}
	}
	return r.Owner(key)
}
