package fleet

import (
	"sync"
	"time"
)

// ShardState is one shard's view in the monitor.
type ShardState struct {
	Target string
	// Up is false while the shard is ejected from the ring.
	Up bool
	// Draining marks a shard that answered its probe with a lame-duck
	// refusal (503 from /healthz): it still finishes admitted work but
	// must not receive new fan-outs, so it is ejected like a dead one
	// and re-probed until it either disappears or comes back.
	Draining bool
	// Ejections counts how many times the shard has been ejected.
	Ejections uint64
	// LastErr is the most recent probe or request failure ("" when up).
	LastErr string
}

// ErrDraining is the sentinel probe error for a lame-duck shard.
type drainingError struct{}

func (drainingError) Error() string { return "draining" }

// ErrDraining is returned by probes that reached the shard but found it
// refusing new work (healthz 503). The monitor ejects it like a dead
// shard but records the distinction.
var ErrDraining error = drainingError{}

// Monitor tracks shard health and keeps the ring's membership in sync:
// a failing or draining shard is ejected (removed from the ring, so its
// keys re-home to successors) and re-probed on an interval until it
// recovers, at which point it rejoins and reclaims its keyspace.
type Monitor struct {
	ring  *Ring
	probe func(target string) error

	mu     sync.Mutex
	shards map[string]*ShardState
	order  []string

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewMonitor wraps ring with health tracking over targets. probe checks
// one shard: nil = healthy, ErrDraining = reachable but lame-duck, any
// other error = down. All targets start as members of the ring and
// healthy; call Check or Start to begin probing.
func NewMonitor(ring *Ring, targets []string, probe func(target string) error) *Monitor {
	m := &Monitor{
		ring:   ring,
		probe:  probe,
		shards: make(map[string]*ShardState, len(targets)),
		stop:   make(chan struct{}),
	}
	for _, t := range targets {
		ring.Add(t)
		m.shards[t] = &ShardState{Target: t, Up: true}
		m.order = append(m.order, t)
	}
	return m
}

// Ring returns the monitored ring.
func (m *Monitor) Ring() *Ring { return m.ring }

// MarkDown ejects a shard on request-path evidence (a transport error
// or lame-duck refusal seen by a live request, faster than the next
// probe tick). Idempotent. Returns true when this call performed the
// ejection.
func (m *Monitor) MarkDown(target string, err error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.shards[target]
	if s == nil || !s.Up {
		return false
	}
	s.Up = false
	s.Draining = err == ErrDraining
	s.Ejections++
	if err != nil {
		s.LastErr = err.Error()
	}
	m.ring.Remove(target)
	return true
}

// markUp rejoins a recovered shard.
func (m *Monitor) markUp(target string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.shards[target]
	if s == nil || s.Up {
		return false
	}
	s.Up = true
	s.Draining = false
	s.LastErr = ""
	m.ring.Add(target)
	return true
}

// Check probes every shard once, synchronously, updating membership.
// Call it before serving to eject shards that are down at start.
func (m *Monitor) Check() {
	m.mu.Lock()
	targets := append([]string(nil), m.order...)
	m.mu.Unlock()
	for _, t := range targets {
		err := m.probe(t)
		switch {
		case err == nil:
			m.markUp(t)
		default:
			m.MarkDown(t, err)
			m.mu.Lock()
			if s := m.shards[t]; s != nil && !s.Up {
				s.Draining = err == ErrDraining
				s.LastErr = err.Error()
			}
			m.mu.Unlock()
		}
	}
}

// Start launches the background re-probe loop with the given interval.
// Stop terminates it.
func (m *Monitor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Check()
			}
		}
	}()
}

// Stop terminates the probe loop and waits for it.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Snapshot returns every shard's state in the fixed target order.
func (m *Monitor) Snapshot() []ShardState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ShardState, 0, len(m.order))
	for _, t := range m.order {
		out = append(out, *m.shards[t])
	}
	return out
}

// UpCount returns how many shards are currently in the ring.
func (m *Monitor) UpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.shards {
		if s.Up {
			n++
		}
	}
	return n
}
