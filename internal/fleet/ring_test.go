package fleet

import (
	"errors"
	"fmt"
	"testing"
)

// testKeys returns nk deterministic keys shaped like the cell cache
// keys the router hashes (kind|workload|digest).
func testKeys(nk int) []string {
	keys := make([]string, nk)
	for i := range keys {
		keys[i] = fmt.Sprintf("sst|oltp|%016x", i*2654435761)
	}
	return keys
}

// TestOwnerDeterministic: the same key on the same membership always
// lands on the same shard, across independently built rings — the
// property that lets every router agree on placement.
func TestOwnerDeterministic(t *testing.T) {
	members := []string{"a", "b", "c"}
	r1 := NewRing(0, members...)
	r2 := NewRing(0, "c", "a", "b") // different insertion order
	for _, k := range testKeys(200) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("key %q: owner %q vs %q on identically-membered rings", k, o1, o2)
		}
	}
}

// TestDistributionSkew: across 1k keys on 3 shards, no shard owns less
// than half or more than double its fair share. Virtual nodes are what
// keeps this bound; the test pins that 128 of them are enough.
func TestDistributionSkew(t *testing.T) {
	members := []string{"a", "b", "c"}
	r := NewRing(0, members...)
	counts := make(map[string]int)
	keys := testKeys(1000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < fair/2 || got > fair*2 {
			t.Errorf("member %s owns %.0f keys, outside [%.0f, %.0f] around fair share %.0f",
				m, got, fair/2, fair*2, fair)
		}
	}
}

// TestAddMovesBoundedKeys: adding a member to an n-ring steals roughly
// K/(n+1) of the keys and never more than twice that; every moved key
// moves TO the new member, never between old ones.
func TestAddMovesBoundedKeys(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Add("d")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if after != before[k] {
			moved++
			if after != "d" {
				t.Fatalf("key %q moved %q -> %q: adds must only move keys to the new member",
					k, before[k], after)
			}
		}
	}
	share := len(keys) / 4
	if moved > 2*share {
		t.Errorf("add moved %d keys, want <= %d (2x the K/N share %d)", moved, 2*share, share)
	}
	if moved == 0 {
		t.Error("add moved no keys; the new member owns nothing")
	}
}

// TestRemoveMovesOnlyOwnedKeys: removing a member re-homes exactly the
// keys it owned; every other key keeps its owner.
func TestRemoveMovesOnlyOwnedKeys(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	owned := 0
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == "b" {
			owned++
		}
	}
	r.Remove("b")
	moved := 0
	for _, k := range keys {
		after := r.Owner(k)
		if before[k] == "b" {
			if after == "b" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner was not removed", k, before[k], after)
		}
	}
	if moved != owned {
		t.Errorf("moved %d keys, want exactly the %d the removed member owned", moved, owned)
	}
}

// TestOwnersFailoverOrder: Owners lists distinct members with the owner
// first, and removing the owner promotes the old first successor — the
// retry order a router walks when a shard dies mid-request.
func TestOwnersFailoverOrder(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	for _, k := range testKeys(50) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("key %q: %d owners, want 3", k, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %q: duplicate owner %q in %v", k, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %q: Owners[0]=%q != Owner=%q", k, owners[0], r.Owner(k))
		}
	}
	k := testKeys(1)[0]
	owners := r.Owners(k, 3)
	r.Remove(owners[0])
	if got := r.Owner(k); got != owners[1] {
		t.Errorf("after removing owner %q, key went to %q, want first successor %q",
			owners[0], got, owners[1])
	}
}

// TestOwnerBounded: a member at capacity is skipped in favor of the
// next successor, and with everyone saturated the plain owner is the
// fallback rather than a failure.
func TestOwnerBounded(t *testing.T) {
	r := NewRing(0, "a", "b", "c")
	k := testKeys(1)[0]
	plain := r.Owner(k)
	succ := r.Owners(k, 2)[1]

	load := map[string]int{"a": 1, "b": 1, "c": 1}
	load[plain] = 10 // far over any capacity for total 12
	if got := r.OwnerBounded(k, func(m string) int { return load[m] }, 1.25); got != succ {
		t.Errorf("bounded owner %q, want successor %q when owner is over capacity", got, succ)
	}

	// Uniform load: the plain owner is within capacity and keeps the key.
	if got := r.OwnerBounded(k, func(string) int { return 1 }, 1.25); got != plain {
		t.Errorf("bounded owner %q, want plain owner %q under uniform load", got, plain)
	}

	// Everyone over capacity: fall back to the plain owner, never fail.
	if got := r.OwnerBounded(k, func(string) int { return 1000 }, 1.25); got != plain {
		t.Errorf("saturated fallback %q, want plain owner %q", got, plain)
	}
}

// TestEmptyRing: no members means no owners, not a panic.
func TestEmptyRing(t *testing.T) {
	r := NewRing(0)
	if o := r.Owner("k"); o != "" {
		t.Errorf("empty ring owner %q, want \"\"", o)
	}
	if os := r.Owners("k", 3); os != nil {
		t.Errorf("empty ring owners %v, want nil", os)
	}
	if o := r.OwnerBounded("k", func(string) int { return 0 }, 1.25); o != "" {
		t.Errorf("empty ring bounded owner %q, want \"\"", o)
	}
}

// TestMonitorEjectAndRecover: MarkDown removes a shard from the ring
// (its keys re-home), a recovering probe re-adds it (its keys return),
// and the draining distinction is recorded.
func TestMonitorEjectAndRecover(t *testing.T) {
	healthy := map[string]error{"a": nil, "b": nil, "c": nil}
	m := NewMonitor(NewRing(0), []string{"a", "b", "c"}, func(t string) error { return healthy[t] })
	if m.UpCount() != 3 {
		t.Fatalf("up count %d, want 3", m.UpCount())
	}
	k := testKeys(1)[0]
	owner := m.Ring().Owner(k)

	if !m.MarkDown(owner, errors.New("connection refused")) {
		t.Fatal("MarkDown returned false for an up shard")
	}
	if m.MarkDown(owner, errors.New("again")) {
		t.Fatal("MarkDown not idempotent")
	}
	if got := m.Ring().Owner(k); got == owner {
		t.Fatalf("key still owned by ejected shard %q", owner)
	}
	if m.UpCount() != 2 {
		t.Fatalf("up count %d after ejection, want 2", m.UpCount())
	}

	// Probe says it recovered: it rejoins and reclaims the key.
	m.Check()
	if m.UpCount() != 3 {
		t.Fatalf("up count %d after recovery, want 3", m.UpCount())
	}
	if got := m.Ring().Owner(k); got != owner {
		t.Fatalf("recovered shard did not reclaim its key: owner %q, want %q", got, owner)
	}

	// A draining shard is ejected like a dead one but marked distinctly.
	healthy[owner] = ErrDraining
	m.Check()
	for _, s := range m.Snapshot() {
		if s.Target == owner {
			if s.Up || !s.Draining {
				t.Errorf("shard %q: up=%v draining=%v, want ejected and draining", owner, s.Up, s.Draining)
			}
			if s.Ejections < 2 {
				t.Errorf("shard %q: %d ejections recorded, want >= 2", owner, s.Ejections)
			}
		}
	}
}
