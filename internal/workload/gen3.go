package workload

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// AppServer is the instruction-footprint proxy: real commercial server
// codes have megabytes of hot code, and frontend (L1I) misses are a
// stall source that neither out-of-order windows nor SST deferral can
// hide — fetch feeds both strands. The workload generates hundreds of
// distinct handler functions (code footprint well beyond the L1I),
// dispatched through a function-pointer table by indirect call, each
// touching a little session data.
func AppServer(s Scale) (*Spec, error) {
	handlers, requests := 96, 1500 // ~64 KiB of code (2x L1I)
	if s == ScaleFull {
		handlers, requests = 384, 12000 // ~300 KiB of code
	}
	const tableBase = 0xd000000 // function-pointer table
	const dataBase = 0xd800000  // per-handler session data

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.SetEntry("main")

	// Handler i: a few distinct arithmetic ops + a session-data update.
	// Bodies differ so they occupy distinct cache lines and cannot be
	// deduplicated by the I-cache.
	p := newPrng(43)
	ops := []isa.Op{isa.OpAdd, isa.OpXor, isa.OpSub, isa.OpOr, isa.OpAnd}
	for i := 0; i < handlers; i++ {
		b.Label(fmt.Sprintf("h%d", i))
		// 16-24 instructions of handler-specific work.
		n := 12 + p.intn(8)
		for j := 0; j < n; j++ {
			switch p.intn(4) {
			case 0:
				b.Op(ops[p.intn(len(ops))], rAcc, rAcc, rVal)
			case 1:
				b.Opi(isa.OpAddi, rVal, rVal, int32(p.intn(64)))
			case 2:
				b.Opi(isa.OpXori, rAcc, rAcc, int32(p.intn(256)))
			default:
				b.Opi(isa.OpSlli, rTmp, rAcc, int32(1+p.intn(3)))
			}
		}
		// Touch this handler's session line.
		b.Ld(isa.OpLd64, rVal2, rBase2, int32(i*64))
		b.Op(isa.OpAdd, rAcc, rAcc, rVal2)
		b.St(isa.OpSt64, rAcc, rBase2, int32(i*64))
		b.Ret()
	}

	b.Label("main")
	emitLCGInit(b, 0xa5e12) // deterministic seed
	b.MovImm64(rBase, rScr, tableBase)
	b.MovImm64(rBase2, rScr, dataBase)
	b.Movi(rMask, int32(handlers-1))
	b.MovImm64(rIter, rScr, int64(requests))
	b.Movi(rAcc, 0)
	b.Movi(rVal, 3)

	b.Label("dispatch")
	lcgStep(b, rMask) // rTmp = handler index
	b.Opi(isa.OpSlli, rAddr, rTmp, 3)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rPtr, rAddr, 0) // function pointer
	b.Jalr(isa.RegRA, rPtr, 0)       // indirect call
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "dispatch")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 160)
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	// Fill the function-pointer table now that handler addresses exist.
	ptrs := make([]uint64, handlers)
	for i := 0; i < handlers; i++ {
		a, ok := prog.Symbol(fmt.Sprintf("h%d", i))
		if !ok {
			return nil, fmt.Errorf("workload appsrv: missing handler %d", i)
		}
		ptrs[i] = a
	}
	prog.Segments = append(prog.Segments, asm.Segment{Addr: tableBase, Data: quads(ptrs)})

	return &Spec{
		Name:        "appsrv",
		Class:       ClassCommercial,
		Standin:     "large-code application server",
		Description: "hundreds of distinct handlers dispatched by indirect call; code footprint ≫ L1I, so the frontend stalls that no backend technique hides",
		Program:     prog,
		ApproxInsts: uint64(requests) * 28,
	}, nil
}
