package workload

import (
	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// Predicting a DEFERRED branch is harder than predicting a resolved one:
// a deferred branch trains at replay resolution, hundreds of cycles
// after fetch, so the data-dependent bits it contributes to global
// history are stale by the whole in-flight window. The two workloads
// below interleave the deferred pattern branches with register-resident
// "ruler" branches that resolve (and shift history) at execute time in
// the runahead stream: position within the pattern is recoverable from
// history — but only from MORE history than a 14-bit gshare window
// holds, which is exactly the regime TAGE's long geometric tables own.

// brfieldPattern drives brfield's deferred data branch: period 24,
// not-taken at positions 8, 13 and 19. All three zeros sit 8-19
// iterations past the period-24 ruler's marker: far enough that a
// 14-bit window (4-5 iterations of fresh ruler bits) never sees the
// marker, near enough that a 64-bit window (~21 iterations) always
// does. The zeros share their period-6 phases with taken positions, so
// the short ruler alone cannot separate them either.
var brfieldPattern = [24]uint64{
	1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1,
	1, 0, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1,
}

// BranchField is the deferred-branch pattern microbenchmark: a single
// pass over a cold array (every load a compulsory miss, so under SST the
// dependent branch always defers), branching on a stored bit pattern of
// period 24, with register-resident period-6 and period-24 ruler
// branches per iteration. The targeted probe for replay-time (deferred)
// misprediction cost: a short-history predictor cannot localize the
// pattern zeros, a long-history one can.
func BranchField(s Scale) (*Spec, error) {
	iters := 6000
	if s == ScaleFull {
		iters = 50000
	}
	const base = 0xb000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.MovImm64(rAddr, rScr, base)
	b.MovImm64(rIter, rScr, int64(iters))
	b.Movi(rAcc, 0)
	b.Movi(rTmp2, 0) // short ruler phase 0..5
	b.Movi(rVal2, 0) // long ruler phase 0..23
	b.Movi(rMask, 6)
	b.Movi(rMask2, 24)
	b.Label("scan")
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	b.Br(isa.OpBeq, rVal, isa.RegZero, "skip") // data-dependent, deferred
	b.Opi(isa.OpAddi, rAcc, rAcc, 1)
	b.Label("skip")
	b.Opi(isa.OpAddi, rTmp2, rTmp2, 1)
	b.Opi(isa.OpAddi, rVal2, rVal2, 1)
	b.Opi(isa.OpAddi, rAddr, rAddr, 64)
	b.Br(isa.OpBne, rTmp2, rMask, "noresetA") // fresh ruler: NT once per 6
	b.Movi(rTmp2, 0)
	b.Label("noresetA")
	b.Br(isa.OpBne, rVal2, rMask2, "noresetB") // fresh ruler: NT once per 24
	b.Movi(rVal2, 0)
	b.Label("noresetB")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "scan")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 144)
	b.Halt()

	// One line per iteration; word 0 holds the pattern bit. Single pass,
	// so the periodic pattern never has to agree with an array wrap.
	img := make([]uint64, iters*8)
	for i := 0; i < iters; i++ {
		img[i*8] = brfieldPattern[i%len(brfieldPattern)]
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "brfield",
		Class:       ClassMicro,
		Standin:     "deferred data-dependent branches",
		Description: "cold-array walk branching on a period-24 bit pattern: every data branch defers, position needs history beyond gshare's window",
		Program:     prog,
		ApproxInsts: uint64(iters) * 10,
	}, nil
}

// loopnestPattern drives loopnest's deferred data branch over the global
// inner-iteration index, period 36 (one short + one long inner loop).
// The zeros sit 8+ iterations away from every loop boundary — inside the
// stretch where a 14-bit window sees only taken back-edges — while a
// 64-bit window always covers at least one loop-exit marker and so
// pins the position.
var loopnestPattern = [36]uint64{
	1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, // short loop: zero at 9
	1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, // long loop: zeros at 21, 26, 31
	1, 1, 0, 1, 1, 1, 1, 0, 1, 1, 1, 1,
}

// loopNestTrips are loopnest's alternating inner trip counts. The short
// loop's exit context fits a 14-bit gshare window; the long loop's
// cannot — so gshare learns only the short exits while TAGE's 32/64-bit
// tables learn both.
var loopNestTrips = [2]int64{12, 24}

// LoopNest is the variable-trip inner-loop microbenchmark: inner loops
// alternate 12 and 24 iterations (register-resident control, so the exit
// branches resolve at fetch and stamp loop boundaries into history),
// while each inner iteration loads a cold pattern word and branches on
// it — a compulsory miss, so the pattern branch always defers under SST
// and its mispredicts surface at replay as RbBranch rollbacks.
func LoopNest(s Scale) (*Spec, error) {
	outer := 1500
	if s == ScaleFull {
		outer = 12000
	}
	const base = 0xb800000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.MovImm64(rAddr, rScr, base)
	b.MovImm64(rIter, rScr, int64(outer))
	b.Movi(rAcc, 0)
	b.Movi(rVal2, int32(loopNestTrips[0]))
	b.Label("outer")
	b.Opi(isa.OpAndi, rTmp, rIter, 1)
	b.Op(isa.OpSll, rInner, rVal2, rTmp) // trip = 12 << (iter & 1)
	b.Label("inner")
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	b.Br(isa.OpBeq, rVal, isa.RegZero, "skip") // deferred pattern branch
	b.Opi(isa.OpAddi, rAcc, rAcc, 1)
	b.Label("skip")
	b.Opi(isa.OpAddi, rAddr, rAddr, 64)
	b.Opi(isa.OpAddi, rInner, rInner, -1)
	b.Br(isa.OpBne, rInner, isa.RegZero, "inner") // fresh loop ruler
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "outer")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 152)
	b.Halt()

	// The global inner index advances trips[1]+trips[0] per outer pair;
	// rIter counts down, so odd rIter values (first of each pair, when
	// outer is even) take the long trip. The image only needs the lines
	// actually touched: one per inner iteration, single pass.
	totalInner := 0
	it := int64(outer)
	for ; it > 0; it-- {
		totalInner += int(loopNestTrips[0] << (it & 1))
	}
	img := make([]uint64, totalInner*8)
	for g := 0; g < totalInner; g++ {
		img[g*8] = loopnestPattern[g%len(loopnestPattern)]
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "loopnest",
		Class:       ClassMicro,
		Standin:     "variable-trip inner loops",
		Description: "alternating 12/24-trip inner loops with a deferred pattern branch per iteration: zeros hide beyond gshare's window",
		Program:     prog,
		ApproxInsts: uint64(totalInner) * 6,
	}, nil
}
