// Package workload generates the benchmark programs used in the
// evaluation. The paper evaluates SST on commercial workloads (TPC-C-,
// SPECjbb-, SPECweb- and SAP-class) and contrasts them with SPEC CPU
// components; those binaries and traces are proprietary, so each is
// replaced by a synthetic RK64 program engineered to match the defining
// memory behaviour of its class (documented per generator). Every
// workload is a real program assembled for the simulated ISA, with its
// data image built deterministically from a seeded PRNG.
package workload

import (
	"encoding/binary"
	"fmt"

	"rocksim/internal/asm"
)

// Class groups workloads the way the paper's evaluation does.
type Class int

// Workload classes.
const (
	ClassCommercial Class = iota // miss-dominated, low ILP, branchy
	ClassSPEC                    // compute kernels with varied behaviour
	ClassMicro                   // targeted microbenchmarks
)

func (c Class) String() string {
	switch c {
	case ClassCommercial:
		return "commercial"
	case ClassSPEC:
		return "spec"
	case ClassMicro:
		return "micro"
	}
	return "?"
}

// Spec is one ready-to-run benchmark.
type Spec struct {
	Name        string
	Class       Class
	Description string
	// Paper analogue this workload stands in for.
	Standin string
	Program *asm.Program
	// ApproxInsts is the expected dynamic instruction count, used by
	// harnesses to bound cycles.
	ApproxInsts uint64
}

// Scale selects workload sizes. Tests use ScaleTest; the benchmark
// harness uses ScaleFull.
type Scale int

// Scales.
const (
	ScaleTest Scale = iota
	ScaleFull
)

// prng is a deterministic xorshift64* generator for data-image layout.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545f4914f6cdd1d
}

func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// permutation returns a random permutation of 0..n-1 with a single cycle
// (so pointer chases visit every node before repeating).
func (p *prng) cyclePermutation(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[order[i]] = order[i+1]
	}
	next[order[n-1]] = order[0]
	return next
}

func quads(vals []uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

// Generator builds one workload at a given scale.
type Generator func(s Scale) (*Spec, error)

// ByName maps workload names to generators.
var ByName = map[string]Generator{
	"oltp":     OLTP,
	"jbb":      JBB,
	"web":      Web,
	"erp":      ERP,
	"btree":    BTree,
	"hashjoin": HashJoin,
	"appsrv":   AppServer,
	"mcf":      MCFLike,
	"stream":   StreamLike,
	"gcc":      GCCLike,
	"quantum":  QuantumLike,
	"chase":    PointerChase,
	"randarr":  RandomArray,
	"dense":    DenseCompute,
	"brfield":  BranchField,
	"loopnest": LoopNest,
}

// Names lists all workload names in presentation order.
var Names = []string{
	"oltp", "jbb", "web", "erp", "btree", "hashjoin", "appsrv",
	"mcf", "stream", "gcc", "quantum",
	"chase", "randarr", "dense", "brfield", "loopnest",
}

// LoopHeavyNames lists the loop-heavy workloads the B1 predictor grid
// reports on: branch behavior dominated by loops whose history exceeds
// a short global-history window.
var LoopHeavyNames = []string{"brfield", "loopnest", "gcc", "dense"}

// CommercialNames lists the commercial-class workloads (the paper's
// headline suite).
var CommercialNames = []string{"oltp", "jbb", "web", "erp"}

// Build generates the named workload.
func Build(name string, s Scale) (*Spec, error) {
	g, ok := ByName[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	w, err := g(s)
	if err != nil {
		return nil, err
	}
	if w.Program != nil && w.Program.Name == "" {
		w.Program.Name = w.Name
	}
	return w, nil
}

// BuildAll generates every workload in Names order.
func BuildAll(s Scale) ([]*Spec, error) {
	var out []*Spec
	for _, n := range Names {
		w, err := Build(n, s)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", n, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// BuildSuite generates the named workloads.
func BuildSuite(names []string, s Scale) ([]*Spec, error) {
	var out []*Spec
	for _, n := range names {
		w, err := Build(n, s)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", n, err)
		}
		out = append(out, w)
	}
	return out, nil
}
