package workload

import (
	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// Register conventions used by all generators.
const (
	rState = 4  // PRNG state
	rBase  = 5  // primary table base
	rBase2 = 6  // secondary table base
	rMask  = 7  // index mask
	rMask2 = 8  // secondary index mask
	rIter  = 9  // outer loop counter
	rAddr  = 10 // computed address
	rVal   = 11
	rVal2  = 12
	rAcc   = 13 // accumulator (result)
	rTmp   = 14
	rTmp2  = 15
	rMulA  = 16 // LCG multiplier
	rAddC  = 17 // LCG increment
	rInner = 18
	rPtr   = 19
	rScr   = 30
	rScr2  = 31
)

// lcgStep emits: state = state*A + C; idx(rTmp) = (state >> 33) & mask.
func lcgStep(b *asm.Builder, mask uint8) {
	b.Op(isa.OpMul, rState, rState, rMulA)
	b.Op(isa.OpAdd, rState, rState, rAddC)
	b.Opi(isa.OpSrli, rTmp, rState, 33)
	b.Op(isa.OpAnd, rTmp, rTmp, mask)
}

// emitLCGInit loads the LCG constants.
func emitLCGInit(b *asm.Builder, seed int64) {
	b.MovImm64(rMulA, rScr, 6364136223846793005)
	b.MovImm64(rAddC, rScr, 1442695040888963407)
	b.MovImm64(rState, rScr, seed)
}

// OLTP is the TPC-C-class proxy: random index lookups into a table far
// larger than the caches, a dependent second probe (two-deep miss
// chains), data-dependent validation branches and a write every few
// transactions. This is the miss-dominated, low-ILP behaviour the paper
// reports for OLTP.
func OLTP(s Scale) (*Spec, error) {
	tableLines, iters := 4096, 1500 // 256 KiB table
	if s == ScaleFull {
		tableLines, iters = 1<<17, 20000 // 8 MiB table
	}
	const base = 0x1000000
	base2 := uint64(base + uint64(tableLines)*64)

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0x123456789)
	b.MovImm64(rBase, rScr, base)
	b.MovImm64(rBase2, rScr, int64(base2))
	b.Movi(rMask, int32(tableLines-1))
	b.Movi(rMask2, int32(tableLines-1))
	b.Movi(rIter, int32(iters))
	b.Movi(rAcc, 0)

	b.Label("txn")
	// Probe 1: random row.
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 6)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	// Probe 2: dependent row selected by the loaded key.
	b.Op(isa.OpAnd, rTmp2, rVal, rMask2)
	b.Opi(isa.OpSlli, rTmp2, rTmp2, 6)
	b.Op(isa.OpAdd, rTmp2, rTmp2, rBase2)
	b.Ld(isa.OpLd64, rVal2, rTmp2, 8)
	// Independent probe: second random row (MLP opportunity).
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rPtr, rTmp, 6)
	b.Op(isa.OpAdd, rPtr, rPtr, rBase)
	b.Ld(isa.OpLd64, rInner, rPtr, 16)
	// Validation branches on loaded data.
	b.Opi(isa.OpAndi, rTmp, rVal2, 1)
	b.Br(isa.OpBeq, rTmp, isa.RegZero, "even")
	b.Op(isa.OpAdd, rAcc, rAcc, rVal2)
	b.Jmp("join")
	b.Label("even")
	b.Op(isa.OpSub, rAcc, rAcc, rVal)
	b.Label("join")
	b.Op(isa.OpAdd, rAcc, rAcc, rInner)
	// Every 4th transaction updates the row (write traffic).
	b.Opi(isa.OpAndi, rTmp, rIter, 3)
	b.Br(isa.OpBne, rTmp, isa.RegZero, "nowrite")
	b.St(isa.OpSt64, rAcc, rAddr, 24)
	b.Label("nowrite")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "txn")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 64)
	b.Halt()

	// Table images: key fields hold pseudo-random values.
	p := newPrng(7)
	img := make([]uint64, tableLines*8)
	for i := range img {
		img[i] = p.next()
	}
	b.Data(base, quads(img))
	img2 := make([]uint64, tableLines*8)
	for i := range img2 {
		img2[i] = p.next()
	}
	b.Data(base2, quads(img2))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "oltp",
		Class:       ClassCommercial,
		Standin:     "TPC-C-class OLTP",
		Description: "random row lookups with dependent second probes, validation branches, 25% write transactions; table ≫ caches",
		Program:     prog,
		ApproxInsts: uint64(iters) * 24,
	}, nil
}

// JBB is the SPECjbb-class proxy: object-graph walking with moderate
// locality (pointer fields biased to nearby objects), per-object method
// work and allocation-like stores.
func JBB(s Scale) (*Spec, error) {
	objects, iters := 4096, 1200 // 512 KiB heap
	if s == ScaleFull {
		objects, iters = 1<<16, 15000 // 8 MiB heap
	}
	const base = 0x2000000
	const objSize = 128

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0xabcdef01)
	b.MovImm64(rBase, rScr, base)
	b.Movi(rMask, int32(objects-1))
	b.Movi(rIter, int32(iters))
	b.Movi(rAcc, 0)

	// Each transaction is independent (a random warehouse entry) and
	// walks a short dependent chain of objects inside it, like a
	// shallow B-tree lookup. Independent transactions are where SST
	// extracts MLP; the 3-hop chain bounds what any one miss costs.
	b.Label("txn")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rPtr, rTmp, 7) // *objSize
	b.Op(isa.OpAdd, rPtr, rPtr, rBase)
	for hop := 0; hop < 3; hop++ {
		b.Ld(isa.OpLd64, rVal2, rPtr, 8) // value field
		b.Op(isa.OpAdd, rAcc, rAcc, rVal2)
		b.Ld(isa.OpLd64, rPtr, rPtr, 0) // child pointer (dependent)
	}
	// Leaf processing: method arithmetic plus a statistics store.
	b.Ld(isa.OpLd64, rTmp2, rPtr, 16)
	b.Op(isa.OpXor, rAcc, rAcc, rTmp2)
	b.Opi(isa.OpSlli, rTmp, rAcc, 1)
	b.Op(isa.OpAdd, rAcc, rAcc, rTmp)
	b.St(isa.OpSt64, rAcc, rPtr, 24)
	// Branch on object contents (mostly taken: only tag 0 is special).
	b.Opi(isa.OpAndi, rTmp, rTmp2, 15)
	b.Br(isa.OpBne, rTmp, isa.RegZero, "skipadd")
	b.Opi(isa.OpAddi, rAcc, rAcc, 17)
	b.Label("skipadd")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "txn")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 72)
	b.Halt()

	// Heap image: child pointers form a single random cycle, so chains
	// from any entry point hop across the whole heap.
	p := newPrng(11)
	img := make([]uint64, objects*objSize/8)
	perm := p.cyclePermutation(objects)
	for i := 0; i < objects; i++ {
		img[i*objSize/8] = uint64(base + perm[i]*objSize)
		img[i*objSize/8+1] = p.next()
		img[i*objSize/8+2] = p.next()
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "jbb",
		Class:       ClassCommercial,
		Standin:     "SPECjbb-class middleware",
		Description: "independent transactions, each a short dependent object-chain walk over a heap ≫ caches, with statistics stores",
		Program:     prog,
		ApproxInsts: uint64(iters) * 14,
	}, nil
}

// Web is the SPECweb-class proxy: bursty buffer scans — a random buffer
// is selected (a miss), then scanned sequentially (spatial locality)
// with byte-level, branchy processing.
func Web(s Scale) (*Spec, error) {
	buffers, iters := 512, 400 // 512 x 512B buffers = 256 KiB
	if s == ScaleFull {
		buffers, iters = 1<<14, 6000 // 8 MiB of buffers
	}
	const base = 0x3000000
	const bufSize = 512

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0x55aa55aa)
	b.MovImm64(rBase, rScr, base)
	b.Movi(rMask, int32(buffers-1))
	b.Movi(rIter, int32(iters))
	b.Movi(rAcc, 0)

	b.Label("request")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 9) // *bufSize
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Movi(rInner, bufSize/8)
	b.Label("scan")
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	// Branchy byte-ish processing of the word. Like real text, most
	// "characters" take the common path (~6% escape rate), so the
	// branch is predictable but not free.
	b.Opi(isa.OpAndi, rTmp, rVal, 0x7f)
	b.Opi(isa.OpSlti, rTmp2, rTmp, 8)
	b.Br(isa.OpBeq, rTmp2, isa.RegZero, "printable")
	b.Opi(isa.OpAddi, rAcc, rAcc, 1)
	b.Jmp("next")
	b.Label("printable")
	b.Op(isa.OpAdd, rAcc, rAcc, rVal)
	b.Label("next")
	b.Opi(isa.OpAddi, rAddr, rAddr, 8)
	b.Opi(isa.OpAddi, rInner, rInner, -1)
	b.Br(isa.OpBne, rInner, isa.RegZero, "scan")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "request")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 80)
	b.Halt()

	p := newPrng(13)
	img := make([]uint64, buffers*bufSize/8)
	for i := range img {
		img[i] = p.next()
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "web",
		Class:       ClassCommercial,
		Standin:     "SPECweb-class serving",
		Description: "random buffer selection (miss) followed by sequential branchy scanning (spatial locality bursts)",
		Program:     prog,
		ApproxInsts: uint64(iters) * uint64(bufSize/8) * 8,
	}, nil
}

// ERP is the SAP-class proxy: read-modify-write transactions over random
// rows — the most store-heavy commercial workload, sized to pressure the
// speculative store buffer.
func ERP(s Scale) (*Spec, error) {
	rows, iters := 4096, 1200 // 512 KiB
	if s == ScaleFull {
		rows, iters = 1<<16, 15000 // 8 MiB
	}
	const base = 0x4000000
	const rowSize = 128

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0x777)
	b.MovImm64(rBase, rScr, base)
	b.Movi(rMask, int32(rows-1))
	b.Movi(rIter, int32(iters))
	b.Movi(rAcc, 0)

	b.Label("txn")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 7) // *rowSize
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	// Read four fields.
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	b.Ld(isa.OpLd64, rVal2, rAddr, 8)
	b.Ld(isa.OpLd64, rTmp2, rAddr, 16)
	b.Ld(isa.OpLd64, rInner, rAddr, 24)
	// Business logic.
	b.Op(isa.OpAdd, rVal, rVal, rVal2)
	b.Op(isa.OpXor, rTmp2, rTmp2, rInner)
	b.Opi(isa.OpSrai, rPtr, rVal, 3)
	b.Op(isa.OpAdd, rAcc, rAcc, rPtr)
	// Write back two fields plus a journal entry.
	b.St(isa.OpSt64, rVal, rAddr, 0)
	b.St(isa.OpSt64, rTmp2, rAddr, 16)
	b.St(isa.OpSt64, rAcc, rAddr, 32)
	b.Br(isa.OpBge, rAcc, isa.RegZero, "pos")
	b.St(isa.OpSt64, rIter, rAddr, 40)
	b.Label("pos")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "txn")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 88)
	b.Halt()

	p := newPrng(17)
	img := make([]uint64, rows*rowSize/8)
	for i := range img {
		img[i] = p.next()
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "erp",
		Class:       ClassCommercial,
		Standin:     "SAP-class ERP",
		Description: "read-modify-write transactions over random rows; highest store fraction, pressures the speculative store buffer",
		Program:     prog,
		ApproxInsts: uint64(iters) * 20,
	}, nil
}

// MCFLike is the SPEC CPU mcf proxy: dependent pointer chasing with a
// little arithmetic — the worst case for overlap (every miss depends on
// the previous one).
func MCFLike(s Scale) (*Spec, error) {
	nodes, steps := 8192, 20000 // 512 KiB
	if s == ScaleFull {
		nodes, steps = 1<<17, 150000 // 8 MiB
	}
	const base = 0x5000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.MovImm64(rPtr, rScr, base)
	b.Movi(rIter, 0)
	b.MovImm64(rTmp2, rScr, int64(steps))
	b.Movi(rAcc, 0)
	b.Label("chase")
	b.Ld(isa.OpLd64, rVal, rPtr, 8) // payload
	b.Op(isa.OpAdd, rAcc, rAcc, rVal)
	b.Ld(isa.OpLd64, rPtr, rPtr, 0) // next (dependent miss)
	b.Opi(isa.OpAddi, rIter, rIter, 1)
	b.Br(isa.OpBne, rIter, rTmp2, "chase")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 96)
	b.Halt()

	p := newPrng(19)
	perm := p.cyclePermutation(nodes)
	img := make([]uint64, nodes*8)
	for i := 0; i < nodes; i++ {
		img[i*8] = uint64(base + perm[i]*64)
		img[i*8+1] = p.next() % 1000
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "mcf",
		Class:       ClassSPEC,
		Standin:     "SPEC CPU mcf",
		Description: "dependent pointer chase over a ring ≫ caches; serialized misses, minimal exploitable MLP",
		Program:     prog,
		ApproxInsts: uint64(steps) * 5,
	}, nil
}

// StreamLike is the streaming proxy (SPEC art/stream): sequential sweep
// with perfect spatial locality; one miss per line, fully overlappable.
func StreamLike(s Scale) (*Spec, error) {
	words, passes := 1<<15, 4 // 256 KiB
	if s == ScaleFull {
		words, passes = 1<<20, 3 // 8 MiB
	}
	const base = 0x6000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.Movi(rVal2, int32(passes))
	b.Movi(rAcc, 0)
	b.Label("pass")
	b.MovImm64(rAddr, rScr, base)
	b.MovImm64(rInner, rScr, int64(words/4))
	b.Label("sum")
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	b.Ld(isa.OpLd64, rTmp, rAddr, 8)
	b.Ld(isa.OpLd64, rTmp2, rAddr, 16)
	b.Ld(isa.OpLd64, rPtr, rAddr, 24)
	b.Op(isa.OpAdd, rAcc, rAcc, rVal)
	b.Op(isa.OpAdd, rAcc, rAcc, rTmp)
	b.Op(isa.OpAdd, rAcc, rAcc, rTmp2)
	b.Op(isa.OpAdd, rAcc, rAcc, rPtr)
	b.Opi(isa.OpAddi, rAddr, rAddr, 32)
	b.Opi(isa.OpAddi, rInner, rInner, -1)
	b.Br(isa.OpBne, rInner, isa.RegZero, "sum")
	b.Opi(isa.OpAddi, rVal2, rVal2, -1)
	b.Br(isa.OpBne, rVal2, isa.RegZero, "pass")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 104)
	b.Halt()

	p := newPrng(23)
	img := make([]uint64, words)
	for i := range img {
		img[i] = p.next() & 0xffff
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "stream",
		Class:       ClassSPEC,
		Standin:     "SPEC CPU art / STREAM",
		Description: "unit-stride sweep over an array ≫ caches; abundant independent misses",
		Program:     prog,
		ApproxInsts: uint64(words/4) * uint64(passes) * 11,
	}, nil
}

// GCCLike is the branchy-integer proxy: cache-resident data with
// data-dependent branches every few instructions — bounded by branch
// prediction and ILP rather than memory.
func GCCLike(s Scale) (*Spec, error) {
	words, iters := 2048, 8000 // 16 KiB: cache resident
	if s == ScaleFull {
		iters = 80000
	}
	const base = 0x7000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0x31415926)
	b.MovImm64(rBase, rScr, base)
	b.Movi(rMask, int32(words-1))
	b.MovImm64(rIter, rScr, int64(iters))
	b.Movi(rAcc, 0)

	b.Label("iter")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 3)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	// A small data-dependent decision tree.
	b.Opi(isa.OpAndi, rTmp, rVal, 7)
	b.Opi(isa.OpSlti, rTmp2, rTmp, 4)
	b.Br(isa.OpBeq, rTmp2, isa.RegZero, "hi")
	b.Opi(isa.OpAndi, rTmp2, rVal, 1)
	b.Br(isa.OpBeq, rTmp2, isa.RegZero, "lo_even")
	b.Opi(isa.OpAddi, rAcc, rAcc, 3)
	b.Jmp("done")
	b.Label("lo_even")
	b.Op(isa.OpSub, rAcc, rAcc, rTmp)
	b.Jmp("done")
	b.Label("hi")
	b.Opi(isa.OpXori, rAcc, rAcc, 0x5a)
	b.Op(isa.OpAdd, rAcc, rAcc, rVal)
	b.Label("done")
	b.St(isa.OpSt64, rAcc, rAddr, 0)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "iter")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 112)
	b.Halt()

	p := newPrng(29)
	img := make([]uint64, words)
	for i := range img {
		img[i] = p.next()
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "gcc",
		Class:       ClassSPEC,
		Standin:     "SPEC CPU gcc/crafty",
		Description: "cache-resident data with dense data-dependent branching; bounded by prediction and width, not memory",
		Program:     prog,
		ApproxInsts: uint64(iters) * 15,
	}, nil
}

// QuantumLike is the regular-stride proxy (SPEC libquantum): long
// strided passes of independent read-modify-writes.
func QuantumLike(s Scale) (*Spec, error) {
	words, passes := 1<<15, 3 // 256 KiB
	if s == ScaleFull {
		words, passes = 1<<20, 2 // 8 MiB
	}
	const base = 0x8000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.Movi(rVal2, int32(passes))
	b.MovImm64(rTmp2, rScr, 0x40)
	b.Label("pass")
	b.MovImm64(rAddr, rScr, base)
	b.MovImm64(rInner, rScr, int64(words/8))
	b.Label("gate")
	b.Ld(isa.OpLd64, rVal, rAddr, 0) // stride 64B: one miss per line
	b.Op(isa.OpXor, rVal, rVal, rTmp2)
	b.St(isa.OpSt64, rVal, rAddr, 0)
	b.Opi(isa.OpAddi, rAddr, rAddr, 64)
	b.Opi(isa.OpAddi, rInner, rInner, -1)
	b.Br(isa.OpBne, rInner, isa.RegZero, "gate")
	b.Opi(isa.OpAddi, rVal2, rVal2, -1)
	b.Br(isa.OpBne, rVal2, isa.RegZero, "pass")
	b.Halt()

	p := newPrng(31)
	img := make([]uint64, words)
	for i := range img {
		img[i] = p.next()
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "quantum",
		Class:       ClassSPEC,
		Standin:     "SPEC CPU libquantum",
		Description: "64B-strided read-modify-write passes; every access misses, all independent",
		Program:     prog,
		ApproxInsts: uint64(words/8) * uint64(passes) * 6,
	}, nil
}

// PointerChase is the pure dependent-miss microbenchmark.
func PointerChase(s Scale) (*Spec, error) {
	nodes, steps := 8192, 15000
	if s == ScaleFull {
		nodes, steps = 1<<17, 100000
	}
	const base = 0x9000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	b.MovImm64(rPtr, rScr, base)
	b.MovImm64(rIter, rScr, int64(steps))
	b.Label("chase")
	b.Ld(isa.OpLd64, rPtr, rPtr, 0)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "chase")
	b.St(isa.OpSt64, rPtr, isa.RegZero, 120)
	b.Halt()

	p := newPrng(37)
	perm := p.cyclePermutation(nodes)
	img := make([]uint64, nodes*8)
	for i := 0; i < nodes; i++ {
		img[i*8] = uint64(base + perm[i]*64)
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "chase",
		Class:       ClassMicro,
		Standin:     "dependent-miss chain",
		Description: "pure pointer chase: the lower bound for any overlap technique",
		Program:     prog,
		ApproxInsts: uint64(steps) * 3,
	}, nil
}

// RandomArray is the independent-miss microbenchmark: every iteration
// issues an address-independent random load, ideal for MLP extraction.
func RandomArray(s Scale) (*Spec, error) {
	lines, iters := 8192, 10000 // 512 KiB
	if s == ScaleFull {
		lines, iters = 1<<17, 80000
	}
	const base = 0xa000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0xfeedbeef)
	b.MovImm64(rBase, rScr, base)
	b.Movi(rMask, int32(lines-1))
	b.MovImm64(rIter, rScr, int64(iters))
	b.Movi(rAcc, 0)
	b.Label("probe")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 6)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rVal, rAddr, 0)
	b.Op(isa.OpAdd, rAcc, rAcc, rVal)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "probe")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 128)
	b.Halt()

	p := newPrng(41)
	img := make([]uint64, lines*8)
	for i := range img {
		img[i] = p.next() & 0xffff
	}
	b.Data(base, quads(img))

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "randarr",
		Class:       ClassMicro,
		Standin:     "independent random misses",
		Description: "address-independent random loads: the upper bound for MLP extraction",
		Program:     prog,
		ApproxInsts: uint64(iters) * 10,
	}, nil
}

// DenseCompute is the no-miss microbenchmark: register-resident
// arithmetic with a predictable loop; all cores should look similar,
// modulo width.
func DenseCompute(s Scale) (*Spec, error) {
	iters := 20000
	if s == ScaleFull {
		iters = 200000
	}
	b := asm.NewBuilder(asm.DefaultTextBase)
	b.MovImm64(rIter, rScr, int64(iters))
	b.Movi(rAcc, 1)
	b.Movi(rVal, 3)
	b.Movi(rVal2, 5)
	b.Label("loop")
	b.Op(isa.OpMul, rTmp, rAcc, rVal)
	b.Op(isa.OpAdd, rTmp, rTmp, rVal2)
	b.Opi(isa.OpXori, rTmp2, rTmp, 0x2d)
	b.Op(isa.OpAdd, rAcc, rTmp, rTmp2)
	b.Opi(isa.OpSrai, rAcc, rAcc, 1)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "loop")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 136)
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "dense",
		Class:       ClassMicro,
		Standin:     "register-resident compute",
		Description: "no memory traffic: isolates pipeline width and latency effects",
		Program:     prog,
		ApproxInsts: uint64(iters) * 7,
	}, nil
}
