package workload

import (
	"testing"

	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// TestAllWorkloadsTerminate runs every generated workload (test scale)
// on the golden emulator: each must assemble, run to a clean halt within
// a sane instruction budget, and roughly match its declared size.
func TestAllWorkloadsTerminate(t *testing.T) {
	specs, err := BuildAll(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != len(Names) {
		t.Fatalf("built %d, want %d", len(specs), len(Names))
	}
	for _, w := range specs {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := mem.NewSparse()
			w.Program.Load(m)
			e := isa.NewEmulator(w.Program.Entry, m)
			if err := e.Run(100_000_000); err != nil {
				t.Fatalf("emulate: %v", err)
			}
			if e.Executed == 0 {
				t.Fatal("no instructions executed")
			}
			// ApproxInsts is allowed to be rough, but not wildly off.
			ratio := float64(e.Executed) / float64(w.ApproxInsts)
			if ratio < 0.3 || ratio > 3.0 {
				t.Errorf("executed %d vs declared %d (ratio %.2f)", e.Executed, w.ApproxInsts, ratio)
			}
			if w.Description == "" || w.Standin == "" {
				t.Error("missing documentation fields")
			}
		})
	}
}

// TestWorkloadsDeterministic: generating a workload twice produces
// byte-identical programs.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range Names {
		a, err := Build(name, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Program.Segments) != len(b.Program.Segments) {
			t.Fatalf("%s: segment count differs", name)
		}
		for i := range a.Program.Segments {
			sa, sb := a.Program.Segments[i], b.Program.Segments[i]
			if sa.Addr != sb.Addr || len(sa.Data) != len(sb.Data) {
				t.Fatalf("%s: segment %d shape differs", name, i)
			}
			for j := range sa.Data {
				if sa.Data[j] != sb.Data[j] {
					t.Fatalf("%s: segment %d byte %d differs", name, i, j)
				}
			}
		}
	}
}

// TestScaleGrows: full-scale workloads have strictly larger data images
// than test-scale ones.
func TestScaleGrows(t *testing.T) {
	for _, name := range Names {
		small, err := Build(name, ScaleTest)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Build(name, ScaleFull)
		if err != nil {
			t.Fatal(err)
		}
		if big.Program.Size() < small.Program.Size() {
			t.Errorf("%s: full size %d < test size %d", name, big.Program.Size(), small.Program.Size())
		}
	}
}

// TestCommercialFootprintsExceedCaches: the commercial suite at full
// scale must be larger than the default L2 (the premise of the paper's
// workload characterization).
func TestCommercialFootprintsExceedCaches(t *testing.T) {
	l2 := mem.DefaultHierConfig().L2.SizeBytes
	for _, name := range CommercialNames {
		w, err := Build(name, ScaleFull)
		if err != nil {
			t.Fatal(err)
		}
		if w.Program.Size() < l2 {
			t.Errorf("%s: footprint %d < L2 %d", name, w.Program.Size(), l2)
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Build("nope", ScaleTest); err == nil {
		t.Error("accepted unknown workload")
	}
}

func TestCyclePermutationSingleCycle(t *testing.T) {
	p := newPrng(99)
	n := 64
	next := p.cyclePermutation(n)
	seen := make([]bool, n)
	cur := 0
	for i := 0; i < n; i++ {
		if seen[cur] {
			t.Fatalf("revisited %d after %d steps", cur, i)
		}
		seen[cur] = true
		cur = next[cur]
	}
	if cur != 0 {
		t.Error("permutation is not a single cycle")
	}
}

func TestPrngDeterminism(t *testing.T) {
	a, b := newPrng(5), newPrng(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("prng not deterministic")
		}
	}
	if newPrng(0).next() == 0 {
		t.Error("zero seed not remapped")
	}
}
