package workload

import (
	"encoding/binary"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// BTree is the index-lookup kernel: binary search over a sorted array
// far larger than the caches. Each probe is a log(n)-deep chain of
// dependent misses steered by data-dependent (essentially random)
// branches — the hardest honest case for deferred-branch prediction,
// since every comparison outcome is a coin flip.
func BTree(s Scale) (*Spec, error) {
	keys, probes := 1<<15, 2000 // 256 KiB
	if s == ScaleFull {
		keys, probes = 1<<20, 12000 // 8 MiB
	}
	const base = 0xb000000

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0xb7ee5)
	b.MovImm64(rBase, rScr, base)
	b.MovImm64(rIter, rScr, int64(probes))
	b.Movi(rAcc, 0)
	b.Movi(rMask, int32(keys-1))

	b.Label("probe")
	lcgStep(b, rMask)                 // rTmp = random target key index; keys[i] = 2*i
	b.Opi(isa.OpSlli, rVal2, rTmp, 1) // target value
	// Binary search over [lo, hi).
	b.Movi(rTmp2, 0)            // lo
	b.Movi(rInner, int32(keys)) // hi
	b.Label("bsearch")
	b.Op(isa.OpSub, rPtr, rInner, rTmp2)
	b.Opi(isa.OpSlti, rScr2, rPtr, 2)
	b.Br(isa.OpBne, rScr2, isa.RegZero, "found") // hi-lo < 2
	b.Op(isa.OpAdd, rPtr, rTmp2, rInner)
	b.Opi(isa.OpSrli, rPtr, rPtr, 1) // mid
	b.Opi(isa.OpSlli, rAddr, rPtr, 3)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rVal, rAddr, 0) // keys[mid]: dependent miss
	b.Br(isa.OpBlt, rVal, rVal2, "goright")
	b.Opi(isa.OpAddi, rInner, rPtr, 0) // hi = mid
	b.Jmp("bsearch")
	b.Label("goright")
	b.Opi(isa.OpAddi, rTmp2, rPtr, 0) // lo = mid
	b.Jmp("bsearch")
	b.Label("found")
	b.Op(isa.OpAdd, rAcc, rAcc, rTmp2)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "probe")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 144)
	b.Halt()

	// Sorted key array: keys[i] = 2*i (so any even target exists).
	img := make([]byte, keys*8)
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint64(img[i*8:], uint64(2*i))
	}
	b.Data(base, img)

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "btree",
		Class:       ClassCommercial,
		Standin:     "index lookups (B-tree/binary search)",
		Description: "binary search over a sorted array ≫ caches: log-depth dependent misses steered by unpredictable comparisons",
		Program:     prog,
		ApproxInsts: uint64(probes) * 12 * uint64(log2i(keys)),
	}, nil
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// HashJoin is the analytics kernel: build a hash table from one
// relation, then probe it with another. The probe phase issues
// independent hashed lookups (high MLP) each followed by a short
// dependent chain (bucket walk) — the classic in-memory join profile.
func HashJoin(s Scale) (*Spec, error) {
	buckets, buildRows, probeRows := 1<<13, 4000, 4000 // 64 KiB of buckets
	if s == ScaleFull {
		buckets, buildRows, probeRows = 1<<17, 60000, 60000 // 8 MiB
	}
	const bucketBase = 0xc000000
	nodeBase := uint64(bucketBase) + uint64(buckets)*8

	b := asm.NewBuilder(asm.DefaultTextBase)
	emitLCGInit(b, 0xca5cade)
	b.MovImm64(rBase, rScr, bucketBase)
	b.Movi(rMask, int32(buckets-1))
	b.MovImm64(rBase2, rScr, int64(nodeBase))
	b.Movi(rAcc, 0)

	// Build phase: insert rows at the head of hashed bucket chains.
	// Node layout: {next, key} (16 bytes, one per row).
	b.MovImm64(rIter, rScr, int64(buildRows))
	b.Opi(isa.OpAddi, rPtr, rBase2, 0) // next free node
	b.Label("build")
	lcgStep(b, rMask) // rTmp = hash(key) (the key IS the hash input)
	b.Opi(isa.OpSlli, rAddr, rTmp, 3)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase) // &buckets[h]
	b.Ld(isa.OpLd64, rVal, rAddr, 0)     // old head
	b.St(isa.OpSt64, rVal, rPtr, 0)      // node.next = old head
	b.St(isa.OpSt64, rTmp, rPtr, 8)      // node.key = h (self-describing)
	b.St(isa.OpSt64, rPtr, rAddr, 0)     // bucket = node
	b.Opi(isa.OpAddi, rPtr, rPtr, 16)
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "build")

	// Probe phase: look up random keys, walking bucket chains.
	b.MovImm64(rIter, rScr, int64(probeRows))
	b.Label("fetch")
	lcgStep(b, rMask)
	b.Opi(isa.OpSlli, rAddr, rTmp, 3)
	b.Op(isa.OpAdd, rAddr, rAddr, rBase)
	b.Ld(isa.OpLd64, rVal, rAddr, 0) // bucket head (independent miss)
	b.Label("walk")
	b.Br(isa.OpBeq, rVal, isa.RegZero, "miss")
	b.Ld(isa.OpLd64, rVal2, rVal, 8) // node.key (dependent)
	b.Br(isa.OpBne, rVal2, rTmp, "next")
	b.Opi(isa.OpAddi, rAcc, rAcc, 1) // match
	b.Jmp("miss")
	b.Label("next")
	b.Ld(isa.OpLd64, rVal, rVal, 0) // node.next (dependent)
	b.Jmp("walk")
	b.Label("miss")
	b.Opi(isa.OpAddi, rIter, rIter, -1)
	b.Br(isa.OpBne, rIter, isa.RegZero, "fetch")
	b.St(isa.OpSt64, rAcc, isa.RegZero, 152)
	b.Halt()

	prog, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Spec{
		Name:        "hashjoin",
		Class:       ClassCommercial,
		Standin:     "in-memory hash join (analytics)",
		Description: "hash build then probe: independent hashed lookups with short dependent bucket walks",
		Program:     prog,
		ApproxInsts: uint64(buildRows)*12 + uint64(probeRows)*14,
	}, nil
}
