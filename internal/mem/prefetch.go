package mem

// PrefetchKind selects the hardware prefetcher attached to each L1D.
type PrefetchKind uint8

// Hardware prefetcher kinds.
const (
	PrefetchNone PrefetchKind = iota
	// PrefetchNextLine fetches line+1 on every demand miss.
	PrefetchNextLine
	// PrefetchStride detects per-PC constant strides and runs a few
	// lines ahead of the demand stream.
	PrefetchStride
)

func (k PrefetchKind) String() string {
	switch k {
	case PrefetchNone:
		return "none"
	case PrefetchNextLine:
		return "nextline"
	case PrefetchStride:
		return "stride"
	}
	return "?"
}

// StridePrefetcherConfig sizes the stride prefetcher.
type StridePrefetcherConfig struct {
	Entries int // per-PC tracking entries (direct-mapped)
	Degree  int // prefetches issued per trained miss
	// MinConfidence is how many consecutive identical strides must be
	// observed before prefetching begins.
	MinConfidence int
}

// DefaultStrideConfig returns a modest 64-entry, degree-2 prefetcher.
func DefaultStrideConfig() StridePrefetcherConfig {
	return StridePrefetcherConfig{Entries: 64, Degree: 2, MinConfidence: 2}
}

type strideEntry struct {
	pc         uint64
	lastAddr   uint64
	stride     int64
	confidence int
	valid      bool
}

// stridePrefetcher is a classic reference-prediction table: it watches
// the (pc, addr) stream of demand loads and, once a pc shows a stable
// stride, prefetches degree lines ahead.
type stridePrefetcher struct {
	cfg     StridePrefetcherConfig
	entries []strideEntry
	// Stats
	Trained uint64
	Issued  uint64
}

func newStridePrefetcher(cfg StridePrefetcherConfig) *stridePrefetcher {
	if cfg.Entries <= 0 {
		cfg.Entries = 64
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 2
	}
	return &stridePrefetcher{cfg: cfg, entries: make([]strideEntry, cfg.Entries)}
}

// observe trains on a demand access and returns the addresses to
// prefetch (nil when untrained or stride zero).
func (p *stridePrefetcher) observe(pc, addr uint64) []uint64 {
	e := &p.entries[(pc>>3)%uint64(len(p.entries))]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.confidence < p.cfg.MinConfidence {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
	}
	e.lastAddr = addr
	if e.confidence < p.cfg.MinConfidence || e.stride == 0 {
		return nil
	}
	p.Trained++
	out := make([]uint64, 0, p.cfg.Degree)
	next := int64(addr)
	for i := 0; i < p.cfg.Degree; i++ {
		next += e.stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	p.Issued += uint64(len(out))
	return out
}
