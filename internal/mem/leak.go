package mem

// Transient-leakage support: secret-region tracking, taint counters and
// the observable-state digest consumed by sim.CheckTransientLeakage.
//
// The oracle's threat model (docs/SECURITY.md) is an attacker who can
// measure cache timing after a speculation squash. "Observable state" is
// therefore exactly what survives a rollback and changes future timing:
// cache tag arrays (valid/dirty bits, in-flight fill arrival, and the
// LRU ordering within each set) plus MSHR residue. Pure statistics,
// functional memory contents and the injected-fault schedule are not
// attacker-observable and stay out of the digest.

// fnv64 folds a stream of uint64 values with FNV-1a.
type fnv64 struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newFnv64() fnv64 { return fnv64{h: fnvOffset} }

func (d *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= uint64(byte(v >> (8 * i)))
		d.h *= fnvPrime
	}
}

func (d *fnv64) boolBit(b bool) {
	if b {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

// digestInto folds the cache's observable state: for every set, each
// valid line's tag, dirty bit, fill-arrival cycle, and its LRU *rank*
// within the set. Ranks — not raw stamps — because only the replacement
// order is observable: two histories that touch lines at different
// absolute stamps but leave the same eviction order are
// indistinguishable to an attacker.
func (c *Cache) digestInto(d *fnv64) {
	d.u64(uint64(len(c.sets)))
	for si := range c.sets {
		set := c.sets[si]
		for i := range set {
			l := &set[i]
			if !l.valid {
				continue
			}
			// rank = number of valid lines in this set touched less
			// recently (stamps are unique: the stamp counter is bumped on
			// every touch).
			rank := 0
			for j := range set {
				if j != i && set[j].valid && set[j].lru < l.lru {
					rank++
				}
			}
			d.u64(uint64(si))
			d.u64(l.tag)
			d.boolBit(l.dirty)
			d.u64(l.fillReady)
			d.u64(uint64(rank))
		}
	}
}

// digestInto folds the MSHR's live residue at cycle now: which line
// fills are still in flight and when each arrives.
func (m *MSHR) digestInto(d *fnv64, now uint64) {
	m.expire(now)
	for _, e := range m.entries {
		d.u64(e.line)
		d.u64(e.ready)
	}
}

// ObservableDigest summarizes, at cycle now, every microarchitectural
// structure an attacker can observe through post-squash cache timing:
// all L1I/L1D/L2 tag+LRU state and all MSHR residue. The leakage oracle
// compares digests across secret-differing runs; any difference after a
// rollback means speculation exfiltrated a secret. TLB, DRAM bank and
// prefetcher-training state are deliberately excluded (see
// docs/SECURITY.md for the scoping argument).
func (h *Hierarchy) ObservableDigest(now uint64) uint64 {
	d := newFnv64()
	for i := range h.cores {
		p := &h.cores[i]
		p.l1i.digestInto(&d)
		p.l1d.digestInto(&d)
		p.mshrI.digestInto(&d, now)
		p.mshrD.digestInto(&d, now)
	}
	h.l2.digestInto(&d)
	h.l2mshr.digestInto(&d, now)
	return d.h
}

// SetSecret marks the byte range [addr, addr+n) as secret: speculative
// accesses to its lines count as tainted, and cores begin logging
// speculative fills for squash accounting. Addresses are in the
// program's (pre-salt) domain.
func (h *Hierarchy) SetSecret(addr uint64, n int) {
	if n <= 0 {
		return
	}
	if h.secretLines == nil {
		h.secretLines = make(map[uint64]struct{})
	}
	lb := uint64(h.cfg.L2.LineBytes)
	first := addr &^ (lb - 1)
	last := (addr + uint64(n) - 1) &^ (lb - 1)
	for line := first; ; line += lb {
		h.secretLines[line] = struct{}{}
		if line == last {
			break
		}
	}
}

// SecretsInstalled reports whether any secret region is marked. Cores
// gate their (slightly more expensive) taint bookkeeping on it.
func (h *Hierarchy) SecretsInstalled() bool { return len(h.secretLines) > 0 }

// NoteSpecAccess records a speculative data access by a core; it counts
// as tainted when the address falls in a secret line. Addresses are in
// the program's (pre-salt) domain, as passed to Access.
func (h *Hierarchy) NoteSpecAccess(addr uint64) {
	if h.secretLines == nil {
		return
	}
	if _, ok := h.secretLines[h.l2.LineAddr(addr)]; ok {
		h.Stats.TaintedSpecAccesses++
	}
}

// NoteSquashedSpecFills records n speculative fills discarded by a
// rollback while secrets were installed — the residue the oracle's
// post-squash digest check inspects.
func (h *Hierarchy) NoteSquashedSpecFills(n int) {
	h.Stats.SquashedSpecFills += uint64(n)
}

// NoteOracleCheck records one differential digest comparison performed
// by the leakage oracle against this hierarchy.
func (h *Hierarchy) NoteOracleCheck() { h.Stats.OracleChecks++ }

// SpecProbeLoad probes core's L1D (and its MSHR file, for merges with
// already-in-flight fills) for addr at cycle now with no observable side
// effects: no LRU touch, no fill, no MSHR allocation, no prefetcher
// training. SecureDelayOnMiss uses it for speculative loads: a hit (or
// merge) may complete, a miss must not start a fill. Hit/miss statistics
// are still counted — they are not attacker-observable.
func (h *Hierarchy) SpecProbeLoad(core int, addr uint64, now uint64) (ready uint64, hit bool) {
	p := &h.cores[core]
	addr ^= h.salts[core]
	line := p.l1d.LineAddr(addr)
	if ready, hit := p.l1d.ProbeAt(line, now); hit {
		return ready, true
	}
	if ready, inflight := p.mshrD.Lookup(line, now); inflight {
		return ready, true
	}
	return 0, false
}
