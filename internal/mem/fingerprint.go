package mem

import "fmt"

// Fingerprint methods render each configuration as an explicit,
// field-by-field canonical string for run-cache keys (see
// sim.Options.Fingerprint). Every simulation-affecting field is written
// by name; none may ever be formatted via %v on the whole struct, which
// would silently print addresses if a pointer or map field were added.
// The reflect-based guard tests in internal/sim fail when a field is
// added to any of these structs without extending its Fingerprint.

// Fingerprint canonically encodes the cache geometry and timing.
func (c CacheConfig) Fingerprint() string {
	return fmt.Sprintf("cache{name=%s size=%d ways=%d line=%d hitlat=%d mshrs=%d}",
		c.Name, c.SizeBytes, c.Ways, c.LineBytes, c.HitLatency, c.MSHRs)
}

// Fingerprint canonically encodes the DRAM timing model.
func (c DRAMConfig) Fingerprint() string {
	return fmt.Sprintf("dram{lat=%d banks=%d busy=%d}", c.Latency, c.Banks, c.BankBusy)
}

// Fingerprint canonically encodes the TLB configuration.
func (c TLBConfig) Fingerprint() string {
	return fmt.Sprintf("tlb{entries=%d ways=%d pagebits=%d misslat=%d}",
		c.Entries, c.Ways, c.PageBits, c.MissLatency)
}

// Fingerprint canonically encodes the stride-prefetcher sizing.
func (c StridePrefetcherConfig) Fingerprint() string {
	return fmt.Sprintf("stride{entries=%d degree=%d minconf=%d}",
		c.Entries, c.Degree, c.MinConfidence)
}

// Fingerprint canonically encodes the whole hierarchy configuration.
func (c HierConfig) Fingerprint() string {
	return fmt.Sprintf("hier{l1i=%s l1d=%s l2=%s l2banks=%d %s prefetch=%s %s dtlb=%s}",
		c.L1I.Fingerprint(), c.L1D.Fingerprint(), c.L2.Fingerprint(), c.L2Banks,
		c.DRAM.Fingerprint(), c.Prefetch, c.Stride.Fingerprint(), c.DTLB.Fingerprint())
}
