package mem

import "testing"

func smallHier(t *testing.T, ncores int) *Hierarchy {
	t.Helper()
	cfg := HierConfig{
		L1I:     CacheConfig{Name: "L1I", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 2},
		L1D:     CacheConfig{Name: "L1D", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 4},
		L2:      CacheConfig{Name: "L2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, HitLatency: 10, MSHRs: 8},
		L2Banks: 2,
		DRAM:    DRAMConfig{Latency: 100, Banks: 4, BankBusy: 10},
	}
	h, err := NewHierarchy(cfg, ncores)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := smallHier(t, 1)
	r1 := h.Access(0, AccRead, 0x10000, 0)
	if r1.Level != LvlMem {
		t.Errorf("first access level = %v", r1.Level)
	}
	if r1.Ready < 100 {
		t.Errorf("miss ready = %d, too fast", r1.Ready)
	}
	// After the fill lands, it's an L1 hit.
	r2 := h.Access(0, AccRead, 0x10000, r1.Ready+1)
	if r2.Level != LvlL1 {
		t.Errorf("second access level = %v", r2.Level)
	}
	if r2.Ready != r1.Ready+1+2 {
		t.Errorf("hit ready = %d", r2.Ready)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := smallHier(t, 1)
	r1 := h.Access(0, AccRead, 0x20000, 0)
	// Same line while the fill is in flight: no second DRAM read, and
	// the data is available no earlier than the outstanding fill (the
	// in-flight line is visible in the tag array with its arrival time).
	r2 := h.Access(0, AccRead, 0x20040-0x40, 5) // same line
	if r2.Ready != r1.Ready {
		t.Errorf("merged ready %d != %d", r2.Ready, r1.Ready)
	}
	if h.DRAM().Stats.Reads != 1 {
		t.Errorf("dram reads = %d, want 1 (merged)", h.DRAM().Stats.Reads)
	}
}

func TestHierarchyL2HitPath(t *testing.T) {
	h := smallHier(t, 1)
	r1 := h.Access(0, AccRead, 0x30000, 0)
	// Evict the line from L1 by filling both ways of its set.
	// L1: 1KB/2way/64B = 8 sets; same-set stride = 512.
	h.Access(0, AccRead, 0x30000+512, r1.Ready+1)
	h.Access(0, AccRead, 0x30000+1024, r1.Ready+2)
	// The original line should now be an L2 hit, not DRAM.
	dr := h.DRAM().Stats.Reads
	r2 := h.Access(0, AccRead, 0x30000, r1.Ready+500)
	if r2.Level != LvlL2 {
		t.Errorf("level = %v, want L2", r2.Level)
	}
	if h.DRAM().Stats.Reads != dr {
		t.Error("L2 hit went to DRAM")
	}
}

func TestHierarchyWriteAllocatesDirty(t *testing.T) {
	h := smallHier(t, 1)
	r := h.Access(0, AccWrite, 0x40000, 0)
	if r.Level != LvlMem {
		t.Errorf("write miss level = %v", r.Level)
	}
	// L1 line should be dirty: evict it and expect a writeback.
	wb := h.L1D(0).Stats.Writebacks
	h.Access(0, AccRead, 0x40000+512, r.Ready+1)
	h.Access(0, AccRead, 0x40000+1024, r.Ready+2)
	if h.L1D(0).Stats.Writebacks != wb+1 {
		t.Errorf("writebacks = %d, want %d", h.L1D(0).Stats.Writebacks, wb+1)
	}
}

func TestHierarchyFetchUsesL1I(t *testing.T) {
	h := smallHier(t, 1)
	h.Access(0, AccFetch, 0x10000, 0)
	if h.L1I(0).Stats.Misses != 1 || h.L1D(0).Stats.Misses != 0 {
		t.Error("fetch did not use L1I")
	}
}

func TestHierarchyPrefetchNonBlocking(t *testing.T) {
	h := smallHier(t, 1)
	h.Access(0, AccPrefetch, 0x50000, 0)
	if h.Stats.Prefetches != 1 {
		t.Errorf("prefetches = %d", h.Stats.Prefetches)
	}
	// The line arrives later and the demand access hits.
	r := h.Access(0, AccRead, 0x50000, 300)
	if r.Level != LvlL1 {
		t.Errorf("post-prefetch level = %v", r.Level)
	}
	// Prefetches beyond MSHR capacity are dropped silently.
	for i := 0; i < 10; i++ {
		h.Access(0, AccPrefetch, uint64(0x60000+i*64), 400)
	}
	if h.Stats.Prefetches >= 11 {
		t.Errorf("prefetches = %d, expected drops when MSHRs full", h.Stats.Prefetches)
	}
}

func TestHierarchyNextLinePrefetch(t *testing.T) {
	cfg := smallHier(t, 1).Config()
	cfg.Prefetch = PrefetchNextLine
	h, err := NewHierarchy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := h.AccessLoad(0, 0x70000, 0x10000, 0)
	if h.Stats.Prefetches != 1 {
		t.Fatalf("next-line prefetch not issued")
	}
	// The next line should be present (in flight or filled).
	r2 := h.Access(0, AccRead, 0x70040, r.Ready+200)
	if r2.Level == LvlMem && !r2.Merged {
		t.Errorf("next line went to DRAM: %+v", r2)
	}
}

func TestHierarchyCoherenceInvalidation(t *testing.T) {
	h := smallHier(t, 2)
	r := h.Access(1, AccRead, 0x80000, 0)
	if !h.L1D(1).Probe(0x80000) {
		t.Fatal("line not in core 1 L1D")
	}
	h.StoreVisible(0, 0x80000)
	if h.L1D(1).Probe(0x80000) {
		t.Error("line survived coherence invalidation")
	}
	if h.Stats.CoherenceInvals != 1 {
		t.Errorf("invals = %d", h.Stats.CoherenceInvals)
	}
	// Core 1 re-reads: must miss (L2 still has it).
	r2 := h.Access(1, AccRead, 0x80000, r.Ready+100)
	if r2.Level != LvlL2 {
		t.Errorf("post-inval level = %v", r2.Level)
	}
}

func TestHierarchyAddressSalt(t *testing.T) {
	h := smallHier(t, 2)
	h.SetAddressSalt(1, 1<<33)
	// Same virtual line from two cores must not share in L2.
	h.Access(0, AccRead, 0x90000, 0)
	r := h.Access(1, AccRead, 0x90000, 5)
	if r.Merged || r.Level != LvlMem {
		t.Errorf("salted access shared a fill: %+v", r)
	}
	if h.DRAM().Stats.Reads != 2 {
		t.Errorf("dram reads = %d, want 2", h.DRAM().Stats.Reads)
	}
}

func TestHierarchyOutstandingMisses(t *testing.T) {
	h := smallHier(t, 1)
	h.Access(0, AccRead, 0xa0000, 0)
	h.Access(0, AccRead, 0xa1000, 0)
	if n := h.OutstandingDataMisses(0, 1); n != 2 {
		t.Errorf("outstanding = %d", n)
	}
	if h.DataMSHRFull(0, 1) {
		t.Error("MSHR reported full with 2/4")
	}
	h.Access(0, AccRead, 0xa2000, 1)
	h.Access(0, AccRead, 0xa3000, 1)
	if !h.DataMSHRFull(0, 2) {
		t.Error("MSHR not full with 4/4")
	}
	if n := h.OutstandingDataMisses(0, 10000); n != 0 {
		t.Errorf("outstanding after completion = %d", n)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.L1D.LineBytes = 32 // mismatched line sizes
	if _, err := NewHierarchy(cfg, 1); err == nil {
		t.Error("accepted mismatched line sizes")
	}
	if _, err := NewHierarchy(DefaultHierConfig(), 0); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestHierarchyL2PortContention(t *testing.T) {
	h := smallHier(t, 2)
	// Many simultaneous same-bank L2 accesses from two cores: later
	// ones must serialize (ready strictly increasing).
	var prev uint64
	for i := 0; i < 6; i++ {
		// stride of 2 lines keeps the same L2 bank (2 banks).
		r := h.Access(i%2, AccRead, uint64(0xb0000+i*128), 0)
		if r.Ready <= prev && i > 0 {
			t.Errorf("access %d ready %d not after %d", i, r.Ready, prev)
		}
		prev = r.Ready
	}
}
