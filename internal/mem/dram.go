package mem

// DRAMConfig describes the main-memory timing model.
type DRAMConfig struct {
	// Latency is the unloaded access latency in core cycles (row
	// activate + column read + transfer, flattened).
	Latency int
	// Banks is the number of independent banks; consecutive lines
	// interleave across banks.
	Banks int
	// BankBusy is the bank occupancy per access in cycles (cycle-time
	// of a bank); back-to-back accesses to one bank serialize on it.
	BankBusy int
}

// DRAMStats counts main-memory events.
type DRAMStats struct {
	Reads         uint64
	Writes        uint64
	BankConflicts uint64 // accesses delayed by a busy bank
	BusyCycles    uint64 // total cycles of bank occupancy accrued
}

// DRAM models a banked main memory with fixed access latency and
// per-bank occupancy. It carries no data (data lives in the functional
// memory); it only answers "when is this access done".
type DRAM struct {
	cfg      DRAMConfig
	bankFree []uint64
	lineBits uint
	Stats    DRAMStats
}

// NewDRAM builds the DRAM model. lineBytes is the transfer unit (the L2
// line size), used for bank interleaving.
func NewDRAM(cfg DRAMConfig, lineBytes int) *DRAM {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.BankBusy <= 0 {
		cfg.BankBusy = 1
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 1
	}
	return &DRAM{
		cfg:      cfg,
		bankFree: make([]uint64, cfg.Banks),
		lineBits: uint(log2(lineBytes)),
	}
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

func (d *DRAM) bank(addr uint64) int {
	return int((addr >> d.lineBits) % uint64(d.cfg.Banks))
}

// Read schedules a line read beginning no earlier than cycle now and
// returns the cycle at which the data is available.
func (d *DRAM) Read(addr uint64, now uint64) (ready uint64) {
	d.Stats.Reads++
	return d.access(addr, now)
}

// Write schedules a line writeback beginning no earlier than cycle now
// and returns the cycle at which the bank is released. Writebacks are
// not on any load's critical path but do occupy banks.
func (d *DRAM) Write(addr uint64, now uint64) (done uint64) {
	d.Stats.Writes++
	return d.access(addr, now)
}

func (d *DRAM) access(addr uint64, now uint64) uint64 {
	b := d.bank(addr)
	start := now
	if d.bankFree[b] > start {
		start = d.bankFree[b]
		d.Stats.BankConflicts++
	}
	d.bankFree[b] = start + uint64(d.cfg.BankBusy)
	d.Stats.BusyCycles += uint64(d.cfg.BankBusy)
	return start + uint64(d.cfg.Latency)
}
