// Package mem provides the memory substrate shared by every core model:
// a functional sparse byte-addressable memory (architectural contents)
// and a timing model of the cache/DRAM hierarchy (latencies, MSHRs, bank
// and port contention). The two are deliberately separate: functional
// correctness never depends on the timing model, which is what lets the
// speculative cores be validated against the pure ISA emulator.
package mem

import "encoding/binary"

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// PageBits and PageSize expose the functional memory's page geometry for
// callers that cache page pointers (see PageFor).
const (
	PageBits = pageBits
	PageSize = pageSize
)

// Sparse is a paged, zero-initialized functional memory. It implements
// the isa.Memory interface. Reads of never-written pages return zero
// without allocating.
type Sparse struct {
	pages map[uint64]*[pageSize]byte

	// pcache is a small direct-mapped page-pointer cache in front of the
	// page map, keeping the map lookup off the per-access path. Pages are
	// mutated in place and never freed or replaced, so a cached pointer
	// can never go stale; never-written (absent) pages are simply not
	// cached, and allocation fills the slot.
	pcache [pcacheSize]pcacheEntry
}

const pcacheSize = 64

type pcacheEntry struct {
	num uint64
	p   *[pageSize]byte
}

// NewSparse returns an empty functional memory.
func NewSparse() *Sparse {
	return &Sparse{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Sparse) page(addr uint64, alloc bool) *[pageSize]byte {
	pn := addr >> pageBits
	e := &m.pcache[pn&(pcacheSize-1)]
	if e.p != nil && e.num == pn {
		return e.p
	}
	p := m.pages[pn]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	e.num, e.p = pn, p
	return p
}

// PageFor returns the backing page containing addr, or nil if that page
// has never been written. Pages are mutated in place and never replaced
// or freed, so a non-nil pointer stays valid — and live-updated by
// subsequent Writes — for the lifetime of the memory; hot readers (the
// fetch stage) cache it to bypass the page map.
func (m *Sparse) PageFor(addr uint64) *[PageSize]byte {
	return m.page(addr, false)
}

// Read returns the unsigned little-endian value of size bytes at addr.
// Size must be 1, 2, 4 or 8. Accesses may straddle page boundaries.
func (m *Sparse) Read(addr uint64, size int) uint64 {
	if off := addr & pageMask; off+uint64(size) <= pageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.readByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of val at addr, little-endian.
func (m *Sparse) Write(addr uint64, size int, val uint64) {
	if off := addr & pageMask; off+uint64(size) <= pageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(val)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.writeByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

func (m *Sparse) readByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

func (m *Sparse) writeByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Sparse) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr & pageMask
		n := pageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		p := m.page(addr, false)
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:])
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Sparse) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr & pageMask
		n := pageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(m.page(addr, true)[off:], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
}

// Clone returns a deep copy of the memory. Used by tests to run several
// core models over identical initial images.
func (m *Sparse) Clone() *Sparse {
	c := NewSparse()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// Equal reports whether two memories hold identical contents. Pages that
// are all-zero on one side and absent on the other compare equal.
func (m *Sparse) Equal(o *Sparse) bool {
	return m.coveredBy(o) && o.coveredBy(m)
}

func (m *Sparse) coveredBy(o *Sparse) bool {
	for pn, p := range m.pages {
		q := o.pages[pn]
		if q == nil {
			if *p != ([pageSize]byte{}) {
				return false
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// Diff returns up to max addresses at which the two memories differ.
func (m *Sparse) Diff(o *Sparse, max int) []uint64 {
	var out []uint64
	seen := make(map[uint64]bool)
	check := func(a, b *Sparse) {
		for pn, p := range a.pages {
			if seen[pn] {
				continue
			}
			seen[pn] = true
			var q [pageSize]byte
			if qp := b.pages[pn]; qp != nil {
				q = *qp
			}
			for i := 0; i < pageSize && len(out) < max; i++ {
				if p[i] != q[i] {
					out = append(out, pn<<pageBits|uint64(i))
				}
			}
			if len(out) >= max {
				return
			}
		}
	}
	check(m, o)
	check(o, m)
	return out
}
