package mem

import (
	"fmt"

	"rocksim/internal/obs"
)

// CacheConfig describes one set-associative cache.
type CacheConfig struct {
	Name       string
	SizeBytes  int // total capacity
	Ways       int
	LineBytes  int
	HitLatency int // cycles from access to data for a hit
	MSHRs      int // outstanding-miss registers (0 = blocking cache)
}

// Validate checks the configuration for internal consistency.
func (c CacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("mem: cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("mem: cache %q: size %d not divisible by ways*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: cache %q: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("mem: cache %q: hit latency must be >= 1", c.Name)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
	Invals     uint64 // coherence invalidations received
}

// MissRate returns misses/(hits+misses), or 0 with no accesses.
func (s CacheStats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// PublishObs publishes the cache's counters under name (e.g. "mem/l1d").
func (c *Cache) PublishObs(r *obs.Registry, name string) {
	s := c.Stats
	r.Counter(name + "/hits").Set(s.Hits)
	r.Counter(name + "/misses").Set(s.Misses)
	r.Counter(name + "/fills").Set(s.Fills)
	r.Counter(name + "/evictions").Set(s.Evictions)
	r.Counter(name + "/writebacks").Set(s.Writebacks)
	r.Counter(name + "/invals").Set(s.Invals)
}

type cacheLine struct {
	tag       uint64
	valid     bool
	dirty     bool
	lru       uint64 // last-touch stamp; larger = more recent
	fillReady uint64 // cycle at which the fill data actually arrives
}

// Cache is a set-associative cache tag store with LRU replacement.
// It tracks tags and dirty bits only; data always lives in the
// functional memory. fillReady models in-flight fills so that a line
// "present" in the tag array is not usable before its data arrives.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setShift uint
	setMask  uint64
	stamp    uint64
	Stats    CacheStats
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]cacheLine, nsets),
		setShift: uint(log2(cfg.LineBytes)),
		setMask:  uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Ways)
	}
	return c
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) set(addr uint64) []cacheLine {
	return c.sets[(addr>>c.setShift)&c.setMask]
}

// Lookup probes for addr. On a hit it refreshes LRU state, optionally
// sets the dirty bit, and returns the cycle the data is usable (at least
// now+HitLatency, later if the line's fill is still in flight).
func (c *Cache) Lookup(addr uint64, now uint64, markDirty bool) (ready uint64, hit bool) {
	tag := addr >> c.setShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.stamp++
			l.lru = c.stamp
			if markDirty {
				l.dirty = true
			}
			c.Stats.Hits++
			ready = now + uint64(c.cfg.HitLatency)
			if l.fillReady > ready {
				ready = l.fillReady
			}
			return ready, true
		}
	}
	c.Stats.Misses++
	return 0, false
}

// ProbeAt reports whether addr hits at cycle now and when its data is
// usable, counting the hit/miss but leaving all observable state — LRU
// order and the dirty bit — untouched. Secure-speculation modes use it
// so speculative probes leave no microarchitectural footprint.
func (c *Cache) ProbeAt(addr uint64, now uint64) (ready uint64, hit bool) {
	tag := addr >> c.setShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Stats.Hits++
			ready = now + uint64(c.cfg.HitLatency)
			if l.fillReady > ready {
				ready = l.fillReady
			}
			return ready, true
		}
	}
	c.Stats.Misses++
	return 0, false
}

// Probe reports whether addr is present without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.setShift
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a victim line displaced by a fill.
type Eviction struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Fill installs the line containing addr, arriving at cycle ready.
// It returns the displaced victim, if any. If the line is already
// present (e.g. racing fills merged by an MSHR) the entry is refreshed.
func (c *Cache) Fill(addr uint64, ready uint64, dirty bool) Eviction {
	tag := addr >> c.setShift
	set := c.set(addr)
	c.stamp++
	// Already present: refresh.
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.stamp
			l.dirty = l.dirty || dirty
			if ready < l.fillReady {
				l.fillReady = ready
			}
			return Eviction{}
		}
	}
	// Choose victim: invalid way first, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ev := Eviction{}
	v := &set[victim]
	if v.valid {
		ev = Eviction{Addr: v.tag << c.setShift, Dirty: v.dirty, Valid: true}
		c.Stats.Evictions++
		if v.dirty {
			c.Stats.Writebacks++
		}
	}
	*v = cacheLine{tag: tag, valid: true, dirty: dirty, lru: c.stamp, fillReady: ready}
	c.Stats.Fills++
	return ev
}

// Invalidate removes the line containing addr if present, returning
// whether it was present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	tag := addr >> c.setShift
	set := c.set(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			c.Stats.Invals++
			present, dirty = true, l.dirty
			*l = cacheLine{}
			return present, dirty
		}
	}
	return false, false
}

// CleanLine clears the dirty bit of the line containing addr if present.
func (c *Cache) CleanLine(addr uint64) {
	tag := addr >> c.setShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = false
			return
		}
	}
}
