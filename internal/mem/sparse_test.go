package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseBasic(t *testing.T) {
	m := NewSparse()
	if got := m.Read(0x1234, 8); got != 0 {
		t.Errorf("fresh read = %d", got)
	}
	m.Write(0x1234, 8, 0xdeadbeefcafef00d)
	if got := m.Read(0x1234, 8); got != 0xdeadbeefcafef00d {
		t.Errorf("read = %#x", got)
	}
	// Partial reads see little-endian bytes.
	if got := m.Read(0x1234, 1); got != 0x0d {
		t.Errorf("byte read = %#x", got)
	}
	if got := m.Read(0x1238, 4); got != 0xdeadbeef {
		t.Errorf("hi-word read = %#x", got)
	}
}

// TestSparseReadWriteProperty: a write followed by a read of the same
// width and address returns the value truncated to the width, for any
// address including page-straddling ones.
func TestSparseReadWriteProperty(t *testing.T) {
	m := NewSparse()
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint64, szIdx uint8, val uint64) bool {
		addr &= 0xffffff // keep the page map small
		size := sizes[szIdx%4]
		m.Write(addr, size, val)
		want := val
		if size < 8 {
			want &= (1 << (8 * size)) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestSparsePageStraddle(t *testing.T) {
	m := NewSparse()
	addr := uint64(pageSize - 3) // straddles first page boundary
	m.Write(addr, 8, 0x1122334455667788)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("straddle read = %#x", got)
	}
	// Byte-wise verification across the boundary.
	for i := 0; i < 8; i++ {
		want := uint64(0x1122334455667788 >> (8 * i) & 0xff)
		if got := m.Read(addr+uint64(i), 1); got != want {
			t.Errorf("byte %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestSparseBytes(t *testing.T) {
	m := NewSparse()
	src := make([]byte, 3*pageSize)
	r := rand.New(rand.NewSource(7))
	r.Read(src)
	m.WriteBytes(100, src)
	dst := make([]byte, len(src))
	m.ReadBytes(100, dst)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %#x != %#x", i, dst[i], src[i])
		}
	}
	// Reads beyond written data are zero.
	tail := make([]byte, 16)
	m.ReadBytes(100+uint64(len(src)), tail)
	for _, b := range tail {
		if b != 0 {
			t.Fatal("unwritten bytes nonzero")
		}
	}
}

func TestSparseCloneEqualDiff(t *testing.T) {
	m := NewSparse()
	m.Write(0x1000, 8, 42)
	m.Write(0x200000, 4, 7)
	c := m.Clone()
	if !m.Equal(c) {
		t.Error("clone not equal")
	}
	c.Write(0x1000, 1, 43)
	if m.Equal(c) {
		t.Error("modified clone still equal")
	}
	diffs := m.Diff(c, 10)
	if len(diffs) != 1 || diffs[0] != 0x1000 {
		t.Errorf("diffs = %v", diffs)
	}
	// All-zero page vs absent page compare equal.
	d := m.Clone()
	d.Write(0x900000, 8, 0) // allocates a zero page
	if !m.Equal(d) || !d.Equal(m) {
		t.Error("zero page should equal absent page")
	}
}
