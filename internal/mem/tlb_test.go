package mem

import "testing"

func TestTLBDisabled(t *testing.T) {
	if NewTLB(TLBConfig{}) != nil {
		t.Error("zero config should disable the TLB")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, Ways: 2, PageBits: 12, MissLatency: 100})
	if p := tlb.Translate(0x1000); p != 100 {
		t.Errorf("cold miss penalty = %d", p)
	}
	if p := tlb.Translate(0x1fff); p != 0 {
		t.Errorf("same-page hit penalty = %d", p)
	}
	if p := tlb.Translate(0x2000); p != 100 {
		t.Errorf("new page penalty = %d", p)
	}
	if tlb.Stats.Hits != 1 || tlb.Stats.Misses != 2 {
		t.Errorf("stats = %+v", tlb.Stats)
	}
	if tlb.Stats.MissRate() < 0.6 {
		t.Errorf("miss rate = %f", tlb.Stats.MissRate())
	}
}

func TestTLBLRUWithinSet(t *testing.T) {
	// 4 entries, 2 ways -> 2 sets; pages with equal low bit share a set.
	tlb := NewTLB(TLBConfig{Entries: 4, Ways: 2, PageBits: 12, MissLatency: 50})
	page := func(n uint64) uint64 { return n << 12 }
	tlb.Translate(page(0)) // set 0
	tlb.Translate(page(2)) // set 0
	tlb.Translate(page(0)) // touch: page 2 becomes LRU
	tlb.Translate(page(4)) // set 0: evicts page 2
	if p := tlb.Translate(page(0)); p != 0 {
		t.Error("recently used page evicted")
	}
	if p := tlb.Translate(page(2)); p == 0 {
		t.Error("LRU page not evicted")
	}
}

func TestTLBInHierarchy(t *testing.T) {
	cfg := smallHier(t, 1).Config()
	cfg.DTLB = TLBConfig{Entries: 4, Ways: 2, PageBits: 12, MissLatency: 500}
	h, err := NewHierarchy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A data access pays the walk; a fetch does not translate.
	r := h.Access(0, AccRead, 0x100000, 0)
	if r.Ready < 500 {
		t.Errorf("read ready %d ignores TLB walk", r.Ready)
	}
	h.Access(0, AccFetch, 0x200000, 0)
	if h.DTLB(0).Stats.Misses != 1 {
		t.Errorf("fetch translated: misses = %d", h.DTLB(0).Stats.Misses)
	}
	// Same page again: only the cache latency remains.
	r2 := h.Access(0, AccRead, 0x100040, r.Ready+10)
	if r2.Ready-(r.Ready+10) >= 500 {
		t.Error("TLB hit still paid the walk")
	}
}

func TestStridePrefetcherTrains(t *testing.T) {
	p := newStridePrefetcher(StridePrefetcherConfig{Entries: 16, Degree: 2, MinConfidence: 2})
	pc := uint64(0x1000)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = p.observe(pc, uint64(0x8000+i*64))
	}
	if len(got) != 2 {
		t.Fatalf("prefetches = %v", got)
	}
	if got[0] != 0x8000+6*64 || got[1] != 0x8000+7*64 {
		t.Errorf("targets = %#x", got)
	}
	// A stride change resets confidence.
	if out := p.observe(pc, 0x20000); out != nil {
		t.Errorf("prefetched right after stride change: %#x", out)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := newStridePrefetcher(DefaultStrideConfig())
	pc := uint64(0x2000)
	addrs := []uint64{0x1000, 0x9040, 0x3980, 0x77100, 0x1240}
	for _, a := range addrs {
		if out := p.observe(pc, a); out != nil {
			t.Errorf("prefetched on random stream: %#x", out)
		}
	}
}

func TestStridePrefetcherNegativeStride(t *testing.T) {
	p := newStridePrefetcher(StridePrefetcherConfig{Entries: 8, Degree: 1, MinConfidence: 2})
	pc := uint64(0x3000)
	var got []uint64
	for i := 5; i >= 0; i-- {
		got = p.observe(pc, uint64(0x10000+i*128))
	}
	if len(got) != 1 || got[0] != 0x10000-128 {
		t.Errorf("negative-stride targets = %#x", got)
	}
	// Below-zero targets are dropped.
	p2 := newStridePrefetcher(StridePrefetcherConfig{Entries: 8, Degree: 1, MinConfidence: 1})
	p2.observe(0x10, 250)
	p2.observe(0x10, 150)
	if out := p2.observe(0x10, 50); len(out) != 0 {
		t.Errorf("underflowing prefetch emitted: %v", out)
	}
}

func TestStrideInHierarchy(t *testing.T) {
	cfg := smallHier(t, 1).Config()
	cfg.Prefetch = PrefetchStride
	cfg.Stride = StridePrefetcherConfig{Entries: 16, Degree: 2, MinConfidence: 2}
	h, err := NewHierarchy(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint64(0x10000)
	now := uint64(0)
	// Walk a 4KB stride; after training, later lines should be covered.
	for i := 0; i < 8; i++ {
		res := h.AccessLoad(0, uint64(0x100000+i*4096), pc, now)
		now = res.Ready + 1
	}
	if h.Stats.Prefetches == 0 {
		t.Error("stride prefetcher never fired")
	}
	// The next line in the pattern should already be present/in flight.
	if !h.L1D(0).Probe(uint64(0x100000 + 8*4096)) {
		t.Error("next stride target not prefetched")
	}
}
