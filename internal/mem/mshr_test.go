package mem

import "testing"

// TestMSHRExpiryBoundary pins the entry-lifetime convention the MLP
// accounting leans on: a fill completing at cycle t is gone at t — the
// data has arrived, so a cycle-t access is a fresh miss, not a merge.
func TestMSHRExpiryBoundary(t *testing.T) {
	m := NewMSHR(4)
	m.Add(0x40, 10)
	if got := m.Outstanding(9); got != 1 {
		t.Errorf("Outstanding(9) = %d, want 1", got)
	}
	if ready, inFlight := m.Lookup(0x40, 9); !inFlight || ready != 10 {
		t.Errorf("Lookup at 9 = (%d, %v), want (10, true)", ready, inFlight)
	}
	if m.Merges != 1 {
		t.Errorf("Merges = %d, want 1", m.Merges)
	}
	// ready == now: the entry has expired.
	if got := m.Outstanding(10); got != 0 {
		t.Errorf("Outstanding(10) = %d, want 0", got)
	}
	if _, inFlight := m.Lookup(0x40, 10); inFlight {
		t.Error("Lookup at ready cycle still in flight")
	}
	if m.Merges != 1 {
		t.Errorf("expired lookup counted as merge: Merges = %d", m.Merges)
	}
}

// TestMSHRAllocAtFull checks allocation under a full file: the access
// stalls to the soonest-finishing entry's completion, and the stall is
// counted exactly once per attempt.
func TestMSHRAllocAtFull(t *testing.T) {
	m := NewMSHR(2)
	if got := m.AllocAt(1); got != 1 {
		t.Errorf("empty AllocAt(1) = %d, want 1", got)
	}
	m.Add(0x40, 20)
	m.Add(0x80, 12)
	if got := m.AllocAt(5); got != 12 {
		t.Errorf("full AllocAt(5) = %d, want soonest completion 12", got)
	}
	if m.FullStalls != 1 {
		t.Errorf("FullStalls = %d, want 1", m.FullStalls)
	}
	// At the returned cycle the soonest entry has expired: a register
	// is free and allocation proceeds without a further stall.
	if got := m.AllocAt(12); got != 12 {
		t.Errorf("AllocAt(12) = %d, want 12", got)
	}
	if m.FullStalls != 1 {
		t.Errorf("free-slot alloc counted a stall: FullStalls = %d", m.FullStalls)
	}
}

// TestMSHRMergeCounting checks that every same-line lookup while the
// fill is outstanding merges (and counts), while other lines miss.
func TestMSHRMergeCounting(t *testing.T) {
	m := NewMSHR(4)
	m.Add(0x100, 50)
	for i := 0; i < 3; i++ {
		if _, inFlight := m.Lookup(0x100, uint64(5+i)); !inFlight {
			t.Fatalf("lookup %d not in flight", i)
		}
	}
	if m.Merges != 3 {
		t.Errorf("Merges = %d, want 3", m.Merges)
	}
	if _, inFlight := m.Lookup(0x140, 5); inFlight {
		t.Error("different line merged")
	}
	if m.Merges != 3 {
		t.Errorf("miss counted as merge: Merges = %d", m.Merges)
	}
}

// TestMSHRBlockingCapacity: capacity <= 0 models a blocking cache with
// a single implicit register.
func TestMSHRBlockingCapacity(t *testing.T) {
	m := NewMSHR(0)
	if m.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", m.Cap())
	}
	m.Add(0x40, 30)
	if got := m.AllocAt(2); got != 30 {
		t.Errorf("blocking AllocAt(2) = %d, want 30", got)
	}
	if m.FullStalls != 1 {
		t.Errorf("FullStalls = %d, want 1", m.FullStalls)
	}
}
