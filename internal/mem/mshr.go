package mem

// MSHR models a file of miss-status holding registers. Each entry tracks
// one in-flight line fill. A second miss to the same line while the fill
// is outstanding merges onto the existing entry instead of issuing a new
// request — this is the mechanism that converts a core's overlapped
// misses into memory-level parallelism without duplicate traffic.
type MSHR struct {
	cap     int
	entries []mshrEntry
	// minReady is the earliest completion among entries (0 when empty);
	// it lets expire — which runs on every lookup — return without
	// scanning while no fill has completed yet.
	minReady uint64
	// Stats
	Merges     uint64 // misses absorbed by an in-flight entry
	FullStalls uint64 // misses delayed because all registers were busy
}

type mshrEntry struct {
	line  uint64
	ready uint64
}

// NewMSHR returns an MSHR file with the given number of registers.
// capacity <= 0 models a blocking cache (a single implicit register).
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHR{cap: capacity}
}

// Cap returns the number of registers.
func (m *MSHR) Cap() int { return m.cap }

// expire drops entries whose fills have completed.
func (m *MSHR) expire(now uint64) {
	if len(m.entries) == 0 || m.minReady > now {
		return
	}
	live := m.entries[:0]
	var min uint64
	for _, e := range m.entries {
		if e.ready > now {
			live = append(live, e)
			if min == 0 || e.ready < min {
				min = e.ready
			}
		}
	}
	m.entries = live
	m.minReady = min
}

// Lookup reports whether a fill for line is already in flight at cycle
// now, and if so when it completes. A hit counts as a merge.
func (m *MSHR) Lookup(line uint64, now uint64) (ready uint64, inFlight bool) {
	m.expire(now)
	for _, e := range m.entries {
		if e.line == line {
			m.Merges++
			return e.ready, true
		}
	}
	return 0, false
}

// Outstanding returns the number of fills in flight at cycle now.
func (m *MSHR) Outstanding(now uint64) int {
	m.expire(now)
	return len(m.entries)
}

// NextExpiry returns the earliest cycle strictly after now at which an
// in-flight fill completes, or 0 when nothing is outstanding. The
// fast-forward layer uses it to bound clock jumps: an expiring fill can
// change observable state (outstanding-miss counts, MLP samples) even
// while the core itself is stalled.
func (m *MSHR) NextExpiry(now uint64) uint64 {
	m.expire(now)
	return m.minReady
}

// AllocAt returns the earliest cycle at or after now at which a new
// entry can be allocated. If the file is full, that is the completion
// time of the soonest-finishing entry (the requesting access stalls
// until then); the stall is counted.
func (m *MSHR) AllocAt(now uint64) uint64 {
	m.expire(now)
	if len(m.entries) < m.cap {
		return now
	}
	m.FullStalls++
	return m.minReady
}

// Add records a new in-flight fill for line completing at ready.
// The caller must have honoured AllocAt.
func (m *MSHR) Add(line uint64, ready uint64) {
	if len(m.entries) == 0 || ready < m.minReady {
		m.minReady = ready
	}
	m.entries = append(m.entries, mshrEntry{line: line, ready: ready})
}
