package mem

// Detach returns a frozen, self-contained snapshot of the hierarchy's
// statistics in the same *Hierarchy shape: configuration, per-level
// cache/TLB/DRAM counters, hierarchy-wide stats and cloned miss-latency
// histograms. The snapshot shares no mutable state with the live
// hierarchy, so a pooled simulator can hand it to long-lived consumers
// (reports, cached outcomes, published registries) and then reset and
// reuse the live structures. Only the statistics surface is carried:
// accessors like L1D(i).Stats, L2(), DRAM(), DTLB(i), the latency
// histograms and PublishObs work on a detached hierarchy; timing entry
// points (Access et al.) must not be called on one.
func (h *Hierarchy) Detach() *Hierarchy {
	d := &Hierarchy{
		cfg:    h.cfg,
		l2:     h.l2.detach(),
		l2mshr: h.l2mshr.detach(),
		dram:   &DRAM{cfg: h.dram.cfg, lineBits: h.dram.lineBits, Stats: h.dram.Stats},
		Stats:  h.Stats,
		latD:   h.latD.Clone(),
		latI:   h.latI.Clone(),
	}
	d.cores = make([]corePorts, len(h.cores))
	for i := range h.cores {
		p := &h.cores[i]
		d.cores[i] = corePorts{
			l1i:   p.l1i.detach(),
			l1d:   p.l1d.detach(),
			mshrI: p.mshrI.detach(),
			mshrD: p.mshrD.detach(),
		}
		if p.stride != nil {
			d.cores[i].stride = &stridePrefetcher{cfg: p.stride.cfg, Trained: p.stride.Trained, Issued: p.stride.Issued}
		}
		if p.dtlb != nil {
			d.cores[i].dtlb = &TLB{cfg: p.dtlb.cfg, mask: p.dtlb.mask, Stats: p.dtlb.Stats}
		}
	}
	return d
}

// detach returns a stats-only copy of the cache (no tag array).
func (c *Cache) detach() *Cache {
	return &Cache{cfg: c.cfg, setShift: c.setShift, setMask: c.setMask, Stats: c.Stats}
}

// detach returns a stats-only copy of the MSHR file (no entries).
func (m *MSHR) detach() *MSHR {
	return &MSHR{cap: m.cap, Merges: m.Merges, FullStalls: m.FullStalls}
}
