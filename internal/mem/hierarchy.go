package mem

import (
	"fmt"

	"rocksim/internal/faults"
	"rocksim/internal/obs"
	"rocksim/internal/stats"
)

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LvlL1 Level = iota
	LvlL2
	LvlMem
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlMem:
		return "Mem"
	}
	return "?"
}

// AccessKind distinguishes the flavours of hierarchy access.
type AccessKind uint8

// Access kinds.
const (
	AccRead     AccessKind = iota // data load
	AccWrite                      // data store (write-allocate)
	AccFetch                      // instruction fetch
	AccPrefetch                   // non-binding prefetch
)

// Result reports the outcome of a timed access.
type Result struct {
	// Ready is the cycle at which the data is available (for stores,
	// the cycle the store can complete into the cache).
	Ready uint64
	// Level is where the access was satisfied.
	Level Level
	// Merged reports that the access piggybacked on an in-flight
	// MSHR fill rather than issuing new traffic.
	Merged bool
}

// HierConfig configures the full memory hierarchy: per-core L1I/L1D,
// a shared banked L2, and DRAM.
type HierConfig struct {
	L1I     CacheConfig
	L1D     CacheConfig
	L2      CacheConfig
	L2Banks int // independent L2 ports; 1 access/cycle/bank throughput
	DRAM    DRAMConfig
	// Prefetch selects the per-core L1D hardware prefetcher.
	Prefetch PrefetchKind
	// Stride configures the stride prefetcher (when Prefetch is
	// PrefetchStride).
	Stride StridePrefetcherConfig
	// DTLB enables data-TLB timing (zero Entries = disabled). A TLB
	// miss delays the data access by the walk latency — and is thus a
	// deferral event for checkpoint cores, exactly as in ROCK.
	DTLB TLBConfig
}

// DefaultHierConfig returns ROCK-era (2009 CMP) hierarchy parameters.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:     CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 1, MSHRs: 4},
		L1D:     CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2:      CacheConfig{Name: "L2", SizeBytes: 4 << 20, Ways: 8, LineBytes: 64, HitLatency: 20, MSHRs: 32},
		L2Banks: 8,
		DRAM:    DRAMConfig{Latency: 300, Banks: 16, BankBusy: 24},
	}
}

type corePorts struct {
	l1i    *Cache
	l1d    *Cache
	mshrI  *MSHR
	mshrD  *MSHR
	stride *stridePrefetcher
	dtlb   *TLB
}

// HierStats aggregates hierarchy-wide counters.
type HierStats struct {
	CoherenceInvals uint64 // cross-core L1D invalidations
	Prefetches      uint64 // prefetch fills initiated

	// Transient-leakage accounting (see leak.go / docs/SECURITY.md).
	TaintedSpecAccesses uint64 // speculative accesses touching secret lines
	SquashedSpecFills   uint64 // speculative fills discarded by rollbacks (secrets installed)
	OracleChecks        uint64 // differential digest checks by the leakage oracle
}

// Hierarchy is the timing model of the memory system for one chip:
// one L1I+L1D pair per core, a shared banked L2, and DRAM. It is purely
// a timing oracle — data contents live in the functional Sparse memory.
type Hierarchy struct {
	cfg        HierConfig
	cores      []corePorts
	salts      []uint64
	listeners  []func(line uint64)
	l2         *Cache
	l2mshr     *MSHR
	l2BankFree []uint64
	dram       *DRAM
	Stats      HierStats

	// latD and latI record demand-miss latencies (data and fetch) for
	// percentile reporting. Always allocated: a per-miss Add is far off
	// the per-cycle path.
	latD *stats.Hist
	latI *stats.Hist

	// sink observes miss intervals; missNames interns the span names per
	// (core, port, level) so the enabled path allocates nothing per miss.
	sink      obs.Sink
	missNames [][2][3]string

	// flt, when set, may jitter access timing (see internal/faults).
	flt *faults.Injector

	// secretLines marks line addresses holding secret data for the
	// transient-leakage oracle (see leak.go). nil in ordinary runs.
	secretLines map[uint64]struct{}
}

// missLatLimit bounds the miss-latency histograms (cycles); longer
// misses clamp into the overflow bucket but keep exact mean/max.
const missLatLimit = 2048

// NewHierarchy builds a hierarchy serving ncores cores.
func NewHierarchy(cfg HierConfig, ncores int) (*Hierarchy, error) {
	for _, cc := range []CacheConfig{cfg.L1I, cfg.L1D, cfg.L2} {
		if err := cc.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.L1D.LineBytes != cfg.L2.LineBytes || cfg.L1I.LineBytes != cfg.L2.LineBytes {
		return nil, fmt.Errorf("mem: all caches must share one line size")
	}
	if cfg.L2Banks <= 0 {
		cfg.L2Banks = 1
	}
	if ncores <= 0 {
		return nil, fmt.Errorf("mem: ncores must be positive")
	}
	h := &Hierarchy{
		cfg:        cfg,
		l2:         NewCache(cfg.L2),
		l2mshr:     NewMSHR(cfg.L2.MSHRs),
		l2BankFree: make([]uint64, cfg.L2Banks),
		dram:       NewDRAM(cfg.DRAM, cfg.L2.LineBytes),
		latD:       stats.NewHist(missLatLimit),
		latI:       stats.NewHist(missLatLimit),
	}
	h.salts = make([]uint64, ncores)
	h.listeners = make([]func(line uint64), ncores)
	for i := 0; i < ncores; i++ {
		p := corePorts{
			l1i:   NewCache(cfg.L1I),
			l1d:   NewCache(cfg.L1D),
			mshrI: NewMSHR(cfg.L1I.MSHRs),
			mshrD: NewMSHR(cfg.L1D.MSHRs),
		}
		if cfg.Prefetch == PrefetchStride {
			p.stride = newStridePrefetcher(cfg.Stride)
		}
		p.dtlb = NewTLB(cfg.DTLB)
		h.cores = append(h.cores, p)
	}
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// SetSink installs an observability sink receiving one completed span per
// demand miss (category "memory"). It pre-interns every span name so the
// enabled path stays allocation-free.
func (h *Hierarchy) SetSink(s obs.Sink) {
	h.sink = s
	if s == nil {
		return
	}
	h.missNames = make([][2][3]string, len(h.cores))
	for i := range h.missNames {
		prefix := ""
		if len(h.cores) > 1 {
			prefix = fmt.Sprintf("core%d ", i)
		}
		for port, pn := range [2]string{"L1D", "L1I"} {
			h.missNames[i][port] = [3]string{
				prefix + pn + " miss", // unreachable: misses resolve in L2 or DRAM
				prefix + pn + " miss->L2",
				prefix + pn + " miss->DRAM",
			}
		}
	}
}

// SetFaults installs a fault injector whose mem-jitter events delay
// accesses (see internal/faults). Pass nil to disable.
func (h *Hierarchy) SetFaults(in *faults.Injector) { h.flt = in }

// LoadMissLatency returns the demand data-miss latency histogram.
func (h *Hierarchy) LoadMissLatency() *stats.Hist { return h.latD }

// FetchMissLatency returns the instruction-miss latency histogram.
func (h *Hierarchy) FetchMissLatency() *stats.Hist { return h.latI }

// PublishObs publishes every cache level, DRAM and hierarchy-wide
// counters plus the miss-latency histograms. Single-core hierarchies use
// the flat "mem/l1d" names; CMP hierarchies add a per-core component.
func (h *Hierarchy) PublishObs(r *obs.Registry) {
	for i := range h.cores {
		prefix := "mem/"
		if len(h.cores) > 1 {
			prefix = fmt.Sprintf("mem/core%d/", i)
		}
		h.cores[i].l1d.PublishObs(r, prefix+"l1d")
		h.cores[i].l1i.PublishObs(r, prefix+"l1i")
	}
	h.l2.PublishObs(r, "mem/l2")
	r.Counter("mem/dram/reads").Set(h.dram.Stats.Reads)
	r.Counter("mem/dram/writes").Set(h.dram.Stats.Writes)
	r.Counter("mem/dram/bank_conflicts").Set(h.dram.Stats.BankConflicts)
	r.Counter("mem/dram/busy_cycles").Set(h.dram.Stats.BusyCycles)
	r.Counter("mem/coherence_invals").Set(h.Stats.CoherenceInvals)
	r.Counter("mem/prefetches").Set(h.Stats.Prefetches)
	r.Counter("leak/tainted_accesses").Set(h.Stats.TaintedSpecAccesses)
	r.Counter("leak/squashed_spec_fills").Set(h.Stats.SquashedSpecFills)
	r.Counter("leak/oracle_checks").Set(h.Stats.OracleChecks)
	r.PutHist("mem/load_miss_latency", h.latD)
	r.PutHist("mem/fetch_miss_latency", h.latI)
}

// NumCores returns the number of cores the hierarchy serves.
func (h *Hierarchy) NumCores() int { return len(h.cores) }

// L1D returns core's L1 data cache (for stats and coherence tests).
func (h *Hierarchy) L1D(core int) *Cache { return h.cores[core].l1d }

// L1I returns core's L1 instruction cache.
func (h *Hierarchy) L1I(core int) *Cache { return h.cores[core].l1i }

// L2 returns the shared second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// DTLB returns core's data TLB, or nil when translation modeling is
// disabled.
func (h *Hierarchy) DTLB(core int) *TLB { return h.cores[core].dtlb }

// DRAM returns the main-memory model.
func (h *Hierarchy) DRAM() *DRAM { return h.dram }

// SetAddressSalt gives core a physical-address salt XORed into every
// access it makes. The CMP harness uses this to give multiprogrammed
// copies of one workload disjoint physical footprints in the shared L2
// and DRAM, as distinct processes would have. The salt must be a
// multiple of the line size.
func (h *Hierarchy) SetAddressSalt(core int, salt uint64) {
	h.salts[core] = salt &^ uint64(h.cfg.L2.LineBytes-1)
}

// OutstandingDataMisses returns the number of in-flight L1D fills for
// core at cycle now. Used for MLP accounting.
func (h *Hierarchy) OutstandingDataMisses(core int, now uint64) int {
	return h.cores[core].mshrD.Outstanding(now)
}

// NextDataFill returns the earliest cycle strictly after now at which
// one of core's in-flight L1D fills completes (0 = none outstanding).
// The fast-forward layer bounds clock jumps with it so that MLP samples
// and outstanding-miss counts observe every fill expiry at the exact
// cycle naive stepping would.
func (h *Hierarchy) NextDataFill(core int, now uint64) uint64 {
	return h.cores[core].mshrD.NextExpiry(now)
}

// DataMSHRFull reports whether core's L1D MSHR file is fully occupied at
// cycle now (a new miss would have to stall).
func (h *Hierarchy) DataMSHRFull(core int, now uint64) bool {
	p := &h.cores[core]
	return p.mshrD.Outstanding(now) >= p.mshrD.Cap()
}

// l2Port serializes access through the L2's banked ports.
func (h *Hierarchy) l2Port(line uint64, now uint64) uint64 {
	b := int((line / uint64(h.cfg.L2.LineBytes)) % uint64(len(h.l2BankFree)))
	start := now
	if h.l2BankFree[b] > start {
		start = h.l2BankFree[b]
	}
	h.l2BankFree[b] = start + 1
	return start
}

// accessL2 resolves a line request that missed in an L1, beginning at
// cycle now. It returns when the line is available and at which level it
// was found. The line is filled into L2 on a DRAM fetch.
func (h *Hierarchy) accessL2(line uint64, now uint64, markDirty bool) (uint64, Level) {
	start := h.l2Port(line, now)
	if ready, hit := h.l2.Lookup(line, start, markDirty); hit {
		return ready, LvlL2
	}
	// L2 miss: merge into or allocate an L2 MSHR, then go to DRAM.
	if ready, inflight := h.l2mshr.Lookup(line, start); inflight {
		return ready, LvlMem
	}
	t := h.l2mshr.AllocAt(start + uint64(h.cfg.L2.HitLatency))
	ready := h.dram.Read(line, t)
	h.l2mshr.Add(line, ready)
	ev := h.l2.Fill(line, ready, markDirty)
	if ev.Valid && ev.Dirty {
		h.dram.Write(ev.Addr, ready)
	}
	return ready, LvlMem
}

// Access performs a timed access by core at cycle now and returns when
// it completes and where it hit. addr may be any byte address; the
// access is attributed to the line containing it (the workloads keep
// accesses naturally aligned, so no access straddles lines).
func (h *Hierarchy) Access(core int, kind AccessKind, addr uint64, now uint64) Result {
	if h.flt != nil {
		// Injected jitter delays when the access starts; everything
		// downstream (TLB, lookup, MSHR merge) sees the later cycle, so
		// the perturbation is pure timing.
		now += h.flt.MemDelay(now, addr)
	}
	p := &h.cores[core]
	// Data accesses translate first (virtual domain, before salting).
	if p.dtlb != nil && kind != AccFetch {
		now += p.dtlb.Translate(addr)
	}
	addr ^= h.salts[core]
	l1 := p.l1d
	mshr := p.mshrD
	if kind == AccFetch {
		l1 = p.l1i
		mshr = p.mshrI
	}
	line := l1.LineAddr(addr)
	markDirty := kind == AccWrite

	if ready, hit := l1.Lookup(line, now, markDirty); hit {
		return Result{Ready: ready, Level: LvlL1}
	}
	// L1 miss. Merge with an in-flight fill if possible.
	if ready, inflight := mshr.Lookup(line, now); inflight {
		if markDirty {
			// The line will arrive; mark it dirty on arrival.
			l1.Fill(line, ready, true)
		}
		return Result{Ready: ready, Level: LvlL2, Merged: true}
	}
	if kind == AccPrefetch {
		// Non-binding: start the fill only if an MSHR is free now.
		if mshr.Outstanding(now) >= mshr.Cap() {
			return Result{Ready: now, Level: LvlL1}
		}
	}
	t := mshr.AllocAt(now + uint64(l1.Config().HitLatency))
	ready, lvl := h.accessL2(line, t, false)
	mshr.Add(line, ready)
	ev := l1.Fill(line, ready, markDirty)
	h.handleL1Victim(ev, ready)
	if kind == AccPrefetch {
		h.Stats.Prefetches++
	} else {
		// Demand miss: record its latency, and its interval if observed.
		if kind == AccFetch {
			h.latI.Add(int(ready - now))
		} else {
			h.latD.Add(int(ready - now))
		}
		if h.sink != nil {
			port := 0
			if kind == AccFetch {
				port = 1
			}
			h.sink.Span(now, ready, "memory", h.missNames[core][port][lvl])
		}
	}
	return Result{Ready: ready, Level: lvl}
}

// AccessLoad is Access(AccRead) plus hardware-prefetcher training: the
// load's PC lets the stride prefetcher associate the access stream with
// its instruction. Core models use this for demand loads.
func (h *Hierarchy) AccessLoad(core int, addr, pc uint64, now uint64) Result {
	res := h.Access(core, AccRead, addr, now)
	switch h.cfg.Prefetch {
	case PrefetchNextLine:
		if res.Level != LvlL1 {
			h.prefetchLine(core, (addr^h.salts[core])+uint64(h.cfg.L1D.LineBytes), res.Ready)
		}
	case PrefetchStride:
		p := &h.cores[core]
		for _, a := range p.stride.observe(pc, addr) {
			h.prefetchLine(core, a^h.salts[core], now)
		}
	}
	return res
}

func (h *Hierarchy) handleL1Victim(ev Eviction, now uint64) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	// Write-back into L2 if present there, else to DRAM (non-inclusive).
	if h.l2.Probe(ev.Addr) {
		h.l2.Lookup(ev.Addr, now, true)
	} else {
		h.dram.Write(ev.Addr, now)
	}
}

// prefetchLine starts a non-binding fill of the line containing addr
// (already in the salted/physical domain), if capacity allows.
func (h *Hierarchy) prefetchLine(core int, addr uint64, now uint64) {
	p := &h.cores[core]
	line := p.l1d.LineAddr(addr)
	if p.l1d.Probe(line) {
		return
	}
	if p.mshrD.Outstanding(now) >= p.mshrD.Cap() {
		return
	}
	if _, inflight := p.mshrD.Lookup(line, now); inflight {
		return
	}
	ready, _ := h.accessL2(line, now, false)
	p.mshrD.Add(line, ready)
	ev := p.l1d.Fill(line, ready, false)
	h.handleL1Victim(ev, ready)
	h.Stats.Prefetches++
}

// StoreVisible makes a committed store by core coherence-visible:
// the line is invalidated from every other core's L1D. The functional
// memory already holds the data; this models only the timing effect.
func (h *Hierarchy) StoreVisible(core int, addr uint64) {
	line := h.l2.LineAddr(addr ^ h.salts[core])
	for i := range h.cores {
		if i == core {
			continue
		}
		if present, _ := h.cores[i].l1d.Invalidate(line); present {
			h.Stats.CoherenceInvals++
		}
		// Conflict listeners (transactional cores) observe every remote
		// store, cached or not: a transaction's read set outlives the
		// line's residence in the L1.
		if fn := h.listeners[i]; fn != nil {
			fn(line)
		}
	}
}

// SetInvalListener registers fn to observe the line address of every
// remote committed store, for transactional conflict detection.
func (h *Hierarchy) SetInvalListener(core int, fn func(line uint64)) {
	h.listeners[core] = fn
}
