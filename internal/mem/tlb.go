package mem

// TLBConfig describes a per-core data TLB. Zero Entries disables
// translation modeling entirely (the default: all evaluation numbers
// are reported without TLB effects unless an experiment turns them on).
type TLBConfig struct {
	Entries     int // total entries
	Ways        int // associativity
	PageBits    int // log2 page size (e.g. 13 = 8 KiB pages)
	MissLatency int // table-walk latency in cycles
}

// DefaultTLBConfig returns a 64-entry, 4-way, 8KiB-page DTLB with a
// 150-cycle walk — 2009-era numbers.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 64, Ways: 4, PageBits: 13, MissLatency: 150}
}

// TLBStats counts translation events.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses/(hits+misses).
func (s TLBStats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type tlbEntry struct {
	tag   uint64
	valid bool
	lru   uint64
}

// TLB is a set-associative translation lookaside buffer. Translation is
// identity (the simulator has no paging), so the TLB is purely a timing
// structure: a miss charges the table-walk latency. For checkpoint
// architectures this matters because a TLB miss — like a cache miss —
// is a deferral event rather than a stall.
type TLB struct {
	cfg   TLBConfig
	sets  [][]tlbEntry
	mask  uint64
	stamp uint64
	Stats TLBStats
}

// NewTLB builds a TLB, or returns nil for a disabled configuration.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries <= 0 {
		return nil
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	if cfg.PageBits <= 0 {
		cfg.PageBits = 13
	}
	if cfg.MissLatency <= 0 {
		cfg.MissLatency = 100
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets < 1 {
		nsets = 1
	}
	// Round down to a power of two.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	t := &TLB{cfg: cfg, sets: make([][]tlbEntry, nsets), mask: uint64(nsets - 1)}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, cfg.Ways)
	}
	return t
}

// Config returns the TLB configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Translate charges translation latency for the page containing addr:
// zero on a hit, the walk latency on a miss (which also fills the
// entry).
func (t *TLB) Translate(addr uint64) (penalty uint64) {
	page := addr >> t.cfg.PageBits
	set := t.sets[page&t.mask]
	tag := page >> popcount(t.mask)
	t.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = t.stamp
			t.Stats.Hits++
			return 0
		}
	}
	t.Stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{tag: tag, valid: true, lru: t.stamp}
	return uint64(t.cfg.MissLatency)
}

func popcount(v uint64) uint {
	var n uint
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
