package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCacheCfg() CacheConfig {
	return CacheConfig{Name: "T", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitLatency: 2, MSHRs: 4}
}

func TestCacheConfigValidate(t *testing.T) {
	good := testCacheCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CacheConfig{
		{Name: "a", SizeBytes: 0, Ways: 1, LineBytes: 64, HitLatency: 1},
		{Name: "b", SizeBytes: 4096, Ways: 1, LineBytes: 60, HitLatency: 1},       // line not pow2
		{Name: "c", SizeBytes: 4096, Ways: 3, LineBytes: 64, HitLatency: 1},       // not divisible
		{Name: "d", SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64, HitLatency: 1}, // sets not pow2
		{Name: "e", SizeBytes: 4096, Ways: 4, LineBytes: 64, HitLatency: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %s accepted", c.Name)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(testCacheCfg())
	if _, hit := c.Lookup(0x1000, 0, false); hit {
		t.Error("hit in empty cache")
	}
	c.Fill(0x1000, 10, false)
	ready, hit := c.Lookup(0x1000, 20, false)
	if !hit {
		t.Fatal("miss after fill")
	}
	if ready != 22 {
		t.Errorf("ready = %d, want 22 (now+hitlat)", ready)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestCacheFillReadyGates(t *testing.T) {
	c := NewCache(testCacheCfg())
	c.Fill(0x1000, 100, false) // fill lands at cycle 100
	ready, hit := c.Lookup(0x1000, 10, false)
	if !hit {
		t.Fatal("line should be present (in flight)")
	}
	if ready != 100 {
		t.Errorf("ready = %d, want 100 (fill arrival)", ready)
	}
	ready, _ = c.Lookup(0x1000, 200, false)
	if ready != 202 {
		t.Errorf("ready = %d, want 202", ready)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cfg := testCacheCfg() // 16 sets, 4 ways
	c := NewCache(cfg)
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	stride := uint64(nsets * cfg.LineBytes) // same-set stride
	// Fill all four ways of set 0.
	for w := 0; w < 4; w++ {
		if ev := c.Fill(uint64(w)*stride, 0, false); ev.Valid {
			t.Fatalf("eviction while filling way %d", w)
		}
	}
	// Touch way 0 so way 1 becomes LRU.
	c.Lookup(0, 1, false)
	ev := c.Fill(4*stride, 2, false)
	if !ev.Valid || ev.Addr != 1*stride {
		t.Errorf("evicted %+v, want line %#x", ev, stride)
	}
	// Way 0 must still be present.
	if _, hit := c.Lookup(0, 3, false); !hit {
		t.Error("recently used line evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	cfg := testCacheCfg()
	c := NewCache(cfg)
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	stride := uint64(nsets * cfg.LineBytes)
	c.Fill(0, 0, false)
	c.Lookup(0, 1, true) // dirty it
	for w := 1; w < 5; w++ {
		c.Fill(uint64(w)*stride, 2, false)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(testCacheCfg())
	c.Fill(0x2000, 0, true)
	present, dirty := c.Invalidate(0x2000)
	if !present || !dirty {
		t.Errorf("invalidate = %v, %v", present, dirty)
	}
	if _, hit := c.Lookup(0x2000, 1, false); hit {
		t.Error("line present after invalidate")
	}
	if present, _ := c.Invalidate(0x9999000); present {
		t.Error("invalidate of absent line reported present")
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := NewCache(testCacheCfg())
	c.Fill(0x3000, 0, false)
	h, m := c.Stats.Hits, c.Stats.Misses
	if !c.Probe(0x3000) || c.Probe(0x4000) {
		t.Error("probe wrong")
	}
	if c.Stats.Hits != h || c.Stats.Misses != m {
		t.Error("probe touched stats")
	}
}

// TestCacheCapacityProperty: after filling arbitrary lines, the number
// of distinct resident lines never exceeds capacity, and the most
// recently filled line is always resident.
func TestCacheCapacityProperty(t *testing.T) {
	cfg := testCacheCfg()
	capacity := cfg.SizeBytes / cfg.LineBytes
	f := func(seeds []uint16) bool {
		c := NewCache(cfg)
		resident := map[uint64]bool{}
		for i, s := range seeds {
			line := uint64(s) * uint64(cfg.LineBytes)
			ev := c.Fill(line, uint64(i), false)
			resident[line] = true
			if ev.Valid {
				delete(resident, ev.Addr)
			}
			if !c.Probe(line) {
				return false
			}
		}
		if len(resident) > capacity {
			return false
		}
		// Everything the cache claims resident must match our model.
		for line := range resident {
			if !c.Probe(line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheRefillExisting(t *testing.T) {
	c := NewCache(testCacheCfg())
	c.Fill(0x1000, 50, false)
	// A merged fill arriving earlier shortens availability.
	ev := c.Fill(0x1000, 30, true)
	if ev.Valid {
		t.Error("refill evicted something")
	}
	ready, hit := c.Lookup(0x1000, 0, false)
	if !hit || ready != 30 {
		t.Errorf("ready = %d, want 30", ready)
	}
	// Dirty bit from the refill must stick.
	c.Fill(0x1000, 60, false)
	present, dirty := c.Invalidate(0x1000)
	if !present || !dirty {
		t.Error("dirty bit lost on refill")
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := NewMSHR(2)
	if at := m.AllocAt(10); at != 10 {
		t.Errorf("alloc on empty = %d", at)
	}
	m.Add(0x40, 100)
	if ready, ok := m.Lookup(0x40, 20); !ok || ready != 100 {
		t.Errorf("lookup = %d, %v", ready, ok)
	}
	if m.Merges != 1 {
		t.Errorf("merges = %d", m.Merges)
	}
	m.Add(0x80, 200)
	// Full: next alloc waits for the earliest completion (cycle 100).
	if at := m.AllocAt(30); at != 100 {
		t.Errorf("alloc when full = %d, want 100", at)
	}
	if m.FullStalls != 1 {
		t.Errorf("full stalls = %d", m.FullStalls)
	}
	// After expiry the register frees.
	if at := m.AllocAt(150); at != 150 {
		t.Errorf("alloc after expiry = %d", at)
	}
	if m.Outstanding(150) != 1 {
		t.Errorf("outstanding = %d", m.Outstanding(150))
	}
}

func TestMSHRExpiry(t *testing.T) {
	m := NewMSHR(4)
	m.Add(0x40, 50)
	if _, ok := m.Lookup(0x40, 50); ok {
		t.Error("entry should expire at its ready cycle")
	}
	if m.Outstanding(50) != 0 {
		t.Error("outstanding after expiry")
	}
}

func TestDRAMBankConflicts(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, Banks: 2, BankBusy: 20}, 64)
	// Two accesses to the same bank (lines 0 and 2 with 2 banks).
	r1 := d.Read(0, 0)
	r2 := d.Read(128, 0) // same bank as 0
	if r1 != 100 {
		t.Errorf("r1 = %d", r1)
	}
	if r2 != 120 { // starts at 20 when bank frees
		t.Errorf("r2 = %d, want 120", r2)
	}
	// Different bank: no conflict.
	r3 := d.Read(64, 0)
	if r3 != 100 {
		t.Errorf("r3 = %d, want 100", r3)
	}
	if d.Stats.BankConflicts != 1 {
		t.Errorf("conflicts = %d", d.Stats.BankConflicts)
	}
	if d.Stats.Reads != 3 {
		t.Errorf("reads = %d", d.Stats.Reads)
	}
}

func TestDRAMWriteOccupiesBank(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, Banks: 1, BankBusy: 30}, 64)
	d.Write(0, 0)
	if r := d.Read(64, 0); r != 130 {
		t.Errorf("read after write = %d, want 130", r)
	}
}

// TestDRAMMonotonicProperty: per bank, service start times never go
// backwards regardless of request order.
func TestDRAMMonotonicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	d := NewDRAM(DRAMConfig{Latency: 50, Banks: 4, BankBusy: 10}, 64)
	lastReady := map[int]uint64{}
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		now += uint64(r.Intn(5))
		addr := uint64(r.Intn(64)) * 64
		bank := int((addr / 64) % 4)
		ready := d.Read(addr, now)
		if ready < now+50 {
			t.Fatalf("ready %d < now+latency", ready)
		}
		if ready < lastReady[bank] {
			t.Fatalf("bank %d ready went backwards: %d < %d", bank, ready, lastReady[bank])
		}
		lastReady[bank] = ready
	}
}
