package mem

// Reset support: every timing component can be returned to its freshly
// constructed state without reallocating, so a pooled simulator reuses
// one fully built hierarchy across runs (see sim.Instance). The reset
// contract is exact — a reset component must be indistinguishable from
// a new one built with the same configuration; the pooled-vs-fresh
// differential fuzz in internal/sim holds every component to it.

// Reset clears the cache's tag array, LRU clock and statistics in
// place.
func (c *Cache) Reset() {
	for i := range c.sets {
		set := c.sets[i]
		for j := range set {
			set[j] = cacheLine{}
		}
	}
	c.stamp = 0
	c.Stats = CacheStats{}
}

// Reset drops every in-flight fill and clears the statistics, keeping
// the entry slice's capacity.
func (m *MSHR) Reset() {
	m.entries = m.entries[:0]
	m.minReady = 0
	m.Merges = 0
	m.FullStalls = 0
}

// Reset clears the TLB's entries and statistics in place. Safe on a nil
// TLB (a disabled DTLB).
func (t *TLB) Reset() {
	if t == nil {
		return
	}
	for i := range t.sets {
		set := t.sets[i]
		for j := range set {
			set[j] = tlbEntry{}
		}
	}
	t.stamp = 0
	t.Stats = TLBStats{}
}

// Reset clears the DRAM bank timers and statistics.
func (d *DRAM) Reset() {
	for i := range d.bankFree {
		d.bankFree[i] = 0
	}
	d.Stats = DRAMStats{}
}

// Reset clears the prefetcher's training table and counters. Safe on a
// nil prefetcher (Prefetch != PrefetchStride).
func (p *stridePrefetcher) Reset() {
	if p == nil {
		return
	}
	for i := range p.entries {
		p.entries[i] = strideEntry{}
	}
	p.Trained = 0
	p.Issued = 0
}

// Reset zeroes every mapped page in place, returning the memory to the
// all-zero image of a fresh Sparse while keeping the page map and the
// page-pointer cache warm. Sparse treats an all-zero page exactly like
// an absent one (see Equal/coveredBy), so a reset memory is functionally
// identical to NewSparse() — the next program load writes into already
// allocated pages instead of faulting them in again.
func (m *Sparse) Reset() {
	for _, p := range m.pages {
		*p = [PageSize]byte{}
	}
}

// Reset returns the hierarchy to its freshly constructed state: every
// cache, MSHR, TLB, prefetcher and DRAM model cleared in place, the
// miss-latency histograms emptied, coherence listeners and salts
// dropped, and the observability sink and fault injector detached
// (callers reinstall per-run hooks after Reset, mirroring construction
// where none are installed yet).
func (h *Hierarchy) Reset() {
	for i := range h.cores {
		p := &h.cores[i]
		p.l1i.Reset()
		p.l1d.Reset()
		p.mshrI.Reset()
		p.mshrD.Reset()
		p.stride.Reset()
		p.dtlb.Reset()
	}
	for i := range h.salts {
		h.salts[i] = 0
	}
	for i := range h.listeners {
		h.listeners[i] = nil
	}
	h.l2.Reset()
	h.l2mshr.Reset()
	for i := range h.l2BankFree {
		h.l2BankFree[i] = 0
	}
	h.dram.Reset()
	h.Stats = HierStats{}
	h.latD.Reset()
	h.latI.Reset()
	h.sink = nil
	h.missNames = nil
	h.flt = nil
	h.secretLines = nil
}
