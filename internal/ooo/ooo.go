// Package ooo implements the out-of-order baseline core: fetch along the
// predicted path, register renaming over a reorder buffer, a bounded
// issue window, a load/store queue with store-to-load forwarding and
// (optionally) speculative memory disambiguation with violation squash,
// and in-order commit. This is the "larger, higher-powered out-of-order
// core" the SST paper compares against; it embodies exactly the
// structures SST claims to eliminate (rename logic, reorder buffer,
// disambiguation buffer, large issue window).
package ooo

import (
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
)

// Config parameterizes the out-of-order core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	IQSize      int // issue-window: oldest unissued instructions considered
	LSQSize     int // maximum memory operations in flight in the ROB
	// SpecLoads lets loads issue past older stores with unknown
	// addresses; a later conflicting store squashes and refetches.
	SpecLoads bool
	// TakenPenalty is the fetch bubble for predicted-taken control flow.
	TakenPenalty uint64
	// MispredictPenalty is the redirect bubble after a branch resolves
	// against its prediction (models pipeline refill depth).
	MispredictPenalty uint64
}

// SmallConfig returns a modest 2-wide out-of-order core.
func SmallConfig() Config {
	return Config{
		FetchWidth: 2, IssueWidth: 2, CommitWidth: 2,
		ROBSize: 32, IQSize: 16, LSQSize: 16,
		SpecLoads:    true,
		TakenPenalty: 1, MispredictPenalty: 10,
	}
}

// LargeConfig returns an aggressive 4-wide out-of-order core — the
// paper's larger, higher-powered comparison point.
func LargeConfig() Config {
	return Config{
		FetchWidth: 4, IssueWidth: 4, CommitWidth: 4,
		ROBSize: 128, IQSize: 64, LSQSize: 64,
		SpecLoads:    true,
		TakenPenalty: 1, MispredictPenalty: 14,
	}
}

// Stats extends the common statistics with out-of-order events.
type Stats struct {
	cpu.BaseStats
	Squashes           uint64 // control mispredict squashes
	MemOrderViolations uint64 // disambiguation squashes
	WrongPathInsts     uint64 // fetched then squashed
	ROBFullCycles      uint64
	FetchStallCycles   uint64
	EmptyIssueCycles   uint64 // cycles with nothing ready to issue
}

// PublishObs publishes the common core counter set plus the out-of-order
// event breakdown under "ooo/".
func (s *Stats) PublishObs(r *obs.Registry) {
	s.BaseStats.PublishObs(r)
	r.Counter("ooo/squashes").Set(s.Squashes)
	r.Counter("ooo/mem_order_violations").Set(s.MemOrderViolations)
	r.Counter("ooo/wrong_path_insts").Set(s.WrongPathInsts)
	r.Counter("ooo/stall/rob_full").Set(s.ROBFullCycles)
	r.Counter("ooo/stall/fetch").Set(s.FetchStallCycles)
	r.Counter("ooo/stall/empty_issue").Set(s.EmptyIssueCycles)
}

type source struct {
	reg    uint8
	tag    uint64 // producing seq, valid when hasTag
	hasTag bool
}

type robEntry struct {
	seq uint64
	in  isa.Inst
	pc  uint64

	src  [3]source
	nsrc int

	issued   bool
	executed bool   // result value computed
	readyAt  uint64 // cycle the result is usable / entry committable
	value    int64  // destination value

	// Memory state.
	addrValid bool
	addr      uint64
	msize     int
	storeVal  int64

	// Control prediction made at fetch.
	predTaken  bool
	predTarget uint64
	hasPredTgt bool
}

// Core is the out-of-order pipeline model.
type Core struct {
	cfg Config
	m   *cpu.Machine
	fe  *cpu.Frontend

	regs   [isa.NumRegs]int64 // committed architectural state
	regTag [isa.NumRegs]uint64
	tagOK  [isa.NumRegs]bool

	rob     []robEntry // ring buffer
	head    int
	count   int
	headSeq uint64 // seq of rob[head]
	nextSeq uint64
	memOps  int // loads+stores currently in the ROB

	// Fetch blocking conditions.
	fetchBlockedSeq uint64 // waiting for this jalr to resolve
	fetchBlocked    bool
	fetchGarbage    bool // decode failed on (presumed) wrong path
	haltFetched     bool

	cycle uint64
	done  bool
	err   error

	stats Stats
	sink  obs.Sink
	occ   [2]int

	// Fast-forward state, valid while cycle < ffNext: the last Step was a
	// pure stall (nothing committed, issued or fetched) whose per-cycle
	// stall charges were ffRobFull/ffFetchStall/ffEmptyIssue with ffMLP
	// outstanding data misses. Self-expiring once the clock reaches
	// ffNext.
	ffNext       uint64
	ffRobFull    uint64
	ffFetchStall uint64
	ffEmptyIssue uint64
	ffMLP        int
}

var _ cpu.FastForwarder = (*Core)(nil)

// oooOccNames are the occupancy tracks reported through the sink.
var oooOccNames = []string{"rob", "memops"}

// SetSink installs an observability sink (nil disables).
func (c *Core) SetSink(s obs.Sink) {
	c.sink = s
	if s != nil {
		s.Attach("ooo", oooOccNames)
	}
}

// New creates an out-of-order core executing from entry.
func New(m *cpu.Machine, cfg Config, entry uint64) *Core {
	if cfg.FetchWidth < 1 {
		cfg.FetchWidth = 1
	}
	if cfg.IssueWidth < 1 {
		cfg.IssueWidth = 1
	}
	if cfg.CommitWidth < 1 {
		cfg.CommitWidth = 1
	}
	if cfg.ROBSize < 2 {
		cfg.ROBSize = 2
	}
	if cfg.IQSize < 1 {
		cfg.IQSize = 1
	}
	if cfg.LSQSize < 1 {
		cfg.LSQSize = 1
	}
	return &Core{
		cfg: cfg,
		m:   m,
		fe:  cpu.NewFrontend(m, entry),
		rob: make([]robEntry, cfg.ROBSize),
	}
}

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the program has halted.
func (c *Core) Done() bool { return c.done }

// Retired returns committed instructions.
func (c *Core) Retired() uint64 { return c.stats.Retired }

// Base returns the common statistics block.
func (c *Core) Base() *cpu.BaseStats { return &c.stats.BaseStats }

// Stats returns the full out-of-order statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// Err returns a fatal simulation error, if any.
func (c *Core) Err() error { return c.err }

// Regs returns the committed register file (for test validation).
func (c *Core) Regs() [isa.NumRegs]int64 { return c.regs }

func (c *Core) at(i int) *robEntry { return &c.rob[(c.head+i)%len(c.rob)] }

// entryBySeq returns the ROB entry with the given seq, or nil if it has
// already committed or been squashed.
func (c *Core) entryBySeq(seq uint64) *robEntry {
	if seq < c.headSeq {
		return nil
	}
	i := int(seq - c.headSeq)
	if i >= c.count {
		return nil
	}
	return c.at(i)
}

// Step advances the core one cycle: commit, issue/execute, fetch.
func (c *Core) Step() {
	now := c.cycle
	retiredBefore := c.stats.Retired
	seqBefore := c.nextSeq
	robFull0, fetchStall0, empty0 := c.stats.ROBFullCycles, c.stats.FetchStallCycles, c.stats.EmptyIssueCycles
	c.commit(now)
	issued := 0
	if !c.done && c.err == nil {
		issued = c.issue(now)
		c.fetch(now)
	}
	outstanding := c.m.Hier.OutstandingDataMisses(c.m.CoreID, now)
	c.stats.SampleMLP(outstanding)
	if c.stats.Retired > retiredBefore {
		c.stats.CPI[cpu.BktRetire]++
	} else {
		c.stats.CPI[c.stallBucket(outstanding)]++
	}
	if c.sink != nil {
		c.occ[0], c.occ[1] = c.count, c.memOps
		c.sink.CycleState(now, "normal", int(c.stats.Retired-retiredBefore), 0, c.occ[:])
	}
	c.stats.Cycles++
	c.cycle++

	if c.stats.Retired == retiredBefore && issued == 0 && c.nextSeq == seqBefore && !c.done && c.err == nil {
		// Pure stall: commit, issue and fetch all made zero progress, so
		// the only per-cycle effects were the stall charges below — and
		// they repeat unchanged until the earliest pending timer fires.
		c.ffRobFull = c.stats.ROBFullCycles - robFull0
		c.ffFetchStall = c.stats.FetchStallCycles - fetchStall0
		c.ffEmptyIssue = c.stats.EmptyIssueCycles - empty0
		c.ffMLP = outstanding
		c.ffNext = c.nextTimer(now)
	} else {
		c.ffNext = 0
	}
}

// stallBucket attributes a no-retire cycle by the head-of-ROB blocker:
// an empty ROB is a frontend problem, outstanding data misses mean the
// memory system is the wait, and anything else is a short-latency
// dependency chain (issue-window scoreboarding). The inputs (ROB count,
// outstanding misses) are exactly the quantities the fast-forward purity
// proof holds constant, so SkipTo can replay the same attribution.
func (c *Core) stallBucket(outstanding int) cpu.Bucket {
	switch {
	case c.count == 0:
		return cpu.BktFetch
	case outstanding > 0:
		return cpu.BktMSHR
	default:
		return cpu.BktScoreboard
	}
}

// nextTimer returns the earliest cycle strictly after now at which any
// pending completion lands: an executed ROB entry's result (which can
// unblock commit or a dependent issue), a fetch-line delivery, or an
// in-flight L1D fill expiring (which changes MLP accounting). 0 = no
// timer pending; a wedged core then falls back to naive stepping and the
// livelock watchdog.
func (c *Core) nextTimer(now uint64) uint64 {
	var next uint64
	bound := func(t uint64) {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	for i := 0; i < c.count; i++ {
		if e := c.at(i); e.executed {
			bound(e.readyAt)
		}
	}
	bound(c.fe.NextDelivery(now))
	bound(c.m.Hier.NextDataFill(c.m.CoreID, now))
	return next
}

// NextEvent implements cpu.FastForwarder (see inorder.Core.NextEvent).
func (c *Core) NextEvent() uint64 {
	if c.ffNext > c.cycle {
		return c.ffNext
	}
	return 0
}

// SkipTo implements cpu.FastForwarder: it credits cycles
// [Cycle(), target) exactly as repeating the recorded pure-stall Step
// would, then advances the clock to target.
func (c *Core) SkipTo(target uint64) {
	n := target - c.cycle
	c.stats.ROBFullCycles += c.ffRobFull * n
	c.stats.FetchStallCycles += c.ffFetchStall * n
	c.stats.EmptyIssueCycles += c.ffEmptyIssue * n
	c.stats.CPI[c.stallBucket(c.ffMLP)] += n
	if c.ffMLP > 0 {
		c.stats.MLPSamples += n
		c.stats.MLPSum += uint64(c.ffMLP) * n
	}
	if c.sink != nil {
		c.occ[0], c.occ[1] = c.count, c.memOps
		obs.EmitCycleRun(c.sink, c.cycle, target, "normal", c.occ[:])
	}
	c.stats.Cycles += n
	c.cycle = target
}

// fetch brings up to FetchWidth instructions into the ROB along the
// predicted path.
func (c *Core) fetch(now uint64) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fetchBlocked || c.fetchGarbage || c.haltFetched {
			return
		}
		if c.count >= c.cfg.ROBSize {
			c.stats.ROBFullCycles++
			return
		}
		if c.fe.Stalled(now) {
			return
		}
		in, pc, ok, err := c.fe.Next(now)
		if err != nil {
			// Decode failure: assume wrong-path garbage and wait for a
			// squash to redirect fetch. A genuine illegal instruction
			// surfaces as a cycle-limit error in the harness.
			c.fetchGarbage = true
			return
		}
		if !ok {
			c.stats.FetchStallCycles++
			return
		}
		if in.Op.IsMem() && c.memOps >= c.cfg.LSQSize {
			return
		}

		e := robEntry{seq: c.nextSeq, in: in, pc: pc}
		c.captureSources(&e)
		redirected := false

		switch in.Op.Class() {
		case isa.ClassBranch:
			e.predTaken = c.m.Pred.PredictDir(pc)
			if e.predTaken {
				c.fe.Redirect(in.BranchTarget(pc), now, c.cfg.TakenPenalty)
				redirected = true
			}
		case isa.ClassJump:
			if in.Op == isa.OpJal {
				if in.Rd == isa.RegRA {
					c.m.Pred.PushReturn(pc + isa.InstSize)
				}
				c.fe.Redirect(in.BranchTarget(pc), now, c.cfg.TakenPenalty)
				redirected = true
			} else {
				var tgt uint64
				var have bool
				if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
					tgt, have = c.m.Pred.PopReturn()
				} else {
					tgt, have = c.m.Pred.PredictTarget(pc)
				}
				if in.Rd == isa.RegRA {
					c.m.Pred.PushReturn(pc + isa.InstSize)
				}
				if have {
					e.predTarget, e.hasPredTgt = tgt, true
					c.fe.Redirect(tgt, now, c.cfg.TakenPenalty)
					redirected = true
				} else {
					// No target prediction: block fetch until it resolves.
					c.fetchBlocked = true
					c.fetchBlockedSeq = e.seq
				}
			}
		case isa.ClassHalt:
			c.haltFetched = true
		}

		// Rename: record this entry as the latest producer.
		if rd, has := in.DestReg(); has {
			c.regTag[rd] = e.seq
			c.tagOK[rd] = true
		}
		if in.Op.IsMem() {
			c.memOps++
		}
		c.push(e)
		if !redirected {
			c.fe.Advance()
		}
		if redirected {
			return // redirect consumes the rest of the fetch group
		}
	}
}

// captureSources records, per source register, either a dependence tag
// on an in-flight producer or the fact that the committed register file
// will hold the value.
func (c *Core) captureSources(e *robEntry) {
	srcs, n := e.in.SrcRegs()
	e.nsrc = n
	for i := 0; i < n; i++ {
		r := srcs[i]
		e.src[i] = source{reg: r}
		if r != isa.RegZero && c.tagOK[r] {
			e.src[i].tag = c.regTag[r]
			e.src[i].hasTag = true
		}
	}
}

func (c *Core) push(e robEntry) {
	c.rob[(c.head+c.count)%len(c.rob)] = e
	c.count++
	c.nextSeq++
}

// commit retires up to CommitWidth completed instructions from the head.
func (c *Core) commit(now uint64) {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := c.at(0)
		if !e.executed || e.readyAt > now {
			return
		}
		in := e.in
		if rd, has := in.DestReg(); has {
			c.regs[rd] = e.value
			if c.tagOK[rd] && c.regTag[rd] == e.seq {
				c.tagOK[rd] = false
			}
		}
		switch in.Op.Class() {
		case isa.ClassStore:
			c.m.Mem.Write(e.addr, e.msize, uint64(e.storeVal))
			c.m.Hier.Access(c.m.CoreID, mem.AccWrite, e.addr, now)
			c.m.StoreVisible(e.addr)
			c.stats.Stores++
		case isa.ClassAtomic:
			// The memory side already executed at issue (head-only).
			c.stats.Stores++
		case isa.ClassHalt:
			c.done = true
		}
		c.stats.Retired++
		if in.Op.IsMem() {
			c.memOps--
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.headSeq++
		if c.done {
			return
		}
	}
}

// squashAfter removes every entry younger than seq (exclusive: seq
// survives) and redirects fetch to target with the given penalty.
func (c *Core) squashAfter(seq uint64, target uint64, now, penalty uint64) {
	keep := int(seq-c.headSeq) + 1
	if keep < 0 {
		keep = 0
	}
	for i := keep; i < c.count; i++ {
		e := c.at(i)
		if e.in.Op.IsMem() {
			c.memOps--
		}
		c.stats.WrongPathInsts++
	}
	c.count = keep
	c.nextSeq = c.headSeq + uint64(keep)
	// Rebuild the rename map from surviving entries.
	for i := range c.tagOK {
		c.tagOK[i] = false
	}
	for i := 0; i < c.count; i++ {
		e := c.at(i)
		if rd, has := e.in.DestReg(); has {
			c.regTag[rd] = e.seq
			c.tagOK[rd] = true
		}
	}
	c.fetchBlocked = false
	c.fetchGarbage = false
	c.haltFetched = false
	for i := 0; i < c.count; i++ {
		if c.at(i).in.Op.Class() == isa.ClassHalt {
			c.haltFetched = true
		}
	}
	c.fe.Redirect(target, now, penalty)
}
