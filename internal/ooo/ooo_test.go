package ooo

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func testHier() mem.HierConfig {
	return mem.HierConfig{
		L1I:     mem.CacheConfig{Name: "L1I", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 4},
		L1D:     mem.CacheConfig{Name: "L1D", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2:      mem.CacheConfig{Name: "L2", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 10, MSHRs: 16},
		L2Banks: 2,
		DRAM:    mem.DRAMConfig{Latency: 200, Banks: 4, BankBusy: 8},
	}
}

func build(t *testing.T, cfg Config, gen func(b *asm.Builder)) (*Core, *cpu.Machine) {
	t.Helper()
	b := asm.NewBuilder(asm.DefaultTextBase)
	gen(b)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.Load(m)
	mach, err := cpu.NewMachine(m, testHier(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(mach, cfg, prog.Entry), mach
}

func mustRun(t *testing.T, c *Core, max uint64) {
	t.Helper()
	if err := cpu.Run(c, max); err != nil {
		t.Fatal(err)
	}
}

func TestRenameEliminatesWAW(t *testing.T) {
	// Repeated writes to the same register with independent chains:
	// renaming lets them all be in flight.
	c, _ := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Ld(isa.OpLd64, 2, 1, 0)  // long miss writes r2
		b.Movi(2, 5)               // WAW: must NOT wait for the load
		b.Opi(isa.OpAddi, 3, 2, 1) // reads the movi's value
		b.Halt()
	})
	mustRun(t, c, 10_000)
	if c.Regs()[3] != 6 {
		t.Errorf("r3 = %d, want 6", c.Regs()[3])
	}
	if c.Regs()[2] != 5 {
		t.Errorf("r2 = %d, want 5 (movi is younger)", c.Regs()[2])
	}
}

func TestOutOfOrderIssueUnderMiss(t *testing.T) {
	c, _ := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(5, 0x30000)
		b.Ld(isa.OpLd64, 2, 1, 0) // miss
		b.Ld(isa.OpLd64, 6, 5, 0) // independent miss: overlaps
		b.Opi(isa.OpAddi, 3, 2, 1)
		b.Op(isa.OpAdd, 7, 6, 3)
		b.Halt()
	})
	mustRun(t, c, 10_000)
	if c.Cycle() > 600 {
		t.Errorf("cycles = %d: independent misses did not overlap", c.Cycle())
	}
	if c.Base().MLPSum < 2 {
		t.Error("never had 2 outstanding misses")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	c, _ := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(2, 0xabcd)
		b.St(isa.OpSt64, 2, 1, 0)
		b.Ld(isa.OpLd64, 3, 1, 0) // forwards from the in-flight store
		b.Opi(isa.OpAddi, 4, 3, 1)
		b.Halt()
	})
	mustRun(t, c, 10_000)
	if c.Regs()[4] != 0xabce {
		t.Errorf("r4 = %#x", c.Regs()[4])
	}
}

func TestPartialForwardComposition(t *testing.T) {
	// A narrow store overlaying a wide load composes bytes correctly.
	c, mach := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(2, 0xff)
		b.St(isa.OpSt8, 2, 1, 2) // overwrite byte 2
		b.Ld(isa.OpLd64, 3, 1, 0)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 0x1111111111111111)
	mustRun(t, c, 10_000)
	if got := uint64(c.Regs()[3]); got != 0x1111111111ff1111 {
		t.Errorf("r3 = %#x", got)
	}
}

func TestBranchMispredictSquash(t *testing.T) {
	c, mach := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Ld(isa.OpLd64, 2, 1, 0) // memory: 1 -> branch not taken
		b.Br(isa.OpBeq, 2, isa.RegZero, "taken")
		b.Movi(3, 111)
		b.Halt()
		b.Label("taken")
		b.Movi(3, 222)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 1)
	mustRun(t, c, 10_000)
	if c.Regs()[3] != 111 {
		t.Errorf("r3 = %d", c.Regs()[3])
	}
	st := c.Stats()
	// Initial weakly-taken prediction is wrong for this branch.
	if st.Squashes == 0 || st.WrongPathInsts == 0 {
		t.Errorf("squashes=%d wrongpath=%d", st.Squashes, st.WrongPathInsts)
	}
}

func TestMemOrderViolationSquash(t *testing.T) {
	// A load speculatively bypasses an older store with a late-resolving
	// address that does conflict.
	c, mach := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(4, 0x5555)
		b.Ld(isa.OpLd64, 2, 1, 0) // miss: store address depends on it
		b.Op(isa.OpAdd, 3, 1, 2)  // addr = 0x20000 + 64
		b.St(isa.OpSt64, 4, 3, 0)
		b.Ld(isa.OpLd64, 5, 1, 64) // same location, issues early
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 64)
	mustRun(t, c, 10_000)
	if c.Regs()[5] != 0x5555 {
		t.Errorf("r5 = %#x, want 0x5555", c.Regs()[5])
	}
	if c.Stats().MemOrderViolations == 0 {
		t.Error("no violation recorded")
	}
}

func TestConservativeModeBlocksInstead(t *testing.T) {
	cfg := SmallConfig()
	cfg.SpecLoads = false
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(4, 0x5555)
		b.Ld(isa.OpLd64, 2, 1, 0)
		b.Op(isa.OpAdd, 3, 1, 2)
		b.St(isa.OpSt64, 4, 3, 0)
		b.Ld(isa.OpLd64, 5, 1, 64)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 64)
	mustRun(t, c, 10_000)
	if c.Regs()[5] != 0x5555 {
		t.Errorf("r5 = %#x", c.Regs()[5])
	}
	if c.Stats().MemOrderViolations != 0 {
		t.Error("conservative mode had a violation")
	}
}

func TestJalrBTBMissBlocksFetch(t *testing.T) {
	c, _ := build(t, SmallConfig(), func(b *asm.Builder) {
		b.SetEntry("main")
		b.Label("target")
		b.Movi(2, 77)
		b.Halt()
		b.Label("main")
		b.MoviLabel(1, "target")
		b.Jalr(0, 1, 0) // cold BTB: fetch must wait for resolution
		b.Movi(2, 1)    // never reached
		b.Halt()
	})
	mustRun(t, c, 10_000)
	if c.Regs()[2] != 77 {
		t.Errorf("r2 = %d", c.Regs()[2])
	}
}

func TestROBWindowLimits(t *testing.T) {
	// With a tiny ROB, a miss at the head blocks everything; a larger
	// ROB lets independent work proceed further.
	gen := func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Ld(isa.OpLd64, 2, 1, 0)
		for i := 0; i < 64; i++ {
			b.Opi(isa.OpAddi, 3, 3, 1) // independent chain
		}
		b.Halt()
	}
	small := SmallConfig()
	small.ROBSize = 4
	small.IQSize = 4
	c1, _ := build(t, small, gen)
	mustRun(t, c1, 100_000)
	large := SmallConfig()
	large.ROBSize = 128
	large.IQSize = 64
	c2, _ := build(t, large, gen)
	mustRun(t, c2, 100_000)
	if c2.Cycle() >= c1.Cycle() {
		t.Errorf("bigger window not faster: %d vs %d", c2.Cycle(), c1.Cycle())
	}
	if c1.Stats().ROBFullCycles == 0 {
		t.Error("tiny ROB never filled")
	}
}

func TestAtomicsAtHead(t *testing.T) {
	c, mach := build(t, SmallConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(2, 0) // compare
		b.Movi(3, 9) // swap-in
		b.Cas(3, 1, 2)
		b.Opi(isa.OpAddi, 4, 3, 1) // uses cas result (old value 0)
		b.Halt()
	})
	mustRun(t, c, 10_000)
	if got := mach.Mem.Read(0x20000, 8); got != 9 {
		t.Errorf("cas mem = %d", got)
	}
	if c.Regs()[4] != 1 {
		t.Errorf("r4 = %d", c.Regs()[4])
	}
}

func TestCommitWidthBounds(t *testing.T) {
	cfg := SmallConfig()
	cfg.CommitWidth = 1
	c, _ := build(t, cfg, func(b *asm.Builder) {
		for i := 0; i < 100; i++ {
			b.Op(isa.OpAdd, 3, 1, 2)
		}
		b.Halt()
	})
	mustRun(t, c, 100_000)
	// 101 instructions at 1/cycle commit: at least 101 cycles.
	if c.Cycle() < 101 {
		t.Errorf("cycles = %d, impossible with commit width 1", c.Cycle())
	}
}

func TestLSQCapacityBlocksFetch(t *testing.T) {
	cfg := SmallConfig()
	cfg.LSQSize = 2
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		for i := 0; i < 8; i++ {
			b.Ld(isa.OpLd64, 2, 1, int32(i*4096))
		}
		b.Halt()
	})
	mustRun(t, c, 100_000)
	if c.Retired() != 10 {
		t.Errorf("retired = %d", c.Retired())
	}
}
