package ooo

import (
	"fmt"

	"rocksim/internal/isa"
)

// Fingerprint canonically encodes the out-of-order configuration for
// run-cache keys, field by field (see sim.Options.Fingerprint).
func (c Config) Fingerprint() string {
	return fmt.Sprintf("ooo{fetch=%d issue=%d commit=%d rob=%d iq=%d lsq=%d spec=%t taken=%d mispred=%d}",
		c.FetchWidth, c.IssueWidth, c.CommitWidth, c.ROBSize, c.IQSize, c.LSQSize,
		c.SpecLoads, c.TakenPenalty, c.MispredictPenalty)
}

// Reset returns the core to its freshly constructed state, executing
// from entry, without reallocating. The ROB ring's entries are not
// zeroed: push() fully overwrites a slot on allocation and head/count
// make stale slots unreachable, so clearing them would only burn
// cycles. The caller resets the shared machine separately (see
// cpu.Machine.Reset) and reinstalls per-run sinks afterwards.
func (c *Core) Reset(entry uint64) {
	c.fe.Reset(entry)
	c.regs = [isa.NumRegs]int64{}
	c.regTag = [isa.NumRegs]uint64{}
	c.tagOK = [isa.NumRegs]bool{}
	c.head = 0
	c.count = 0
	c.headSeq = 0
	c.nextSeq = 0
	c.memOps = 0
	c.fetchBlockedSeq = 0
	c.fetchBlocked = false
	c.fetchGarbage = false
	c.haltFetched = false
	c.cycle = 0
	c.done = false
	c.err = nil
	c.stats = Stats{}
	c.sink = nil
	c.occ = [2]int{}
	c.ffNext = 0
	c.ffRobFull = 0
	c.ffFetchStall = 0
	c.ffEmptyIssue = 0
	c.ffMLP = 0
}

// Detach returns a frozen stats-only copy of the core in the same *Core
// shape, safe to hand to long-lived consumers while the live core is
// reset and reused by the pool. Stats accessors work on a detached
// core; Step must not be called on one.
func (c *Core) Detach() *Core {
	return &Core{
		cfg:   c.cfg,
		regs:  c.regs,
		cycle: c.cycle,
		done:  c.done,
		err:   c.err,
		stats: c.stats,
	}
}
