package ooo

import (
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// issue selects up to IssueWidth ready instructions among the IQSize
// oldest unissued entries and executes them, returning how many issued.
func (c *Core) issue(now uint64) int {
	issued := 0
	examined := 0
	for i := 0; i < c.count && issued < c.cfg.IssueWidth && examined < c.cfg.IQSize; i++ {
		e := c.at(i)
		if e.issued {
			continue
		}
		examined++
		if c.tryExecute(e, i, now) {
			issued++
			// Squashes invalidate iteration state: restart scan.
			if int(e.seq-c.headSeq) >= c.count {
				break
			}
		}
	}
	if issued == 0 && c.count > 0 {
		c.stats.EmptyIssueCycles++
	}
	return issued
}

// operand returns the value of source s of entry e if it is available at
// cycle now.
func (c *Core) operand(e *robEntry, s int, now uint64) (int64, bool) {
	src := &e.src[s]
	if !src.hasTag {
		if src.reg == isa.RegZero {
			return 0, true
		}
		return c.regs[src.reg], true
	}
	p := c.entryBySeq(src.tag)
	if p == nil {
		// Producer already committed; its value is architectural.
		return c.regs[src.reg], true
	}
	if p.executed && p.readyAt <= now {
		return p.value, true
	}
	return 0, false
}

func (c *Core) operands(e *robEntry, now uint64) ([3]int64, bool) {
	var vals [3]int64
	for i := 0; i < e.nsrc; i++ {
		v, ok := c.operand(e, i, now)
		if !ok {
			return vals, false
		}
		vals[i] = v
	}
	return vals, true
}

// tryExecute attempts to issue entry e (at ROB index idx). It returns
// true if the entry issued this cycle.
func (c *Core) tryExecute(e *robEntry, idx int, now uint64) bool {
	in := e.in
	vals, ready := c.operands(e, now)
	if !ready {
		return false
	}
	switch in.Op.Class() {
	case isa.ClassNop, isa.ClassHalt:
		e.value = 0
		e.readyAt = now
	case isa.ClassBarrier:
		// Serializing: only at the head.
		if idx != 0 {
			return false
		}
		e.readyAt = now + 1
	case isa.ClassALU:
		e.value = isa.ALUResult(in, vals[0], vals[1])
		e.readyAt = now + uint64(in.Op.Latency())
	case isa.ClassLoad:
		return c.issueLoad(e, idx, vals[0], now)
	case isa.ClassStore:
		e.addr = uint64(vals[0] + int64(in.Imm))
		e.msize = in.Op.MemWidth()
		e.storeVal = vals[1]
		e.addrValid = true
		e.readyAt = now + 1
		e.issued = true
		e.executed = true
		c.checkViolations(e, idx, now)
		return true
	case isa.ClassBranch:
		taken := isa.BranchTaken(in.Op, vals[0], vals[1])
		mis := taken != e.predTaken
		c.m.Pred.UpdateDir(e.pc, taken, mis)
		c.stats.Branches++
		e.readyAt = now + 1
		e.issued = true
		e.executed = true
		if mis {
			c.stats.BranchMispred++
			c.stats.Squashes++
			target := e.pc + isa.InstSize
			if taken {
				target = in.BranchTarget(e.pc)
			}
			c.squashAfter(e.seq, target, now, c.cfg.MispredictPenalty)
		}
		return true
	case isa.ClassJump:
		e.value = int64(e.pc + isa.InstSize)
		e.readyAt = now + 1
		e.issued = true
		e.executed = true
		if in.Op == isa.OpJalr {
			target := uint64(vals[0] + int64(in.Imm))
			c.m.Pred.UpdateTarget(e.pc, target)
			switch {
			case c.fetchBlocked && c.fetchBlockedSeq == e.seq:
				c.fetchBlocked = false
				c.fe.Redirect(target, now, c.cfg.TakenPenalty)
			case e.hasPredTgt && e.predTarget != target:
				c.stats.BranchMispred++
				c.stats.Squashes++
				c.squashAfter(e.seq, target, now, c.cfg.MispredictPenalty)
			}
		}
		return true
	case isa.ClassAtomic:
		// Atomics execute non-speculatively at the ROB head.
		if idx != 0 {
			return false
		}
		addr := uint64(vals[0])
		res := c.m.Hier.Access(c.m.CoreID, mem.AccWrite, addr, now)
		old := int64(c.m.Mem.Read(addr, 8))
		if old == vals[1] {
			c.m.Mem.Write(addr, 8, uint64(vals[2]))
			c.m.StoreVisible(addr)
		}
		e.value = old
		e.addr = addr
		e.msize = 8
		e.addrValid = true
		e.readyAt = res.Ready
	case isa.ClassPrefetch:
		c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, uint64(vals[0]+int64(in.Imm)), now)
		e.readyAt = now
	case isa.ClassTx:
		// No transactional hardware: flat execution, always succeeds
		// (txbegin's destination commits as zero).
		e.value = 0
		e.readyAt = now + 1
	}
	e.issued = true
	e.executed = true
	return true
}

// issueLoad handles disambiguation, forwarding and timing for a load.
func (c *Core) issueLoad(e *robEntry, idx int, base int64, now uint64) bool {
	in := e.in
	addr := uint64(base + int64(in.Imm))
	size := in.Op.MemWidth()

	// Disambiguation against older stores.
	for i := 0; i < idx; i++ {
		s := c.at(i)
		if !s.in.Op.IsStore() {
			continue
		}
		if !s.addrValid {
			if c.cfg.SpecLoads {
				continue // speculate past it; violation check will catch
			}
			return false // conservative: wait for the store to issue
		}
	}

	// Compose the value: architectural memory overlaid with older
	// in-flight stores (program order), byte by byte. Fixed-size scratch:
	// MemWidth is at most 8, and stack arrays keep the hot load path
	// allocation-free.
	var bufArr [8]byte
	var fromArr [8]bool
	buf := bufArr[:size]
	fromStore := fromArr[:size]
	raw := c.m.Mem.Read(addr, size)
	for i := 0; i < size; i++ {
		buf[i] = byte(raw >> (8 * i))
	}
	forwardedAll := size > 0
	for i := 0; i < idx; i++ {
		s := c.at(i)
		if !s.in.Op.IsStore() || !s.addrValid {
			continue
		}
		overlayStore(buf, fromStore, addr, s.addr, s.msize, s.storeVal)
	}
	for _, f := range fromStore {
		if !f {
			forwardedAll = false
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	e.value = isa.ExtendLoad(in.Op, v)
	e.addr = addr
	e.msize = size
	e.addrValid = true

	if forwardedAll {
		e.readyAt = now + 1
	} else {
		res := c.m.Hier.AccessLoad(c.m.CoreID, addr, e.pc, now)
		e.readyAt = res.Ready
		c.stats.CountLoadLevel(res.Level)
	}
	c.stats.Loads++
	e.issued = true
	e.executed = true
	return true
}

// overlayStore copies the bytes of a store that overlap the load window
// [base, base+len(buf)) into buf.
func overlayStore(buf []byte, from []bool, base, saddr uint64, ssize int, sval int64) {
	for b := 0; b < ssize; b++ {
		a := saddr + uint64(b)
		if a >= base && a < base+uint64(len(buf)) {
			buf[a-base] = byte(uint64(sval) >> (8 * b))
			from[a-base] = true
		}
	}
}

// checkViolations detects younger loads that issued speculatively past
// this store and read stale data; the oldest violator and everything
// younger are squashed and refetched.
func (c *Core) checkViolations(st *robEntry, idx int, now uint64) {
	if !c.cfg.SpecLoads {
		return
	}
	for i := idx + 1; i < c.count; i++ {
		l := c.at(i)
		if !l.in.Op.IsLoad() || !l.issued || !l.addrValid {
			continue
		}
		if rangesOverlap(l.addr, l.msize, st.addr, st.msize) {
			c.stats.MemOrderViolations++
			c.stats.Squashes++
			// Squash from the violating load (inclusive) and refetch it.
			c.squashAfter(l.seq-1, l.pc, now, c.cfg.MispredictPenalty)
			return
		}
	}
}

func rangesOverlap(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}
