package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"rocksim/internal/fleet"
	"rocksim/internal/serve"
)

// Fleet is the multi-target mode of the client: one consistent-hash
// ring over N rocksimd shards, one shared tuned http.Client (so every
// per-target connection pool is reused across the whole process), a
// per-shard concurrency bound, and health-driven membership. rockgate
// routes through a Fleet, and rockload -targets drives one directly —
// both agree on placement because both hash the same key space onto
// the same ring.
type Fleet struct {
	targets []string
	clients map[string]*Client
	sems    map[string]chan struct{}
	mon     *fleet.Monitor
	httpc   *http.Client
	// perShard is the per-shard concurrency bound (semaphore size).
	perShard int
}

// FleetConfig parameterizes NewFleet. Zero values get defaults.
type FleetConfig struct {
	// PerShard bounds concurrent requests per shard (default
	// DefaultMaxPerHost). The transport's connection pool is sized to
	// match, so fan-out never opens more than PerShard conns per shard.
	PerShard int
	// VNodes is the ring's virtual-node count per shard (default
	// fleet.DefaultVNodes).
	VNodes int
	// HTTP overrides the shared client; nil builds a tuned one sized to
	// PerShard. Tests inject an httptest transport here.
	HTTP *http.Client
}

// NewFleet builds the multi-target client over targets (base URLs).
// All targets start as ring members; call Check or the monitor's Start
// to begin health-driven ejection.
func NewFleet(targets []string, cfg FleetConfig) (*Fleet, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("fleet needs at least one target")
	}
	if cfg.PerShard <= 0 {
		cfg.PerShard = DefaultMaxPerHost
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = NewHTTPClient(cfg.PerShard)
	}
	f := &Fleet{
		targets:  append([]string(nil), targets...),
		clients:  make(map[string]*Client, len(targets)),
		sems:     make(map[string]chan struct{}, len(targets)),
		httpc:    httpc,
		perShard: cfg.PerShard,
	}
	for _, t := range targets {
		if f.clients[t] != nil {
			return nil, fmt.Errorf("duplicate fleet target %q", t)
		}
		f.clients[t] = &Client{Base: t, HTTP: httpc}
		f.sems[t] = make(chan struct{}, cfg.PerShard)
	}
	ring := fleet.NewRing(cfg.VNodes)
	f.mon = fleet.NewMonitor(ring, targets, f.probe)
	return f, nil
}

// probe is the monitor's health check: GET /healthz, distinguishing
// down (transport error, unexpected status) from lame-duck (draining).
func (f *Fleet) probe(target string) error {
	h, err := f.clients[target].Health()
	if err != nil {
		return err
	}
	if h.Draining {
		return fleet.ErrDraining
	}
	return nil
}

// Monitor exposes the fleet's health state and probe controls.
func (f *Fleet) Monitor() *fleet.Monitor { return f.mon }

// Targets returns the configured targets in order (membership may be a
// subset at any moment; see Monitor().Snapshot()).
func (f *Fleet) Targets() []string { return append([]string(nil), f.targets...) }

// PerShard returns the per-shard concurrency bound.
func (f *Fleet) PerShard() int { return f.perShard }

// Client returns the per-target client (nil for an unknown target).
func (f *Fleet) Client(target string) *Client { return f.clients[target] }

// Owners returns up to n healthy shards for key in failover order.
func (f *Fleet) Owners(key string, n int) []string {
	return f.mon.Ring().Owners(key, n)
}

// Acquire takes a per-shard concurrency slot, waiting until one frees
// or ctx ends. The caller must call the release exactly once.
func (f *Fleet) Acquire(ctx context.Context, target string) (release func(), err error) {
	sem := f.sems[target]
	if sem == nil {
		return nil, fmt.Errorf("unknown fleet target %q", target)
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// MarkDown ejects a shard on request-path evidence, so the very next
// routing decision avoids it rather than waiting for a probe tick.
func (f *Fleet) MarkDown(target string, err error) { f.mon.MarkDown(target, err) }

// RunKey is the deterministic routing key for a /v1/run request: any
// stable function of the request works (placement only has to be
// agreed upon, not equal to the shard's internal cache key), and JSON
// of the fixed-field-order struct is stable.
func RunKey(req serve.RunRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		// Unreachable for the plain wire struct; degrade to one bucket.
		return req.Kind + "|" + req.Workload + "|" + req.Scale
	}
	return string(b)
}

// Run routes one /v1/run to the cell's owning shard, failing over to
// ring successors on transport-level errors (ejecting the dead shard
// as it goes). Admission 429s and HTTP-level errors are returned, not
// failed over: the owner holds the cache line, and recomputing a busy
// shard's cell elsewhere would defeat fleet-wide deduplication.
func (f *Fleet) Run(ctx context.Context, req serve.RunRequest) (*RunResult, string, error) {
	key := RunKey(req)
	owners := f.Owners(key, f.mon.Ring().Size())
	if len(owners) == 0 {
		return nil, "", fmt.Errorf("no healthy shards")
	}
	var lastErr error
	for _, target := range owners {
		release, err := f.Acquire(ctx, target)
		if err != nil {
			return nil, target, err
		}
		res, err := f.clients[target].RunDetail(req)
		release()
		if err == nil {
			return res, target, nil
		}
		if !transportLevel(err) {
			return nil, target, err
		}
		f.MarkDown(target, err)
		lastErr = err
	}
	return nil, "", fmt.Errorf("all shards failed for key: %w", lastErr)
}

// transportLevel reports whether err means "this shard is unavailable"
// (fail over) as opposed to "this request is bad or must wait" (do
// not). HTTP-level responses — 4xx/5xx including 429 — reached a live
// shard and are answers; anything else is a connection problem.
func transportLevel(err error) bool {
	switch err.(type) {
	case *BusyError, *StatusError:
		return false
	}
	return true
}

// HealthAll fetches every configured shard's /healthz in target order;
// a nil entry marks an unreachable shard.
func (f *Fleet) HealthAll() map[string]*Health {
	out := make(map[string]*Health, len(f.targets))
	for _, t := range f.targets {
		h, err := f.clients[t].Health()
		if err != nil {
			out[t] = nil
			continue
		}
		out[t] = h
	}
	return out
}

// MetricsAll scrapes every reachable shard's /metrics and sums the
// samples fleet-wide (per-shard values are available via Client(t)).
func (f *Fleet) MetricsAll() map[string]float64 {
	sum := make(map[string]float64)
	for _, t := range f.targets {
		m, err := f.clients[t].Metrics()
		if err != nil {
			continue
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sum[k] += m[k]
		}
	}
	return sum
}

// Close stops probing and releases idle connections.
func (f *Fleet) Close() {
	f.mon.Stop()
	if t, ok := f.httpc.Transport.(*http.Transport); ok && t != nil {
		t.CloseIdleConnections()
	}
}
