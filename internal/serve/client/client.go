// Package client is the Go client for rocksimd (internal/serve): typed
// wrappers over the /v1 endpoints plus a Prometheus scrape helper.
// cmd/rockload drives its load through this package, and external
// tooling can use it to talk to a long-lived daemon instead of paying
// simulator start-up per query.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rocksim/internal/serve"
)

// Client talks to one rocksimd instance.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:8321".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// BusyError is a 429 from the daemon's admission control: the queue is
// full and the caller should retry after the hinted delay.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("server busy; retry after %v", e.RetryAfter)
}

// StatusError is any other non-2xx response, with the server's decoded
// error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends a JSON body and returns the raw response body for the
// listed acceptable statuses; other statuses map to BusyError (429) or
// StatusError.
func (c *Client) post(path string, req any, okStatus ...int) (int, []byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.http().Post(c.Base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	for _, s := range okStatus {
		if resp.StatusCode == s {
			return resp.StatusCode, body, nil
		}
	}
	return resp.StatusCode, body, responseError(resp, body)
}

func responseError(resp *http.Response, body []byte) error {
	if resp.StatusCode == http.StatusTooManyRequests {
		return &BusyError{RetryAfter: retryAfter(resp.Header.Get("Retry-After"), time.Now)}
	}
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &StatusError{Code: resp.StatusCode, Message: msg}
}

// retryAfter parses a Retry-After header per RFC 9110 §10.2.3: either a
// non-negative decimal number of seconds or an HTTP-date. "0" is a
// valid, meaningful hint — retry immediately, the queue drained — and
// must not be rounded up to the default; a date in the past likewise
// means now. Only an absent or unparsable header falls back to
// serve.DefaultRetryAfter. now is injected for testing the date arm.
func retryAfter(h string, now func() time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return serve.DefaultRetryAfter
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return serve.DefaultRetryAfter
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := at.Sub(now()); d > 0 {
			return d
		}
		return 0
	}
	return serve.DefaultRetryAfter
}

// Run executes one cell and returns the report JSON exactly as the
// daemon produced it (byte-identical to `sstsim -json`).
func (c *Client) Run(req serve.RunRequest) ([]byte, error) {
	res, err := c.RunDetail(req)
	if err != nil {
		return nil, err
	}
	return res.Body, nil
}

// RunResult is a /v1/run response plus the client-side and
// server-reported timing that load tools care about.
type RunResult struct {
	// Body is the report JSON, byte-identical to Run's return.
	Body []byte
	// RequestID echoes the daemon's X-Request-ID header; pair it with
	// the daemon log or GET /v1/trace/{id}.
	RequestID string
	// TTFB is the client-measured time from sending the request until
	// response headers arrived (includes queue wait on the server).
	TTFB time.Duration
	// Compute is the server-reported X-Compute-Us: wall time the
	// daemon spent inside the runner (0 on a warm cache hit). The gap
	// TTFB-Compute is queueing, marshalling, and network.
	Compute time.Duration
}

// RunDetail executes one cell like Run but also surfaces the request
// id and timing split (client TTFB vs server-reported compute).
func (c *Client) RunDetail(req serve.RunRequest) (*RunResult, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := c.http().Post(c.Base+"/v1/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	ttfb := time.Since(t0)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp, body)
	}
	res := &RunResult{Body: body, RequestID: resp.Header.Get("X-Request-ID"), TTFB: ttfb}
	if us, err := strconv.ParseInt(resp.Header.Get("X-Compute-Us"), 10, 64); err == nil {
		res.Compute = time.Duration(us) * time.Microsecond
	}
	return res, nil
}

// Cell computes one fleet-internal cell via POST /v1/cell: complete
// wire options in, a CellStats snapshot or classified cell error out.
// The context carries the caller's deadline and cancellation (a grid
// fan-out cancels its outstanding cells when one shard fails hard).
// A non-nil error here is a transport- or admission-level problem
// (connection refused, 429 BusyError, 503 draining); a deterministic
// simulation failure arrives as a nil error with resp.ErrClass set.
func (c *Client) Cell(ctx context.Context, req serve.CellRequest) (*serve.CellResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/cell", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp, body)
	}
	var out serve.CellResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("bad /v1/cell body: %v", err)
	}
	return &out, nil
}

// Grid regenerates experiments synchronously and returns the text
// report (byte-identical to sstbench output minus wall-clock lines).
func (c *Client) Grid(req serve.GridRequest) ([]byte, error) {
	req.Async = false
	_, body, err := c.post("/v1/grid", req, http.StatusOK)
	return body, err
}

// GridAsync submits a grid for background regeneration and returns the
// result id to poll with Result.
func (c *Client) GridAsync(req serve.GridRequest) (string, error) {
	req.Async = true
	_, body, err := c.post("/v1/grid", req, http.StatusAccepted)
	if err != nil {
		return "", err
	}
	var acc serve.AsyncAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		return "", fmt.Errorf("bad 202 body: %v", err)
	}
	return acc.ID, nil
}

// Result polls an async grid: done=false while it is still running,
// otherwise the finished report text.
func (c *Client) Result(id string) (done bool, body []byte, err error) {
	resp, err := c.http().Get(c.Base + "/v1/result/" + id)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return false, nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return true, body, nil
	case http.StatusAccepted:
		return false, nil, nil
	}
	return false, nil, responseError(resp, body)
}

// WaitResult polls Result until the job finishes or the deadline
// elapses.
func (c *Client) WaitResult(id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		done, body, err := c.Result(id)
		if err != nil {
			return nil, err
		}
		if done {
			return body, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("result %s not ready within %v", id, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Healthz reports whether the daemon answers and is not draining.
func (c *Client) Healthz() error {
	resp, err := c.http().Get(c.Base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return responseError(resp, body)
	}
	return nil
}

// Health is the decoded /healthz body — the shard-level state a fleet
// router reads on every probe.
type Health struct {
	OK           bool   `json:"ok"`
	Draining     bool   `json:"draining"`
	ShardID      string `json:"shard_id"`
	QueueDepth   int    `json:"queue_depth"`
	QueueLimit   int    `json:"queue_limit"`
	InflightRuns int64  `json:"inflight_runs"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	PoolReused   uint64 `json:"pool_reused"`
	PoolBuilt    uint64 `json:"pool_built"`
}

// Health fetches and decodes /healthz. Unlike Healthz it succeeds on a
// 503 too — a draining shard still answers, and the body's Draining
// flag is exactly what a router's lame-duck handling needs.
func (c *Client) Health() (*Health, error) {
	resp, err := c.http().Get(c.Base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, responseError(resp, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("bad /healthz body: %v", err)
	}
	return &h, nil
}

// Metrics scrapes /metrics and returns the plain (unlabelled) samples
// as a name→value map, e.g. m["rocksim_serve_cache_hits"].
func (c *Client) Metrics() (map[string]float64, error) {
	resp, err := c.http().Get(c.Base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, responseError(resp, body)
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m[fields[0]] = v
	}
	return m, nil
}
