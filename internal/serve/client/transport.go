package client

import (
	"net"
	"net/http"
	"time"
)

// Transport defaults, sized for a router fanning a grid out to a
// handful of shards rather than a browser talking to many origins.
const (
	// DefaultMaxPerHost bounds connections per shard. It must be at
	// least the per-shard request concurrency, or a grid fan-out churns
	// through ephemeral connections instead of reusing a small pool —
	// the connection-count regression test pins this.
	DefaultMaxPerHost = 16
	// DefaultDialTimeout caps connection establishment. A shard that
	// cannot even accept within this is down; simulations themselves may
	// legitimately run much longer, so no response-header timeout is set
	// here (deadlines ride on the request context instead).
	DefaultDialTimeout = 2 * time.Second
	// DefaultIdleTimeout keeps warm connections across a whole benchmark
	// run but lets an idle fleet's sockets close eventually.
	DefaultIdleTimeout = 90 * time.Second
)

// NewTransport returns an http.Transport tuned for shard traffic:
// keep-alives on, an idle pool per shard at least as large as the
// per-shard concurrency (maxPerHost <= 0 means DefaultMaxPerHost), a
// short dial timeout, and no response-header timeout — long simulations
// are legitimate, and cancellation is the context's job.
func NewTransport(maxPerHost int) *http.Transport {
	if maxPerHost <= 0 {
		maxPerHost = DefaultMaxPerHost
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   DefaultDialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        4 * maxPerHost,
		MaxIdleConnsPerHost: maxPerHost,
		MaxConnsPerHost:     maxPerHost,
		IdleConnTimeout:     DefaultIdleTimeout,
		TLSHandshakeTimeout: 5 * time.Second,
	}
}

// NewHTTPClient wraps NewTransport in an http.Client with no overall
// timeout (simulations are long; use request contexts for deadlines).
func NewHTTPClient(maxPerHost int) *http.Client {
	return &http.Client{Transport: NewTransport(maxPerHost)}
}
