package client

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/serve"
)

func testServer(t *testing.T) (*Client, *experiments.Runner) {
	t.Helper()
	r := experiments.NewRunner()
	r.SetJobs(2)
	ts := httptest.NewServer(serve.New(serve.Config{}, r))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL}, r
}

func TestClientEndToEnd(t *testing.T) {
	c, r := testServer(t)

	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	report, err := c.Run(serve.RunRequest{Kind: "inorder", Workload: "chase", Scale: "test"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !bytes.Contains(report, []byte(`"kind": "inorder"`)) {
		t.Errorf("run report missing kind: %.200s", report)
	}

	grid, err := c.Grid(serve.GridRequest{Exps: []string{"T1"}, Scale: "test"})
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	if !strings.Contains(string(grid), "---- T1:") {
		t.Errorf("grid output missing T1 header: %.200s", grid)
	}

	id, err := c.GridAsync(serve.GridRequest{Exps: []string{"T1"}, Scale: "test"})
	if err != nil {
		t.Fatalf("grid async: %v", err)
	}
	async, err := c.WaitResult(id, 30*time.Second)
	if err != nil {
		t.Fatalf("wait result: %v", err)
	}
	if !bytes.Equal(async, grid) {
		t.Errorf("async grid differs from sync grid")
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	hits, misses := r.CacheStats()
	if got := m["rocksim_serve_cache_hits"]; got != float64(hits) {
		t.Errorf("scraped cache_hits %v, runner says %d", got, hits)
	}
	if got := m["rocksim_serve_cache_misses"]; got != float64(misses) {
		t.Errorf("scraped cache_misses %v, runner says %d", got, misses)
	}
	if m["rocksim_serve_run_requests"] < 1 {
		t.Errorf("scraped run_requests %v, want >= 1", m["rocksim_serve_run_requests"])
	}
}

func TestClientErrors(t *testing.T) {
	c, _ := testServer(t)

	_, err := c.Run(serve.RunRequest{Kind: "vliw", Workload: "chase"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("bad kind: error %v, want StatusError 400", err)
	}
	if !strings.Contains(se.Message, "vliw") {
		t.Errorf("error message %q does not name the bad kind", se.Message)
	}

	if _, _, err := c.Result("g424242"); err == nil {
		t.Error("unknown result id: no error")
	}
}

// TestClientBusy decodes 429 + Retry-After into a typed BusyError.
func TestClientBusy(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer ts.Close()
	c := &Client{Base: ts.URL}
	_, err := c.Run(serve.RunRequest{Kind: "sst", Workload: "chase"})
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("error %v, want BusyError", err)
	}
	if be.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter %v, want 7s", be.RetryAfter)
	}
}

// TestRetryAfterParsing covers the RFC 9110 header forms the old parser
// dropped: "0" (retry immediately — previously rounded up to the
// default), HTTP-dates (previously unparsable, ditto), and past dates
// (mean now). Absent or garbage headers still fall back to the default.
func TestRetryAfterParsing(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", serve.DefaultRetryAfter},
		{"0", 0},
		{"1", time.Second},
		{"30", 30 * time.Second},
		{"-5", serve.DefaultRetryAfter},
		{"soon", serve.DefaultRetryAfter},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{now.Format(http.TimeFormat), 0},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0},
		{"  2  ", 2 * time.Second},
	}
	for _, c := range cases {
		if got := retryAfter(c.header, clock); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestBusyErrorHonorsRetryAfterZero drives the header path end to end:
// a 429 carrying "Retry-After: 0" must surface as a zero backoff hint.
func TestBusyErrorHonorsRetryAfterZero(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL}
	_, err := c.Run(serve.RunRequest{Kind: "inorder", Workload: "chase", Scale: "test"})
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want BusyError, got %v", err)
	}
	if busy.RetryAfter != 0 {
		t.Errorf("Retry-After: 0 surfaced as %v, want 0", busy.RetryAfter)
	}
}
