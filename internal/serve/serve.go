// Package serve is the HTTP front-end of rocksimd: simulation as a
// service over the shared experiments.Runner. One daemon hosts the
// content-addressed run cache, so repeated cells across clients —
// CI shards regenerating overlapping figures, developers probing one
// configuration — deduplicate onto single simulations exactly as they
// do inside one sstbench process.
//
// The API surfaces the two existing CLI shapes byte-for-byte:
//
//	POST /v1/run     one (kind, workload, options) cell; the response
//	                 body is identical to `sstsim -json` for that cell.
//	POST /v1/cell    the fleet-internal cell endpoint: full wire options
//	                 in, a CellStats snapshot (or classified cell error)
//	                 out. Deterministic simulation failures are 200s with
//	                 an error body — only transport/admission problems
//	                 use HTTP status — so a router can tell "this cell
//	                 fails everywhere" from "this shard is unavailable".
//	POST /v1/grid    one or more experiments; the body is identical to
//	                 `sstbench` output minus its wall-clock lines.
//	                 {"async": true} returns 202 with a result id.
//	GET  /v1/result/{id}   poll an async grid (202 running, 200 done).
//	GET  /v1/trace/{id}    a traced request's span tree (Chrome JSON, or
//	                       the flat list with ?format=spans).
//	GET  /metrics    Prometheus text (service counters + run metrics).
//	GET  /healthz    liveness; 503 once draining.
//
// Every response echoes (or assigns) X-Request-ID. Requests are traced
// when Config.Trace is set or the client sends X-Trace: 1; tracing
// changes headers and the /v1/trace ring only, never a response body.
//
// Backpressure is admission-controlled: at most Config.QueueDepth run
// and grid requests may be in flight (executing on the Runner's worker
// pool or queued for it); beyond that the service answers 429 with a
// Retry-After hint instead of building an unbounded backlog. StartDrain
// flips the service into lame-duck mode — new work is refused with 503,
// in-flight and queued async work runs to completion — and Wait blocks
// until the last admitted request finishes, which is how rocksimd turns
// SIGTERM into a loss-free shutdown.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rocksim/internal/cpu"
	"rocksim/internal/experiments"
	"rocksim/internal/faults"
	"rocksim/internal/obs"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// Defaults for Config zero values.
const (
	DefaultQueueDepth = 32
	DefaultRetryAfter = time.Second
	// maxFinishedJobs bounds retained async results; the oldest finished
	// results are evicted first, running jobs are never evicted.
	maxFinishedJobs = 64
)

// Config parameterizes a Server.
type Config struct {
	// ShardID names this daemon within a fleet (rocksimd -shard-id);
	// echoed by /healthz so routers and operators can tell shards apart.
	// Empty outside a fleet.
	ShardID string
	// QueueDepth is the admission bound: the maximum number of run/grid
	// requests in flight at once (executing or queued). 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// RetryAfter is the hint returned with 429 responses. 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// Trace enables request-scoped tracing for every request; off, a
	// client can still trace one request with the X-Trace: 1 header.
	// Tracing never changes a response body — only headers and the
	// /v1/trace ring.
	Trace bool
	// TraceRing bounds retained finished traces (0 = DefaultTraceRing).
	TraceRing int
	// Logger receives the structured request/drain log lines; nil
	// discards them (tests), rocksimd passes its process logger.
	Logger *slog.Logger
	// Clock feeds span timestamps; nil means time.Now. Tests inject a
	// fake incrementing clock to make trace exports byte-deterministic.
	Clock func() time.Time
}

// runner is the slice of *experiments.Runner the service consumes.
// It is an interface so the backpressure and drain tests can inject a
// blocking fake; production code always passes the real Runner.
type runner interface {
	RunCellCtx(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error)
	Run(id string, scale workload.Scale) (*experiments.Result, error)
	BaseOptions() sim.Options
	CacheStats() (hits, misses uint64)
	PoolStats() (reused, built uint64)
}

// Server is the rocksimd HTTP handler.
type Server struct {
	cfg   Config
	run   runner
	reg   *obs.Registry
	mux   *http.ServeMux
	log   *slog.Logger
	clock func() time.Time

	// sem is the admission semaphore: one slot per admitted heavy
	// request. Acquisition is non-blocking — a full channel is a 429,
	// never a queued connection.
	sem      chan struct{}
	draining atomic.Bool
	// wg tracks admitted work, including async grid goroutines that
	// outlive their HTTP request; Wait returns when it drains.
	wg sync.WaitGroup
	// reqID numbers requests that arrive without an X-Request-ID.
	reqID atomic.Uint64
	// inflight counts simulations executing right now (inside the
	// runner), as opposed to len(sem) which also counts queued work.
	inflight atomic.Int64

	mu         sync.Mutex
	jobs       map[string]*gridJob
	order      []string // job ids, oldest first, for bounded retention
	nextID     uint64
	traces     map[string]*obs.Tracer
	traceOrder []string // request ids, oldest first
}

// gridJob is one async grid computation.
type gridJob struct {
	done   chan struct{}
	status int
	body   []byte
}

// New builds a Server over the real experiments Runner.
func New(cfg Config, r *experiments.Runner) *Server {
	return newServer(cfg, r)
}

func newServer(cfg Config, r runner) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	s := &Server{
		cfg:    cfg,
		run:    r,
		reg:    obs.NewRegistry(),
		mux:    http.NewServeMux(),
		log:    cfg.Logger,
		clock:  cfg.Clock,
		sem:    make(chan struct{}, cfg.QueueDepth),
		jobs:   make(map[string]*gridJob),
		traces: make(map[string]*obs.Tracer),
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/cell", s.handleCell)
	s.mux.HandleFunc("POST /v1/grid", s.handleGrid)
	s.mux.HandleFunc("GET /v1/result/{id}", s.handleResult)
	s.mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// StartDrain puts the service in lame-duck mode: subsequent run/grid
// requests are refused with 503 while already-admitted work (including
// async grids) runs to completion.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.log.Info("drain start", "inflight", s.inflight.Load(), "queued", len(s.sem))
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Wait blocks until every admitted request has finished. Call after
// StartDrain (and after http.Server.Shutdown) for a loss-free stop.
func (s *Server) Wait() { s.wg.Wait() }

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Kind     string      `json:"kind"`     // core model, e.g. "sst" (sim.KindByName)
	Workload string      `json:"workload"` // built-in workload name
	Scale    string      `json:"scale,omitempty"`
	Options  *RunOptions `json:"options,omitempty"`
}

// RunOptions mirrors the sstsim override flags. Pointer fields
// distinguish "absent" from a zero override, matching the CLI's
// sentinel of -1.
type RunOptions struct {
	DQ        *int   `json:"dq,omitempty"`
	Ckpt      *int   `json:"ckpt,omitempty"`
	SSB       *int   `json:"ssb,omitempty"`
	MemLat    *int   `json:"memlat,omitempty"`
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	Timeout   string `json:"timeout,omitempty"` // Go duration, e.g. "30s"
	Faults    string `json:"faults,omitempty"`  // faults.Parse syntax or "random:SEED"
}

// GridRequest is the body of POST /v1/grid.
type GridRequest struct {
	Exps  []string `json:"exps,omitempty"` // experiment ids; empty = all
	Scale string   `json:"scale,omitempty"`
	Async bool     `json:"async,omitempty"`
}

// AsyncAccepted is the 202 body of an async grid submission.
type AsyncAccepted struct {
	ID     string `json:"id"`
	Result string `json:"result"` // poll URL
}

// parseScale maps the wire scale to workload.Scale; "" defaults to full
// like the CLIs.
func parseScale(s string) (workload.Scale, error) {
	switch s {
	case "", "full":
		return workload.ScaleFull, nil
	case "test":
		return workload.ScaleTest, nil
	}
	return 0, fmt.Errorf("bad scale %q (want test or full)", s)
}

// buildOptions applies a request's overrides to the runner's base
// options, exactly as sstsim maps its flags.
func (s *Server) buildOptions(ro *RunOptions) (sim.Options, error) {
	opts := s.run.BaseOptions()
	if ro == nil {
		return opts, nil
	}
	if ro.DQ != nil {
		opts.SST.DQSize = *ro.DQ
	}
	if ro.Ckpt != nil {
		opts.SST.Checkpoints = *ro.Ckpt
	}
	if ro.SSB != nil {
		opts.SST.SSBSize = *ro.SSB
	}
	if ro.MemLat != nil && *ro.MemLat > 0 {
		opts.Hier.DRAM.Latency = *ro.MemLat
	}
	if ro.MaxCycles > 0 {
		opts.MaxCycles = ro.MaxCycles
	}
	if ro.Timeout != "" {
		d, err := time.ParseDuration(ro.Timeout)
		if err != nil {
			return opts, fmt.Errorf("bad timeout: %v", err)
		}
		opts.Timeout = d
	}
	if ro.Faults != "" {
		plan, err := parseFaults(ro.Faults)
		if err != nil {
			return opts, err
		}
		opts.Faults = plan
	}
	return opts, nil
}

// parseFaults accepts the same forms as the sstsim -faults flag.
func parseFaults(spec string) (*faults.Plan, error) {
	if rest, ok := strings.CutPrefix(spec, "random:"); ok {
		seed, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad random faults seed %q: %v", rest, err)
		}
		return faults.Random(seed, 1_000_000), nil
	}
	return faults.Parse(spec)
}

// admit takes an admission slot, or explains over HTTP why it could
// not. The caller must release() exactly when ok.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (release func(), ok bool) {
	if s.draining.Load() {
		s.reg.Counter("serve/rejected_draining").Inc()
		s.log.Warn("request refused: draining", "id", RequestID(ctx))
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new work")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.reg.Counter("serve/rejected_busy").Inc()
		secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		s.log.Warn("request refused: queue full", "id", RequestID(ctx), "retry_after_s", secs)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d in flight); retry after %ds", s.cfg.QueueDepth, secs))
		return nil, false
	}
	s.wg.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.sem
			s.wg.Done()
		})
	}, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	s.reg.Counter("serve/run_requests").Inc()
	_, as := obs.StartSpan(ctx, "admission")
	release, ok := s.admit(ctx, w)
	as.End()
	if !ok {
		return
	}
	defer release()

	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	kind, err := sim.KindByName(req.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := workload.Build(req.Workload, scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := s.buildOptions(req.Options)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Fresh per-cell registry, exactly like sstsim -json: the report's
	// metrics block comes from the run itself. On a cache hit the cached
	// outcome carries the registry of the original compute — same
	// deterministic contents, so hit and miss responses are identical.
	reg := obs.NewRegistry()
	opts.Metrics = reg

	s.inflight.Add(1)
	t0 := time.Now()
	out, err := s.run.RunCellCtx(ctx, kind, spec, opts)
	computeUs := time.Since(t0).Microseconds()
	s.inflight.Add(-1)
	// X-Compute-Us is the server-side cell time (queue wait + cache or
	// compute), traced or not; rockload subtracts it from client TTFB to
	// separate network/daemon overhead from simulation time.
	w.Header().Set("X-Compute-Us", strconv.FormatInt(computeUs, 10))
	if err != nil {
		s.reg.Counter("serve/run_errors").Inc()
		s.log.Error("run failed", "id", RequestID(ctx), "kind", req.Kind,
			"workload", req.Workload, "err", err)
		code := http.StatusInternalServerError
		if errors.Is(err, cpu.ErrDeadline) {
			code = http.StatusGatewayTimeout
		}
		httpError(w, code, err.Error())
		return
	}
	_, bs := obs.StartSpan(ctx, "assemble")
	var buf bytes.Buffer
	if err := sim.NewReport(out).WriteJSON(&buf); err != nil {
		bs.End()
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	bs.End()
	s.publishRunCPI(out)
	s.reg.Counter("serve/cells_served").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// publishRunCPI folds a served cell's cycle-accounting stack,
// transient-leakage counters and branch-predictor counters into the
// service metrics, so /metrics exposes where the daemon's simulated
// cycles went — and how much secret-tainted speculation and deferred-
// branch training it executed — across all requests (cached cells count
// once per serve, matching cells_served).
func (s *Server) publishRunCPI(out sim.Outcome) {
	if out.Core != nil {
		b := out.Core.Base()
		for bk := cpu.Bucket(0); bk < cpu.NumBuckets; bk++ {
			if b.CPI[bk] > 0 {
				s.reg.Counter("sim/cpi/" + bk.String()).Add(b.CPI[bk])
			}
		}
	}
	if out.Mach != nil && out.Mach.Hier != nil {
		hs := out.Mach.Hier.Stats
		s.reg.Counter("leak/tainted_accesses").Add(hs.TaintedSpecAccesses)
		s.reg.Counter("leak/squashed_spec_fills").Add(hs.SquashedSpecFills)
		s.reg.Counter("leak/oracle_checks").Add(hs.OracleChecks)
	}
	if out.Mach != nil && out.Mach.Pred != nil {
		ps := out.Mach.Pred.Stats
		s.reg.Counter("bpred/dir_lookups").Add(ps.DirLookups)
		s.reg.Counter("bpred/dir_mispredicts").Add(ps.DirMispredict)
		s.reg.Counter("bpred/btb_lookups").Add(ps.BTBLookups)
		s.reg.Counter("bpred/btb_misses").Add(ps.BTBMisses)
		s.reg.Counter("bpred/deferred_dir_trains").Add(ps.DeferredDirTrains)
		s.reg.Counter("bpred/deferred_target_trains").Add(ps.DeferredTargetTrains)
		s.reg.Counter("bpred/tage_provider_hits").Add(ps.TageProviderHits)
		s.reg.Counter("bpred/tage_allocs").Add(ps.TageAllocs)
	}
}

// handleCell computes one cell for a fleet router. Admission control,
// drain behavior, X-Compute-Us and the cancellation path are identical
// to /v1/run; what differs is the payload: complete options arrive on
// the wire (no base-option merge, so the router's per-cell overrides
// survive exactly) and a sim.CellStats snapshot goes back instead of
// the rendered report. A simulation error that would render as an
// ERR(reason) cell is returned as a 200 with the class and exact
// message in the body; the router rebuilds it with
// experiments.NewRemoteError so the assembled grid is byte-identical
// to a single-node run.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	s.reg.Counter("serve/cell_requests").Inc()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()

	var req CellRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	kind, err := sim.KindByName(req.Kind)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := workload.Build(req.Workload, scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := req.Options.Options()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.inflight.Add(1)
	t0 := time.Now()
	out, err := s.run.RunCellCtx(ctx, kind, spec, opts)
	computeUs := time.Since(t0).Microseconds()
	s.inflight.Add(-1)
	w.Header().Set("X-Compute-Us", strconv.FormatInt(computeUs, 10))
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		// Deliberately 200: the failure is a property of the cell, not of
		// this shard, and must not trigger router failover (which would
		// recompute the same failure elsewhere).
		s.reg.Counter("serve/cell_errors").Inc()
		s.log.Warn("cell failed", "id", RequestID(ctx), "kind", req.Kind,
			"workload", req.Workload, "err", err)
		json.NewEncoder(w).Encode(CellResponse{
			ErrClass: experiments.ErrClass(err),
			ErrMsg:   err.Error(),
		})
		return
	}
	s.publishRunCPI(out)
	s.reg.Counter("serve/cells_served").Inc()
	json.NewEncoder(w).Encode(CellResponse{Cell: sim.SnapshotCell(out)})
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("serve/grid_requests").Inc()
	release, ok := s.admit(r.Context(), w)
	if !ok {
		return
	}
	// Released inline on the sync path, by the worker on the async path.
	var req GridRequest
	if err := decodeJSON(r, &req); err != nil {
		release()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ids := req.Exps
	if len(ids) == 0 {
		ids = experiments.All
	}
	for _, id := range ids {
		if !knownExperiment(id) {
			release()
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown experiment %q", id))
			return
		}
	}
	scale, err := parseScale(req.Scale)
	if err != nil {
		release()
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	if req.Async {
		job, id := s.newJob()
		go func() {
			defer release()
			status, body := s.computeGrid(ids, scale)
			s.finishJob(id, job, status, body)
		}()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(AsyncAccepted{ID: id, Result: "/v1/result/" + id})
		return
	}

	defer release()
	status, body := s.computeGrid(ids, scale)
	if status != http.StatusOK {
		httpError(w, status, string(body))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body)
}

// computeGrid regenerates the listed experiments in order. The success
// body is byte-identical to `sstbench -exp <ids>` with the wall-clock
// "(… regenerated in …)" lines removed: each result rendered by
// Result.Fprint followed by the blank separator line.
func (s *Server) computeGrid(ids []string, scale workload.Scale) (status int, body []byte) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var buf bytes.Buffer
	for _, id := range ids {
		res, err := s.run.Run(id, scale)
		if err != nil {
			s.reg.Counter("serve/grid_errors").Inc()
			s.log.Error("grid failed", "exp", id, "err", err)
			if errors.Is(err, cpu.ErrDeadline) {
				return http.StatusGatewayTimeout, []byte(err.Error())
			}
			return http.StatusInternalServerError, []byte(err.Error())
		}
		res.Fprint(&buf)
		fmt.Fprintln(&buf)
	}
	s.reg.Counter("serve/grids_served").Inc()
	return http.StatusOK, buf.Bytes()
}

func knownExperiment(id string) bool {
	for _, k := range experiments.All {
		if k == id {
			return true
		}
	}
	return false
}

// newJob registers a fresh async job and returns it with its id.
func (s *Server) newJob() (*gridJob, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("g%06d", s.nextID)
	job := &gridJob{done: make(chan struct{})}
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job, id
}

// finishJob publishes an async result and evicts the oldest finished
// results beyond the retention bound.
func (s *Server) finishJob(id string, job *gridJob, status int, body []byte) {
	s.mu.Lock()
	job.status, job.body = status, body
	finished := 0
	for _, jid := range s.order {
		if j := s.jobs[jid]; j != nil && (j == job || isDone(j)) {
			finished++
		}
	}
	for i := 0; i < len(s.order) && finished > maxFinishedJobs; {
		jid := s.order[i]
		j := s.jobs[jid]
		if j != nil && j != job && isDone(j) {
			delete(s.jobs, jid)
			s.order = append(s.order[:i], s.order[i+1:]...)
			finished--
			continue
		}
		i++
	}
	s.mu.Unlock()
	close(job.done)
}

func isDone(j *gridJob) bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown result id %q", id))
		return
	}
	if !isDone(job) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"state": "running"})
		return
	}
	if job.status != http.StatusOK {
		httpError(w, job.status, string(job.body))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(job.body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.run.CacheStats()
	reused, built := s.run.PoolStats()
	s.reg.Counter("serve/cache_hits").Set(hits)
	s.reg.Counter("serve/cache_misses").Set(misses)
	s.reg.Counter("serve/pool_reused").Set(reused)
	s.reg.Counter("serve/pool_built").Set(built)
	s.reg.Gauge("serve/queue_depth").Set(int64(len(s.sem)))
	s.reg.Gauge("serve/inflight_runs").Set(s.inflight.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WriteProm(w); err != nil {
		// Headers are gone; nothing more to do than note it.
		s.reg.Counter("serve/metrics_errors").Inc()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	hits, misses := s.run.CacheStats()
	reused, built := s.run.PoolStats()
	body := map[string]any{
		"ok":            !s.draining.Load(),
		"draining":      s.draining.Load(),
		"shard_id":      s.cfg.ShardID,
		"queue_depth":   len(s.sem),
		"queue_limit":   s.cfg.QueueDepth,
		"inflight_runs": s.inflight.Load(),
		"cache_hits":    hits,
		"cache_misses":  misses,
		"pool_reused":   reused,
		"pool_built":    built,
	}
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(body)
}

// decodeJSON reads a request body strictly: unknown fields are errors,
// so a typo'd option never silently runs a default simulation.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
