package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rocksim/internal/experiments"
	"rocksim/internal/obs"
)

// stepClock returns a deterministic clock: each call advances one
// millisecond from a fixed base, so span exports are byte-stable.
func stepClock() func() time.Time {
	base := time.Unix(1_700_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

// postRun sends a /v1/run request, optionally with X-Trace: 1.
func postRun(t *testing.T, base, body string, traced bool) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traced {
		req.Header.Set("X-Trace", "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// fetchSpans retrieves /v1/trace/{id}?format=spans as a flat span list.
func fetchSpans(t *testing.T, base, id string) []obs.SpanSnap {
	t.Helper()
	resp, body := get(t, base, "/v1/trace/"+id+"?format=spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d: %s", id, resp.StatusCode, body)
	}
	var out struct {
		Spans []obs.SpanSnap `json:"spans"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("trace %s: bad JSON: %v\n%s", id, err, body)
	}
	return out.Spans
}

func attr(s obs.SpanSnap, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracedRequestSpanTree is the tentpole acceptance test: a traced
// /v1/run yields a root "request" span covering child spans for
// admission, queue-wait, cache lookup, compute (with the simulator's
// own sim-run nested inside), and response assembly.
func TestTracedRequestSpanTree(t *testing.T) {
	r := experiments.NewRunner()
	r.SetJobs(2)
	ts := httptest.NewServer(New(Config{Clock: stepClock()}, r))
	defer ts.Close()

	resp, body := postRun(t, ts.URL, `{"kind":"sst","workload":"chase","scale":"test"}`, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("traced run response missing X-Request-ID")
	}
	if resp.Header.Get("X-Compute-Us") == "" {
		t.Error("run response missing X-Compute-Us")
	}

	spans := fetchSpans(t, ts.URL, id)
	byName := map[string]obs.SpanSnap{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["request"]
	if !ok {
		t.Fatalf("no root request span in %v", spans)
	}
	if root.Parent != 0 {
		t.Errorf("request span has parent %d, want root", root.Parent)
	}
	if got := attr(root, "id"); got != id {
		t.Errorf("request span id attr %q, want %q", got, id)
	}
	if got := attr(root, "status"); got != "200" {
		t.Errorf("request span status attr %q, want 200", got)
	}

	for _, name := range []string{"admission", "queue-wait", "cache-lookup", "compute", "assemble"} {
		s, ok := byName[name]
		if !ok {
			t.Errorf("missing %s span", name)
			continue
		}
		if s.Parent != root.ID {
			t.Errorf("%s span parent %d, want request %d", name, s.Parent, root.ID)
		}
		if s.StartUs < root.StartUs || s.StartUs+s.DurUs > root.StartUs+root.DurUs {
			t.Errorf("%s span [%d,+%d] outside request [%d,+%d]",
				name, s.StartUs, s.DurUs, root.StartUs, root.DurUs)
		}
	}
	sr, ok := byName["sim-run"]
	if !ok {
		t.Fatal("missing sim-run span")
	}
	if sr.Parent != byName["compute"].ID {
		t.Errorf("sim-run parent %d, want compute %d", sr.Parent, byName["compute"].ID)
	}
	if got := attr(sr, "kind"); got != "sst" {
		t.Errorf("sim-run kind attr %q, want sst", got)
	}
	if attr(sr, "cycles") == "" {
		t.Error("sim-run span missing cycles attr")
	}
	if got := attr(byName["cache-lookup"], "hit"); got != "false" {
		t.Errorf("cache-lookup hit attr %q, want false on first request", got)
	}

	// A cache hit gets cache-lookup hit=true and neither compute nor
	// cache-join (the fill already finished).
	resp, _ = postRun(t, ts.URL, `{"kind":"sst","workload":"chase","scale":"test"}`, true)
	spans = fetchSpans(t, ts.URL, resp.Header.Get("X-Request-ID"))
	names := map[string]bool{}
	var hit string
	for _, s := range spans {
		names[s.Name] = true
		if s.Name == "cache-lookup" {
			hit = attr(s, "hit")
		}
	}
	if hit != "true" {
		t.Errorf("cached request cache-lookup hit attr %q, want true", hit)
	}
	if names["compute"] || names["cache-join"] {
		t.Errorf("cached request spans %v include compute or cache-join", names)
	}

	// Untraced requests do not appear in the ring.
	resp, _ = postRun(t, ts.URL, `{"kind":"sst","workload":"chase","scale":"test"}`, false)
	tr, body := get(t, ts.URL, "/v1/trace/"+resp.Header.Get("X-Request-ID"))
	if tr.StatusCode != http.StatusNotFound {
		t.Errorf("trace of untraced request: status %d, want 404: %s", tr.StatusCode, body)
	}
}

// TestTraceByteIdentity: tracing must never change a response body —
// neither on the computing request nor on the cached one.
func TestTraceByteIdentity(t *testing.T) {
	req := `{"kind":"inorder","workload":"oltp","scale":"test"}`

	plain := httptest.NewServer(New(Config{}, experiments.NewRunner()))
	defer plain.Close()
	traced := httptest.NewServer(New(Config{Trace: true}, experiments.NewRunner()))
	defer traced.Close()

	_, wantBody := postRun(t, plain.URL, req, false)
	_, gotCold := postRun(t, traced.URL, req, true)
	if !bytes.Equal(gotCold, wantBody) {
		t.Errorf("traced compute body differs from untraced body:\ngot:  %.200s\nwant: %.200s", gotCold, wantBody)
	}
	_, gotWarm := postRun(t, traced.URL, req, true)
	if !bytes.Equal(gotWarm, wantBody) {
		t.Errorf("traced cache-hit body differs from untraced body")
	}
}

// TestTraceExportDeterminism: two identical servers driven by the same
// fake clock and the same request produce byte-identical trace exports
// in both formats.
func TestTraceExportDeterminism(t *testing.T) {
	req := `{"kind":"sst-ea","workload":"chase","scale":"test"}`
	export := func() (spans, chrome []byte) {
		ts := httptest.NewServer(New(Config{Clock: stepClock()}, experiments.NewRunner()))
		defer ts.Close()
		resp, body := postRun(t, ts.URL, req, true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run: status %d: %s", resp.StatusCode, body)
		}
		id := resp.Header.Get("X-Request-ID")
		_, spans = get(t, ts.URL, "/v1/trace/"+id+"?format=spans")
		_, chrome = get(t, ts.URL, "/v1/trace/"+id)
		return spans, chrome
	}
	s1, c1 := export()
	s2, c2 := export()
	if !bytes.Equal(s1, s2) {
		t.Errorf("span exports differ:\n%s\n----\n%s", s1, s2)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("chrome exports differ:\n%s\n----\n%s", c1, c2)
	}
}

// TestTraceRingEviction: the finished-trace ring is bounded; the
// oldest trace falls out once the ring is full.
func TestTraceRingEviction(t *testing.T) {
	r := experiments.NewRunner()
	// Trace via the per-request header, not Config.Trace, so the
	// /v1/trace GETs below do not themselves enter the ring.
	ts := httptest.NewServer(New(Config{TraceRing: 2}, r))
	defer ts.Close()

	req := `{"kind":"inorder","workload":"chase","scale":"test"}`
	var ids []string
	for i := 0; i < 3; i++ {
		resp, _ := postRun(t, ts.URL, req, true)
		ids = append(ids, resp.Header.Get("X-Request-ID"))
	}
	if resp, _ := get(t, ts.URL, "/v1/trace/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest trace still present: status %d, want 404", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp, _ := get(t, ts.URL, "/v1/trace/"+id); resp.StatusCode != http.StatusOK {
			t.Errorf("trace %s evicted early: status %d", id, resp.StatusCode)
		}
	}
}
