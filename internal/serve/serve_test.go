package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rocksim/internal/cpu"
	"rocksim/internal/experiments"
	"rocksim/internal/obs"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// postJSON sends body to path and returns the response.
func postJSON(t *testing.T, base, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	return resp, data
}

func get(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, data
}

// TestRunByteIdentity proves the core service contract: a /v1/run
// response is byte-for-byte what `sstsim -json` prints for the same
// cell, and a repeat request (a cache hit) returns the same bytes.
func TestRunByteIdentity(t *testing.T) {
	r := experiments.NewRunner()
	r.SetJobs(2)
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	req := `{"kind":"sst","workload":"chase","scale":"test"}`
	resp, got := postJSON(t, ts.URL, "/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("run: Content-Type %q", ct)
	}

	// Reference: exactly what cmd/sstsim does under -json.
	spec, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	opts.Metrics = obs.NewRegistry()
	out, err := sim.Run(sim.KindSST, spec.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sim.NewReport(out).WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("run response differs from sstsim -json bytes:\ngot  %d bytes\nwant %d bytes\ngot:  %.200s\nwant: %.200s",
			len(got), want.Len(), got, want.Bytes())
	}

	_, again := postJSON(t, ts.URL, "/v1/run", req)
	if !bytes.Equal(again, got) {
		t.Fatal("second (cached) run response differs from the first")
	}
	hits, misses := r.CacheStats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestRunTimeoutPropagation: a request-level wall-clock timeout reaches
// the simulation watchdog and surfaces as 504.
func TestRunTimeoutPropagation(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	req := `{"kind":"sst","workload":"chase","scale":"test","options":{"timeout":"1ns"}}`
	resp, body := postJSON(t, ts.URL, "/v1/run", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], "deadline") {
		t.Fatalf("error body %s does not name the deadline", body)
	}
}

// TestRunValidation covers the 4xx surface.
func TestRunValidation(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
	}{
		{"bad kind", `{"kind":"vliw","workload":"chase"}`},
		{"bad workload", `{"kind":"sst","workload":"nope"}`},
		{"bad scale", `{"kind":"sst","workload":"chase","scale":"huge"}`},
		{"unknown field", `{"kind":"sst","workload":"chase","slacle":"test"}`},
		{"bad faults", `{"kind":"sst","workload":"chase","options":{"faults":"wat@@"}}`},
		{"bad timeout", `{"kind":"sst","workload":"chase","options":{"timeout":"soon"}}`},
	} {
		resp, body := postJSON(t, ts.URL, "/v1/run", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
		}
	}

	resp, _ := get(t, ts.URL, "/v1/run")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL, "/v1/grid", `{"exps":["F99"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment: status %d, want 400", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL, "/v1/result/g999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", resp.StatusCode)
	}
}

// gridRef regenerates ids on a fresh serial Runner, rendering exactly
// what `sstbench -j 1` prints minus its wall-clock lines.
func gridRef(t *testing.T, ids []string, scale workload.Scale) []byte {
	t.Helper()
	r := experiments.NewRunner()
	r.SetJobs(1)
	var want bytes.Buffer
	for _, id := range ids {
		res, err := r.Run(id, scale)
		if err != nil {
			t.Fatalf("reference %s: %v", id, err)
		}
		res.Fprint(&want)
		fmt.Fprintln(&want)
	}
	return want.Bytes()
}

// TestGridByteIdentity: a /v1/grid response matches the serial sstbench
// reference byte for byte, concurrency and caching notwithstanding.
func TestGridByteIdentity(t *testing.T) {
	ids := []string{"T1", "F3"}
	r := experiments.NewRunner()
	r.SetJobs(4)
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	resp, got := postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1","F3"],"scale":"test"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d: %s", resp.StatusCode, got)
	}
	want := gridRef(t, ids, workload.ScaleTest)
	if !bytes.Equal(got, want) {
		t.Fatalf("grid response differs from serial sstbench reference:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGridAsync: the async path accepts immediately, reports running,
// and serves the same bytes as the sync path once done.
func TestGridAsync(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	resp, body := postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1"],"scale":"test","async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async grid: status %d: %s", resp.StatusCode, body)
	}
	var acc AsyncAccepted
	if err := json.Unmarshal(body, &acc); err != nil || acc.ID == "" {
		t.Fatalf("async grid: bad 202 body %s", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	var got []byte
	for {
		resp, b := get(t, ts.URL, acc.Result)
		if resp.StatusCode == http.StatusOK {
			got = b
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll: status %d: %s", resp.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("async grid did not finish in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := gridRef(t, []string{"T1"}, workload.ScaleTest)
	if !bytes.Equal(got, want) {
		t.Fatalf("async grid result differs from reference:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// fakeRunner blocks every computation until release is closed, so the
// backpressure and drain tests control exactly how many requests are in
// flight. started receives one signal per computation begun.
type fakeRunner struct {
	started chan struct{}
	release chan struct{}
	cellErr error
}

func (f *fakeRunner) RunCellCtx(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	f.started <- struct{}{}
	<-f.release
	return sim.Outcome{}, f.cellErr
}

func (f *fakeRunner) Run(id string, scale workload.Scale) (*experiments.Result, error) {
	f.started <- struct{}{}
	<-f.release
	return &experiments.Result{ID: id, Title: "fake"}, nil
}

func (f *fakeRunner) BaseOptions() sim.Options     { return sim.DefaultOptions() }
func (f *fakeRunner) CacheStats() (uint64, uint64) { return 0, 0 }
func (f *fakeRunner) PoolStats() (uint64, uint64)  { return 0, 0 }

// TestBackpressure fills the admission queue and proves the next
// request is refused with 429 and a Retry-After hint rather than
// queueing without bound — and that the admitted requests complete.
func TestBackpressure(t *testing.T) {
	fake := &fakeRunner{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := newServer(Config{QueueDepth: 2, RetryAfter: 3 * time.Second}, fake)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1"]}`)
			codes[i] = resp.StatusCode
		}(i)
	}
	// Both admitted requests are inside the fake before we overflow.
	<-fake.started
	<-fake.started

	resp, body := postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After %q, want \"3\"", ra)
	}

	close(fake.release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, c)
		}
	}
}

// TestDrain: StartDrain refuses new work with 503 while the in-flight
// async grid runs to completion, Wait blocks until it has, and the
// result remains retrievable afterwards.
func TestDrain(t *testing.T) {
	fake := &fakeRunner{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := newServer(Config{}, fake)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1"],"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async grid: status %d: %s", resp.StatusCode, body)
	}
	var acc AsyncAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	<-fake.started

	s.StartDrain()
	resp, _ = postJSON(t, ts.URL, "/v1/grid", `{"exps":["T1"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("grid while draining: status %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL, "/v1/run", `{"kind":"sst","workload":"chase"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run while draining: status %d, want 503", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	// The queued job is still running, not dropped.
	resp, _ = get(t, ts.URL, acc.Result)
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("poll while draining: status %d, want 202", resp.StatusCode)
	}

	close(fake.release)
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return after the in-flight job finished")
	}
	resp, got := get(t, ts.URL, acc.Result)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after drain: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(got), "---- T1: fake ----") {
		t.Errorf("drained result body %q missing the fake grid", got)
	}
}

// TestRunDeadlineMapsTo504 uses the runner seam to pin the error
// mapping without a wall-clock dependency.
func TestRunDeadlineMapsTo504(t *testing.T) {
	fake := &fakeRunner{
		started: make(chan struct{}, 1),
		release: make(chan struct{}),
		cellErr: fmt.Errorf("cell: %w", cpu.ErrDeadline),
	}
	close(fake.release)
	ts := httptest.NewServer(newServer(Config{}, fake))
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL, "/v1/run", `{"kind":"sst","workload":"chase"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestMetricsAndHealth: /metrics exposes service counters and cache
// stats in Prometheus text form; /healthz is green while serving.
func TestMetricsAndHealth(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	resp, body := get(t, ts.URL, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}

	postJSON(t, ts.URL, "/v1/run", `{"kind":"inorder","workload":"chase","scale":"test"}`)
	resp, body = get(t, ts.URL, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"rocksim_serve_run_requests 1",
		"rocksim_serve_cells_served 1",
		"rocksim_serve_cache_misses 1",
		// Transient-leakage counters fold in per served cell (zero for a
		// secret-free workload, but always present once a cell is served).
		"rocksim_leak_tainted_accesses ",
		"rocksim_leak_squashed_spec_fills ",
		"rocksim_leak_oracle_checks ",
		// Predictor counters fold in per served cell the same way; a
		// branchy workload always looks up directions.
		"rocksim_bpred_dir_lookups ",
		"rocksim_bpred_dir_mispredicts ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
