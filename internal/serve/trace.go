package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"rocksim/internal/obs"
)

// This file is the request-scoped observability of the service: the
// middleware that assigns (or echoes) X-Request-ID, opens the root span
// of a traced request, emits the structured request start/end log
// lines, and the bounded ring of finished traces behind GET
// /v1/trace/{id}.

// DefaultTraceRing bounds retained finished traces; the oldest are
// evicted first.
const DefaultTraceRing = 64

type requestIDCtxKey struct{}

// RequestID returns the id the middleware assigned to this request
// ("" outside a request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}

// statusRecorder captures the handler's status code for the end-of-
// request log line and root span.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// traceEnabled reports whether this request should be traced: always
// when the server was configured with Trace, or per request via the
// X-Trace: 1 header.
func (s *Server) traceEnabled(r *http.Request) bool {
	return s.cfg.Trace || r.Header.Get("X-Trace") == "1"
}

// ServeHTTP implements http.Handler: every request gets an id (the
// client's X-Request-ID if it sent one, a generated one otherwise),
// echoed back in the response header and carried on the context for
// log attribution. Traced requests additionally get a per-request
// obs.Tracer with a root "request" span covering the handler; the
// finished tree lands in the trace ring under the request id.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = fmt.Sprintf("r%08d", s.reqID.Add(1))
	}
	w.Header().Set("X-Request-ID", id)
	ctx := context.WithValue(r.Context(), requestIDCtxKey{}, id)
	var tr *obs.Tracer
	var root *obs.Span
	if s.traceEnabled(r) {
		tr = obs.NewTracerClock(s.clock)
		ctx = obs.WithTracer(ctx, tr)
		ctx, root = obs.StartSpan(ctx, "request")
		root.SetAttr("id", id)
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
	}
	s.log.LogAttrs(ctx, slog.LevelInfo, "request start",
		slog.String("id", id), slog.String("method", r.Method), slog.String("path", r.URL.Path))
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(rec, r.WithContext(ctx))
	if root != nil {
		root.SetAttr("status", strconv.Itoa(rec.code))
		root.End()
		s.storeTrace(id, tr)
	}
	s.log.LogAttrs(ctx, slog.LevelInfo, "request end",
		slog.String("id", id), slog.Int("status", rec.code),
		slog.Int64("dur_us", time.Since(start).Microseconds()))
}

// storeTrace retains a finished trace under the request id, evicting
// the oldest beyond the ring bound. A repeated id (a client reusing
// X-Request-ID) overwrites its previous trace without growing the ring.
func (s *Server) storeTrace(id string, tr *obs.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.traces[id]; !ok {
		s.traceOrder = append(s.traceOrder, id)
	}
	s.traces[id] = tr
	for len(s.traceOrder) > s.traceRing() {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
}

func (s *Server) traceRing() int {
	if s.cfg.TraceRing > 0 {
		return s.cfg.TraceRing
	}
	return DefaultTraceRing
}

// handleTrace serves a finished request's span tree: Chrome trace_event
// JSON by default, the flat span list with ?format=spans.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tr := s.traces[id]
	s.mu.Unlock()
	if tr == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no trace for request id %q (traced requests only; ring keeps the last %d)", id, s.traceRing()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	var err error
	if r.URL.Query().Get("format") == "spans" {
		err = tr.WriteSpans(w)
	} else {
		err = tr.WriteChrome(w)
	}
	if err != nil {
		s.reg.Counter("serve/trace_errors").Inc()
	}
}
