package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"rocksim/internal/cpu"
	"rocksim/internal/experiments"
	"rocksim/internal/faults"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

func cellBody(t *testing.T, opts sim.Options) string {
	t.Helper()
	b, err := json.Marshal(CellRequest{
		Kind:     "sst",
		Workload: "chase",
		Scale:    "test",
		Options:  WireFromOptions(opts),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCellSuccess: /v1/cell returns the statistics snapshot of the cell
// run, identical to what a local run of the same complete options
// produces.
func TestCellSuccess(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	opts := sim.DefaultOptions()
	resp, body := postJSON(t, ts.URL, "/v1/cell", cellBody(t, opts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Compute-Us") == "" {
		t.Error("no X-Compute-Us header")
	}
	var cr CellResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ErrClass != "" || cr.Cell == nil {
		t.Fatalf("response not a success snapshot: %+v", cr)
	}

	spec, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(sim.KindSST, spec.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.SnapshotCell(out)
	if cr.Cell.Cycles != want.Cycles || cr.Cell.Retired != want.Retired || cr.Cell.Kind != want.Kind {
		t.Fatalf("snapshot differs from local run: got (%s,%d,%d) want (%s,%d,%d)",
			cr.Cell.Kind, cr.Cell.Cycles, cr.Cell.Retired, want.Kind, want.Cycles, want.Retired)
	}
	if cr.Cell.Base != want.Base {
		t.Errorf("base stats differ:\nremote %+v\nlocal  %+v", cr.Cell.Base, want.Base)
	}
}

// TestCellDeterministicError: a simulation failure is a 200 with the
// error class and exact message in the body — it is a property of the
// cell, not the shard, so it must not look like shard unavailability.
func TestCellDeterministicError(t *testing.T) {
	fake := &fakeRunner{
		started: make(chan struct{}, 8),
		release: make(chan struct{}),
		cellErr: fmt.Errorf("cell: %w", cpu.ErrDeadline),
	}
	close(fake.release)
	ts := httptest.NewServer(newServer(Config{}, fake))
	defer ts.Close()

	resp, body := postJSON(t, ts.URL, "/v1/cell", cellBody(t, sim.DefaultOptions()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with in-body error; body: %s", resp.StatusCode, body)
	}
	var cr CellResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cell != nil {
		t.Fatalf("failed cell carried a snapshot: %+v", cr)
	}
	if cr.ErrClass != experiments.ErrClassDeadline {
		t.Errorf("err class %q, want %q", cr.ErrClass, experiments.ErrClassDeadline)
	}
	if cr.ErrMsg != "cell: "+cpu.ErrDeadline.Error() {
		t.Errorf("err msg %q does not preserve the origin text", cr.ErrMsg)
	}
}

// TestCellFingerprintMismatch: a wire body whose options no longer match
// their recorded fingerprint is a protocol bug and must be refused, not
// simulated.
func TestCellFingerprintMismatch(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	w := WireFromOptions(sim.DefaultOptions())
	w.MaxCycles = 12345 // simulation-affecting edit after fingerprinting
	b, err := json.Marshal(CellRequest{Kind: "sst", Workload: "chase", Scale: "test", Options: w})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL, "/v1/cell", string(b))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e["error"] == "" {
		t.Fatalf("no error text in %s", body)
	}
}

// TestCellFaultPlanRoundTrip: a fault plan survives the wire in its
// canonical grammar; the shard's run sees the same plan a local run
// would.
func TestCellFaultPlanRoundTrip(t *testing.T) {
	r := experiments.NewRunner()
	ts := httptest.NewServer(New(Config{}, r))
	defer ts.Close()

	opts := sim.DefaultOptions()
	fp, err := faults.Parse("seed=7;mem-jitter@0-5000:32;ckpt-deny@100-200")
	if err != nil {
		t.Fatal(err)
	}
	opts.Faults = fp
	resp, body := postJSON(t, ts.URL, "/v1/cell", cellBody(t, opts))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CellResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Cell == nil {
		t.Fatalf("no snapshot: %+v", cr)
	}

	spec, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(sim.KindSST, spec.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Cell.Cycles != out.Cycles || cr.Cell.Retired != out.Retired {
		t.Fatalf("faulted cell differs from local faulted run: got (%d,%d) want (%d,%d)",
			cr.Cell.Cycles, cr.Cell.Retired, out.Cycles, out.Retired)
	}
}
