package serve

import (
	"fmt"
	"time"

	"rocksim/internal/bpred"
	"rocksim/internal/core"
	"rocksim/internal/faults"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/ooo"
	"rocksim/internal/sim"
)

// WireOptions is the full sim.Options on the wire: every simulation-
// affecting field, none of the observability hooks (a run is identical
// with or without them). The fleet router sends a grid cell's complete
// options to the owning shard through this shape, so per-cell overrides
// a driver applied (a DQ sweep's sizes, a security mode's switches, a
// fault plan) survive the hop exactly.
//
// Fingerprint is a consistency guard, not data: the sender records
// opts.Fingerprint() and the receiver recomputes it after decoding.
// A mismatch means a simulation-affecting field failed to round-trip —
// a protocol bug that must surface as a hard error, never as a silently
// different simulation.
type WireOptions struct {
	Hier           mem.HierConfig `json:"hier"`
	Pred           bpred.Config   `json:"pred"`
	InOrder        inorder.Config `json:"inorder"`
	OOO            ooo.Config     `json:"ooo"`
	OOOLg          ooo.Config     `json:"ooo_lg"`
	SST            core.Config    `json:"sst"`
	MaxCycles      uint64         `json:"max_cycles,omitempty"`
	TimeoutNS      int64          `json:"timeout_ns,omitempty"`
	LivelockWindow uint64         `json:"livelock_window,omitempty"`
	// Faults is the plan in its canonical grammar (faults.Plan.String);
	// empty means no plan.
	Faults        string `json:"faults,omitempty"`
	NoFastForward bool   `json:"no_fast_forward,omitempty"`
	Fingerprint   string `json:"fingerprint"`
}

// WireFromOptions encodes options for the wire, stamping the canonical
// fingerprint the receiver will verify.
func WireFromOptions(o sim.Options) WireOptions {
	return WireOptions{
		Hier:           o.Hier,
		Pred:           o.Pred,
		InOrder:        o.InOrder,
		OOO:            o.OOO,
		OOOLg:          o.OOOLg,
		SST:            o.SST,
		MaxCycles:      o.MaxCycles,
		TimeoutNS:      int64(o.Timeout),
		LivelockWindow: o.LivelockWindow,
		Faults:         o.Faults.String(),
		NoFastForward:  o.NoFastForward,
		Fingerprint:    o.Fingerprint(),
	}
}

// Options decodes the wire form and verifies the fingerprint guard.
func (w WireOptions) Options() (sim.Options, error) {
	o := sim.Options{
		Hier:           w.Hier,
		Pred:           w.Pred,
		InOrder:        w.InOrder,
		OOO:            w.OOO,
		OOOLg:          w.OOOLg,
		SST:            w.SST,
		MaxCycles:      w.MaxCycles,
		Timeout:        time.Duration(w.TimeoutNS),
		LivelockWindow: w.LivelockWindow,
		NoFastForward:  w.NoFastForward,
	}
	if w.Faults != "" {
		plan, err := faults.Parse(w.Faults)
		if err != nil {
			return o, fmt.Errorf("bad wire fault plan: %v", err)
		}
		o.Faults = plan
	}
	if got := o.Fingerprint(); got != w.Fingerprint {
		return o, fmt.Errorf("options fingerprint mismatch after decode: got %q want %q (a simulation-affecting field failed to round-trip)", got, w.Fingerprint)
	}
	return o, nil
}

// CellRequest is the body of POST /v1/cell: one grid cell computed for
// a fleet router. Unlike /v1/run (which applies sparse overrides to the
// shard's base options and returns the full report JSON), /v1/cell
// carries the complete options and returns only the statistics
// snapshot the router needs for table assembly.
type CellRequest struct {
	Kind     string      `json:"kind"`
	Workload string      `json:"workload"`
	Scale    string      `json:"scale,omitempty"`
	Options  WireOptions `json:"options"`
}

// CellResponse is the body of a 200 from POST /v1/cell. Exactly one of
// Cell and ErrClass is set: a deterministic simulation failure (a
// watchdog trip, a model panic) is a RESULT that must render as the
// same ERR cell on every node, so it rides in the body — only
// transport- and admission-level problems use HTTP status codes, which
// is what lets the router distinguish "this cell deterministically
// fails" (keep the error, byte-identical output) from "this shard is
// unavailable" (eject and retry on a survivor).
type CellResponse struct {
	Cell *sim.CellStats `json:"cell,omitempty"`
	// ErrClass classifies a failed cell (experiments.ErrClass taxonomy);
	// ErrMsg preserves the exact error text for the report's Errs lines.
	ErrClass string `json:"err_class,omitempty"`
	ErrMsg   string `json:"err_msg,omitempty"`
}
