// Package bpred implements the branch prediction substrate shared by all
// core models: a selectable direction predictor (gshare or TAGE-lite), a
// branch target buffer, and a return-address stack. SST additionally
// relies on the predictor for branches whose operands are not available
// (deferred branches); a wrong prediction there is discovered at replay
// time and costs a checkpoint rollback, so predictor quality directly
// bounds speculation depth.
//
// Training rule for deferred control flow: a deferred branch or jalr is
// PREDICTED at fetch time but TRAINED at replay resolution (see
// TrainDeferredDir/TrainDeferredTarget), with whatever global history the
// predictor holds at that point. Training is therefore resolution-order,
// not fetch-order — both predictor kinds re-derive their table indices
// from the current history at update time, and a rollback restores the
// fetch-path history through History/SetHistory, which cover the
// predictor's complete history state for both kinds.
//
// Multithreaded sharing: SMT strands and CMP cores obtain their
// predictors through NewGroup, which implements three policies — private
// per-strand tables (SharePartitioned), one table set indexed identically
// by every strand (ShareShared), and one table set with a per-strand
// index hash (ShareHashed). History, the RAS and statistics are always
// per strand; only the large direction/target tables are policy-managed.
// Strand 0's hash salt is zero, so with a single strand all three
// policies are bit-identical — sharing is unobservable without a second
// thread.
package bpred

import (
	"fmt"

	"rocksim/internal/obs"
)

// Kind selects the direction predictor algorithm.
type Kind int

// Direction predictor kinds. The zero value is gshare, the seed
// predictor, so existing configurations keep their exact behavior.
const (
	Gshare Kind = iota
	TAGE
)

func (k Kind) String() string {
	switch k {
	case Gshare:
		return "gshare"
	case TAGE:
		return "tage"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName parses a Kind from its String form.
func KindByName(s string) (Kind, error) {
	switch s {
	case "gshare":
		return Gshare, nil
	case "tage":
		return TAGE, nil
	}
	return 0, fmt.Errorf("bpred: unknown predictor kind %q", s)
}

// ShareMode selects how a group of hardware strands (SMT threads, CMP
// cores) shares predictor table state. See NewGroup.
type ShareMode int

// Share modes. The zero value is per-strand private tables, the seed
// behavior.
const (
	// SharePartitioned gives every strand its own tables.
	SharePartitioned ShareMode = iota
	// ShareShared indexes one table set identically from every strand:
	// maximum capacity per strand, maximum cross-strand interference.
	ShareShared
	// ShareHashed shares one table set but XORs a per-strand salt into
	// every index, spreading strands across the shared capacity so
	// same-pc branches in different strands rarely collide.
	ShareHashed
)

func (m ShareMode) String() string {
	switch m {
	case SharePartitioned:
		return "part"
	case ShareShared:
		return "shared"
	case ShareHashed:
		return "hashed"
	}
	return fmt.Sprintf("share(%d)", int(m))
}

// ShareModeByName parses a ShareMode from its String form.
func ShareModeByName(s string) (ShareMode, error) {
	switch s {
	case "part":
		return SharePartitioned, nil
	case "shared":
		return ShareShared, nil
	case "hashed":
		return ShareHashed, nil
	}
	return 0, fmt.Errorf("bpred: unknown share mode %q", s)
}

// Config sizes the predictor structures.
type Config struct {
	// Kind selects the direction predictor algorithm (gshare or TAGE).
	Kind Kind
	// Share selects the multi-strand table sharing policy (see NewGroup).
	Share ShareMode
	// GshareBits is log2 of the pattern history table size. Under TAGE
	// the same table serves as the pc-indexed base bimodal predictor.
	GshareBits int
	// BTBEntries is the number of direct-mapped BTB entries.
	BTBEntries int
	// RASDepth is the return-address stack depth.
	RASDepth int
	// TageTables is the number of tagged geometric-history tables (1-6).
	TageTables int
	// TageTableBits is log2 of each tagged table's entry count.
	TageTableBits int
	// TageTagBits is the partial tag width stored per tagged entry.
	TageTagBits int
}

// DefaultConfig returns a 2009-era predictor: 16K-entry gshare,
// 2K-entry BTB, 8-deep RAS. The TAGE sizing (4 tagged 1K-entry tables
// with 9-bit tags over an 8/16/32/64-bit geometric history series) is
// filled in so flipping Kind alone yields a comparable-budget predictor.
func DefaultConfig() Config {
	return Config{
		Kind:          Gshare,
		Share:         SharePartitioned,
		GshareBits:    14,
		BTBEntries:    2048,
		RASDepth:      8,
		TageTables:    4,
		TageTableBits: 10,
		TageTagBits:   9,
	}
}

// withDefaults fills unset sizing fields, exactly as New always has.
func (c Config) withDefaults() Config {
	if c.GshareBits <= 0 {
		c.GshareBits = 14
	}
	if c.BTBEntries <= 0 {
		c.BTBEntries = 2048
	}
	if c.RASDepth <= 0 {
		c.RASDepth = 8
	}
	if c.TageTables <= 0 {
		c.TageTables = 4
	}
	if c.TageTables > 6 {
		c.TageTables = 6
	}
	if c.TageTableBits <= 0 {
		c.TageTableBits = 10
	}
	if c.TageTagBits <= 0 {
		c.TageTagBits = 9
	}
	if c.TageTagBits > 15 {
		c.TageTagBits = 15
	}
	return c
}

// Fingerprint canonically encodes the predictor configuration for
// run-cache and pool keys, field by field (see sim.Options.Fingerprint).
// Every knob discriminates: two runs differing only in kind or share
// mode can never share a cache or pool entry.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("bpred{kind=%s share=%s gshare=%d btb=%d ras=%d tagetbl=%d tagebits=%d tagetag=%d}",
		c.Kind, c.Share, c.GshareBits, c.BTBEntries, c.RASDepth,
		c.TageTables, c.TageTableBits, c.TageTagBits)
}

// Stats counts predictor events. It stays a flat comparable struct: the
// fast-forward purity check snapshots it and compares with != (see
// core/skip.go), so no field may be a slice, map or pointer.
type Stats struct {
	DirLookups    uint64
	DirMispredict uint64
	BTBLookups    uint64
	BTBMisses     uint64
	RASPushes     uint64
	RASPops       uint64
	// Deferred control flow trained at replay resolution (SST only).
	DeferredDirTrains    uint64
	DeferredTargetTrains uint64
	// TAGE internals: lookups answered by a tagged table (vs the base
	// bimodal), entries allocated on mispredict, allocations that found
	// no victim (and aged the candidates instead), decay sweeps.
	TageProviderHits uint64
	TageAllocs       uint64
	TageAllocFails   uint64
	TageDecays       uint64
}

// PublishObs publishes the predictor counters into r under bpred/*.
// No-op when r is nil.
func (s Stats) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("bpred/dir_lookups").Set(s.DirLookups)
	r.Counter("bpred/dir_mispredicts").Set(s.DirMispredict)
	r.Counter("bpred/btb_lookups").Set(s.BTBLookups)
	r.Counter("bpred/btb_misses").Set(s.BTBMisses)
	r.Counter("bpred/ras_pushes").Set(s.RASPushes)
	r.Counter("bpred/ras_pops").Set(s.RASPops)
	r.Counter("bpred/deferred_dir_trains").Set(s.DeferredDirTrains)
	r.Counter("bpred/deferred_target_trains").Set(s.DeferredTargetTrains)
	r.Counter("bpred/tage_provider_hits").Set(s.TageProviderHits)
	r.Counter("bpred/tage_allocs").Set(s.TageAllocs)
	r.Counter("bpred/tage_alloc_fails").Set(s.TageAllocFails)
	r.Counter("bpred/tage_decays").Set(s.TageDecays)
}

// tageDecayPeriod is the deterministic useful-bit aging interval: every
// this many direction updates through one table set, all useful counters
// are halved, so entries that stopped earning usefulness become
// allocation victims again as the branch working set drifts.
const tageDecayPeriod = 1 << 18

// tables is the table state a sharing group may pool: the PHT (gshare
// pattern table / TAGE base bimodal), the tagged geometric-history
// tables, and the BTB. Global history, the RAS and Stats live in the
// per-strand Predictor — real SMT hardware keeps those private too.
type tables struct {
	pht      []uint8 // 2-bit saturating counters
	btb      []btbEntry
	tage     [][]tageEntry // nil unless Kind == TAGE
	histLens []int         // geometric history length per tagged table
	updates  uint64        // direction updates, drives useful-bit decay
}

// tageEntry is one tagged-table slot: a partial tag, a 3-bit signed
// direction counter (>= 4 predicts taken) and a 2-bit useful counter
// guarding it from reallocation.
type tageEntry struct {
	tag uint16
	ctr uint8
	u   uint8
}

func newTables(cfg Config) *tables {
	t := &tables{
		pht: make([]uint8, 1<<cfg.GshareBits),
		btb: make([]btbEntry, cfg.BTBEntries),
	}
	// Weakly taken initial state.
	for i := range t.pht {
		t.pht[i] = 2
	}
	if cfg.Kind == TAGE {
		t.tage = make([][]tageEntry, cfg.TageTables)
		t.histLens = make([]int, cfg.TageTables)
		for i := range t.tage {
			t.tage[i] = make([]tageEntry, 1<<cfg.TageTableBits)
			// Geometric series ending at the full 64-bit history window:
			// 4 tables give 8/16/32/64. Longer histories live in
			// higher-numbered tables.
			l := 64 >> (cfg.TageTables - 1 - i)
			if l < 1 {
				l = 1
			}
			t.histLens[i] = l
		}
	}
	return t
}

func (t *tables) reset() {
	for i := range t.pht {
		t.pht[i] = 2
	}
	for i := range t.btb {
		t.btb[i] = btbEntry{}
	}
	for _, tbl := range t.tage {
		for i := range tbl {
			tbl[i] = tageEntry{}
		}
	}
	t.updates = 0
}

// Predictor combines direction, target and return-address prediction for
// one hardware strand. It is deliberately simple and deterministic:
// identical instruction streams produce identical predictions on every
// core model, so performance differences isolate the pipeline technique.
type Predictor struct {
	cfg   Config
	t     *tables
	ghr   uint64 // global history register, always per strand
	salt  uint64 // ShareHashed per-strand index salt (0 for strand 0)
	ras   []uint64
	rasSP int
	Stats Stats
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New builds a single-strand predictor (a group of one, so every share
// mode collapses to private tables).
func New(cfg Config) *Predictor {
	return NewGroup(cfg, 1)[0]
}

// NewGroup builds the predictors for n hardware strands under cfg.Share:
// partitioned strands get private table sets, shared/hashed strands pool
// one. Strand 0's hash salt is zero so a group of one is bit-identical
// across all three modes.
func NewGroup(cfg Config, n int) []*Predictor {
	cfg = cfg.withDefaults()
	if n < 1 {
		n = 1
	}
	var pooled *tables
	if cfg.Share != SharePartitioned {
		pooled = newTables(cfg)
	}
	group := make([]*Predictor, n)
	for i := range group {
		t := pooled
		if t == nil {
			t = newTables(cfg)
		}
		p := &Predictor{cfg: cfg, t: t, ras: make([]uint64, cfg.RASDepth)}
		if cfg.Share == ShareHashed {
			p.salt = strandSalt(i)
		}
		group[i] = p
	}
	return group
}

// strandSalt spreads strand i's indices across shared tables. Strand 0
// salts with zero by construction: a lone strand must behave identically
// under every share mode (sharing is unobservable without a peer).
func strandSalt(i int) uint64 {
	if i == 0 {
		return 0
	}
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config returns the predictor configuration (with defaults applied).
func (p *Predictor) Config() Config { return p.cfg }

// Reset returns the predictor to its freshly constructed state without
// reallocating: PHT counters back to weakly taken, tagged tables and
// useful bits cleared, history cleared, BTB and RAS emptied, statistics
// zeroed. Part of the pooled-simulator reset path (see sim.Instance).
// In a sharing group, resetting any strand resets the pooled tables
// (idempotent), and each strand must still be Reset for its private
// history/RAS/stats.
func (p *Predictor) Reset() {
	p.t.reset()
	p.ghr = 0
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.rasSP = 0
	p.Stats = Stats{}
}

// Detach returns a frozen stats-only copy safe to cache indefinitely:
// configuration and counters, no tables. Prediction methods must not be
// called on a detached predictor (see sim.Instance.Run).
func (p *Predictor) Detach() *Predictor {
	return &Predictor{cfg: p.cfg, Stats: p.Stats}
}

// gshareIndex is the classic gshare hash of pc against the full global
// history (plus the strand salt under ShareHashed).
func (p *Predictor) gshareIndex(pc uint64) uint64 {
	mask := uint64(len(p.t.pht) - 1)
	return ((pc >> 3) ^ p.ghr ^ p.salt) & mask
}

// baseIndex indexes TAGE's base bimodal: pc only, no history — the
// tagged tables own all history correlation.
func (p *Predictor) baseIndex(pc uint64) uint64 {
	mask := uint64(len(p.t.pht) - 1)
	return ((pc >> 3) ^ p.salt) & mask
}

// foldHistory compresses the low histLen bits of the history register
// into width bits by XOR-folding successive chunks. Pure function of its
// arguments: identical (history, lengths) always produce identical
// indices and tags, on any strand of any group.
func foldHistory(ghr uint64, histLen, width int) uint64 {
	h := ghr
	if histLen < 64 {
		h &= (uint64(1) << histLen) - 1
	}
	mask := (uint64(1) << width) - 1
	var f uint64
	for ; h != 0; h >>= width {
		f ^= h & mask
	}
	return f
}

// tageIndex indexes tagged table ti for pc under the current history.
func (p *Predictor) tageIndex(pc uint64, ti int) uint64 {
	bits := p.cfg.TageTableBits
	mask := (uint64(1) << bits) - 1
	h := foldHistory(p.ghr, p.t.histLens[ti], bits)
	return ((pc >> 3) ^ (pc >> (3 + uint(bits))) ^ h ^ p.salt ^ uint64(ti)) & mask
}

// tageTag computes table ti's partial tag for pc: two differently-sized
// history folds decorrelate the tag from the index, so entries that
// collide on an index slot still disagree on tags.
func (p *Predictor) tageTag(pc uint64, ti int) uint16 {
	tb := p.cfg.TageTagBits
	h1 := foldHistory(p.ghr, p.t.histLens[ti], tb)
	h2 := foldHistory(p.ghr, p.t.histLens[ti], tb-1)
	return uint16(((pc >> 3) ^ h1 ^ (h2 << 1)) & ((uint64(1) << tb) - 1))
}

// tageLookup finds the provider (the longest-history tagged table whose
// entry tag-matches pc under the current history) and the alternate (the
// next longest match). -1 denotes the base bimodal.
func (p *Predictor) tageLookup(pc uint64) (provider, alt int) {
	provider, alt = -1, -1
	for ti := len(p.t.tage) - 1; ti >= 0; ti-- {
		if p.t.tage[ti][p.tageIndex(pc, ti)].tag == p.tageTag(pc, ti) {
			if provider < 0 {
				provider = ti
			} else {
				alt = ti
				break
			}
		}
	}
	return provider, alt
}

// tablePred reads table ti's direction for pc (-1 = base bimodal).
func (p *Predictor) tablePred(pc uint64, ti int) bool {
	if ti < 0 {
		return p.t.pht[p.baseIndex(pc)] >= 2
	}
	return p.t.tage[ti][p.tageIndex(pc, ti)].ctr >= 4
}

// PredictDir predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDir(pc uint64) bool {
	p.Stats.DirLookups++
	if p.cfg.Kind == TAGE {
		provider, _ := p.tageLookup(pc)
		if provider >= 0 {
			p.Stats.TageProviderHits++
		}
		return p.tablePred(pc, provider)
	}
	return p.t.pht[p.gshareIndex(pc)] >= 2
}

// UpdateDir trains the direction predictor with the branch outcome and
// shifts the outcome into this strand's global history. mispredicted is
// recorded for stats only. Both kinds re-derive their indices from the
// CURRENT history: for SST's deferred branches (trained at replay, see
// TrainDeferredDir) that is resolution-order history by design.
func (p *Predictor) UpdateDir(pc uint64, taken, mispredicted bool) {
	if p.cfg.Kind == TAGE {
		p.tageUpdate(pc, taken)
	} else {
		idx := p.gshareIndex(pc)
		p.t.pht[idx] = sat2(p.t.pht[idx], taken)
	}
	p.ghr = (p.ghr << 1) | b2u(taken)
	if mispredicted {
		p.Stats.DirMispredict++
	}
}

// tageUpdate is the TAGE training step: train the provider, steer its
// useful bit when it disagreed with the alternate, allocate a
// longer-history entry on a provider misprediction, and age useful bits
// on a fixed deterministic period. No randomized allocation — identical
// update streams always produce identical tables.
func (p *Predictor) tageUpdate(pc uint64, taken bool) {
	t := p.t
	provider, alt := p.tageLookup(pc)
	provPred := p.tablePred(pc, provider)
	if provider >= 0 {
		altPred := p.tablePred(pc, alt)
		e := &t.tage[provider][p.tageIndex(pc, provider)]
		e.ctr = sat3(e.ctr, taken)
		if provPred != altPred {
			// The provider distinguished itself from its fallback:
			// usefulness earned if right, revoked if wrong.
			if provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		idx := p.baseIndex(pc)
		t.pht[idx] = sat2(t.pht[idx], taken)
	}
	if provPred != taken && provider < len(t.tage)-1 {
		// Mispredicted: claim one not-useful entry in the shortest
		// longer-history table; if all are defended, age them all so a
		// persistent mispredict eventually wins a slot.
		allocated := false
		for ti := provider + 1; ti < len(t.tage); ti++ {
			e := &t.tage[ti][p.tageIndex(pc, ti)]
			if e.u == 0 {
				*e = tageEntry{tag: p.tageTag(pc, ti), ctr: weak3(taken)}
				p.Stats.TageAllocs++
				allocated = true
				break
			}
		}
		if !allocated {
			for ti := provider + 1; ti < len(t.tage); ti++ {
				if e := &t.tage[ti][p.tageIndex(pc, ti)]; e.u > 0 {
					e.u--
				}
			}
			p.Stats.TageAllocFails++
		}
	}
	t.updates++
	if t.updates%tageDecayPeriod == 0 {
		for _, tbl := range t.tage {
			for i := range tbl {
				tbl[i].u >>= 1
			}
		}
		p.Stats.TageDecays++
	}
}

// TrainDeferredDir trains on a deferred branch's replay-time resolution.
// SST discovers a deferred branch's real outcome only when the deferred
// queue replays it, so the predictor trains at RESOLUTION order with the
// history it holds then — never retroactively at fetch order. A
// mispredict here also rolls the core back, which restores the
// checkpoint history via SetHistory; the training shift below lands
// before that restore and is deliberately kept (the outcome is
// architecturally known even though the path is squashed).
func (p *Predictor) TrainDeferredDir(pc uint64, taken, mispredicted bool) {
	p.Stats.DeferredDirTrains++
	p.UpdateDir(pc, taken, mispredicted)
}

// TrainDeferredTarget trains the BTB on a deferred jalr's replay-time
// resolved target (see TrainDeferredDir for the resolution-order rule).
func (p *Predictor) TrainDeferredTarget(pc, target uint64) {
	p.Stats.DeferredTargetTrains++
	p.UpdateTarget(pc, target)
}

// History returns the current global history register, so speculative
// cores can checkpoint and restore it on rollback. For both predictor
// kinds this is the COMPLETE history state: TAGE folds the register into
// per-table indices on the fly, so SetHistory fully restores the
// fetch-path history after a rollback.
func (p *Predictor) History() uint64 { return p.ghr }

// SetHistory restores a previously captured global history register.
func (p *Predictor) SetHistory(h uint64) { p.ghr = h }

// PredictTarget predicts the target of an indirect jump at pc. ok is
// false on a BTB miss (the frontend then stalls until resolution).
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	p.Stats.BTBLookups++
	e := &p.t.btb[p.btbIndex(pc)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	p.Stats.BTBMisses++
	return 0, false
}

// UpdateTarget trains the BTB with the resolved target of the indirect
// jump at pc.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	e := &p.t.btb[p.btbIndex(pc)]
	*e = btbEntry{tag: pc, target: target, valid: true}
}

func (p *Predictor) btbIndex(pc uint64) uint64 {
	return ((pc >> 3) ^ p.salt) % uint64(len(p.t.btb))
}

// PushReturn records a call's return address on the RAS.
func (p *Predictor) PushReturn(addr uint64) {
	p.ras[p.rasSP%len(p.ras)] = addr
	p.rasSP++
	p.Stats.RASPushes++
}

// PopReturn predicts a return target from the RAS. ok is false when the
// stack is empty.
func (p *Predictor) PopReturn() (addr uint64, ok bool) {
	if p.rasSP == 0 {
		return 0, false
	}
	p.rasSP--
	p.Stats.RASPops++
	return p.ras[p.rasSP%len(p.ras)], true
}

// RASDepthNow returns the current RAS occupancy (bounded by depth).
func (p *Predictor) RASDepthNow() int {
	if p.rasSP > len(p.ras) {
		return len(p.ras)
	}
	return p.rasSP
}

// sat2 moves a 2-bit saturating counter toward the outcome.
func sat2(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// sat3 moves a 3-bit saturating counter toward the outcome.
func sat3(c uint8, taken bool) uint8 {
	if taken {
		if c < 7 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// weak3 is the weak 3-bit counter state biased toward the outcome, the
// state a freshly allocated TAGE entry starts in.
func weak3(taken bool) uint8 {
	if taken {
		return 4
	}
	return 3
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
