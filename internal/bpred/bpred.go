// Package bpred implements the branch prediction substrate shared by all
// core models: a gshare direction predictor, a branch target buffer, and
// a return-address stack. SST additionally relies on the predictor for
// branches whose operands are not available (deferred branches); a wrong
// prediction there is discovered at replay time and costs a checkpoint
// rollback, so predictor quality directly bounds speculation depth.
package bpred

import "fmt"

// Config sizes the predictor structures.
type Config struct {
	// GshareBits is log2 of the pattern history table size.
	GshareBits int
	// BTBEntries is the number of direct-mapped BTB entries.
	BTBEntries int
	// RASDepth is the return-address stack depth.
	RASDepth int
}

// DefaultConfig returns a 2009-era predictor: 16K-entry gshare,
// 2K-entry BTB, 8-deep RAS.
func DefaultConfig() Config {
	return Config{GshareBits: 14, BTBEntries: 2048, RASDepth: 8}
}

// Stats counts predictor events.
type Stats struct {
	DirLookups    uint64
	DirMispredict uint64
	BTBLookups    uint64
	BTBMisses     uint64
	RASPushes     uint64
	RASPops       uint64
}

// Predictor combines direction, target and return-address prediction.
// It is deliberately simple and deterministic: identical instruction
// streams produce identical predictions on every core model, so
// performance differences isolate the pipeline technique.
type Predictor struct {
	cfg   Config
	pht   []uint8 // 2-bit saturating counters
	ghr   uint64  // global history register
	btb   []btbEntry
	ras   []uint64
	rasSP int
	Stats Stats
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	if cfg.GshareBits <= 0 {
		cfg.GshareBits = 14
	}
	if cfg.BTBEntries <= 0 {
		cfg.BTBEntries = 2048
	}
	if cfg.RASDepth <= 0 {
		cfg.RASDepth = 8
	}
	p := &Predictor{
		cfg: cfg,
		pht: make([]uint8, 1<<cfg.GshareBits),
		btb: make([]btbEntry, cfg.BTBEntries),
		ras: make([]uint64, cfg.RASDepth),
	}
	// Weakly taken initial state.
	for i := range p.pht {
		p.pht[i] = 2
	}
	return p
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Fingerprint canonically encodes the predictor sizing for run-cache
// keys, field by field (see sim.Options.Fingerprint).
func (c Config) Fingerprint() string {
	return fmt.Sprintf("bpred{gshare=%d btb=%d ras=%d}", c.GshareBits, c.BTBEntries, c.RASDepth)
}

// Reset returns the predictor to its freshly constructed state without
// reallocating: PHT counters back to weakly taken, history cleared, BTB
// and RAS emptied, statistics zeroed. Part of the pooled-simulator
// reset path (see sim.Instance).
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 2
	}
	p.ghr = 0
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	for i := range p.ras {
		p.ras[i] = 0
	}
	p.rasSP = 0
	p.Stats = Stats{}
}

func (p *Predictor) phtIndex(pc uint64) uint64 {
	mask := uint64(len(p.pht) - 1)
	return ((pc >> 3) ^ p.ghr) & mask
}

// PredictDir predicts the direction of the conditional branch at pc.
func (p *Predictor) PredictDir(pc uint64) bool {
	p.Stats.DirLookups++
	return p.pht[p.phtIndex(pc)] >= 2
}

// UpdateDir trains the direction predictor with the branch outcome and
// shifts the outcome into global history. mispredicted is recorded for
// stats only.
func (p *Predictor) UpdateDir(pc uint64, taken, mispredicted bool) {
	idx := p.phtIndex(pc)
	c := p.pht[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pht[idx] = c
	p.ghr = (p.ghr << 1) | b2u(taken)
	if mispredicted {
		p.Stats.DirMispredict++
	}
}

// History returns the current global history register, so speculative
// cores can checkpoint and restore it on rollback.
func (p *Predictor) History() uint64 { return p.ghr }

// SetHistory restores a previously captured global history register.
func (p *Predictor) SetHistory(h uint64) { p.ghr = h }

// PredictTarget predicts the target of an indirect jump at pc. ok is
// false on a BTB miss (the frontend then stalls until resolution).
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	p.Stats.BTBLookups++
	e := &p.btb[p.btbIndex(pc)]
	if e.valid && e.tag == pc {
		return e.target, true
	}
	p.Stats.BTBMisses++
	return 0, false
}

// UpdateTarget trains the BTB with the resolved target of the indirect
// jump at pc.
func (p *Predictor) UpdateTarget(pc, target uint64) {
	e := &p.btb[p.btbIndex(pc)]
	*e = btbEntry{tag: pc, target: target, valid: true}
}

func (p *Predictor) btbIndex(pc uint64) uint64 {
	return (pc >> 3) % uint64(len(p.btb))
}

// PushReturn records a call's return address on the RAS.
func (p *Predictor) PushReturn(addr uint64) {
	p.ras[p.rasSP%len(p.ras)] = addr
	p.rasSP++
	p.Stats.RASPushes++
}

// PopReturn predicts a return target from the RAS. ok is false when the
// stack is empty.
func (p *Predictor) PopReturn() (addr uint64, ok bool) {
	if p.rasSP == 0 {
		return 0, false
	}
	p.rasSP--
	p.Stats.RASPops++
	return p.ras[p.rasSP%len(p.ras)], true
}

// RASDepthNow returns the current RAS occupancy (bounded by depth).
func (p *Predictor) RASDepthNow() int {
	if p.rasSP > len(p.ras) {
		return len(p.ras)
	}
	return p.rasSP
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
