package bpred

import (
	"math/rand"
	"testing"
)

func TestGshareLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	// Train always-taken.
	for i := 0; i < 64; i++ {
		pred := p.PredictDir(pc)
		p.UpdateDir(pc, true, pred != true)
	}
	if !p.PredictDir(pc) {
		t.Error("predictor failed to learn always-taken")
	}
	// Retrain always-not-taken.
	for i := 0; i < 64; i++ {
		pred := p.PredictDir(pc)
		p.UpdateDir(pc, false, pred != false)
	}
	if p.PredictDir(pc) {
		t.Error("predictor failed to relearn not-taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/N is perfectly predictable with history.
	p := New(Config{GshareBits: 12, BTBEntries: 64, RASDepth: 4})
	pc := uint64(0x2000)
	taken := false
	correct := 0
	const warm, measure = 200, 200
	for i := 0; i < warm+measure; i++ {
		pred := p.PredictDir(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken, pred != taken)
		taken = !taken
	}
	if float64(correct)/measure < 0.95 {
		t.Errorf("pattern accuracy %d/%d, want >95%%", correct, measure)
	}
}

func TestGshareStats(t *testing.T) {
	p := New(DefaultConfig())
	p.PredictDir(0)
	p.UpdateDir(0, true, true)
	if p.Stats.DirLookups != 1 || p.Stats.DirMispredict != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestHistoryCheckpointing(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.UpdateDir(uint64(i*8), i%2 == 0, false)
	}
	h := p.History()
	p.UpdateDir(0x100, true, false)
	p.UpdateDir(0x108, false, false)
	if p.History() == h {
		t.Fatal("history did not advance")
	}
	p.SetHistory(h)
	if p.History() != h {
		t.Error("history restore failed")
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictTarget(0x3000); ok {
		t.Error("cold BTB hit")
	}
	if p.Stats.BTBMisses != 1 {
		t.Errorf("btb misses = %d", p.Stats.BTBMisses)
	}
	p.UpdateTarget(0x3000, 0x4000)
	if tgt, ok := p.PredictTarget(0x3000); !ok || tgt != 0x4000 {
		t.Errorf("btb = %#x, %v", tgt, ok)
	}
	// Aliasing entry replaces.
	alias := 0x3000 + uint64(p.Config().BTBEntries)*8
	p.UpdateTarget(alias, 0x5000)
	if _, ok := p.PredictTarget(0x3000); ok {
		t.Error("stale entry survived aliasing replacement")
	}
}

func TestRAS(t *testing.T) {
	p := New(Config{GshareBits: 4, BTBEntries: 4, RASDepth: 4})
	if _, ok := p.PopReturn(); ok {
		t.Error("pop of empty RAS")
	}
	p.PushReturn(0x100)
	p.PushReturn(0x200)
	if a, ok := p.PopReturn(); !ok || a != 0x200 {
		t.Errorf("pop = %#x", a)
	}
	if a, ok := p.PopReturn(); !ok || a != 0x100 {
		t.Errorf("pop = %#x", a)
	}
	// Overflow wraps: deepest entries are lost, recent ones survive.
	for i := 1; i <= 6; i++ {
		p.PushReturn(uint64(i * 0x10))
	}
	for want := 6; want >= 3; want-- {
		if a, ok := p.PopReturn(); !ok || a != uint64(want*0x10) {
			t.Errorf("pop = %#x, want %#x", a, want*0x10)
		}
	}
	if p.RASDepthNow() < 0 {
		t.Error("negative depth")
	}
}

func TestPredictorDeterminism(t *testing.T) {
	run := func() uint64 {
		p := New(DefaultConfig())
		r := rand.New(rand.NewSource(9))
		var sig uint64
		for i := 0; i < 5000; i++ {
			pc := uint64(r.Intn(1024)) * 8
			pred := p.PredictDir(pc)
			actual := r.Intn(3) > 0
			p.UpdateDir(pc, actual, pred != actual)
			if pred {
				sig = sig*31 + pc
			}
		}
		return sig
	}
	if run() != run() {
		t.Error("predictor not deterministic")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if p.Config().GshareBits <= 0 || p.Config().BTBEntries <= 0 || p.Config().RASDepth <= 0 {
		t.Error("zero config not defaulted")
	}
}
