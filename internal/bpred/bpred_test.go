package bpred

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestGshareLearnsBias(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x1000)
	// Train always-taken.
	for i := 0; i < 64; i++ {
		pred := p.PredictDir(pc)
		p.UpdateDir(pc, true, pred != true)
	}
	if !p.PredictDir(pc) {
		t.Error("predictor failed to learn always-taken")
	}
	// Retrain always-not-taken.
	for i := 0; i < 64; i++ {
		pred := p.PredictDir(pc)
		p.UpdateDir(pc, false, pred != false)
	}
	if p.PredictDir(pc) {
		t.Error("predictor failed to relearn not-taken")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating T/N is perfectly predictable with history.
	p := New(Config{GshareBits: 12, BTBEntries: 64, RASDepth: 4})
	pc := uint64(0x2000)
	taken := false
	correct := 0
	const warm, measure = 200, 200
	for i := 0; i < warm+measure; i++ {
		pred := p.PredictDir(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken, pred != taken)
		taken = !taken
	}
	if float64(correct)/measure < 0.95 {
		t.Errorf("pattern accuracy %d/%d, want >95%%", correct, measure)
	}
}

func TestGshareStats(t *testing.T) {
	p := New(DefaultConfig())
	p.PredictDir(0)
	p.UpdateDir(0, true, true)
	if p.Stats.DirLookups != 1 || p.Stats.DirMispredict != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

func TestHistoryCheckpointing(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.UpdateDir(uint64(i*8), i%2 == 0, false)
	}
	h := p.History()
	p.UpdateDir(0x100, true, false)
	p.UpdateDir(0x108, false, false)
	if p.History() == h {
		t.Fatal("history did not advance")
	}
	p.SetHistory(h)
	if p.History() != h {
		t.Error("history restore failed")
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.PredictTarget(0x3000); ok {
		t.Error("cold BTB hit")
	}
	if p.Stats.BTBMisses != 1 {
		t.Errorf("btb misses = %d", p.Stats.BTBMisses)
	}
	p.UpdateTarget(0x3000, 0x4000)
	if tgt, ok := p.PredictTarget(0x3000); !ok || tgt != 0x4000 {
		t.Errorf("btb = %#x, %v", tgt, ok)
	}
	// Aliasing entry replaces.
	alias := 0x3000 + uint64(p.Config().BTBEntries)*8
	p.UpdateTarget(alias, 0x5000)
	if _, ok := p.PredictTarget(0x3000); ok {
		t.Error("stale entry survived aliasing replacement")
	}
}

func TestRAS(t *testing.T) {
	p := New(Config{GshareBits: 4, BTBEntries: 4, RASDepth: 4})
	if _, ok := p.PopReturn(); ok {
		t.Error("pop of empty RAS")
	}
	p.PushReturn(0x100)
	p.PushReturn(0x200)
	if a, ok := p.PopReturn(); !ok || a != 0x200 {
		t.Errorf("pop = %#x", a)
	}
	if a, ok := p.PopReturn(); !ok || a != 0x100 {
		t.Errorf("pop = %#x", a)
	}
	// Overflow wraps: deepest entries are lost, recent ones survive.
	for i := 1; i <= 6; i++ {
		p.PushReturn(uint64(i * 0x10))
	}
	for want := 6; want >= 3; want-- {
		if a, ok := p.PopReturn(); !ok || a != uint64(want*0x10) {
			t.Errorf("pop = %#x, want %#x", a, want*0x10)
		}
	}
	if p.RASDepthNow() < 0 {
		t.Error("negative depth")
	}
}

func TestPredictorDeterminism(t *testing.T) {
	run := func() uint64 {
		p := New(DefaultConfig())
		r := rand.New(rand.NewSource(9))
		var sig uint64
		for i := 0; i < 5000; i++ {
			pc := uint64(r.Intn(1024)) * 8
			pred := p.PredictDir(pc)
			actual := r.Intn(3) > 0
			p.UpdateDir(pc, actual, pred != actual)
			if pred {
				sig = sig*31 + pc
			}
		}
		return sig
	}
	if run() != run() {
		t.Error("predictor not deterministic")
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if p.Config().GshareBits <= 0 || p.Config().BTBEntries <= 0 || p.Config().RASDepth <= 0 {
		t.Error("zero config not defaulted")
	}
}

func TestFoldHistoryDeterministic(t *testing.T) {
	// Pure function: identical inputs always identical outputs, bounded
	// by width, and the full-64-bit path folds every bit in.
	for _, hl := range []int{1, 8, 16, 32, 64} {
		for _, w := range []int{4, 10, 14} {
			a := foldHistory(0xdeadbeefcafef00d, hl, w)
			b := foldHistory(0xdeadbeefcafef00d, hl, w)
			if a != b {
				t.Fatalf("fold(hl=%d,w=%d) unstable: %#x vs %#x", hl, w, a, b)
			}
			if a >= 1<<uint(w) {
				t.Fatalf("fold(hl=%d,w=%d) = %#x exceeds width", hl, w, a)
			}
		}
	}
	// A bit above histLen must not influence the fold; a bit below must.
	if foldHistory(1<<20, 16, 10) != 0 {
		t.Error("fold leaked history beyond histLen")
	}
	if foldHistory(1<<12, 16, 10) == 0 {
		t.Error("fold dropped in-window history")
	}
}

func tageConfig() Config {
	c := DefaultConfig()
	c.Kind = TAGE
	return c
}

func TestTageLearnsPattern(t *testing.T) {
	// Same alternating-pattern check the gshare test does: the tagged
	// tables must learn it at least as well.
	p := New(tageConfig())
	pc := uint64(0x2000)
	taken := false
	correct := 0
	const warm, measure = 200, 200
	for i := 0; i < warm+measure; i++ {
		pred := p.PredictDir(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.UpdateDir(pc, taken, pred != taken)
		taken = !taken
	}
	if float64(correct)/measure < 0.95 {
		t.Errorf("pattern accuracy %d/%d, want >95%%", correct, measure)
	}
}

func TestTageAllocatesOnMispredict(t *testing.T) {
	p := New(tageConfig())
	// pc chosen so its partial tag is nonzero: a zero tag would match the
	// all-zero fresh tagged entries and make them the provider.
	pc := uint64(0x7008)
	// Fresh tables: base bimodal predicts weakly taken, so a not-taken
	// outcome is a provider mispredict and must claim a tagged entry.
	pred := p.PredictDir(pc)
	if !pred {
		t.Fatal("fresh base bimodal should predict taken")
	}
	p.UpdateDir(pc, false, true)
	if p.Stats.TageAllocs == 0 {
		t.Fatal("mispredict did not allocate a tagged entry")
	}
	// The allocated entry must now provide for the same (pc, history)
	// context and carry the outcome it was allocated with.
	p.SetHistory(0)
	before := p.Stats.TageProviderHits
	if p.PredictDir(pc) {
		t.Error("allocated entry did not flip the prediction to not-taken")
	}
	if p.Stats.TageProviderHits == before {
		t.Error("allocated entry is not the provider on re-lookup")
	}
}

func TestTageUsefulBitDefense(t *testing.T) {
	// An entry with u > 0 must not be reallocated: a mispredict that
	// finds every candidate defended ages them instead.
	p := New(tageConfig())
	pc := uint64(0x9000)
	for ti := range p.t.tage {
		e := &p.t.tage[ti][p.tageIndex(pc, ti)]
		e.tag = p.tageTag(pc, ti) + 1 // never matches
		e.u = 2
	}
	p.UpdateDir(pc, false, true) // base mispredicts, all candidates defended
	if p.Stats.TageAllocs != 0 || p.Stats.TageAllocFails != 1 {
		t.Fatalf("defended entries were reallocated: allocs=%d fails=%d",
			p.Stats.TageAllocs, p.Stats.TageAllocFails)
	}
	for ti := range p.t.tage {
		// History shifted on update; recompute old index via tag mismatch:
		// all touched entries must have aged u 2 -> 1.
		found := false
		for i := range p.t.tage[ti] {
			if p.t.tage[ti][i].u == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("table %d: no aged candidate after failed allocation", ti)
		}
	}
}

func TestTageUsefulBitDecay(t *testing.T) {
	p := New(tageConfig())
	sentinel := &p.t.tage[3][777]
	sentinel.u = 3
	p.t.updates = tageDecayPeriod - 1
	p.UpdateDir(0x8000, true, false)
	if p.Stats.TageDecays != 1 {
		t.Fatalf("decay sweep did not run: decays=%d", p.Stats.TageDecays)
	}
	if sentinel.u != 1 {
		t.Fatalf("useful bit not halved by decay: u=%d, want 1", sentinel.u)
	}
}

func TestTageResolvesGshareAliasingPair(t *testing.T) {
	// Two (pc, history) contexts crafted to collide in the gshare PHT:
	// index = (pc>>3) ^ ghr, so ghrB = (pcA>>3) ^ (pcB>>3) makes B alias
	// A's entry under history. Opposite outcomes thrash the shared 2-bit
	// counter; TAGE's pc-indexed base and tagged entries keep them apart.
	pcA, pcB := uint64(0x1000), uint64(0x2000)
	ghrA := uint64(0)
	ghrB := (pcA >> 3) ^ (pcB >> 3)
	run := func(cfg Config) (mis int) {
		p := New(cfg)
		if cfg.Kind == Gshare {
			if p.gshareIndex(pcA) != func() uint64 { p.SetHistory(ghrB); defer p.SetHistory(ghrA); return p.gshareIndex(pcB) }() {
				t.Fatal("crafted pair does not alias in the gshare PHT")
			}
		}
		for i := 0; i < 200; i++ {
			p.SetHistory(ghrA)
			pred := p.PredictDir(pcA)
			if pred != true {
				mis++
			}
			p.UpdateDir(pcA, true, pred != true)
			p.SetHistory(ghrB)
			pred = p.PredictDir(pcB)
			if pred != false {
				mis++
			}
			p.UpdateDir(pcB, false, pred != false)
		}
		return mis
	}
	gmis := run(DefaultConfig())
	tmis := run(tageConfig())
	if gmis < 100 {
		t.Fatalf("gshare aliasing pair did not thrash: %d mispredicts", gmis)
	}
	if tmis > 10 {
		t.Fatalf("tage failed to resolve the aliasing pair: %d mispredicts", tmis)
	}
}

// trainRandom drives p through a deterministic pseudo-random stream and
// returns a prediction signature.
func trainRandom(p *Predictor, seed int64, n int) uint64 {
	r := rand.New(rand.NewSource(seed))
	var sig uint64
	for i := 0; i < n; i++ {
		pc := uint64(r.Intn(2048)) * 8
		pred := p.PredictDir(pc)
		actual := r.Intn(3) > 0
		p.UpdateDir(pc, actual, pred != actual)
		if pred {
			sig = sig*31 + pc
		}
	}
	return sig
}

func TestResetMatchesFreshTage(t *testing.T) {
	for _, mode := range []ShareMode{SharePartitioned, ShareShared, ShareHashed} {
		cfg := tageConfig()
		cfg.Share = mode
		used := NewGroup(cfg, 2)
		for i, p := range used {
			trainRandom(p, int64(10+i), 4000)
			p.UpdateTarget(0x100, 0x200)
			p.PushReturn(0x300)
		}
		for _, p := range used {
			p.Reset()
		}
		fresh := NewGroup(cfg, 2)
		for i := range used {
			if !reflect.DeepEqual(used[i], fresh[i]) {
				t.Errorf("share=%v strand %d: reset state differs from fresh", mode, i)
			}
			if got, want := trainRandom(used[i], 77, 3000), trainRandom(fresh[i], 77, 3000); got != want {
				t.Errorf("share=%v strand %d: reset predictor diverges from fresh (%#x vs %#x)", mode, i, got, want)
			}
		}
	}
}

func TestShareModeSemantics(t *testing.T) {
	pc := uint64(0x1000)
	trainNT := func(p *Predictor) {
		for i := 0; i < 4; i++ {
			p.UpdateDir(pc, false, p.PredictDir(pc) != false)
			p.SetHistory(0)
		}
	}
	// Shared: strand 1 benefits from strand 0's training (one table set).
	cfg := DefaultConfig()
	cfg.Share = ShareShared
	g := NewGroup(cfg, 2)
	if g[0].t != g[1].t {
		t.Fatal("shared group did not pool tables")
	}
	trainNT(g[0])
	if g[1].PredictDir(pc) {
		t.Error("shared: strand 1 did not see strand 0's training")
	}
	if g[1].Stats.DirLookups != 1 || g[0].Stats.DirLookups != 4 {
		t.Error("stats are not per-strand")
	}
	// Partitioned: strand 1 is fully isolated.
	cfg.Share = SharePartitioned
	pg := NewGroup(cfg, 2)
	if pg[0].t == pg[1].t {
		t.Fatal("partitioned group pooled tables")
	}
	trainNT(pg[0])
	if !pg[1].PredictDir(pc) {
		t.Error("partitioned: strand 1 saw strand 0's training")
	}
	// Hashed: one table set, strand 0 unsalted, strand 1 remapped so the
	// same (pc, history) context lands on a different PHT slot.
	cfg.Share = ShareHashed
	hg := NewGroup(cfg, 2)
	if hg[0].t != hg[1].t {
		t.Fatal("hashed group did not pool tables")
	}
	if hg[0].salt != 0 {
		t.Fatal("strand 0 must salt with zero (single-strand collapse)")
	}
	if hg[1].salt == 0 || hg[0].gshareIndex(pc) == hg[1].gshareIndex(pc) {
		t.Fatal("strand 1's salted index did not remap")
	}
	trainNT(hg[0])
	if !hg[1].PredictDir(pc) {
		t.Error("hashed: strand 1 aliased onto strand 0's slot")
	}
}

func TestDeferredTrainingCounters(t *testing.T) {
	p := New(DefaultConfig())
	p.TrainDeferredDir(0x100, true, false)
	p.TrainDeferredTarget(0x200, 0x300)
	if p.Stats.DeferredDirTrains != 1 || p.Stats.DeferredTargetTrains != 1 {
		t.Errorf("deferred counters = %+v", p.Stats)
	}
	if tgt, ok := p.PredictTarget(0x200); !ok || tgt != 0x300 {
		t.Error("deferred target training did not reach the BTB")
	}
}
