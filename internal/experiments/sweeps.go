package experiments

import (
	"fmt"

	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// DQSweep regenerates Figure 3: sensitivity of SST performance to the
// Deferred Queue size. DQ=0 degenerates to hardware scout.
func (r *Runner) DQSweep(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite([]string{"oltp", "mcf", "jbb"}, scale)
	if err != nil {
		return nil, err
	}
	sizes := []int{0, 8, 16, 32, 64, 128}
	cells := make([]cell, 0, len(specs)*len(sizes))
	for _, w := range specs {
		for _, n := range sizes {
			opts := r.BaseOptions()
			opts.SST.DQSize = n
			cells = append(cells, cell{sim.KindSST, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Figure 3: IPC vs Deferred Queue size",
		headerize("workload", sizes, "DQ=%d")...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range sizes {
			if errs[i] != nil {
				row = append(row, errCell(errs[i]))
			} else {
				row = append(row, outs[i].IPC())
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F3", Title: "Deferred Queue sizing", Tables: []*stats.Table{t},
		Notes: []string{"DQ=0 is hardware scout; returns should flatten near the default (64)"},
		Errs:  collectErrs(errs),
	}, nil
}

// CheckpointSweep regenerates Figure 4: sensitivity to the number of
// checkpoints (concurrent speculation epochs).
func (r *Runner) CheckpointSweep(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite(workload.CommercialNames, scale)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 2, 4, 8}
	cells := make([]cell, 0, len(specs)*len(counts))
	for _, w := range specs {
		for _, n := range counts {
			opts := r.BaseOptions()
			opts.SST.Checkpoints = n
			cells = append(cells, cell{sim.KindSST, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Figure 4: IPC vs number of checkpoints",
		headerize("workload", counts, "ckpt=%d")...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range counts {
			if errs[i] != nil {
				row = append(row, errCell(errs[i]))
			} else {
				row = append(row, outs[i].IPC())
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F4", Title: "checkpoint count", Tables: []*stats.Table{t},
		Notes: []string{"more checkpoints -> finer rollback granularity and deeper miss overlap"},
		Errs:  collectErrs(errs),
	}, nil
}

// SSBSweep regenerates Figure 5: sensitivity to speculative store buffer
// size, on the store-heavy ERP workload.
func (r *Runner) SSBSweep(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite([]string{"erp", "oltp", "quantum"}, scale)
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 8, 16, 32, 64}
	cells := make([]cell, 0, len(specs)*len(sizes))
	for _, w := range specs {
		for _, n := range sizes {
			opts := r.BaseOptions()
			opts.SST.SSBSize = n
			cells = append(cells, cell{sim.KindSST, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Figure 5: IPC vs speculative store buffer size",
		headerize("workload", sizes, "SSB=%d")...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range sizes {
			if errs[i] != nil {
				row = append(row, errCell(errs[i]))
			} else {
				row = append(row, outs[i].IPC())
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{ID: "F5", Title: "store buffer sizing", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}

// MemLatencySweep regenerates Figure 6: SST's advantage as memory
// latency grows. Checkpoint architectures are motivated precisely by the
// widening memory wall.
func (r *Runner) MemLatencySweep(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite([]string{"oltp"}, scale)
	if err != nil {
		return nil, err
	}
	w := specs[0]
	lats := []int{100, 200, 300, 500, 800}
	kinds := []sim.Kind{sim.KindInOrder, sim.KindOOOLarge, sim.KindSST}
	cells := make([]cell, 0, len(lats)*len(kinds))
	for _, lat := range lats {
		opts := r.BaseOptions()
		opts.Hier.DRAM.Latency = lat
		for _, k := range kinds {
			cells = append(cells, cell{k, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	headers := []string{"DRAM latency"}
	for _, k := range kinds {
		headers = append(headers, "IPC "+k.String())
	}
	headers = append(headers, "SST/inorder", "SST/ooo-large")
	t := stats.NewTable("Figure 6: performance vs memory latency (oltp)", headers...)
	i := 0
	for _, lat := range lats {
		row := []any{lat}
		ipcs := map[sim.Kind]float64{}
		var rowErr error
		for _, k := range kinds {
			if cerr := errs[i]; cerr != nil {
				if rowErr == nil {
					rowErr = cerr
				}
				row = append(row, errCell(cerr))
			} else {
				ipcs[k] = outs[i].IPC()
				row = append(row, ipcs[k])
			}
			i++
		}
		if rowErr != nil {
			row = fillErr(row, 2, rowErr) // ratios need every cell
		} else {
			row = append(row, ipcs[sim.KindSST]/ipcs[sim.KindInOrder], ipcs[sim.KindSST]/ipcs[sim.KindOOOLarge])
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F6", Title: "memory latency scaling", Tables: []*stats.Table{t},
		Notes: []string{"SST's speedup over in-order should grow with latency"},
		Errs:  collectErrs(errs),
	}, nil
}

// BranchSweep regenerates Figure 11: deferred-branch prediction quality
// vs speculation success, by shrinking the direction predictor.
func (r *Runner) BranchSweep(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite([]string{"gcc", "oltp", "web"}, scale)
	if err != nil {
		return nil, err
	}
	bits := []int{6, 10, 14}
	cells := make([]cell, 0, len(specs)*len(bits))
	for _, w := range specs {
		for _, b := range bits {
			opts := r.BaseOptions()
			opts.Pred.GshareBits = b
			cells = append(cells, cell{sim.KindSST, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload"}
	for _, b := range bits {
		headers = append(headers, fmt.Sprintf("IPC pht=%d", 1<<b), fmt.Sprintf("rollbacks pht=%d", 1<<b))
	}
	t := stats.NewTable("Figure 11: SST vs branch predictor size", headers...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range bits {
			if errs[i] != nil {
				row = fillErr(row, 2, errs[i])
			} else {
				st := sstStats(outs[i])
				row = append(row, outs[i].IPC(), st.Rollbacks)
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{ID: "F11", Title: "branch predictor sensitivity", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}

func headerize(first string, vals []int, format string) []string {
	out := []string{first}
	for _, v := range vals {
		out = append(out, fmt.Sprintf(format, v))
	}
	return out
}
