package experiments

import (
	"fmt"

	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// sstStats extracts the SST statistics block from an outcome (the SST,
// SST-EA and scout kinds all use the core package). Remote cells —
// computed on another shard, reconstructed from a CellStats snapshot —
// answer through the same accessor.
func sstStats(out sim.Outcome) *core.Stats {
	return out.SSTStats()
}

// PerfComparison regenerates Figure 1, the headline result: per-thread
// performance of each machine on the commercial suite, normalized to the
// in-order core. The paper's claim: certain SST implementations are ~18%
// faster per thread than larger, higher-powered out-of-order cores on
// commercial benchmarks.
func (r *Runner) PerfComparison(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite(workload.CommercialNames, scale)
	if err != nil {
		return nil, err
	}
	opts := r.BaseOptions()
	cells := make([]cell, 0, len(specs)*len(sim.Kinds))
	for _, w := range specs {
		for _, k := range sim.Kinds {
			cells = append(cells, cell{k, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Figure 1: per-thread speedup over in-order (commercial suite)",
		append([]string{"workload"}, kindNames()...)...)
	perKind := map[sim.Kind][]float64{}
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		var baseIPC float64
		var baseErr error
		for _, k := range sim.Kinds {
			out, cerr := outs[i], errs[i]
			i++
			if k == sim.KindInOrder {
				baseIPC, baseErr = out.IPC(), cerr
			}
			if cerr == nil {
				cerr = baseErr // a failed baseline fails the row's ratios
			}
			if cerr != nil {
				row = append(row, errCell(cerr))
				continue
			}
			sp := out.IPC() / baseIPC
			perKind[k] = append(perKind[k], sp)
			row = append(row, sp)
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	geo := map[sim.Kind]float64{}
	for _, k := range sim.Kinds {
		geo[k] = stats.GeoMean(perKind[k])
		row = append(row, geo[k])
	}
	t.AddRow(row...)

	sstVsOOO := 100 * (geo[sim.KindSST]/geo[sim.KindOOOLarge] - 1)
	bigVsOOO := 100 * (geo[sim.KindSSTBig]/geo[sim.KindOOOLarge] - 1)
	return &Result{
		ID:     "F1",
		Title:  "per-thread performance vs in-order",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("SST vs larger OOO on commercial geomean: %+.1f%% per-thread (paper reports ~+18%% for \"certain SST implementations\")", sstVsOOO),
			fmt.Sprintf("SST-big vs larger OOO: %+.1f%% — the paper's number sits between the two configurations", bigVsOOO),
			fmt.Sprintf("SST vs in-order geomean: %.2fx (SST-big %.2fx)", geo[sim.KindSST], geo[sim.KindSSTBig]),
		},
		Errs: collectErrs(errs),
	}, nil
}

func kindNames() []string {
	var out []string
	for _, k := range sim.Kinds {
		out = append(out, k.String())
	}
	return out
}

// ModeBreakdown regenerates Figure 2: where SST cycles go per workload
// (normal / ahead / replay / simultaneous / scout / stalls).
func (r *Runner) ModeBreakdown(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildSuite(workload.CommercialNames, scale)
	if err != nil {
		return nil, err
	}
	specs2, err := workload.BuildSuite([]string{"mcf", "stream"}, scale)
	if err != nil {
		return nil, err
	}
	specs = append(specs, specs2...)
	opts := r.BaseOptions()
	cells := make([]cell, 0, len(specs))
	for _, w := range specs {
		cells = append(cells, cell{sim.KindSST, w, opts})
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload"}
	for k := core.CycleKind(0); k < core.NumCycleKinds; k++ {
		headers = append(headers, k.String()+"%")
	}
	headers = append(headers, "top-loss")
	t := stats.NewTable("Figure 2: SST execution-cycle breakdown", headers...)
	for i, w := range specs {
		row := []any{w.Name}
		if errs[i] != nil {
			t.AddRow(fillErr(row, int(core.NumCycleKinds)+1, errs[i])...)
			continue
		}
		st := sstStats(outs[i])
		for k := core.CycleKind(0); k < core.NumCycleKinds; k++ {
			row = append(row, stats.Pct(st.ModeCycles[k], st.Cycles))
		}
		// The cycle-accounting view of the same run: the single bucket
		// costing the most cycles (rollback causes included).
		row = append(row, sim.TopLoss(&st.BaseStats))
		t.AddRow(row...)
	}
	return &Result{ID: "F2", Title: "SST execution-time breakdown", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}

// MLPComparison regenerates Figure 7: average outstanding misses (over
// miss cycles) per machine — the mechanism behind Figure 1.
func (r *Runner) MLPComparison(scale workload.Scale) (*Result, error) {
	names := append(append([]string{}, workload.CommercialNames...), "mcf", "stream", "randarr", "chase")
	specs, err := workload.BuildSuite(names, scale)
	if err != nil {
		return nil, err
	}
	opts := r.BaseOptions()
	cells := make([]cell, 0, len(specs)*len(sim.Kinds))
	for _, w := range specs {
		for _, k := range sim.Kinds {
			cells = append(cells, cell{k, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Figure 7: memory-level parallelism (mean outstanding L1D misses while missing)",
		append([]string{"workload"}, kindNames()...)...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range sim.Kinds {
			if errs[i] != nil {
				row = append(row, errCell(errs[i]))
			} else {
				row = append(row, outs[i].BaseStats().MLP())
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{ID: "F7", Title: "memory-level parallelism", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}

// Ablation regenerates Figure 8: how much of SST's win comes from each
// mechanism — scout (prefetch only), execute-ahead (DQ, one strand), and
// full SST (simultaneous second strand).
func (r *Runner) Ablation(scale workload.Scale) (*Result, error) {
	names := append(append([]string{}, workload.CommercialNames...), "mcf", "stream", "gcc")
	specs, err := workload.BuildSuite(names, scale)
	if err != nil {
		return nil, err
	}
	opts := r.BaseOptions()
	kinds := []sim.Kind{sim.KindInOrder, sim.KindScout, sim.KindSSTEA, sim.KindSST}
	cells := make([]cell, 0, len(specs)*len(kinds))
	for _, w := range specs {
		for _, k := range kinds {
			cells = append(cells, cell{k, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload"}
	for _, k := range kinds {
		headers = append(headers, k.String())
	}
	t := stats.NewTable("Figure 8: ablation — speedup over in-order", headers...)
	acc := map[sim.Kind][]float64{}
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		var base float64
		var baseErr error
		for _, k := range kinds {
			out, cerr := outs[i], errs[i]
			i++
			if k == sim.KindInOrder {
				base, baseErr = out.IPC(), cerr
			}
			if cerr == nil {
				cerr = baseErr
			}
			if cerr != nil {
				row = append(row, errCell(cerr))
				continue
			}
			sp := out.IPC() / base
			acc[k] = append(acc[k], sp)
			row = append(row, sp)
		}
		t.AddRow(row...)
	}
	row := []any{"geomean"}
	for _, k := range kinds {
		row = append(row, stats.GeoMean(acc[k]))
	}
	t.AddRow(row...)
	return &Result{
		ID:     "F8",
		Title:  "mechanism ablation",
		Tables: []*stats.Table{t},
		Notes: []string{
			"expected ordering: in-order <= scout <= execute-ahead <= SST",
		},
		Errs: collectErrs(errs),
	}, nil
}

// RollbackAccounting regenerates Figure 10: speculation failure causes
// and the wasted-work rate.
func (r *Runner) RollbackAccounting(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildAll(scale)
	if err != nil {
		return nil, err
	}
	opts := r.BaseOptions()
	cells := make([]cell, 0, len(specs))
	for _, w := range specs {
		cells = append(cells, cell{sim.KindSST, w, opts})
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload", "checkpoints", "commits", "rollbacks"}
	for c := core.RollbackCause(0); c < core.NumRollbackCauses; c++ {
		headers = append(headers, "rb:"+c.String())
	}
	headers = append(headers, "discarded-insts%", "discarded-cycles%", "defer%", "dq-occ-mean")
	t := stats.NewTable("Figure 10: SST speculation outcome accounting", headers...)
	for i, w := range specs {
		row := []any{w.Name}
		if errs[i] != nil {
			t.AddRow(fillErr(row, len(headers)-1, errs[i])...)
			continue
		}
		st := sstStats(outs[i])
		row = append(row, st.CheckpointsTaken, st.EpochCommits, st.Rollbacks)
		for cse := core.RollbackCause(0); cse < core.NumRollbackCauses; cse++ {
			row = append(row, st.RollbacksBy[cse])
		}
		// Cycle-accounting view: cycles re-attributed to rollback causes
		// (work the rollbacks discarded) as a share of all cycles.
		var rbCycles uint64
		for cse := core.RollbackCause(0); cse < core.NumRollbackCauses; cse++ {
			rbCycles += st.CPI[cpu.BktRollback0+cpu.Bucket(cse)]
		}
		row = append(row,
			stats.Pct(st.DiscardedInsts, st.DiscardedInsts+st.Retired),
			stats.Pct(rbCycles, st.Cycles),
			stats.Pct(st.Deferrals, st.Retired),
			st.DQOcc.Mean())
		t.AddRow(row...)
	}
	return &Result{ID: "F10", Title: "rollback accounting", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}
