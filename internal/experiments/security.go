package experiments

import (
	"errors"
	"fmt"
	"strings"

	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// SecureModes lists the secure-speculation configurations of the
// security grid: each single mitigation, all three together, and the
// unmitigated baseline (see docs/SECURITY.md).
var SecureModes = []string{"none", "delay", "nofwd", "ssb", "all"}

// applySecureMode sets the SST-family secure-speculation switches for
// one named mode. The switches live in the SST core configuration, so
// they are inert on the in-order and OOO baselines.
func applySecureMode(opts *sim.Options, mode string) {
	switch mode {
	case "none":
	case "delay":
		opts.SST.SecureDelayOnMiss = true
	case "nofwd":
		opts.SST.SecureNoNAForward = true
	case "ssb":
		opts.SST.SecureEagerSSBFlush = true
	case "all":
		opts.SST.SecureDelayOnMiss = true
		opts.SST.SecureNoNAForward = true
		opts.SST.SecureEagerSSBFlush = true
	default:
		panic("experiments: unknown secure mode " + mode)
	}
}

// gadgetShort compresses a gadget file name to its channel label:
// gadget_spectre_load.rk -> load.
func gadgetShort(name string) string {
	return strings.TrimSuffix(strings.TrimPrefix(name, "gadget_spectre_"), ".rk")
}

// SecurityGrid produces the security-vs-performance grid: for every
// core kind and secure-speculation mode, (a) the transient-leakage
// verdict of each built-in Spectre gadget under the differential oracle
// (sim.CheckTransientLeakage), and (b) the per-thread cost of the mode
// as geomean IPC on the commercial suite relative to the unmitigated
// configuration. The paper's SST pipeline trades rollback-based
// speculation for performance; this grid prices what taking the
// resulting transient channels off the table costs.
func (r *Runner) SecurityGrid(scale workload.Scale) (*Result, error) {
	gadgets, err := sim.LeakGadgets()
	if err != nil {
		return nil, err
	}
	specs, err := workload.BuildSuite(workload.CommercialNames, scale)
	if err != nil {
		return nil, err
	}
	kinds := sim.Kinds

	// Leakage verdicts: one oracle call per (mode, kind, gadget). A
	// verdict (leak, arch-dependence, clean) is a result, not a job
	// failure; only infrastructure panics surface through errs.
	verdicts := make([]error, len(SecureModes)*len(kinds)*len(gadgets))
	vErrs := r.forEachErrs(len(verdicts), func(i int) error {
		mode := SecureModes[i/(len(kinds)*len(gadgets))]
		k := kinds[(i/len(gadgets))%len(kinds)]
		g := gadgets[i%len(gadgets)]
		opts := r.BaseOptions()
		applySecureMode(&opts, mode)
		verdicts[i] = sim.CheckTransientLeakage(k, g, opts)
		return nil
	})

	vt := stats.NewTable("Transient-leakage verdicts (gadget corpus: leaking channels per mode)",
		append([]string{"kind"}, SecureModes...)...)
	leakCount := map[[2]string]int{} // (kind, mode) -> leaking gadgets
	for ki, k := range kinds {
		row := []any{k.String()}
		for mi, mode := range SecureModes {
			var leaks []string
			cellErr := ""
			for gi, g := range gadgets {
				i := (mi*len(kinds)+ki)*len(gadgets) + gi
				v := verdicts[i]
				if vErrs[i] != nil {
					v = vErrs[i]
				}
				switch {
				case v == nil:
				case errors.Is(v, sim.ErrTransientLeak):
					leaks = append(leaks, gadgetShort(g.Name))
					leakCount[[2]string{k.String(), mode}]++
				default:
					cellErr = errCell(v)
				}
			}
			switch {
			case cellErr != "":
				row = append(row, cellErr)
			case len(leaks) == 0:
				row = append(row, "-")
			default:
				row = append(row, strings.Join(leaks, ","))
			}
		}
		vt.AddRow(row...)
	}

	// Mitigation cost: commercial-suite IPC per (mode, kind), relative
	// to the unmitigated geomean of the same kind.
	cells := make([]cell, 0, len(SecureModes)*len(kinds)*len(specs))
	for _, mode := range SecureModes {
		for _, k := range kinds {
			opts := r.BaseOptions()
			applySecureMode(&opts, mode)
			for _, w := range specs {
				cells = append(cells, cell{k, w, opts})
			}
		}
	}
	outs, errs := r.runCells(cells)
	ct := stats.NewTable("Secure-mode per-thread cost (geomean IPC relative to unmitigated, commercial suite)",
		append([]string{"kind"}, SecureModes...)...)
	relGeo := map[[2]string]float64{}
	var cellErrs []error
	for ki, k := range kinds {
		row := []any{k.String()}
		var baseGeo float64
		for mi, mode := range SecureModes {
			var ipcs []float64
			var bad error
			for wi := range specs {
				i := (mi*len(kinds)+ki)*len(specs) + wi
				if errs[i] != nil {
					bad = errs[i]
					continue
				}
				ipcs = append(ipcs, outs[i].IPC())
			}
			if bad != nil {
				cellErrs = append(cellErrs, bad)
				row = append(row, errCell(bad))
				continue
			}
			geo := stats.GeoMean(ipcs)
			if mode == "none" {
				baseGeo = geo
			}
			rel := geo / baseGeo
			relGeo[[2]string{k.String(), mode}] = rel
			row = append(row, rel)
		}
		ct.AddRow(row...)
	}

	cost := func(mode string) float64 {
		return 100 * (1 - relGeo[[2]string{"sst", mode}])
	}
	return &Result{
		ID:     "S1",
		Title:  "secure speculation: leakage coverage vs per-thread cost",
		Tables: []*stats.Table{vt, ct},
		Notes: []string{
			fmt.Sprintf("unmitigated sst leaks %d/%d gadgets; full mitigation leaks %d",
				leakCount[[2]string{"sst", "none"}], len(gadgets), leakCount[[2]string{"sst", "all"}]),
			fmt.Sprintf("sst cost on commercial geomean: delay %.1f%%, nofwd %.1f%%, ssb %.1f%%, all %.1f%%",
				cost("delay"), cost("nofwd"), cost("ssb"), cost("all")),
			"secure modes configure the SST family only: the OOO baseline has no mitigation, like the cores Spectre was published against",
		},
		Errs: append(collectErrs(vErrs), collectErrs(append(cellErrs, nil))...),
	}, nil
}
