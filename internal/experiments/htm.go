package experiments

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// HTMContention regenerates Figure 16 (extension): ROCK's hardware
// transactional memory — built on the same checkpoint/SSB machinery as
// SST — against a cas retry loop, on the classic contended-counter
// microbenchmark. Reports cycles to complete a fixed total of
// increments, plus HTM abort rates, as core count grows.
func (r *Runner) HTMContention(scale workload.Scale) (*Result, error) {
	perCore := 150
	if scale == workload.ScaleFull {
		perCore = 1000
	}
	counts := []int{1, 2, 4, 8}
	// One pool job per (count, variant) chip run: even indices are the
	// HTM variant, odd the cas variant.
	type chipResult struct {
		cycles, aborts, commits uint64
	}
	res := make([]chipResult, 2*len(counts))
	opts := r.BaseOptions()
	errs := r.forEachErrs(len(res), func(i int) error {
		n := counts[i/2]
		src := htmCounterSrc(perCore)
		if i%2 == 1 {
			src = casCounterSrc(perCore)
		}
		cycles, aborts, commits, err := runCounterChip(src, n, opts)
		if err != nil {
			return err
		}
		res[i] = chipResult{cycles, aborts, commits}
		return nil
	})
	t := stats.NewTable("Figure 16 (extension): contended counter — HTM vs cas (lower cycles = better)",
		"cores", "htm cycles", "htm aborts/commit", "cas cycles", "htm/cas speedup")
	for ci, n := range counts {
		if err := errs[2*ci]; err != nil {
			t.AddRow(fillErr([]any{n}, 4, err)...)
			continue
		}
		if err := errs[2*ci+1]; err != nil {
			htm := res[2*ci]
			t.AddRow(n, htm.cycles, stats.Ratio(htm.aborts, htm.commits), errCell(err), errCell(err))
			continue
		}
		htm, cas := res[2*ci], res[2*ci+1]
		t.AddRow(n, htm.cycles, stats.Ratio(htm.aborts, htm.commits), cas.cycles,
			float64(cas.cycles)/float64(htm.cycles))
	}
	return &Result{
		ID: "F16", Title: "HTM vs atomics under contention", Tables: []*stats.Table{t},
		Notes: []string{
			"the transaction is optimistic: uncontended it is lock-free reads+stores; contended, conflict aborts provide the serialization cas provides pessimistically",
		},
		Errs: collectErrs(errs),
	}, nil
}

func htmCounterSrc(n int) string {
	return fmt.Sprintf(`
		.org 0x10000
	worker:
		movi r5, 0x200000
		movi r20, %d
	loop:
		txbegin r10, handler
		ld64 r6, (r5)
		addi r6, r6, 1
		st64 r6, (r5)
		txcommit
		addi r20, r20, -1
		bne  r20, zero, loop
		halt
	handler:
		j loop
	`, n)
}

func casCounterSrc(n int) string {
	return fmt.Sprintf(`
		.org 0x10000
	worker:
		movi r5, 0x200000
		movi r20, %d
	loop:
		ld64 r6, (r5)      ; expected
		addi r7, r6, 1     ; desired
		mv   r8, r7
		cas  r8, (r5), r6  ; r8 -> old value
		bne  r8, r6, loop  ; lost the race: retry without decrementing
		addi r20, r20, -1
		bne  r20, zero, loop
		halt
	`, n)
}

// runCounterChip runs src on n shared-memory SST cores and returns chip
// cycles plus transactional abort/commit totals.
func runCounterChip(src string, n int, opts sim.Options) (cycles, aborts, commits uint64, err error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return 0, 0, 0, err
	}
	entry, ok := prog.Symbol("worker")
	if !ok {
		return 0, 0, 0, fmt.Errorf("htm experiment: no worker symbol")
	}
	entries := make([]uint64, n)
	for i := range entries {
		entries[i] = entry
	}
	chip, err := cmp.NewShared(opts.Hier, opts.Pred, prog, entries,
		func(id int, m *cpu.Machine, e uint64) (cpu.Core, error) {
			return core.New(m, opts.SST, e), nil
		})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := chip.Run(opts.CycleLimit()); err != nil {
		return 0, 0, 0, err
	}
	for _, cr := range chip.Cores {
		st := cr.(*core.Core).Stats()
		aborts += st.Tx.Aborts
		commits += st.Tx.Commits
	}
	return chip.Cycles(), aborts, commits, nil
}
