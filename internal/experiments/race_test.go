package experiments

import (
	"strings"
	"sync"
	"testing"

	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// raceIDs deliberately overlaps cells: F8 and F10 share F1's
// default-option runs and T2 its in-order baselines, so a concurrent
// regeneration exercises the singleflight dedup paths, not just the
// worker pool. F12 and F16 add the SMT-pair and CMP drivers, whose
// jobs run whole chips rather than cached single-core cells. The set
// is kept cheap enough to fit the race detector's slowdown.
var raceIDs = []string{"T2", "F1", "F8", "F10", "F12", "F16"}

func renderResult(t *testing.T, r *Runner, id string) string {
	t.Helper()
	res, err := r.Run(id, workload.ScaleTest)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	return sb.String()
}

// TestConcurrentRegeneration is the harness's race proof (run under
// `go test -race`): whole experiments regenerate concurrently on one
// shared Runner — racing on the run cache, the worker pool and every
// model the cells construct — and each must render byte-identically to
// a serial single-worker run on a fresh Runner.
func TestConcurrentRegeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := NewRunner()
	serial.SetJobs(1)
	want := make(map[string]string, len(raceIDs))
	for _, id := range raceIDs {
		want[id] = renderResult(t, serial, id)
	}

	shared := NewRunner()
	shared.SetJobs(4) // force a multi-worker pool even on 1-CPU hosts
	got := make([]string, len(raceIDs))
	var wg sync.WaitGroup
	wg.Add(len(raceIDs))
	for i, id := range raceIDs {
		go func(i int, id string) {
			defer wg.Done()
			res, err := shared.Run(id, workload.ScaleTest)
			if err != nil {
				t.Errorf("%s: %v", id, err)
				return
			}
			var sb strings.Builder
			res.Fprint(&sb)
			got[i] = sb.String()
		}(i, id)
	}
	wg.Wait()
	for i, id := range raceIDs {
		if got[i] != want[id] {
			t.Errorf("%s: concurrent output differs from serial run:\n--- serial ---\n%s--- concurrent ---\n%s", id, want[id], got[i])
		}
	}
}

// TestRunCacheSharesCells asserts the content-addressed cache: two
// experiments requesting the same (kind, program, options) cell get
// the same outcome object, and a changed option gets a distinct cell.
func TestRunCacheSharesCells(t *testing.T) {
	r := NewRunner()
	w, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	a, err := r.run(sim.KindSST, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.run(sim.KindSST, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Core != b.Core {
		t.Error("identical cells did not share one cached run")
	}
	opts2 := sim.DefaultOptions()
	opts2.SST.DQSize = 8
	c, err := r.run(sim.KindSST, w, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Core == a.Core {
		t.Error("cells with different options collided in the cache")
	}
}
