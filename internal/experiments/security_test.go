package experiments

import (
	"strings"
	"testing"

	"rocksim/internal/workload"
)

// TestSecurityGrid pins the qualitative security claims: the
// unmitigated SST family leaks the gadget corpus, full mitigation is
// clean, and mitigations never make a core faster than its unmitigated
// self (beyond float noise).
func TestSecurityGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := NewRunner()
	res, err := r.SecurityGrid(workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) > 0 {
		t.Fatalf("cell errors: %v", res.Errs)
	}
	verdict := map[string]map[string]string{} // kind -> mode -> cell
	for _, row := range res.Tables[0].Rows() {
		verdict[row[0]] = map[string]string{}
		for i, mode := range SecureModes {
			verdict[row[0]][mode] = row[i+1]
		}
	}
	for _, k := range []string{"sst", "sst-big", "sst-ea", "scout"} {
		if verdict[k]["none"] != "load,store" {
			t.Errorf("unmitigated %s: verdict %q, want load,store", k, verdict[k]["none"])
		}
		for _, mode := range []string{"delay", "nofwd", "all"} {
			if verdict[k][mode] != "-" {
				t.Errorf("%s under %s: verdict %q, want clean", k, mode, verdict[k][mode])
			}
		}
		if verdict[k]["ssb"] != "load" {
			t.Errorf("%s under ssb: verdict %q, want load (ssb closes only the store channel)", k, verdict[k]["ssb"])
		}
	}
	if verdict["inorder"]["none"] != "-" {
		t.Errorf("inorder leaked: %q", verdict["inorder"]["none"])
	}
	if verdict["ooo-small"]["all"] != "load" {
		t.Errorf("ooo-small under all: verdict %q, want load (no mitigation exists for the OOO baseline)",
			verdict["ooo-small"]["all"])
	}
	for _, row := range res.Tables[1].Rows() {
		for i, mode := range SecureModes {
			var rel float64
			if _, err := fscan(row[i+1], &rel); err != nil {
				t.Fatalf("cost cell %s/%s = %q: %v", row[0], mode, row[i+1], err)
			}
			if rel > 1.001 {
				t.Errorf("%s under %s: relative IPC %.4f > 1 (mitigation sped the core up?)", row[0], mode, rel)
			}
			if rel < 0.05 {
				t.Errorf("%s under %s: relative IPC %.4f implausibly low", row[0], mode, rel)
			}
		}
	}
	var sb strings.Builder
	res.Fprint(&sb)
	if !strings.Contains(sb.String(), "unmitigated sst leaks 2/2 gadgets; full mitigation leaks 0") {
		t.Errorf("headline note missing or wrong:\n%s", sb.String())
	}
}
