package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// testSpec returns a small real workload so cacheKey has a genuine
// program image to hash; the injected computeFn never simulates it.
func testSpec(t *testing.T) *workload.Spec {
	t.Helper()
	w, err := workload.Build("chase", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestDeterministicPanicBoundedRetry drives many concurrent requests
// for one cell whose compute always crashes and proves the documented
// contract end to end: the compute runs exactly twice (the one bounded
// retry inside the singleflight fill — the pool-level retry must hit
// the cache, not recompute), every sharer receives the same attributed
// *PanicError, and the cell renders as ERR(panic).
func TestDeterministicPanicBoundedRetry(t *testing.T) {
	r := NewRunner()
	r.SetJobs(4)
	spec := testSpec(t)
	var computes atomic.Int64
	r.computeFn = func(_ context.Context, k sim.Kind, s *workload.Spec, o sim.Options) (sim.Outcome, error) {
		computes.Add(1)
		// Mimic compute's contract: panics are recovered and attributed
		// before they reach the cache fill.
		return sim.Outcome{}, &PanicError{Value: "boom", Stack: []byte("stack")}
	}

	const n = 8
	outs := make([]error, n)
	errs := r.forEachErrs(n, func(i int) error {
		_, err := r.run(sim.KindSST, spec, sim.DefaultOptions())
		outs[i] = err
		return err
	})
	if got := computes.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want exactly 2 (one bounded retry)", got)
	}
	var first *PanicError
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d: no error", i)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("request %d: error %v is not a *PanicError", i, err)
		}
		if first == nil {
			first = pe
		} else if pe != first {
			t.Errorf("request %d: got a distinct *PanicError instance; singleflight must share one", i)
		}
		if errCell(err) != "ERR(panic)" {
			t.Errorf("request %d: errCell = %q, want ERR(panic)", i, errCell(err))
		}
	}
	// 8 pool jobs, each retried once on the panic error: 16 cache
	// requests, of which exactly one computed.
	hits, misses := r.CacheStats()
	if misses != 1 || hits != 15 {
		t.Errorf("cache stats hits=%d misses=%d, want 15/1", hits, misses)
	}
}

// TestTransientPanicRecovers: a crash on the first compute only is
// retried once and succeeds for every sharer.
func TestTransientPanicRecovers(t *testing.T) {
	r := NewRunner()
	spec := testSpec(t)
	var computes atomic.Int64
	r.computeFn = func(_ context.Context, k sim.Kind, s *workload.Spec, o sim.Options) (sim.Outcome, error) {
		if computes.Add(1) == 1 {
			return sim.Outcome{}, &PanicError{Value: "transient", Stack: []byte("stack")}
		}
		return sim.Outcome{Cycles: 1234}, nil
	}
	errs := r.forEachErrs(4, func(i int) error {
		out, err := r.run(sim.KindSST, spec, sim.DefaultOptions())
		if err == nil && out.Cycles != 1234 {
			t.Errorf("request %d: wrong cached outcome %d", i, out.Cycles)
		}
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := computes.Load(); got != 2 {
		t.Errorf("compute ran %d times, want 2", got)
	}
}

// TestRunJobBoundedRetry covers the pool layer itself: a job that
// panics (not just returns an error) is recovered into an attributed
// *PanicError carrying the stack, and attempted exactly twice.
func TestRunJobBoundedRetry(t *testing.T) {
	attempts := 0
	err := runJob(3, func(i int) error {
		attempts++
		panic("job crash")
	})
	if attempts != 2 {
		t.Fatalf("job attempted %d times, want 2", attempts)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Value != "job crash" || len(pe.Stack) == 0 {
		t.Errorf("panic not attributed: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "cell 3") {
		t.Errorf("error %q does not name the cell", err)
	}
}

// TestRunCell exercises the exported cell entry point against a real
// simulation: the result matches sim.Run exactly and the second request
// is a cache hit.
func TestRunCell(t *testing.T) {
	r := NewRunner()
	spec := testSpec(t)
	opts := sim.DefaultOptions()
	want, err := sim.Run(sim.KindInOrder, spec.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := r.RunCell(sim.KindInOrder, spec, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.Retired != want.Retired {
			t.Fatalf("request %d: cycles/retired %d/%d, want %d/%d",
				i, got.Cycles, got.Retired, want.Cycles, want.Retired)
		}
	}
	hits, misses := r.CacheStats()
	if misses != 1 || hits != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}
