package experiments

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// simPool hands out reusable sim.Instances keyed by (kind, options
// shape): the full machine — functional memory, cache hierarchy,
// branch predictor, core model — is constructed once per shape and
// reset between runs, instead of reallocated per run (~8.6k allocations
// each). Shapes are keyed by sim.PoolKey, which covers exactly the
// construction-affecting options; per-run options (program, watchdogs,
// faults, observability) are applied by Instance.Run, so two cells
// differing only in those share one pool. Each sync.Pool entry is used
// by one run at a time; under memory pressure the GC reclaims idle
// instances, which is the correct behavior for a cache of
// reconstructible machines.
type simPool struct {
	mu    sync.Mutex
	pools map[string]*sync.Pool

	// reused counts runs served by a recycled instance; built counts
	// instance constructions. Read via Runner.PoolStats.
	reused, built uint64
}

// get returns a ready instance for the cell's shape: a recycled one
// when the pool has one idle, a freshly built one otherwise.
func (p *simPool) get(k sim.Kind, opts sim.Options) (*sim.Instance, error) {
	key := sim.PoolKey(k, opts)
	p.mu.Lock()
	if p.pools == nil {
		p.pools = make(map[string]*sync.Pool)
	}
	sp := p.pools[key]
	if sp == nil {
		sp = &sync.Pool{}
		p.pools[key] = sp
	}
	p.mu.Unlock()
	if in, _ := sp.Get().(*sim.Instance); in != nil {
		p.mu.Lock()
		p.reused++
		p.mu.Unlock()
		return in, nil
	}
	in, err := sim.NewInstance(k, opts)
	if err == nil {
		p.mu.Lock()
		p.built++
		p.mu.Unlock()
	}
	return in, err
}

// put returns an instance to its shape's pool after a successful (or
// cleanly errored) run. Callers must NOT put back an instance whose run
// panicked: a panic can leave the machine in an arbitrary state, and
// the pool's contract is that every instance it hands out is
// indistinguishable from freshly built. compute enforces this by
// putting only on the non-panic path.
func (p *simPool) put(k sim.Kind, opts sim.Options, in *sim.Instance) {
	p.mu.Lock()
	sp := p.pools[sim.PoolKey(k, opts)]
	p.mu.Unlock()
	if sp != nil {
		sp.Put(in)
	}
}

// PoolStats reports simulator-pool traffic since the Runner was
// created: reused (runs served by a recycled instance) and built
// (instance constructions).
func (r *Runner) PoolStats() (reused, built uint64) {
	r.pool.mu.Lock()
	defer r.pool.mu.Unlock()
	return r.pool.reused, r.pool.built
}

// compute runs one simulation cell on a pooled instance, converting a
// panic inside the model into an attributed error. Recovering here (not
// just in the worker pool) guarantees the cache entry's done channel
// closes even when the simulator crashes — a panicking cell must never
// deadlock the singleflight sharers blocked on it. A panicked instance
// is dropped, never pooled; a run that merely errored (watchdog trip)
// is fully cleared by the next Reset and goes back.
//
// Instance.Run returns a detached outcome — stats-only copies of the
// core and hierarchy — so the run cache and its consumers (reports,
// registries, the service layer) hold exact frozen figures while the
// live instance is reset and reused.
func (r *Runner) compute(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (out sim.Outcome, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("experiments: %v on %s: %w", k, spec.Name,
				&PanicError{Value: v, Stack: debug.Stack()})
		}
	}()
	in, err := r.pool.get(k, opts)
	if err != nil {
		return sim.Outcome{}, fmt.Errorf("experiments: %v on %s: %w", k, spec.Name, err)
	}
	out, err = in.Run(ctx, spec.Program, opts)
	r.pool.put(k, opts, in)
	if err != nil {
		err = fmt.Errorf("experiments: %v on %s: %w", k, spec.Name, err)
	}
	return out, err
}
