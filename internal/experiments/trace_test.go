package experiments

import (
	"context"
	"testing"
	"time"

	"rocksim/internal/obs"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// spanNames flattens a tracer snapshot into name -> count.
func spanNames(tr *obs.Tracer) map[string]int {
	names := map[string]int{}
	for _, s := range tr.Snapshot() {
		names[s.Name]++
	}
	return names
}

// TestSingleflightSpanNesting pins the span contract for a shared
// cache fill: the originating request owns the single compute span,
// while a joiner that arrives mid-fill records cache-lookup (hit) plus
// cache-join — and never a duplicate compute.
func TestSingleflightSpanNesting(t *testing.T) {
	r := NewRunner()
	r.SetJobs(4)
	spec := testSpec(t)
	started := make(chan struct{})
	release := make(chan struct{})
	r.computeFn = func(_ context.Context, k sim.Kind, s *workload.Spec, o sim.Options) (sim.Outcome, error) {
		close(started)
		<-release
		return sim.Outcome{}, nil
	}

	trA := obs.NewTracer()
	ctxA := obs.WithTracer(context.Background(), trA)
	doneA := make(chan struct{})
	go func() {
		defer close(doneA)
		if _, err := r.RunCellCtx(ctxA, sim.KindSST, spec, sim.DefaultOptions()); err != nil {
			t.Error(err)
		}
	}()
	<-started

	// B asks for the same cell while A's fill is in flight. Wait until
	// B's cache-join span exists (it is created just before B blocks on
	// the fill), then release the compute.
	trB := obs.NewTracer()
	ctxB := obs.WithTracer(context.Background(), trB)
	doneB := make(chan struct{})
	go func() {
		defer close(doneB)
		if _, err := r.RunCellCtx(ctxB, sim.KindSST, spec, sim.DefaultOptions()); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for spanNames(trB)["cache-join"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never opened a cache-join span")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-doneA
	<-doneB

	a, b := spanNames(trA), spanNames(trB)
	if a["compute"] != 1 || a["cache-join"] != 0 {
		t.Errorf("originator spans %v, want exactly one compute and no cache-join", a)
	}
	if b["compute"] != 0 || b["cache-join"] != 1 {
		t.Errorf("joiner spans %v, want cache-join and no duplicate compute", b)
	}
	for _, s := range trB.Snapshot() {
		if s.Name != "cache-lookup" {
			continue
		}
		hit := ""
		for _, at := range s.Attrs {
			if at.Key == "hit" {
				hit = at.Value
			}
		}
		if hit != "true" {
			t.Errorf("joiner cache-lookup hit attr %q, want true", hit)
		}
	}

	// C arrives after the fill completed: a plain hit, no join.
	trC := obs.NewTracer()
	ctxC := obs.WithTracer(context.Background(), trC)
	if _, err := r.RunCellCtx(ctxC, sim.KindSST, spec, sim.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	c := spanNames(trC)
	if c["compute"] != 0 || c["cache-join"] != 0 || c["cache-lookup"] != 1 {
		t.Errorf("post-fill requester spans %v, want a lone cache-lookup hit", c)
	}
}
