//go:build !race

package experiments

const raceDetectorOn = false
