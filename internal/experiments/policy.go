package experiments

import (
	"fmt"

	"rocksim/internal/core"
	"rocksim/internal/mem"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// PolicyAblation regenerates Figure 13 (extension): the SST design
// choices this reproduction had to make, each toggled independently
// against the default configuration — the "ablation benches for design
// choices" DESIGN.md calls out:
//
//   - CheckpointPerMiss: a fresh checkpoint per deferring miss vs a
//     single epoch per speculation region;
//   - CheckpointOnDeferredBranch: bounding deferred-branch rollbacks;
//   - ScoutOnDQFull: discard-and-prefetch vs stall when the DQ fills;
//   - DeferLongOps: treating divides as checkpointable events.
func (r *Runner) PolicyAblation(scale workload.Scale) (*Result, error) {
	names := append(append([]string{}, workload.CommercialNames...), "mcf", "gcc")
	specs, err := workload.BuildSuite(names, scale)
	if err != nil {
		return nil, err
	}
	type variant struct {
		name   string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"default", func(c *core.Config) {}},
		{"-ckpt/miss", func(c *core.Config) { c.CheckpointPerMiss = false }},
		{"-ckpt/branch", func(c *core.Config) { c.CheckpointOnDeferredBranch = false }},
		{"+scout-on-full", func(c *core.Config) { c.ScoutOnDQFull = true }},
		{"-defer-longops", func(c *core.Config) { c.DeferLongOps = false }},
	}
	cells := make([]cell, 0, len(specs)*len(variants))
	for _, w := range specs {
		for _, v := range variants {
			opts := r.BaseOptions()
			v.mutate(&opts.SST)
			cells = append(cells, cell{sim.KindSST, w, opts})
		}
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload"}
	for _, v := range variants {
		headers = append(headers, v.name)
	}
	t := stats.NewTable("Figure 13 (extension): SST policy ablation (IPC)", headers...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		for range variants {
			if errs[i] != nil {
				row = append(row, errCell(errs[i]))
			} else {
				row = append(row, outs[i].IPC())
			}
			i++
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F13", Title: "SST policy ablation", Tables: []*stats.Table{t},
		Notes: []string{"each column toggles one design choice against the default configuration"},
		Errs:  collectErrs(errs),
	}, nil
}

// PrefetchInterplay regenerates Figure 14 (extension): hardware
// prefetching vs execution-driven prefetching. A stride prefetcher
// captures regular streams cheaply, shrinking SST's advantage there; it
// cannot follow data-dependent access patterns, where SST keeps its
// edge. This interplay was a central contemporary debate around
// runahead/scout/SST designs.
func (r *Runner) PrefetchInterplay(scale workload.Scale) (*Result, error) {
	names := []string{"stream", "quantum", "oltp", "jbb"}
	specs, err := workload.BuildSuite(names, scale)
	if err != nil {
		return nil, err
	}
	kinds := []sim.Kind{sim.KindInOrder, sim.KindSST}
	pfs := []mem.PrefetchKind{mem.PrefetchNone, mem.PrefetchStride}
	cells := make([]cell, 0, len(specs)*len(kinds)*len(pfs))
	for _, w := range specs {
		for _, k := range kinds {
			for _, pf := range pfs {
				opts := r.BaseOptions()
				opts.Hier.Prefetch = pf
				opts.Hier.Stride = mem.DefaultStrideConfig()
				cells = append(cells, cell{k, w, opts})
			}
		}
	}
	outs, errs := r.runCells(cells)
	headers := []string{"workload"}
	for _, k := range kinds {
		for _, pf := range pfs {
			headers = append(headers, fmt.Sprintf("%v/%v", k, pf))
		}
	}
	headers = append(headers, "sst-gain no-pf", "sst-gain stride-pf")
	t := stats.NewTable("Figure 14 (extension): SST vs hardware stride prefetching (IPC)", headers...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		ipc := map[string]float64{}
		var rowErr error
		for _, k := range kinds {
			for _, pf := range pfs {
				if cerr := errs[i]; cerr != nil {
					if rowErr == nil {
						rowErr = cerr
					}
					row = append(row, errCell(cerr))
				} else {
					key := fmt.Sprintf("%v/%v", k, pf)
					ipc[key] = outs[i].IPC()
					row = append(row, outs[i].IPC())
				}
				i++
			}
		}
		if rowErr != nil {
			row = fillErr(row, 2, rowErr) // the gain ratios need every cell
		} else {
			row = append(row,
				ipc["sst/none"]/ipc["inorder/none"],
				ipc["sst/stride"]/ipc["inorder/stride"])
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F14", Title: "prefetcher interplay", Tables: []*stats.Table{t},
		Notes: []string{
			"stride prefetching narrows SST's edge on regular streams (stream/quantum) but not on data-dependent commercial patterns (oltp/jbb)",
		},
		Errs: collectErrs(errs),
	}, nil
}
