package experiments

import (
	"runtime/debug"
	"testing"

	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// TestPoolReusesInstances: distinct cache cells that share a machine
// shape must be served by one recycled simulator, not one construction
// each. GC is paused for the assertion window — sync.Pool is allowed to
// drop idle instances at collection, and this test is about reuse
// behavior, not GC policy.
func TestPoolReusesInstances(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	r := NewRunner()
	r.SetJobs(1)
	spec, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	// Vary a per-run option so every request is a cache MISS (distinct
	// fingerprint) with an identical pool shape.
	for i := 0; i < 4; i++ {
		opts.MaxCycles = uint64(100_000_000 + i)
		if _, err := r.RunCell(sim.KindSST, spec, opts); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := r.CacheStats()
	if hits != 0 || misses != 4 {
		t.Fatalf("want 4 cache misses and 0 hits, got %d misses, %d hits", misses, hits)
	}
	reused, built := r.PoolStats()
	if built != 1 {
		t.Errorf("want 1 instance built for one shape, got %d", built)
	}
	if reused != 3 {
		t.Errorf("want 3 pooled reuses, got %d", reused)
	}

	// A different shape must not share instances with the first.
	other := opts
	other.SST.DQSize *= 2
	if _, err := r.RunCell(sim.KindSST, spec, other); err != nil {
		t.Fatal(err)
	}
	if _, built = r.PoolStats(); built != 2 {
		t.Errorf("want a second instance for a second shape, got %d built", built)
	}

	// A cache hit must not touch the pool at all.
	reused, _ = r.PoolStats()
	if _, err := r.RunCell(sim.KindSST, spec, other); err != nil {
		t.Fatal(err)
	}
	if r2, b2 := r.PoolStats(); r2 != reused || b2 != 2 {
		t.Errorf("cache hit touched the pool: reused %d->%d, built 2->%d", reused, r2, b2)
	}
}

// TestPoolReusesAfterWatchdogError: a cell that errors cleanly (a
// cycle-limit trip) must return its instance to the pool, and the next
// cell on that shape must compute on it correctly — Reset clears a
// half-finished run completely. (A cell that PANICS, by contrast, never
// returns its instance: compute's put sits after Run returns, so a
// panic unwinds past it and the corrupt machine is garbage-collected.
// The sim-level differential tests cover the reuse semantics;
// the panicking compute seam here bypasses the pool, so that drop
// path is enforced structurally rather than end to end.)
func TestPoolReusesAfterWatchdogError(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	r := NewRunner()
	r.SetJobs(1)
	spec, err := workload.Build("oltp", workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	opts.MaxCycles = 10 // trips immediately
	if _, err := r.RunCell(sim.KindSST, spec, opts); err == nil {
		t.Fatal("want a cycle-limit error")
	}
	opts.MaxCycles = 0
	out, err := r.RunCell(sim.KindSST, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sim.Run(sim.KindSST, spec.Program, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cycles != fresh.Cycles || out.Retired != fresh.Retired || out.Regs != fresh.Regs {
		t.Errorf("run after watchdog error diverges from fresh: pooled %d/%d, fresh %d/%d",
			out.Cycles, out.Retired, fresh.Cycles, fresh.Retired)
	}
	if reused, built := r.PoolStats(); built != 1 || reused != 1 {
		t.Errorf("want the errored instance recycled (1 built, 1 reused), got %d built, %d reused", built, reused)
	}
}
