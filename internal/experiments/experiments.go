// Package experiments regenerates every table and figure of the
// reproduced evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for measured results). Each experiment is a pure
// function from a workload Scale to one or more printable tables plus
// machine-readable rows that the tests assert on.
package experiments

import (
	"fmt"
	"io"

	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// Result is one regenerated artifact (a paper table or figure).
type Result struct {
	ID     string // e.g. "F1"
	Title  string
	Tables []*stats.Table
	// Notes carry headline observations (also asserted by tests).
	Notes []string
}

// Fprint renders the result.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "---- %s: %s ----\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// FprintCharts renders each table row as a horizontal bar chart —
// terminal-friendly figure output.
func (r *Result) FprintCharts(w io.Writer) {
	for _, t := range r.Tables {
		for _, ch := range stats.ChartsFromTable(t) {
			ch.Fprint(w, 40)
			fmt.Fprintln(w)
		}
	}
}

// Runner runs experiments with caching of workload runs, so that
// experiments sharing a (kind, workload, options) run do not repeat it.
type Runner struct {
	Scale sim.Kind // unused; kept simple
	cache map[string]sim.Outcome
}

// NewRunner returns a Runner.
func NewRunner() *Runner {
	return &Runner{cache: make(map[string]sim.Outcome)}
}

// run executes workload w on core kind k with options o, caching by key.
func (r *Runner) run(key string, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	ck := fmt.Sprintf("%s|%v|%s", key, k, spec.Name)
	if out, ok := r.cache[ck]; ok {
		return out, nil
	}
	out, err := sim.Run(k, spec.Program, opts)
	if err != nil {
		return out, fmt.Errorf("experiments: %v on %s: %w", k, spec.Name, err)
	}
	r.cache[ck] = out
	return out, nil
}

// All lists every experiment id in presentation order.
var All = []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "T3"}

// Run dispatches one experiment by id.
func (r *Runner) Run(id string, scale workload.Scale) (*Result, error) {
	switch id {
	case "T1":
		return ConfigTable(), nil
	case "T2":
		return WorkloadTable(scale)
	case "F1":
		return r.PerfComparison(scale)
	case "F2":
		return r.ModeBreakdown(scale)
	case "F3":
		return r.DQSweep(scale)
	case "F4":
		return r.CheckpointSweep(scale)
	case "F5":
		return r.SSBSweep(scale)
	case "F6":
		return r.MemLatencySweep(scale)
	case "F7":
		return r.MLPComparison(scale)
	case "F8":
		return r.Ablation(scale)
	case "F9":
		return r.CMPScaling(scale)
	case "F10":
		return r.RollbackAccounting(scale)
	case "F11":
		return r.BranchSweep(scale)
	case "F12":
		return r.SMTMode(scale)
	case "F13":
		return r.PolicyAblation(scale)
	case "F14":
		return r.PrefetchInterplay(scale)
	case "F15":
		return r.TLBSensitivity(scale)
	case "F16":
		return r.HTMContention(scale)
	case "T3":
		return AreaPowerProxy(), nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
