// Package experiments regenerates every table and figure of the
// reproduced evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for measured results). Each experiment is a pure
// function from a workload Scale to one or more printable tables plus
// machine-readable rows that the tests assert on.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"runtime/debug"
	"sync"

	"rocksim/internal/cpu"
	"rocksim/internal/obs"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// Result is one regenerated artifact (a paper table or figure).
type Result struct {
	ID     string // e.g. "F1"
	Title  string
	Tables []*stats.Table
	// Notes carry headline observations (also asserted by tests).
	Notes []string
	// Errs lists the attributed failures of cells that could not be
	// computed (watchdog trips, panics). The corresponding table cells
	// render as ERR(reason); the rest of the table is real data.
	Errs []string
}

// Fprint renders the result.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "---- %s: %s ----\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, e := range r.Errs {
		fmt.Fprintf(w, "ERR: %s\n", e)
	}
}

// PanicError is a panic recovered from a simulation cell, carrying the
// panicking goroutine's stack so a crashing model is attributable from
// the experiment report alone.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }

// errCell renders a failed cell for a table: a short ERR(reason) tag in
// place of the number, with the reason classifying the failure.
func errCell(err error) string {
	var pe *PanicError
	var re *RemoteError
	switch {
	case errors.Is(err, cpu.ErrLivelock):
		return "ERR(livelock)"
	case errors.Is(err, cpu.ErrCycleLimit):
		return "ERR(cycle-limit)"
	case errors.Is(err, cpu.ErrDeadline):
		return "ERR(deadline)"
	case errors.As(err, &pe):
		return "ERR(panic)"
	case errors.As(err, &re) && re.Class == ErrClassPanic:
		// A panic on a remote shard: same cell text as a local panic.
		return "ERR(panic)"
	}
	return "ERR(run-failed)"
}

// fillErr appends n ERR(reason) cells to a table row whose simulation
// failed, so the row keeps its column count.
func fillErr(row []any, n int, err error) []any {
	for j := 0; j < n; j++ {
		row = append(row, errCell(err))
	}
	return row
}

// collectErrs flattens per-cell errors into attributed report lines,
// deduplicating (shared cache entries surface one failure many times).
func collectErrs(errs []error) []string {
	var out []string
	seen := make(map[string]bool)
	for _, err := range errs {
		if err == nil || seen[err.Error()] {
			continue
		}
		seen[err.Error()] = true
		out = append(out, err.Error())
	}
	return out
}

// FprintCharts renders each table row as a horizontal bar chart —
// terminal-friendly figure output.
func (r *Result) FprintCharts(w io.Writer) {
	for _, t := range r.Tables {
		for _, ch := range stats.ChartsFromTable(t) {
			ch.Fprint(w, 40)
			fmt.Fprintln(w)
		}
	}
}

// Runner runs experiments with caching of workload runs, so that
// experiments sharing a (kind, workload, options) run do not repeat it.
// It is safe for concurrent use: drivers submit their grid cells to a
// worker pool bounded by SetJobs, and concurrent requests for the same
// cell — within one experiment or across experiments racing on a
// shared Runner — deduplicate onto a single simulation (singleflight).
type Runner struct {
	mu      sync.Mutex
	jobs    int
	sem     chan struct{}
	cache   map[string]*cacheEntry
	base    sim.Options
	hasBase bool

	// hits counts cell requests answered from the cache (including
	// singleflight sharers that waited on an in-flight compute); misses
	// counts requests that had to compute. Read via CacheStats.
	hits, misses uint64

	// pool recycles fully constructed simulators across cache misses,
	// keyed by (kind, options shape); see pool.go. Cache misses that
	// share a machine shape skip the whole construction cost and only
	// pay for a reset.
	pool simPool

	// computeFn, when non-nil, replaces the compute function for cache
	// fills. Test seam: the retry/singleflight tests inject counting and
	// panicking computes without needing a crashing simulator.
	computeFn func(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error)
}

// cacheEntry is one cell of the run cache. The first requester computes
// the outcome and closes done; every other requester blocks on done and
// reads the shared result.
type cacheEntry struct {
	done chan struct{}
	out  sim.Outcome
	err  error
}

// NewRunner returns a Runner with one worker per available CPU.
func NewRunner() *Runner {
	return &Runner{jobs: runtime.GOMAXPROCS(0), cache: make(map[string]*cacheEntry)}
}

// SetJobs bounds the worker pool to n concurrent simulation runs
// (the -j flag of cmd/sstbench). n < 1 resets to one per CPU. Results
// are assembled in presentation order regardless of n, so output is
// byte-identical to a SetJobs(1) run.
func (r *Runner) SetJobs(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	r.mu.Lock()
	r.jobs = n
	r.sem = nil // re-sized on next use
	r.mu.Unlock()
}

// Jobs returns the worker-pool bound.
func (r *Runner) Jobs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs
}

// SetBaseOptions sets the sim.Options every experiment starts from
// (drivers still apply their per-cell overrides on top). This is how
// cmd/sstbench threads -faults and -timeout into the whole grid.
func (r *Runner) SetBaseOptions(o sim.Options) {
	r.mu.Lock()
	r.base, r.hasBase = o, true
	r.mu.Unlock()
}

// BaseOptions returns the options experiments start from:
// sim.DefaultOptions unless SetBaseOptions overrode them.
func (r *Runner) BaseOptions() sim.Options {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hasBase {
		return r.base
	}
	return sim.DefaultOptions()
}

// semaphore returns the pool's shared slot channel, sized to the
// current job bound. Sharing one semaphore across concurrent forEach
// calls keeps the bound global to the Runner, not per call.
func (r *Runner) semaphore() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sem == nil {
		r.sem = make(chan struct{}, r.jobs)
	}
	return r.sem
}

// forEachErrs runs job(0..n-1) on the bounded worker pool, waits for
// ALL of them regardless of individual failures, and returns the
// per-job errors (nil entries on success). A panicking job is recovered
// into a *PanicError and retried once — a crash in one cell degrades
// that cell, never the whole experiment or the process.
func (r *Runner) forEachErrs(n int, job func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	sem := r.semaphore()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = runJob(i, job)
		}(i)
	}
	wg.Wait()
	return errs
}

// forEach is forEachErrs for drivers where any failure is fatal: it
// still waits for every job, then returns the lowest-index error so
// failures are as deterministic as results.
func (r *Runner) forEach(n int, job func(i int) error) error {
	for _, err := range r.forEachErrs(n, job) {
		if err != nil {
			return err
		}
	}
	return nil
}

// runJob executes one pool job, converting a panic into an error and
// retrying once: transient crashes (a scheduling-dependent model bug)
// get a second chance, deterministic ones fail the cell attributably.
func runJob(i int, job func(i int) error) error {
	err := recoverJob(i, job)
	var pe *PanicError
	if errors.As(err, &pe) {
		err = recoverJob(i, job)
	}
	return err
}

// recoverJob runs job(i), mapping a panic to a *PanicError carrying the
// stack.
func recoverJob(i int, job func(i int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("cell %d: %w", i, &PanicError{Value: v, Stack: debug.Stack()})
		}
	}()
	return job(i)
}

// cell is one (core kind, workload, options) point of an experiment
// grid.
type cell struct {
	kind sim.Kind
	spec *workload.Spec
	opts sim.Options
}

// runCells executes every cell on the worker pool and returns the
// outcomes in cell order, so drivers can assemble tables in
// presentation order independent of completion order. Failures are
// per-cell: errs[i] non-nil means outs[i] is invalid and the driver
// should render that cell as errCell(errs[i]); the other cells are
// computed regardless.
func (r *Runner) runCells(cells []cell) (outs []sim.Outcome, errs []error) {
	outs = make([]sim.Outcome, len(cells))
	errs = r.forEachErrs(len(cells), func(i int) error {
		out, err := r.run(cells[i].kind, cells[i].spec, cells[i].opts)
		outs[i] = out
		return err
	})
	return outs, errs
}

// cacheKey derives the run-cache key from the cell's full contents:
// the core kind, the complete program image and every simulation-
// affecting option (sim.Options.Fingerprint). Call sites no longer
// encode varied options into hand-written key strings, so two cells
// that run the same simulation always share one cache slot and two
// that differ never collide.
func cacheKey(k sim.Kind, spec *workload.Spec, opts sim.Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#x|", spec.Program.Entry)
	for _, s := range spec.Program.Segments {
		fmt.Fprintf(h, "%#x:", s.Addr)
		h.Write(s.Data)
	}
	// Secret declarations change observable behavior (tainted-access
	// accounting, digest scoping) without changing a single program byte,
	// so they are part of the identity.
	for _, sec := range spec.Program.Secrets {
		fmt.Fprintf(h, "|sec%#x+%d", sec.Addr, sec.Len)
	}
	fmt.Fprintf(h, "|%s", opts.Fingerprint())
	return fmt.Sprintf("%v|%s|%016x", k, spec.Name, h.Sum64())
}

// run executes workload spec on core kind k with options opts,
// deduplicating identical cells through the content-addressed cache.
// Concurrent requests for an in-flight cell block until the first
// requester finishes (singleflight), so shared cells are computed once.
func (r *Runner) run(k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	return r.runCtx(context.Background(), k, spec, opts)
}

// runCtx is run under a caller context. The context carries the
// request's tracer (see internal/obs StartSpan), never simulation
// inputs: a cell's cache key and outcome are identical with tracing on
// or off. The span shapes are part of the service contract — a request
// that computes gets cache-lookup and compute spans; a request that
// joins an in-flight compute gets cache-lookup and cache-join, never a
// duplicate compute.
func (r *Runner) runCtx(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	ck := cacheKey(k, spec, opts)
	_, ls := obs.StartSpan(ctx, "cache-lookup")
	r.mu.Lock()
	if e, ok := r.cache[ck]; ok {
		r.hits++
		r.mu.Unlock()
		ls.SetAttr("hit", "true")
		ls.End()
		select {
		case <-e.done:
		default:
			// Singleflight: another requester is computing this cell.
			_, js := obs.StartSpan(ctx, "cache-join")
			<-e.done
			js.End()
		}
		return e.out, e.err
	}
	r.misses++
	fn := r.computeFn
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[ck] = e
	r.mu.Unlock()
	ls.SetAttr("hit", "false")
	ls.End()
	if fn == nil {
		fn = r.compute
	}
	// The compute outlives the requester's cancellation scope:
	// singleflight sharers depend on this fill, so a disconnecting
	// originator must not abort it. Tracer values still flow.
	cctx, cs := obs.StartSpan(context.WithoutCancel(ctx), "compute")
	cs.SetAttr("kind", k.String())
	cs.SetAttr("workload", spec.Name)
	out, err := fn(cctx, k, spec, opts)
	var pe *PanicError
	if errors.As(err, &pe) {
		// One bounded retry on a crash; a deterministic panic fails the
		// cell for every sharer, with the stack preserved in the error.
		cs.SetAttr("retried", "panic")
		out, err = fn(cctx, k, spec, opts)
	}
	if err != nil {
		cs.SetAttr("err", err.Error())
	}
	cs.End()
	e.out, e.err = out, err
	close(e.done)
	return out, err
}

// RunCell runs one (kind, workload, options) cell with the Runner's
// full machinery: the request takes a worker-pool slot (so concurrent
// callers respect the SetJobs bound), deduplicates through the
// content-addressed cache, and recovers a crashing model into an
// attributed *PanicError with one bounded retry. This is the cell-level
// entry point the service front-end uses; grids go through Run.
func (r *Runner) RunCell(k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	return r.RunCellCtx(context.Background(), k, spec, opts)
}

// RunCellCtx is RunCell under a caller context, adding the request-
// scoped spans: queue-wait covers the worker-pool admission, then the
// cache/compute spans from runCtx. Tracing changes no outcome — the
// context carries only observability state.
func (r *Runner) RunCellCtx(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error) {
	sem := r.semaphore()
	_, qs := obs.StartSpan(ctx, "queue-wait")
	sem <- struct{}{}
	qs.End()
	defer func() { <-sem }()
	var out sim.Outcome
	err := runJob(0, func(int) error {
		o, err := r.runCtx(ctx, k, spec, opts)
		out = o
		return err
	})
	return out, err
}

// CacheStats reports run-cache traffic since the Runner was created:
// hits (requests answered from a completed or in-flight cell) and
// misses (requests that computed).
func (r *Runner) CacheStats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// All lists every experiment id in presentation order.
var All = []string{"T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "S1", "B1", "T3"}

// Run dispatches one experiment by id.
func (r *Runner) Run(id string, scale workload.Scale) (*Result, error) {
	switch id {
	case "T1":
		return ConfigTable(), nil
	case "T2":
		return r.WorkloadTable(scale)
	case "F1":
		return r.PerfComparison(scale)
	case "F2":
		return r.ModeBreakdown(scale)
	case "F3":
		return r.DQSweep(scale)
	case "F4":
		return r.CheckpointSweep(scale)
	case "F5":
		return r.SSBSweep(scale)
	case "F6":
		return r.MemLatencySweep(scale)
	case "F7":
		return r.MLPComparison(scale)
	case "F8":
		return r.Ablation(scale)
	case "F9":
		return r.CMPScaling(scale)
	case "F10":
		return r.RollbackAccounting(scale)
	case "F11":
		return r.BranchSweep(scale)
	case "F12":
		return r.SMTMode(scale)
	case "F13":
		return r.PolicyAblation(scale)
	case "F14":
		return r.PrefetchInterplay(scale)
	case "F15":
		return r.TLBSensitivity(scale)
	case "F16":
		return r.HTMContention(scale)
	case "S1":
		return r.SecurityGrid(scale)
	case "B1":
		return r.BpredGrid(scale)
	case "T3":
		return AreaPowerProxy(), nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
