package experiments

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/core"
	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/sim"
	"rocksim/internal/smt"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// bpredKinds lists the predictor kinds the B1 grid compares, in
// presentation order (gshare is the baseline, column-left).
var bpredKinds = []bpred.Kind{bpred.Gshare, bpred.TAGE}

// bpredShareModes lists the strand-sharing policies of the grid.
var bpredShareModes = []bpred.ShareMode{bpred.SharePartitioned, bpred.ShareShared, bpred.ShareHashed}

// bpredSMTPairs are the SMT-2 coschedules of the grid. Homogeneous
// pairs are the interesting ones: two copies of one program hit the
// same branch pcs, so pooled tables constructively share training
// (gcc+gcc) or destructively interfere when the strands run the same
// pattern out of phase (brfield+brfield), and hashing restores
// partitioned-like isolation. A heterogeneous taken-biased pair
// (brfield+loopnest) is the control: saturated counters absorb
// cross-strand aliasing, so all three policies coincide.
var bpredSMTPairs = [][2]string{{"gcc", "gcc"}, {"brfield", "brfield"}, {"brfield", "loopnest"}}

// BpredGrid runs B1: the predictor-architecture grid. SST turns branch
// misprediction into rollback (Figure 5's dominant non-memory cost), so
// the predictor trains deferred branches at replay resolution — this
// grid reports how much a TAGE-lite predictor recovers over gshare on
// loop-heavy workloads, and how the strand-sharing policy moves the
// numbers when two SMT strands or four CMP cores draw predictors from
// one group.
//
// Three tables: (B1a) one SST core per kind — deferred-branch mispredict
// rate, RbBranch rollbacks and IPC; (B1b) SMT-2 pairs × kind × share
// mode — aggregate direction-mispredict rate and aggregate IPC; (B1c) a
// 4-core SST CMP × kind × share mode — chip deferred mispredict rate,
// rollbacks and throughput.
func (r *Runner) BpredGrid(scale workload.Scale) (*Result, error) {
	opts := r.BaseOptions()
	names := workload.LoopHeavyNames
	nk, nm := len(bpredKinds), len(bpredShareModes)

	// B1a: single SST core per (workload, kind); the share mode is
	// deliberately left at base (one strand cannot observe sharing), so
	// these cells dedup with any other experiment touching the same kind.
	cells := make([]cell, 0, len(names)*nk)
	for _, n := range names {
		w, err := workload.Build(n, scale)
		if err != nil {
			return nil, err
		}
		for _, k := range bpredKinds {
			o := opts
			o.Pred.Kind = k
			cells = append(cells, cell{kind: sim.KindSST, spec: w, opts: o})
		}
	}
	outs, errs1 := r.runCells(cells)
	t1 := stats.NewTable("B1a: deferred-branch prediction, one SST core",
		"workload", "kind", "deferred", "mispred", "mispred%", "rb-branch", "ipc")
	for i := range cells {
		wname, kname := names[i/nk], bpredKinds[i%nk].String()
		if errs1[i] != nil {
			t1.AddRow(fillErr([]any{wname, kname}, 5, errs1[i])...)
			continue
		}
		s := outs[i].SSTStats()
		t1.AddRow(wname, kname, s.DeferredBranches, s.DeferredBranchMispred,
			pct(s.DeferredBranchMispred, s.DeferredBranches),
			s.RollbacksBy[core.RbBranch], outs[i].IPC())
	}

	// B1b: SMT-2 share grid. Bespoke runs (the pair is not a cacheable
	// single-core cell), assembled in flat-index order so output is
	// byte-identical at any -j.
	pairSpecs := make([][2]*workload.Spec, len(bpredSMTPairs))
	for i, p := range bpredSMTPairs {
		wa, err := workload.Build(p[0], scale)
		if err != nil {
			return nil, err
		}
		wb, err := workload.Build(p[1], scale)
		if err != nil {
			return nil, err
		}
		pairSpecs[i] = [2]*workload.Spec{wa, wb}
	}
	type shareRes struct {
		rate float64
		ipc  float64
	}
	smtGrid := make([]shareRes, len(bpredSMTPairs)*nk*nm)
	errs2 := r.forEachErrs(len(smtGrid), func(i int) error {
		pi, ki, mi := i/(nk*nm), (i/nm)%nk, i%nm
		o := opts
		o.Pred.Kind = bpredKinds[ki]
		o.Pred.Share = bpredShareModes[mi]
		look, mis, ret, cyc, err := runSMTShare(pairSpecs[pi][0], pairSpecs[pi][1], o)
		if err != nil {
			return err
		}
		smtGrid[i] = shareRes{rate: pct(mis, look), ipc: float64(ret) / float64(cyc)}
		return nil
	})
	h2 := []string{"pair", "kind"}
	for _, m := range bpredShareModes {
		h2 = append(h2, "misp% "+m.String(), "ipc "+m.String())
	}
	t2 := stats.NewTable("B1b: SMT-2 predictor sharing (both strands busy)", h2...)
	for pi, p := range bpredSMTPairs {
		for ki, k := range bpredKinds {
			row := []any{p[0] + "+" + p[1], k.String()}
			for mi := range bpredShareModes {
				i := pi*nk*nm + ki*nm + mi
				if errs2[i] != nil {
					row = fillErr(row, 2, errs2[i])
					continue
				}
				row = append(row, smtGrid[i].rate, smtGrid[i].ipc)
			}
			t2.AddRow(row...)
		}
	}

	// B1c: 4-core SST CMP share grid over the loop-heavy mix.
	progs := make([]*asm.Program, 0, len(names))
	for _, n := range names {
		w, err := workload.Build(n, scale)
		if err != nil {
			return nil, err
		}
		progs = append(progs, w.Program)
	}
	type cmpRes struct {
		rate float64
		rb   uint64
		tp   float64
	}
	cmpGrid := make([]cmpRes, nk*nm)
	errs3 := r.forEachErrs(len(cmpGrid), func(i int) error {
		ki, mi := i/nm, i%nm
		o := opts
		o.Pred.Kind = bpredKinds[ki]
		o.Pred.Share = bpredShareModes[mi]
		def, mis, rb, tp, err := runCMPShare(progs, o)
		if err != nil {
			return err
		}
		cmpGrid[i] = cmpRes{rate: pct(mis, def), rb: rb, tp: tp}
		return nil
	})
	h3 := []string{"kind"}
	for _, m := range bpredShareModes {
		h3 = append(h3, "dmisp% "+m.String(), "rb-branch "+m.String(), "ipc/chip "+m.String())
	}
	t3 := stats.NewTable(fmt.Sprintf("B1c: CMP-%d SST predictor sharing (loop-heavy mix)", len(progs)), h3...)
	for ki, k := range bpredKinds {
		row := []any{k.String()}
		for mi := range bpredShareModes {
			i := ki*nm + mi
			if errs3[i] != nil {
				row = fillErr(row, 3, errs3[i])
				continue
			}
			row = append(row, cmpGrid[i].rate, cmpGrid[i].rb, cmpGrid[i].tp)
		}
		t3.AddRow(row...)
	}

	// Headline: the tage-vs-gshare delta on the two engineered
	// deferred-branch workloads, computed from the B1a cells.
	notes := []string{
		"deferred branches train at replay resolution, not fetch: the predictor sees the outcome when the strand verifies it, and RbBranch rollbacks restore the history checkpoint",
		"one strand cannot observe sharing: partitioned, shared and hashed collapse byte-identically (hashed salts strand 0 with 0)",
	}
	for _, w := range []string{"brfield", "loopnest"} {
		gi, ti := -1, -1
		for wi, n := range names {
			if n == w {
				gi, ti = wi*nk, wi*nk+1
			}
		}
		if gi < 0 || errs1[gi] != nil || errs1[ti] != nil {
			continue
		}
		gs, ts := outs[gi].SSTStats(), outs[ti].SSTStats()
		notes = append(notes, fmt.Sprintf(
			"%s: tage cuts the deferred mispredict rate %.2f%% -> %.2f%% (rb-branch %d -> %d), ipc %.3f -> %.3f (%+.1f%%)",
			w,
			pct(gs.DeferredBranchMispred, gs.DeferredBranches),
			pct(ts.DeferredBranchMispred, ts.DeferredBranches),
			gs.RollbacksBy[core.RbBranch], ts.RollbacksBy[core.RbBranch],
			outs[gi].IPC(), outs[ti].IPC(), 100*(outs[ti].IPC()/outs[gi].IPC()-1)))
	}

	// Sharing-policy observation, computed from the gshare rows of B1b:
	// pooling helps a homogeneous coschedule and hurts a phase-shifted
	// one, while hashing tracks partitioned.
	if gi := 0; errs2[gi*nk*nm] == nil && errs2[gi*nk*nm+1] == nil {
		part, shared := smtGrid[gi*nk*nm], smtGrid[gi*nk*nm+1]
		notes = append(notes, fmt.Sprintf(
			"gcc+gcc (gshare): pooled tables share training constructively, mispredict %.2f%% -> %.2f%%",
			part.rate, shared.rate))
	}
	var allErrs []error
	allErrs = append(allErrs, errs1...)
	allErrs = append(allErrs, errs2...)
	allErrs = append(allErrs, errs3...)
	return &Result{
		ID: "B1", Title: "Branch prediction: kind x sharing grid",
		Tables: []*stats.Table{t1, t2, t3},
		Notes:  notes,
		Errs:   collectErrs(allErrs),
	}, nil
}

// pct returns 100*num/den, 0 when den is 0.
func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// runSMTShare runs two workloads as the strands of one physical core
// (like runSMTPair) and additionally returns the pair's aggregate
// direction-prediction traffic, so the B1 grid can compare share modes.
func runSMTShare(wa, wb *workload.Spec, opts sim.Options) (lookups, mispred, retired, cycles uint64, err error) {
	hier, err := mem.NewHierarchy(opts.Hier, 1)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	preds := bpred.NewGroup(opts.Pred, 2)
	mkThread := func(strand int, w *workload.Spec) smt.Thread {
		m := mem.NewSparse()
		w.Program.Load(m)
		mach := &cpu.Machine{Mem: m, Hier: hier, CoreID: 0, Pred: preds[strand]}
		return smt.Thread{Core: inorder.New(mach, opts.InOrder, w.Program.Entry), Mach: mach}
	}
	c, err := smt.New(mkThread(0, wa), mkThread(1, wb))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := cpu.Run(c, opts.CycleLimit()); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("bpred smt pair %s+%s: %w", wa.Name, wb.Name, err)
	}
	for i := 0; i < 2; i++ {
		s := c.Thread(i).Mach.Pred.Stats
		lookups += s.DirLookups
		mispred += s.DirMispredict
		retired += c.Thread(i).Core.Retired()
	}
	return lookups, mispred, retired, c.Cycle(), nil
}

// runCMPShare runs a multiprogrammed chip of SST cores, one per program,
// drawing predictors from one group (opts.Pred.Share decides the
// policy), and returns the chip's aggregate deferred-branch behavior.
func runCMPShare(progs []*asm.Program, opts sim.Options) (deferred, mispred, rbBranch uint64, throughput float64, err error) {
	chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return sim.NewCore(sim.KindSST, m, opts, entry)
		})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := chip.Run(opts.CycleLimit()); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("bpred cmp grid x%d: %w", len(progs), err)
	}
	for _, cr := range chip.Cores {
		s := cr.(*core.Core).Stats()
		deferred += s.DeferredBranches
		mispred += s.DeferredBranchMispred
		rbBranch += s.RollbacksBy[core.RbBranch]
	}
	return deferred, mispred, rbBranch, chip.Throughput(), nil
}
