package experiments

import (
	"fmt"
	"strings"
	"testing"

	"rocksim/internal/workload"
)

func fscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// TestConfigTable checks the static tables render with the expected rows.
func TestConfigTable(t *testing.T) {
	res := ConfigTable()
	if res.ID != "T1" || len(res.Tables) != 2 {
		t.Fatalf("shape: %s, %d tables", res.ID, len(res.Tables))
	}
	if res.Tables[0].NumRows() != 7 {
		t.Errorf("machine rows = %d", res.Tables[0].NumRows())
	}
	var sb strings.Builder
	res.Fprint(&sb)
	for _, want := range []string{"sst", "ooo-large", "in-order", "DRAM"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAreaPowerProxy(t *testing.T) {
	res := AreaPowerProxy()
	rows := res.Tables[0].Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	area := map[string]string{}
	for _, r := range rows {
		area[r[0]] = r[3]
	}
	// The paper's qualitative claim: sst is close to in-order and far
	// below the big OOO core in both area and power.
	parse := func(s string) float64 {
		var v float64
		if _, err := sscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	if !(parse(area["sst"]) < parse(area["ooo-small"]) &&
		parse(area["ooo-small"]) < parse(area["ooo-large"])) {
		t.Errorf("area ordering violated: %v", area)
	}
	if parse(area["sst"]) > 2*parse(area["in-order"]) {
		t.Errorf("sst area proxy too large: %v", area)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fscan(s, v)
}

// TestHeadlineExperimentTestScale runs F1 at test scale and checks the
// qualitative shape: every speculative machine beats in-order on the
// commercial geomean, and SST is at least competitive with the large OOO.
func TestHeadlineExperimentTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceDetectorOn {
		t.Skip("numeric-shape check; covered by tier1, and F1 runs under race in TestConcurrentRegeneration")
	}
	r := NewRunner()
	res, err := r.PerfComparison(workload.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows()
	geo := rows[len(rows)-1]
	if geo[0] != "geomean" {
		t.Fatalf("last row = %v", geo)
	}
	var inorder, oooL, sst float64
	fscan(geo[1], &inorder)
	fscan(geo[3], &oooL)
	fscan(geo[6], &sst)
	if inorder != 1.0 {
		t.Errorf("inorder geomean = %f", inorder)
	}
	if sst <= 1.0 {
		t.Errorf("sst geomean %f not above in-order", sst)
	}
	if sst < 0.8*oooL {
		t.Errorf("sst geomean %f far below ooo-large %f", sst, oooL)
	}
}

// TestSweepsSmoke runs every remaining experiment at test scale: they
// must produce non-empty tables without errors. Under the race
// detector the full sweep would take tens of minutes, so a reduced
// set covering each driver family stands in; the concurrency proof
// under race is TestConcurrentRegeneration, and the full sweep runs
// in tier1.
func TestSweepsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ids := All
	if raceDetectorOn {
		ids = []string{"T1", "F5", "F12", "F16", "T3"}
	}
	r := NewRunner()
	for _, id := range ids {
		res, err := r.Run(id, workload.ScaleTest)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 {
			t.Errorf("%s: no tables", id)
		}
		for _, tbl := range res.Tables {
			if tbl.NumRows() == 0 {
				t.Errorf("%s: empty table %q", id, tbl.Title)
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := NewRunner().Run("F99", workload.ScaleTest); err == nil {
		t.Error("accepted unknown experiment")
	}
}
