package experiments

import (
	"fmt"

	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// ConfigTable regenerates Table 1: the simulated machine configurations.
func ConfigTable() *Result {
	opts := sim.DefaultOptions()
	t := stats.NewTable("Table 1: simulated machine configurations",
		"machine", "width", "window", "checkpoints", "DQ", "SSB/LSQ", "notes")
	io := opts.InOrder
	t.AddRow("in-order", io.Width, "-", "-", "-",
		fmt.Sprintf("SB %d", io.StoreBufferSize), "stall-on-use scoreboard")
	os := opts.OOO
	t.AddRow("ooo-small", os.IssueWidth, fmt.Sprintf("ROB %d / IQ %d", os.ROBSize, os.IQSize),
		"-", "-", fmt.Sprintf("LSQ %d", os.LSQSize), "rename + speculative disambiguation")
	ol := opts.OOOLg
	t.AddRow("ooo-large", ol.IssueWidth, fmt.Sprintf("ROB %d / IQ %d", ol.ROBSize, ol.IQSize),
		"-", "-", fmt.Sprintf("LSQ %d", ol.LSQSize), "the paper's larger, higher-powered OOO")
	ss := opts.SST
	t.AddRow("sst", fmt.Sprintf("%d+%d", ss.Width, ss.ReplayWidth), "-",
		ss.Checkpoints, ss.DQSize, fmt.Sprintf("SSB %d", ss.SSBSize),
		"two strands: ahead + DQ replay")
	t.AddRow("sst-big", fmt.Sprintf("%d+%d", ss.Width, ss.ReplayWidth), "-",
		2*ss.Checkpoints, 2*ss.DQSize, fmt.Sprintf("SSB %d", 2*ss.SSBSize),
		"the abstract's \"certain SST implementations\"")
	t.AddRow("sst-ea", ss.Width, "-", ss.Checkpoints, ss.DQSize,
		fmt.Sprintf("SSB %d", ss.SSBSize), "ablation: replay steals ahead slots")
	t.AddRow("scout", ss.Width, "-", 1, 0, "-", "ablation: runahead prefetch only")

	h := opts.Hier
	mt := stats.NewTable("memory hierarchy (shared by all machines)",
		"level", "size", "assoc", "line", "latency", "MSHRs")
	mt.AddRow("L1I", fmt.Sprintf("%dKB", h.L1I.SizeBytes>>10), h.L1I.Ways, h.L1I.LineBytes, h.L1I.HitLatency, h.L1I.MSHRs)
	mt.AddRow("L1D", fmt.Sprintf("%dKB", h.L1D.SizeBytes>>10), h.L1D.Ways, h.L1D.LineBytes, h.L1D.HitLatency, h.L1D.MSHRs)
	mt.AddRow("L2", fmt.Sprintf("%dMB", h.L2.SizeBytes>>20), h.L2.Ways, h.L2.LineBytes, h.L2.HitLatency, h.L2.MSHRs)
	mt.AddRow("DRAM", "-", fmt.Sprintf("%d banks", h.DRAM.Banks), "-", h.DRAM.Latency, "-")

	return &Result{
		ID:     "T1",
		Title:  "machine configurations",
		Tables: []*stats.Table{t, mt},
	}
}

// WorkloadTable regenerates Table 2: workload characterization, measured
// on the in-order baseline (instruction mix, footprint, miss rates).
// The in-order runs go through the runner's cache, so they are shared
// with F1's baseline column.
func (r *Runner) WorkloadTable(scale workload.Scale) (*Result, error) {
	specs, err := workload.BuildAll(scale)
	if err != nil {
		return nil, err
	}
	opts := r.BaseOptions()
	cells := make([]cell, 0, len(specs))
	for _, w := range specs {
		cells = append(cells, cell{sim.KindInOrder, w, opts})
	}
	outs, errs := r.runCells(cells)
	t := stats.NewTable("Table 2: workload characterization (measured on the in-order core)",
		"workload", "class", "stands in for", "insts", "loads%", "stores%", "branches%", "L1D miss%", "L2 miss%", "IPC(inorder)")
	for i, w := range specs {
		row := []any{w.Name, w.Class.String(), w.Standin}
		if errs[i] != nil {
			t.AddRow(fillErr(row, 7, errs[i])...)
			continue
		}
		out := outs[i]
		b := out.BaseStats()
		l1 := out.L1DStats()
		l2 := out.L2Stats()
		t.AddRow(w.Name, w.Class.String(), w.Standin, out.Retired,
			stats.Pct(b.Loads, out.Retired),
			stats.Pct(b.Stores, out.Retired),
			stats.Pct(b.Branches, out.Retired),
			100*l1.MissRate(),
			100*l2.MissRate(),
			out.IPC())
	}
	return &Result{ID: "T2", Title: "workload characterization", Tables: []*stats.Table{t}, Errs: collectErrs(errs)}, nil
}

// areaModel is the first-order structure-count area/power proxy used by
// T3. Units are normalized to the scalar in-order integer core = 1.0.
// The model charges each SRAM-like structure area proportional to
// bits stored, with a 4x multiplier for CAM/selection structures (issue
// window, LSQ search, rename comparators) — the classic reason large
// windows are power-hungry. It is a ranking proxy, not a layout model.
type areaModel struct {
	name       string
	base       float64 // pipeline + regfile + predictor + L1 interfaces
	sramBits   float64 // plain SRAM bits beyond the base
	camBits    float64 // CAM/selection bits
	issueWidth int
	// schedTerms charges the dynamic-scheduling logic an out-of-order
	// core cannot avoid: rename comparators, wakeup broadcast, and the
	// select tree — all scaling with window x width. This, not raw bits,
	// is where the ROB/IQ machinery costs area and power; SST's plain
	// SRAM FIFOs have no equivalent.
	schedWindow int // issue-window entries driving wakeup/select
}

func (a areaModel) sched() float64 {
	return 0.02 * float64(a.schedWindow) * float64(a.issueWidth)
}

func (a areaModel) area() float64 {
	const perSRAMKb = 0.05 // area units per kilobit of SRAM
	const camFactor = 4.0
	w := float64(a.issueWidth) * 0.15 // wider datapaths
	return a.base + w + a.sramBits/1024*perSRAMKb + camFactor*a.camBits/1024*perSRAMKb + a.sched()
}

func (a areaModel) power() float64 {
	// Dynamic power tracks area here, with CAM structures charged extra
	// for their per-cycle broadcast activity.
	const perSRAMKb = 0.04
	const camFactor = 7.0
	w := float64(a.issueWidth) * 0.2
	return a.base + w + a.sramBits/1024*perSRAMKb + camFactor*a.camBits/1024*perSRAMKb + 1.5*a.sched()
}

// AreaPowerProxy regenerates Table 3: the structures each core pays for,
// and the resulting first-order area/power ranking. SST's claim is
// precisely that checkpoints + DQ + SSB (plain SRAM) replace rename,
// ROB, issue window and disambiguation CAMs.
func AreaPowerProxy() *Result {
	opts := sim.DefaultOptions()
	entryBits := func(entries, width int) float64 { return float64(entries * width) }

	inorder := areaModel{name: "in-order", base: 1.0, issueWidth: opts.InOrder.Width,
		sramBits: entryBits(opts.InOrder.StoreBufferSize, 128)}

	mkOOO := func(name string, c int, rob, iq, lsq int) areaModel {
		return areaModel{
			name: name, base: 1.0, issueWidth: c,
			// ROB: ~140b/entry (value+tags); rename map SRAM.
			sramBits: entryBits(rob, 140) + 32*8,
			// IQ and LSQ are CAM-searched every cycle.
			camBits:     entryBits(iq, 80) + entryBits(lsq, 100),
			schedWindow: iq,
		}
	}
	oooS := mkOOO("ooo-small", opts.OOO.IssueWidth, opts.OOO.ROBSize, opts.OOO.IQSize, opts.OOO.LSQSize)
	oooL := mkOOO("ooo-large", opts.OOOLg.IssueWidth, opts.OOOLg.ROBSize, opts.OOOLg.IQSize, opts.OOOLg.LSQSize)

	ss := opts.SST
	sst := areaModel{
		name: "sst", base: 1.0, issueWidth: ss.Width + ss.ReplayWidth/2,
		// Checkpoints are bulk register-file copies; DQ and SSB are
		// plain SRAM FIFOs; NA bits are 1b/register.
		sramBits: float64(ss.Checkpoints)*32*64 + entryBits(ss.DQSize, 150) + entryBits(ss.SSBSize, 140) + 32,
		camBits:  0,
	}

	t := stats.NewTable("Table 3: first-order area/power proxy (in-order core = 1.0)",
		"core", "SRAM bits", "CAM bits", "area", "power", "key structures")
	t.AddRow(inorder.name, int(inorder.sramBits), int(inorder.camBits),
		inorder.area(), inorder.power(), "scoreboard, store buffer")
	t.AddRow(oooS.name, int(oooS.sramBits), int(oooS.camBits),
		oooS.area(), oooS.power(), "rename, ROB, IQ+LSQ CAMs")
	t.AddRow(oooL.name, int(oooL.sramBits), int(oooL.camBits),
		oooL.area(), oooL.power(), "rename, big ROB, big IQ+LSQ CAMs")
	t.AddRow(sst.name, int(sst.sramBits), int(sst.camBits),
		sst.area(), sst.power(), "checkpoints, DQ, SSB (no CAMs)")

	return &Result{
		ID:     "T3",
		Title:  "area/power proxy",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("sst area %.2f vs ooo-large %.2f (%.1fx smaller)", sst.area(), oooL.area(), oooL.area()/sst.area()),
			fmt.Sprintf("sst power %.2f vs ooo-large %.2f (%.1fx lower)", sst.power(), oooL.power(), oooL.power()/sst.power()),
		},
	}
}
