package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// TestForEachErrsIsolatesPanics: a panicking cell degrades to an
// attributed *PanicError; every other cell still runs to completion.
func TestForEachErrsIsolatesPanics(t *testing.T) {
	r := NewRunner()
	var ran [4]atomic.Int32
	errs := r.forEachErrs(4, func(i int) error {
		ran[i].Add(1)
		if i == 2 {
			panic("injected model crash")
		}
		return nil
	})
	for i, err := range errs {
		if i == 2 {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("cell 2: want *PanicError, got %v", err)
			}
			if !strings.Contains(err.Error(), "cell 2") {
				t.Errorf("panic error not attributed to its cell: %v", err)
			}
			if len(pe.Stack) == 0 {
				t.Error("recovered panic lost its stack")
			}
			continue
		}
		if err != nil {
			t.Errorf("cell %d: unexpected error %v", i, err)
		}
		if ran[i].Load() != 1 {
			t.Errorf("cell %d ran %d times, want 1", i, ran[i].Load())
		}
	}
	// The deterministic panic must have been retried exactly once.
	if got := ran[2].Load(); got != 2 {
		t.Errorf("panicking cell ran %d times, want 2 (one retry)", got)
	}
}

// TestForEachErrsRetriesTransientPanic: a cell that crashes once and
// then succeeds is healed by the single bounded retry.
func TestForEachErrsRetriesTransientPanic(t *testing.T) {
	r := NewRunner()
	var calls atomic.Int32
	errs := r.forEachErrs(1, func(i int) error {
		if calls.Add(1) == 1 {
			panic("transient")
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatalf("transient panic not healed by retry: %v", errs[0])
	}
	if calls.Load() != 2 {
		t.Errorf("job ran %d times, want 2", calls.Load())
	}
}

// TestErrCellClassification maps each failure class to its table tag.
func TestErrCellClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{cpu.ErrLivelock, "ERR(livelock)"},
		{cpu.ErrCycleLimit, "ERR(cycle-limit)"},
		{cpu.ErrDeadline, "ERR(deadline)"},
		{&PanicError{Value: "boom"}, "ERR(panic)"},
		{errors.New("other"), "ERR(run-failed)"},
	}
	for _, c := range cases {
		if got := errCell(c.err); got != c.want {
			t.Errorf("errCell(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestCollectErrsDeduplicates: a shared cache entry surfacing one
// failure through many cells reports it once.
func TestCollectErrsDeduplicates(t *testing.T) {
	shared := errors.New("same failure")
	got := collectErrs([]error{nil, shared, shared, errors.New("other"), nil})
	if len(got) != 2 {
		t.Fatalf("collectErrs kept %d lines, want 2: %v", len(got), got)
	}
}

// TestBaseOptionsThreadThroughExperiment: SetBaseOptions is honored by
// the drivers — an impossible wall-clock deadline degrades every cell
// to ERR(deadline) while the experiment itself still renders a complete
// table and attributes the failures.
func TestBaseOptionsThreadThroughExperiment(t *testing.T) {
	r := NewRunner()
	opts := sim.DefaultOptions()
	opts.Timeout = time.Nanosecond
	r.SetBaseOptions(opts)

	res, err := r.PerfComparison(workload.ScaleTest)
	if err != nil {
		t.Fatalf("experiment must degrade, not fail: %v", err)
	}
	if len(res.Errs) == 0 {
		t.Fatal("no attributed errors despite 1ns deadline on every cell")
	}
	var b strings.Builder
	res.Fprint(&b)
	out := b.String()
	if !strings.Contains(out, "ERR(deadline)") {
		t.Errorf("table lacks ERR(deadline) cells:\n%s", out)
	}
	if !strings.Contains(out, "ERR: ") {
		t.Errorf("report lacks attributed ERR lines:\n%s", out)
	}
}

// TestBaseOptionsDefault: without an override, BaseOptions is exactly
// sim.DefaultOptions (same fingerprint → same run-cache keys).
func TestBaseOptionsDefault(t *testing.T) {
	r := NewRunner()
	if got, want := r.BaseOptions().Fingerprint(), sim.DefaultOptions().Fingerprint(); got != want {
		t.Errorf("BaseOptions fingerprint %q, want DefaultOptions %q", got, want)
	}
}
