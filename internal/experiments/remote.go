package experiments

import (
	"context"
	"errors"

	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/workload"
)

// This file is the cell-level fan-out seam of the experiment harness:
// everything a router (cmd/rockgate) needs to compute a grid's cells on
// remote rocksimd shards while assembling byte-identical tables
// locally.
//
//   - CellKey exposes the content-addressed cache key, so placement on
//     a consistent-hash ring agrees with every shard's run cache: a
//     popular cell lands on one shard and is computed once per fleet.
//   - SetComputeBackend replaces the cache-fill compute function, so a
//     Runner can delegate cell computation (to a shard, or to a test's
//     blocking fake) while keeping the cache, singleflight, worker pool
//     and panic-retry machinery unchanged.
//   - ErrClass / NewRemoteError round-trip a cell's failure through the
//     wire so ERR(reason) cells and Errs report lines render exactly as
//     they would on a single node.
//   - RemoteSafe classifies which experiments decompose into cache
//     cells (fan out cell-by-cell) versus run bespoke multi-core
//     simulations (routed to a shard whole).

// CellKey returns the content-addressed run-cache key of one
// (kind, workload, options) cell: FNV over the program image, secret
// declarations and the canonical options fingerprint. The fleet router
// hashes this key onto the shard ring, so cache placement and request
// routing agree byte for byte.
func CellKey(k sim.Kind, spec *workload.Spec, opts sim.Options) string {
	return cacheKey(k, spec, opts)
}

// ComputeBackend computes one cell. The default backend simulates
// locally (through the instance pool); a router installs one that asks
// the owning shard instead.
type ComputeBackend func(ctx context.Context, k sim.Kind, spec *workload.Spec, opts sim.Options) (sim.Outcome, error)

// SetComputeBackend replaces the Runner's cache-fill compute function.
// Cache keying, singleflight deduplication, the worker-pool bound and
// the bounded panic retry all still apply; only the leaf computation
// changes. Passing nil restores local simulation.
func (r *Runner) SetComputeBackend(fn ComputeBackend) {
	r.mu.Lock()
	r.computeFn = fn
	r.mu.Unlock()
}

// Remote-error classes: the wire form of a failed cell. The class
// selects the ERR(reason) cell text; the message preserves the origin
// shard's error string so the report's Errs lines are byte-identical to
// a single-node run.
const (
	ErrClassLivelock   = "livelock"
	ErrClassCycleLimit = "cycle-limit"
	ErrClassDeadline   = "deadline"
	ErrClassPanic      = "panic"
	ErrClassRunFailed  = "run-failed"
)

// ErrClass classifies a cell error for the wire, mirroring errCell's
// taxonomy exactly.
func ErrClass(err error) string {
	var pe *PanicError
	switch {
	case errors.Is(err, cpu.ErrLivelock):
		return ErrClassLivelock
	case errors.Is(err, cpu.ErrCycleLimit):
		return ErrClassCycleLimit
	case errors.Is(err, cpu.ErrDeadline):
		return ErrClassDeadline
	case errors.As(err, &pe):
		return ErrClassPanic
	}
	return ErrClassRunFailed
}

// RemoteError is a cell failure reconstructed from its wire form: it
// renders the origin error's exact message and classifies back into the
// same ERR(reason) cell as the origin error would.
type RemoteError struct {
	Class string
	Msg   string
}

// NewRemoteError rebuilds a cell error from its wire class and message.
func NewRemoteError(class, msg string) *RemoteError {
	return &RemoteError{Class: class, Msg: msg}
}

func (e *RemoteError) Error() string { return e.Msg }

// Is maps the wire class back onto the watchdog sentinels, so
// errors.Is-based rendering (errCell) and status mapping (the 504 path
// in internal/serve) treat a remote failure like a local one.
func (e *RemoteError) Is(target error) bool {
	switch e.Class {
	case ErrClassLivelock:
		return target == cpu.ErrLivelock
	case ErrClassCycleLimit:
		return target == cpu.ErrCycleLimit
	case ErrClassDeadline:
		return target == cpu.ErrDeadline
	}
	return false
}

// remoteSafe lists the experiments whose every simulation goes through
// the Runner's cell cache (runCells / run), so a router can fan their
// cells out to shards and assemble the tables itself. The others run
// bespoke multi-core simulations outside the cell seam — CMP chips
// (F9, F16), SMT pairs (F12), leakage-oracle sweeps (S1) — and are
// routed to a shard whole. T1 and T3 run no simulations at all; they
// are safe anywhere. Misclassifying an experiment here costs only
// compute placement, never output bytes: the gate byte-identity tests
// hold either way.
var remoteSafe = map[string]bool{
	"T1": true, "T2": true, "T3": true,
	"F1": true, "F2": true, "F3": true, "F4": true, "F5": true,
	"F6": true, "F7": true, "F8": true, "F10": true, "F11": true,
	"F13": true, "F14": true, "F15": true,
}

// RemoteSafe reports whether experiment id decomposes entirely into
// cache cells (every simulation flows through the cell seam), making it
// safe to assemble on a router with a remote compute backend.
func RemoteSafe(id string) bool { return remoteSafe[id] }
