//go:build race

package experiments

// raceDetectorOn lets tests trade regeneration breadth for tractable
// wall clock under the race detector's ~10x slowdown; the full sweep
// runs in tier1 without it.
const raceDetectorOn = true
