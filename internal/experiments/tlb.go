package experiments

import (
	"rocksim/internal/mem"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// TLBSensitivity regenerates Figure 15 (extension): ROCK's checkpoint
// events include data-TLB misses, not just cache misses. With a DTLB
// modeled, an in-order core stalls for every table walk, while SST
// defers past it like any other long-latency event. The figure compares
// slowdown from enabling a 64-entry DTLB on large-footprint workloads.
func (r *Runner) TLBSensitivity(scale workload.Scale) (*Result, error) {
	names := []string{"oltp", "randarr", "jbb", "gcc"}
	specs, err := workload.BuildSuite(names, scale)
	if err != nil {
		return nil, err
	}
	kinds := []sim.Kind{sim.KindInOrder, sim.KindOOOLarge, sim.KindSST}
	baseOpts := r.BaseOptions()
	tlbOpts := r.BaseOptions()
	tlbOpts.Hier.DTLB = mem.DefaultTLBConfig()
	grid := make([]cell, 0, 2*len(specs)*len(kinds))
	for _, w := range specs {
		for _, k := range kinds {
			grid = append(grid, cell{k, w, baseOpts}, cell{k, w, tlbOpts})
		}
	}
	outs, errs := r.runCells(grid)
	headers := []string{"workload", "DTLB miss%"}
	for _, k := range kinds {
		headers = append(headers, k.String()+" noTLB", k.String()+" TLB", k.String()+" slowdown%")
	}
	t := stats.NewTable("Figure 15 (extension): DTLB-miss tolerance (IPC and slowdown)", headers...)
	i := 0
	for _, w := range specs {
		row := []any{w.Name}
		missPct := 0.0
		cols := []any{}
		for range kinds {
			base, out := outs[i], outs[i+1]
			cerr := errs[i]
			if cerr == nil {
				cerr = errs[i+1]
			}
			i += 2
			if cerr != nil {
				cols = fillErr(cols, 3, cerr)
				continue
			}
			if tlb := out.DTLBStats(); tlb != nil {
				missPct = 100 * tlb.MissRate()
			}
			cols = append(cols, base.IPC(), out.IPC(), 100*(base.IPC()/out.IPC()-1))
		}
		row = append(row, missPct)
		row = append(row, cols...)
		t.AddRow(row...)
	}
	return &Result{
		ID: "F15", Title: "TLB-miss tolerance", Tables: []*stats.Table{t},
		Notes: []string{"checkpoint cores absorb table walks like cache misses; stall-on-use cores pay them serially"},
		Errs:  collectErrs(errs),
	}, nil
}
