package experiments

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/cmp"
	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// CMPScaling regenerates Figure 9: chip throughput as core count grows,
// for chips of in-order, large-OOO and SST cores running a
// multiprogrammed commercial mix over the shared L2/DRAM. ROCK's design
// point is 16 small SST cores; the figure shows aggregate throughput and
// how shared-memory contention erodes per-core performance for each
// core type.
func (r *Runner) CMPScaling(scale workload.Scale) (*Result, error) {
	counts := []int{1, 2, 4, 8, 16}
	if scale == workload.ScaleTest {
		counts = []int{1, 2, 4}
	}
	mixNames := workload.CommercialNames
	kinds := []sim.Kind{sim.KindInOrder, sim.KindOOOLarge, sim.KindSST}

	headers := []string{"cores"}
	for _, k := range kinds {
		headers = append(headers, "ipc/chip "+k.String(), "ipc/core "+k.String())
	}
	t := stats.NewTable("Figure 9: CMP throughput scaling (commercial mix)", headers...)

	opts := sim.DefaultOptions()
	for _, n := range counts {
		// Build the program mix: round-robin over the commercial suite.
		progs := make([]*asm.Program, 0, n)
		for i := 0; i < n; i++ {
			w, err := workload.Build(mixNames[i%len(mixNames)], scale)
			if err != nil {
				return nil, err
			}
			progs = append(progs, w.Program)
		}
		row := []any{n}
		for _, k := range kinds {
			chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, progs,
				func(id int, m *cpu.Machine, entry uint64) cpu.Core {
					return sim.NewCore(k, m, opts, entry)
				})
			if err != nil {
				return nil, err
			}
			if err := chip.Run(sim.DefaultMaxCycles); err != nil {
				return nil, fmt.Errorf("cmp scaling: %v x%d: %w", k, n, err)
			}
			row = append(row, chip.Throughput(), chip.Throughput()/float64(n))
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F9", Title: "CMP throughput scaling", Tables: []*stats.Table{t},
		Notes: []string{"per-core IPC decays with contention; aggregate throughput keeps rising"},
	}, nil
}
