package experiments

import (
	"fmt"

	"rocksim/internal/asm"
	"rocksim/internal/cmp"
	"rocksim/internal/cpu"
	"rocksim/internal/sim"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// CMPScaling regenerates Figure 9: chip throughput as core count grows,
// for chips of in-order, large-OOO and SST cores running a
// multiprogrammed commercial mix over the shared L2/DRAM. ROCK's design
// point is 16 small SST cores; the figure shows aggregate throughput and
// how shared-memory contention erodes per-core performance for each
// core type.
func (r *Runner) CMPScaling(scale workload.Scale) (*Result, error) {
	counts := []int{1, 2, 4, 8, 16}
	if scale == workload.ScaleTest {
		counts = []int{1, 2, 4}
	}
	mixNames := workload.CommercialNames
	kinds := []sim.Kind{sim.KindInOrder, sim.KindOOOLarge, sim.KindSST}

	headers := []string{"cores"}
	for _, k := range kinds {
		headers = append(headers, "ipc/chip "+k.String(), "ipc/core "+k.String())
	}
	t := stats.NewTable("Figure 9: CMP throughput scaling (commercial mix)", headers...)

	opts := r.BaseOptions()
	// Build each count's program mix up front (cheap, and shared
	// read-only by the chip runs): round-robin over the commercial suite.
	mixes := make([][]*asm.Program, len(counts))
	for ci, n := range counts {
		progs := make([]*asm.Program, 0, n)
		for i := 0; i < n; i++ {
			w, err := workload.Build(mixNames[i%len(mixNames)], scale)
			if err != nil {
				return nil, err
			}
			progs = append(progs, w.Program)
		}
		mixes[ci] = progs
	}
	// One pool job per (count, kind) chip run; rows assemble in order.
	throughput := make([]float64, len(counts)*len(kinds))
	errs := r.forEachErrs(len(throughput), func(i int) error {
		n, k := counts[i/len(kinds)], kinds[i%len(kinds)]
		chip, err := cmp.NewPrivate(opts.Hier, opts.Pred, mixes[i/len(kinds)],
			func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
				return sim.NewCore(k, m, opts, entry)
			})
		if err != nil {
			return err
		}
		if err := chip.Run(opts.CycleLimit()); err != nil {
			return fmt.Errorf("cmp scaling: %v x%d: %w", k, n, err)
		}
		throughput[i] = chip.Throughput()
		return nil
	})
	for ci, n := range counts {
		row := []any{n}
		for ki := range kinds {
			if err := errs[ci*len(kinds)+ki]; err != nil {
				row = fillErr(row, 2, err)
				continue
			}
			tp := throughput[ci*len(kinds)+ki]
			row = append(row, tp, tp/float64(n))
		}
		t.AddRow(row...)
	}
	return &Result{
		ID: "F9", Title: "CMP throughput scaling", Tables: []*stats.Table{t},
		Notes: []string{"per-core IPC decays with contention; aggregate throughput keeps rising"},
		Errs:  collectErrs(errs),
	}, nil
}
