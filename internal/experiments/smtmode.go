package experiments

import (
	"fmt"

	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/inorder"
	"rocksim/internal/mem"
	"rocksim/internal/sim"
	"rocksim/internal/smt"
	"rocksim/internal/stats"
	"rocksim/internal/workload"
)

// SMTMode regenerates Figure 12 (extension): the ROCK core's two
// operating modes compared. A physical core can either run TWO software
// threads with fine-grained multithreading (throughput mode) or devote
// both hardware strands to ONE thread under SST (latency mode). The
// figure reports per-thread and aggregate IPC for both choices on pairs
// of commercial workloads sharing one core's L1s.
//
// Approximation: the two SMT threads' code images share L1I index space
// (both load at the same text base); the code footprints are far below
// the L1I so the timing effect is negligible.
func (r *Runner) SMTMode(scale workload.Scale) (*Result, error) {
	pairs := [][2]string{{"oltp", "jbb"}, {"web", "erp"}, {"oltp", "web"}}
	opts := r.BaseOptions()
	// One pool job per pair: the two single-thread SST runs go through
	// the run cache (deduplicating "oltp" across pairs and with F1),
	// and the SMT pair run is computed alongside.
	type pairResult struct {
		sstA, sstB float64
		smtA, smtB float64
	}
	res := make([]pairResult, len(pairs))
	errs := r.forEachErrs(len(pairs), func(i int) error {
		pair := pairs[i]
		wa, err := workload.Build(pair[0], scale)
		if err != nil {
			return err
		}
		wb, err := workload.Build(pair[1], scale)
		if err != nil {
			return err
		}
		outA, err := r.run(sim.KindSST, wa, opts)
		if err != nil {
			return err
		}
		outB, err := r.run(sim.KindSST, wb, opts)
		if err != nil {
			return err
		}
		smtA, smtB, cycles, err := runSMTPair(wa, wb, opts)
		if err != nil {
			return err
		}
		res[i] = pairResult{
			sstA: outA.IPC(), sstB: outB.IPC(),
			smtA: float64(smtA) / float64(cycles),
			smtB: float64(smtB) / float64(cycles),
		}
		return nil
	})
	t := stats.NewTable("Figure 12 (extension): one core, two uses — SMT-2 throughput vs SST latency",
		"pair", "sst A", "sst B", "smt A", "smt B", "smt aggregate", "sst-A/smt-A")
	for i, pair := range pairs {
		if errs[i] != nil {
			t.AddRow(fillErr([]any{pair[0] + "+" + pair[1]}, 6, errs[i])...)
			continue
		}
		p := res[i]
		t.AddRow(pair[0]+"+"+pair[1], p.sstA, p.sstB,
			p.smtA, p.smtB, p.smtA+p.smtB, p.sstA/p.smtA)
	}
	return &Result{
		ID: "F12", Title: "SMT-throughput vs SST-latency mode", Tables: []*stats.Table{t},
		Notes: []string{
			"SST mode trades one thread's slot for per-thread speed; SMT mode trades latency for aggregate throughput — ROCK exposes both",
		},
		Errs: collectErrs(errs),
	}, nil
}

// runSMTPair runs two workloads as the two hardware threads of one
// physical core and returns per-thread retired counts and total cycles.
func runSMTPair(wa, wb *workload.Spec, opts sim.Options) (retA, retB, cycles uint64, err error) {
	hier, err := mem.NewHierarchy(opts.Hier, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	// The two hardware strands draw their predictors from one group, so
	// opts.Pred.Share decides partitioned vs shared vs hashed tables.
	preds := bpred.NewGroup(opts.Pred, 2)
	mkThread := func(strand int, w *workload.Spec) smt.Thread {
		m := mem.NewSparse()
		w.Program.Load(m)
		mach := &cpu.Machine{Mem: m, Hier: hier, CoreID: 0, Pred: preds[strand]}
		return smt.Thread{Core: inorder.New(mach, opts.InOrder, w.Program.Entry), Mach: mach}
	}
	core, err := smt.New(mkThread(0, wa), mkThread(1, wb))
	if err != nil {
		return 0, 0, 0, err
	}
	if err := cpu.Run(core, opts.CycleLimit()); err != nil {
		return 0, 0, 0, fmt.Errorf("smt pair %s+%s: %w", wa.Name, wb.Name, err)
	}
	return core.Thread(0).Core.Retired(), core.Thread(1).Core.Retired(), core.Cycle(), nil
}
