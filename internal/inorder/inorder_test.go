package inorder

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func testHier() mem.HierConfig {
	return mem.HierConfig{
		L1I:     mem.CacheConfig{Name: "L1I", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 4},
		L1D:     mem.CacheConfig{Name: "L1D", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2:      mem.CacheConfig{Name: "L2", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 10, MSHRs: 16},
		L2Banks: 2,
		DRAM:    mem.DRAMConfig{Latency: 200, Banks: 4, BankBusy: 8},
	}
}

func build(t *testing.T, cfg Config, gen func(b *asm.Builder)) (*Core, *cpu.Machine) {
	t.Helper()
	b := asm.NewBuilder(asm.DefaultTextBase)
	gen(b)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.Load(m)
	mach, err := cpu.NewMachine(m, testHier(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(mach, cfg, prog.Entry), mach
}

func TestArithmeticAndScoreboard(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(1, 6)
		b.Movi(2, 7)
		b.Op(isa.OpMul, 3, 1, 2)   // 4-cycle latency
		b.Opi(isa.OpAddi, 4, 3, 1) // stalls on r3
		b.Halt()
	})
	if err := cpu.Run(c, 10_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs()[3] != 42 || c.Regs()[4] != 43 {
		t.Errorf("r3=%d r4=%d", c.Regs()[3], c.Regs()[4])
	}
	if c.Stats().StallCycles[StallData] == 0 {
		t.Error("no data stall recorded for the mul consumer")
	}
}

func TestStallOnUseOverlapsMisses(t *testing.T) {
	// Two independent loads issue back to back; their misses overlap.
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(2, 0x30000)
		b.Ld(isa.OpLd64, 3, 1, 0)
		b.Ld(isa.OpLd64, 4, 2, 0)
		b.Op(isa.OpAdd, 5, 3, 4) // stalls until both arrive
		b.Halt()
	})
	if err := cpu.Run(c, 10_000); err != nil {
		t.Fatal(err)
	}
	// One icache miss (~210) + one overlapped data-miss window (~210).
	if c.Cycle() > 600 {
		t.Errorf("cycles = %d, misses did not overlap", c.Cycle())
	}
	if c.Base().MLPSum < 2 {
		t.Error("MLP never reached 2")
	}
}

func TestMaxOutstandingLoadsLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOutstandingLoads = 1
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Ld(isa.OpLd64, 3, 1, 0)
		b.Ld(isa.OpLd64, 4, 1, 4096)
		b.Ld(isa.OpLd64, 5, 1, 8192)
		b.Halt()
	})
	if err := cpu.Run(c, 10_000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().StallCycles[StallLoadLimit] == 0 {
		t.Error("load-limit stall never triggered")
	}
}

func TestBranchPenaltiesCharged(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(1, 50)
		b.Label("loop")
		b.Opi(isa.OpAddi, 1, 1, -1)
		b.Br(isa.OpBne, 1, isa.RegZero, "loop")
		b.Halt()
	})
	if err := cpu.Run(c, 100_000); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Branches != 50 {
		t.Errorf("branches = %d", st.Branches)
	}
	// The loop-closing branch becomes predictable; only the first few
	// and the final fall-through mispredict.
	if st.BranchMispred == 0 || st.BranchMispred > 6 {
		t.Errorf("mispredicts = %d", st.BranchMispred)
	}
	if st.StallCycles[StallRedirect] == 0 {
		t.Error("no redirect bubbles recorded")
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StoreBufferSize = 1
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		for i := 0; i < 6; i++ {
			b.St(isa.OpSt64, 1, 1, int32(i*4096)) // distinct lines: slow stores
		}
		b.Halt()
	})
	if err := cpu.Run(c, 100_000); err != nil {
		t.Fatal(err)
	}
	if c.Stats().StallCycles[StallStoreBuffer] == 0 {
		t.Error("no store-buffer stalls with size 1")
	}
	for i := 0; i < 6; i++ {
		if got := mach.Mem.Read(uint64(0x20000+i*4096), 8); got != 0x20000 {
			t.Errorf("store %d = %#x", i, got)
		}
	}
}

func TestCallReturnUsesRAS(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.SetEntry("main")
		b.Label("fn")
		b.Opi(isa.OpAddi, 2, 2, 1)
		b.Ret()
		b.Label("main")
		b.Movi(5, 10) // loop counter (r1 is the link register)
		b.Label("loop")
		b.Call("fn")
		b.Opi(isa.OpAddi, 5, 5, -1)
		b.Br(isa.OpBne, 5, isa.RegZero, "loop")
		b.Halt()
	})
	if err := cpu.Run(c, 100_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs()[2] != 10 {
		t.Errorf("r2 = %d", c.Regs()[2])
	}
}

func TestWidthMatters(t *testing.T) {
	gen := func(b *asm.Builder) {
		// A compact loop (fits the I-cache) of independent adds so the
		// comparison isolates issue width rather than fetch bandwidth.
		b.Movi(1, 1)
		b.Movi(2, 2)
		b.Movi(5, 100)
		b.Label("loop")
		for i := 0; i < 16; i++ {
			b.Op(isa.OpAdd, uint8(10+i%8), 1, 2)
		}
		b.Opi(isa.OpAddi, 5, 5, -1)
		b.Br(isa.OpBne, 5, isa.RegZero, "loop")
		b.Halt()
	}
	cfg1 := DefaultConfig()
	cfg1.Width = 1
	c1, _ := build(t, cfg1, gen)
	if err := cpu.Run(c1, 100_000); err != nil {
		t.Fatal(err)
	}
	cfg2 := DefaultConfig()
	cfg2.Width = 2
	c2, _ := build(t, cfg2, gen)
	if err := cpu.Run(c2, 100_000); err != nil {
		t.Fatal(err)
	}
	if float64(c1.Cycle()) < 1.3*float64(c2.Cycle()) {
		t.Errorf("width-2 (%d cyc) not meaningfully faster than width-1 (%d cyc)", c2.Cycle(), c1.Cycle())
	}
}

func TestHaltDrainsBuffers(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(1, 0x20000)
		b.Movi(2, 9)
		b.St(isa.OpSt64, 2, 1, 0)
		b.Halt()
	})
	if err := cpu.Run(c, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := mach.Mem.Read(0x20000, 8); got != 9 {
		t.Errorf("store = %d", got)
	}
}
