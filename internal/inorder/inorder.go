// Package inorder implements the baseline in-order core: a W-wide,
// stall-on-use pipeline with a scoreboard, a small store buffer, and no
// speculation beyond branch prediction. It is the "conventional in-order
// core" that SST is measured against, and — because it shares the ISA,
// frontend, predictor and memory hierarchy with the other models — also
// the architectural reference point for their timing.
package inorder

import (
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
	"rocksim/internal/obs"
)

// Config parameterizes the in-order core.
type Config struct {
	// Width is the issue width (instructions per cycle).
	Width int
	// MaxOutstandingLoads bounds loads in flight (stall-on-use allows a
	// few overlapped misses before a dependent use arrives).
	MaxOutstandingLoads int
	// StoreBufferSize bounds committed-but-unwritten stores.
	StoreBufferSize int
	// TakenPenalty is the fetch bubble for a correctly predicted taken
	// branch or jump.
	TakenPenalty uint64
	// MispredictPenalty is the fetch bubble for a mispredicted branch.
	MispredictPenalty uint64
}

// DefaultConfig returns a Niagara-class 2-wide in-order core.
func DefaultConfig() Config {
	return Config{
		Width:               2,
		MaxOutstandingLoads: 4,
		StoreBufferSize:     8,
		TakenPenalty:        2,
		MispredictPenalty:   8,
	}
}

// StallKind classifies why an issue cycle made no progress.
type StallKind int

// Stall classifications.
const (
	StallNone StallKind = iota
	StallFetch
	StallRedirect
	StallData
	StallLoadLimit
	StallStoreBuffer
	numStalls
)

// Stats extends the common statistics with in-order stall accounting.
type Stats struct {
	cpu.BaseStats
	StallCycles [numStalls]uint64
}

// stallNames label StallCycles entries in exports (index = StallKind).
var stallNames = [numStalls]string{
	"none", "fetch", "redirect", "data", "load_limit", "store_buffer",
}

// PublishObs publishes the common core counter set plus the in-order
// stall breakdown under "inorder/".
func (s *Stats) PublishObs(r *obs.Registry) {
	s.BaseStats.PublishObs(r)
	for k := StallKind(1); k < numStalls; k++ {
		r.Counter("inorder/stall/" + stallNames[k]).Set(s.StallCycles[k])
	}
}

// Core is the in-order pipeline model.
type Core struct {
	cfg Config
	m   *cpu.Machine
	fe  *cpu.Frontend

	regs    [isa.NumRegs]int64
	readyAt [isa.NumRegs]uint64 // scoreboard: cycle the register value is usable

	loadsInFlight []uint64 // completion cycles of outstanding loads
	storeBuf      []uint64 // completion cycles of buffered stores

	cycle uint64
	done  bool
	err   error

	stats Stats
	sink  obs.Sink
	occ   [2]int

	// Fast-forward state, valid while cycle < ffNext: the last Step was a
	// pure stall of kind ffStall with ffMLP outstanding data misses, and
	// no core state can change before cycle ffNext. Self-expiring: once
	// the clock reaches ffNext (by skip or by interleaved Ticks), NextEvent
	// reports no skip and the next Step re-derives everything.
	ffNext  uint64
	ffStall StallKind
	ffMLP   int
}

var _ cpu.FastForwarder = (*Core)(nil)

// inorderOccNames are the occupancy tracks reported through the sink.
var inorderOccNames = []string{"loads_inflight", "store_buffer"}

// SetSink installs an observability sink (nil disables).
func (c *Core) SetSink(s obs.Sink) {
	c.sink = s
	if s != nil {
		s.Attach("inorder", inorderOccNames)
	}
}

// New creates an in-order core executing from entry.
func New(m *cpu.Machine, cfg Config, entry uint64) *Core {
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	return &Core{cfg: cfg, m: m, fe: cpu.NewFrontend(m, entry)}
}

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the program has halted.
func (c *Core) Done() bool { return c.done }

// Retired returns committed instructions.
func (c *Core) Retired() uint64 { return c.stats.Retired }

// Base returns the common statistics block.
func (c *Core) Base() *cpu.BaseStats { return &c.stats.BaseStats }

// Stats returns the full in-order statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// Err returns a fatal simulation error, if any.
func (c *Core) Err() error { return c.err }

// Regs returns the architectural register file (for test validation).
func (c *Core) Regs() [isa.NumRegs]int64 { return c.regs }

// stallBucket maps an issue-loop stall to its cycle-accounting bucket.
// A data stall with misses outstanding is a memory wait (mshr); without,
// it is a plain scoreboard wait on a short-latency producer.
func stallBucket(k StallKind, outstanding int) cpu.Bucket {
	switch k {
	case StallFetch, StallRedirect:
		return cpu.BktFetch
	case StallData:
		if outstanding > 0 {
			return cpu.BktMSHR
		}
		return cpu.BktScoreboard
	case StallLoadLimit:
		return cpu.BktMSHR
	case StallStoreBuffer:
		return cpu.BktStoreBuf
	}
	return cpu.BktScoreboard
}

func pruneTimes(ts []uint64, now uint64) []uint64 {
	live := ts[:0]
	for _, t := range ts {
		if t > now {
			live = append(live, t)
		}
	}
	return live
}

func (c *Core) read(r uint8) int64 {
	if r == isa.RegZero {
		return 0
	}
	return c.regs[r]
}

func (c *Core) write(r uint8, v int64, ready uint64) {
	if r == isa.RegZero {
		return
	}
	c.regs[r] = v
	c.readyAt[r] = ready
}

// Tick advances the core's clock one cycle without issuing anything:
// the cycle belongs to another hardware thread sharing the pipeline
// (used by the SMT wrapper). Buffers still drain with time.
func (c *Core) Tick() {
	now := c.cycle
	c.loadsInFlight = pruneTimes(c.loadsInFlight, now)
	c.storeBuf = pruneTimes(c.storeBuf, now)
	c.stats.SampleMLP(c.m.Hier.OutstandingDataMisses(c.m.CoreID, now))
	c.stats.CPI[cpu.BktSMTIdle]++
	c.stats.Cycles++
	c.cycle++
}

// Step advances the core one cycle.
func (c *Core) Step() {
	now := c.cycle
	c.loadsInFlight = pruneTimes(c.loadsInFlight, now)
	c.storeBuf = pruneTimes(c.storeBuf, now)

	issued := 0
	stall := StallNone
issueLoop:
	for issued < c.cfg.Width && !c.done {
		if c.fe.Stalled(now) {
			stall = StallRedirect
			break
		}
		in, pc, ok, err := c.fe.Next(now)
		if err != nil {
			c.err = err
			return
		}
		if !ok {
			stall = StallFetch
			break
		}
		// Scoreboard check: stall-on-use.
		srcs, n := in.SrcRegs()
		for i := 0; i < n; i++ {
			if srcs[i] != isa.RegZero && c.readyAt[srcs[i]] > now {
				stall = StallData
				break issueLoop
			}
		}

		redirected := false
		switch in.Op.Class() {
		case isa.ClassNop, isa.ClassBarrier:
			if in.Op == isa.OpMembar && len(c.storeBuf) > 0 {
				stall = StallStoreBuffer
				break issueLoop
			}
		case isa.ClassHalt:
			if len(c.storeBuf) > 0 || len(c.loadsInFlight) > 0 {
				stall = StallStoreBuffer
				break issueLoop
			}
			c.done = true
		case isa.ClassALU:
			v := isa.ALUResult(in, c.read(in.Rs1), c.read(in.Rs2))
			c.write(in.Rd, v, now+uint64(in.Op.Latency()))
		case isa.ClassLoad:
			if len(c.loadsInFlight) >= c.cfg.MaxOutstandingLoads {
				stall = StallLoadLimit
				break issueLoop
			}
			addr := uint64(c.read(in.Rs1) + int64(in.Imm))
			res := c.m.Hier.AccessLoad(c.m.CoreID, addr, pc, now)
			raw := c.m.Mem.Read(addr, in.Op.MemWidth())
			c.write(in.Rd, isa.ExtendLoad(in.Op, raw), res.Ready)
			c.loadsInFlight = append(c.loadsInFlight, res.Ready)
			c.stats.Loads++
			c.stats.CountLoadLevel(res.Level)
		case isa.ClassStore:
			if len(c.storeBuf) >= c.cfg.StoreBufferSize {
				stall = StallStoreBuffer
				break issueLoop
			}
			addr := uint64(c.read(in.Rs1) + int64(in.Imm))
			c.m.Mem.Write(addr, in.Op.MemWidth(), uint64(c.read(in.Rs2)))
			res := c.m.Hier.Access(c.m.CoreID, mem.AccWrite, addr, now)
			c.storeBuf = append(c.storeBuf, res.Ready)
			c.m.StoreVisible(addr)
			c.stats.Stores++
		case isa.ClassBranch:
			redirected = c.branch(in, pc, now)
		case isa.ClassJump:
			redirected = c.jump(in, pc, now)
		case isa.ClassAtomic:
			// cas: executes non-speculatively with the line in hand.
			addr := uint64(c.read(in.Rs1))
			res := c.m.Hier.Access(c.m.CoreID, mem.AccWrite, addr, now)
			old := int64(c.m.Mem.Read(addr, 8))
			if old == c.read(in.Rs2) {
				c.m.Mem.Write(addr, 8, uint64(c.read(in.Rd)))
				c.m.StoreVisible(addr)
			}
			c.write(in.Rd, old, res.Ready)
			c.stats.Stores++
		case isa.ClassPrefetch:
			addr := uint64(c.read(in.Rs1) + int64(in.Imm))
			c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
		case isa.ClassTx:
			// No transactional hardware: flat execution, always succeeds.
			if in.Op == isa.OpTxBegin {
				c.write(in.Rd, 0, now+1)
			}
		}

		c.stats.Retired++
		issued++
		if !redirected && !c.done {
			c.fe.Advance()
		}
		if redirected {
			break // no issue past a control transfer in the same cycle
		}
	}

	if issued == 0 && stall != StallNone {
		c.stats.StallCycles[stall]++
	}
	outstanding := c.m.Hier.OutstandingDataMisses(c.m.CoreID, now)
	c.stats.SampleMLP(outstanding)
	if issued > 0 {
		c.stats.CPI[cpu.BktRetire]++
	} else {
		c.stats.CPI[stallBucket(stall, outstanding)]++
	}
	if c.sink != nil {
		c.occ[0], c.occ[1] = len(c.loadsInFlight), len(c.storeBuf)
		c.sink.CycleState(now, "normal", issued, 0, c.occ[:])
	}
	c.stats.Cycles++
	c.cycle++

	if issued == 0 && stall != StallNone && !c.done && c.err == nil {
		// Pure stall: every path that breaks the issue loop without
		// issuing leaves the core untouched (the only side effect, a
		// first fetch-line access, is idempotent on retry), so repeating
		// this Step until the earliest pending timer is pure bookkeeping.
		c.ffStall = stall
		c.ffMLP = outstanding
		c.ffNext = c.nextTimer(now)
	} else {
		c.ffNext = 0
	}
}

// nextTimer returns the earliest cycle strictly after now at which any
// of the core's pending completions lands (0 = none pending).
func (c *Core) nextTimer(now uint64) uint64 {
	var next uint64
	bound := func(t uint64) {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	bound(c.fe.NextDelivery(now))
	for _, t := range c.readyAt {
		bound(t)
	}
	for _, t := range c.loadsInFlight {
		bound(t)
	}
	for _, t := range c.storeBuf {
		bound(t)
	}
	bound(c.m.Hier.NextDataFill(c.m.CoreID, now))
	return next
}

// NextEvent implements cpu.FastForwarder. It reports the pure-stall
// horizon recorded by the last Step; once the clock reaches it the
// answer decays to 0 and the core must be stepped naively.
func (c *Core) NextEvent() uint64 {
	if c.ffNext > c.cycle {
		return c.ffNext
	}
	return 0
}

// SkipTo implements cpu.FastForwarder: it credits cycles
// [Cycle(), target) exactly as repeating the recorded pure-stall Step
// would, then advances the clock to target.
func (c *Core) SkipTo(target uint64) {
	c.FastForward(target, 1, 0)
}

// FastForward is SkipTo for a thread interleaved in an SMT pipeline:
// within [Cycle(), target), cycles with n%stride == phase replicate the
// recorded pure-stall Step and the rest replicate Tick (the issue slot
// belongs to the sibling thread, which only lets buffers drain). stride
// <= 1 makes every cycle a step slot, i.e. plain SkipTo.
func (c *Core) FastForward(target, stride, phase uint64) {
	a, b := c.cycle, target
	if b <= a {
		return
	}
	total := b - a
	steps := total
	if stride > 1 {
		// Count of n in [a, b) with n % stride == phase.
		f := func(x uint64) uint64 { return (x + stride - 1 - phase%stride) / stride }
		steps = f(b) - f(a)
	}
	c.stats.StallCycles[c.ffStall] += steps
	c.stats.CPI[stallBucket(c.ffStall, c.ffMLP)] += steps
	c.stats.CPI[cpu.BktSMTIdle] += total - steps
	if c.ffMLP > 0 {
		// Step and Tick both sample MLP, so every cycle contributes.
		c.stats.MLPSamples += total
		c.stats.MLPSum += uint64(c.ffMLP) * total
	}
	if c.sink != nil && steps > 0 {
		// Only step-slot cycles emit cycle state (Tick is silent), so a
		// strided run cannot use the contiguous bulk path.
		c.occ[0], c.occ[1] = len(c.loadsInFlight), len(c.storeBuf)
		if stride <= 1 {
			obs.EmitCycleRun(c.sink, a, b, "normal", c.occ[:])
		} else {
			n := a + (stride+phase%stride-a%stride)%stride
			for ; n < b; n += stride {
				c.sink.CycleState(n, "normal", 0, 0, c.occ[:])
			}
		}
	}
	c.stats.Cycles += total
	c.cycle = target
}

// branch resolves a conditional branch, charging predictor-dependent
// bubbles, and reports whether fetch was redirected.
func (c *Core) branch(in isa.Inst, pc uint64, now uint64) bool {
	taken := isa.BranchTaken(in.Op, c.read(in.Rs1), c.read(in.Rs2))
	pred := c.m.Pred.PredictDir(pc)
	mis := pred != taken
	c.m.Pred.UpdateDir(pc, taken, mis)
	c.stats.Branches++
	var target uint64
	if taken {
		target = in.BranchTarget(pc)
	} else {
		target = pc + isa.InstSize
	}
	var pen uint64
	switch {
	case mis:
		pen = c.cfg.MispredictPenalty
		c.stats.BranchMispred++
	case taken:
		pen = c.cfg.TakenPenalty
	}
	if pen > 0 || taken {
		c.fe.Redirect(target, now, pen)
		return true
	}
	return false
}

// jump resolves jal/jalr and reports whether fetch was redirected
// (always true).
func (c *Core) jump(in isa.Inst, pc uint64, now uint64) bool {
	link := int64(pc + isa.InstSize)
	var target uint64
	pen := c.cfg.TakenPenalty
	if in.Op == isa.OpJal {
		target = in.BranchTarget(pc)
		if in.Rd == isa.RegRA {
			c.m.Pred.PushReturn(pc + isa.InstSize)
		}
	} else {
		target = uint64(c.read(in.Rs1) + int64(in.Imm))
		// Predict for penalty purposes: returns via RAS, other
		// indirects via BTB.
		var predicted uint64
		var have bool
		if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
			predicted, have = c.m.Pred.PopReturn()
		} else {
			predicted, have = c.m.Pred.PredictTarget(pc)
		}
		if !have || predicted != target {
			pen = c.cfg.MispredictPenalty
			c.stats.BranchMispred++
		}
		c.m.Pred.UpdateTarget(pc, target)
		if in.Rd == isa.RegRA {
			c.m.Pred.PushReturn(pc + isa.InstSize)
		}
	}
	c.write(in.Rd, link, now+1)
	c.fe.Redirect(target, now, pen)
	return true
}
