package inorder

import (
	"fmt"

	"rocksim/internal/isa"
)

// Fingerprint canonically encodes the in-order configuration for
// run-cache keys, field by field (see sim.Options.Fingerprint).
func (c Config) Fingerprint() string {
	return fmt.Sprintf("inorder{width=%d loads=%d sb=%d taken=%d mispred=%d}",
		c.Width, c.MaxOutstandingLoads, c.StoreBufferSize, c.TakenPenalty, c.MispredictPenalty)
}

// Reset returns the core to its freshly constructed state, executing
// from entry, without reallocating: registers, scoreboard, load/store
// queues, clock, statistics and fast-forward state all cleared. The
// caller resets the shared machine (memory, hierarchy, predictor)
// separately — see cpu.Machine.Reset — and reinstalls per-run sinks
// afterwards, since a fresh core carries none.
func (c *Core) Reset(entry uint64) {
	c.fe.Reset(entry)
	c.regs = [isa.NumRegs]int64{}
	c.readyAt = [isa.NumRegs]uint64{}
	c.loadsInFlight = c.loadsInFlight[:0]
	c.storeBuf = c.storeBuf[:0]
	c.cycle = 0
	c.done = false
	c.err = nil
	c.stats = Stats{}
	c.sink = nil
	c.occ = [2]int{}
	c.ffNext = 0
	c.ffStall = StallNone
	c.ffMLP = 0
}

// Detach returns a frozen stats-only copy of the core in the same *Core
// shape, safe to hand to long-lived consumers (reports, cached
// outcomes) while the live core is reset and reused by the pool. Stats
// accessors (Base, Stats, Regs, Cycle, Retired, Done, Err, PublishObs)
// work on a detached core; Step must not be called on one.
func (c *Core) Detach() *Core {
	return &Core{
		cfg:   c.cfg,
		regs:  c.regs,
		cycle: c.cycle,
		done:  c.done,
		err:   c.err,
		stats: c.stats,
	}
}
