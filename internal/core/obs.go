package core

import "rocksim/internal/obs"

// PublishObs publishes the SST core's counters into the registry: the
// uniform cross-model core set (cycles, insts, checkpoint counts, DQ
// high-water mark — see cpu.BaseStats.PublishObs) plus the SST-specific
// breakdown under the "sst/" prefix.
func (c *Core) PublishObs(r *obs.Registry) {
	s := &c.stats
	s.BaseStats.PublishObs(r)

	// Uniform checkpoint/DQ counters (zero-valued placeholders were
	// created by the base publish; overwrite with the real figures).
	r.Counter("core/checkpoints_taken").Set(s.CheckpointsTaken)
	r.Counter("core/checkpoints_committed").Set(s.EpochCommits)
	r.Counter("core/checkpoints_aborted").Set(s.Rollbacks)
	r.Gauge("core/dq_highwater").Set(int64(s.DQOcc.Max()))

	r.Counter("sst/deferrals").Set(s.Deferrals)
	r.Counter("sst/replays").Set(s.Replays)
	r.Counter("sst/deferred_branches").Set(s.DeferredBranches)
	r.Counter("sst/deferred_branch_mispredicts").Set(s.DeferredBranchMispred)
	r.Counter("sst/pending_misses").Set(s.PendingMisses)
	r.Counter("sst/scout_entries").Set(s.ScoutEntries)
	r.Counter("sst/scout_insts").Set(s.ScoutInsts)
	r.Counter("sst/discarded_insts").Set(s.DiscardedInsts)
	r.Counter("sst/stall/dq_full").Set(s.DQFullStallCycles)
	r.Counter("sst/stall/ssb_full").Set(s.SSBFullStallCycles)
	r.Counter("sst/stall/atomic").Set(s.AtomicStallCycles)
	for cause := RollbackCause(0); cause < NumRollbackCauses; cause++ {
		r.Counter("sst/rollbacks/" + cause.String()).Set(s.RollbacksBy[cause])
	}
	for k := CycleKind(0); k < NumCycleKinds; k++ {
		r.Counter("sst/cycles/" + k.String()).Set(s.ModeCycles[k])
	}
	if s.Tx.Begins > 0 {
		r.Counter("sst/tx/begins").Set(s.Tx.Begins)
		r.Counter("sst/tx/commits").Set(s.Tx.Commits)
		r.Counter("sst/tx/aborts").Set(s.Tx.Aborts)
	}

	r.PutHist("sst/dq_occupancy", s.DQOcc)
	r.PutHist("sst/ssb_occupancy", s.SSBOcc)
	r.PutHist("sst/ckpt_occupancy", s.CkptOcc)
	r.PutHist("sst/ckpt_lifetime", s.CkptLife)
}
