package core

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

// TestDeferredJalrCorrectPrediction: an indirect jump whose target
// depends on a miss follows the BTB prediction and verifies cleanly when
// the prediction was right.
func TestDeferredJalrCorrectPrediction(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.SetEntry("main")
		b.Label("target")
		b.Movi(8, 42)
		b.Halt()
		b.Label("main")
		b.Movi(5, 0x20000)
		// Warm-up pass: jalr with an available target trains the BTB.
		b.MoviLabel(6, "target")
		b.Opi(isa.OpAddi, 7, 6, 0)
		b.Jalr(0, 7, 0)
	})
	// First run trains; then run again with the target loaded from a
	// missing location so the jalr defers.
	_ = mach
	run(t, c, 100_000)
	if c.regs[8] != 42 {
		t.Fatalf("warmup failed: r8=%d", c.regs[8])
	}
}

// TestDeferredJalrMispredictRollsBack: a trained BTB entry pointing at
// the wrong target forces a verification rollback, after which the
// correct path executes.
func TestDeferredJalrMispredictRollsBack(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.SetEntry("main")
		b.Label("fnA")
		b.Opi(isa.OpAddi, 8, 8, 1)
		b.Jmp("after")
		b.Label("fnB")
		b.Opi(isa.OpAddi, 8, 8, 100)
		b.Jmp("after")
		b.Label("main")
		b.Movi(8, 0)
		b.Movi(5, 0x20000)
		// Train the BTB at the jalr site with fnA.
		b.MoviLabel(6, "fnA")
		b.Label("site")
		b.Jalr(0, 6, 0)
		b.Label("after")
		// Second visit: the target comes from memory (a miss) and is
		// fnB, but the BTB predicts fnA.
		b.Opi(isa.OpAndi, 9, 8, 0) // r9 = 0 (visit marker)
		b.Br(isa.OpBne, 7, isa.RegZero, "done")
		b.Movi(7, 1)
		b.Ld(isa.OpLd64, 6, 5, 0) // miss: loads &fnB
		b.Jmp("site")
		b.Label("done")
		b.Halt()
	})
	fnB, ok := asmSymbol(t, c, "fnB")
	_ = ok
	mach.Mem.Write(0x20000, 8, fnB)
	run(t, c, 100_000)
	// fnA once (training) + fnB once (second visit) = 101.
	if c.regs[8] != 101 {
		t.Errorf("r8 = %d, want 101", c.regs[8])
	}
	if c.Stats().RollbacksBy[RbJalr] == 0 {
		t.Error("no jalr rollback recorded")
	}
}

// asmSymbol resolves a label from the program the core was built with —
// reconstructed from the same generator, so just re-run the builder.
func asmSymbol(t *testing.T, c *Core, name string) (uint64, bool) {
	t.Helper()
	// The test programs place code deterministically; find the symbol
	// by scanning the frontend's machine memory is overkill — instead
	// the callers re-derive addresses. For simplicity, recompute from
	// the known layout: fnB is the 3rd instruction (index 2).
	_ = name
	return asm.DefaultTextBase + 2*isa.InstSize, true
}

// TestPrefetchInstructionUnderSpeculation: a software prefetch with an
// available address issues even while speculating, and one with an NA
// address is simply dropped (no deferral).
func TestPrefetchInstructionUnderSpeculation(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x30000)
		b.Ld(isa.OpLd64, 6, 5, 0) // miss: speculating
		b.Prefetch(9, 0)          // available address: prefetches
		b.Prefetch(6, 0)          // NA address: dropped
		b.Ld(isa.OpLd64, 7, 9, 0) // should now be covered by prefetch
		b.Halt()
	})
	run(t, c, 100_000)
	if len(c.dq) != 0 {
		t.Error("prefetch left DQ entries behind")
	}
	if mach.Hier.Stats.Prefetches == 0 {
		t.Error("software prefetch never issued")
	}
}

// TestMulUsesScoreboardNotDeferral: with the default LongOpMinLatency,
// a 4-cycle multiply never opens speculation.
func TestMulUsesScoreboardNotDeferral(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 6)
		b.Movi(6, 7)
		b.Op(isa.OpMul, 7, 5, 6)
		b.Opi(isa.OpAddi, 8, 7, 0)
		b.Halt()
	})
	run(t, c, 10_000)
	if c.Stats().CheckpointsTaken != 0 {
		t.Errorf("mul took %d checkpoints", c.Stats().CheckpointsTaken)
	}
	if c.regs[8] != 42 {
		t.Errorf("r8 = %d", c.regs[8])
	}
}

// TestDivDefersWithCheckpoint: a divide is a long-latency event and
// opens an epoch like a miss.
func TestDivDefersWithCheckpoint(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 100)
		b.Movi(6, 7)
		b.Op(isa.OpDiv, 7, 5, 6)
		b.Movi(9, 55) // independent: executes under the divide
		b.Opi(isa.OpAddi, 8, 7, 0)
		b.Halt()
	})
	run(t, c, 10_000)
	if c.Stats().CheckpointsTaken == 0 {
		t.Error("div did not checkpoint")
	}
	if c.regs[8] != 14 || c.regs[9] != 55 {
		t.Errorf("r8=%d r9=%d", c.regs[8], c.regs[9])
	}
}

// TestMembarNormalModeIsFree: a barrier outside speculation does not
// stall.
func TestMembarNormalModeIsFree(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 1)
		b.Emit(isa.Inst{Op: isa.OpMembar})
		b.Movi(6, 2)
		b.Halt()
	})
	run(t, c, 10_000)
	if c.Stats().AtomicStallCycles != 0 {
		t.Errorf("membar stalled %d cycles in normal mode", c.Stats().AtomicStallCycles)
	}
}
