package core

import (
	"fmt"

	"rocksim/internal/cpu"
	"rocksim/internal/mem"
)

// takeCheckpoint snapshots architectural state before the instruction at
// pc executes, opening a new speculation epoch. Returns false when no
// checkpoint register is free.
func (c *Core) takeCheckpoint(pc uint64) bool {
	if len(c.ckpts) >= c.cfg.Checkpoints {
		return false
	}
	if c.flt.DenyCheckpoint(c.cycle) {
		// Injected allocation failure: identical to checkpoint exhaustion,
		// so callers fall back to their no-checkpoint paths.
		return false
	}
	ck := checkpoint{
		startSeq:   c.seq,
		pc:         pc,
		takenAt:    c.cycle,
		regs:       c.regs,
		na:         c.na,
		lastWriter: c.lastWriter,
		readyAt:    c.readyAt,
		ghr:        c.m.Pred.History(),
		processed:  c.processed,
		cpi:        c.stats.CPI,
	}
	c.ckpts = append(c.ckpts, ck)
	c.stats.CheckpointsTaken++
	if c.sink != nil {
		c.sink.SpanBegin(c.cycle, "checkpoint", "ckpt", ck.startSeq)
		c.sink.Event(c.cycle, "checkpoint", "checkpoint", fmt.Sprintf("pc=%#x seq=%d live=%d", pc, c.seq, len(c.ckpts)))
	}
	return true
}

// epochOf returns the index of the epoch containing seq (the youngest
// checkpoint whose startSeq <= seq).
func (c *Core) epochOf(seq uint64) int {
	for i := len(c.ckpts) - 1; i >= 0; i-- {
		if c.ckpts[i].startSeq <= seq {
			return i
		}
	}
	return 0
}

// oldestUnresolvedSeq returns the smallest sequence number that is still
// speculative: an unreplayed DQ entry or an undelivered pending result.
// Returns c.seq when everything has resolved.
func (c *Core) oldestUnresolvedSeq() uint64 {
	oldest := c.seq
	for i := range c.dq {
		if c.dq[i].seq < oldest {
			oldest = c.dq[i].seq
		}
	}
	for i := range c.pend {
		if c.pend[i].seq < oldest {
			oldest = c.pend[i].seq
		}
	}
	return oldest
}

// commitEpochs retires fully resolved epochs from oldest to youngest:
// buffered stores drain to memory and the checkpoint is freed. When the
// last epoch commits, the core returns to normal mode.
func (c *Core) commitEpochs(now uint64) {
	if c.mode != ModeSpec || len(c.ckpts) == 0 {
		return
	}
	if !c.resolveDirty {
		// Nothing has resolved or been squashed since the last blocked
		// scan: the oldest unresolved seq is unchanged and the epoch
		// boundary only moves up, so the commit gate still fails.
		return
	}
	oldest := c.oldestUnresolvedSeq()
	for len(c.ckpts) > 0 {
		boundary := c.seq
		if len(c.ckpts) > 1 {
			boundary = c.ckpts[1].startSeq
		}
		if oldest < boundary {
			c.resolveDirty = false
			return
		}
		c.drainSSB(boundary, now)
		// Account architectural retirement for the committed epoch.
		endProcessed := c.processed
		if len(c.ckpts) > 1 {
			endProcessed = c.ckpts[1].processed
		}
		c.stats.Retired += endProcessed - c.ckpts[0].processed
		// Committed reads no longer need conflict tracking. (The read
		// set is not seq-sorted — replayed loads append out of order —
		// so filter rather than trim a prefix.)
		rs := c.readSet[:0]
		for _, r := range c.readSet {
			if r.seq >= boundary {
				rs = append(rs, r)
			}
		}
		c.readSet = rs
		if len(c.specFills) > 0 {
			// Committed fills are architectural, not leaked residue.
			sf := c.specFills[:0]
			for _, s := range c.specFills {
				if s >= boundary {
					sf = append(sf, s)
				}
			}
			c.specFills = sf
		}
		c.stats.CkptLife.Add(int(now - c.ckpts[0].takenAt))
		if c.sink != nil {
			c.sink.SpanEnd(now, "checkpoint", c.ckpts[0].startSeq)
			c.sink.Event(now, "checkpoint", "commit", fmt.Sprintf("epoch boundary seq=%d", boundary))
		}
		// Shift in place rather than re-slicing from 1: advancing the
		// base would orphan the backing array's front and force the next
		// takeCheckpoint append to reallocate, putting a ~1KB allocation
		// on the steady-state commit path.
		n := copy(c.ckpts, c.ckpts[1:])
		c.ckpts = c.ckpts[:n]
		c.stats.EpochCommits++
	}
	// Everything committed: back to normal operation.
	c.mode = ModeNormal
	c.readSet = c.readSet[:0]
}

// drainSSB writes buffered stores with seq < boundary to memory in
// program order.
func (c *Core) drainSSB(boundary uint64, now uint64) {
	i := 0
	for ; i < len(c.ssb); i++ {
		e := c.ssb[i]
		if e.seq >= boundary {
			break
		}
		c.m.Mem.Write(e.addr, e.size, uint64(e.val))
		c.m.Hier.Access(c.m.CoreID, mem.AccWrite, e.addr, now)
		c.m.StoreVisible(e.addr)
		c.stats.Stores++
	}
	c.ssb = c.ssb[:copy(c.ssb, c.ssb[i:])]
}

// rollback restores the checkpoint opening epoch idx, squashing that
// epoch and everything younger. Execution resumes at the checkpointed PC
// after a pipeline-refill bubble.
func (c *Core) rollback(idx int, now uint64, cause RollbackCause) {
	ck := c.ckpts[idx]
	if c.flt.SkipRestoreRegs(now) {
		// Deliberately broken restore (faults.SkipRestore): keep the
		// speculative register values. Exists only so the invisibility
		// oracle can be proven to catch a rollback bug.
	} else {
		c.regs = ck.regs
	}
	c.na = ck.na
	c.lastWriter = ck.lastWriter
	c.readyAt = ck.readyAt
	c.m.Pred.SetHistory(ck.ghr)
	c.stats.DiscardedInsts += c.processed - ck.processed
	c.processed = ck.processed
	// Re-attribute the cycle-accounting stack: every cycle since this
	// checkpoint was taken was spent on (or alongside) work the rollback
	// just discarded, so it moves from the bucket it was first counted in
	// to the rollback cause's bucket. The total is conserved, keeping the
	// sum-equals-cycles invariant; attribution of cycles shared with
	// older, still-live epochs is deliberately charged to the failure.
	var moved uint64
	for b := range ck.cpi {
		moved += c.stats.CPI[b] - ck.cpi[b]
	}
	c.stats.CPI = ck.cpi
	c.stats.CPI[cpu.BktRollback0+cpu.Bucket(cause)] += moved
	for i := idx; i < len(c.ckpts); i++ {
		c.stats.CkptLife.Add(int(now - c.ckpts[i].takenAt))
		if c.sink != nil {
			c.sink.SpanEnd(now, "checkpoint", c.ckpts[i].startSeq)
		}
	}
	c.ckpts = c.ckpts[:idx]

	// Squash speculative state younger than the checkpoint.
	cut := ck.startSeq
	dq := c.dq[:0]
	c.dqStores = 0
	c.dqReady = 0
	for _, e := range c.dq {
		if e.seq < cut {
			dq = append(dq, e)
			if e.in.Op.IsStore() {
				c.dqStores++
			}
			if !(e.isNA[0] || e.isNA[1] || e.isNA[2]) {
				c.dqReady++
			}
		}
	}
	c.dq = dq
	rs := c.readSet[:0]
	for _, r := range c.readSet {
		if r.seq < cut {
			rs = append(rs, r)
		}
	}
	c.readSet = rs
	ssb := c.ssb[:0]
	for _, e := range c.ssb {
		if e.seq < cut {
			ssb = append(ssb, e)
		}
	}
	c.ssb = ssb
	pend := c.pend[:0]
	var pendMin uint64
	c.secPending = 0
	for _, p := range c.pend {
		if p.seq < cut {
			pend = append(pend, p)
			if pendMin == 0 || p.ready < pendMin {
				pendMin = p.ready
			}
			if p.blocked || p.quarantined {
				c.secPending++
			}
		}
	}
	c.pend = pend
	c.pendMin = pendMin
	if len(c.specFills) > 0 {
		// Count the speculative fills this squash just turned into
		// attacker-observable residue (leak-oracle accounting; the log is
		// only populated while secrets are installed).
		sf := c.specFills[:0]
		squashed := 0
		for _, s := range c.specFills {
			if s < cut {
				sf = append(sf, s)
			} else {
				squashed++
			}
		}
		c.specFills = sf
		if squashed > 0 {
			c.m.Hier.NoteSquashedSpecFills(squashed)
		}
	}

	c.scoutArmed = false
	if len(c.ckpts) == 0 {
		c.mode = ModeNormal
	} else {
		c.mode = ModeSpec
	}
	c.stats.Rollbacks++
	c.stats.RollbacksBy[cause]++
	if c.sink != nil {
		c.sink.Event(now, "checkpoint", "rollback", fmt.Sprintf("cause=%v to pc=%#x", cause, ck.pc))
	}
	c.forceProgress = true
	c.forceProgressPC = ck.pc
	c.resolveDirty = true
	c.fe.Redirect(ck.pc, now, c.cfg.RollbackPenalty)
}

// enterScout transitions to hardware-scout mode: execution continues
// purely for its prefetching effect, and the machine rolls back to the
// oldest checkpoint once the triggering miss returns.
func (c *Core) enterScout() {
	if c.mode == ModeScout {
		return
	}
	c.mode = ModeScout
	c.stats.ScoutEntries++
	if c.sink != nil {
		c.sink.Event(c.cycle, "mode", "scout", "deferral impossible: prefetch-only mode")
	}
	// Held results can only release at oldest-unresolved, which scout —
	// whose DQ never replays — may never reach: drop them (see secure.go).
	c.dropSecureHolds()
	c.armScoutTrigger()
}

// armScoutTrigger picks the oldest outstanding pending result as the
// scout-exit trigger.
func (c *Core) armScoutTrigger() {
	c.scoutArmed = false
	for _, p := range c.pend {
		if !c.scoutArmed || p.seq < c.scoutTriggerSeq {
			c.scoutTriggerSeq = p.seq
			c.scoutArmed = true
		}
	}
}

// maybeScoutRollback exits scout mode once the trigger miss has been
// delivered (or if nothing is outstanding at all).
func (c *Core) maybeScoutRollback(now uint64) {
	if c.scoutArmed {
		for _, p := range c.pend {
			if p.seq == c.scoutTriggerSeq {
				return // still outstanding
			}
		}
	}
	c.rollback(0, now, RbScout)
}

// loadBlockedByDeferredStore reports whether a load to [addr, addr+size)
// provably conflicts with an older deferred store whose address is known
// (data still NA). Deferred stores with unknown addresses do not block —
// they verify against the read set at replay time instead.
func (c *Core) loadBlockedByDeferredStore(addr uint64, size int) bool {
	if c.dqStores == 0 {
		return false
	}
	for i := range c.dq {
		e := &c.dq[i]
		if !e.memAddrKnown {
			continue
		}
		if e.memAddr < addr+uint64(size) && addr < e.memAddr+uint64(e.memSize) {
			return true
		}
	}
	return false
}

// readSetConflict reports whether any speculative load younger than
// storeSeq overlaps [addr, addr+size). The read set is unsorted (ahead
// and replayed loads interleave), so this is a full scan.
func (c *Core) readSetConflict(storeSeq uint64, addr uint64, size int) bool {
	for i := range c.readSet {
		r := &c.readSet[i]
		if r.seq <= storeSeq {
			continue
		}
		if r.addr < addr+uint64(size) && addr < r.addr+uint64(r.size) {
			return true
		}
	}
	return false
}

// ssbInsert adds a speculative store in sequence order. Reports false if
// the buffer is full.
func (c *Core) ssbInsert(e ssbEntry) bool {
	limit := c.cfg.SSBSize
	if c.flt != nil {
		limit = c.flt.ClampSSB(c.cycle, limit)
	}
	if limit <= 0 || len(c.ssb) >= limit {
		return false
	}
	i := len(c.ssb)
	for i > 0 && c.ssb[i-1].seq > e.seq {
		i--
	}
	c.ssb = append(c.ssb, ssbEntry{})
	copy(c.ssb[i+1:], c.ssb[i:])
	c.ssb[i] = e
	return true
}

// composeLoad reads size bytes at addr from architectural memory,
// overlaying speculative stores older than uptoSeq in program order.
func (c *Core) composeLoad(addr uint64, size int, uptoSeq uint64) uint64 {
	raw := c.m.Mem.Read(addr, size)
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(raw >> (8 * i))
	}
	for _, s := range c.ssb { // ordered by seq: later entries win
		if s.seq >= uptoSeq {
			break
		}
		for b := 0; b < s.size; b++ {
			a := s.addr + uint64(b)
			if a >= addr && a < addr+uint64(size) {
				buf[a-addr] = byte(uint64(s.val) >> (8 * b))
			}
		}
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	return v
}
