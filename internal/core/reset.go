package core

import (
	"fmt"

	"rocksim/internal/isa"
)

// Fingerprint canonically encodes the SST configuration for run-cache
// keys, field by field (see sim.Options.Fingerprint).
func (c Config) Fingerprint() string {
	return fmt.Sprintf("sst{width=%d replay=%d ckpts=%d dq=%d ssb=%d strand2=%t scoutdq=%t deferlong=%t longmin=%d ckptmiss=%t ckptbr=%t taken=%d mispred=%d rollback=%d secdelay=%t secnofwd=%t secssb=%t}",
		c.Width, c.ReplayWidth, c.Checkpoints, c.DQSize, c.SSBSize,
		c.SecondStrand, c.ScoutOnDQFull, c.DeferLongOps, c.LongOpMinLatency,
		c.CheckpointPerMiss, c.CheckpointOnDeferredBranch,
		c.TakenPenalty, c.MispredictPenalty, c.RollbackPenalty,
		c.SecureDelayOnMiss, c.SecureNoNAForward, c.SecureEagerSSBFlush)
}

// Reset returns the core to its freshly constructed state, executing
// from entry, without reallocating: every speculative structure (DQ,
// SSB, checkpoints, pending results, read set), the register file and
// NA bits, mode/scout/transaction/coherence state, the fast-forward and
// stall-snapshot caches, and all statistics (histograms cleared in
// place). seq restarts at 1 — seq 0 stays reserved so lastWriter==0
// means "no producer", exactly as in New. The caller resets the shared
// machine separately (see cpu.Machine.Reset) and reinstalls per-run
// sinks and fault injectors afterwards, since a fresh core carries
// none.
func (c *Core) Reset(entry uint64) {
	c.fe.Reset(entry)
	c.regs = [isa.NumRegs]int64{}
	c.na = [isa.NumRegs]bool{}
	c.lastWriter = [isa.NumRegs]uint64{}
	c.readyAt = [isa.NumRegs]uint64{}
	c.mode = ModeNormal
	c.seq = 1
	c.ckpts = c.ckpts[:0]
	c.dq = c.dq[:0]
	c.ssb = c.ssb[:0]
	c.pend = c.pend[:0]
	c.pendMin = 0
	c.sbHorizon = 0
	c.dqStores = 0
	c.dqReady = 0
	c.readSet = c.readSet[:0]
	c.processed = 0
	c.scoutTriggerSeq = 0
	c.scoutArmed = false
	c.forceProgress = false
	c.forceProgressPC = 0
	c.tx = txState{}
	c.cohSeq = 0
	c.sink = nil
	c.occ = [4]int{}
	c.flt = nil
	c.done = false
	c.err = nil
	c.cycle = 0
	c.resolveDirty = false
	c.quiet = false
	c.snapBuf = stepSnap{}
	c.feStall = false
	c.ffNext = 0
	c.ffKind = 0
	c.ffBucket = 0
	c.ffDQStall = 0
	c.ffSSBStall = 0
	c.ffAtStall = 0
	c.ffSecDelay = 0
	c.ffSecNoFwd = 0
	c.ffSecSSB = 0
	c.ffMLP = 0
	c.secPending = 0
	c.specFills = c.specFills[:0]

	dq, ssb, ckpt, life := c.stats.DQOcc, c.stats.SSBOcc, c.stats.CkptOcc, c.stats.CkptLife
	dq.Reset()
	ssb.Reset()
	ckpt.Reset()
	life.Reset()
	c.stats = Stats{DQOcc: dq, SSBOcc: ssb, CkptOcc: ckpt, CkptLife: life}

	// The machine reset dropped the hierarchy's listeners; mirror New by
	// re-registering on a coherent chip. (The pooled single-core path is
	// never coherent, but the contract is Reset == New regardless.)
	c.invalListener = false
	if c.m.Coherent {
		c.installInvalListener()
	}
}

// Detach returns a frozen stats-only copy of the core in the same *Core
// shape: configuration, registers, clock and a deep copy of the
// statistics (occupancy and lifetime histograms cloned). It shares no
// mutable state with the live core, so long-lived consumers — reports,
// cached outcomes, published registries — keep exact figures while the
// pool resets and reuses the live core. Stats accessors (Base, Stats,
// Regs, Mode, Cycle, Retired, Done, Err, PublishObs) work on a detached
// core; Step must not be called on one.
func (c *Core) Detach() *Core {
	d := &Core{
		cfg:   c.cfg,
		regs:  c.regs,
		mode:  c.mode,
		done:  c.done,
		err:   c.err,
		cycle: c.cycle,
		stats: c.stats,
	}
	d.stats.DQOcc = c.stats.DQOcc.Clone()
	d.stats.SSBOcc = c.stats.SSBOcc.Clone()
	d.stats.CkptOcc = c.stats.CkptOcc.Clone()
	d.stats.CkptLife = c.stats.CkptLife.Clone()
	return d
}
