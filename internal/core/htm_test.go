package core

import (
	"fmt"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cmp"
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// TestTxCommitPublishesAtomically: stores inside a transaction are
// invisible until txcommit, then all appear.
func TestTxCommitPublishesAtomically(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(6, 11)
		b.Movi(7, 22)
		b.TxBegin(10, "fail")
		b.St(isa.OpSt64, 6, 5, 0)
		b.St(isa.OpSt64, 7, 5, 8)
		b.Ld(isa.OpLd64, 8, 5, 0) // reads its own buffered store
		b.TxCommit()
		b.Halt()
		b.Label("fail")
		b.Movi(9, 0xbad)
		b.Halt()
	})
	// Step until both stores are buffered; memory must still be clean.
	stepUntil(t, c, 5000, func() bool { return len(c.ssb) == 2 })
	if mach.Mem.Read(0x20000, 8) != 0 || mach.Mem.Read(0x20008, 8) != 0 {
		t.Fatal("transactional store leaked before commit")
	}
	run(t, c, 100_000)
	if c.regs[9] == 0xbad {
		t.Fatal("transaction aborted unexpectedly")
	}
	if mach.Mem.Read(0x20000, 8) != 11 || mach.Mem.Read(0x20008, 8) != 22 {
		t.Error("transactional stores not published at commit")
	}
	if c.regs[8] != 11 {
		t.Errorf("in-txn load = %d, want 11 (SSB forwarding)", c.regs[8])
	}
	st := c.Stats()
	if st.Tx.Begins != 1 || st.Tx.Commits != 1 || st.Tx.Aborts != 0 {
		t.Errorf("tx stats = %+v", st.Tx)
	}
}

// TestTxCapacityAbort: overflowing the SSB aborts with the capacity code
// and rolls registers back.
func TestTxCapacityAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SSBSize = 4
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(6, 7)
		b.TxBegin(10, "fail")
		b.Movi(6, 99) // clobbered inside the txn; must roll back
		for i := 0; i < 6; i++ {
			b.St(isa.OpSt64, 6, 5, int32(i*8))
		}
		b.TxCommit()
		b.Halt()
		b.Label("fail")
		b.Opi(isa.OpAddi, 11, 10, 0) // capture the abort code
		b.Halt()
	})
	run(t, c, 100_000)
	if c.regs[11] != TxAbortCapacity {
		t.Errorf("abort code = %d, want %d", c.regs[11], TxAbortCapacity)
	}
	if c.regs[6] != 7 {
		t.Errorf("r6 = %d, want rolled back to 7", c.regs[6])
	}
	for i := 0; i < 6; i++ {
		if got := mach.Mem.Read(uint64(0x20000+i*8), 8); got != 0 {
			t.Errorf("aborted store %d leaked: %d", i, got)
		}
	}
	if c.Stats().Tx.AbortsByCode[TxAbortCapacity] != 1 {
		t.Errorf("capacity aborts = %d", c.Stats().Tx.AbortsByCode[TxAbortCapacity])
	}
}

// TestTxUnsupportedOpAborts: cas inside a transaction aborts with the
// unsupported code.
func TestTxUnsupportedOpAborts(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.TxBegin(10, "fail")
		b.Cas(6, 5, 7)
		b.TxCommit()
		b.Halt()
		b.Label("fail")
		b.Opi(isa.OpAddi, 11, 10, 0)
		b.Halt()
	})
	run(t, c, 100_000)
	if c.regs[11] != TxAbortUnsupported {
		t.Errorf("abort code = %d", c.regs[11])
	}
}

// TestTxNestedAborts: a txbegin inside a transaction aborts the outer
// one with the nesting code.
func TestTxNestedAborts(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.TxBegin(10, "fail")
		b.TxBegin(12, "fail")
		b.TxCommit()
		b.Halt()
		b.Label("fail")
		b.Opi(isa.OpAddi, 11, 10, 0)
		b.Halt()
	})
	run(t, c, 100_000)
	if c.regs[11] != TxAbortNested {
		t.Errorf("abort code = %d", c.regs[11])
	}
}

// TestTxRetryLoopConverges: the canonical retry pattern eventually
// commits even after an abort (forced here via capacity on the first
// attempt by using a deterministic shrinking store count — simplest:
// retry after unsupported-op on a path executed only once).
func TestTxRetryLoopConverges(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(12, 0) // attempt counter
		b.Label("retry")
		b.Opi(isa.OpAddi, 12, 12, 1)
		b.TxBegin(10, "handler")
		// First attempt trips cas; later attempts skip it.
		b.Opi(isa.OpSlti, 13, 12, 2)
		b.Br(isa.OpBeq, 13, isa.RegZero, "safe")
		b.Cas(6, 5, 7) // aborts attempt 1
		b.Label("safe")
		b.Movi(6, 123)
		b.St(isa.OpSt64, 6, 5, 0)
		b.TxCommit()
		b.Halt()
		b.Label("handler")
		b.Jmp("retry")
	})
	run(t, c, 1_000_000)
	if got := mach.Mem.Read(0x20000, 8); got != 123 {
		t.Errorf("committed value = %d", got)
	}
	if c.regs[12] != 2 {
		t.Errorf("attempts = %d, want 2", c.regs[12])
	}
	st := c.Stats()
	if st.Tx.Aborts != 1 || st.Tx.Commits != 1 {
		t.Errorf("tx stats = %+v", st.Tx)
	}
}

// txCounterProgram builds the shared HTM counter increment program:
// each core increments a shared counter n times inside transactions.
func txCounterProgram(t *testing.T, n int) *asm.Program {
	t.Helper()
	b := asm.NewBuilder(asm.DefaultTextBase)
	src := fmt.Sprintf(`
		.org 0x10000
	worker0:
		movi r20, %d
		j    work
	worker1:
		movi r20, %d
	work:
		movi r5, 0x200000
	loop:
		txbegin r10, handler
		ld64 r6, (r5)
		addi r6, r6, 1
		st64 r6, (r5)
		txcommit
		addi r20, r20, -1
		bne  r20, zero, loop
		halt
	handler:
		j loop
	`, n, n)
	_ = b
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTxConflictTwoCores: two SST cores hammer one counter with HTM
// retry loops; the final count must be exact and conflict aborts must
// have occurred.
func TestTxConflictTwoCores(t *testing.T) {
	const perCore = 60
	prog := txCounterProgram(t, perCore)
	w0, _ := prog.Symbol("worker0")
	w1, _ := prog.Symbol("worker1")
	chip, err := cmp.NewShared(testHier(), bpred.DefaultConfig(), prog,
		[]uint64{w0, w1},
		func(id int, m *cpu.Machine, entry uint64) (cpu.Core, error) {
			return New(m, DefaultConfig(), entry), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := chip.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if got := chip.Machines[0].Mem.Read(0x200000, 8); got != 2*perCore {
		t.Errorf("counter = %d, want %d", got, 2*perCore)
	}
	var aborts, commits uint64
	for _, cr := range chip.Cores {
		st := cr.(*Core).Stats()
		aborts += st.Tx.Aborts
		commits += st.Tx.Commits
	}
	if commits != 2*perCore {
		t.Errorf("commits = %d, want %d", commits, 2*perCore)
	}
	if aborts == 0 {
		t.Error("no conflict aborts under contention")
	}
}

// TestTxReadSetConflict: a transaction that only READS a location
// aborts when another core writes it (tested via the listener directly
// for determinism).
func TestTxReadSetConflict(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.TxBegin(10, "fail")
		b.Ld(isa.OpLd64, 6, 5, 0)
		// Spin long enough for the "remote" write to land.
		b.Movi(12, 50)
		b.Label("spin")
		b.Opi(isa.OpAddi, 12, 12, -1)
		b.Br(isa.OpBne, 12, isa.RegZero, "spin")
		b.TxCommit()
		b.Halt()
		b.Label("fail")
		b.Opi(isa.OpAddi, 11, 10, 0)
		b.Halt()
	})
	// Wait until the transaction has read the line.
	stepUntil(t, c, 10_000, func() bool { return c.tx.active && len(c.tx.reads) > 0 })
	// Simulate a remote committed store to the same line.
	mach.Hier.SetAddressSalt(0, 0) // identity (already default)
	for line := range c.tx.reads {
		cListener(c)(line)
		break
	}
	run(t, c, 100_000)
	if c.regs[11] != TxAbortConflict {
		t.Errorf("abort code = %d, want conflict", c.regs[11])
	}
}

// cListener fetches the registered conflict listener by re-deriving it:
// the test injects the conflict exactly as the hierarchy would.
func cListener(c *Core) func(uint64) {
	return func(line uint64) {
		if c.tx.active && c.tx.abort == 0 {
			if _, ok := c.tx.reads[line]; ok {
				c.tx.abort = TxAbortConflict
			}
		}
	}
}

// TestTxEquivalenceWithFlatCores: a single-threaded program using
// transactions (which always commit) produces identical architectural
// state on the SST core and the flat (no-HTM) cores and emulator.
func TestTxEquivalenceWithFlatCores(t *testing.T) {
	src := `
		.org 0x10000
		movi r5, 0x20000
		movi r7, 10
	loop:	txbegin r10, fail
		ld64 r6, (r5)
		addi r6, r6, 3
		st64 r6, (r5)
		txcommit
		addi r7, r7, -1
		bne  r7, zero, loop
		halt
	fail:	movi r9, 0xbad
		halt
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Golden.
	gm := mem.NewSparse()
	prog.Load(gm)
	emu := isa.NewEmulator(prog.Entry, gm)
	if err := emu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// SST with real HTM.
	m := mem.NewSparse()
	prog.Load(m)
	mach, err := cpu.NewMachine(m, testHier(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(mach, DefaultConfig(), prog.Entry)
	run(t, c, 1_000_000)
	if c.Retired() != emu.Executed {
		t.Errorf("retired %d, golden %d", c.Retired(), emu.Executed)
	}
	if got := m.Read(0x20000, 8); got != 30 {
		t.Errorf("counter = %d, want 30", got)
	}
	if !m.Equal(gm) {
		t.Error("memory image differs from golden")
	}
}
