package core

// Coherence-driven speculation repair. On a shared-memory chip
// (cpu.Machine.Coherent) every committed remote store invalidates the
// line in the other cores' L1Ds and calls their invalidation listeners
// (mem.Hierarchy.StoreVisible). The SST core uses that single listener
// for two consumers:
//
//   - an open transaction aborts when the store hits its read set or its
//     buffered write set (ROCK's HTM conflict detection, see htm.go);
//
//   - outside transactions, a speculative load whose line is invalidated
//     may have captured a stale value — ahead loads read architectural
//     memory at issue time and deferred loads at replay time, so a
//     remote store landing between two loads' reads can be observed out
//     of program order. TSO forbids making that visible, so the epoch
//     containing the oldest conflicting load rolls back (RbCoherence)
//     and re-executes against current memory. This is the load-side
//     counterpart of readSetConflict's store-side check, and mirrors
//     ROCK discarding speculative work when a line with a speculative-
//     read bit set is lost.
//
// The listener runs during the *storing* core's Step — chips step cores
// sequentially in one goroutine (cmp.Chip.Run), never during ours — so
// it only records the conflict (cohSeq); applyCoherence performs the
// rollback at the top of our next Step, before replay can consume any
// stale deferred value. NextEvent treats a pending conflict (or a
// pending transaction abort) as an immediate event so a fast-forward
// jump recorded earlier in the cycle cannot delay the repair.

// installInvalListener registers the core's remote-store listener with
// the hierarchy. Installed eagerly for coherent machines at New and
// lazily at the first txbegin otherwise.
func (c *Core) installInvalListener() {
	if c.invalListener {
		return
	}
	c.invalListener = true
	c.m.Hier.SetInvalListener(c.m.CoreID, c.onRemoteStore)
}

// onRemoteStore handles one invalidated line (line-aligned address).
func (c *Core) onRemoteStore(line uint64) {
	if c.tx.active {
		if c.tx.abort != 0 {
			return
		}
		if _, ok := c.tx.reads[line]; ok {
			c.tx.abort = TxAbortConflict
			return
		}
		for _, s := range c.ssb {
			if c.lineAddr(s.addr) == line {
				c.tx.abort = TxAbortConflict
				return
			}
		}
		return
	}
	if c.mode != ModeSpec {
		return
	}
	for i := range c.readSet {
		r := &c.readSet[i]
		if c.lineAddr(r.addr) != line && c.lineAddr(r.addr+uint64(r.size)-1) != line {
			continue
		}
		if c.cohSeq == 0 || r.seq < c.cohSeq {
			c.cohSeq = r.seq
		}
	}
}

// applyCoherence consumes a recorded read-set conflict: roll back the
// epoch containing the oldest invalidated load. Runs before replay and
// commit in Step, so the conflicting load can neither commit nor feed a
// stale value onward once the conflict is known.
func (c *Core) applyCoherence(now uint64) {
	seq := c.cohSeq
	c.cohSeq = 0
	if c.mode != ModeSpec || len(c.ckpts) == 0 {
		// The epoch already rolled back (or aborted) for another reason
		// between recording and applying; nothing left to repair.
		return
	}
	c.rollback(c.epochOf(seq), now, RbCoherence)
}
