package core

import (
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// Secure-speculation mitigations. Three Config switches close the
// transient-leakage channels that sim.CheckTransientLeakage demonstrates
// on the unmitigated core (speculative fills and LRU touches that
// survive a rollback):
//
//   - SecureDelayOnMiss: speculative loads probe the cache with no
//     observable side effect (mem.SpecProbeLoad). A hit completes
//     without touching LRU; a miss starts no fill — the load is *held*
//     (a blocked pendingResult) and performs its real access only once
//     it is the oldest unresolved instruction, i.e. no longer
//     speculative. Speculative prefetches are suppressed too, so no
//     speculative access ever changes observable cache state.
//
//   - SecureNoNAForward: speculative load accesses proceed (keeping the
//     prefetch benefit of the fill) but every result is *quarantined*:
//     the destination stays NA and the value forwards only once the
//     load is oldest-unresolved. No secret-dependent address can form
//     under speculation, so a transmitter access never issues.
//
//   - SecureEagerSSBFlush: speculative stores issue no prefetch and
//     never forward data to speculative loads — an overlapping load is
//     held like a blocked load and composes its value only at release.
//     Closes only the store-side channels (documented in
//     docs/SECURITY.md); combine with one of the above for full
//     coverage.
//
// A held entry releases when oldestUnresolvedSeq reaches it. That
// cannot deadlock: the oldest unresolved instruction is, by induction,
// either a replayable DQ entry, a pending result with a finite ready
// time, or a held entry — which this very rule releases. The one
// exception is scout mode, where DQ entries never replay; enterScout
// therefore drops all holds (dropSecureHolds).

// secureHold is the ready-time sentinel for blocked entries: the access
// has not been performed, so no arrival cycle exists yet. nextTimer
// skips sentinel entries (their release is event-driven, and every
// release cycle is impure via Stats.SecureReleases).
const secureHold = ^uint64(0)

// secureRelease frees held pending results. At most one entry can be
// the oldest unresolved instruction; a blocked entry performs its real
// access there, a quarantined entry with arrived data forwards and
// retires. Entries still held bump the per-cycle stall counters that
// feed the BktSecure* CPI buckets.
func (c *Core) secureRelease(now uint64) {
	oldest := c.oldestUnresolvedSeq()
	relIdx := -1
	var stallDelay, stallNoFwd, stallSSB bool
	for i := range c.pend {
		p := &c.pend[i]
		switch {
		case p.blocked:
			switch {
			case p.seq == oldest:
				relIdx = i
			case p.secSSB:
				stallSSB = true
			default:
				stallDelay = true
			}
		case p.quarantined:
			if p.ready <= now {
				if p.seq == oldest {
					relIdx = i
				} else {
					stallNoFwd = true
				}
			}
		}
	}
	if stallDelay {
		c.stats.SecureDelayStallCycles++
	}
	if stallNoFwd {
		c.stats.SecureNoFwdStallCycles++
	}
	if stallSSB {
		c.stats.SecureSSBStallCycles++
	}
	if relIdx < 0 {
		return
	}
	p := &c.pend[relIdx]
	c.stats.SecureReleases++
	c.resolveDirty = true
	if p.blocked {
		// Oldest-unresolved: the load is no longer speculative. Perform
		// the real access now; older stores have either drained to
		// memory or still sit — fully resolved — in the SSB, so the
		// composed value equals the architectural one.
		size := p.op.MemWidth()
		raw := c.composeLoad(p.addr, size, p.seq)
		p.val = isa.ExtendLoad(p.op, raw)
		res := c.m.Hier.AccessLoad(c.m.CoreID, p.addr, p.pc, now)
		c.stats.CountLoadLevel(res.Level)
		c.noteSpecAccess(p.addr, p.seq, res)
		p.ready = res.Ready
		p.blocked = false
		if !p.quarantined {
			c.secPending--
		}
		if p.ready < c.pendMin {
			c.pendMin = p.ready
		}
		return
	}
	// Quarantined with data in hand: deliver and retire the entry.
	c.forward(p.seq, p.val)
	c.deliverRF(p.seq, p.rd, p.val, now)
	c.secPending--
	c.pend = append(c.pend[:relIdx], c.pend[relIdx+1:]...)
	var min uint64
	for i := range c.pend {
		if min == 0 || c.pend[i].ready < min {
			min = c.pend[i].ready
		}
	}
	c.pendMin = min
}

// secureBlock holds a speculative load whose access may not be
// performed yet: destination NA, a blocked pend entry carrying the
// access parameters for the release. ckpt mirrors deferResult's
// per-miss checkpointing on the ahead strand (replay never checkpoints).
func (c *Core) secureBlock(op isa.Op, rd uint8, pc, seq, addr uint64, ssbCause, ckpt bool) {
	if ckpt && c.cfg.CheckpointPerMiss && c.mode == ModeSpec {
		c.takeCheckpoint(pc) // best effort; epochs merge when full
	}
	c.markNA(rd, seq)
	if len(c.pend) == 0 {
		c.pendMin = secureHold
	}
	c.pend = append(c.pend, pendingResult{
		seq: seq, rd: rd, ready: secureHold,
		op: op, addr: addr, pc: pc,
		blocked: true, secSSB: ssbCause,
		quarantined: c.cfg.SecureNoNAForward,
	})
	c.secPending++
	c.stats.PendingMisses++
	c.stats.SecureBlockedLoads++
}

// securePend appends a pending result that already has its value,
// quarantined when SecureNoNAForward demands it. The caller marks the
// destination NA (ahead strand) or relies on the defer-time NA (replay).
func (c *Core) securePend(seq uint64, rd uint8, v int64, ready uint64, miss, quarantine bool) {
	if len(c.pend) == 0 || ready < c.pendMin {
		c.pendMin = ready
	}
	c.pend = append(c.pend, pendingResult{seq: seq, rd: rd, val: v, ready: ready, quarantined: quarantine})
	if quarantine {
		c.secPending++
		c.stats.SecureQuarantined++
	}
	if miss {
		c.stats.PendingMisses++
	}
}

// quarantineLast flags the entry deferResult just appended.
func (c *Core) quarantineLast() {
	c.pend[len(c.pend)-1].quarantined = true
	c.secPending++
	c.stats.SecureQuarantined++
}

// dropSecureHolds discards every held pending result when the core
// falls into scout mode. Scout speculation is certain to be squashed at
// the trigger rollback, DQ entries never replay there (so an
// oldest-unresolved release may never come), and the secure choice for
// work that will be discarded is to never perform the held access at
// all: the destination registers simply stay NA, like any other
// poisoned scout value.
func (c *Core) dropSecureHolds() {
	if c.secPending == 0 {
		return
	}
	live := c.pend[:0]
	var min uint64
	for _, p := range c.pend {
		if p.blocked || p.quarantined {
			continue
		}
		live = append(live, p)
		if min == 0 || p.ready < min {
			min = p.ready
		}
	}
	c.pend = live
	c.pendMin = min
	c.secPending = 0
	c.resolveDirty = true
}

// ssbOverlaps reports whether [addr, addr+size) overlaps a speculative
// store buffered with seq < uptoSeq (the SSB is seq-sorted).
func (c *Core) ssbOverlaps(addr uint64, size int, uptoSeq uint64) bool {
	for i := range c.ssb {
		s := &c.ssb[i]
		if s.seq >= uptoSeq {
			break
		}
		if s.addr < addr+uint64(size) && addr < s.addr+uint64(s.size) {
			return true
		}
	}
	return false
}

// noteSpecAccess records leak-oracle accounting for a speculative data
// access: the hierarchy's taint counter, plus the fill log that
// rollback converts into squashed-fill counts. Gated on installed
// secrets so ordinary runs pay one predicate call.
func (c *Core) noteSpecAccess(addr uint64, seq uint64, res mem.Result) {
	h := c.m.Hier
	if !h.SecretsInstalled() {
		return
	}
	h.NoteSpecAccess(addr)
	if res.Level != mem.LvlL1 && !res.Merged {
		c.specFills = append(c.specFills, seq)
	}
}

// secureLoadGate applies the secure load policies to an ahead-strand
// speculative load with a known address (mode is ModeSpec or ModeScout).
// Returns true when the load was fully handled here; false falls
// through to the unmitigated path.
func (c *Core) secureLoadGate(in isa.Inst, pc, seq, addr uint64, size int, now uint64) bool {
	if c.cfg.SecureEagerSSBFlush && c.ssbOverlaps(addr, size, seq) {
		// No store-to-load forwarding out of the speculative SSB: hold
		// the load until it is oldest-unresolved (scout just poisons).
		c.stats.Loads++
		c.stats.CountLoadLevel(mem.LvlMem)
		if c.mode == ModeScout {
			c.markNA(in.Rd, seq)
			return true
		}
		c.readSet = append(c.readSet, readRec{seq: seq, addr: addr, size: size})
		c.secureBlock(in.Op, in.Rd, pc, seq, addr, true, true)
		return true
	}
	if c.cfg.SecureDelayOnMiss {
		c.stats.Loads++
		ready, hit := c.m.Hier.SpecProbeLoad(c.m.CoreID, addr, now)
		c.noteSpecAccess(addr, seq, mem.Result{Level: mem.LvlL1})
		if !hit {
			c.stats.CountLoadLevel(mem.LvlMem)
			if c.mode == ModeScout {
				c.markNA(in.Rd, seq)
				return true
			}
			c.readSet = append(c.readSet, readRec{seq: seq, addr: addr, size: size})
			c.secureBlock(in.Op, in.Rd, pc, seq, addr, false, true)
			return true
		}
		c.stats.CountLoadLevel(mem.LvlL1)
		raw := c.composeLoad(addr, size, seq)
		v := isa.ExtendLoad(in.Op, raw)
		if c.mode == ModeSpec {
			c.readSet = append(c.readSet, readRec{seq: seq, addr: addr, size: size})
		}
		if c.isMiss(mem.Result{Ready: ready, Level: mem.LvlL1}, now) {
			// Piggybacked on an in-flight fill: a pending result as usual.
			c.deferResult(in.Rd, v, ready, pc, seq)
			if c.cfg.SecureNoNAForward && c.mode == ModeSpec {
				c.quarantineLast()
			}
			return true
		}
		if c.cfg.SecureNoNAForward {
			if c.mode == ModeScout {
				c.markNA(in.Rd, seq)
				return true
			}
			c.markNA(in.Rd, seq)
			c.securePend(seq, in.Rd, v, ready, false, true)
			return true
		}
		c.write(in.Rd, v, ready, seq)
		return true
	}
	if c.cfg.SecureNoNAForward {
		// The fill proceeds; only the value is held back.
		raw := c.composeLoad(addr, size, seq)
		v := isa.ExtendLoad(in.Op, raw)
		res := c.m.Hier.AccessLoad(c.m.CoreID, addr, pc, now)
		c.stats.Loads++
		c.stats.CountLoadLevel(res.Level)
		c.noteSpecAccess(addr, seq, res)
		if c.mode == ModeScout {
			c.markNA(in.Rd, seq)
			return true
		}
		c.readSet = append(c.readSet, readRec{seq: seq, addr: addr, size: size})
		if c.isMiss(res, now) {
			c.deferResult(in.Rd, v, res.Ready, pc, seq)
			c.quarantineLast()
			return true
		}
		c.markNA(in.Rd, seq)
		c.securePend(seq, in.Rd, v, res.Ready, false, true)
		return true
	}
	return false
}

// secureReplayLoad is secureLoadGate's deferred-strand twin: a replayed
// load is speculative by construction. The caller has already joined
// the read set and dequeued the entry; its destination is already NA
// from defer time. Returns true when handled.
func (c *Core) secureReplayLoad(e *dqEntry, addr uint64, size int, now uint64) bool {
	in := e.in
	if c.cfg.SecureEagerSSBFlush && c.ssbOverlaps(addr, size, e.seq) {
		c.stats.Loads++
		c.stats.CountLoadLevel(mem.LvlMem)
		c.secureBlock(in.Op, in.Rd, e.pc, e.seq, addr, true, false)
		return true
	}
	if c.cfg.SecureDelayOnMiss {
		c.stats.Loads++
		ready, hit := c.m.Hier.SpecProbeLoad(c.m.CoreID, addr, now)
		c.noteSpecAccess(addr, e.seq, mem.Result{Level: mem.LvlL1})
		if !hit {
			c.stats.CountLoadLevel(mem.LvlMem)
			c.secureBlock(in.Op, in.Rd, e.pc, e.seq, addr, false, false)
			return true
		}
		c.stats.CountLoadLevel(mem.LvlL1)
		raw := c.composeLoad(addr, size, e.seq)
		v := isa.ExtendLoad(in.Op, raw)
		miss := c.isMiss(mem.Result{Ready: ready, Level: mem.LvlL1}, now)
		if miss || c.cfg.SecureNoNAForward {
			c.securePend(e.seq, in.Rd, v, ready, miss, c.cfg.SecureNoNAForward)
			return true
		}
		c.forward(e.seq, v)
		c.deliverRF(e.seq, in.Rd, v, now)
		return true
	}
	if c.cfg.SecureNoNAForward {
		raw := c.composeLoad(addr, size, e.seq)
		v := isa.ExtendLoad(in.Op, raw)
		res := c.m.Hier.AccessLoad(c.m.CoreID, addr, e.pc, now)
		c.stats.Loads++
		c.stats.CountLoadLevel(res.Level)
		c.noteSpecAccess(addr, e.seq, res)
		c.securePend(e.seq, in.Rd, v, res.Ready, c.isMiss(res, now), true)
		return true
	}
	return false
}
