package core

import (
	"fmt"

	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// ahead runs the ahead strand for one cycle with the given issue budget
// and returns how many instructions it consumed. In normal mode this is
// plain in-order execution; while speculating it executes
// miss-independent instructions and defers dependents; in scout mode it
// executes purely for prefetching.
func (c *Core) ahead(now uint64, budget int) int {
	executed := 0
	for executed < budget && !c.done {
		if c.fe.Stalled(now) {
			c.feStall = true
			break
		}
		in, pc, ok, err := c.fe.Next(now)
		if err != nil {
			if c.mode != ModeNormal {
				// Possible wrong-path garbage beyond a deferred branch
				// prediction: stall; a rollback will redirect fetch.
				c.feStall = true
				break
			}
			c.err = err
			return executed
		}
		if !ok {
			c.feStall = true
			break
		}
		cont, redirected := c.aheadInst(in, pc, now)
		if !cont {
			break
		}
		c.processed++
		c.forceProgress = false // the post-rollback instruction completed
		if c.mode == ModeNormal {
			c.stats.Retired++
		}
		if c.mode == ModeScout {
			c.stats.ScoutInsts++
		}
		c.seq++
		executed++
		if !redirected && !c.done {
			c.fe.Advance()
		}
		if redirected {
			break // no issue past a control transfer in one cycle
		}
	}
	return executed
}

// aheadInst handles one instruction. It returns cont=false when the
// instruction could not be consumed this cycle (stall), and redirected
// when fetch was steered.
func (c *Core) aheadInst(in isa.Inst, pc uint64, now uint64) (cont, redirected bool) {
	seq := c.seq
	srcs, n := in.SrcRegs()
	var vals [3]int64
	var isNA [3]bool
	anyNA := false
	// r0 never has its NA bit set and c.regs[0] is never written, so the
	// gather needs no zero-register special case.
	for i := 0; i < n; i++ {
		r := srcs[i]
		if c.na[r] {
			isNA[i] = true
			anyNA = true
			continue
		}
		vals[i] = c.regs[r]
	}
	if anyNA && c.mode == ModeNormal {
		// Invariant: normal mode has no not-available registers. A stale
		// NA bit here means checkpoint/delivery bookkeeping broke.
		c.err = fmt.Errorf("core: NA register read in normal mode at pc=%#x (%v)", pc, in)
		return false, false
	}
	if !anyNA {
		// Short-wait scoreboard: stall-on-use for L1 hits and busy ALUs
		// (readyAt[0] is permanently zero, na bits are all clear here).
		for i := 0; i < n; i++ {
			if c.readyAt[srcs[i]] > now {
				return false, false
			}
		}
	}

	switch in.Op.Class() {
	case isa.ClassNop:
		return true, false

	case isa.ClassHalt:
		if c.mode != ModeNormal {
			// Halt cannot retire speculatively; wait for commit (or for
			// the scout rollback).
			return false, false
		}
		c.done = true
		return true, false

	case isa.ClassALU:
		return c.aheadALU(in, pc, seq, vals, isNA, anyNA, now)

	case isa.ClassLoad:
		return c.aheadLoad(in, pc, seq, vals, isNA, anyNA, now)

	case isa.ClassStore:
		return c.aheadStore(in, pc, seq, vals, isNA, anyNA, now)

	case isa.ClassBranch:
		return c.aheadBranch(in, pc, seq, vals, isNA, anyNA, now)

	case isa.ClassJump:
		return c.aheadJump(in, pc, seq, vals, anyNA, now)

	case isa.ClassAtomic:
		switch c.mode {
		case ModeNormal:
			if c.tx.active {
				c.tx.abort = TxAbortUnsupported
				c.txAbort(now)
				return true, true
			}
			addr := uint64(vals[0])
			res := c.m.Hier.Access(c.m.CoreID, mem.AccWrite, addr, now)
			old := int64(c.m.Mem.Read(addr, 8))
			if old == vals[1] {
				c.m.Mem.Write(addr, 8, uint64(vals[2]))
				c.m.StoreVisible(addr)
			}
			c.write(in.Rd, old, res.Ready, seq)
			c.stats.Stores++
			return true, false
		case ModeScout:
			// Cannot perform the atomic; poison the result and move on.
			c.markNA(in.Rd, seq)
			return true, false
		default:
			// Serialize: stall until every epoch commits.
			c.stats.AtomicStallCycles++
			return false, false
		}

	case isa.ClassBarrier:
		switch c.mode {
		case ModeNormal:
			if c.tx.active {
				c.tx.abort = TxAbortUnsupported
				c.txAbort(now)
				return true, true
			}
			return true, false
		case ModeScout:
			return true, false
		default:
			c.stats.AtomicStallCycles++
			return false, false
		}

	case isa.ClassPrefetch:
		if !anyNA {
			addr := uint64(vals[0] + int64(in.Imm))
			if c.mode != ModeNormal && c.cfg.SecureDelayOnMiss {
				// No speculative access may change observable cache state.
				c.stats.SecurePrefetchDenied++
			} else {
				res := c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
				if c.mode != ModeNormal {
					c.noteSpecAccess(addr, seq, res)
				}
			}
		}
		return true, false

	case isa.ClassTx:
		return c.aheadTx(in, pc, seq, now)
	}
	return true, false
}

// write updates rd with an available value.
func (c *Core) write(rd uint8, v int64, ready uint64, seq uint64) {
	if rd == isa.RegZero {
		return
	}
	c.regs[rd] = v
	c.na[rd] = false
	c.lastWriter[rd] = seq
	c.readyAt[rd] = ready
	if ready > c.sbHorizon {
		c.sbHorizon = ready
	}
}

func (c *Core) aheadALU(in isa.Inst, pc uint64, seq uint64, vals [3]int64, isNA [3]bool, anyNA bool, now uint64) (bool, bool) {
	if anyNA {
		if c.mode == ModeScout {
			c.markNA(in.Rd, seq)
			return true, false
		}
		return c.deferToDQ(in, pc, seq, vals, isNA, false, 0), false
	}
	v := isa.ALUResult(in, vals[0], vals[1])
	lat := uint64(in.Op.Latency())
	if c.cfg.DeferLongOps && in.Op.IsLongLatency() && in.Op.Latency() >= c.cfg.LongOpMinLatency {
		// Divides and friends are long-latency events: defer the result
		// like a miss (falls back to the scoreboard without a checkpoint).
		if c.deferResult(in.Rd, v, now+lat, pc, seq) {
			return true, false
		}
	}
	c.write(in.Rd, v, now+lat, seq)
	return true, false
}

func (c *Core) aheadLoad(in isa.Inst, pc uint64, seq uint64, vals [3]int64, isNA [3]bool, anyNA bool, now uint64) (bool, bool) {
	if anyNA {
		// Address unknown: the load itself is deferred.
		if c.mode == ModeScout {
			c.markNA(in.Rd, seq)
			return true, false
		}
		return c.deferToDQ(in, pc, seq, vals, isNA, false, 0), false
	}
	addr := uint64(vals[0] + int64(in.Imm))
	size := in.Op.MemWidth()
	if c.mode == ModeSpec && c.loadBlockedByDeferredStore(addr, size) {
		// The load provably conflicts with an older deferred store whose
		// address is known but whose data is still NA. Defer; the
		// memory-order gate in replay keeps them in program order.
		return c.deferToDQ(in, pc, seq, vals, isNA, false, 0), false
	}
	if c.mode != ModeNormal && c.secureLoadGate(in, pc, seq, addr, size, now) {
		return true, false
	}
	raw := c.composeLoad(addr, size, seq)
	v := isa.ExtendLoad(in.Op, raw)
	res := c.m.Hier.AccessLoad(c.m.CoreID, addr, pc, now)
	c.stats.Loads++
	c.stats.CountLoadLevel(res.Level)
	if c.mode != ModeNormal {
		c.noteSpecAccess(addr, seq, res)
	}
	if c.tx.active {
		if !c.txTrackLoad(addr, size) {
			c.txAbort(now)
			return true, true
		}
	}
	if c.mode == ModeSpec {
		// Track the speculative read so an older deferred store with an
		// unknown address can verify against it at replay.
		c.readSet = append(c.readSet, readRec{seq: seq, addr: addr, size: size})
	}
	if !c.isMiss(res, now) {
		c.write(in.Rd, v, res.Ready, seq)
		return true, false
	}
	// A genuine miss: the SST event. Defer the result under a
	// checkpoint; fall back to scoreboard stalling without one.
	if c.deferResult(in.Rd, v, res.Ready, pc, seq) {
		return true, false
	}
	c.write(in.Rd, v, res.Ready, seq)
	return true, false
}

// isMiss reports whether an access result represents a long-latency
// event (beyond the L1 hit window).
func (c *Core) isMiss(res mem.Result, now uint64) bool {
	return res.Ready > now+uint64(c.m.Hier.Config().L1D.HitLatency)
}

// deferResult records an in-flight deferred value (miss load or long
// op): mark the destination NA and remember the arriving value. Takes a
// checkpoint when this opens speculation. Returns false when no
// checkpoint is available in normal mode (caller falls back to
// stall-on-use).
func (c *Core) deferResult(rd uint8, val int64, ready uint64, pc uint64, seq uint64) bool {
	switch c.mode {
	case ModeNormal:
		if c.tx.active {
			// The transaction owns the checkpoint hardware: misses
			// inside it stall on use rather than opening SST epochs.
			return false
		}
		if c.forceProgress && pc == c.forceProgressPC {
			// Forward-progress guarantee after a rollback: complete the
			// triggering instruction via the scoreboard instead of
			// re-opening the speculation that just failed.
			return false
		}
		if !c.takeCheckpoint(pc) {
			return false
		}
		c.mode = ModeSpec
	case ModeSpec:
		if c.cfg.CheckpointPerMiss {
			c.takeCheckpoint(pc) // best effort; epochs merge when full
		}
	case ModeScout:
		// Scouting: results still arrive and unblock dependents.
	}
	c.markNA(rd, seq)
	if len(c.pend) == 0 || ready < c.pendMin {
		c.pendMin = ready
	}
	c.pend = append(c.pend, pendingResult{seq: seq, rd: rd, val: val, ready: ready})
	c.stats.PendingMisses++
	return true
}

// deferToDQ appends an instruction to the Deferred Queue. Returns false
// when the instruction could not be consumed (DQ full → stall or scout).
func (c *Core) deferToDQ(in isa.Inst, pc uint64, seq uint64, vals [3]int64, isNA [3]bool, predTaken bool, predTarget uint64) bool {
	limit := c.cfg.DQSize
	if c.flt != nil {
		limit = c.flt.ClampDQ(c.cycle, limit)
	}
	if len(c.dq) >= limit {
		// The scout decision stays keyed on the *configured* size: an
		// injected clamp models a transiently unusable queue, not the
		// scout ablation's absent one.
		if c.cfg.ScoutOnDQFull || c.cfg.DQSize == 0 {
			c.enterScout()
		} else {
			c.stats.DQFullStallCycles++
		}
		return false
	}
	e := dqEntry{seq: seq, in: in, pc: pc, predTaken: predTaken, predTarget: predTarget}
	srcs, n := in.SrcRegs()
	e.nsrc = n
	for i := 0; i < n; i++ {
		e.vals[i] = vals[i]
		if isNA[i] {
			e.isNA[i] = true
			e.dep[i] = c.lastWriter[srcs[i]]
		}
	}
	c.dq = append(c.dq, e)
	if !(e.isNA[0] || e.isNA[1] || e.isNA[2]) {
		// Deferral is always keyed on an NA operand today, but keep the
		// ready count correct if an always-ready entry ever lands here.
		c.dqReady++
	}
	c.stats.Deferrals++
	if in.Op.IsStore() {
		c.dqStores++
	}
	if rd, has := in.DestReg(); has {
		c.markNA(rd, seq)
	}
	return true
}

func (c *Core) aheadStore(in isa.Inst, pc uint64, seq uint64, vals [3]int64, isNA [3]bool, anyNA bool, now uint64) (bool, bool) {
	addr := uint64(vals[0] + int64(in.Imm))
	switch c.mode {
	case ModeNormal:
		if c.tx.active {
			if !c.txStore(seq, addr, in.Op.MemWidth(), vals[1], now) {
				c.txAbort(now)
				return true, true
			}
			return true, false
		}
		c.m.Mem.Write(addr, in.Op.MemWidth(), uint64(vals[1]))
		c.m.Hier.Access(c.m.CoreID, mem.AccWrite, addr, now)
		c.m.StoreVisible(addr)
		c.stats.Stores++
		return true, false
	case ModeScout:
		if !isNA[0] {
			if c.cfg.SecureDelayOnMiss || c.cfg.SecureEagerSSBFlush {
				// Speculative store prefetches are a leakage channel: a
				// secret-derived address fills a line that survives the
				// scout-exit rollback.
				c.stats.SecurePrefetchDenied++
			} else {
				// Prefetch the line the store will need; discard the data.
				res := c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
				c.noteSpecAccess(addr, seq, res)
			}
		}
		return true, false
	default:
		if anyNA {
			if !c.deferToDQ(in, pc, seq, vals, isNA, false, 0) {
				return false, false
			}
			// Record what we know about the deferred store's address so
			// later loads can disambiguate against it. A store whose
			// address is NA is verified against the read set at replay
			// instead.
			e := &c.dq[len(c.dq)-1]
			if !isNA[0] {
				e.memAddrKnown = true
				e.memAddr = addr
				e.memSize = in.Op.MemWidth()
			}
			return true, false
		}
		if !c.ssbInsert(ssbEntry{seq: seq, addr: addr, size: in.Op.MemWidth(), val: vals[1]}) {
			c.stats.SSBFullStallCycles++
			return false, false
		}
		if c.cfg.SecureDelayOnMiss || c.cfg.SecureEagerSSBFlush {
			c.stats.SecurePrefetchDenied++
		} else {
			// Prefetch for the commit-time write.
			res := c.m.Hier.Access(c.m.CoreID, mem.AccPrefetch, addr, now)
			c.noteSpecAccess(addr, seq, res)
		}
		return true, false
	}
}

func (c *Core) aheadBranch(in isa.Inst, pc uint64, seq uint64, vals [3]int64, isNA [3]bool, anyNA bool, now uint64) (bool, bool) {
	if anyNA {
		// Deferred branch: follow the prediction; replay verifies.
		predTaken := c.m.Pred.PredictDir(pc)
		if c.flt.FlipPrediction(now) {
			predTaken = !predTaken
		}
		if c.mode != ModeScout {
			if c.cfg.CheckpointOnDeferredBranch {
				// Bound the rollback to the branch itself.
				c.takeCheckpoint(pc)
			}
			if !c.deferToDQ(in, pc, seq, vals, isNA, predTaken, 0) {
				return false, false
			}
			c.stats.DeferredBranches++
		}
		c.stats.Branches++
		if predTaken {
			c.fe.Redirect(in.BranchTarget(pc), now, c.cfg.TakenPenalty)
			return true, true
		}
		return true, false
	}
	taken := isa.BranchTaken(in.Op, vals[0], vals[1])
	pred := c.m.Pred.PredictDir(pc)
	if c.flt.FlipPrediction(now) {
		pred = !pred
	}
	mis := pred != taken
	c.m.Pred.UpdateDir(pc, taken, mis)
	c.stats.Branches++
	target := pc + isa.InstSize
	if taken {
		target = in.BranchTarget(pc)
	}
	var pen uint64
	switch {
	case mis:
		pen = c.cfg.MispredictPenalty
		c.stats.BranchMispred++
	case taken:
		pen = c.cfg.TakenPenalty
	}
	if pen > 0 || taken {
		c.fe.Redirect(target, now, pen)
		return true, true
	}
	return true, false
}

func (c *Core) aheadJump(in isa.Inst, pc uint64, seq uint64, vals [3]int64, anyNA bool, now uint64) (bool, bool) {
	link := int64(pc + isa.InstSize)
	if in.Op == isa.OpJal {
		if in.Rd == isa.RegRA {
			c.m.Pred.PushReturn(pc + isa.InstSize)
		}
		c.write(in.Rd, link, now+1, seq)
		c.fe.Redirect(in.BranchTarget(pc), now, c.cfg.TakenPenalty)
		return true, true
	}
	// jalr
	if anyNA {
		// Target depends on a deferred value: predict it and defer the
		// verification (except in scout, where we just follow it).
		var predicted uint64
		var have bool
		if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
			predicted, have = c.m.Pred.PopReturn()
		} else {
			predicted, have = c.m.Pred.PredictTarget(pc)
		}
		if !have {
			return false, false // no prediction: wait for the value
		}
		if c.mode != ModeScout {
			var isNA [3]bool
			isNA[0] = true
			if !c.deferToDQ(isa.Inst{Op: in.Op, Rs1: in.Rs1, Imm: in.Imm}, pc, seq, vals, isNA, false, predicted) {
				return false, false
			}
		}
		if in.Rd == isa.RegRA {
			c.m.Pred.PushReturn(pc + isa.InstSize)
		}
		c.write(in.Rd, link, now+1, seq)
		c.fe.Redirect(predicted, now, c.cfg.TakenPenalty)
		return true, true
	}
	target := uint64(vals[0] + int64(in.Imm))
	var predicted uint64
	var have bool
	if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
		predicted, have = c.m.Pred.PopReturn()
	} else {
		predicted, have = c.m.Pred.PredictTarget(pc)
	}
	pen := c.cfg.TakenPenalty
	if !have || predicted != target {
		pen = c.cfg.MispredictPenalty
		c.stats.BranchMispred++
	}
	c.m.Pred.UpdateTarget(pc, target)
	if in.Rd == isa.RegRA {
		c.m.Pred.PushReturn(pc + isa.InstSize)
	}
	c.write(in.Rd, link, now+1, seq)
	c.fe.Redirect(target, now, pen)
	return true, true
}
