// Package core implements Simultaneous Speculative Threading (SST), the
// checkpoint-based pipeline of Sun's ROCK processor and the primary
// contribution of the reproduced paper.
//
// The core is an in-order pipeline extended with:
//
//   - register checkpoints taken at long-latency events (cache-missing
//     loads, optionally divides), which replace the reorder buffer;
//   - a not-available (NA) bit per register, which replaces renaming:
//     instructions reading an NA register are appended — with the
//     operand values that are available — to the Deferred Queue (DQ);
//   - a speculative store buffer (SSB) holding stores until their epoch
//     commits, which replaces the memory-disambiguation machinery;
//   - a second hardware strand that replays the DQ when miss data
//     returns while the first strand keeps executing ahead — the
//     "simultaneous" in SST;
//   - hardware-scout (runahead) operation as the degenerate mode when
//     deferral is impossible, prefetching but discarding results.
//
// Speculation fails on a deferred branch (or indirect target) that was
// predicted wrong, or on SSB overflow during replay; failure rolls the
// machine back to the enclosing checkpoint. Atomics and barriers
// serialize: the ahead strand stalls until all epochs commit.
package core

import (
	"rocksim/internal/cpu"
	"rocksim/internal/faults"
	"rocksim/internal/isa"
	"rocksim/internal/obs"
	"rocksim/internal/stats"
)

// ckptLifeLimit bounds the checkpoint-lifetime histogram; longer
// lifetimes clamp into the overflow bucket.
const ckptLifeLimit = 4096

// Config parameterizes the SST core.
type Config struct {
	// Width is the ahead strand's issue width.
	Width int
	// ReplayWidth is the deferred strand's replay width (used only when
	// SecondStrand is true).
	ReplayWidth int
	// Checkpoints is the number of register checkpoints, i.e. the
	// maximum number of concurrently speculating epochs. Zero degrades
	// the core to a stall-on-use in-order pipeline.
	Checkpoints int
	// DQSize is the Deferred Queue capacity in instructions. Zero
	// degrades speculation to hardware scout (pure runahead).
	DQSize int
	// SSBSize is the speculative store buffer capacity.
	SSBSize int
	// SecondStrand enables the second hardware strand: DQ replay runs
	// simultaneously with the ahead strand. When false the core is the
	// execute-ahead-only ablation: replay steals ahead-strand slots.
	SecondStrand bool
	// ScoutOnDQFull switches to hardware scout when the DQ fills,
	// discarding all deferred work for pure prefetching; otherwise the
	// ahead strand stalls until replay drains entries (preserving the
	// deferred work — the better default when a second strand exists).
	ScoutOnDQFull bool
	// DeferLongOps defers long-latency arithmetic like misses.
	DeferLongOps bool
	// LongOpMinLatency is the minimum latency (cycles) for an
	// arithmetic op to be deferred rather than scoreboarded. Divides
	// qualify; short multiplies do not (deferring them just manufactures
	// unpredictable deferred branches).
	LongOpMinLatency int
	// CheckpointPerMiss takes a fresh checkpoint (when one is free) at
	// each deferring miss, bounding rollback granularity.
	CheckpointPerMiss bool
	// CheckpointOnDeferredBranch takes a checkpoint (when one is free)
	// right before a branch that must be predicted because its operands
	// are NA. Deferred-branch mispredicts are the dominant speculation
	// failure; a checkpoint at the branch bounds the rollback to the
	// branch itself instead of the whole epoch.
	CheckpointOnDeferredBranch bool

	TakenPenalty      uint64
	MispredictPenalty uint64
	// RollbackPenalty is the pipeline refill bubble after restoring a
	// checkpoint.
	RollbackPenalty uint64

	// Secure-speculation mitigations (see secure.go and
	// docs/SECURITY.md). Each closes a transient-leakage channel the
	// sim.CheckTransientLeakage oracle can demonstrate on the unmitigated
	// core, at a cost charged to a dedicated CPI bucket.

	// SecureDelayOnMiss forbids speculative loads from changing
	// observable cache state: speculative hits probe without touching
	// LRU, speculative misses start no fill and hold the load until it
	// is the oldest unresolved instruction. Speculative prefetches
	// (store-triggered and software) are suppressed too.
	SecureDelayOnMiss bool
	// SecureNoNAForward quarantines every speculative load result: the
	// fill still issues (keeping the prefetching benefit) but the value
	// may not forward to consumers until the load is the oldest
	// unresolved instruction, so no secret-dependent address can form
	// under speculation.
	SecureNoNAForward bool
	// SecureEagerSSBFlush closes the speculative-store channels only:
	// speculative stores issue no prefetch, and loads may not consume a
	// speculative store's data (store-to-load forwarding out of the SSB
	// is held until the load is oldest-unresolved).
	SecureEagerSSBFlush bool
}

// DefaultConfig returns the ROCK-like SST core: 2-wide ahead strand,
// 2-wide replay strand, 4 checkpoints, 64-entry DQ, 32-entry SSB.
func DefaultConfig() Config {
	return Config{
		Width:                      2,
		ReplayWidth:                2,
		Checkpoints:                4,
		DQSize:                     64,
		SSBSize:                    32,
		SecondStrand:               true,
		ScoutOnDQFull:              false,
		DeferLongOps:               true,
		LongOpMinLatency:           10,
		CheckpointPerMiss:          true,
		CheckpointOnDeferredBranch: true,
		TakenPenalty:               2,
		MispredictPenalty:          8,
		RollbackPenalty:            6,
	}
}

// ExecuteAheadConfig is the ablation without the second strand: the DQ
// replays through the same pipeline that executes ahead.
func ExecuteAheadConfig() Config {
	c := DefaultConfig()
	c.SecondStrand = false
	return c
}

// ScoutConfig is the hardware-scout (runahead) ablation: no deferred
// queue at all — a miss checkpoints, runs ahead purely for prefetching,
// and re-executes everything when the miss returns. The store buffer
// remains (it is physical hardware, also needed by transactions); only
// the deferred queue is absent.
func ScoutConfig() Config {
	c := DefaultConfig()
	c.DQSize = 0
	c.SecondStrand = false
	c.Checkpoints = 1
	return c
}

// Mode is the operating mode of the core.
type Mode uint8

// Core modes.
const (
	ModeNormal Mode = iota // no live checkpoints
	ModeSpec               // speculating with a deferred queue
	ModeScout              // runahead: prefetch only, results discarded
)

func (m Mode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeSpec:
		return "spec"
	case ModeScout:
		return "scout"
	}
	return "?"
}

// CycleKind classifies each cycle for the execution-time breakdown
// (paper figure F2).
type CycleKind uint8

// Cycle classifications.
const (
	CyNormal       CycleKind = iota // normal mode, instructions executed
	CyNormalStall                   // normal mode, no progress
	CyAhead                         // speculating: only the ahead strand progressed
	CyReplay                        // speculating: only the deferred strand progressed
	CySimultaneous                  // both strands progressed (the SST win)
	CySpecStall                     // speculating, neither strand progressed
	CyScout                         // hardware scout
	NumCycleKinds
)

func (k CycleKind) String() string {
	switch k {
	case CyNormal:
		return "normal"
	case CyNormalStall:
		return "normal-stall"
	case CyAhead:
		return "ahead"
	case CyReplay:
		return "replay"
	case CySimultaneous:
		return "simultaneous"
	case CySpecStall:
		return "spec-stall"
	case CyScout:
		return "scout"
	}
	return "?"
}

// RollbackCause identifies why speculation failed.
type RollbackCause uint8

// Rollback causes.
const (
	RbBranch    RollbackCause = iota // deferred branch mispredicted
	RbJalr                           // deferred indirect target mispredicted
	RbSSB                            // store buffer overflow during replay
	RbScout                          // scheduled scout-mode rollback
	RbMemOrder                       // deferred store conflicted with an ahead load
	RbInjected                       // spurious rollback forced by a fault plan
	RbCoherence                      // remote store hit the speculative read set
	NumRollbackCauses
)

func (r RollbackCause) String() string {
	switch r {
	case RbBranch:
		return "branch"
	case RbJalr:
		return "jalr"
	case RbSSB:
		return "ssb-overflow"
	case RbScout:
		return "scout"
	case RbMemOrder:
		return "mem-order"
	case RbInjected:
		return "injected"
	case RbCoherence:
		return "coherence"
	}
	return "?"
}

// Stats extends the common statistics with SST-specific accounting.
type Stats struct {
	cpu.BaseStats

	CheckpointsTaken uint64
	EpochCommits     uint64
	Rollbacks        uint64
	RollbacksBy      [NumRollbackCauses]uint64

	Deferrals             uint64 // instructions placed in the DQ
	Replays               uint64 // DQ entries successfully replayed
	DeferredBranches      uint64
	DeferredBranchMispred uint64
	PendingMisses         uint64 // deferred-result events (miss loads, long ops)

	ScoutEntries   uint64 // transitions into scout mode
	ScoutInsts     uint64 // instructions processed while scouting
	DiscardedInsts uint64 // speculative work undone by rollbacks

	ModeCycles         [NumCycleKinds]uint64
	DQFullStallCycles  uint64
	SSBFullStallCycles uint64
	AtomicStallCycles  uint64

	// Secure-speculation accounting (see secure.go). The StallCycles
	// counters bump once per cycle in which the named mitigation is
	// holding a result back; the event counters count the held items.
	SecureDelayStallCycles uint64 // cycles with a fill-denied load waiting (SecureDelayOnMiss)
	SecureNoFwdStallCycles uint64 // cycles with a ready-but-quarantined result waiting (SecureNoNAForward)
	SecureSSBStallCycles   uint64 // cycles with a forwarding-denied load waiting (SecureEagerSSBFlush)
	SecureBlockedLoads     uint64 // speculative loads denied a fill or SSB forward
	SecureQuarantined      uint64 // speculative load results quarantined
	SecureReleases         uint64 // held results released at oldest-unresolved
	SecurePrefetchDenied   uint64 // speculative prefetches suppressed

	// Tx counts hardware-transactional-memory events (the HTM extension
	// built on the checkpoint/SSB machinery).
	Tx TxStats

	DQOcc    *stats.Hist // deferred-queue occupancy per cycle
	SSBOcc   *stats.Hist // store-buffer occupancy per cycle
	CkptOcc  *stats.Hist // live checkpoints per cycle
	CkptLife *stats.Hist // checkpoint lifetime (cycles from take to commit/abort)
}

// checkpoint snapshots everything needed to restart execution at the
// instruction that triggered it.
type checkpoint struct {
	startSeq   uint64 // seq of the triggering instruction
	pc         uint64 // its PC (rollback target)
	takenAt    uint64 // cycle the checkpoint was taken (lifetime accounting)
	regs       [isa.NumRegs]int64
	na         [isa.NumRegs]bool
	lastWriter [isa.NumRegs]uint64
	readyAt    [isa.NumRegs]uint64
	ghr        uint64 // branch-history snapshot
	processed  uint64 // architectural instruction count at checkpoint

	// cpi snapshots the cycle-accounting stack at checkpoint take, so a
	// rollback can re-attribute every cycle spent since to the rollback's
	// cause bucket ("cycles discarded"). CPI only grows between take and
	// rollback, so the re-attribution delta is exact.
	cpi [cpu.NumBuckets]uint64
}

// dqEntry is one deferred instruction with its captured operands.
type dqEntry struct {
	seq  uint64
	in   isa.Inst
	pc   uint64
	vals [3]int64  // captured available operand values
	dep  [3]uint64 // producing seq for NA operands
	isNA [3]bool
	nsrc int

	predTaken  bool   // deferred conditional branch prediction
	predTarget uint64 // deferred indirect target prediction

	// For deferred stores whose address was available (only the data
	// was NA): later loads disambiguate against this address instead of
	// deferring unconditionally.
	memAddrKnown bool
	memAddr      uint64
	memSize      int
}

// pendingResult is an in-flight deferred value: a missing load or a
// long-latency operation whose result arrives at a future cycle.
type pendingResult struct {
	seq   uint64
	rd    uint8
	val   int64
	ready uint64

	// Secure-speculation hold state (see secure.go). A blocked entry has
	// not performed its memory access yet (ready is the secureHold
	// sentinel); a quarantined entry holds an arrived value that may not
	// forward to consumers. Both release only once the entry is the
	// oldest unresolved instruction.
	op          isa.Op
	addr        uint64
	pc          uint64
	blocked     bool
	quarantined bool
	secSSB      bool // blocked by SecureEagerSSBFlush, not SecureDelayOnMiss
}

// ssbEntry is one speculative store, ordered by seq.
type ssbEntry struct {
	seq  uint64
	addr uint64
	size int
	val  int64
}

// readRec is one speculative load in the read set.
type readRec struct {
	seq  uint64
	addr uint64
	size int
}

// Core is the SST pipeline model.
type Core struct {
	cfg Config
	m   *cpu.Machine
	fe  *cpu.Frontend

	regs       [isa.NumRegs]int64
	na         [isa.NumRegs]bool
	lastWriter [isa.NumRegs]uint64
	readyAt    [isa.NumRegs]uint64 // short-wait scoreboard (L1 hits, ALU lat)

	mode  Mode
	seq   uint64 // next sequence number (monotonic, never rewinds)
	ckpts []checkpoint
	dq    []dqEntry
	ssb   []ssbEntry
	pend  []pendingResult

	// pendMin is the earliest ready cycle among pend entries (meaningful
	// only while pend is non-empty); deliver scans the list only once the
	// clock reaches it. Maintained on append (aheadLoad/replay misses,
	// long ops), on delivery and on rollback squash.
	pendMin uint64

	// sbHorizon is a monotonic upper bound on every readyAt value the
	// scoreboard has ever held. Once the clock passes it, no register is
	// still waiting on a short-latency producer and nextTimer can skip
	// the scoreboard scan entirely.
	sbHorizon uint64

	dqStores int // deferred stores currently in the DQ

	// dqReady counts DQ entries whose operands have all resolved, so the
	// replay strand's oldest-ready scan short-circuits to nothing when
	// every entry is still waiting (the common state while misses are
	// outstanding). Maintained by forward (an entry's last NA flag
	// clears), replay (a ready entry dequeues) and rollback (squash).
	dqReady int

	// readSet records speculative ahead-strand loads (seq-ordered).
	// A deferred store whose address was unknown verifies against it at
	// replay: overlap with a younger load means the load read stale data
	// and speculation must roll back. This is how SST keeps loads
	// flowing past unresolved stores without a disambiguation CAM.
	readSet []readRec

	// processed counts instructions handled by the ahead strand since
	// program start; rolled back with checkpoints. Architectural retire
	// count advances from it at epoch commits.
	processed uint64

	scoutTriggerSeq uint64 // pending seq whose delivery triggers rollback
	scoutArmed      bool

	// Forward-progress guarantee: after a rollback the triggering
	// instruction executes without opening new speculation, so that a
	// long-latency event that recurs identically (e.g. a divide, or a
	// re-evicted line) cannot livelock the checkpoint/rollback loop.
	forceProgress   bool
	forceProgressPC uint64

	// Hardware transactional memory state (see htm.go).
	tx            txState
	invalListener bool

	// cohSeq, when non-zero, is the oldest speculative load whose line a
	// remote store invalidated since the last Step: its value may be
	// stale (ahead loads capture values at issue, deferred loads at
	// replay — either can be overtaken by a remote commit), so the epoch
	// containing it must roll back. Set by the coherence listener during
	// another core's Step, consumed at the top of ours (see
	// coherence.go); NextEvent refuses to fast-forward past it.
	cohSeq uint64

	// sink, when set, observes cycles and events (see probe.go and
	// internal/obs); occ is its per-cycle scratch buffer.
	sink obs.Sink
	occ  [4]int

	// flt, when set, is consulted at the speculation decision points
	// (checkpoint allocation, DQ/SSB insertion, deferred-branch
	// prediction, rollback) and may perturb them. Nil injects nothing.
	flt *faults.Injector

	done  bool
	err   error
	cycle uint64

	// resolveDirty gates the per-cycle commit scan: it is set whenever
	// something resolves or is squashed (delivery, replay, rollback, tx
	// events) and cleared when commitEpochs finds the oldest epoch still
	// blocked. While clear, the oldest unresolved seq cannot have grown
	// and the epoch boundary only moves up, so the scan is skipped.
	resolveDirty bool

	// quiet records that the previous Step made no progress; stall
	// detection (the purity snapshot in skip.go) only runs on a cycle
	// whose predecessor was already quiet, keeping the snapshot off the
	// busy path. A stall window is merely detected one cycle later.
	// snapBuf is the reused snapshot buffer for those detection cycles.
	quiet   bool
	snapBuf stepSnap

	// feStall records that the ahead strand broke on the frontend this
	// Step (redirect bubble, line fill, or wrong-path garbage), for the
	// CPI-stack attribution of stall cycles. Reset at Step entry.
	feStall bool

	// secPending counts pend entries currently held by a secure mode
	// (blocked or quarantined); the per-cycle release scan in secure.go
	// is gated on it so insecure runs pay nothing.
	secPending int

	// specFills logs the seq of every speculative access that started a
	// cache fill while secrets were installed (see secure.go); rollback
	// counts the squashed suffix into the hierarchy's leak statistics.
	specFills []uint64

	// Fast-forward state, valid while cycle < ffNext: the last Step was a
	// pure stall classified as ffKind with the recorded per-cycle stall
	// and MLP contributions, and nothing can change before ffNext (see
	// skip.go). Self-expiring: once the clock reaches ffNext, NextEvent
	// reports no skip and the next Step re-derives everything.
	ffNext     uint64
	ffKind     CycleKind
	ffBucket   cpu.Bucket
	ffDQStall  uint64
	ffSSBStall uint64
	ffAtStall  uint64
	ffSecDelay uint64
	ffSecNoFwd uint64
	ffSecSSB   uint64
	ffMLP      int

	stats Stats
}

// New creates an SST core executing from entry.
func New(m *cpu.Machine, cfg Config, entry uint64) *Core {
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.ReplayWidth < 1 {
		cfg.ReplayWidth = 1
	}
	if cfg.Checkpoints < 0 {
		cfg.Checkpoints = 0
	}
	if cfg.DQSize < 0 {
		cfg.DQSize = 0
	}
	c := &Core{
		cfg: cfg,
		m:   m,
		fe:  cpu.NewFrontend(m, entry),
	}
	if cfg.Checkpoints > 0 {
		c.ckpts = make([]checkpoint, 0, cfg.Checkpoints)
	}
	c.seq = 1 // seq 0 reserved so lastWriter==0 means "no producer"
	if m.Coherent {
		// Shared-memory chip: watch remote stores so speculative loads
		// that read stale data roll back (and transactions abort on
		// conflict) — see coherence.go.
		c.installInvalListener()
	}
	c.stats.DQOcc = stats.NewHist(max(cfg.DQSize, 1))
	c.stats.SSBOcc = stats.NewHist(max(cfg.SSBSize, 1))
	c.stats.CkptOcc = stats.NewHist(max(cfg.Checkpoints, 1))
	c.stats.CkptLife = stats.NewHist(ckptLifeLimit)
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the program has halted.
func (c *Core) Done() bool { return c.done }

// Retired returns architecturally retired instructions.
func (c *Core) Retired() uint64 { return c.stats.Retired }

// Base returns the common statistics block.
func (c *Core) Base() *cpu.BaseStats { return &c.stats.BaseStats }

// Stats returns the full SST statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// Err returns a fatal simulation error, if any.
func (c *Core) Err() error { return c.err }

// Mode returns the current operating mode (for tests and examples).
func (c *Core) Mode() Mode { return c.mode }

// Regs returns the architectural register file. Valid once Done — while
// speculating it reflects speculative state.
func (c *Core) Regs() [isa.NumRegs]int64 { return c.regs }

// SetFaults installs a fault injector (see internal/faults). Pass nil
// to disable. Injected faults perturb microarchitectural decisions only;
// the speculation machinery must keep them architecturally invisible
// (enforced by internal/sim's fault-fuzz oracle).
func (c *Core) SetFaults(in *faults.Injector) { c.flt = in }

// Step advances the core one cycle.
func (c *Core) Step() {
	now := c.cycle
	c.ffNext = 0
	c.feStall = false
	dq0, ssb0, at0 := c.stats.DQFullStallCycles, c.stats.SSBFullStallCycles, c.stats.AtomicStallCycles
	sd0, snf0, sfl0 := c.stats.SecureDelayStallCycles, c.stats.SecureNoFwdStallCycles, c.stats.SecureSSBStallCycles
	checkStall := c.quiet
	if checkStall {
		c.snapInto(&c.snapBuf)
	}

	c.deliver(now)
	if c.tx.active && c.tx.abort != 0 {
		c.txAbort(now)
	}
	if c.cohSeq != 0 {
		c.applyCoherence(now)
	}
	if c.flt != nil && c.mode == ModeSpec && !c.tx.active && len(c.ckpts) > 0 &&
		c.flt.WantSpuriousRollback(now) {
		// A scheduled transient fault: squash the youngest epoch. The
		// event stays armed until a cycle with live speculation to roll
		// back (and never fires inside a transaction, whose checkpoint is
		// owned by the HTM machinery).
		c.rollback(len(c.ckpts)-1, now, RbInjected)
		c.flt.RollbackApplied(now)
	}

	replayed := 0
	aheadBudget := c.cfg.Width
	if c.mode == ModeSpec {
		budget := c.cfg.ReplayWidth
		if !c.cfg.SecondStrand {
			budget = aheadBudget
		}
		replayed = c.replay(now, budget)
		if !c.cfg.SecondStrand {
			aheadBudget -= replayed
		}
	}
	if c.err != nil {
		return
	}

	c.commitEpochs(now)

	if c.mode == ModeScout {
		c.maybeScoutRollback(now)
	}

	executed := 0
	if !c.done && c.err == nil && aheadBudget > 0 {
		executed = c.ahead(now, aheadBudget)
	}
	if c.err != nil {
		return
	}

	kind := c.classifyCycle(executed, replayed)
	if c.sink != nil {
		c.occ[0], c.occ[1], c.occ[2], c.occ[3] = len(c.dq), len(c.ssb), len(c.ckpts), len(c.pend)
		c.sink.CycleState(now, c.mode.String(), executed, replayed, c.occ[:])
	}
	outstanding := c.m.Hier.OutstandingDataMisses(c.m.CoreID, now)
	c.stats.SampleMLP(outstanding)
	bucket := c.classifyBucket(executed, replayed, dq0, ssb0, at0, sd0, snf0, sfl0, outstanding)
	c.stats.CPI[bucket]++
	c.stats.DQOcc.Add(len(c.dq))
	c.stats.SSBOcc.Add(len(c.ssb))
	c.stats.CkptOcc.Add(len(c.ckpts))
	c.stats.Cycles++
	c.cycle++
	c.quiet = executed == 0 && replayed == 0 && !c.done
	if checkStall {
		c.noteStall(&c.snapBuf, executed, replayed, kind, bucket, outstanding, now)
	}
}

// classifyBucket attributes the cycle for the CPI stack. Any strand
// progress — architectural, speculative or scout — counts as retire;
// cycles of work later squashed are re-attributed to the rollback's
// cause when it happens (see rollback). A stall cycle is named by the
// structural counter it bumped this Step, then by the memory system,
// then by the frontend, defaulting to a scoreboard (dependency) wait.
// Every input is held constant across a fast-forward window, so SkipTo
// replays the same attribution in bulk.
func (c *Core) classifyBucket(executed, replayed int, dq0, ssb0, at0, sd0, snf0, sfl0 uint64, outstanding int) cpu.Bucket {
	if executed > 0 || replayed > 0 {
		return cpu.BktRetire
	}
	switch {
	case c.stats.DQFullStallCycles > dq0:
		return cpu.BktDQFull
	case c.stats.SSBFullStallCycles > ssb0:
		return cpu.BktSSBFull
	case c.stats.AtomicStallCycles > at0:
		return cpu.BktAtomic
	// Secure-mode holds outrank the memory system: a held result is the
	// proximate blocker even while its (or another) miss is outstanding.
	case c.stats.SecureDelayStallCycles > sd0:
		return cpu.BktSecureDelay
	case c.stats.SecureNoFwdStallCycles > snf0:
		return cpu.BktSecureNoFwd
	case c.stats.SecureSSBStallCycles > sfl0:
		return cpu.BktSecureSSB
	case outstanding > 0:
		return cpu.BktMSHR
	case c.feStall:
		return cpu.BktFetch
	default:
		return cpu.BktScoreboard
	}
}

func (c *Core) classifyCycle(executed, replayed int) CycleKind {
	var k CycleKind
	switch c.mode {
	case ModeNormal:
		if executed > 0 {
			k = CyNormal
		} else {
			k = CyNormalStall
		}
	case ModeScout:
		k = CyScout
	default:
		switch {
		case executed > 0 && replayed > 0:
			k = CySimultaneous
		case executed > 0:
			k = CyAhead
		case replayed > 0:
			k = CyReplay
		default:
			k = CySpecStall
		}
	}
	c.stats.ModeCycles[k]++
	return k
}

// deliver applies pending deferred results whose data has arrived.
// Entries held by a secure-speculation mode (blocked or quarantined) are
// exempt from the time-based scan; secureRelease frees them when they
// become the oldest unresolved instruction.
func (c *Core) deliver(now uint64) {
	if c.secPending > 0 {
		c.secureRelease(now)
	}
	if len(c.pend) == 0 || now < c.pendMin {
		return
	}
	live := c.pend[:0]
	var min uint64
	for _, p := range c.pend {
		if p.ready > now || p.blocked || p.quarantined {
			live = append(live, p)
			if min == 0 || p.ready < min {
				min = p.ready
			}
			continue
		}
		c.forward(p.seq, p.val)
		c.deliverRF(p.seq, p.rd, p.val, now)
		c.resolveDirty = true
	}
	c.pend = live
	c.pendMin = min
}

// deliverRF writes a resolved value into the architectural register file
// if no younger instruction has claimed the register since — and into
// every checkpoint copy that is still waiting on it, exactly as the
// hardware broadcasts fills to all checkpointed register files. Without
// the checkpoint update, a rollback could resurrect an NA bit whose
// producer has already delivered and will never deliver again.
func (c *Core) deliverRF(seq uint64, rd uint8, v int64, now uint64) {
	if rd == isa.RegZero {
		return
	}
	if c.lastWriter[rd] == seq {
		c.regs[rd] = v
		c.na[rd] = false
		c.readyAt[rd] = now
	}
	for i := range c.ckpts {
		ck := &c.ckpts[i]
		if ck.na[rd] && ck.lastWriter[rd] == seq {
			ck.regs[rd] = v
			ck.na[rd] = false
			ck.readyAt[rd] = now
		}
	}
}

// markNA marks rd not-available with the given producer.
func (c *Core) markNA(rd uint8, seq uint64) {
	if rd == isa.RegZero {
		return
	}
	c.na[rd] = true
	c.lastWriter[rd] = seq
}
