package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

func propCore(t *testing.T) *Core {
	t.Helper()
	mach, err := cpu.NewMachine(mem.NewSparse(), testHier(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(mach, DefaultConfig(), 0)
}

// TestSSBInsertKeepsOrder: regardless of insertion order, the SSB stays
// sorted by sequence number (the invariant composeLoad depends on).
func TestSSBInsertKeepsOrder(t *testing.T) {
	f := func(seqs []uint16) bool {
		c := propCore(t)
		c.cfg.SSBSize = 1 << 16
		for _, s := range seqs {
			c.ssbInsert(ssbEntry{seq: uint64(s), addr: uint64(s) * 8, size: 8, val: int64(s)})
		}
		for i := 1; i < len(c.ssb); i++ {
			if c.ssb[i-1].seq > c.ssb[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestComposeLoadMatchesReference: composing a load over memory and the
// SSB must equal a byte-wise reference model, for arbitrary store sets.
func TestComposeLoadMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		c := propCore(t)
		c.cfg.SSBSize = 1 << 16
		const base = 0x1000
		const window = 64
		// Background memory.
		bg := make([]byte, window)
		r.Read(bg)
		c.m.Mem.WriteBytes(base, bg)
		// Random speculative stores with random seqs.
		type st struct {
			seq  uint64
			addr uint64
			size int
			val  int64
		}
		var sts []st
		for i := 0; i < 10; i++ {
			sizes := []int{1, 2, 4, 8}
			size := sizes[r.Intn(4)]
			s := st{
				seq:  uint64(r.Intn(100)),
				addr: base + uint64(r.Intn(window-size)),
				size: size,
				val:  int64(r.Uint64()),
			}
			sts = append(sts, s)
			c.ssbInsert(ssbEntry(s))
		}
		uptoSeq := uint64(r.Intn(120))
		loadSizes := []int{1, 2, 4, 8}
		size := loadSizes[r.Intn(4)]
		addr := base + uint64(r.Intn(window-size))

		got := c.composeLoad(addr, size, uptoSeq)

		// Reference: apply stores with seq < uptoSeq in seq order onto
		// the background bytes (stable order for equal seqs must match
		// the SSB's insertion semantics: later-inserted equal-seq
		// entries land after, i.e. win). Replicate by sorting stably.
		ref := make([]byte, window)
		copy(ref, bg)
		// Insertion into the SSB is stable for equal seqs.
		ordered := make([]st, 0, len(sts))
		for _, s := range sts {
			pos := len(ordered)
			for pos > 0 && ordered[pos-1].seq > s.seq {
				pos--
			}
			ordered = append(ordered, st{})
			copy(ordered[pos+1:], ordered[pos:])
			ordered[pos] = s
		}
		for _, s := range ordered {
			if s.seq >= uptoSeq {
				continue
			}
			for b := 0; b < s.size; b++ {
				ref[s.addr+uint64(b)-base] = byte(uint64(s.val) >> (8 * b))
			}
		}
		var want uint64
		for i := size - 1; i >= 0; i-- {
			want = want<<8 | uint64(ref[addr-base+uint64(i)])
		}
		if got != want {
			t.Fatalf("trial %d: compose(%#x,%d,upto=%d) = %#x, want %#x",
				trial, addr, size, uptoSeq, got, want)
		}
	}
}

// TestEpochOfMonotonic: epochOf returns the youngest checkpoint at or
// before the sequence number.
func TestEpochOfMonotonic(t *testing.T) {
	c := propCore(t)
	c.ckpts = []checkpoint{{startSeq: 10}, {startSeq: 25}, {startSeq: 60}}
	cases := map[uint64]int{10: 0, 24: 0, 25: 1, 59: 1, 60: 2, 1000: 2, 5: 0}
	for seq, want := range cases {
		if got := c.epochOf(seq); got != want {
			t.Errorf("epochOf(%d) = %d, want %d", seq, got, want)
		}
	}
}

// TestReadSetConflictSemantics: only younger overlapping reads conflict.
func TestReadSetConflictSemantics(t *testing.T) {
	c := propCore(t)
	c.readSet = []readRec{
		{seq: 5, addr: 100, size: 8},
		{seq: 20, addr: 100, size: 8},
		{seq: 30, addr: 200, size: 4},
	}
	if c.readSetConflict(10, 100, 8) != true {
		t.Error("younger overlap not detected")
	}
	if c.readSetConflict(25, 100, 8) != false {
		t.Error("older read flagged")
	}
	if c.readSetConflict(10, 204, 1) != false {
		t.Error("non-overlap flagged (edge)")
	}
	if c.readSetConflict(10, 203, 1) != true {
		t.Error("1-byte overlap missed")
	}
	if c.readSetConflict(10, 96, 4) != false {
		t.Error("adjacent-below flagged")
	}
}

// TestOldestUnresolvedSeq considers both the DQ and pending results.
func TestOldestUnresolvedSeq(t *testing.T) {
	c := propCore(t)
	c.seq = 100
	if got := c.oldestUnresolvedSeq(); got != 100 {
		t.Errorf("empty = %d", got)
	}
	c.dq = append(c.dq, dqEntry{seq: 42})
	c.pend = append(c.pend, pendingResult{seq: 17})
	if got := c.oldestUnresolvedSeq(); got != 17 {
		t.Errorf("got %d, want 17", got)
	}
}

// TestSSBCapacityRespected: ssbInsert refuses beyond capacity and with
// zero capacity.
func TestSSBCapacityRespected(t *testing.T) {
	c := propCore(t)
	c.cfg.SSBSize = 2
	if !c.ssbInsert(ssbEntry{seq: 1}) || !c.ssbInsert(ssbEntry{seq: 2}) {
		t.Fatal("inserts under capacity failed")
	}
	if c.ssbInsert(ssbEntry{seq: 3}) {
		t.Error("insert over capacity succeeded")
	}
	c.cfg.SSBSize = 0
	c.ssb = nil
	if c.ssbInsert(ssbEntry{seq: 1}) {
		t.Error("insert with zero capacity succeeded")
	}
}

// TestCheckpointLimitRespected: takeCheckpoint never exceeds the
// configured count.
func TestCheckpointLimitRespected(t *testing.T) {
	c := propCore(t)
	c.cfg.Checkpoints = 3
	for i := 0; i < 10; i++ {
		c.takeCheckpoint(uint64(i))
	}
	if len(c.ckpts) != 3 {
		t.Errorf("checkpoints = %d", len(c.ckpts))
	}
	if c.stats.CheckpointsTaken != 3 {
		t.Errorf("stat = %d", c.stats.CheckpointsTaken)
	}
}

// TestDeliverWritesThroughLastWriter: delivery respects the last-writer
// discipline in both live state and checkpoints.
func TestDeliverWritesThroughLastWriter(t *testing.T) {
	c := propCore(t)
	c.markNA(5, 40)
	c.takeCheckpoint(0x100) // snapshot has r5 NA with writer 40
	// A younger instruction overwrites r5 in live state.
	c.write(5, 99, 0, 50)
	// Delivery of seq 40 must not clobber live r5, but must heal the
	// checkpoint copy.
	c.deliverRF(40, 5, 123, 7)
	if c.regs[5] != 99 || c.na[5] {
		t.Errorf("live r5 = %d na=%v", c.regs[5], c.na[5])
	}
	ck := &c.ckpts[0]
	if ck.na[5] || ck.regs[5] != 123 {
		t.Errorf("checkpoint r5 = %d na=%v", ck.regs[5], ck.na[5])
	}
}

// TestIsaQuickRandomInstructionsNeverPanic feeds the decoder random
// bytes through the SST frontend path indirectly: decoding arbitrary
// words either fails cleanly or produces a valid instruction.
func TestIsaQuickRandomInstructionsNeverPanic(t *testing.T) {
	f := func(w uint64) bool {
		in, err := isa.DecodeWord(w)
		if err != nil {
			return true
		}
		_ = in.String()
		_, n := in.SrcRegs()
		return n >= 0 && n <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
