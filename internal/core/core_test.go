package core

import (
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/isa"
	"rocksim/internal/mem"
)

// testHier is a small hierarchy with a long, round DRAM latency so miss
// timing is easy to reason about.
func testHier() mem.HierConfig {
	return mem.HierConfig{
		L1I:     mem.CacheConfig{Name: "L1I", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 1, MSHRs: 4},
		L1D:     mem.CacheConfig{Name: "L1D", SizeBytes: 4 << 10, Ways: 2, LineBytes: 64, HitLatency: 2, MSHRs: 8},
		L2:      mem.CacheConfig{Name: "L2", SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 10, MSHRs: 16},
		L2Banks: 2,
		DRAM:    mem.DRAMConfig{Latency: 200, Banks: 4, BankBusy: 8},
	}
}

// build creates an SST core running the given builder-produced program.
func build(t *testing.T, cfg Config, gen func(b *asm.Builder)) (*Core, *cpu.Machine) {
	t.Helper()
	b := asm.NewBuilder(asm.DefaultTextBase)
	gen(b)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewSparse()
	prog.Load(m)
	mach, err := cpu.NewMachine(m, testHier(), bpred.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(mach, cfg, prog.Entry), mach
}

func run(t *testing.T, c *Core, maxCycles uint64) {
	t.Helper()
	if err := cpu.Run(c, maxCycles); err != nil {
		t.Fatalf("run: %v\n%s", err, c.DebugDump())
	}
}

func stepUntil(t *testing.T, c *Core, max int, cond func() bool) {
	t.Helper()
	for i := 0; i < max; i++ {
		if cond() {
			return
		}
		c.Step()
		if c.Err() != nil {
			t.Fatalf("core error: %v", c.Err())
		}
	}
	t.Fatalf("condition not reached in %d cycles\n%s", max, c.DebugDump())
}

// TestMissOpensEpoch: a load miss takes a checkpoint, marks the dest NA,
// and execution continues speculatively past it.
func TestMissOpensEpoch(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0) // misses
		b.Movi(7, 99)             // independent: should execute under the miss
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return c.Mode() == ModeSpec })
	if c.Stats().CheckpointsTaken != 1 {
		t.Errorf("checkpoints = %d", c.Stats().CheckpointsTaken)
	}
	if !c.na[6] {
		t.Error("r6 not NA under miss")
	}
	// The independent movi executes while the miss is outstanding.
	stepUntil(t, c, 2000, func() bool { return c.regs[7] == 99 })
	if c.Mode() != ModeSpec {
		t.Error("left spec mode too early")
	}
	run(t, c, 10_000)
	if c.Stats().EpochCommits == 0 {
		t.Error("no epoch commits")
	}
	if c.Stats().Rollbacks != 0 {
		t.Errorf("unexpected rollbacks: %d", c.Stats().Rollbacks)
	}
}

// TestDependentsDeferred: instructions reading an NA register land in
// the DQ with captured operands and replay once the miss returns.
func TestDependentsDeferred(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)  // miss -> r6 NA
		b.Opi(isa.OpAddi, 7, 6, 1) // dependent -> deferred
		b.Op(isa.OpAdd, 8, 7, 7)   // transitively dependent -> deferred
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return len(c.dq) == 2 })
	if !c.na[7] || !c.na[8] {
		t.Error("NA propagation failed")
	}
	run(t, c, 10_000)
	if c.Stats().Replays != 2 {
		t.Errorf("replays = %d, want 2", c.Stats().Replays)
	}
	if c.regs[7] != 1 || c.regs[8] != 2 {
		t.Errorf("r7=%d r8=%d", c.regs[7], c.regs[8])
	}
	if c.Retired() != 5 {
		t.Errorf("retired = %d, want 5", c.Retired())
	}
}

// TestIndependentMissesOverlap: two loads to different lines issue under
// one another (MLP), which is SST's whole point.
func TestIndependentMissesOverlap(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(6, 0x30000)
		b.Ld(isa.OpLd64, 7, 5, 0)
		b.Ld(isa.OpLd64, 8, 6, 0)
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool {
		return mach.Hier.OutstandingDataMisses(0, c.Cycle()) >= 2
	})
	run(t, c, 10_000)
	// Both misses overlapped: total time ≈ one miss, not two.
	if c.Cycle() > 600 {
		t.Errorf("cycles = %d; misses did not overlap", c.Cycle())
	}
}

// TestSSBForwarding: a speculative store is visible to younger
// speculative loads but not to memory until commit.
func TestSSBForwarding(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0) // miss: opens the epoch
		b.Movi(7, 0x777)
		b.St(isa.OpSt64, 7, 5, 128) // speculative store (same line region)
		b.Ld(isa.OpLd64, 8, 5, 128) // must forward 0x777 from the SSB
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return len(c.ssb) > 0 })
	if got := mach.Mem.Read(0x20000+128, 8); got != 0 {
		t.Errorf("speculative store leaked to memory: %#x", got)
	}
	run(t, c, 10_000)
	if c.regs[8] != 0x777 {
		t.Errorf("r8 = %#x, want forwarded 0x777", c.regs[8])
	}
	if got := mach.Mem.Read(0x20000+128, 8); got != 0x777 {
		t.Errorf("store not drained at commit: %#x", got)
	}
}

// TestDeferredBranchMispredictRollsBack: an unpredictable branch that
// depends on a miss and resolves against its prediction costs a
// rollback, after which re-execution takes the correct path.
func TestDeferredBranchMispredictRollsBack(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)               // miss; memory holds 1
		b.Br(isa.OpBeq, 6, isa.RegZero, "zero") // depends on miss
		b.Movi(7, 111)                          // correct path (r6==1)
		b.Jmp("end")
		b.Label("zero")
		b.Movi(7, 222)
		b.Label("end")
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 1)
	// Gshare initializes weakly-taken, so the deferred beq predicts
	// taken ("zero" path) and must roll back at replay.
	run(t, c, 10_000)
	if c.regs[7] != 111 {
		t.Errorf("r7 = %d, want 111 (correct path)", c.regs[7])
	}
	if c.Stats().RollbacksBy[RbBranch] == 0 {
		t.Error("no branch rollback recorded")
	}
	if c.Stats().DiscardedInsts == 0 {
		t.Error("no discarded work recorded")
	}
}

// TestDeferredBranchCorrectPredictionCommits: a predictable deferred
// branch verifies cleanly with no rollback.
func TestDeferredBranchCorrectPredictionCommits(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Br(isa.OpBeq, 6, isa.RegZero, "zero")
		b.Movi(7, 111)
		b.Jmp("end")
		b.Label("zero")
		b.Movi(7, 222)
		b.Label("end")
		b.Halt()
	})
	_ = mach // memory holds 0: beq taken, matching the weakly-taken init
	run(t, c, 10_000)
	if c.regs[7] != 222 {
		t.Errorf("r7 = %d, want 222", c.regs[7])
	}
	if c.Stats().Rollbacks != 0 {
		t.Errorf("rollbacks = %d, want 0", c.Stats().Rollbacks)
	}
	if c.Stats().DeferredBranches == 0 {
		t.Error("branch was not deferred")
	}
}

// TestMemOrderViolationRollsBack: a deferred store with an unknown
// address that turns out to overlap a younger ahead-strand load forces a
// mem-order rollback, and the final value is architecturally correct.
func TestMemOrderViolationRollsBack(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x4444)
		b.Ld(isa.OpLd64, 6, 5, 0)  // miss: loads the target offset (64)
		b.Op(isa.OpAdd, 7, 5, 6)   // address depends on miss -> NA
		b.St(isa.OpSt64, 9, 7, 0)  // store with NA address
		b.Ld(isa.OpLd64, 8, 5, 64) // ahead load of the same location!
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 64) // store target = 0x20000+64
	run(t, c, 10_000)
	if c.Stats().RollbacksBy[RbMemOrder] == 0 {
		t.Error("no mem-order rollback")
	}
	if c.regs[8] != 0x4444 {
		t.Errorf("r8 = %#x, want 0x4444 (store-to-load order)", c.regs[8])
	}
	if got := mach.Mem.Read(0x20000+64, 8); got != 0x4444 {
		t.Errorf("memory = %#x", got)
	}
}

// TestNoFalseMemOrderRollback: an unknown-address store that does NOT
// overlap the ahead loads verifies cleanly.
func TestNoFalseMemOrderRollback(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x4444)
		b.Ld(isa.OpLd64, 6, 5, 0)  // miss: loads 4096
		b.Op(isa.OpAdd, 7, 5, 6)   // NA address
		b.St(isa.OpSt64, 9, 7, 0)  // store to 0x21000
		b.Ld(isa.OpLd64, 8, 5, 64) // different location
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 4096)
	run(t, c, 10_000)
	if c.Stats().RollbacksBy[RbMemOrder] != 0 {
		t.Error("false mem-order rollback")
	}
	if got := mach.Mem.Read(0x21000, 8); got != 0x4444 {
		t.Errorf("store lost: %#x", got)
	}
}

// TestAtomicsSerialize: cas under speculation stalls until all epochs
// commit, then executes non-speculatively.
func TestAtomicsSerialize(t *testing.T) {
	c, mach := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(10, 0x30000)
		b.Ld(isa.OpLd64, 6, 5, 0) // miss: speculating
		b.Movi(7, 0)              // compare
		b.Movi(8, 55)             // swap-in
		b.Cas(8, 10, 7)
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return c.Mode() == ModeSpec })
	stepUntil(t, c, 2000, func() bool { return c.Stats().AtomicStallCycles > 0 })
	if got := mach.Mem.Read(0x30000, 8); got != 0 {
		t.Error("cas executed speculatively")
	}
	run(t, c, 10_000)
	if got := mach.Mem.Read(0x30000, 8); got != 55 {
		t.Errorf("cas result = %d", got)
	}
}

// TestScoutModeOnDQZero: with no DQ, a miss triggers scout: independent
// later misses get prefetched, then everything re-executes.
func TestScoutModeOnDQZero(t *testing.T) {
	cfg := ScoutConfig()
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x30000)
		b.Ld(isa.OpLd64, 6, 5, 0)  // trigger miss
		b.Opi(isa.OpAddi, 7, 6, 1) // dependent: cannot defer -> scout
		b.Ld(isa.OpLd64, 8, 9, 0)  // independent: prefetched during scout
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return c.Mode() == ModeScout })
	if c.Stats().ScoutEntries != 1 {
		t.Errorf("scout entries = %d", c.Stats().ScoutEntries)
	}
	run(t, c, 10_000)
	if c.Stats().RollbacksBy[RbScout] == 0 {
		t.Error("no scout rollback")
	}
	if c.regs[7] != 1 || c.regs[8] != 0 {
		t.Errorf("r7=%d r8=%d", c.regs[7], c.regs[8])
	}
	// The independent line was prefetched: total well under 2 misses.
	if c.Cycle() > 900 {
		t.Errorf("cycles = %d; scout prefetch ineffective", c.Cycle())
	}
}

// TestScoutDiscardsStores: stores executed in scout mode never reach
// memory, even after the rollback re-execution commits them properly.
func TestScoutDiscardsStores(t *testing.T) {
	cfg := ScoutConfig()
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 77)
		b.Ld(isa.OpLd64, 6, 5, 0)  // trigger
		b.Opi(isa.OpAddi, 7, 6, 1) // forces scout
		b.St(isa.OpSt64, 9, 5, 256)
		b.Halt()
	})
	stepUntil(t, c, 2000, func() bool { return c.Mode() == ModeScout })
	// While scouting, the store must not be architecturally visible.
	for i := 0; i < 50 && !c.Done(); i++ {
		if c.Mode() == ModeScout && mach.Mem.Read(0x20000+256, 8) != 0 {
			t.Fatal("scout store reached memory")
		}
		c.Step()
	}
	run(t, c, 10_000)
	if got := mach.Mem.Read(0x20000+256, 8); got != 77 {
		t.Errorf("final store = %d, want 77", got)
	}
}

// TestForwardProgressAfterRollback: a deferred divide that fails
// speculation must not livelock the checkpoint/rollback loop.
func TestForwardProgressAfterRollback(t *testing.T) {
	cfg := ScoutConfig()
	cfg.DeferLongOps = true
	cfg.LongOpMinLatency = 10
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 100)
		b.Movi(6, 7)
		b.Op(isa.OpDiv, 7, 5, 6)   // long op: checkpoints
		b.Opi(isa.OpAddi, 8, 7, 1) // dependent: scout (DQ=0)
		b.Halt()
	})
	run(t, c, 10_000) // would hang forever without the guarantee
	if c.regs[8] != 15 {
		t.Errorf("r8 = %d, want 15", c.regs[8])
	}
}

// TestMultipleCheckpointsPartialRollback: with per-miss checkpoints, a
// deferred-branch mispredict in a later epoch preserves older epochs.
func TestMultipleCheckpointsPartialRollback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckpointOnDeferredBranch = false
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x30000)
		b.Ld(isa.OpLd64, 6, 5, 0)                // epoch 1 (memory: 0)
		b.Ld(isa.OpLd64, 7, 9, 0)                // epoch 2 (memory: 1)
		b.Br(isa.OpBne, 7, isa.RegZero, "taken") // epoch-2 branch; init pred is taken -> correct? bne on 1 is taken; weakly-taken init predicts taken -> no rollback. Flip it:
		b.Label("taken")
		b.Br(isa.OpBeq, 7, isa.RegZero, "dead") // on 1: not taken; predicted taken -> rollback in epoch 2
		b.Opi(isa.OpAddi, 8, 6, 5)
		b.Halt()
		b.Label("dead")
		b.Movi(8, 999)
		b.Halt()
	})
	mach.Mem.Write(0x30000, 8, 1)
	run(t, c, 10_000)
	if c.regs[8] != 5 {
		t.Errorf("r8 = %d, want 5", c.regs[8])
	}
	if c.Stats().RollbacksBy[RbBranch] == 0 {
		t.Error("expected a branch rollback")
	}
	// Epoch 1's work survived (it committed rather than being undone).
	if c.Stats().EpochCommits < 1 {
		t.Errorf("epoch commits = %d", c.Stats().EpochCommits)
	}
}

// TestDeliveredValueHealsCheckpoints: a fill arriving while younger
// checkpoints exist must clear their NA copies too, so a later rollback
// does not resurrect a never-deliverable NA register.
func TestDeliveredValueHealsCheckpoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckpointOnDeferredBranch = true
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0x30000)
		b.Ld(isa.OpLd64, 6, 5, 0)               // miss 1: r6 (value 3)
		b.Ld(isa.OpLd64, 7, 9, 0)               // miss 2: r7 (value 1)
		b.Br(isa.OpBeq, 7, isa.RegZero, "dead") // deferred, mispredicted (pred taken, actual not)
		b.Op(isa.OpAdd, 8, 6, 7)                // uses both
		b.Halt()
		b.Label("dead")
		b.Movi(8, 999)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 3)
	mach.Mem.Write(0x30000, 8, 1)
	run(t, c, 10_000)
	if c.regs[8] != 4 {
		t.Errorf("r8 = %d, want 4", c.regs[8])
	}
}

// TestEAOnlySharesSlots: the execute-ahead ablation makes progress and
// matches architectural results, with replay stealing ahead slots.
func TestEAOnlySharesSlots(t *testing.T) {
	cfg := ExecuteAheadConfig()
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(9, 0)
		b.Movi(10, 8)
		b.Label("loop")
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Op(isa.OpAdd, 9, 9, 6)
		b.Opi(isa.OpAddi, 5, 5, 4096)
		b.Opi(isa.OpAddi, 10, 10, -1)
		b.Br(isa.OpBne, 10, isa.RegZero, "loop")
		b.Halt()
	})
	run(t, c, 100_000)
	if c.Stats().Replays == 0 {
		t.Error("EA config never replayed")
	}
	if c.Retired() != 3+8*5+1 {
		t.Errorf("retired = %d", c.Retired())
	}
}

// TestSSBOverflowRollsBack: replaying a store into a full SSB fails
// speculation rather than deadlocking, and re-execution completes.
func TestSSBOverflowRollsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SSBSize = 2
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0) // miss
		// Three dependent-data stores -> all deferred; replay overflows
		// the 2-entry SSB.
		b.St(isa.OpSt64, 6, 5, 256)
		b.St(isa.OpSt64, 6, 5, 264)
		b.St(isa.OpSt64, 6, 5, 272)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 42)
	run(t, c, 100_000)
	for off := uint64(256); off <= 272; off += 8 {
		if got := mach.Mem.Read(0x20000+off, 8); got != 42 {
			t.Errorf("store at +%d = %d", off, got)
		}
	}
	if c.Stats().RollbacksBy[RbSSB] == 0 {
		t.Error("no SSB rollback recorded")
	}
}

// TestZeroCheckpointsDegradesToStallOnUse: with no checkpoints the core
// is still correct (scoreboard only) and never speculates.
func TestZeroCheckpointsDegradesToStallOnUse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checkpoints = 0
	c, mach := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Opi(isa.OpAddi, 7, 6, 1)
		b.Halt()
	})
	mach.Mem.Write(0x20000, 8, 9)
	run(t, c, 10_000)
	if c.Stats().CheckpointsTaken != 0 {
		t.Error("checkpointed with Checkpoints=0")
	}
	if c.regs[7] != 10 {
		t.Errorf("r7 = %d", c.regs[7])
	}
}

// TestRetiredMatchesGolden: the architectural retirement count equals
// the functional emulator's, including across rollbacks and scouts.
func TestRetiredMatchesGolden(t *testing.T) {
	gen := func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Movi(10, 20)
		b.Movi(9, 0)
		b.Label("loop")
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Opi(isa.OpAndi, 7, 6, 1)
		b.Br(isa.OpBeq, 7, isa.RegZero, "even")
		b.Opi(isa.OpAddi, 9, 9, 3)
		b.Jmp("next")
		b.Label("even")
		b.Opi(isa.OpAddi, 9, 9, 1)
		b.Label("next")
		b.St(isa.OpSt64, 9, 5, 8)
		b.Opi(isa.OpAddi, 5, 5, 64)
		b.Opi(isa.OpAddi, 10, 10, -1)
		b.Br(isa.OpBne, 10, isa.RegZero, "loop")
		b.Halt()
	}
	b := asm.NewBuilder(asm.DefaultTextBase)
	gen(b)
	prog, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	gm := mem.NewSparse()
	prog.Load(gm)
	// Pseudo-random line contents so branches are data-dependent.
	for i := uint64(0); i < 20; i++ {
		gm.Write(0x20000+i*64, 8, i*i*2654435761)
	}
	emu := isa.NewEmulator(prog.Entry, gm)
	if err := emu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{DefaultConfig(), ExecuteAheadConfig(), ScoutConfig()} {
		m := mem.NewSparse()
		prog.Load(m)
		for i := uint64(0); i < 20; i++ {
			m.Write(0x20000+i*64, 8, i*i*2654435761)
		}
		mach, err := cpu.NewMachine(m, testHier(), bpred.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		c := New(mach, cfg, prog.Entry)
		run(t, c, 1_000_000)
		if c.Retired() != emu.Executed {
			t.Errorf("cfg %+v: retired %d, golden %d", cfg, c.Retired(), emu.Executed)
		}
	}
}

// TestDQOccupancyBounded: the deferred queue never exceeds its
// configured capacity.
func TestDQOccupancyBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DQSize = 4
	c, _ := build(t, cfg, func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		for i := 0; i < 12; i++ {
			b.Opi(isa.OpAddi, 7, 6, int32(i)) // all dependent
		}
		b.Halt()
	})
	for i := 0; i < 2000 && !c.Done(); i++ {
		c.Step()
		if len(c.dq) > 4 {
			t.Fatalf("DQ occupancy %d > 4", len(c.dq))
		}
	}
	if !c.Done() {
		t.Fatalf("not done\n%s", c.DebugDump())
	}
	if c.Stats().DQFullStallCycles == 0 {
		t.Error("expected DQ-full stalls")
	}
}

// TestStatsOccupancyHistograms: histograms are populated.
func TestStatsOccupancyHistograms(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Opi(isa.OpAddi, 7, 6, 1)
		b.Halt()
	})
	run(t, c, 10_000)
	st := c.Stats()
	if st.DQOcc.Count() == 0 || st.CkptOcc.Count() == 0 {
		t.Error("occupancy histograms empty")
	}
	if st.ModeCycles[CyNormal] == 0 {
		t.Error("no normal cycles recorded")
	}
}
