package core

import (
	"strings"
	"testing"

	"rocksim/internal/asm"
	"rocksim/internal/isa"
)

func TestPipeViewRendersCyclesAndEvents(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Opi(isa.OpAddi, 7, 6, 1)
		b.Halt()
	})
	var sb strings.Builder
	c.SetProbe(&PipeView{W: &sb, MaxCycles: 100000})
	run(t, c, 100_000)
	out := sb.String()
	for _, want := range []string{"checkpoint", "commit", "normal", "spec", "|DQ"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeview missing %q", want)
		}
	}
}

func TestPipeViewOnlyEvents(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 0x20000)
		b.Ld(isa.OpLd64, 6, 5, 0)
		b.Halt()
	})
	var sb strings.Builder
	c.SetProbe(&PipeView{W: &sb, OnlyEvents: true})
	run(t, c, 100_000)
	out := sb.String()
	if !strings.Contains(out, "checkpoint") {
		t.Error("events missing")
	}
	if strings.Contains(out, "|DQ") {
		t.Error("per-cycle lines printed in events-only mode")
	}
}

func TestPipeViewMaxCyclesBounds(t *testing.T) {
	c, _ := build(t, DefaultConfig(), func(b *asm.Builder) {
		b.Movi(5, 1000)
		b.Label("l")
		b.Opi(isa.OpAddi, 5, 5, -1)
		b.Br(isa.OpBne, 5, isa.RegZero, "l")
		b.Halt()
	})
	var sb strings.Builder
	c.SetProbe(&PipeView{W: &sb, MaxCycles: 10})
	run(t, c, 1_000_000)
	lines := strings.Count(sb.String(), "\n")
	if lines > 12 { // 10 cycle lines plus possible early events
		t.Errorf("pipeview printed %d lines beyond the cap", lines)
	}
}
