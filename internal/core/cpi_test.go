package core

import (
	"testing"

	"rocksim/internal/cpu"
)

// TestRollbackBucketMapping pins the contract rollback() relies on: the
// cycle-accounting rollback buckets mirror RollbackCause order exactly,
// so BktRollback0+Bucket(cause) addresses the right bucket, and the
// exported names agree with the cause names.
func TestRollbackBucketMapping(t *testing.T) {
	if got := cpu.BktRollback0 + cpu.Bucket(NumRollbackCauses); got != cpu.NumBuckets {
		t.Fatalf("rollback buckets don't close the enum: BktRollback0+NumRollbackCauses = %d, NumBuckets = %d",
			got, cpu.NumBuckets)
	}
	for cause := RollbackCause(0); cause < NumRollbackCauses; cause++ {
		b := cpu.BktRollback0 + cpu.Bucket(cause)
		if want := "rollback/" + cause.String(); b.String() != want {
			t.Errorf("cause %d: bucket name %q, want %q", cause, b.String(), want)
		}
	}
}
