package core

import (
	"rocksim/internal/bpred"
	"rocksim/internal/cpu"
	"rocksim/internal/obs"
)

// This file implements cpu.FastForwarder for the SST core: proving that
// a cycle was a pure stall, finding the earliest future cycle at which
// anything can change, and bulk-crediting the skipped cycles so every
// counter, histogram and sink emission is bit-identical to naive
// stepping.
//
// Purity is established by snapshotting — at Step entry — every piece
// of state a stall cycle is forbidden to touch, and comparing at Step
// exit. The set errs on the side of inclusion: any delivery, replay,
// commit, rollback, checkpoint take, scout entry, mode change,
// transaction event, predictor access (a deferred-branch retry consults
// the direction predictor every cycle; a jalr retry may pop the RAS) or
// fault-injector query (clamp probes record per retry inside an active
// window) marks the cycle unskippable. What remains — the genuinely
// replicable stalls — mutates only time-indexed accounting, which
// SkipTo replays in closed form.

var _ cpu.FastForwarder = (*Core)(nil)

// stepSnap is the Step-entry snapshot backing the purity check.
type stepSnap struct {
	seq          uint64
	mode         Mode
	pendLen      int
	rollbacks    uint64
	commits      uint64
	ckptsTaken   uint64
	retired      uint64
	scoutEntries uint64
	tx           TxStats
	pred         bpred.Stats
	ghr          uint64
	fltMut       uint64
	dqStall      uint64
	ssbStall     uint64
	atStall      uint64
	secDelay     uint64
	secNoFwd     uint64
	secSSB       uint64
	secRel       uint64
}

// snapInto fills s with the Step-entry state. It writes through a
// pointer (the caller reuses one buffer) so the hot path never copies or
// zeroes the struct.
func (c *Core) snapInto(s *stepSnap) {
	s.seq = c.seq
	s.mode = c.mode
	s.pendLen = len(c.pend)
	s.rollbacks = c.stats.Rollbacks
	s.commits = c.stats.EpochCommits
	s.ckptsTaken = c.stats.CheckpointsTaken
	s.retired = c.stats.Retired
	s.scoutEntries = c.stats.ScoutEntries
	s.tx = c.stats.Tx
	s.pred = c.m.Pred.Stats
	s.ghr = c.m.Pred.History()
	s.fltMut = c.flt.Mutations()
	s.dqStall = c.stats.DQFullStallCycles
	s.ssbStall = c.stats.SSBFullStallCycles
	s.atStall = c.stats.AtomicStallCycles
	s.secDelay = c.stats.SecureDelayStallCycles
	s.secNoFwd = c.stats.SecureNoFwdStallCycles
	s.secSSB = c.stats.SecureSSBStallCycles
	s.secRel = c.stats.SecureReleases
}

// noteStall runs at the end of Step: if the cycle was a replicable pure
// stall it records the per-cycle credit deltas and the skip horizon,
// otherwise it leaves fast-forwarding disabled.
func (c *Core) noteStall(s *stepSnap, executed, replayed int, kind CycleKind, bucket cpu.Bucket, outstanding int, now uint64) {
	if executed != 0 || replayed != 0 || c.done || c.err != nil ||
		c.seq != s.seq || c.mode != s.mode || len(c.pend) != s.pendLen ||
		c.stats.Rollbacks != s.rollbacks || c.stats.EpochCommits != s.commits ||
		c.stats.CheckpointsTaken != s.ckptsTaken || c.stats.Retired != s.retired ||
		c.stats.ScoutEntries != s.scoutEntries || c.stats.Tx != s.tx ||
		c.m.Pred.Stats != s.pred || c.m.Pred.History() != s.ghr ||
		c.flt.Mutations() != s.fltMut ||
		// A secure-mode release performs an access or forwards a value —
		// never replicable, even though the pend length may not change.
		c.stats.SecureReleases != s.secRel {
		return
	}
	c.ffKind = kind
	c.ffBucket = bucket
	c.ffDQStall = c.stats.DQFullStallCycles - s.dqStall
	c.ffSSBStall = c.stats.SSBFullStallCycles - s.ssbStall
	c.ffAtStall = c.stats.AtomicStallCycles - s.atStall
	c.ffSecDelay = c.stats.SecureDelayStallCycles - s.secDelay
	c.ffSecNoFwd = c.stats.SecureNoFwdStallCycles - s.secNoFwd
	c.ffSecSSB = c.stats.SecureSSBStallCycles - s.secSSB
	c.ffMLP = outstanding
	c.ffNext = c.nextTimer(now)
}

// nextTimer returns the earliest cycle strictly after now at which the
// core's state can change (0 = nothing pending): a deferred result
// delivering, a scoreboarded register becoming ready, the frontend
// finishing a bubble or line fill, a data-side MSHR fill moving the
// outstanding-miss count, or the fault plan entering a new regime.
func (c *Core) nextTimer(now uint64) uint64 {
	var next uint64
	bound := func(t uint64) {
		if t > now && (next == 0 || t < next) {
			next = t
		}
	}
	bound(c.fe.NextDelivery(now))
	for i := range c.pend {
		if c.pend[i].blocked {
			// No arrival time exists yet: the release is event-driven,
			// and the enabling resolution always breaks stall purity.
			continue
		}
		bound(c.pend[i].ready)
	}
	// sbHorizon is a monotonic upper bound on every readyAt value ever
	// written; once the clock passes it the whole scoreboard is quiescent
	// and the scan is skippable (rollback only restores values an earlier
	// write already folded into the horizon).
	if c.sbHorizon > now {
		for _, t := range c.readyAt {
			bound(t)
		}
	}
	bound(c.m.Hier.NextDataFill(c.m.CoreID, now))
	if c.flt != nil {
		bound(c.flt.NextChange(now))
	}
	return next
}

// NextEvent implements cpu.FastForwarder. It reports the pure-stall
// horizon recorded by the last Step; once the clock reaches it the
// answer decays to 0 and the core must be stepped naively.
func (c *Core) NextEvent() uint64 {
	if c.cohSeq != 0 || (c.tx.active && c.tx.abort != 0) {
		// A remote store scheduled a coherence rollback or transaction
		// abort after this cycle's purity was established (the listener
		// fires during another core's Step, possibly after ours recorded
		// a stall horizon). The repair must run at the very next cycle,
		// exactly where naive stepping would apply it.
		return 0
	}
	if c.ffNext > c.cycle {
		return c.ffNext
	}
	return 0
}

// SkipTo implements cpu.FastForwarder: it credits cycles
// [Cycle(), target) exactly as repeating the recorded pure-stall Step
// would, then advances the clock to target.
func (c *Core) SkipTo(target uint64) {
	if target <= c.cycle {
		return
	}
	n := target - c.cycle
	c.stats.ModeCycles[c.ffKind] += n
	c.stats.CPI[c.ffBucket] += n
	c.stats.DQFullStallCycles += c.ffDQStall * n
	c.stats.SSBFullStallCycles += c.ffSSBStall * n
	c.stats.AtomicStallCycles += c.ffAtStall * n
	c.stats.SecureDelayStallCycles += c.ffSecDelay * n
	c.stats.SecureNoFwdStallCycles += c.ffSecNoFwd * n
	c.stats.SecureSSBStallCycles += c.ffSecSSB * n
	if c.ffMLP > 0 {
		c.stats.MLPSamples += n
		c.stats.MLPSum += uint64(c.ffMLP) * n
	}
	if c.sink != nil {
		c.occ[0], c.occ[1], c.occ[2], c.occ[3] = len(c.dq), len(c.ssb), len(c.ckpts), len(c.pend)
		obs.EmitCycleRun(c.sink, c.cycle, target, c.mode.String(), c.occ[:])
	}
	c.stats.DQOcc.AddN(len(c.dq), n)
	c.stats.SSBOcc.AddN(len(c.ssb), n)
	c.stats.CkptOcc.AddN(len(c.ckpts), n)
	c.stats.Cycles += n
	c.cycle = target
}
